//! A [`CycleSource`](crate::summary::CycleSource) backed by a running
//! `iconv-serve` instance — the `expall --via-serve` path.
//!
//! One client connection is shared behind a mutex: the summary's
//! `par_map_jobs` fan-out serializes on it, which is fine because the
//! server is where the real concurrency (and the report cache) lives. GPU
//! cycles come back as IEEE-754 bit strings, so every number this source
//! returns is bit-identical to the in-process simulation and the summary
//! JSON built on top is byte-identical to the in-process one.
//!
//! Estimate failures panic with the server's typed error: `expall` has no
//! way to make progress on a half-answered summary, and a panic keeps the
//! failure loud in CI.

use std::sync::Mutex;
use std::time::Duration;

use iconv_gpusim::GpuAlgo;
use iconv_serve::{Client, TpuHwSpec};
use iconv_tensor::ConvShape;
use iconv_tpusim::SimMode;

use crate::summary::CycleSource;

/// Estimate source speaking the serve protocol.
pub struct ServeSource {
    client: Mutex<Client>,
}

impl ServeSource {
    /// Connect to a serve endpoint, retrying for up to five seconds (the
    /// server may still be binding when `expall` starts).
    ///
    /// # Errors
    ///
    /// Returns the final connect error once the retry window closes.
    pub fn connect(addr: &str) -> std::io::Result<Self> {
        let client = Client::connect_retry(addr, Duration::from_secs(5))?;
        Ok(Self {
            client: Mutex::new(client),
        })
    }

    /// Fetch the server's counter snapshot (for the hit-rate report
    /// `expall` prints after a `--via-serve` summary).
    ///
    /// # Panics
    ///
    /// Panics when the stats RPC fails.
    pub fn stats(&self) -> iconv_serve::StatsSnapshot {
        self.client
            .lock()
            .expect("serve client poisoned")
            .stats()
            .expect("serve stats RPC failed")
    }
}

impl CycleSource for ServeSource {
    fn tpu_conv_cycles(&self, shape: &ConvShape, mode: SimMode) -> u64 {
        self.client
            .lock()
            .expect("serve client poisoned")
            .tpu_conv(shape, mode, &TpuHwSpec::default())
            .expect("serve tpu conv estimate failed")
            .cycles
    }

    fn tpu_gemm_cycles(&self, m: usize, n: usize, k: usize) -> u64 {
        self.client
            .lock()
            .expect("serve client poisoned")
            .tpu_gemm(m, n, k, &TpuHwSpec::default())
            .expect("serve tpu gemm estimate failed")
            .cycles
    }

    fn gpu_conv_cycles(&self, shape: &ConvShape, algo: GpuAlgo) -> f64 {
        self.client
            .lock()
            .expect("serve client poisoned")
            .gpu_conv(shape, algo)
            .expect("serve gpu conv estimate failed")
            .cycles
    }
}
