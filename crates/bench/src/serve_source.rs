//! A [`CycleSource`] backed by a running
//! `iconv-serve` instance — the `expall --via-serve` path.
//!
//! One client connection is shared behind a mutex: the summary's
//! fan-out serializes on it, which is fine because the server is where
//! the real concurrency (and the report cache) lives. `estimate_many` is
//! overridden to ship each figure's whole work table as a single `batch`
//! request — one round trip instead of one per item. GPU cycles come back
//! as IEEE-754 bit strings, so every number this source returns is
//! bit-identical to the in-process simulation and the summary JSON built
//! on top is byte-identical to the in-process one.
//!
//! Estimate failures panic with the server's typed error: `expall` has no
//! way to make progress on a half-answered summary, and a panic keeps the
//! failure loud in CI.

use std::sync::Mutex;

use iconv_api::Work;
use iconv_serve::protocol::encode_estimate;
use iconv_serve::{Client, Estimate, EstimateRequest, Response, MAX_SWEEP_ITEMS};

use crate::summary::{CycleCount, CycleSource};

/// Estimate source speaking the serve protocol.
pub struct ServeSource {
    client: Mutex<Client>,
}

impl ServeSource {
    /// Connect to a serve endpoint, retrying for up to five seconds (the
    /// server may still be binding when `expall` starts).
    ///
    /// # Errors
    ///
    /// Returns the final connect error once the retry window closes.
    pub fn connect(addr: &str) -> std::io::Result<Self> {
        let client = Client::connect_retry(addr, iconv_serve::DEFAULT_CONNECT_TIMEOUT)?;
        Ok(Self {
            client: Mutex::new(client),
        })
    }

    /// Fetch the server's counter snapshot (for the hit-rate report
    /// `expall` prints after a `--via-serve` summary).
    ///
    /// # Panics
    ///
    /// Panics when the stats RPC fails.
    pub fn stats(&self) -> iconv_serve::StatsSnapshot {
        self.client
            .lock()
            .expect("serve client poisoned")
            .stats()
            .expect("serve stats RPC failed")
    }
}

impl CycleSource for ServeSource {
    fn estimate(&self, work: &Work) -> CycleCount {
        let mut client = self.client.lock().expect("serve client poisoned");
        // Ship the `Work` itself rather than going through the per-variant
        // client helpers: that keeps hardware overrides and `tune` on the
        // same wire bytes as the serve-side cache key.
        let line = encode_estimate(&EstimateRequest {
            id: None,
            work: *work,
            deadline_ms: None,
        });
        match client.call(&line).expect("serve estimate failed") {
            Response::Tpu { est, .. } => CycleCount::Tpu(est.cycles),
            Response::Gpu { est, .. } => CycleCount::Gpu(est.cycles),
            Response::Tune { est, .. } => CycleCount::Tuned(est.tuned_cycles),
            other => panic!("unexpected serve response: {other:?}"),
        }
    }

    /// Ship the whole table as `batch` requests (one per `MAX_SWEEP_ITEMS`
    /// chunk — in practice a single round trip) instead of one request per
    /// item. The server streams replies in item order, so the results line
    /// up with `works` positionally.
    fn estimate_many(&self, _jobs: usize, works: &[Work]) -> Vec<CycleCount> {
        let mut client = self.client.lock().expect("serve client poisoned");
        let mut out = Vec::with_capacity(works.len());
        for chunk in works.chunks(MAX_SWEEP_ITEMS) {
            let replies = client
                .batch(chunk, None)
                .expect("serve batch estimate failed");
            for reply in replies {
                match reply.expect("serve batch item failed") {
                    Estimate::Tpu(est) => out.push(CycleCount::Tpu(est.cycles)),
                    Estimate::Gpu(est) => out.push(CycleCount::Gpu(est.cycles)),
                    Estimate::Tune(est) => out.push(CycleCount::Tuned(est.tuned_cycles)),
                }
            }
        }
        out
    }
}
