//! Command-line parsing for the `expall` runner, split out of the binary so
//! the accepted grammar is unit-testable (the binary only maps a parse
//! error to exit code 2).

/// Usage string printed on any argument error.
pub const USAGE: &str =
    "usage: expall [--jobs N | -j N] [--trace DIR] [--via-serve] [--serve-addr HOST:PORT]";

/// Parsed `expall` arguments.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ExpallArgs {
    /// Worker count (`--jobs N`); `None` defers to `ICONV_JOBS` / core count.
    pub jobs: Option<usize>,
    /// Directory to write per-experiment Chrome traces into (`--trace DIR`).
    pub trace_dir: Option<String>,
    /// Route the summary's layer estimates through an `iconv-serve` server
    /// (`--via-serve`). Output stays byte-identical to the in-process path.
    pub via_serve: bool,
    /// Serve endpoint for `--via-serve` (`--serve-addr HOST:PORT`); `None`
    /// spawns an in-process server. Implies `via_serve`.
    pub serve_addr: Option<String>,
}

/// Parse `expall` arguments (without the leading program name).
///
/// Accepts `--jobs N`, `-j N`, `--jobs=N`, `--trace DIR` and `--trace=DIR`.
/// A job count of `0` is rejected — the previous behaviour silently handed
/// `0` to the thread-pool fan-out, which treats it as "no workers" and
/// hangs — as is any unknown argument or missing value.
pub fn parse_expall_args(args: impl IntoIterator<Item = String>) -> Result<ExpallArgs, String> {
    let mut parsed = ExpallArgs::default();
    let mut args = args.into_iter();
    let jobs = |v: &str| -> Result<usize, String> {
        let n: usize = v
            .parse()
            .map_err(|_| format!("invalid job count {v:?}; {USAGE}"))?;
        if n == 0 {
            return Err(format!("--jobs must be >= 1 (got 0); {USAGE}"));
        }
        Ok(n)
    };
    while let Some(a) = args.next() {
        if a == "--jobs" || a == "-j" {
            let v = args
                .next()
                .ok_or_else(|| format!("{a} requires a value; {USAGE}"))?;
            parsed.jobs = Some(jobs(&v)?);
        } else if let Some(v) = a.strip_prefix("--jobs=") {
            parsed.jobs = Some(jobs(v)?);
        } else if a == "--trace" {
            let v = args
                .next()
                .ok_or_else(|| format!("{a} requires a value; {USAGE}"))?;
            parsed.trace_dir = Some(v);
        } else if let Some(v) = a.strip_prefix("--trace=") {
            parsed.trace_dir = Some(v.to_string());
        } else if a == "--via-serve" {
            parsed.via_serve = true;
        } else if a == "--serve-addr" {
            let v = args
                .next()
                .ok_or_else(|| format!("{a} requires a value; {USAGE}"))?;
            parsed.serve_addr = Some(v);
            parsed.via_serve = true;
        } else if let Some(v) = a.strip_prefix("--serve-addr=") {
            parsed.serve_addr = Some(v.to_string());
            parsed.via_serve = true;
        } else {
            return Err(format!("unknown argument {a:?}; {USAGE}"));
        }
    }
    Ok(parsed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<ExpallArgs, String> {
        parse_expall_args(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn empty_is_all_defaults() {
        assert_eq!(parse(&[]).unwrap(), ExpallArgs::default());
    }

    #[test]
    fn jobs_forms_agree() {
        for args in [&["--jobs", "3"][..], &["-j", "3"], &["--jobs=3"]] {
            let p = parse(args).unwrap();
            assert_eq!(p.jobs, Some(3), "{args:?}");
            assert_eq!(p.trace_dir, None);
        }
    }

    #[test]
    fn zero_jobs_is_rejected() {
        for args in [&["--jobs", "0"][..], &["-j", "0"], &["--jobs=0"]] {
            let err = parse(args).unwrap_err();
            assert!(err.contains(">= 1"), "{args:?}: {err}");
            assert!(err.contains(USAGE), "{args:?}: {err}");
        }
    }

    #[test]
    fn garbage_jobs_is_rejected() {
        assert!(parse(&["--jobs", "many"])
            .unwrap_err()
            .contains("invalid job count"));
        assert!(parse(&["--jobs"]).unwrap_err().contains("requires a value"));
    }

    #[test]
    fn trace_forms_agree() {
        for args in [&["--trace", "out/tr"][..], &["--trace=out/tr"]] {
            assert_eq!(parse(args).unwrap().trace_dir.as_deref(), Some("out/tr"));
        }
        assert!(parse(&["--trace"])
            .unwrap_err()
            .contains("requires a value"));
    }

    #[test]
    fn combined_and_unknown() {
        let p = parse(&["--jobs=2", "--trace", "t"]).unwrap();
        assert_eq!(
            p,
            ExpallArgs {
                jobs: Some(2),
                trace_dir: Some("t".into()),
                ..ExpallArgs::default()
            }
        );
        assert!(parse(&["--job", "2"])
            .unwrap_err()
            .contains("unknown argument"));
    }

    #[test]
    fn via_serve_forms() {
        let p = parse(&["--via-serve"]).unwrap();
        assert!(p.via_serve);
        assert_eq!(p.serve_addr, None);
        for args in [
            &["--serve-addr", "127.0.0.1:7070"][..],
            &["--serve-addr=127.0.0.1:7070"],
        ] {
            let p = parse(args).unwrap();
            assert!(p.via_serve, "{args:?}: --serve-addr implies --via-serve");
            assert_eq!(p.serve_addr.as_deref(), Some("127.0.0.1:7070"));
        }
        assert!(parse(&["--serve-addr"])
            .unwrap_err()
            .contains("requires a value"));
    }
}
