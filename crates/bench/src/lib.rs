//! # iconv-bench
//!
//! Experiment runners (one binary per paper table/figure) and criterion
//! microbenchmarks. See `EXPERIMENTS.md` at the repository root for the
//! experiment index and recorded results.
//!
//! Run a single experiment with e.g. `cargo run --release -p iconv-bench
//! --bin fig13`, or everything with `--bin expall`.

pub mod ablations;
pub mod cli;
pub mod experiments;
pub mod fmt;
pub mod par;
pub mod serve_source;
pub mod summary;
pub mod traces;
