//! Small table-printing helpers shared by the experiment runners.

/// Print a header row followed by a separator.
pub fn header(cols: &[&str], widths: &[usize]) {
    let row: Vec<String> = cols
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}", w = w))
        .collect();
    println!("{}", row.join("  "));
    let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
    println!("{}", "-".repeat(total));
}

/// Format a float with the given precision, right-aligned to `w`.
pub fn num(v: f64, prec: usize, w: usize) -> String {
    format!("{v:>w$.prec$}")
}

/// Section banner for a runner's output.
pub fn banner(title: &str) {
    println!("\n=== {title} ===");
}
