//! Small table-rendering helpers shared by the experiment runners.
//!
//! Runners render into a `String` (via [`outln!`](crate::outln)) instead of
//! printing directly, so `expall` can execute them on worker threads in
//! parallel and still emit byte-identical output in figure order.

/// Append a header row followed by a separator to `out`.
pub fn header(out: &mut String, cols: &[&str], widths: &[usize]) {
    let row: Vec<String> = cols
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}", w = w))
        .collect();
    crate::outln!(out, "{}", row.join("  "));
    let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
    crate::outln!(out, "{}", "-".repeat(total));
}

/// Format a float with the given precision, right-aligned to `w`.
pub fn num(v: f64, prec: usize, w: usize) -> String {
    format!("{v:>w$.prec$}")
}

/// Append a section banner to `out`.
pub fn banner(out: &mut String, title: &str) {
    crate::outln!(out, "\n=== {title} ===");
}

/// `writeln!` into a `String` buffer; infallible, so no `.unwrap()` noise at
/// every call site.
#[macro_export]
macro_rules! outln {
    ($buf:expr) => {{
        #[allow(unused_imports)]
        use std::fmt::Write as _;
        let _ = writeln!($buf);
    }};
    ($buf:expr, $($arg:tt)*) => {{
        #[allow(unused_imports)]
        use std::fmt::Write as _;
        let _ = writeln!($buf, $($arg)*);
    }};
}
