//! **Ablation: DRAM layout (paper Fig. 7)** — HWCN versus the conventional
//! NCHW for the DRAM-resident IFMap, across strides.
//!
//! The paper's Fig. 7 argues the HWC-family layouts turn tile fills into
//! long contiguous runs while CHW scatters them, and that the gap widens
//! with stride. This ablation measures it three ways: the closed-form DRAM
//! efficiency, full-layer TPUSim cycles, and a trace-driven bank-simulator
//! cross-check on an actual tile-fill address stream.

use crate::fmt::{banner, header};
use iconv_dram::{BankSim, DramConfig, DramModel, Request};
use iconv_tensor::{ConvShape, Coord, Dims, Layout};
use iconv_tpusim::{SimMode, Simulator, TpuConfig};

/// Generate the DRAM request trace for filling one tile's working set
/// (all channels, batch item 0) from an IFMap stored in `layout`.
fn fill_trace(shape: &ConvShape, layout: Layout, elem_bytes: u64) -> Vec<Request> {
    let dims = Dims::new(shape.n, shape.ci, shape.hi, shape.wi);
    let tile = iconv_core::FilterTile::new(0, 0);
    let mut trace = Vec::new();
    for (h, w) in tile.working_set(shape) {
        for c in 0..shape.ci {
            let off = layout.offset(dims, Coord::new(0, c, h, w)) as u64;
            trace.push(Request::new(off * elem_bytes, elem_bytes));
        }
    }
    // The DMA engine issues in address order.
    trace.sort_by_key(|r| r.addr);
    // Coalesce adjacent requests (the memory controller would).
    let mut coalesced: Vec<Request> = Vec::new();
    for r in trace {
        match coalesced.last_mut() {
            Some(last) if last.addr + last.bytes == r.addr => last.bytes += r.bytes,
            _ => coalesced.push(r),
        }
    }
    coalesced
}

/// Run the ablation.
/// Render the experiment's full report.
pub fn report() -> String {
    let mut out = String::new();
    banner(
        &mut out,
        "Ablation (Fig. 7): HWCN vs NCHW DRAM layout for IFMap fills",
    );

    // 1. Closed-form efficiency per stride.
    let model = DramModel::new(DramConfig::hbm_tpu_v2());
    header(
        &mut out,
        &["stride", "HWCN run B", "eff%", "NCHW run B", "eff%"],
        &[6, 10, 6, 10, 6],
    );
    for stride in [1usize, 2, 4] {
        let shape = ConvShape::square(8, 64, 56, 64, 3, stride, 1).expect("valid layer");
        let hwcn_run = if stride == 1 {
            (shape.ci * shape.n * shape.wi * 4) as u64
        } else {
            (shape.ci * shape.n * 4) as u64
        };
        let nchw_run = if stride == 1 {
            (shape.wi * 4) as u64
        } else {
            4
        };
        crate::outln!(
            out,
            "{:>6}  {:>10}  {:>6.1}  {:>10}  {:>6.1}",
            stride,
            hwcn_run,
            100.0 * model.efficiency(hwcn_run),
            nchw_run,
            100.0 * model.efficiency(nchw_run)
        );
    }

    // 2. Full-layer TPUSim cycles under each layout.
    banner(
        &mut out,
        "TPUSim layer cycles by layout (N=8, Ci=64, 56x56, 3x3)",
    );
    header(
        &mut out,
        &["stride", "HWCN", "NCHW", "NCHW/HWCN"],
        &[6, 10, 10, 10],
    );
    for stride in [1usize, 2, 4] {
        let shape = ConvShape::square(8, 64, 56, 64, 3, stride, 1).expect("valid layer");
        let mut cycles = Vec::new();
        for layout in [Layout::Hwcn, Layout::Nchw] {
            let cfg = TpuConfig::builder_from(TpuConfig::tpu_v2())
                .ifmap_layout(layout)
                .build()
                .expect("layout config");
            let sim = Simulator::new(cfg);
            cycles.push(sim.simulate_conv("l", &shape, SimMode::ChannelFirst).cycles);
        }
        crate::outln!(
            out,
            "{:>6}  {:>10}  {:>10}  {:>9.2}x",
            stride,
            cycles[0],
            cycles[1],
            cycles[1] as f64 / cycles[0] as f64
        );
    }

    // 3. Trace-driven bank-simulator cross-check on one tile fill.
    banner(
        &mut out,
        "BankSim trace cross-check (tile <1,1> fill, Ci=64, 28x28, stride 2)",
    );
    let shape = ConvShape::square(1, 64, 28, 64, 3, 2, 1).expect("valid layer");
    header(
        &mut out,
        &["layout", "requests", "cycles", "hit rate%"],
        &[8, 9, 9, 10],
    );
    let mut measured = Vec::new();
    for layout in [Layout::Hwcn, Layout::Nhwc, Layout::Nchw] {
        let trace = fill_trace(&shape, layout, 4);
        let mut sim = BankSim::new(DramConfig::hbm_tpu_v2());
        let cycles = sim.run(&trace);
        crate::outln!(
            out,
            "{:>8}  {:>9}  {:>9}  {:>10.1}",
            layout.to_string(),
            trace.len(),
            cycles,
            100.0 * sim.hit_rate()
        );
        measured.push((layout, cycles));
    }
    let hwcn = measured[0].1 as f64;
    let nchw = measured[2].1 as f64;
    crate::outln!(
        out,
        "NCHW fill takes {:.2}x the cycles of HWCN on the trace-driven model.\n\
         (The closed-form model above is more pessimistic than the bank trace at\n\
         single-element runs — it charges a per-run command residue the trace\n\
         model overlaps — so the layer-level NCHW ratios are upper bounds; the\n\
         direction and stride trend are what Fig. 7 claims.)",
        nchw / hwcn
    );
    out
}

/// Run the experiment, printing the report.
pub fn run() {
    print!("{}", report());
}
