//! **Ablation: depthwise-separable convolutions** — how the channel-first
//! machine copes with a workload the paper does not evaluate but its
//! analysis predicts perfectly: MobileNetV1's depthwise layers have one
//! channel per group, so either the array runs nearly empty (sequential
//! groups) or nearly all MACs multiply zeros (block-diagonal weights).

use crate::fmt::{banner, header};
use iconv_tensor::grouped::GroupedConv;
use iconv_tpusim::grouped::GroupedStrategy;
use iconv_tpusim::{SimMode, Simulator, TpuConfig};
use iconv_workloads::mobilenet_v1;

/// Run the ablation.
/// Render the experiment's full report.
pub fn report() -> String {
    let mut out = String::new();
    let sim = Simulator::new(TpuConfig::tpu_v2());
    let model = mobilenet_v1(8);

    banner(
        &mut out,
        "Ablation: MobileNetV1 on TPUSim (batch 8) — depthwise vs pointwise",
    );
    header(
        &mut out,
        &["layer", "kind", "GFLOP", "cycles", "TF/s", "util%"],
        &[8, 11, 7, 10, 7, 6],
    );
    let mut dense_cycles = 0u64;
    let mut dw_cycles = 0u64;
    let mut dense_flops = 0u64;
    let mut dw_flops = 0u64;
    for l in &model.layers {
        let (rep, kind) = if l.groups > 1 {
            let gc = GroupedConv::new(l.shape, l.groups).expect("valid table entry");
            (
                sim.simulate_grouped(&l.name, &gc, GroupedStrategy::Auto),
                "depthwise",
            )
        } else {
            (
                sim.simulate_conv(&l.name, &l.shape, SimMode::ChannelFirst),
                "dense",
            )
        };
        if l.groups > 1 {
            dw_cycles += rep.cycles;
            dw_flops += rep.flops;
        } else {
            dense_cycles += rep.cycles;
            dense_flops += rep.flops;
        }
        if l.name.starts_with("dw") && l.name.len() <= 4 || l.name == "conv1" || l.name == "pw1" {
            crate::outln!(
                out,
                "{:>8}  {:>11}  {:>7.2}  {:>10}  {:>7.1}  {:>6.1}",
                l.name,
                kind,
                rep.flops as f64 / 1e9,
                rep.cycles,
                rep.tflops(sim.config()),
                100.0 * rep.utilization(sim.config())
            );
        }
    }
    let cfg = sim.config();
    crate::outln!(out, "\nTotals:");
    crate::outln!(
        out,
        "  dense layers:     {:>6.2} GFLOP in {:.2} ms ({:.1} TFLOPS)",
        dense_flops as f64 / 1e9,
        cfg.cycles_to_seconds(dense_cycles) * 1e3,
        dense_flops as f64 / cfg.cycles_to_seconds(dense_cycles) / 1e12
    );
    crate::outln!(
        out,
        "  depthwise layers: {:>6.2} GFLOP in {:.2} ms ({:.1} TFLOPS)",
        dw_flops as f64 / 1e9,
        cfg.cycles_to_seconds(dw_cycles) * 1e3,
        dw_flops as f64 / cfg.cycles_to_seconds(dw_cycles) / 1e12
    );
    crate::outln!(
        out,
        "\nDepthwise layers hold {:.0}% of the FLOPs but {:.0}% of the runtime: the\n\
         channel-first decomposition needs channel depth to fill PE rows, and one\n\
         channel per group leaves the array idle — why depthwise-separable networks\n\
         are a poor fit for large GEMM engines despite their small FLOP counts.",
        100.0 * dw_flops as f64 / (dw_flops + dense_flops) as f64,
        100.0 * dw_cycles as f64 / (dw_cycles + dense_cycles) as f64
    );
    out
}

/// Run the experiment, printing the report.
pub fn run() {
    print!("{}", report());
}
