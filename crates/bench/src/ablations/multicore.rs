//! **Ablation: multi-core scaling** — the paper's baseline chip is a
//! *dual-core* TPU-v2; pods gang many. Data-parallel scaling of inference
//! and training (with ring all-reduce over the inter-core interconnect)
//! across core counts.

use crate::fmt::{banner, header};
use iconv_tpusim::{Interconnect, Simulator, TpuConfig};
use iconv_workloads::resnet50;

/// Run the ablation.
/// Render the experiment's full report.
pub fn report() -> String {
    let mut out = String::new();
    banner(
        &mut out,
        "Ablation: data-parallel scaling of ResNet-50 (batch 64) across TPU-v2 cores",
    );
    let sim = Simulator::new(TpuConfig::tpu_v2());
    let model = resnet50(64);
    let ici = Interconnect::tpu_v2_ici();
    header(
        &mut out,
        &[
            "cores",
            "inf. speedup",
            "inf. eff%",
            "train speedup",
            "train eff%",
            "allreduce%",
        ],
        &[6, 12, 9, 13, 10, 10],
    );
    for cores in [1usize, 2, 4, 8, 16] {
        let inf = sim.simulate_model_multicore(&model, cores, false, ici);
        let tr = sim.simulate_model_multicore(&model, cores, true, ici);
        crate::outln!(
            out,
            "{:>6}  {:>11.2}x  {:>9.1}  {:>12.2}x  {:>10.1}  {:>10.1}",
            cores,
            inf.speedup,
            100.0 * inf.efficiency(),
            tr.speedup,
            100.0 * tr.efficiency(),
            100.0 * tr.allreduce_cycles as f64 / tr.total_cycles() as f64
        );
    }
    crate::outln!(
        out,
        "\nInference scales nearly linearly while shards stay word-deep (batch/cores ≥ 8\n\
         keeps the HWCN words full); training adds a fixed all-reduce of the weight\n\
         gradients, whose share grows as compute shrinks — the classic data-parallel\n\
         scaling wall, here emerging from the channel-first machine's own counters."
    );
    out
}

/// Run the experiment, printing the report.
pub fn run() {
    print!("{}", report());
}
