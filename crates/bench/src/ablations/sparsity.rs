//! **Ablation: structured sparsity on the channel-first schedule** — the
//! paper's conclusion proposes sparse CNN accelerators built on this
//! algorithm; this ablation measures what its scheduling units already buy:
//! pruned filter taps vanish from the schedule, so speedup tracks schedule
//! density directly (no indexing hardware, no load imbalance).

use crate::fmt::{banner, header};
use iconv_core::sparse::{conv_sparse, prune_taps, SparseFilter};
use iconv_tensor::conv_ref::{direct_conv, filter_dims, ifmap_dims};
use iconv_tensor::{ConvShape, Layout, Tensor};
use iconv_tpusim::{SimMode, Simulator, TpuConfig};

/// Run the ablation.
/// Render the experiment's full report.
pub fn report() -> String {
    let mut out = String::new();
    banner(
        &mut out,
        "Ablation: tap-structured sparsity on the channel-first schedule",
    );
    let sim = Simulator::new(TpuConfig::tpu_v2());
    let shape = ConvShape::square(8, 256, 28, 256, 3, 1, 1).expect("valid layer");
    let dense_cycles = sim.simulate_conv("l", &shape, SimMode::ChannelFirst).cycles;

    // Functional check on a small sibling layer first: the sparse schedule
    // is bit-exact against the dense conv of the pruned weights.
    let small = ConvShape::square(1, 16, 8, 8, 3, 1, 1).expect("valid layer");
    let x = Tensor::<i64>::random(ifmap_dims(&small), Layout::Nchw, 1);
    let f = Tensor::<i64>::random(filter_dims(&small), Layout::Nchw, 2);
    let pruned = prune_taps(&small, &f, 0.5, 3);
    let sparse = SparseFilter::from_dense(small, pruned.clone());
    assert!(direct_conv(&small, &x, &pruned).approx_eq(&conv_sparse(&sparse, &x), 0.0));
    crate::outln!(
        out,
        "functional check: sparse schedule == dense conv of pruned weights ✓\n"
    );

    header(
        &mut out,
        &["keep", "tap density", "sched density", "cycles", "speedup"],
        &[6, 11, 13, 10, 8],
    );
    let filter = Tensor::<f32>::random(filter_dims(&shape), Layout::Nchw, 7);
    for keep in [1.0f64, 0.8, 0.6, 0.4, 0.2, 0.0] {
        let pruned = prune_taps(&shape, &filter, keep, 17);
        let sparse = SparseFilter::from_dense(shape, pruned);
        let rep = sim.simulate_conv_sparse("l", &sparse);
        crate::outln!(
            out,
            "{:>6.2}  {:>11.2}  {:>13.2}  {:>10}  {:>7.2}x",
            keep,
            sparse.tap_density(),
            sparse.schedule_density(),
            rep.cycles,
            dense_cycles as f64 / rep.cycles as f64
        );
    }
    crate::outln!(
        out,
        "\nSpeedup tracks schedule density ~1:1 because pruned taps are whole\n\
         scheduling units — the structural advantage over channel-last layouts,\n\
         where a zero tap still occupies its K columns inside every lowered row."
    );
    out
}

/// Run the experiment, printing the report.
pub fn run() {
    print!("{}", report());
}
