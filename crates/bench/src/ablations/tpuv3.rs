//! **Ablation: the TPU-v3 hypothesis** — paper Sec. VII-A closes its word
//! size analysis with: "with a word size of 8, the vector memory bandwidth
//! utilization is below 50%. This insight explains why the TPUv3 chooses to
//! add another systolic array to leverage this extra vector memory
//! bandwidth." This ablation tests the claim: add the second MXU and see
//! whether the spare port bandwidth really carries it.

use crate::fmt::{banner, header};
use iconv_tpusim::{SimMode, Simulator, TpuConfig};
use iconv_workloads::all_models;

/// Run the ablation.
/// Render the experiment's full report.
pub fn report() -> String {
    let mut out = String::new();
    banner(
        &mut out,
        "Ablation: TPU-v2 (1 MXU) vs TPU-v3 (2 MXUs sharing the vector memories)",
    );
    let v2 = Simulator::new(TpuConfig::tpu_v2());
    let v3 = Simulator::new(TpuConfig::tpu_v3());
    header(
        &mut out,
        &["model", "v2 ms", "v3 ms", "speedup", "v2 idle%", "v3 idle%"],
        &[10, 8, 8, 8, 9, 9],
    );
    let mut acc = 0.0;
    let models = all_models(8);
    for m in &models {
        let r2 = v2.simulate_model(m, SimMode::ChannelFirst);
        let r3 = v3.simulate_model(m, SimMode::ChannelFirst);
        let s2 = r2.seconds(v2.config()) * 1e3;
        let s3 = r3.seconds(v3.config()) * 1e3;
        acc += s2 / s3;
        crate::outln!(
            out,
            "{:>10}  {:>8.2}  {:>8.2}  {:>7.2}x  {:>9.1}  {:>9.1}",
            m.name,
            s2,
            s3,
            s2 / s3,
            100.0 * r2.sram_idle_ratio(),
            100.0 * r3.sram_idle_ratio()
        );
    }
    crate::outln!(
        out,
        "\naverage inference speedup: {:.2}x — the second MXU rides on port bandwidth\n\
         the word-8 design left idle (v2 idle ratios above), corroborating the\n\
         paper's explanation of the v3 design.",
        acc / models.len() as f64
    );

    banner(
        &mut out,
        "Same comparison, one training step (fwd + wgrad + dgrad), ResNet-50",
    );
    let model = iconv_workloads::resnet50(8);
    header(&mut out, &["chip", "step ms", "achieved TF/s"], &[6, 9, 13]);
    for (name, sim) in [("v2", &v2), ("v3", &v3)] {
        let reports = sim.simulate_model_training(&model);
        let cycles: u64 = reports
            .iter()
            .map(|(r, k)| r.total_cycles() * *k as u64)
            .sum();
        let tf = iconv_tpusim::training::training_tflops(sim.config(), &reports);
        crate::outln!(
            out,
            "{:>6}  {:>9.2}  {:>13.1}",
            name,
            sim.config().cycles_to_seconds(cycles) * 1e3,
            tf
        );
    }
    out
}

/// Run the experiment, printing the report.
pub fn run() {
    print!("{}", report());
}
