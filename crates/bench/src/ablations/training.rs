//! **Ablation: training step breakdown** — forward / weight-gradient /
//! input-gradient cycles per network on TPUSim, exercising the
//! `iconv_core::backward` lowering at timing level. TPU-v2/v3 are training
//! chips; this shows the channel-first decomposition carries the whole
//! training step, not just inference.

use crate::fmt::{banner, header};
use iconv_tpusim::{Simulator, TpuConfig};
use iconv_workloads::all_models;

/// Run the ablation.
/// Render the experiment's full report.
pub fn report() -> String {
    let mut out = String::new();
    banner(
        &mut out,
        "Ablation: training-step breakdown on TPUSim (batch 8)",
    );
    let sim = Simulator::new(TpuConfig::tpu_v2());
    header(
        &mut out,
        &[
            "model", "fwd ms", "wgrad ms", "dgrad ms", "step ms", "step/fwd",
        ],
        &[10, 8, 9, 9, 8, 9],
    );
    for m in all_models(8) {
        let reports = sim.simulate_model_training(&m);
        let mut fwd = 0u64;
        let mut wg = 0u64;
        let mut dg = 0u64;
        for (r, k) in &reports {
            fwd += r.forward.cycles * *k as u64;
            wg += r.wgrad.cycles * *k as u64;
            dg += r.dgrad.as_ref().map_or(0, |d| d.cycles) * *k as u64;
        }
        let to_ms = |c: u64| sim.config().cycles_to_seconds(c) * 1e3;
        crate::outln!(
            out,
            "{:>10}  {:>8.2}  {:>9.2}  {:>9.2}  {:>8.2}  {:>8.2}x",
            m.name,
            to_ms(fwd),
            to_ms(wg),
            to_ms(dg),
            to_ms(fwd + wg + dg),
            (fwd + wg + dg) as f64 / fwd as f64
        );
    }
    crate::outln!(
        out,
        "\nBoth gradients inherit the per-tap 1x1 decomposition (dW = A'dY per tap,\n\
         dX += dY·B' per tap), so a training step costs ~3 forward passes — the\n\
         classic rule of thumb, recovered from the lowered schedules."
    );
    out
}

/// Run the experiment, printing the report.
pub fn run() {
    print!("{}", report());
}
