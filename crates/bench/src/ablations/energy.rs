//! **Ablation: energy** — the same activity counters behind the paper's
//! performance figures, charged with first-order per-event energies:
//! implicit vs explicit im2col, and the vector-memory word-size sweep from
//! the energy angle.

use crate::fmt::{banner, header};
use iconv_tpusim::{EnergyModel, SimMode, Simulator, TpuConfig};
use iconv_workloads::all_models;

/// Run the ablation.
/// Render the experiment's full report.
pub fn report() -> String {
    let mut out = String::new();
    let model = EnergyModel::default();

    banner(
        &mut out,
        "Ablation: energy per inference, implicit vs explicit im2col (batch 8)",
    );
    header(
        &mut out,
        &["model", "impl mJ", "expl mJ", "ratio", "impl GF/W"],
        &[10, 9, 9, 7, 10],
    );
    let cfg = TpuConfig::tpu_v2();
    let sim = Simulator::new(cfg);
    for m in all_models(8) {
        let mut imp = iconv_tpusim::EnergyReport::default();
        let mut exp = iconv_tpusim::EnergyReport::default();
        let mut flops = 0u64;
        let mut secs = 0.0;
        let merge =
            |acc: &mut iconv_tpusim::EnergyReport, e: iconv_tpusim::EnergyReport, k: usize| {
                acc.mac_mj += e.mac_mj * k as f64;
                acc.sram_mj += e.sram_mj * k as f64;
                acc.dram_mj += e.dram_mj * k as f64;
                acc.static_mj += e.static_mj * k as f64;
            };
        for l in &m.layers {
            let ri = sim.simulate_conv(&l.name, &l.shape, SimMode::ChannelFirst);
            let re = sim.simulate_conv(&l.name, &l.shape, SimMode::Explicit);
            flops += ri.flops * l.count as u64;
            secs += ri.seconds(&cfg) * l.count as f64;
            merge(&mut imp, model.energy_of(&ri, &cfg), l.count);
            merge(&mut exp, model.energy_of(&re, &cfg), l.count);
        }
        crate::outln!(
            out,
            "{:>10}  {:>9.1}  {:>9.1}  {:>6.2}  {:>10.0}",
            m.name,
            imp.total_mj(),
            exp.total_mj(),
            exp.total_mj() / imp.total_mj(),
            imp.gflops_per_watt(flops, secs)
        );
    }
    crate::outln!(out, "Explicit im2col pays its duplicated matrix twice over the HBM — the\nmemory-energy face of the Table I overhead.");

    banner(&mut out, "Ablation: word size vs energy (VGG16, batch 8)");
    header(
        &mut out,
        &["word", "SRAM mJ", "total mJ", "GFLOPS/W"],
        &[6, 9, 9, 9],
    );
    let vgg = iconv_workloads::vgg16(8);
    for elems in [1usize, 2, 4, 8, 16, 32] {
        let cfg = TpuConfig::builder_from(TpuConfig::tpu_v2())
            .word_elems(elems)
            .build()
            .expect("word sweep config");
        let sim = Simulator::new(cfg);
        let mut total = iconv_tpusim::EnergyReport::default();
        let mut flops = 0u64;
        let mut secs = 0.0;
        for l in &vgg.layers {
            let r = sim.simulate_conv(&l.name, &l.shape, SimMode::ChannelFirst);
            let e = model.energy_of(&r, &cfg);
            total.mac_mj += e.mac_mj;
            total.sram_mj += e.sram_mj;
            total.dram_mj += e.dram_mj;
            total.static_mj += e.static_mj;
            flops += r.flops;
            secs += r.seconds(&cfg);
        }
        crate::outln!(
            out,
            "{:>6}  {:>9.1}  {:>9.1}  {:>9.0}",
            elems,
            total.sram_mj,
            total.total_mj(),
            total.gflops_per_watt(flops, secs)
        );
    }
    crate::outln!(
        out,
        "Wide words amortize the per-access decode energy — the energy twin of the\n\
         Fig. 16b area argument for TPU-v2's word-8 choice."
    );
    out
}

/// Run the experiment, printing the report.
pub fn run() {
    print!("{}", report());
}
