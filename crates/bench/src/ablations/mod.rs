//! Ablation studies beyond the paper's figures: design-choice experiments
//! DESIGN.md calls out (DRAM layout, batch/word packing, the TPU-v3
//! dual-MXU hypothesis, and the training-step extension).

pub mod batching;
pub mod dataflow;
pub mod depthwise;
pub mod energy;
pub mod layout;
pub mod multicore;
pub mod scalability;
pub mod sparsity;
pub mod tpuv3;
pub mod training;
