//! **Ablation: batch size vs word packing** — the HWCN layout fills each
//! 8-element vector-memory word with batch items (paper Sec. IV-A
//! "Leveraging Large Word Size"). This ablation sweeps the batch to show
//! where the packing breaks down (shallow batches on strided layers) and
//! that dense layers recover via spatial packing.

use crate::fmt::{banner, header};
use iconv_tensor::ConvShape;
use iconv_tpusim::{SimMode, Simulator, TpuConfig};

/// Run the ablation.
/// Render the experiment's full report.
pub fn report() -> String {
    let mut out = String::new();
    let sim = Simulator::new(TpuConfig::tpu_v2());
    banner(
        &mut out,
        "Ablation: batch size vs vector-memory word packing (word = 8)",
    );
    header(
        &mut out,
        &[
            "batch",
            "dense TF/s",
            "dense util%",
            "strided TF/s",
            "strided util%",
        ],
        &[6, 11, 11, 13, 13],
    );
    for n in [1usize, 2, 4, 8, 16, 32, 64] {
        let dense = ConvShape::square(n, 128, 28, 128, 3, 1, 1).expect("valid layer");
        let strided = ConvShape::square(n, 128, 28, 128, 3, 2, 1).expect("valid layer");
        let d = sim.simulate_conv("d", &dense, SimMode::ChannelFirst);
        let s = sim.simulate_conv("s", &strided, SimMode::ChannelFirst);
        crate::outln!(
            out,
            "{:>6}  {:>11.1}  {:>11.1}  {:>13.1}  {:>13.1}",
            n,
            d.tflops(sim.config()),
            100.0 * d.utilization(sim.config()),
            s.tflops(sim.config()),
            100.0 * s.utilization(sim.config())
        );
    }
    crate::outln!(
        out,
        "\nDense (stride-1) layers pack words spatially at any batch; strided layers\n\
         rely on batch packing and stall the serializer below batch 8 — why the\n\
         TPU-v2 design leans on training-scale batches (paper Sec. IV-C)."
    );
    out
}

/// Run the experiment, printing the report.
pub fn run() {
    print!("{}", report());
}
