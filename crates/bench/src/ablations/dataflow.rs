//! **Ablation: systolic dataflow** — weight-stationary (TPU) versus
//! output-stationary for im2col-lowered convolution GEMMs, at matched array
//! size. SCALE-Sim-style comparisons usually assume explicit im2col; here
//! both dataflows are timed on the lowered shapes the channel-first
//! algorithm actually produces (`M = N·Ho·Wo` huge, `K` per pass ≤ 128).

use crate::fmt::{banner, header};
use iconv_systolic::{gemm_timing, os_gemm_cycles, ArrayConfig, OsArrayConfig};
use iconv_workloads::resnet50;

/// Run the ablation.
/// Render the experiment's full report.
pub fn report() -> String {
    let mut out = String::new();
    banner(
        &mut out,
        "Ablation: weight-stationary vs output-stationary dataflow (128x128 array)",
    );
    let ws = ArrayConfig {
        rows: 128,
        cols: 128,
    };
    let os = OsArrayConfig {
        rows: 128,
        cols: 128,
    };

    header(
        &mut out,
        &["layer", "M", "K", "N", "WS cycles", "OS cycles", "OS/WS"],
        &[14, 8, 6, 6, 10, 10, 6],
    );
    let model = resnet50(8);
    let mut total_ws = 0u64;
    let mut total_os = 0u64;
    for l in model.layers.iter().filter(|l| {
        [
            "conv1",
            "conv2_1_3x3",
            "conv3_1_3x3",
            "conv4_1_3x3",
            "conv5_1_3x3",
            "conv5_1_1x1b",
        ]
        .contains(&l.name.as_str())
    }) {
        let (m, n, k) = l.shape.gemm_mnk();
        let wsc = gemm_timing(ws, m, n, k, true).cycles;
        let osc = os_gemm_cycles(os, m, n, k);
        total_ws += wsc;
        total_os += osc;
        crate::outln!(
            out,
            "{:>14}  {:>8}  {:>6}  {:>6}  {:>10}  {:>10}  {:>6.2}",
            l.name,
            m,
            k,
            n,
            wsc,
            osc,
            osc as f64 / wsc as f64
        );
    }
    crate::outln!(
        out,
        "\nResNet-50 sample total: OS/WS = {:.2}. Lowered conv GEMMs are tall and\n\
         skinny (M = N·Ho·Wo dwarfs K and N), so the weight-stationary design —\n\
         stream the long dimension past small resident weights — is the right one,\n\
         and it is also what makes the channel-first schedule natural: each 1x1\n\
         tile's weights are exactly one resident K-slice.",
        total_os as f64 / total_ws as f64
    );

    crate::outln!(out, "\nDeep square reductions (M = N = 128): a cycle-count wash — OS's advantage\nthere is partial-sum traffic (psums never leave the array), not time:");
    header(
        &mut out,
        &["K", "WS cycles", "OS cycles", "OS/WS"],
        &[8, 10, 10, 6],
    );
    for k in [1024usize, 4096, 16384, 65536] {
        let wsc = gemm_timing(ws, 128, 128, k, true).cycles;
        let osc = os_gemm_cycles(os, 128, 128, k);
        crate::outln!(
            out,
            "{:>8}  {:>10}  {:>10}  {:>6.2}",
            k,
            wsc,
            osc,
            osc as f64 / wsc as f64
        );
    }
    out
}

/// Run the experiment, printing the report.
pub fn run() {
    print!("{}", report());
}
