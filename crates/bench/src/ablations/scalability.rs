//! **Ablation: hardware-scalability argument (paper Sec. II-C)** — quantify
//! "Unscalable Hardware": the crossbar + banked SRAM the channel-last
//! implicit design needs at each GEMM-engine scale, versus channel-first's
//! single-bank, crossbar-free requirement.

use crate::fmt::{banner, header};
use iconv_sram::{AreaModel, CrossbarModel};

/// Run the ablation.
/// Render the experiment's full report.
pub fn report() -> String {
    let mut out = String::new();
    banner(
        &mut out,
        "Ablation (Sec. II-C): routing hardware required per GEMM-engine scale",
    );
    let xbar = CrossbarModel::default();
    let area = AreaModel::freepdk45();
    header(
        &mut out,
        &[
            "PE rows",
            "xbar area*",
            "xbar pJ/bit",
            "banked mm2",
            "chan-first",
        ],
        &[8, 10, 11, 10, 10],
    );
    // Banked-SRAM penalty: P banks of (2MB/P) each versus one wide-word
    // macro bank of the same total capacity.
    let total = 2 * 1024 * 1024u64;
    let single = area.area_mm2(total, 32);
    for ports in [32usize, 64, 128, 256, 512] {
        let per_bank = (total / ports as u64).max(64);
        let banked: f64 = area.area_mm2(per_bank, 4) * ports as f64;
        crate::outln!(
            out,
            "{:>8}  {:>10.1}  {:>11.1}  {:>10.2}  {:>10}",
            ports,
            xbar.area(ports, 32),
            xbar.energy_per_bit(ports),
            banked,
            "0 (none)"
        );
    }
    crate::outln!(
        out,
        "\n*area in units of one 32-lane GPU shuffle network (what Lym et al. reuse\n\
         for free on an SM). At TPU scale the crossbar alone costs tens of such\n\
         networks and grows quadratically, while {}-way banking inflates the SRAM\n\
         ~{:.1}x over a single wide-word bank — the paper's reason channel-last\n\
         implicit im2col cannot ride up to a 128x128 systolic array.",
        128,
        area.area_mm2((total / 128).max(64), 4) * 128.0 / single
    );
    out
}

/// Run the experiment, printing the report.
pub fn run() {
    print!("{}", report());
}
