//! Per-experiment trace capture for `expall --trace`.
//!
//! Each paper experiment gets one cheap, *representative* traced run — not
//! a re-execution of the full sweep — recorded into an
//! [`iconv_trace::Recorder`]. The recorders serialize to Chrome-trace JSON
//! (one file per experiment id, loadable in Perfetto / `chrome://tracing`)
//! and roll up into the `counters` object of `results/summary.json`.
//!
//! Everything here is deterministic: the builders fan out across workers
//! via [`iconv_par::par_map_jobs`] (which preserves input order) and each
//! builder runs its simulations sequentially, so the recorded spans and
//! counters are byte-identical for every worker count.

use iconv_dram::{BankSim, DramConfig, Request};
use iconv_gpusim::{GpuAlgo, GpuConfig, GpuSim};
use iconv_tpusim::{SimMode, Simulator, TpuConfig};
use iconv_trace::Recorder;

/// Batch size for the representative runs — small enough that the whole
/// trace pass costs a fraction of one experiment.
const BATCH: usize = 8;

fn tpu() -> Simulator {
    Simulator::new(TpuConfig::tpu_v2())
}

fn gpu() -> GpuSim {
    GpuSim::new(GpuConfig::v100())
}

fn table1(rec: &mut Recorder) {
    // Explicit-im2col memory accounting: trace the explicit lowering of
    // each Table I model so the transform cycles/bytes are visible.
    let sim = tpu();
    for m in iconv_workloads::table1_models(BATCH) {
        sim.simulate_model_traced(&m, SimMode::Explicit, rec);
    }
}

fn fig02(rec: &mut Recorder) {
    // Explicit vs implicit: the same model under both lowerings.
    let sim = tpu();
    let model = iconv_workloads::resnet50(BATCH);
    sim.simulate_model_traced(&model, SimMode::ChannelFirst, rec);
    sim.simulate_model_traced(&model, SimMode::Explicit, rec);
}

fn fig04(rec: &mut Recorder) {
    // Stride sensitivity: representative ResNet layers on both machines.
    let sim = tpu();
    let g = gpu();
    for stride in [1usize, 2] {
        for l in iconv_workloads::resnet_representative_layers(BATCH, stride) {
            sim.simulate_conv_traced(&l.name, &l.shape, SimMode::ChannelFirst, rec);
            g.simulate_conv_traced(&l.name, &l.shape, GpuAlgo::CudnnImplicit, rec);
        }
    }
}

fn fig13(rec: &mut Recorder) {
    // GEMM validation: a subset of the sweep through the traced GEMM path.
    let sim = tpu();
    for (i, &(m, n, k)) in crate::experiments::fig13::gemm_sweep().iter().enumerate() {
        if i % 4 == 0 {
            sim.simulate_gemm_traced(&format!("gemm {m}x{n}x{k}"), m, n, k, rec);
        }
    }
}

fn fig14(rec: &mut Recorder) {
    // Multi-tile sweep on the paper's probe layer.
    let sim = tpu();
    let shape = iconv_tensor::ConvShape::square(8, 8, 128, 128, 3, 1, 1).expect("valid layer");
    for tiles in 1..=4usize {
        sim.simulate_conv_traced(
            &format!("probe x{tiles}"),
            &shape,
            SimMode::ChannelFirstGrouped(tiles),
            rec,
        );
    }
}

fn fig15(rec: &mut Recorder) {
    // Layer-wise validation: every model under the channel-first schedule.
    let sim = tpu();
    for m in iconv_workloads::all_models(BATCH) {
        sim.simulate_model_traced(&m, SimMode::ChannelFirst, rec);
    }
}

fn fig16(rec: &mut Recorder) {
    // DSE: one word-size point of the SRAM sweep plus the bank-level DRAM
    // simulator on a sequential and a same-bank (row-thrashing) stream.
    let sim = Simulator::new(TpuConfig::tpu_v2().with_word_elems(8));
    let model = iconv_workloads::vgg16(BATCH);
    sim.simulate_model_traced(&model, SimMode::ChannelFirst, rec);

    let cfg = DramConfig::hbm_tpu_v2();
    let seq: Vec<Request> = (0..64).map(|i| Request::new(i * 256, 256)).collect();
    let stride = cfg.row_bytes * cfg.banks;
    let thrash: Vec<Request> = (0..64).map(|i| Request::new(i * stride, 256)).collect();
    BankSim::new(cfg).run_traced(&seq, rec);
    BankSim::new(cfg).run_traced(&thrash, rec);
}

fn fig17(rec: &mut Recorder) {
    // GPU parity: one model under cuDNN-implicit and the paper's method.
    let g = gpu();
    let model = iconv_workloads::alexnet(BATCH);
    for l in &model.layers {
        g.simulate_conv_traced(&l.name, &l.shape, GpuAlgo::CudnnImplicit, rec);
        g.simulate_conv_traced(
            &l.name,
            &l.shape,
            GpuAlgo::ChannelFirst { reuse: true },
            rec,
        );
    }
}

fn fig18(rec: &mut Recorder) {
    // Strided layers on the GPU, both algorithms.
    let g = gpu();
    for l in iconv_workloads::resnet50(BATCH)
        .strided_layers()
        .into_iter()
        .filter(|l| l.shape.ci >= 16)
    {
        g.simulate_conv_traced(&l.name, &l.shape, GpuAlgo::CudnnImplicit, rec);
        g.simulate_conv_traced(
            &l.name,
            &l.shape,
            GpuAlgo::ChannelFirst { reuse: true },
            rec,
        );
    }
}

fn tune_trace(rec: &mut Recorder) {
    // Design-space search: for one representative strided layer, trace the
    // Table-II default and the tuned winner of each target side by side,
    // so the before/after spans land in the same file.
    use iconv_tune::{default_config, tune, InProcessSource, TuneOptions, ALL_TARGETS};
    let src = InProcessSource::new();
    let shape = iconv_workloads::alexnet(BATCH).layers[0].shape;
    for target in ALL_TARGETS {
        let est = tune(&src, &shape, target, &TuneOptions::default());
        for (tag, cfg) in [("default", default_config(target)), ("tuned", est.best)] {
            match cfg.to_work(shape) {
                iconv_api::Work::TpuConv { shape, mode, hw } => {
                    Simulator::new(iconv_api::resolve_tpu(&hw)).simulate_conv_traced(
                        &format!("tune {tag}"),
                        &shape,
                        mode,
                        rec,
                    );
                }
                iconv_api::Work::GpuConv { shape, algo, hw } => {
                    GpuSim::new(iconv_api::resolve_gpu(&hw)).simulate_conv_traced(
                        &format!("tune {tag}"),
                        &shape,
                        algo,
                        rec,
                    );
                }
                _ => unreachable!("tuned configs denote concrete conv works"),
            }
        }
    }
}

fn passes(rec: &mut Recorder) {
    // Backward/transposed passes plus the indirect-buffer lowering on one
    // representative layer each, so the per-pass phase spans are visible.
    use iconv_core::{ConvPass, ALL_PASSES};
    let sim = tpu();
    let g = gpu();
    let shape = iconv_workloads::alexnet(BATCH).layers[1].shape;
    for &pass in &ALL_PASSES {
        sim.simulate_pass_traced(
            &format!("alexnet conv2 {pass}"),
            &shape,
            pass,
            SimMode::ChannelFirst,
            rec,
        );
    }
    sim.simulate_conv_traced("alexnet conv2 indirect", &shape, SimMode::Indirect, rec);
    g.simulate_conv_traced("alexnet conv2 indirect", &shape, GpuAlgo::Indirect, rec);
    let up = &iconv_workloads::unet(BATCH).layers[10];
    sim.simulate_pass_traced(
        &format!("unet {} transpose", up.name),
        &up.shape,
        ConvPass::Transpose,
        SimMode::ChannelFirst,
        rec,
    );
}

/// One trace capture: the experiment id and its builder.
pub type TraceBuilder = (&'static str, fn(&mut Recorder));

/// One trace builder per paper experiment, in figure order (the ids match
/// [`crate::par::EXPERIMENTS`]).
pub const TRACES: &[TraceBuilder] = &[
    ("table1", table1),
    ("fig02", fig02),
    ("fig04", fig04),
    ("fig13", fig13),
    ("fig14", fig14),
    ("fig15", fig15),
    ("fig16", fig16),
    ("fig17", fig17),
    ("fig18", fig18),
    ("tune", tune_trace),
    ("passes", passes),
];

/// Build every experiment trace on `jobs` workers. Output order and
/// content are independent of `jobs`.
pub fn build_traces(jobs: usize) -> Vec<(&'static str, Recorder)> {
    iconv_par::par_map_jobs(jobs, TRACES, |&(id, build)| {
        let mut rec = Recorder::new();
        build(&mut rec);
        (id, rec)
    })
}

/// Flatten the recorders' counters into `"<id>.<counter>"` rows, in
/// experiment order then counter-name order — the `counters` object of
/// `results/summary.json`.
pub fn rollup(traces: &[(&'static str, Recorder)]) -> Vec<(String, u64)> {
    let mut rows = Vec::new();
    for (id, rec) in traces {
        for (name, value) in rec.counters() {
            rows.push((format!("{id}.{name}"), *value));
        }
    }
    rows
}

/// Write one Chrome-trace JSON file per experiment into `dir`
/// (`<dir>/<id>.json`), creating the directory if needed.
pub fn write_chrome_traces(
    dir: &std::path::Path,
    traces: &[(&'static str, Recorder)],
) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    for (id, rec) in traces {
        std::fs::write(dir.join(format!("{id}.json")), rec.to_chrome_json())?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_experiment_records_something() {
        let traces = build_traces(2);
        assert_eq!(traces.len(), crate::par::EXPERIMENTS.len());
        for ((id, rec), (exp_id, _)) in traces.iter().zip(crate::par::EXPERIMENTS) {
            assert_eq!(id, exp_id, "trace ids must track the experiment list");
            assert!(!rec.is_empty(), "{id} recorded nothing");
            assert!(!rec.counters().is_empty(), "{id} has no counters");
        }
    }

    #[test]
    fn rollup_prefixes_and_preserves_values() {
        let traces = build_traces(1);
        let rows = rollup(&traces);
        assert!(rows.iter().any(|(k, _)| k == "fig13.tpusim.cycles"));
        assert!(rows.iter().any(|(k, _)| k == "fig16.dram.row_hits"));
        assert!(rows.iter().any(|(k, _)| k == "fig17.gpusim.cycles"));
        let fig13 = &traces.iter().find(|(id, _)| *id == "fig13").unwrap().1;
        let direct = fig13.counters()["tpusim.cycles"];
        let rolled = rows
            .iter()
            .find(|(k, _)| k == "fig13.tpusim.cycles")
            .unwrap()
            .1;
        assert_eq!(direct, rolled);
    }

    #[test]
    fn chrome_files_appear_on_disk() {
        let dir = std::env::temp_dir().join("iconv-trace-test");
        let _ = std::fs::remove_dir_all(&dir);
        let traces: Vec<_> = build_traces(1).into_iter().take(2).collect();
        write_chrome_traces(&dir, &traces).unwrap();
        for (id, _) in &traces {
            let body = std::fs::read_to_string(dir.join(format!("{id}.json"))).unwrap();
            assert!(body.contains("\"traceEvents\": ["), "{id}");
            assert!(body.starts_with('{'), "{id}");
            assert!(body.trim_end().ends_with('}'), "{id}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
