//! Runner for the `energy` ablation; see `iconv_bench::ablations`.
fn main() {
    iconv_bench::ablations::energy::run();
}
