//! Runner for the `tpuv3` ablation; see `iconv_bench::ablations`.
fn main() {
    iconv_bench::ablations::tpuv3::run();
}
