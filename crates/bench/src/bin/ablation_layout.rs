//! Runner for the `layout` ablation; see `iconv_bench::ablations`.
fn main() {
    iconv_bench::ablations::layout::run();
}
