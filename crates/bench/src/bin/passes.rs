//! Runner for the per-pass cost experiment; see `iconv_bench::experiments`.
//!
//! With `--baseline [FILE]` it instead emits the `passes` section of
//! `BENCH_baseline.json` (cycles + DRAM bytes per CI pass-matrix leg on
//! the AlexNet table) — the document CI regenerates and diffs against the
//! committed baseline so pass-cost regressions are caught like cache
//! regressions are.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        None => iconv_bench::experiments::passes::run(),
        Some("--baseline") => {
            let json = iconv_bench::experiments::passes::baseline_json();
            match args.get(1) {
                Some(path) => std::fs::write(path, &json).unwrap_or_else(|e| {
                    eprintln!("passes: cannot write {path}: {e}");
                    std::process::exit(1);
                }),
                None => print!("{json}"),
            }
        }
        Some(other) => {
            eprintln!("passes: unknown argument {other:?}; usage: passes [--baseline [FILE]]");
            std::process::exit(2);
        }
    }
}
