//! Runner for the paper's fig02 experiment; see `iconv_bench::experiments`.
fn main() {
    iconv_bench::experiments::fig02::run();
}
