//! Runner for the `scalability` ablation; see `iconv_bench::ablations`.
fn main() {
    iconv_bench::ablations::scalability::run();
}
