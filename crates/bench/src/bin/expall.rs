//! Run every experiment runner (Table I + Figs. 2-18) fanned out across
//! worker threads, then the headline-metric summary.
//!
//! Stdout is byte-identical to a sequential run for any worker count:
//! experiments render into buffers which are printed in figure order.
//! Worker count: `--jobs N` beats `ICONV_JOBS`, which beats the core count.
//! Per-experiment wall-clock timings go to stderr and into the `timings`
//! key of `results/summary.json`.

use iconv_bench::{par, summary};

fn jobs_from_args() -> usize {
    let parse = |v: &str| {
        v.parse()
            .unwrap_or_else(|_| panic!("invalid job count {v:?}"))
    };
    let mut jobs = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--jobs" || a == "-j" {
            let v = args
                .next()
                .unwrap_or_else(|| panic!("{a} requires a value"));
            jobs = Some(parse(&v));
        } else if let Some(v) = a.strip_prefix("--jobs=") {
            jobs = Some(parse(v));
        } else {
            panic!("unknown argument {a:?}; usage: expall [--jobs N]");
        }
    }
    jobs.unwrap_or_else(iconv_par::default_jobs)
}

fn main() {
    let jobs = jobs_from_args();
    let t0 = std::time::Instant::now();

    let runs = par::run_experiments(jobs);
    for r in &runs {
        print!("{}", r.report);
    }

    let t_summary = std::time::Instant::now();
    let summary = summary::compute_jobs(jobs);
    let mut timings: Vec<(&str, f64)> = runs.iter().map(|r| (r.name, r.seconds)).collect();
    timings.push(("summary", t_summary.elapsed().as_secs_f64()));

    // Machine-readable headline metrics + timings for regression tracking.
    let json = summary::to_json_with_timings(&summary, &timings);
    match std::fs::create_dir_all("results")
        .and_then(|()| std::fs::write("results/summary.json", &json))
    {
        Ok(()) => eprintln!("\n[wrote results/summary.json]"),
        Err(err) => eprintln!("\n[could not write results/summary.json: {err}]"),
    }

    eprintln!("[per-experiment wall-clock, {jobs} worker(s)]");
    for (name, secs) in &timings {
        eprintln!("  {name:>10}  {secs:>8.3}s");
    }
    eprintln!("[expall completed in {:.1}s]", t0.elapsed().as_secs_f64());
}
