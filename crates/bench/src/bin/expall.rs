//! Run every experiment runner in sequence (Table I + Figs. 2-18).
use iconv_bench::experiments as e;

fn main() {
    let t0 = std::time::Instant::now();
    e::table1::run();
    e::fig02::run();
    e::fig04::run();
    e::fig13::run();
    e::fig14::run();
    e::fig15::run();
    e::fig16::run();
    e::fig17::run();
    e::fig18::run();
    // Machine-readable headline metrics for regression tracking.
    let summary = iconv_bench::summary::compute();
    let json = iconv_bench::summary::to_json(&summary);
    match std::fs::create_dir_all("results")
        .and_then(|()| std::fs::write("results/summary.json", &json))
    {
        Ok(()) => eprintln!("\n[wrote results/summary.json]"),
        Err(err) => eprintln!("\n[could not write results/summary.json: {err}]"),
    }
    eprintln!("[expall completed in {:.1}s]", t0.elapsed().as_secs_f64());
}
