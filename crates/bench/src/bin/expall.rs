//! Run every experiment runner (Table I + Figs. 2-18) fanned out across
//! worker threads, then the headline-metric summary.
//!
//! Stdout is byte-identical to a sequential run for any worker count:
//! experiments render into buffers which are printed in figure order.
//! Worker count: `--jobs N` beats `ICONV_JOBS`, which beats the core count.
//! Per-experiment wall-clock timings go to stderr and into the `timings`
//! key of `results/summary.json`; per-experiment trace counters land in its
//! `counters` key, and `--trace DIR` additionally writes one Chrome-trace
//! JSON per experiment into `DIR` (open in Perfetto or `chrome://tracing`).

use iconv_bench::serve_source::ServeSource;
use iconv_bench::{cli, par, summary, traces};

/// Build the summary, optionally routing layer estimates through an
/// `iconv-serve` server. A remote address uses that server; otherwise an
/// in-process one is spawned for the duration of the summary. Either way
/// the result is byte-identical to the in-process computation (pinned by
/// `tests/via_serve.rs`).
fn compute_summary(jobs: usize, args: &cli::ExpallArgs) -> summary::Summary {
    if !args.via_serve {
        return summary::compute_jobs(jobs);
    }
    match &args.serve_addr {
        Some(addr) => {
            let src = ServeSource::connect(addr).unwrap_or_else(|err| {
                eprintln!("expall: cannot reach serve endpoint {addr}: {err}");
                std::process::exit(1);
            });
            let s = summary::compute_jobs_with(jobs, &src);
            let st = src.stats();
            eprintln!(
                "[via-serve {addr}: {} requests, {} hits, {} misses]",
                st.requests, st.hits, st.misses
            );
            s
        }
        None => {
            let handle = iconv_serve::spawn(iconv_serve::ServerConfig {
                workers: jobs,
                ..iconv_serve::ServerConfig::default()
            })
            .unwrap_or_else(|err| {
                eprintln!("expall: cannot spawn in-process serve: {err}");
                std::process::exit(1);
            });
            let addr = handle.local_addr().to_string();
            let src = ServeSource::connect(&addr).unwrap_or_else(|err| {
                eprintln!("expall: cannot reach in-process serve: {err}");
                std::process::exit(1);
            });
            let s = summary::compute_jobs_with(jobs, &src);
            drop(src);
            let st = handle.shutdown();
            eprintln!(
                "[via-serve (in-process): {} requests, {} hits, {} misses]",
                st.requests, st.hits, st.misses
            );
            s
        }
    }
}

fn main() {
    let args = match cli::parse_expall_args(std::env::args().skip(1)) {
        Ok(args) => args,
        Err(err) => {
            eprintln!("expall: {err}");
            std::process::exit(2);
        }
    };
    let jobs = args.jobs.unwrap_or_else(iconv_par::default_jobs);
    let t0 = std::time::Instant::now();

    let runs = par::run_experiments(jobs);
    for r in &runs {
        print!("{}", r.report);
    }

    let t_trace = std::time::Instant::now();
    let recs = traces::build_traces(jobs);
    let counters = traces::rollup(&recs);
    if let Some(dir) = &args.trace_dir {
        let dir = std::path::Path::new(dir);
        match traces::write_chrome_traces(dir, &recs) {
            Ok(()) => eprintln!("[wrote {} chrome traces to {}]", recs.len(), dir.display()),
            Err(err) => eprintln!("[could not write traces to {}: {err}]", dir.display()),
        }
    }

    let t_summary = std::time::Instant::now();
    let summary = compute_summary(jobs, &args);
    let mut timings: Vec<(&str, f64)> = runs.iter().map(|r| (r.name, r.seconds)).collect();
    timings.push(("traces", (t_summary - t_trace).as_secs_f64()));
    timings.push(("summary", t_summary.elapsed().as_secs_f64()));

    // Machine-readable headline metrics + counters + timings for regression
    // tracking.
    let json = summary::to_json_full(&summary, &counters, &timings);
    match std::fs::create_dir_all("results")
        .and_then(|()| std::fs::write("results/summary.json", &json))
    {
        Ok(()) => eprintln!("\n[wrote results/summary.json]"),
        Err(err) => eprintln!("\n[could not write results/summary.json: {err}]"),
    }

    eprintln!("[per-experiment wall-clock, {jobs} worker(s)]");
    for (name, secs) in &timings {
        eprintln!("  {name:>10}  {secs:>8.3}s");
    }
    eprintln!("[expall completed in {:.1}s]", t0.elapsed().as_secs_f64());
}
