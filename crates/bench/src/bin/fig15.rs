//! Runner for the paper's fig15 experiment; see `iconv_bench::experiments`.
fn main() {
    iconv_bench::experiments::fig15::run();
}
