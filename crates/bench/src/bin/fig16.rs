//! Runner for the paper's fig16 experiment; see `iconv_bench::experiments`.
fn main() {
    iconv_bench::experiments::fig16::run();
}
