//! Runner for the `sparsity` ablation; see `iconv_bench::ablations`.
fn main() {
    iconv_bench::ablations::sparsity::run();
}
