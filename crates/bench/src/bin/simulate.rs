//! `simulate` — a small CLI over the simulators, for downstream users who
//! want numbers for their own layers/models without writing Rust.
//!
//! ```text
//! simulate --target tpu        --model resnet50 --batch 8
//! simulate --target tpu-v3     --model vgg16 --batch 8 --train
//! simulate --target gpu        --layer 64,56,64,3,1,1 --batch 8
//! simulate --target tpu        --layer 3,224,64,7,2,3 --batch 64
//! ```
//!
//! `--layer` takes `ci,hw,co,f,stride,pad`.

use iconv_gpusim::{GpuAlgo, GpuConfig, GpuSim};
use iconv_tensor::ConvShape;
use iconv_tpusim::{SimMode, Simulator, TpuConfig};
use std::process::ExitCode;

struct Args {
    target: String,
    model: Option<String>,
    layer: Option<Vec<usize>>,
    batch: usize,
    train: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        target: "tpu".to_string(),
        model: None,
        layer: None,
        batch: 8,
        train: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--target" => args.target = it.next().ok_or("--target needs a value")?,
            "--model" => args.model = Some(it.next().ok_or("--model needs a value")?),
            "--layer" => {
                let spec = it.next().ok_or("--layer needs ci,hw,co,f,stride,pad")?;
                let vals: Result<Vec<usize>, _> =
                    spec.split(',').map(|v| v.trim().parse()).collect();
                let vals = vals.map_err(|e| format!("bad --layer: {e}"))?;
                if vals.len() != 6 {
                    return Err("--layer needs exactly ci,hw,co,f,stride,pad".into());
                }
                args.layer = Some(vals);
            }
            "--batch" => {
                args.batch = it
                    .next()
                    .ok_or("--batch needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --batch: {e}"))?;
            }
            "--train" => args.train = true,
            "--help" | "-h" => return Err("help".into()),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if args.model.is_none() && args.layer.is_none() {
        return Err("one of --model or --layer is required".into());
    }
    Ok(args)
}

fn usage() {
    eprintln!(
        "simulate — run a layer or model through the TPU/GPU simulators\n\n\
         USAGE:\n  simulate --target tpu|tpu-v3|gpu (--model NAME | --layer ci,hw,co,f,s,p)\n\
         \x20          [--batch N] [--train]\n\n\
         MODELS: alexnet zfnet vgg16 resnet50 googlenet densenet121 yolov2\n\
         EXAMPLES:\n  simulate --target tpu --model resnet50 --batch 8\n\
         \x20 simulate --target gpu --layer 64,56,64,3,2,1 --batch 8\n\
         \x20 simulate --target tpu-v3 --model vgg16 --train"
    );
}

fn lookup_model(name: &str, batch: usize) -> Option<iconv_workloads::Model> {
    match name.to_ascii_lowercase().as_str() {
        "alexnet" => Some(iconv_workloads::alexnet(batch)),
        "zfnet" => Some(iconv_workloads::zfnet(batch)),
        "vgg16" | "vgg" => Some(iconv_workloads::vgg16(batch)),
        "resnet50" | "resnet" => Some(iconv_workloads::resnet50(batch)),
        "googlenet" | "inception" => Some(iconv_workloads::googlenet(batch)),
        "densenet121" | "densenet" => Some(iconv_workloads::densenet121(batch)),
        "yolov2" | "yolo" => Some(iconv_workloads::yolov2(batch)),
        _ => None,
    }
}

fn run_tpu(cfg: TpuConfig, args: &Args) -> Result<(), String> {
    let sim = Simulator::new(cfg);
    if let Some(name) = &args.model {
        let model = lookup_model(name, args.batch).ok_or(format!("unknown model {name}"))?;
        if args.train {
            let reports = sim.simulate_model_training(&model);
            let cycles: u64 = reports
                .iter()
                .map(|(r, k)| r.total_cycles() * *k as u64)
                .sum();
            println!(
                "{} training step @ batch {}: {:.2} ms, {:.1} TFLOPS",
                model.name,
                args.batch,
                cfg.cycles_to_seconds(cycles) * 1e3,
                iconv_tpusim::training::training_tflops(&cfg, &reports)
            );
        } else {
            let rep = sim.simulate_model(&model, SimMode::ChannelFirst);
            println!(
                "{} inference @ batch {}: {:.2} ms, {:.1} TFLOPS ({:.0}% of peak), {:.0} MB DRAM",
                model.name,
                args.batch,
                rep.seconds(&cfg) * 1e3,
                rep.tflops(&cfg),
                100.0 * rep.tflops(&cfg) / cfg.peak_tflops(),
                rep.total_dram_bytes() as f64 / 1e6
            );
        }
    } else {
        let shape = layer_shape(args)?;
        let rep = sim.simulate_conv("layer", &shape, SimMode::ChannelFirst);
        println!(
            "{shape}: {} cycles = {:.1} us, {:.1} TFLOPS ({:.0}% util), workspace {:.2} MB [{}-bound]",
            rep.cycles,
            rep.seconds(&cfg) * 1e6,
            rep.tflops(&cfg),
            100.0 * rep.utilization(&cfg),
            rep.workspace_bytes as f64 / 1e6,
            rep.bottleneck(&cfg)
        );
        if args.train {
            let step = sim.simulate_training_step("layer", &shape, true);
            println!(
                "training step: fwd {} + wgrad {} + dgrad {} = {} cycles",
                step.forward.cycles,
                step.wgrad.cycles,
                step.dgrad.as_ref().map_or(0, |d| d.cycles),
                step.total_cycles()
            );
        }
    }
    Ok(())
}

fn run_gpu(args: &Args) -> Result<(), String> {
    let cfg = GpuConfig::v100();
    let sim = GpuSim::new(cfg);
    if args.train {
        return Err("--train is TPU-only (the GPU model times inference schedules)".into());
    }
    if let Some(name) = &args.model {
        let model = lookup_model(name, args.batch).ok_or(format!("unknown model {name}"))?;
        let ours = sim.model_seconds(&model, GpuAlgo::ChannelFirst { reuse: true });
        let cudnn = sim.model_seconds(&model, GpuAlgo::CudnnImplicit);
        println!(
            "{} @ batch {}: ours {:.2} ms, cuDNN-proxy {:.2} ms (ratio {:.3})",
            model.name,
            args.batch,
            ours * 1e3,
            cudnn * 1e3,
            ours / cudnn
        );
    } else {
        let shape = layer_shape(args)?;
        for algo in [
            GpuAlgo::CudnnImplicit,
            GpuAlgo::ChannelFirst { reuse: true },
            GpuAlgo::GemmEquivalent,
        ] {
            let r = sim.simulate_conv("layer", &shape, algo);
            println!(
                "{:<22} {:.1} us, {:.1} TFLOPS",
                algo.to_string(),
                r.seconds(&cfg) * 1e6,
                r.tflops(&cfg)
            );
        }
    }
    Ok(())
}

fn layer_shape(args: &Args) -> Result<ConvShape, String> {
    let v = args.layer.as_ref().ok_or("--layer required")?;
    ConvShape::square(args.batch, v[0], v[1], v[2], v[3], v[4], v[5])
        .map_err(|e| format!("invalid layer: {e}"))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            if e != "help" {
                eprintln!("error: {e}\n");
            }
            usage();
            return ExitCode::from(u8::from(e != "help") * 2);
        }
    };
    let result = match args.target.as_str() {
        "tpu" => run_tpu(TpuConfig::tpu_v2(), &args),
        "tpu-v3" => run_tpu(TpuConfig::tpu_v3(), &args),
        "gpu" => run_gpu(&args),
        other => Err(format!("unknown target {other} (tpu | tpu-v3 | gpu)")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}
