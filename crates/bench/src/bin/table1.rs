//! Runner for the paper's table1 experiment; see `iconv_bench::experiments`.
fn main() {
    iconv_bench::experiments::table1::run();
}
