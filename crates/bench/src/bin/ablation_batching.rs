//! Runner for the `batching` ablation; see `iconv_bench::ablations`.
fn main() {
    iconv_bench::ablations::batching::run();
}
