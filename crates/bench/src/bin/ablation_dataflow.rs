//! Runner for the `dataflow` ablation; see `iconv_bench::ablations`.
fn main() {
    iconv_bench::ablations::dataflow::run();
}
