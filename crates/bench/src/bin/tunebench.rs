//! `tunebench` — the machine-readable tune sweep behind `BENCH_tune.json`.
//!
//! Runs the design-space search for every layer of every CNN workload and
//! every tune target, gates the construction invariant (tuned cycles <=
//! Table-II default cycles, per layer), cross-checks a slice of the sweep
//! through a live `iconv-serve` instance (serve answers must equal the
//! in-process search value for value, and the `serve.tune.*` ledger must
//! conserve), and writes the whole table as JSON. Exit status is the CI
//! gate: nonzero when any layer regresses past its default or the serve
//! cross-check fails.

use iconv_api::proto::tuned_config_json;
use iconv_api::TuneTarget;
use iconv_bench::experiments::tune_table::{target_label, tune_opts};
use iconv_tune::{tune, InProcessSource, TuneEstimate, ALL_TARGETS};
use iconv_workloads::Model;

const USAGE: &str = "usage: tunebench [--out PATH] [--skip-serve-check]";
const BATCH: usize = 8;

fn parse_args(
    args: impl IntoIterator<Item = String>,
) -> Result<(std::path::PathBuf, bool), String> {
    let mut out = std::path::PathBuf::from("BENCH_tune.json");
    let mut serve_check = true;
    let mut args = args.into_iter();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => {
                out = args
                    .next()
                    .map(std::path::PathBuf::from)
                    .ok_or_else(|| format!("--out requires a value; {USAGE}"))?;
            }
            "--skip-serve-check" => serve_check = false,
            other => return Err(format!("unknown argument {other:?}; {USAGE}")),
        }
    }
    Ok((out, serve_check))
}

/// JSON number rendering for cycle totals (integral TPU totals print as
/// integers; GPU totals keep their shortest round-trip decimal form).
fn cycles(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 9.007e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Replay a slice of the sweep through a live server and check that serve
/// answers match the in-process search and the tune ledger conserves.
/// Returns the JSON fragment for the `serve` key, plus pass/fail.
fn serve_cross_check(
    models: &[Model],
    reference: &[(TuneTarget, Vec<Vec<TuneEstimate>>)],
) -> (String, bool) {
    let handle = match iconv_serve::spawn(iconv_serve::ServerConfig::default()) {
        Ok(h) => h,
        Err(err) => return (format!("{{\"error\":\"spawn: {err}\"}}"), false),
    };
    let addr = handle.local_addr().to_string();
    let mut client =
        match iconv_serve::Client::connect_retry(&addr, iconv_serve::DEFAULT_CONNECT_TIMEOUT) {
            Ok(c) => c,
            Err(err) => return (format!("{{\"error\":\"connect: {err}\"}}"), false),
        };

    // One model per target keeps the check fast while still exercising the
    // full serve path (search, cache, ledger) for every target kind.
    let mut matches = true;
    let mut asked = 0u64;
    for (ti, (target, per_model)) in reference.iter().enumerate() {
        let mi = ti % models.len();
        for (li, l) in models[mi].layers.iter().enumerate() {
            // Twice: the repeat must come from the tune store, not a new
            // search.
            for _ in 0..2 {
                asked += 1;
                match client.tune(&l.shape, *target) {
                    Ok(est) if est == per_model[mi][li] => {}
                    Ok(est) => {
                        eprintln!(
                            "tunebench: serve mismatch {} {}/{}: {est:?}",
                            target_label(*target),
                            models[mi].name,
                            l.name
                        );
                        matches = false;
                    }
                    Err(err) => {
                        eprintln!("tunebench: serve tune failed: {err}");
                        matches = false;
                    }
                }
            }
        }
    }
    let stats = handle.shutdown();
    let conserved = stats.tunes == stats.tune_searches + stats.tune_cached;
    let all_answered = stats.tunes == asked;
    let json = format!(
        "{{\"requests\":{},\"tunes\":{},\"tune_searches\":{},\"tune_cached\":{},\
         \"ledger_conserved\":{},\"matches_inprocess\":{}}}",
        stats.requests, stats.tunes, stats.tune_searches, stats.tune_cached, conserved, matches
    );
    (json, matches && conserved && all_answered)
}

fn main() {
    let (out_path, serve_check) = match parse_args(std::env::args().skip(1)) {
        Ok(v) => v,
        Err(err) => {
            eprintln!("tunebench: {err}");
            std::process::exit(2);
        }
    };
    let t0 = std::time::Instant::now();
    let src = InProcessSource::new();
    let opts = tune_opts();
    let models = iconv_workloads::all_models(BATCH);

    // The full sweep: every layer x every target, kept in (target, model,
    // layer) order for both the JSON and the serve cross-check.
    let mut violations = 0u64;
    let mut sweep: Vec<(TuneTarget, Vec<Vec<TuneEstimate>>)> = Vec::new();
    let mut out = String::with_capacity(1 << 16);
    out.push_str("{\n  \"bench\": \"tune\",\n");
    out.push_str(&format!(
        "  \"config\": {{\"batch\": {BATCH}, \"jobs\": {}, \"batch_chunk\": {}}},\n",
        opts.jobs, opts.batch_chunk
    ));
    out.push_str("  \"targets\": [\n");
    for (ti, &target) in ALL_TARGETS.iter().enumerate() {
        let mut per_model: Vec<Vec<TuneEstimate>> = Vec::with_capacity(models.len());
        out.push_str(&format!(
            "    {{\"target\": \"{}\", \"models\": [\n",
            target_label(target)
        ));
        for (mi, m) in models.iter().enumerate() {
            let ests: Vec<TuneEstimate> = m
                .layers
                .iter()
                .map(|l| tune(&src, &l.shape, target, &opts))
                .collect();
            out.push_str(&format!(
                "      {{\"model\": \"{}\", \"layers\": [\n",
                m.name
            ));
            for (li, (l, est)) in m.layers.iter().zip(&ests).enumerate() {
                if est.tuned_cycles > est.default_cycles {
                    eprintln!(
                        "tunebench: VIOLATION {} {}/{}: tuned {} > default {}",
                        target_label(target),
                        m.name,
                        l.name,
                        est.tuned_cycles,
                        est.default_cycles
                    );
                    violations += 1;
                }
                out.push_str(&format!(
                    "        {{\"layer\": \"{}\", \"count\": {}, \"default_cycles\": {}, \
                     \"tuned_cycles\": {}, \"speedup\": {:.4}, \"candidates\": {}, \
                     \"pruned\": {}, \"best\": {}}}{}\n",
                    l.name,
                    l.count,
                    cycles(est.default_cycles),
                    cycles(est.tuned_cycles),
                    est.default_cycles / est.tuned_cycles,
                    est.candidates,
                    est.pruned,
                    tuned_config_json(&est.best),
                    if li + 1 < m.layers.len() { "," } else { "" }
                ));
            }
            out.push_str(&format!(
                "      ]}}{}\n",
                if mi + 1 < models.len() { "," } else { "" }
            ));
            per_model.push(ests);
        }
        out.push_str(&format!(
            "    ]}}{}\n",
            if ti + 1 < ALL_TARGETS.len() { "," } else { "" }
        ));
        sweep.push((target, per_model));
    }
    out.push_str("  ],\n");
    out.push_str(&format!("  \"violations\": {violations},\n"));

    let serve_ok = if serve_check {
        let (json, ok) = serve_cross_check(&models, &sweep);
        out.push_str(&format!("  \"serve\": {json},\n"));
        ok
    } else {
        out.push_str("  \"serve\": null,\n");
        true
    };
    out.push_str(&format!(
        "  \"wall_seconds\": {:.3}\n}}\n",
        t0.elapsed().as_secs_f64()
    ));

    if let Err(err) = std::fs::write(&out_path, &out) {
        eprintln!("tunebench: cannot write {}: {err}", out_path.display());
        std::process::exit(1);
    }
    let layers: usize = models.iter().map(|m| m.layers.len()).sum();
    eprintln!(
        "tunebench: {} targets x {layers} layers, {violations} violation(s), serve check {} \
         [wrote {} in {:.1}s]",
        ALL_TARGETS.len(),
        if serve_check {
            if serve_ok {
                "passed"
            } else {
                "FAILED"
            }
        } else {
            "skipped"
        },
        out_path.display(),
        t0.elapsed().as_secs_f64()
    );
    if violations > 0 || !serve_ok {
        std::process::exit(1);
    }
}
