//! Runner for the paper's fig18 experiment; see `iconv_bench::experiments`.
fn main() {
    iconv_bench::experiments::fig18::run();
}
