//! Runner for the `multicore` ablation; see `iconv_bench::ablations`.
fn main() {
    iconv_bench::ablations::multicore::run();
}
