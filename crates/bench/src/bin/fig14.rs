//! Runner for the paper's fig14 experiment; see `iconv_bench::experiments`.
fn main() {
    iconv_bench::experiments::fig14::run();
}
