//! Runner for the paper's fig13 experiment; see `iconv_bench::experiments`.
fn main() {
    iconv_bench::experiments::fig13::run();
}
