//! Runner for the paper's fig04 experiment; see `iconv_bench::experiments`.
fn main() {
    iconv_bench::experiments::fig04::run();
}
