//! Runner for the paper's fig17 experiment; see `iconv_bench::experiments`.
fn main() {
    iconv_bench::experiments::fig17::run();
}
