//! Runner for the `depthwise` ablation; see `iconv_bench::ablations`.
fn main() {
    iconv_bench::ablations::depthwise::run();
}
