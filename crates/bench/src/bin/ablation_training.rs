//! Runner for the `training` ablation; see `iconv_bench::ablations`.
fn main() {
    iconv_bench::ablations::training::run();
}
