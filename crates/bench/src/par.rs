//! Parallel experiment fan-out.
//!
//! Every experiment renders its report into a `String` (see
//! [`crate::fmt`]), so `expall` can execute the full set on worker threads
//! and then print the buffers in figure order — the bytes on stdout are
//! identical to a sequential run regardless of the worker count.
//!
//! Worker count: `--jobs N` on the command line beats the `ICONV_JOBS`
//! environment variable, which beats [`iconv_par::default_jobs`].

use std::time::Instant;

/// One runnable experiment: its id and report renderer.
pub type Experiment = (&'static str, fn() -> String);

/// Result of one experiment executed by [`run_experiments`].
#[derive(Debug, Clone)]
pub struct ExperimentRun {
    /// Experiment id (`table1`, `fig02`, …).
    pub name: &'static str,
    /// The rendered report, exactly as the standalone binary prints it.
    pub report: String,
    /// Wall-clock seconds this experiment took on its worker.
    pub seconds: f64,
}

/// Every paper experiment in figure order — the order `expall` prints.
pub const EXPERIMENTS: &[Experiment] = &[
    ("table1", crate::experiments::table1::report),
    ("fig02", crate::experiments::fig02::report),
    ("fig04", crate::experiments::fig04::report),
    ("fig13", crate::experiments::fig13::report),
    ("fig14", crate::experiments::fig14::report),
    ("fig15", crate::experiments::fig15::report),
    ("fig16", crate::experiments::fig16::report),
    ("fig17", crate::experiments::fig17::report),
    ("fig18", crate::experiments::fig18::report),
    ("tune", crate::experiments::tune_table::report),
    ("passes", crate::experiments::passes::report),
];

/// The ablation studies, for `--ablations` sweeps.
pub const ABLATIONS: &[Experiment] = &[
    ("batching", crate::ablations::batching::report),
    ("dataflow", crate::ablations::dataflow::report),
    ("depthwise", crate::ablations::depthwise::report),
    ("energy", crate::ablations::energy::report),
    ("layout", crate::ablations::layout::report),
    ("multicore", crate::ablations::multicore::report),
    ("scalability", crate::ablations::scalability::report),
    ("sparsity", crate::ablations::sparsity::report),
    ("tpuv3", crate::ablations::tpuv3::report),
    ("training", crate::ablations::training::report),
];

/// Run a set of experiments on `jobs` workers, returning results in the
/// input order with per-experiment wall-clock timings.
pub fn run_set(jobs: usize, set: &[Experiment]) -> Vec<ExperimentRun> {
    iconv_par::par_map_jobs(jobs, set, |&(name, f)| {
        let t0 = Instant::now();
        let report = f();
        ExperimentRun {
            name,
            report,
            seconds: t0.elapsed().as_secs_f64(),
        }
    })
}

/// Run all paper experiments ([`EXPERIMENTS`]) on `jobs` workers.
pub fn run_experiments(jobs: usize) -> Vec<ExperimentRun> {
    run_set(jobs, EXPERIMENTS)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Parallel and sequential fan-out produce byte-identical reports —
    /// the determinism guarantee `expall` builds on. Uses the two cheapest
    /// experiments to keep the unit suite fast; the full-set check lives in
    /// `tests/determinism.rs`.
    #[test]
    fn parallel_reports_match_sequential() {
        let set: Vec<_> = EXPERIMENTS
            .iter()
            .copied()
            .filter(|(n, _)| *n == "table1" || *n == "fig04")
            .collect();
        let seq = run_set(1, &set);
        let par = run_set(4, &set);
        assert_eq!(seq.len(), par.len());
        for (s, p) in seq.iter().zip(&par) {
            assert_eq!(s.name, p.name);
            assert_eq!(s.report, p.report, "report drift for {}", s.name);
        }
    }
}
