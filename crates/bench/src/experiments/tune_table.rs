//! **Tune table** — per-layer design-space search versus the Table-II
//! defaults, across the full CNN workload suite.
//!
//! For every layer of every model, [`iconv_tune::tune`] enumerates the
//! candidate grid (TPU: mode x array x layout x schedule; GPU: algo x
//! block/residency/schedule) and reports the strict-minimum winner next to
//! the paper's fixed configuration. Candidate 0 *is* the default, so tuned
//! cycles can never exceed default cycles — the report shows how much the
//! fixed design points of Table II leave on the table per network, and the
//! AlexNet detail shows *which* design-space moves win per layer. The
//! machine-readable form of the same sweep is `tunebench` -> `BENCH_tune.json`.

use iconv_api::proto::tpu_mode_wire;
use iconv_api::{TpuChip, TuneTarget, TunedConfig};
use iconv_tune::{tune, InProcessSource, TuneOptions, ALL_TARGETS};

use crate::fmt::{banner, header};

/// Reporting label for a target (the Table-II column it replaces).
pub fn target_label(target: TuneTarget) -> &'static str {
    match target {
        TuneTarget::Tpu { chip: TpuChip::V2 } => "tpu-v2",
        TuneTarget::Tpu { chip: TpuChip::V3 } => "tpu-v3",
        TuneTarget::Gpu => "gpu-v100",
    }
}

/// Compact human spelling of a winning configuration.
pub fn describe(cfg: &TunedConfig) -> String {
    match cfg {
        TunedConfig::Tpu { mode, hw } => {
            let mut s = tpu_mode_wire(*mode);
            if let Some(a) = hw.array {
                s.push_str(&format!(" array={a}"));
            }
            if let Some(l) = hw.layout {
                s.push_str(&format!(" layout={l:?}"));
            }
            if let Some(p) = hw.schedule {
                s.push_str(&format!(" sched={p}"));
            }
            s
        }
        TunedConfig::Gpu { algo, hw } => {
            let mut s = algo.to_string();
            if let Some((bm, bn, bk)) = hw.block {
                s.push_str(&format!(" block={bm}x{bn}x{bk}"));
            }
            if let Some(b) = hw.blocks_per_sm {
                s.push_str(&format!(" resident={b}"));
            }
            if let Some(p) = hw.schedule {
                s.push_str(&format!(" sched={p}"));
            }
            s
        }
    }
}

/// The measurement options every tune in this report (and `tunebench`)
/// uses: fan the candidate table over the ambient worker count — the search
/// result is pinned invariant to both knobs, so the report bytes match a
/// sequential run.
pub fn tune_opts() -> TuneOptions {
    TuneOptions {
        jobs: iconv_par::default_jobs(),
        batch_chunk: 16,
    }
}

/// Render the experiment's full report.
pub fn report() -> String {
    let mut out = String::new();
    let src = InProcessSource::new();
    let opts = tune_opts();
    let models = iconv_workloads::all_models(8);

    for target in ALL_TARGETS {
        banner(
            &mut out,
            &format!(
                "Tuned vs Table-II default cycles, target {} (batch 8)",
                target_label(target)
            ),
        );
        header(
            &mut out,
            &[
                "model",
                "layers",
                "improved",
                "default Mcyc",
                "tuned Mcyc",
                "speedup",
            ],
            &[12, 6, 8, 12, 12, 7],
        );
        for m in &models {
            let mut default = 0.0f64;
            let mut tuned = 0.0f64;
            let mut improved = 0usize;
            for l in &m.layers {
                let est = tune(&src, &l.shape, target, &opts);
                default += est.default_cycles * l.count as f64;
                tuned += est.tuned_cycles * l.count as f64;
                if est.tuned_cycles < est.default_cycles {
                    improved += 1;
                }
            }
            crate::outln!(
                out,
                "{:>12}  {:>6}  {:>8}  {:>12.2}  {:>12.2}  {:>7.3}",
                m.name,
                m.layers.len(),
                improved,
                default / 1e6,
                tuned / 1e6,
                default / tuned
            );
        }
    }

    // Per-layer detail for one network: which design-space move wins where.
    let alexnet = &models[0];
    banner(
        &mut out,
        &format!("{} per-layer winners, target tpu-v2", alexnet.name),
    );
    header(
        &mut out,
        &["layer", "default", "tuned", "speedup", "best config"],
        &[8, 10, 10, 7, 30],
    );
    let v2 = TuneTarget::Tpu { chip: TpuChip::V2 };
    for l in &alexnet.layers {
        let est = tune(&src, &l.shape, v2, &opts);
        crate::outln!(
            out,
            "{:>8}  {:>10.0}  {:>10.0}  {:>7.3}  {}",
            l.name,
            est.default_cycles,
            est.tuned_cycles,
            est.default_cycles / est.tuned_cycles,
            describe(&est.best)
        );
    }
    out
}

/// Run the experiment, printing the report.
pub fn run() {
    print!("{}", report());
}
