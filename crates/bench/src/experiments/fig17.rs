//! **Fig. 17** — end-to-end execution time of our channel-first GPU
//! implementation normalized to the cuDNN (channel-last) proxy, batch 8.
//!
//! Paper shape target: near parity — ours averages ~1 % slower, the gap
//! attributed to cuDNN's microarchitecture-specific tuning.

use crate::fmt::{banner, header};
use iconv_gpusim::{GpuAlgo, GpuConfig, GpuSim};
use iconv_workloads::all_models;

/// Run the experiment.
/// Render the experiment's full report.
pub fn report() -> String {
    let mut out = String::new();
    banner(
        &mut out,
        "Fig. 17: our GPU implementation vs cuDNN proxy, batch 8 (normalized time)",
    );
    header(
        &mut out,
        &["model", "cuDNN", "ours", "ratio"],
        &[10, 8, 8, 7],
    );
    let gpu = GpuSim::new(GpuConfig::v100());
    let mut acc = 0.0;
    let models = all_models(8);
    for m in &models {
        let cudnn = gpu.model_seconds(m, GpuAlgo::CudnnImplicit);
        let ours = gpu.model_seconds(m, GpuAlgo::ChannelFirst { reuse: true });
        acc += ours / cudnn;
        crate::outln!(
            out,
            "{:>10}  {:>8.3}  {:>8.3}  {:>6.3}",
            m.name,
            1.0,
            ours / cudnn,
            ours / cudnn
        );
    }
    let avg = acc / models.len() as f64;
    crate::outln!(
        out,
        "average: ours / cuDNN = {avg:.3} (paper: ~1.01, i.e. ~1% slower on average)"
    );
    out
}

/// Run the experiment, printing the report.
pub fn run() {
    print!("{}", report());
}
