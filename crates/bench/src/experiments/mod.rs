//! One module per paper table/figure; each exposes `run()` printing the
//! paper-formatted rows. The `expall` binary runs them all.

pub mod fig02;
pub mod fig04;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod fig17;
pub mod fig18;
pub mod passes;
pub mod table1;
pub mod tune_table;
