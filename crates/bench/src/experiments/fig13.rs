//! **Fig. 13** — TPUSim validation against the "measured" TPU-v2 proxy:
//! (a) the GEMM primitive over M/N/K ∈ {256…8192}; (b) synthetic CONV
//! layers that do not trigger the multi-tile optimization (Ci ≥ 128).
//!
//! Paper shape targets: average error ≈ 4.4 % (GEMM) and ≈ 4.9 % (CONV).
//! Also prints the Table II simulator configuration for reference.

use crate::fmt::banner;
use iconv_models::{mean_abs_pct_error, TpuMeasuredProxy};
use iconv_tensor::ConvShape;
use iconv_tpusim::{SimMode, Simulator, TpuConfig};

/// The GEMM sweep of Fig. 13a.
pub fn gemm_sweep() -> Vec<(usize, usize, usize)> {
    let dims = [256usize, 512, 1024, 2048, 4096, 8192];
    let mut out = Vec::new();
    for &m in &dims {
        for &n in &[256usize, 1024, 4096, 8192] {
            for &k in &[256usize, 1024, 4096, 8192] {
                out.push((m, n, k));
            }
        }
    }
    out
}

/// The CONV sweep of Fig. 13b (no multi-tile: Ci ≥ 128).
pub fn conv_sweep(batch: usize) -> Vec<ConvShape> {
    let mut out = Vec::new();
    for &(ci, hw, co, f, s) in &[
        (128usize, 112usize, 128usize, 3usize, 1usize),
        (128, 56, 128, 3, 1),
        (128, 56, 256, 3, 1),
        (128, 56, 256, 3, 2),
        (256, 56, 256, 3, 1),
        (256, 28, 256, 3, 1),
        (256, 28, 512, 3, 2),
        (512, 28, 512, 3, 1),
        (512, 14, 512, 3, 1),
        (512, 14, 512, 3, 2),
        (1024, 14, 1024, 3, 1),
        (1024, 7, 1024, 3, 1),
        (128, 56, 128, 5, 1),
        (256, 28, 256, 5, 1),
        (256, 56, 256, 1, 1),
        (512, 28, 512, 1, 2),
        (1024, 14, 1024, 1, 1),
        (2048, 7, 2048, 1, 1),
    ] {
        out.push(ConvShape::square(batch, ci, hw, co, f, s, f / 2).expect("valid sweep entry"));
    }
    out
}

/// Run the experiment.
/// Render the experiment's full report.
pub fn report() -> String {
    let mut out = String::new();
    let cfg = TpuConfig::tpu_v2();
    banner(&mut out, "Table II: TPUSim configuration");
    crate::outln!(
        out,
        "  {}x{} systolic array @ {} MHz ({:.1} peak TFLOPS)",
        cfg.array.rows,
        cfg.array.cols,
        cfg.clock_mhz,
        cfg.peak_tflops()
    );
    crate::outln!(
        out,
        "  {} MB unified on-chip memory: {} SRAMs, {} x {} B words",
        cfg.total_sram_bytes() / (1024 * 1024),
        cfg.array.rows,
        cfg.vector_mem.word_elems,
        cfg.vector_mem.elem_bytes
    );
    crate::outln!(
        out,
        "  {:.0} GB/s HBM ({} B/cycle)",
        cfg.dram.bytes_per_cycle * cfg.clock_mhz * 1e6 / 1e9,
        cfg.dram.bytes_per_cycle
    );

    let sim = Simulator::new(cfg);
    let proxy = TpuMeasuredProxy::tpu_v2();

    banner(
        &mut out,
        "Fig. 13a: GEMM primitive — TPUSim vs TPU-v2(proxy) cycles",
    );
    let mut pairs = Vec::new();
    for (m, n, k) in gemm_sweep() {
        let s = sim.simulate_gemm("g", m, n, k).cycles as f64;
        let p = proxy.gemm_cycles(m, n, k);
        pairs.push((s, p));
    }
    // Print a sample of the sweep.
    for (i, (m, n, k)) in gemm_sweep().iter().enumerate().step_by(19) {
        let (s, p) = pairs[i];
        crate::outln!(
            out,
            "  M{m:>5} N{n:>5} K{k:>5}: sim {s:>12.0}  measured {p:>12.0}  err {:>5.1}%",
            100.0 * (s - p).abs() / p
        );
    }
    crate::outln!(
        out,
        "GEMM average error over {} points: {:.2}% (paper: 4.42%)",
        pairs.len(),
        100.0 * mean_abs_pct_error(&pairs)
    );

    banner(
        &mut out,
        "Fig. 13b: CONV layers (no multi-tile) — TPUSim vs TPU-v2(proxy)",
    );
    let mut pairs = Vec::new();
    for shape in conv_sweep(8) {
        let s = sim.simulate_conv("c", &shape, SimMode::ChannelFirst).cycles as f64;
        let p = proxy.conv_cycles(&shape);
        crate::outln!(
            out,
            "  {shape}: sim {s:>10.0}  measured {p:>10.0}  err {:>5.1}%",
            100.0 * (s - p).abs() / p
        );
        pairs.push((s, p));
    }
    crate::outln!(
        out,
        "CONV average error over {} layers: {:.2}% (paper: 4.87%)",
        pairs.len(),
        100.0 * mean_abs_pct_error(&pairs)
    );
    out
}

/// Run the experiment, printing the report.
pub fn run() {
    print!("{}", report());
}
