//! **Fig. 4** — TFLOPS of implicit im2col on representative ResNet layers
//! under strides 1/2/4, with the equivalent plain GEMM as reference:
//! (a) the GPU (channel-last proxy) degrades with stride; (b) the TPU
//! (channel-first) is insensitive.

use crate::fmt::{banner, header};
use iconv_gpusim::{GpuAlgo, GpuConfig, GpuSim};
use iconv_tpusim::{SimMode, Simulator, TpuConfig};
use iconv_workloads::resnet_representative_layers;

/// Run the experiment.
/// Render the experiment's full report.
pub fn report() -> String {
    let mut out = String::new();
    let batch = 64;

    banner(
        &mut out,
        "Fig. 4a: V100 TFLOPS vs stride (channel-last implicit + GEMM ref)",
    );
    header(
        &mut out,
        &[
            "layer", "s1 conv", "s1 gemm", "s2 conv", "s2 gemm", "s4 conv", "s4 gemm",
        ],
        &[16, 8, 8, 8, 8, 8, 8],
    );
    let gpu = GpuSim::new(GpuConfig::v100());
    let mut drops2 = Vec::new();
    let mut drops4 = Vec::new();
    for i in 0..4 {
        let mut cells = vec![format!(
            "{:>16}",
            resnet_representative_layers(batch, 1)[i]
                .name
                .trim_end_matches("-s1")
        )];
        let mut tf_s1 = 0.0;
        for stride in [1usize, 2, 4] {
            let layer = &resnet_representative_layers(batch, stride)[i];
            let conv = gpu
                .simulate_conv(&layer.name, &layer.shape, GpuAlgo::CudnnImplicit)
                .tflops(gpu.config());
            let gemm = gpu
                .simulate_conv(&layer.name, &layer.shape, GpuAlgo::GemmEquivalent)
                .tflops(gpu.config());
            cells.push(format!("{conv:>8.1}"));
            cells.push(format!("{gemm:>8.1}"));
            match stride {
                1 => tf_s1 = conv,
                2 => drops2.push(1.0 - conv / tf_s1),
                _ => drops4.push(1.0 - conv / tf_s1),
            }
        }
        crate::outln!(out, "{}", cells.join("  "));
    }
    crate::outln!(
        out,
        "mean GPU degradation: stride2 {:.0}%, stride4 {:.0}% (paper: ~30% / ~60%)",
        100.0 * drops2.iter().sum::<f64>() / drops2.len() as f64,
        100.0 * drops4.iter().sum::<f64>() / drops4.len() as f64
    );

    banner(
        &mut out,
        "Fig. 4b: TPU TFLOPS vs stride (channel-first implicit + GEMM ref)",
    );
    header(
        &mut out,
        &[
            "layer", "s1 conv", "s1 gemm", "s2 conv", "s2 gemm", "s4 conv", "s4 gemm",
        ],
        &[16, 8, 8, 8, 8, 8, 8],
    );
    let tpu = Simulator::new(TpuConfig::tpu_v2());
    let mut drops2 = Vec::new();
    let mut drops4 = Vec::new();
    for i in 0..4 {
        let mut cells = vec![format!(
            "{:>16}",
            resnet_representative_layers(batch, 1)[i]
                .name
                .trim_end_matches("-s1")
        )];
        let mut tf_s1 = 0.0;
        for stride in [1usize, 2, 4] {
            let layer = &resnet_representative_layers(batch, stride)[i];
            let rep = tpu.simulate_conv(&layer.name, &layer.shape, SimMode::ChannelFirst);
            let conv = rep.tflops(tpu.config());
            let (m, n, k) = layer.shape.gemm_mnk();
            let g = tpu.simulate_gemm("g", m, n, k);
            let gemm = g.tflops(tpu.config());
            cells.push(format!("{conv:>8.1}"));
            cells.push(format!("{gemm:>8.1}"));
            match stride {
                1 => tf_s1 = conv,
                2 => drops2.push(1.0 - conv / tf_s1),
                _ => drops4.push(1.0 - conv / tf_s1),
            }
        }
        crate::outln!(out, "{}", cells.join("  "));
    }
    crate::outln!(
        out,
        "mean TPU degradation: stride2 {:.0}%, stride4 {:.0}% (paper: insensitive)",
        100.0 * drops2.iter().sum::<f64>() / drops2.len() as f64,
        100.0 * drops4.iter().sum::<f64>() / drops4.len() as f64
    );

    // Tuned-schedule column: the same TPU sweep under the double-buffered
    // DMA schedule, which prefetches the next SRAM chunk behind steady-state
    // compute. Overlap may hide exposed fill cycles but can never slow a
    // layer down, so `tuned >= conv` holds row by row (the invariant the
    // paper-invariants battery pins across the whole workload table).
    banner(
        &mut out,
        "Fig. 4b (tuned): TPU TFLOPS, single- vs double-buffered schedule",
    );
    header(
        &mut out,
        &[
            "layer", "s1 conv", "s1 tuned", "s2 conv", "s2 tuned", "s4 conv", "s4 tuned",
        ],
        &[16, 8, 8, 8, 8, 8, 8],
    );
    let tuned_cfg = TpuConfig::builder()
        .schedule(iconv_core::PipelineSchedule::DoubleBuffered)
        .build()
        .expect("tuned schedule config");
    let tuned = Simulator::new(tuned_cfg);
    for i in 0..4 {
        let mut cells = vec![format!(
            "{:>16}",
            resnet_representative_layers(batch, 1)[i]
                .name
                .trim_end_matches("-s1")
        )];
        for stride in [1usize, 2, 4] {
            let layer = &resnet_representative_layers(batch, stride)[i];
            let sb = tpu
                .simulate_conv(&layer.name, &layer.shape, SimMode::ChannelFirst)
                .tflops(tpu.config());
            let db = tuned
                .simulate_conv(&layer.name, &layer.shape, SimMode::ChannelFirst)
                .tflops(tuned.config());
            cells.push(format!("{sb:>8.1}"));
            cells.push(format!("{db:>8.1}"));
        }
        crate::outln!(out, "{}", cells.join("  "));
    }
    out
}

/// Run the experiment, printing the report.
pub fn run() {
    print!("{}", report());
}
