//! **Fig. 14** — the multi-tile optimization: (a) performance and on-chip
//! workspace versus the number of merged tiles for the paper's probe layer
//! (N=8, Ci=8, Wi=Co=128, Wf=3); (b) validation of the reverse-engineered
//! TPU strategy `tiles = MIN(128/Ci, Wf)` across channel counts.
//!
//! Paper shape targets: (a) workspace grows linearly while performance
//! saturates around 3 tiles; (b) average error ≈ 5.3 %.

use crate::fmt::{banner, header};
use iconv_models::{mean_abs_pct_error, TpuMeasuredProxy};
use iconv_tensor::ConvShape;
use iconv_tpusim::{SimMode, Simulator, TpuConfig};

/// Run the experiment.
/// Render the experiment's full report.
pub fn report() -> String {
    let mut out = String::new();
    let sim = Simulator::new(TpuConfig::tpu_v2());
    let proxy = TpuMeasuredProxy::tpu_v2();

    banner(
        &mut out,
        "Fig. 14a: multi-tile parameter sweep (N=8, Ci=8, Wi=Co=128, Wf=3)",
    );
    let shape = ConvShape::square(8, 8, 128, 128, 3, 1, 1).expect("valid layer");
    header(
        &mut out,
        &["tiles", "TFLOPS", "speedup", "workspace MB"],
        &[6, 8, 8, 13],
    );
    let base = sim
        .simulate_conv("l", &shape, SimMode::ChannelFirstGrouped(1))
        .cycles as f64;
    for tiles in 1..=8usize {
        let rep = sim.simulate_conv("l", &shape, SimMode::ChannelFirstGrouped(tiles));
        crate::outln!(
            out,
            "{:>6}  {:>8.1}  {:>7.2}x  {:>13.2}",
            tiles,
            rep.tflops(sim.config()),
            base / rep.cycles as f64,
            rep.workspace_bytes as f64 / 1e6
        );
    }
    let auto = sim.simulate_conv("l", &shape, SimMode::ChannelFirst);
    let measured = proxy.conv_cycles(&shape);
    crate::outln!(
        out,
        "TPU strategy picks MIN(128/8, 3) = 3 tiles; sim {} vs measured {:.0} cycles ({:.1}% err)",
        auto.cycles,
        measured,
        100.0 * (auto.cycles as f64 - measured).abs() / measured
    );

    banner(
        &mut out,
        "Fig. 14b: strategy validation, tiles = MIN(128/Ci, Wf)",
    );
    header(
        &mut out,
        &["Ci", "Wf", "tiles", "sim TF/s", "meas TF/s", "err%"],
        &[5, 4, 6, 9, 10, 6],
    );
    let mut pairs = Vec::new();
    for &wf in &[3usize, 5, 7] {
        for &ci in &[4usize, 8, 16, 32, 64, 128] {
            let s = ConvShape::square(8, ci, 56, 128, wf, 1, wf / 2).expect("valid layer");
            let tiles = iconv_core::tpu_group_size(128, ci, wf);
            let rep = sim.simulate_conv("l", &s, SimMode::ChannelFirst);
            let sim_tf = rep.tflops(sim.config());
            let meas_cycles = proxy.conv_cycles(&s);
            let meas_tf = s.flops() as f64 / (meas_cycles / 700e6) / 1e12;
            let err = 100.0 * (sim_tf - meas_tf).abs() / meas_tf;
            crate::outln!(
                out,
                "{ci:>5}  {wf:>4}  {tiles:>6}  {sim_tf:>9.1}  {meas_tf:>10.1}  {err:>6.1}"
            );
            pairs.push((sim_tf, meas_tf));
        }
    }
    crate::outln!(
        out,
        "average error: {:.2}% (paper: 5.3%)",
        100.0 * mean_abs_pct_error(&pairs)
    );
    out
}

/// Run the experiment, printing the report.
pub fn run() {
    print!("{}", report());
}
