//! **Fig. 18** — GPU optimizations: (a) speedup over the cuDNN proxy on the
//! benchmarked models' layers with stride > 1; (b) the inter-tile-reuse
//! reordering on layers whose global-memory fills are not fully overlapped.
//!
//! Paper shape targets: (a) average ≈ +20 %, up to ≈ +40 %; (b) average
//! ≈ +16.7 %.

use crate::fmt::{banner, header};
use iconv_gpusim::{GpuAlgo, GpuConfig, GpuSim};
use iconv_workloads::{all_models, Layer};

fn label(l: &Layer) -> String {
    format!(
        "{}-{}-{}-{}-{}",
        l.shape.wi, l.shape.ci, l.shape.co, l.shape.wf, l.shape.stride_w
    )
}

/// Run the experiment.
/// Render the experiment's full report.
pub fn report() -> String {
    let mut out = String::new();
    let gpu = GpuSim::new(GpuConfig::v100());
    let models = all_models(8);

    banner(
        &mut out,
        "Fig. 18a: strided layers — ours vs cuDNN proxy (batch 8)",
    );
    header(
        &mut out,
        &["layer (Wi-Ci-Co-Wf-s)", "cuDNN us", "ours us", "speedup"],
        &[22, 9, 9, 8],
    );
    let mut speedups = Vec::new();
    for m in &models {
        for l in m.strided_layers() {
            if l.shape.ci < 16 {
                continue; // first layers: both implementations fall back
            }
            let cudnn = gpu.simulate_conv(&l.name, &l.shape, GpuAlgo::CudnnImplicit);
            let ours = gpu.simulate_conv(&l.name, &l.shape, GpuAlgo::ChannelFirst { reuse: true });
            let speedup = cudnn.timing.cycles / ours.timing.cycles;
            crate::outln!(
                out,
                "{:>22}  {:>9.1}  {:>9.1}  {:>7.2}x",
                label(l),
                cudnn.seconds(gpu.config()) * 1e6,
                ours.seconds(gpu.config()) * 1e6,
                speedup
            );
            speedups.push(speedup);
        }
    }
    let avg = speedups.iter().sum::<f64>() / speedups.len() as f64;
    let max = speedups.iter().cloned().fold(0.0, f64::max);
    crate::outln!(
        out,
        "average speedup {:.0}%, max {:.0}% (paper: avg ~20%, up to ~40%)",
        100.0 * (avg - 1.0),
        100.0 * (max - 1.0)
    );

    banner(
        &mut out,
        "Fig. 18b: inter-tile reuse impact (memory-bound layers, batch 8)",
    );
    header(
        &mut out,
        &["layer (Wi-Ci-Co-Wf)", "no-reuse us", "reuse us", "gain"],
        &[20, 11, 9, 7],
    );
    // Select layers whose no-reuse fills are not fully overlapped by
    // compute — the paper's selection criterion.
    let mut gains = Vec::new();
    let mut seen = std::collections::BTreeSet::new();
    for m in &models {
        for l in &m.layers {
            if l.shape.hf == 1 || l.shape.ci < 16 || !seen.insert(label(l)) {
                continue; // 1x1: single tap; ci<16: fallback path
            }
            let naive =
                gpu.simulate_conv(&l.name, &l.shape, GpuAlgo::ChannelFirst { reuse: false });
            if naive.timing.memory_cycles < 0.8 * naive.timing.compute_cycles {
                continue; // fill fully overlapped: reuse cannot show
            }
            let reuse = gpu.simulate_conv(&l.name, &l.shape, GpuAlgo::ChannelFirst { reuse: true });
            let gain = naive.timing.cycles / reuse.timing.cycles;
            crate::outln!(
                out,
                "{:>20}  {:>11.1}  {:>9.1}  {:>6.2}x",
                label(l),
                naive.seconds(gpu.config()) * 1e6,
                reuse.seconds(gpu.config()) * 1e6,
                gain
            );
            gains.push(gain);
            if gains.len() >= 12 {
                break;
            }
        }
        if gains.len() >= 12 {
            break;
        }
    }
    let avg = gains.iter().sum::<f64>() / gains.len().max(1) as f64;
    crate::outln!(
        out,
        "average improvement {:.1}% over {} layers (paper: 16.7%)",
        100.0 * (avg - 1.0),
        gains.len()
    );
    out
}

/// Run the experiment, printing the report.
pub fn run() {
    print!("{}", report());
}
