//! **Fig. 16** — hardware design-space exploration with TPUSim on VGG16:
//! (a) systolic-array size versus achieved FLOPS and utilization;
//! (b) vector-memory word size versus SRAM area and bandwidth idle ratio.
//!
//! Paper shape targets: (a) FLOPS rise but utilization falls with array
//! size, roughly halving from 128 to 256 — the rationale for TPU-v2's
//! 128×128 choice; (b) the area curve is minimized at large words (word 1 ≈
//! 5× overhead, word 8 near the minimum) while the port idle ratio grows
//! with word size (>50 % idle at word 8 — the slack TPU-v3 spends on a
//! second array).

use crate::fmt::{banner, header};
use iconv_sram::AreaModel;
use iconv_tpusim::{SimMode, Simulator, TpuConfig};
use iconv_workloads::vgg16;

/// Run the experiment.
/// Render the experiment's full report.
pub fn report() -> String {
    let mut out = String::new();
    let model = vgg16(8);

    banner(
        &mut out,
        "Fig. 16a: systolic array size DSE (VGG16, total SRAM fixed)",
    );
    header(
        &mut out,
        &["array", "peak TF/s", "achieved TF/s", "utilization%"],
        &[8, 10, 14, 13],
    );
    let mut prev_util: Option<f64> = None;
    let mut halving = f64::NAN;
    for size in [32usize, 64, 128, 256, 512] {
        let cfg = TpuConfig::builder_from(TpuConfig::tpu_v2())
            .array_size(size)
            .build()
            .expect("array sweep config");
        let sim = Simulator::new(cfg);
        let rep = sim.simulate_model(&model, SimMode::ChannelFirst);
        let util = rep.tflops(&cfg) / cfg.peak_tflops();
        crate::outln!(
            out,
            "{:>4}x{:<3}  {:>10.1}  {:>14.1}  {:>13.1}",
            size,
            size,
            cfg.peak_tflops(),
            rep.tflops(&cfg),
            100.0 * util
        );
        if size == 256 {
            if let Some(p) = prev_util {
                halving = util / p;
            }
        }
        prev_util = Some(util);
    }
    crate::outln!(
        out,
        "utilization(256)/utilization(128) = {halving:.2} (paper: ~0.5)"
    );

    banner(
        &mut out,
        "Fig. 16b: vector-memory word size DSE (256 KB macro, VGG16)",
    );
    header(
        &mut out,
        &["word", "area mm2", "rel. area", "idle ratio%"],
        &[6, 10, 10, 12],
    );
    let area = AreaModel::freepdk45();
    let words_bytes: Vec<u64> = [1u64, 2, 4, 8, 16, 32].iter().map(|e| e * 4).collect();
    for elems in [1usize, 2, 4, 8, 16, 32] {
        let cfg = TpuConfig::builder_from(TpuConfig::tpu_v2())
            .word_elems(elems)
            .build()
            .expect("word sweep config");
        let sim = Simulator::new(cfg);
        let rep = sim.simulate_model(&model, SimMode::ChannelFirst);
        let bytes = (elems * 4) as u64;
        crate::outln!(
            out,
            "{:>6}  {:>10.2}  {:>10.2}  {:>12.1}",
            elems,
            area.area_mm2(256 * 1024, bytes),
            area.relative_area(256 * 1024, bytes, &words_bytes),
            100.0 * rep.sram_idle_ratio()
        );
    }
    out
}

/// Run the experiment, printing the report.
pub fn run() {
    print!("{}", report());
}
