//! **Table I** — memory usage breakdown for executing different CNNs with
//! explicit im2col.
//!
//! Paper shape target: the lowered IFMap ("Lower IFmaps") is 1.5–10× the
//! raw IFMaps across AlexNet, ResNet, VGG16, YOLO and DenseNet.

use crate::fmt::{banner, header};
use iconv_workloads::table1_models;

/// Run the experiment, printing paper-formatted rows.
/// Render the experiment's full report.
pub fn report() -> String {
    let mut out = String::new();
    banner(
        &mut out,
        "Table I: explicit-im2col memory usage (MB), batch 64, FP16",
    );
    let models = table1_models(64);
    let elem_bytes = 2; // the GPU experiments use FP16
    header(
        &mut out,
        &["", "AlexNet", "ResNet", "VGG16", "YOLO", "DesNet"],
        &[13, 9, 9, 9, 9, 9],
    );
    let mut row = |label: &str, f: &dyn Fn(&iconv_workloads::Model) -> f64| {
        let mut cells = vec![format!("{label:>13}")];
        for m in &models {
            cells.push(format!("{:>9.1}", f(m)));
        }
        crate::outln!(out, "{}", cells.join("  "));
    };
    row("IFmaps", &|m| m.ifmap_bytes(elem_bytes) as f64 / 1e6);
    row("Lower IFmaps", &|m| {
        m.lowered_bytes(elem_bytes) as f64 / 1e6
    });
    row("ratio", &|m| {
        m.lowered_bytes(elem_bytes) as f64 / m.ifmap_bytes(elem_bytes) as f64
    });
    crate::outln!(
        out,
        "\nShape target: ratios within ~1.5-10x (paper Table I measured 1.6x-10.5x on V100/cuDNN)."
    );
    out
}

/// Run the experiment, printing the report.
pub fn run() {
    print!("{}", report());
}
