//! **Fig. 2** — execution-time comparison of explicit and implicit im2col
//! on the V100 GPU model (a) and on TPUSim (b), batch 64, all 7 CNNs.
//!
//! Paper shape targets: explicit ≈ 25–30 % slower on the GPU and ≈ 23 %
//! slower on the TPU; the *GEMM portion* of the explicit method is close to
//! the total time of the implicit method (i.e. implicit im2col has
//! near-zero overhead).

use crate::fmt::{banner, header};
use iconv_gpusim::{GpuAlgo, GpuConfig, GpuSim};
use iconv_tpusim::{SimMode, Simulator, TpuConfig};
use iconv_workloads::all_models;

/// Run the experiment.
/// Render the experiment's full report.
pub fn report() -> String {
    let mut out = String::new();
    let batch = 64;
    let models = all_models(batch);

    banner(
        &mut out,
        "Fig. 2a: explicit vs implicit im2col on V100 (batch 64, normalized)",
    );
    header(
        &mut out,
        &[
            "model",
            "implicit",
            "expl.GEMM",
            "expl.im2col",
            "expl.total",
        ],
        &[10, 9, 10, 12, 11],
    );
    let gpu = GpuSim::new(GpuConfig::v100());
    let mut overhead_acc = 0.0;
    for m in &models {
        let imp: f64 = gpu.model_seconds(m, GpuAlgo::CudnnImplicit);
        let exp_reports = gpu.simulate_model(m, GpuAlgo::ExplicitIm2col);
        let exp_total: f64 = exp_reports
            .iter()
            .map(|(r, k)| r.seconds(gpu.config()) * *k as f64)
            .sum();
        let transform: f64 = exp_reports
            .iter()
            .map(|(r, k)| gpu.config().cycles_to_seconds(r.transform_cycles) * *k as f64)
            .sum();
        let gemm_part = exp_total - transform;
        overhead_acc += exp_total / imp - 1.0;
        crate::outln!(
            out,
            "{:>10}  {:>9.2}  {:>10.2}  {:>12.2}  {:>11.2}",
            m.name,
            1.0,
            gemm_part / imp,
            transform / imp,
            exp_total / imp
        );
    }
    crate::outln!(
        out,
        "average explicit slowdown on GPU: {:.0}% (paper: ~28%)",
        100.0 * overhead_acc / models.len() as f64
    );

    banner(
        &mut out,
        "Fig. 2b: explicit vs implicit im2col on TPUSim (batch 64, normalized)",
    );
    header(
        &mut out,
        &[
            "model",
            "implicit",
            "expl.GEMM",
            "expl.im2col",
            "expl.total",
        ],
        &[10, 9, 10, 12, 11],
    );
    let tpu = Simulator::new(TpuConfig::tpu_v2());
    let mut overhead_acc = 0.0;
    for m in &models {
        let imp = tpu.simulate_model(m, SimMode::ChannelFirst).total_cycles() as f64;
        let exp = tpu.simulate_model(m, SimMode::Explicit).total_cycles() as f64;
        let transform: f64 = m
            .layers
            .iter()
            .map(|l| tpu.explicit_transform_cycles(&l.shape) as f64 * l.count as f64)
            .sum();
        overhead_acc += exp / imp - 1.0;
        crate::outln!(
            out,
            "{:>10}  {:>9.2}  {:>10.2}  {:>12.2}  {:>11.2}",
            m.name,
            1.0,
            (exp - transform) / imp,
            transform / imp,
            exp / imp
        );
    }
    crate::outln!(
        out,
        "average explicit slowdown on TPU: {:.0}% (paper: ~23%)",
        100.0 * overhead_acc / models.len() as f64
    );
    out
}

/// Run the experiment, printing the report.
pub fn run() {
    print!("{}", report());
}
