//! **Fig. 15** — end-to-end model validation at batch 8: (a) per-model
//! TPUSim vs "measured" execution time; (b) the layer-wise error
//! distribution.
//!
//! Paper shape target: per-model agreement with a layer-wise MAE ≈ 5.8 %.

use crate::fmt::{banner, header};
use iconv_models::{error_distribution, mean_abs_pct_error, TpuMeasuredProxy};
use iconv_tpusim::{SimMode, Simulator, TpuConfig};
use iconv_workloads::all_models;

/// Run the experiment.
/// Render the experiment's full report.
pub fn report() -> String {
    let mut out = String::new();
    let sim = Simulator::new(TpuConfig::tpu_v2());
    let proxy = TpuMeasuredProxy::tpu_v2();
    let models = all_models(8);

    banner(
        &mut out,
        "Fig. 15a: end-to-end model results, batch 8 (ms per batch)",
    );
    header(
        &mut out,
        &["model", "TPUSim", "measured", "err%"],
        &[10, 9, 9, 6],
    );
    let mut layer_pairs = Vec::new();
    for m in &models {
        let rep = sim.simulate_model(m, SimMode::ChannelFirst);
        let sim_ms = sim.config().cycles_to_seconds(rep.total_cycles()) * 1e3;
        let meas_cycles: f64 = m
            .layers
            .iter()
            .map(|l| proxy.conv_cycles(&l.shape) * l.count as f64)
            .sum();
        let meas_ms = meas_cycles / 700e6 * 1e3;
        crate::outln!(
            out,
            "{:>10}  {:>9.3}  {:>9.3}  {:>5.1}",
            m.name,
            sim_ms,
            meas_ms,
            100.0 * (sim_ms - meas_ms).abs() / meas_ms
        );
        // Collect layer-wise pairs for (b).
        for (l, (r, _)) in m.layers.iter().zip(rep.layers.iter()) {
            layer_pairs.push((r.cycles as f64, proxy.conv_cycles(&l.shape)));
        }
    }

    banner(
        &mut out,
        "Fig. 15b: layer-wise error distribution (all layers, all models)",
    );
    let (edges, counts) = error_distribution(&layer_pairs, 10);
    let total: usize = counts.iter().sum();
    for (i, c) in counts.iter().enumerate() {
        let bar = "#".repeat((c * 60 / total.max(1)).max(usize::from(*c > 0)));
        crate::outln!(
            out,
            "  {:>5.1}%-{:>5.1}%  {:>4}  {bar}",
            100.0 * edges[i],
            100.0 * edges[i + 1],
            c
        );
    }
    crate::outln!(
        out,
        "layer-wise MAE over {} layers: {:.2}% (paper: 5.8%)",
        layer_pairs.len(),
        100.0 * mean_abs_pct_error(&layer_pairs)
    );
    out
}

/// Run the experiment, printing the report.
pub fn run() {
    print!("{}", report());
}
