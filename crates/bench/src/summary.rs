//! Machine-readable summary of the headline reproduction metrics, written
//! by `expall` to `results/summary.json` so CI or downstream tooling can
//! track regressions without parsing table output.

use iconv_api::{GpuHwSpec, TpuHwSpec, Work};
use iconv_gpusim::{GpuAlgo, GpuConfig};
use iconv_models::{mean_abs_pct_error, TpuMeasuredProxy};
use iconv_tpusim::SimMode;

// The estimate-source vocabulary lives in `iconv-tune` now (the tuner, the
// bench runners, and the serve engine all measure through it); these
// re-exports keep the historical `iconv_bench::summary::*` paths alive.
pub use iconv_tune::{CycleCount, CycleSource, InProcessSource};

/// One reproduced artifact: our headline number next to the paper's.
#[derive(Debug, Clone)]
pub struct Metric {
    /// Artifact id (`fig13a`, `fig17`, …).
    pub id: &'static str,
    /// What the number is.
    pub description: &'static str,
    /// Our measured value.
    pub measured: f64,
    /// The paper's reported value (same unit).
    pub paper: f64,
    /// Unit label.
    pub unit: &'static str,
}

/// The full summary document.
#[derive(Debug, Clone)]
pub struct Summary {
    /// Reproduction metrics, one per headline number.
    pub metrics: Vec<Metric>,
}

/// Compute the headline metrics (a fast subset of the full runners) on the
/// default worker count.
pub fn compute() -> Summary {
    compute_jobs(iconv_par::default_jobs())
}

/// [`compute`] with an explicit worker count. The per-item sweeps fan out
/// via [`iconv_par::par_map_jobs`], which preserves input order — the
/// resulting metrics (and their JSON) are identical for every `jobs` value.
pub fn compute_jobs(jobs: usize) -> Summary {
    compute_jobs_with(jobs, &InProcessSource::new())
}

/// [`compute_jobs`] against an arbitrary estimate source. With
/// [`InProcessSource`] this is the classic path; with the `--via-serve`
/// source in the `expall` binary every estimate is fetched over the wire.
/// The floating-point reductions below are ordered identically either way,
/// and the sources are bit-deterministic, so the resulting JSON is
/// byte-identical across sources, worker counts, and cache states.
pub fn compute_jobs_with(jobs: usize, src: &dyn CycleSource) -> Summary {
    let proxy = TpuMeasuredProxy::tpu_v2();
    let gpu_cfg = GpuConfig::v100();
    let hw = TpuHwSpec::default();

    // Each figure assembles its whole work table and estimates it in one
    // `estimate_many` call (one batched request on a networked source),
    // then replays its floating-point reduction in the *original* input
    // order — the order is what keeps the JSON byte-identical to the
    // historical per-call path.

    // Fig. 13a: GEMM validation error.
    let gemm_sweep = crate::experiments::fig13::gemm_sweep();
    let gemm_works: Vec<Work> = gemm_sweep
        .iter()
        .map(|&(m, n, k)| Work::TpuGemm { m, n, k, hw })
        .collect();
    let gemm_pairs: Vec<(f64, f64)> = src
        .estimate_many(jobs, &gemm_works)
        .iter()
        .zip(&gemm_sweep)
        .map(|(c, &(m, n, k))| (c.tpu() as f64, proxy.gemm_cycles(m, n, k)))
        .collect();

    // Fig. 13b: conv validation error.
    let conv_sweep = crate::experiments::fig13::conv_sweep(8);
    let conv_works: Vec<Work> = conv_sweep
        .iter()
        .map(|s| Work::TpuConv {
            shape: *s,
            mode: SimMode::ChannelFirst,
            hw,
        })
        .collect();
    let conv_pairs: Vec<(f64, f64)> = src
        .estimate_many(jobs, &conv_works)
        .iter()
        .zip(&conv_sweep)
        .map(|(c, s)| (c.tpu() as f64, proxy.conv_cycles(s)))
        .collect();

    // Fig. 15: layer-wise MAE over all models.
    let models = iconv_workloads::all_models(8);
    let all_layers: Vec<_> = models.iter().flat_map(|m| m.layers.iter()).collect();
    let layer_works: Vec<Work> = all_layers
        .iter()
        .map(|l| Work::TpuConv {
            shape: l.shape,
            mode: SimMode::ChannelFirst,
            hw,
        })
        .collect();
    let layer_pairs: Vec<(f64, f64)> = src
        .estimate_many(jobs, &layer_works)
        .iter()
        .zip(&all_layers)
        .map(|(c, l)| (c.tpu() as f64, proxy.conv_cycles(&l.shape)))
        .collect();

    // Fig. 17: GPU parity. The reduction replays `GpuSim::model_seconds`
    // operation for operation (cycles-to-seconds conversion, then scale by
    // occurrence count, summed in layer order; ours before cuDNN per
    // model), so the ratio is bit-identical to the direct call.
    const FIG17_ALGOS: [GpuAlgo; 2] = [
        GpuAlgo::ChannelFirst { reuse: true },
        GpuAlgo::CudnnImplicit,
    ];
    let fig17_works: Vec<Work> = models
        .iter()
        .flat_map(|m| {
            FIG17_ALGOS.iter().flat_map(|&algo| {
                m.layers.iter().map(move |l| Work::GpuConv {
                    shape: l.shape,
                    algo,
                    hw: GpuHwSpec::default(),
                })
            })
        })
        .collect();
    let fig17_cycles = src.estimate_many(jobs, &fig17_works);
    let mut fig17_iter = fig17_cycles.iter();
    let fig17: f64 = models
        .iter()
        .map(|m| {
            let mut seconds = [0.0f64; 2];
            for s in &mut seconds {
                for l in &m.layers {
                    let c = fig17_iter.next().expect("fig17 table length").gpu();
                    *s += gpu_cfg.cycles_to_seconds(c) * l.count as f64;
                }
            }
            seconds[0] / seconds[1]
        })
        .sum::<f64>()
        / models.len() as f64;

    // Fig. 18a: strided speedup (cuDNN then ours per layer).
    let strided: Vec<_> = models
        .iter()
        .flat_map(|m| m.strided_layers())
        .filter(|l| l.shape.ci >= 16)
        .collect();
    let strided_works: Vec<Work> = strided
        .iter()
        .flat_map(|l| {
            [
                Work::GpuConv {
                    shape: l.shape,
                    algo: GpuAlgo::CudnnImplicit,
                    hw: GpuHwSpec::default(),
                },
                Work::GpuConv {
                    shape: l.shape,
                    algo: GpuAlgo::ChannelFirst { reuse: true },
                    hw: GpuHwSpec::default(),
                },
            ]
        })
        .collect();
    let speedups: Vec<f64> = src
        .estimate_many(jobs, &strided_works)
        .chunks(2)
        .map(|pair| pair[0].gpu() / pair[1].gpu())
        .collect();
    let fig18a = speedups.iter().sum::<f64>() / speedups.len() as f64;

    Summary {
        metrics: vec![
            Metric {
                id: "fig13a",
                description: "TPUSim vs measured, GEMM sweep, mean abs error",
                measured: 100.0 * mean_abs_pct_error(&gemm_pairs),
                paper: 4.42,
                unit: "%",
            },
            Metric {
                id: "fig13b",
                description: "TPUSim vs measured, CONV sweep, mean abs error",
                measured: 100.0 * mean_abs_pct_error(&conv_pairs),
                paper: 4.87,
                unit: "%",
            },
            Metric {
                id: "fig15b",
                description: "layer-wise MAE over all 7 CNNs",
                measured: 100.0 * mean_abs_pct_error(&layer_pairs),
                paper: 5.8,
                unit: "%",
            },
            Metric {
                id: "fig17",
                description: "GPU ours/cuDNN time ratio, 7-model average",
                measured: fig17,
                paper: 1.01,
                unit: "ratio",
            },
            Metric {
                id: "fig18a",
                description: "strided-layer speedup over cuDNN, average",
                measured: fig18a,
                paper: 1.20,
                unit: "ratio",
            },
        ],
    }
}

/// Serialize to pretty JSON (hand-rolled: the offline dep set has no
/// serde_json, and the document is small and flat).
///
/// This metrics-only document is the **determinism surface**: it is
/// byte-identical for every worker count (see `tests/determinism.rs`).
/// Wall-clock timings, which necessarily vary run to run, are added
/// separately by [`to_json_with_timings`].
pub fn to_json(summary: &Summary) -> String {
    let mut out = String::from("{\n");
    push_metrics(&mut out, summary);
    out.push_str("\n}\n");
    out
}

/// [`to_json`] plus a `timings` object of per-experiment wall-clock seconds
/// — what `expall` writes to `results/summary.json`.
pub fn to_json_with_timings(summary: &Summary, timings: &[(&str, f64)]) -> String {
    let mut out = String::from("{\n");
    push_metrics(&mut out, summary);
    out.push_str(",\n  \"timings\": {\n");
    for (i, (name, secs)) in timings.iter().enumerate() {
        out.push_str(&format!(
            "    \"{}\": {:.3}{}\n",
            name,
            secs,
            if i + 1 < timings.len() { "," } else { "" }
        ));
    }
    out.push_str("  }\n}\n");
    out
}

/// [`to_json_with_timings`] plus a `counters` object of rolled-up trace
/// counters (`"<experiment>.<counter>": value` — see [`crate::traces`]).
/// The metrics body is embedded byte-for-byte, so the determinism surface
/// is unchanged; the counters themselves are also deterministic across
/// worker counts (see `tests/determinism.rs`).
pub fn to_json_full(
    summary: &Summary,
    counters: &[(String, u64)],
    timings: &[(&str, f64)],
) -> String {
    let mut out = String::from("{\n");
    push_metrics(&mut out, summary);
    out.push_str(",\n  \"counters\": {\n");
    for (i, (name, value)) in counters.iter().enumerate() {
        out.push_str(&format!(
            "    \"{}\": {}{}\n",
            name,
            value,
            if i + 1 < counters.len() { "," } else { "" }
        ));
    }
    out.push_str("  },\n  \"timings\": {\n");
    for (i, (name, secs)) in timings.iter().enumerate() {
        out.push_str(&format!(
            "    \"{}\": {:.3}{}\n",
            name,
            secs,
            if i + 1 < timings.len() { "," } else { "" }
        ));
    }
    out.push_str("  }\n}\n");
    out
}

/// The shared `"metrics": [...]` body (no trailing newline or comma).
fn push_metrics(out: &mut String, summary: &Summary) {
    out.push_str("  \"metrics\": [\n");
    for (i, m) in summary.metrics.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"id\": \"{}\", \"description\": \"{}\", \"measured\": {:.4}, \"paper\": {:.4}, \"unit\": \"{}\"}}{}\n",
            m.id,
            m.description,
            m.measured,
            m.paper,
            m.unit,
            if i + 1 < summary.metrics.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_metrics_within_reproduction_bands() {
        let s = compute();
        assert_eq!(s.metrics.len(), 5);
        for m in &s.metrics {
            match m.unit {
                "%" => assert!(m.measured < 8.0, "{}: {}%", m.id, m.measured),
                "ratio" => assert!((0.9..1.6).contains(&m.measured), "{}: {}", m.id, m.measured),
                other => panic!("unknown unit {other}"),
            }
        }
    }

    #[test]
    fn json_is_well_formed_enough() {
        let s = compute();
        let j = to_json(&s);
        assert!(j.starts_with('{') && j.trim_end().ends_with('}'));
        assert_eq!(j.matches("\"id\"").count(), s.metrics.len());
    }
}
