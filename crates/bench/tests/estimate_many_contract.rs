//! The `estimate_many` contract: every implementation must return exactly
//! the values the per-item default loop returns, in input order — u64
//! cycles equal, GPU f64 cycles *bit*-equal. This pins the `ServeSource`
//! batch override against both the in-process source and the default loop
//! running over the same server, including a mixed cache state where a
//! pre-warmed slice interleaves hits between cold misses.

use iconv_api::table::workload_works;
use iconv_api::Work;
use iconv_bench::serve_source::ServeSource;
use iconv_bench::summary::{CycleCount, CycleSource, InProcessSource};
use iconv_serve::{spawn, ServerConfig};

fn assert_bit_identical(got: &[CycleCount], want: &[CycleCount], ctx: &str) {
    assert_eq!(got.len(), want.len(), "{ctx}: length mismatch");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        match (g, w) {
            (CycleCount::Tpu(g), CycleCount::Tpu(w)) => {
                assert_eq!(g, w, "{ctx}: TPU item {i}");
            }
            (CycleCount::Gpu(g), CycleCount::Gpu(w)) => {
                assert_eq!(g.to_bits(), w.to_bits(), "{ctx}: GPU item {i} ({g} vs {w})");
            }
            other => panic!("{ctx}: item {i} engine mismatch: {other:?}"),
        }
    }
}

/// A serve-backed source that deliberately does NOT override
/// `estimate_many`: it inherits the trait's default per-item loop, which
/// is the baseline the batched wire path must reproduce.
struct LoopedServe<'a>(&'a ServeSource);

impl CycleSource for LoopedServe<'_> {
    fn estimate(&self, work: &Work) -> CycleCount {
        self.0.estimate(work)
    }
}

#[test]
fn batched_estimate_many_matches_the_default_loop() {
    let works = workload_works(false);
    assert!(works.len() > 100, "workload table suspiciously small");
    let local = InProcessSource::new();
    let expected = local.estimate_many(2, &works);

    let handle = spawn(ServerConfig::default()).expect("spawn serve");
    let addr = handle.local_addr().to_string();
    let src = ServeSource::connect(&addr).expect("connect");

    // Pre-warm the middle third so the full-table batch interleaves cache
    // hits (answered inline by the reader) between cold misses.
    let third = works.len() / 3;
    let warm = &works[third..2 * third];
    let warmed = src.estimate_many(4, warm);
    assert_bit_identical(&warmed, &expected[third..2 * third], "warm slice");

    // The batched path over the mixed hit/miss table...
    let batched = src.estimate_many(4, &works);
    assert_bit_identical(&batched, &expected, "batched vs in-process");

    // ...must agree with the default loop issuing one request per item
    // against the very same (now fully warm) server.
    let looped = LoopedServe(&src).estimate_many(1, &works);
    assert_bit_identical(&looped, &expected, "default loop vs in-process");

    let stats = src.stats();
    drop(src);
    handle.shutdown();
    assert!(stats.batches >= 2, "both estimate_many calls must batch");
    assert!(
        stats.batch_hits >= warm.len() as u64,
        "pre-warmed items must come back as batch hits"
    );
    assert_eq!(
        stats.batch_hits + stats.batch_misses + stats.batch_errors,
        stats.batch_items,
        "batch counters must partition the batch item count"
    );
    assert_eq!(stats.batch_errors, 0);
    assert_eq!(
        stats.hits + stats.misses,
        stats.requests,
        "global counters must absorb batch items exactly"
    );
}
