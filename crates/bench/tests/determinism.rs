//! End-to-end determinism of the parallel experiment engine: fan-out must
//! never change what `expall` prints or what `results/summary.json` records.

use iconv_bench::{par, summary, traces};

/// Every experiment report is byte-identical between a sequential run and a
/// 4-worker run, and arrives in figure order. The slowest experiments
/// (fig17/fig18 GPU sweeps, the full tune-table search) are skipped here to
/// keep the debug-mode suite fast; `par::tests`, the tune proptests, and
/// the release-mode `expall` cover the full set.
#[test]
fn experiment_reports_identical_across_worker_counts() {
    let set: Vec<_> = par::EXPERIMENTS
        .iter()
        .copied()
        .filter(|(n, _)| *n != "fig17" && *n != "fig18" && *n != "tune")
        .collect();
    let seq = par::run_set(1, &set);
    let par4 = par::run_set(4, &set);
    assert_eq!(seq.len(), par4.len());
    for ((s, p), (name, _)) in seq.iter().zip(&par4).zip(&set) {
        assert_eq!(s.name, *name, "order drift");
        assert_eq!(p.name, *name, "order drift");
        assert!(!s.report.is_empty(), "{name} rendered nothing");
        assert_eq!(s.report, p.report, "report drift for {name}");
    }
}

/// The headline-metric JSON — the part of `results/summary.json` that is
/// the determinism surface — is byte-identical for 1 and 4 workers.
#[test]
fn metrics_json_identical_across_worker_counts() {
    let a = summary::to_json(&summary::compute_jobs(1));
    let b = summary::to_json(&summary::compute_jobs(4));
    assert_eq!(a, b, "summary metrics depend on worker count");
}

/// The timings-augmented document embeds the metrics body unchanged and
/// adds one entry per experiment.
#[test]
fn timings_json_embeds_identical_metrics() {
    let s = summary::compute_jobs(2);
    let plain = summary::to_json(&s);
    let timed = summary::to_json_with_timings(&s, &[("table1", 0.25), ("fig02", 1.5)]);
    let metrics_body = plain
        .strip_suffix("\n}\n")
        .expect("metrics json shape changed");
    assert!(
        timed.starts_with(&format!("{metrics_body},\n")),
        "timings document must embed the metrics body byte-for-byte"
    );
    assert!(timed.contains("\"timings\": {"));
    assert!(timed.contains("\"table1\": 0.250"));
    assert!(timed.contains("\"fig02\": 1.500"));
}

/// The rolled-up trace counters — the other deterministic block of
/// `results/summary.json` — are identical for 1 and 4 workers, span every
/// simulator namespace, and embed into the full document without touching
/// the metrics body.
#[test]
fn trace_counters_identical_across_worker_counts() {
    let seq = traces::rollup(&traces::build_traces(1));
    let par4 = traces::rollup(&traces::build_traces(4));
    assert_eq!(seq, par4, "trace counters depend on worker count");
    for ns in ["tpusim.", "gpusim.", "dram.", "sram."] {
        assert!(
            seq.iter().any(|(k, _)| k.contains(ns)),
            "no {ns} counters in the rollup"
        );
    }

    let s = summary::compute_jobs(2);
    let plain = summary::to_json(&s);
    let full = summary::to_json_full(&s, &seq, &[("table1", 0.25)]);
    let metrics_body = plain
        .strip_suffix("\n}\n")
        .expect("metrics json shape changed");
    assert!(
        full.starts_with(&format!("{metrics_body},\n")),
        "full document must embed the metrics body byte-for-byte"
    );
    assert!(full.contains("\"counters\": {"));
    assert!(full.contains("\"fig13.tpusim.cycles\": "));
}
