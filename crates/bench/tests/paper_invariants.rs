//! Differential invariants of implicit vs explicit im2col on the TPU model
//! — the paper's headline claims, checked layer-by-layer over the full
//! workload table, every IFMap layout, and a dedicated stride sweep.
//!
//! Two claims ride here:
//!
//! 1. **Zero memory overhead** (§IV-B): channel-first implicit convolution
//!    moves exactly the tensor footprint — `(ifmap + filter + ofmap) ×
//!    elem_bytes` — for *every* layer and *every* layout, while explicit
//!    im2col additionally writes the lowered matrix out and streams it back
//!    in, so its DRAM traffic exceeds implicit by at least `2 ×
//!    lowered_bytes`.
//! 2. **No slower, usually faster** (§V): implicit total cycles ≤ explicit
//!    total cycles. This one is *conditional* in the model, matching the
//!    paper's own caveats: it holds for channel-rich layers (`ci ≥ 16`)
//!    under the channel-packed layouts (HWCN, NHWC). First layers (`ci =
//!    3`) under-fill the PE rows so the explicit GEMM's dense lowered
//!    matrix can win despite its transform cost, and the channel-major
//!    layouts (NCHW, CHWN) shred the implicit path's DRAM run lengths on
//!    strided layers. The cycles assertion is therefore scoped to `ci ≥ 16`
//!    × {HWCN, NHWC}; the memory assertion is unconditional.

use iconv_core::{ConvPass, PipelineSchedule};
use iconv_tensor::{ConvShape, Layout};
use iconv_tpusim::{SimMode, Simulator, TpuConfig};

const LAYOUTS: [Layout; 4] = [Layout::Hwcn, Layout::Nhwc, Layout::Nchw, Layout::Chwn];

fn sim_for(layout: Layout) -> Simulator {
    let cfg = TpuConfig::builder_from(TpuConfig::tpu_v2())
        .ifmap_layout(layout)
        .build()
        .expect("layout config");
    Simulator::new(cfg)
}

/// Run both lowerings and check the differential invariants for one shape.
/// `check_cycles` scopes claim 2 (see module docs); claim 1 always runs.
fn check_pair(sim: &Simulator, layout: Layout, name: &str, shape: &ConvShape, check_cycles: bool) {
    let implicit = sim.simulate_conv(name, shape, SimMode::ChannelFirst);
    let explicit = sim.simulate_conv(name, shape, SimMode::Explicit);

    let eb = TpuConfig::tpu_v2().vector_mem.elem_bytes as u64;
    let footprint = (shape.ifmap_elems() + shape.filter_elems() + shape.ofmap_elems()) as u64 * eb;
    let lowered = shape.lowered_elems() as u64 * eb;

    assert_eq!(
        implicit.dram_bytes, footprint,
        "{name} [{layout}]: implicit must move exactly the tensor footprint"
    );
    assert!(
        explicit.dram_bytes >= implicit.dram_bytes + 2 * lowered,
        "{name} [{layout}]: explicit traffic {} < implicit {} + 2x lowered {}",
        explicit.dram_bytes,
        implicit.dram_bytes,
        lowered
    );
    if check_cycles {
        assert!(
            implicit.cycles <= explicit.cycles,
            "{name} [{layout}]: implicit {} cycles > explicit {} cycles",
            implicit.cycles,
            explicit.cycles
        );
    }
}

/// Sweep every layer of every workload model under every IFMap layout.
/// Memory invariants are unconditional; the cycle invariant is scoped to
/// `ci >= 16` under HWCN/NHWC (see module docs for why that carve-out is
/// the model behaving like the paper says, not a bug).
#[test]
fn implicit_beats_explicit_across_workloads_and_layouts() {
    let mut pairs = 0usize;
    let mut cycle_checked = 0usize;
    for layout in LAYOUTS {
        let sim = sim_for(layout);
        for model in iconv_workloads::all_models(8) {
            for layer in &model.layers {
                let check_cycles =
                    layer.shape.ci >= 16 && matches!(layout, Layout::Hwcn | Layout::Nhwc);
                let name = format!("{}/{}", model.name, layer.name);
                check_pair(&sim, layout, &name, &layer.shape, check_cycles);
                pairs += 1;
                cycle_checked += usize::from(check_cycles);
            }
        }
    }
    // Guard the sweep itself: a workload-table edit must not silently
    // shrink the covered surface to nothing.
    assert!(
        pairs >= 400,
        "sweep shrank: only {pairs} layer x layout pairs"
    );
    assert!(
        cycle_checked >= 150,
        "cycle invariant barely exercised: {cycle_checked} pairs"
    );
}

/// The tuned double-buffered schedule may hide fill cycles behind compute
/// but may never *add* cycles or change DRAM traffic: for every layer of
/// every workload model, `cycles(double) <= cycles(single)`, both reports
/// stay conserved (always-on, not just `debug_assert`), and the exposed
/// memory shrinks monotonically with the hidden fill.
#[test]
fn double_buffered_never_slower_across_workload_table() {
    let single = Simulator::new(TpuConfig::tpu_v2());
    let double = Simulator::new(
        TpuConfig::builder()
            .schedule(PipelineSchedule::DoubleBuffered)
            .build()
            .expect("schedule config"),
    );
    let mut layers = 0usize;
    let mut strictly_faster = 0usize;
    for model in iconv_workloads::all_models(8) {
        for layer in &model.layers {
            for mode in [SimMode::ChannelFirst, SimMode::Explicit] {
                let name = format!("{}/{}", model.name, layer.name);
                let sb = single.simulate_conv(&name, &layer.shape, mode);
                let db = double.simulate_conv(&name, &layer.shape, mode);
                assert!(sb.assert_conserved() && db.assert_conserved());
                assert!(
                    db.cycles <= sb.cycles,
                    "{name} [{mode:?}]: double-buffered {} > single-buffered {}",
                    db.cycles,
                    sb.cycles
                );
                assert_eq!(
                    db.dram_bytes, sb.dram_bytes,
                    "{name} [{mode:?}]: schedule must not change traffic"
                );
                assert!(db.exposed_memory_cycles <= sb.exposed_memory_cycles);
                assert_eq!(db.compute_cycles, sb.compute_cycles);
                layers += 1;
                strictly_faster += usize::from(db.cycles < sb.cycles);
            }
        }
    }
    assert!(layers >= 300, "sweep shrank: only {layers} layer runs");
    // The knob must actually matter somewhere, or the wiring is dead. Most
    // paper layers are compute-bound on TPU-v2 (single-buffered steady
    // already equals compute, so overlap has nothing to hide); only the
    // memory-bound tail separates the schedules.
    assert!(
        strictly_faster >= 1,
        "double buffering never engaged: {strictly_faster}/{layers}"
    );
}

/// Every layer the pass battery sweeps: the seven forward workload models
/// plus the transposed-conv-heavy tables (DCGAN generator, U-Net), batch 8.
fn pass_sweep_layers() -> Vec<(String, ConvShape)> {
    let mut models = iconv_workloads::all_models(8);
    models.extend(iconv_workloads::transpose_models(8));
    let mut out = Vec::new();
    for model in &models {
        for layer in &model.layers {
            out.push((format!("{}/{}", model.name, layer.name), layer.shape));
        }
    }
    out
}

/// Claim 1 extended to the backward direction (BP-Im2col): every training
/// pass is itself an implicit GEMM, so the channel-first implicit schedule
/// moves exactly the tensor footprint — the *same* three tensors as the
/// forward pass, with read/write roles permuted — while the explicit
/// lowering of that pass's GEMM view additionally writes its lowered
/// matrix out and streams it back. Phase identities stay conserved
/// (`dispatch + first_fill + steady == cycles`) per pass and mode.
fn pass_dram_is_tensor_footprint(pass: ConvPass) {
    let sim = Simulator::new(TpuConfig::tpu_v2());
    let eb = TpuConfig::tpu_v2().vector_mem.elem_bytes as u64;
    let mut layers = 0usize;
    for (name, shape) in pass_sweep_layers() {
        let implicit = sim.simulate_pass(&name, &shape, pass, SimMode::ChannelFirst);
        let explicit = sim.simulate_pass(&name, &shape, pass, SimMode::Explicit);
        assert!(implicit.assert_conserved(), "{name} [{pass} implicit]");
        assert!(explicit.assert_conserved(), "{name} [{pass} explicit]");

        let footprint =
            (shape.ifmap_elems() + shape.filter_elems() + shape.ofmap_elems()) as u64 * eb;
        assert_eq!(
            implicit.dram_bytes, footprint,
            "{name} [{pass}]: implicit must move exactly the tensor footprint"
        );
        let lowered = pass.lowered_view_elems(&shape) as u64 * eb;
        assert!(
            explicit.dram_bytes >= implicit.dram_bytes + 2 * lowered,
            "{name} [{pass}]: explicit traffic {} < implicit {} + 2x lowered view {}",
            explicit.dram_bytes,
            implicit.dram_bytes,
            lowered
        );
        layers += 1;
    }
    assert!(layers >= 100, "pass sweep shrank: {layers} layers");
}

#[test]
fn invariants_wgrad_implicit_dram_is_tensor_footprint() {
    pass_dram_is_tensor_footprint(ConvPass::Wgrad);
}

#[test]
fn invariants_dgrad_implicit_dram_is_tensor_footprint() {
    pass_dram_is_tensor_footprint(ConvPass::Dgrad);
}

#[test]
fn invariants_transpose_implicit_dram_is_tensor_footprint() {
    pass_dram_is_tensor_footprint(ConvPass::Transpose);
}

/// Claim 2 in the backward direction: implicit dgrad never loses to the
/// explicit lowering of the dgrad view for channel-rich layers. Carve-outs
/// mirror the forward scoping, adapted to what dgrad's GEMM view actually
/// streams: dgrad gathers on the *output* side, so the PE-row fill (and
/// the duplication channel) is `co`, and its GEMM N-dimension is `ci` —
/// both must be ≥ 16 for the implicit schedule to fill the array the way
/// §V assumes. First layers (`ci = 3`) and the DCGAN image head
/// (`ci = 3`) are excluded exactly like forward conv1 is. Full-filter
/// layers (1×1 output, e.g. the DCGAN z-projection) are also excluded:
/// with a single output position the explicit lowering duplicates
/// *nothing* — it is a plain dense GEMM with no transform duplication to
/// pay for — so im2col's usual memory tax vanishes and the implicit
/// gather's dispatch overhead can lose by a few percent.
#[test]
fn invariants_dgrad_implicit_no_slower_on_channel_rich_layers() {
    let sim = Simulator::new(TpuConfig::tpu_v2());
    let mut checked = 0usize;
    for (name, shape) in pass_sweep_layers() {
        if shape.ci < 16 || shape.co < 16 || shape.out_h() * shape.out_w() == 1 {
            continue;
        }
        let imp = sim.simulate_pass(&name, &shape, ConvPass::Dgrad, SimMode::ChannelFirst);
        let exp = sim.simulate_pass(&name, &shape, ConvPass::Dgrad, SimMode::Explicit);
        assert!(
            imp.cycles <= exp.cycles,
            "{name}: implicit dgrad {} cycles > explicit {} cycles",
            imp.cycles,
            exp.cycles
        );
        checked += 1;
    }
    assert!(checked >= 100, "dgrad cycle sweep shrank: {checked} layers");
}

/// Transposed convolution is dgrad with a learned filter: identical cost
/// reports under every mode, layer by layer.
#[test]
fn invariants_transpose_costs_exactly_like_dgrad() {
    let sim = Simulator::new(TpuConfig::tpu_v2());
    for (name, shape) in pass_sweep_layers() {
        for mode in [SimMode::ChannelFirst, SimMode::Explicit, SimMode::Indirect] {
            let d = sim.simulate_pass(&name, &shape, ConvPass::Dgrad, mode);
            let t = sim.simulate_pass(&name, &shape, ConvPass::Transpose, mode);
            assert_eq!(d, t, "{name} [{mode:?}]");
        }
    }
}

/// The indirect-buffer baseline (Dukhan): its pointer table costs real
/// DRAM bytes, so it sits *strictly* between implicit (exact footprint)
/// and the explicit lowering (footprint + 2x lowered copy) on every layer
/// — the pointer table has one entry per output position x tap, batch- and
/// channel-free, so it can never approach the lowered matrix. Reports stay
/// conserved with the dispatch-side gather overhead folded in.
#[test]
fn invariants_indirect_dram_strictly_between_implicit_and_explicit() {
    let sim = Simulator::new(TpuConfig::tpu_v2());
    for (name, shape) in pass_sweep_layers() {
        let imp = sim.simulate_conv(&name, &shape, SimMode::ChannelFirst);
        let ind = sim.simulate_conv(&name, &shape, SimMode::Indirect);
        let exp = sim.simulate_conv(&name, &shape, SimMode::Explicit);
        assert!(ind.assert_conserved(), "{name} [indirect]");
        assert!(
            imp.dram_bytes < ind.dram_bytes,
            "{name}: indirect {} must pay for its pointer table over implicit {}",
            ind.dram_bytes,
            imp.dram_bytes
        );
        assert!(
            ind.dram_bytes < exp.dram_bytes,
            "{name}: indirect {} must stay below explicit-lowered {}",
            ind.dram_bytes,
            exp.dram_bytes
        );
        // Dispatch-side dereference cost is visible but bounded: indirect
        // never costs more cycles than materializing the lowered matrix.
        assert!(
            ind.cycles >= imp.cycles,
            "{name}: indirect {} cycles below implicit {}",
            ind.cycles,
            imp.cycles
        );
    }
}

/// Explicit stride sweep: the cycle and memory advantages must survive
/// stride 1..=3 (strided layers are where explicit im2col's duplication
/// shrinks but the transform's gather runs also shorten).
#[test]
fn invariants_hold_across_strides() {
    for layout in [Layout::Hwcn, Layout::Nhwc] {
        let sim = sim_for(layout);
        for (ci, hw, co, f) in [(64, 56, 64, 3), (128, 28, 256, 3), (32, 112, 64, 5)] {
            for stride in 1..=3 {
                let shape =
                    ConvShape::square(8, ci, hw, co, f, stride, f / 2).expect("valid sweep shape");
                let name = format!("ci{ci}-hw{hw}-co{co}-f{f}-s{stride}");
                check_pair(&sim, layout, &name, &shape, true);
            }
        }
    }
}
