//! Differential invariants of implicit vs explicit im2col on the TPU model
//! — the paper's headline claims, checked layer-by-layer over the full
//! workload table, every IFMap layout, and a dedicated stride sweep.
//!
//! Two claims ride here:
//!
//! 1. **Zero memory overhead** (§IV-B): channel-first implicit convolution
//!    moves exactly the tensor footprint — `(ifmap + filter + ofmap) ×
//!    elem_bytes` — for *every* layer and *every* layout, while explicit
//!    im2col additionally writes the lowered matrix out and streams it back
//!    in, so its DRAM traffic exceeds implicit by at least `2 ×
//!    lowered_bytes`.
//! 2. **No slower, usually faster** (§V): implicit total cycles ≤ explicit
//!    total cycles. This one is *conditional* in the model, matching the
//!    paper's own caveats: it holds for channel-rich layers (`ci ≥ 16`)
//!    under the channel-packed layouts (HWCN, NHWC). First layers (`ci =
//!    3`) under-fill the PE rows so the explicit GEMM's dense lowered
//!    matrix can win despite its transform cost, and the channel-major
//!    layouts (NCHW, CHWN) shred the implicit path's DRAM run lengths on
//!    strided layers. The cycles assertion is therefore scoped to `ci ≥ 16`
//!    × {HWCN, NHWC}; the memory assertion is unconditional.

use iconv_core::PipelineSchedule;
use iconv_tensor::{ConvShape, Layout};
use iconv_tpusim::{SimMode, Simulator, TpuConfig};

const LAYOUTS: [Layout; 4] = [Layout::Hwcn, Layout::Nhwc, Layout::Nchw, Layout::Chwn];

fn sim_for(layout: Layout) -> Simulator {
    let cfg = TpuConfig::builder_from(TpuConfig::tpu_v2())
        .ifmap_layout(layout)
        .build()
        .expect("layout config");
    Simulator::new(cfg)
}

/// Run both lowerings and check the differential invariants for one shape.
/// `check_cycles` scopes claim 2 (see module docs); claim 1 always runs.
fn check_pair(sim: &Simulator, layout: Layout, name: &str, shape: &ConvShape, check_cycles: bool) {
    let implicit = sim.simulate_conv(name, shape, SimMode::ChannelFirst);
    let explicit = sim.simulate_conv(name, shape, SimMode::Explicit);

    let eb = TpuConfig::tpu_v2().vector_mem.elem_bytes as u64;
    let footprint = (shape.ifmap_elems() + shape.filter_elems() + shape.ofmap_elems()) as u64 * eb;
    let lowered = shape.lowered_elems() as u64 * eb;

    assert_eq!(
        implicit.dram_bytes, footprint,
        "{name} [{layout}]: implicit must move exactly the tensor footprint"
    );
    assert!(
        explicit.dram_bytes >= implicit.dram_bytes + 2 * lowered,
        "{name} [{layout}]: explicit traffic {} < implicit {} + 2x lowered {}",
        explicit.dram_bytes,
        implicit.dram_bytes,
        lowered
    );
    if check_cycles {
        assert!(
            implicit.cycles <= explicit.cycles,
            "{name} [{layout}]: implicit {} cycles > explicit {} cycles",
            implicit.cycles,
            explicit.cycles
        );
    }
}

/// Sweep every layer of every workload model under every IFMap layout.
/// Memory invariants are unconditional; the cycle invariant is scoped to
/// `ci >= 16` under HWCN/NHWC (see module docs for why that carve-out is
/// the model behaving like the paper says, not a bug).
#[test]
fn implicit_beats_explicit_across_workloads_and_layouts() {
    let mut pairs = 0usize;
    let mut cycle_checked = 0usize;
    for layout in LAYOUTS {
        let sim = sim_for(layout);
        for model in iconv_workloads::all_models(8) {
            for layer in &model.layers {
                let check_cycles =
                    layer.shape.ci >= 16 && matches!(layout, Layout::Hwcn | Layout::Nhwc);
                let name = format!("{}/{}", model.name, layer.name);
                check_pair(&sim, layout, &name, &layer.shape, check_cycles);
                pairs += 1;
                cycle_checked += usize::from(check_cycles);
            }
        }
    }
    // Guard the sweep itself: a workload-table edit must not silently
    // shrink the covered surface to nothing.
    assert!(
        pairs >= 400,
        "sweep shrank: only {pairs} layer x layout pairs"
    );
    assert!(
        cycle_checked >= 150,
        "cycle invariant barely exercised: {cycle_checked} pairs"
    );
}

/// The tuned double-buffered schedule may hide fill cycles behind compute
/// but may never *add* cycles or change DRAM traffic: for every layer of
/// every workload model, `cycles(double) <= cycles(single)`, both reports
/// stay conserved (always-on, not just `debug_assert`), and the exposed
/// memory shrinks monotonically with the hidden fill.
#[test]
fn double_buffered_never_slower_across_workload_table() {
    let single = Simulator::new(TpuConfig::tpu_v2());
    let double = Simulator::new(
        TpuConfig::builder()
            .schedule(PipelineSchedule::DoubleBuffered)
            .build()
            .expect("schedule config"),
    );
    let mut layers = 0usize;
    let mut strictly_faster = 0usize;
    for model in iconv_workloads::all_models(8) {
        for layer in &model.layers {
            for mode in [SimMode::ChannelFirst, SimMode::Explicit] {
                let name = format!("{}/{}", model.name, layer.name);
                let sb = single.simulate_conv(&name, &layer.shape, mode);
                let db = double.simulate_conv(&name, &layer.shape, mode);
                assert!(sb.assert_conserved() && db.assert_conserved());
                assert!(
                    db.cycles <= sb.cycles,
                    "{name} [{mode:?}]: double-buffered {} > single-buffered {}",
                    db.cycles,
                    sb.cycles
                );
                assert_eq!(
                    db.dram_bytes, sb.dram_bytes,
                    "{name} [{mode:?}]: schedule must not change traffic"
                );
                assert!(db.exposed_memory_cycles <= sb.exposed_memory_cycles);
                assert_eq!(db.compute_cycles, sb.compute_cycles);
                layers += 1;
                strictly_faster += usize::from(db.cycles < sb.cycles);
            }
        }
    }
    assert!(layers >= 300, "sweep shrank: only {layers} layer runs");
    // The knob must actually matter somewhere, or the wiring is dead. Most
    // paper layers are compute-bound on TPU-v2 (single-buffered steady
    // already equals compute, so overlap has nothing to hide); only the
    // memory-bound tail separates the schedules.
    assert!(
        strictly_faster >= 1,
        "double buffering never engaged: {strictly_faster}/{layers}"
    );
}

/// Explicit stride sweep: the cycle and memory advantages must survive
/// stride 1..=3 (strided layers are where explicit im2col's duplication
/// shrinks but the transform's gather runs also shorten).
#[test]
fn invariants_hold_across_strides() {
    for layout in [Layout::Hwcn, Layout::Nhwc] {
        let sim = sim_for(layout);
        for (ci, hw, co, f) in [(64, 56, 64, 3), (128, 28, 256, 3), (32, 112, 64, 5)] {
            for stride in 1..=3 {
                let shape =
                    ConvShape::square(8, ci, hw, co, f, stride, f / 2).expect("valid sweep shape");
                let name = format!("ci{ci}-hw{hw}-co{co}-f{f}-s{stride}");
                check_pair(&sim, layout, &name, &shape, true);
            }
        }
    }
}
