//! `expall --via-serve` must be a transparent transport: the summary built
//! from estimates fetched over the serve protocol is byte-identical to the
//! in-process one. This is the guarantee that makes the serving path safe
//! to use for regression tracking — u64 cycles cross the wire in decimal
//! and GPU `f64` cycles as IEEE-754 bit strings, so nothing is rounded.

use iconv_bench::serve_source::ServeSource;
use iconv_bench::summary;
use iconv_serve::{spawn, ServerConfig};

#[test]
fn summary_via_serve_is_byte_identical() {
    let in_process = summary::to_json(&summary::compute_jobs(2));

    let handle = spawn(ServerConfig::default()).expect("spawn serve");
    let addr = handle.local_addr().to_string();
    let src = ServeSource::connect(&addr).expect("connect to in-process serve");
    let via_serve = summary::to_json(&summary::compute_jobs_with(2, &src));

    let stats = src.stats();
    drop(src);
    handle.shutdown();

    assert_eq!(
        in_process, via_serve,
        "serve transport changed the summary bytes"
    );
    assert!(stats.requests > 0, "summary never hit the server");
    assert_eq!(
        stats.hits + stats.misses,
        stats.requests,
        "cache counters must partition the request count"
    );
    // The summary path pipelines whole figure tables: every estimate must
    // have traveled inside a batch, one batch per estimate_many call.
    assert!(stats.batches >= 5, "expected one batch per figure table");
    assert_eq!(
        stats.batch_items, stats.requests,
        "every estimate should ride in a batch"
    );
    assert_eq!(
        stats.batch_hits + stats.batch_misses + stats.batch_errors,
        stats.batch_items,
        "batch counters must partition the batch item count"
    );
    assert_eq!(stats.batch_errors, 0);
}
