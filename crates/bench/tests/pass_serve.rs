//! Every pass-matrix leg (forward, wgrad, dgrad, transpose, indirect)
//! estimates through a live serve instance bit-identically to the
//! in-process source, and the server's cache counters conserve
//! (`hits + misses == requests`) across the whole multi-pass run.

use iconv_api::table::{pass_leg_works, PASS_LEGS};
use iconv_bench::serve_source::ServeSource;
use iconv_bench::summary::{CycleCount, CycleSource, InProcessSource};
use iconv_serve::{spawn, ServerConfig};

#[test]
fn every_pass_leg_serves_bit_identically_and_conserves() {
    let local = InProcessSource::new();
    let handle = spawn(ServerConfig::default()).expect("spawn serve");
    let addr = handle.local_addr().to_string();
    let src = ServeSource::connect(&addr).expect("connect");

    for leg in PASS_LEGS {
        let works = pass_leg_works(true, leg).expect(leg);
        let expected = local.estimate_many(2, &works);
        let served = src.estimate_many(4, &works);
        assert_eq!(served.len(), expected.len(), "{leg}");
        for (i, (g, w)) in served.iter().zip(&expected).enumerate() {
            match (g, w) {
                (CycleCount::Tpu(g), CycleCount::Tpu(w)) => {
                    assert_eq!(g, w, "{leg}: TPU item {i}");
                }
                (CycleCount::Gpu(g), CycleCount::Gpu(w)) => {
                    assert_eq!(g.to_bits(), w.to_bits(), "{leg}: GPU item {i}");
                }
                other => panic!("{leg}: item {i} engine mismatch: {other:?}"),
            }
        }
    }

    // Issue the dgrad leg a second time: everything must now be a hit.
    let dgrad = pass_leg_works(true, "dgrad").unwrap();
    let before = src.stats();
    let _ = src.estimate_many(4, &dgrad);
    let stats = src.stats();
    assert!(
        stats.hits - before.hits >= dgrad.len() as u64,
        "replayed dgrad leg must be all cache hits ({} -> {})",
        before.hits,
        stats.hits
    );
    assert_eq!(
        stats.hits + stats.misses,
        stats.requests,
        "hits + misses must equal requests after the pass sweep"
    );
    drop(src);
    handle.shutdown();
}
