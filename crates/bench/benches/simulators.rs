//! Criterion benchmarks of the simulators themselves: cycles-of-simulation
//! per layer/model — the practical cost of regenerating each paper figure.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use iconv_gpusim::{GpuAlgo, GpuConfig, GpuSim};
use iconv_models::TpuMeasuredProxy;
use iconv_tensor::ConvShape;
use iconv_tpusim::{SimMode, Simulator, TpuConfig};
use std::hint::black_box;

fn bench_tpusim_layer(c: &mut Criterion) {
    let sim = Simulator::new(TpuConfig::tpu_v2());
    let mut g = c.benchmark_group("tpusim_layer");
    for (name, shape) in [
        (
            "res2_3x3",
            ConvShape::square(8, 64, 56, 64, 3, 1, 1).unwrap(),
        ),
        (
            "res5_3x3",
            ConvShape::square(8, 512, 14, 512, 3, 1, 1).unwrap(),
        ),
        (
            "conv1_7x7",
            ConvShape::square(8, 3, 224, 64, 7, 2, 3).unwrap(),
        ),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(name), &shape, |b, s| {
            b.iter(|| sim.simulate_conv("l", black_box(s), SimMode::ChannelFirst))
        });
    }
    g.finish();
}

fn bench_tpusim_models(c: &mut Criterion) {
    let sim = Simulator::new(TpuConfig::tpu_v2());
    let mut g = c.benchmark_group("tpusim_model");
    g.sample_size(20);
    for model in [iconv_workloads::resnet50(8), iconv_workloads::vgg16(8)] {
        g.bench_with_input(BenchmarkId::from_parameter(model.name), &model, |b, m| {
            b.iter(|| sim.simulate_model(black_box(m), SimMode::ChannelFirst))
        });
    }
    g.finish();
}

fn bench_gpusim_layer(c: &mut Criterion) {
    let sim = GpuSim::new(GpuConfig::v100());
    let shape = ConvShape::square(8, 64, 56, 64, 3, 2, 1).unwrap();
    let mut g = c.benchmark_group("gpusim_layer");
    for algo in [
        GpuAlgo::CudnnImplicit,
        GpuAlgo::ChannelFirst { reuse: true },
        GpuAlgo::ChannelFirst { reuse: false },
        GpuAlgo::GemmEquivalent,
    ] {
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{algo}")),
            &algo,
            |b, a| b.iter(|| sim.simulate_conv("l", black_box(&shape), *a)),
        );
    }
    g.finish();
}

fn bench_proxy(c: &mut Criterion) {
    let proxy = TpuMeasuredProxy::tpu_v2();
    let shape = ConvShape::square(8, 256, 28, 256, 3, 1, 1).unwrap();
    c.bench_function("tpu_proxy_conv", |b| {
        b.iter(|| proxy.conv_cycles(black_box(&shape)))
    });
}

criterion_group!(
    benches,
    bench_tpusim_layer,
    bench_tpusim_models,
    bench_gpusim_layer,
    bench_proxy
);
criterion_main!(benches);
