//! Criterion benchmarks of the dataflow substrates: reference GEMM, the
//! cycle-stepped systolic array, address generation, and tile scheduling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use iconv_core::addrgen::{AddrGen, VectorMemSpec};
use iconv_core::schedule::TileSchedule;
use iconv_systolic::reference::ReferenceArray;
use iconv_systolic::{ArrayConfig, SystolicArray};
use iconv_tensor::{ConvShape, Matrix};
use std::hint::black_box;

fn bench_reference_gemm(c: &mut Criterion) {
    let mut g = c.benchmark_group("reference_gemm");
    for n in [32usize, 64, 128, 256] {
        let a = Matrix::<f32>::from_fn(n, n, |r, s| (r * 31 + s) as f32 * 0.01);
        let b = Matrix::<f32>::from_fn(n, n, |r, s| (r + s * 17) as f32 * 0.01);
        g.throughput(criterion::Throughput::Elements((n * n * n) as u64));
        g.bench_with_input(BenchmarkId::new("naive", n), &n, |bch, _| {
            bch.iter(|| black_box(&a).reference_gemm(&b))
        });
        g.bench_with_input(BenchmarkId::new("packed", n), &n, |bch, _| {
            let mut ws = iconv_tensor::GemmWorkspace::new();
            bch.iter(|| black_box(&a).matmul_with(&b, &mut ws))
        });
        g.bench_with_input(BenchmarkId::new("packed_par", n), &n, |bch, _| {
            bch.iter(|| black_box(&a).par_matmul(&b))
        });
    }
    g.finish();
}

fn bench_systolic_array(c: &mut Criterion) {
    // Stepping the PE grid is the expensive ground-truth path: quantify it.
    let cfg = ArrayConfig { rows: 16, cols: 16 };
    let a = Matrix::<i64>::from_fn(64, 16, |r, s| (r + s) as i64 % 7 - 3);
    let b = Matrix::<i64>::from_fn(16, 16, |r, s| (r * s) as i64 % 5 - 2);
    c.bench_function("systolic_16x16_stream64", |bch| {
        bch.iter(|| {
            let mut arr = SystolicArray::with_weights(cfg, black_box(&b));
            arr.stream(&a)
        })
    });

    // Band-stepped vs naive full-grid reference at the sizes the tentpole
    // optimization targets; per-stream M is 2x the grid rows, the tile
    // schedulers' common case.
    let mut g = c.benchmark_group("systolic_stream");
    for size in [32usize, 128] {
        let cfg = ArrayConfig {
            rows: size,
            cols: size,
        };
        let m = 2 * size;
        let a = Matrix::<i64>::from_fn(m, size, |r, s| (r * 3 + s) as i64 % 7 - 3);
        let b = Matrix::<i64>::from_fn(size, size, |r, s| (r * s) as i64 % 5 - 2);
        g.throughput(criterion::Throughput::Elements((m * size * size) as u64));
        g.bench_with_input(BenchmarkId::new("optimized", size), &size, |bch, _| {
            let mut arr = SystolicArray::with_weights(cfg, &b);
            bch.iter(|| arr.stream(black_box(&a)))
        });
        g.bench_with_input(BenchmarkId::new("reference", size), &size, |bch, _| {
            let mut arr = ReferenceArray::with_weights(cfg, &b);
            bch.iter(|| arr.stream(black_box(&a)))
        });
    }
    g.finish();
}

fn bench_addrgen(c: &mut Criterion) {
    let shape = ConvShape::square(8, 8, 28, 32, 3, 1, 1).unwrap();
    let spec = VectorMemSpec {
        arrays: 32,
        word_elems: 8,
    };
    let sched = TileSchedule::tpu(&shape, 32);
    c.bench_function("addrgen_full_stream", |b| {
        b.iter(|| {
            let mut reads = 0u64;
            for group in sched.groups() {
                let gen = AddrGen::new(&shape, spec, group);
                for step in 0..gen.steps() {
                    for array in 0..spec.arrays {
                        if let iconv_core::ArrayOp::Read(_) = gen.op(step, array) {
                            reads += 1;
                        }
                    }
                }
            }
            black_box(reads)
        })
    });
}

fn bench_scheduling(c: &mut Criterion) {
    let shape = ConvShape::square(8, 8, 56, 128, 7, 1, 3).unwrap();
    c.bench_function("tile_schedule_tpu", |b| {
        b.iter(|| TileSchedule::tpu(black_box(&shape), 128))
    });
    c.bench_function("reordered_taps_7x7", |b| {
        b.iter(|| iconv_core::block::reordered_taps(black_box(&shape)))
    });
}

criterion_group!(
    benches,
    bench_reference_gemm,
    bench_systolic_array,
    bench_addrgen,
    bench_scheduling
);
criterion_main!(benches);
