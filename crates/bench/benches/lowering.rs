//! Criterion microbenchmarks of the im2col lowering paths: explicit
//! materialization versus the implicit index algebra that replaces it.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use iconv_core::LoweredView;
use iconv_tensor::conv_ref::ifmap_dims;
use iconv_tensor::{im2col, ColumnOrder, ConvShape, Layout, Tensor};
use std::hint::black_box;

fn layer(ci: usize, hw: usize) -> ConvShape {
    ConvShape::square(1, ci, hw, 32, 3, 1, 1).expect("valid bench layer")
}

fn bench_explicit_lowering(c: &mut Criterion) {
    let mut g = c.benchmark_group("explicit_im2col");
    for (ci, hw) in [(16usize, 28usize), (64, 28), (64, 56)] {
        let shape = layer(ci, hw);
        let x = Tensor::<f32>::random(ifmap_dims(&shape), Layout::Nhwc, 1);
        g.throughput(criterion::Throughput::Elements(shape.lowered_elems() as u64));
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{ci}x{hw}")),
            &shape,
            |b, s| b.iter(|| im2col::lower(s, &x, black_box(ColumnOrder::ChannelFirst))),
        );
    }
    g.finish();
}

fn bench_implicit_indexing(c: &mut Criterion) {
    // The implicit algorithms never materialize: their cost per element is
    // this index computation.
    let shape = layer(64, 56);
    let view = LoweredView::new(shape, ColumnOrder::ChannelFirst);
    c.bench_function("implicit_entry_algebra_1M", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for row in (0..view.rows()).step_by(7) {
                for col in (0..view.cols()).step_by(3) {
                    if let Some(coord) = view.entry(black_box(row), black_box(col)) {
                        acc += coord.h;
                    }
                }
            }
            acc
        })
    });
}

fn bench_filter_matrix(c: &mut Criterion) {
    let shape = layer(64, 56);
    let f = Tensor::<f32>::random(iconv_tensor::conv_ref::filter_dims(&shape), Layout::Nchw, 2);
    c.bench_function("filter_matrix_64x3x3x32", |b| {
        b.iter(|| im2col::filter_matrix(&shape, &f, black_box(ColumnOrder::ChannelFirst)))
    });
}

criterion_group!(
    benches,
    bench_explicit_lowering,
    bench_implicit_indexing,
    bench_filter_matrix
);
criterion_main!(benches);
