//! Property-based tests of the DRAM models: the closed-form efficiency
//! curve and the trace-driven bank simulator must agree on orderings and
//! respect physical bounds over randomized access patterns.

use iconv_dram::{BankSim, DramConfig, DramModel, Request};
use proptest::prelude::*;

fn config() -> DramConfig {
    DramConfig::hbm_tpu_v2()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Efficiency is a proper fraction and non-decreasing in run length.
    #[test]
    fn efficiency_monotone(run_a in 1u64..1_000_000, run_b in 1u64..1_000_000) {
        let m = DramModel::new(config());
        let (lo, hi) = if run_a <= run_b { (run_a, run_b) } else { (run_b, run_a) };
        let (e_lo, e_hi) = (m.efficiency(lo), m.efficiency(hi));
        prop_assert!(e_lo > 0.0 && e_hi <= 1.0);
        // Monotone up to the burst-rounding sawtooth (a partial tail burst
        // can nudge efficiency down by less than one burst's share).
        prop_assert!(e_hi >= e_lo - 1e-3, "eff({hi})={e_hi} < eff({lo})={e_lo}");
    }

    /// Transfer time scales (super)linearly in bytes at fixed run length and
    /// never dips below the peak-bandwidth bound.
    #[test]
    fn transfer_time_bounds(bytes in 1u64..100_000_000, run in 1u64..100_000) {
        let m = DramModel::new(config());
        let c = m.transfer_cycles(bytes, run);
        let peak_bound = bytes as f64 / config().bytes_per_cycle;
        prop_assert!(c as f64 >= peak_bound.floor(), "{c} cycles beats peak {peak_bound}");
        // Doubling the bytes at least doubles the streamed portion.
        let c2 = m.transfer_cycles(bytes * 2, run);
        prop_assert!(c2 >= c, "more bytes got faster");
    }

    /// The bank simulator never finishes before the data-bus lower bound,
    /// and accounts exactly one row event per burst.
    #[test]
    fn banksim_physical_bounds(
        n_reqs in 1usize..200,
        stride in 1u64..8192,
        bytes in 1u64..512,
    ) {
        let reqs: Vec<Request> = (0..n_reqs as u64)
            .map(|i| Request::new(i * stride, bytes))
            .collect();
        let mut sim = BankSim::new(config());
        let cycles = sim.run(&reqs);
        // Lower bound: the touched bursts on the shared bus.
        let bursts: u64 = reqs
            .iter()
            .map(|r| {
                let first = r.addr / config().burst_bytes;
                let last = (r.addr + r.bytes - 1) / config().burst_bytes;
                last - first + 1
            })
            .sum();
        let bus = bursts as f64 * config().burst_bytes as f64 / config().bytes_per_cycle;
        prop_assert!(cycles >= config().base_latency + bus.floor() as u64);
        prop_assert_eq!(sim.row_hits() + sim.row_misses(), bursts);
    }

    /// Sequential traces are never slower than the same bytes scattered one
    /// element per row.
    #[test]
    fn sequential_beats_scattered(kb in 1u64..256) {
        let total = kb * 1024;
        let seq: Vec<Request> = (0..total / 64).map(|i| Request::new(i * 64, 64)).collect();
        let scat: Vec<Request> = (0..total / 64).map(|i| Request::new(i * 1024, 64)).collect();
        let a = BankSim::new(config()).run(&seq);
        let b = BankSim::new(config()).run(&scat);
        prop_assert!(a <= b, "sequential {a} slower than scattered {b}");
    }
}
