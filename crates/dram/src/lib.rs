//! # iconv-dram
//!
//! Off-chip memory timing for the simulators — the workspace's substitute
//! for DRAMSim3 (see `DESIGN.md` §1).
//!
//! Two models with one calibration:
//!
//! * [`BankSim`] — a trace-driven bank/row-buffer model: per-bank open-row
//!   state, activate/precharge penalties, a shared data bus, bank-level
//!   parallelism. Used at small scale and to validate the fast model.
//! * [`DramModel::transfer_cycles`] — a closed-form model in terms of bytes
//!   moved and the *contiguous run length* of the access pattern. This is
//!   what the layer-scale simulators call.
//!
//! The run-length dependence is the whole point (paper Fig. 7): an `HWC`
//! IFMap yields long contiguous runs (all channels of consecutive pixels)
//! while `CHW` yields short, strided runs, so `HWC` sustains far more of the
//! peak bandwidth — especially under stride > 1.

pub mod banksim;
pub mod model;

pub use banksim::{BankSim, Request};
pub use model::{DramConfig, DramModel};
