//! Closed-form DRAM transfer model parameterized by access-pattern run
//! length.

/// Static DRAM/interface parameters.
///
/// All *cycle* quantities are in the **consumer's** clock domain (the
/// accelerator core clock), so simulators can add them directly to compute
/// cycles. `bytes_per_cycle` is `peak_bandwidth / core_clock`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramConfig {
    /// Peak deliverable bytes per consumer-clock cycle.
    pub bytes_per_cycle: f64,
    /// Bytes per DRAM burst (minimum access granule).
    pub burst_bytes: u64,
    /// Row-buffer (page) size in bytes.
    pub row_bytes: u64,
    /// Number of banks visible for parallelism (banks × channels).
    pub banks: u64,
    /// Cycles to activate a closed row (tRCD equivalent).
    pub t_activate: u64,
    /// Cycles to precharge an open row (tRP equivalent).
    pub t_precharge: u64,
    /// Column-access latency (tCAS equivalent).
    pub t_cas: u64,
    /// Fixed request-pipeline latency added once per transfer.
    pub base_latency: u64,
}

impl DramConfig {
    /// HBM feeding a TPU-v2 core: 700 GB/s at a 700 MHz core clock
    /// (paper Table II) → 1000 B/cycle.
    pub fn hbm_tpu_v2() -> Self {
        Self {
            bytes_per_cycle: 1000.0,
            burst_bytes: 64,
            row_bytes: 1024,
            banks: 128, // 8 stacks × 16 banks
            t_activate: 14,
            t_precharge: 14,
            t_cas: 14,
            base_latency: 100,
        }
    }

    /// HBM2 feeding a V100 SM: 900 GB/s at a 1530 MHz core clock
    /// → ~588 B/cycle chip-wide.
    pub fn hbm2_v100() -> Self {
        Self {
            bytes_per_cycle: 588.0,
            burst_bytes: 64,
            row_bytes: 1024,
            banks: 256, // 4 stacks × 16 banks × 4 pseudo-channels
            t_activate: 20,
            t_precharge: 20,
            t_cas: 20,
            base_latency: 220,
        }
    }
}

/// The closed-form transfer model.
/// # Examples
///
/// ```
/// # use iconv_dram::{DramConfig, DramModel};
/// let m = DramModel::new(DramConfig::hbm_tpu_v2());
/// // HWC-format fills (long runs) sustain far more bandwidth than CHW
/// // strided fills (short runs) — the paper's Fig. 7.
/// assert!(m.effective_bandwidth(2048) > 4.0 * m.effective_bandwidth(16));
/// ```
///

#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramModel {
    config: DramConfig,
}

impl DramModel {
    /// Create a model over `config`.
    pub fn new(config: DramConfig) -> Self {
        Self { config }
    }

    /// The configuration.
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    /// Fraction of peak bandwidth sustained by a stream of contiguous runs
    /// of `run_bytes` each.
    ///
    /// Two effects: (1) runs round up to whole bursts, wasting bus bytes on
    /// sub-burst tails; (2) each run opens a fresh row, whose command
    /// overhead overlaps with transfers on [`DramConfig::banks`]-way bank
    /// parallelism, leaving a small non-overlapped residue per run. Row
    /// crossings *inside* a run land on the next (interleaved) bank and are
    /// fully hidden. Long runs approach 1.0; byte-scattered runs collapse
    /// toward `run_bytes / burst_bytes`.
    pub fn efficiency(&self, run_bytes: u64) -> f64 {
        let c = &self.config;
        let run = run_bytes.max(1);
        // Bytes actually moved on the bus: runs round up to whole bursts.
        let bursts = run.div_ceil(c.burst_bytes);
        let bus_bytes = bursts * c.burst_bytes;
        // Non-overlapped command residue per run, in byte-equivalents.
        let cmd_cycles = (c.t_activate + c.t_precharge + c.t_cas) as f64;
        let cmd_bytes = cmd_cycles * c.bytes_per_cycle / c.banks as f64;
        run as f64 / (bus_bytes as f64 + cmd_bytes)
    }

    /// Consumer-clock cycles to move `bytes` with contiguous runs of
    /// `run_bytes`. Returns at least [`DramConfig::base_latency`].
    pub fn transfer_cycles(&self, bytes: u64, run_bytes: u64) -> u64 {
        if bytes == 0 {
            return 0;
        }
        let eff = self.efficiency(run_bytes);
        let stream = (bytes as f64 / (self.config.bytes_per_cycle * eff)).ceil() as u64;
        self.config.base_latency + stream
    }

    /// Cycles for a perfectly sequential transfer (runs = whole rows).
    pub fn sequential_cycles(&self, bytes: u64) -> u64 {
        self.transfer_cycles(bytes, self.config.row_bytes)
    }

    /// Effective bandwidth (bytes/cycle) for the given run length.
    pub fn effective_bandwidth(&self, run_bytes: u64) -> f64 {
        self.config.bytes_per_cycle * self.efficiency(run_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> DramModel {
        DramModel::new(DramConfig::hbm_tpu_v2())
    }

    #[test]
    fn efficiency_monotone_in_run_length() {
        let m = model();
        let mut prev = 0.0;
        for run in [4u64, 16, 64, 256, 1024, 4096, 65536] {
            let e = m.efficiency(run);
            assert!(e > 0.0 && e <= 1.0, "run {run} -> {e}");
            assert!(e >= prev, "efficiency must not decrease with run length");
            prev = e;
        }
    }

    #[test]
    fn long_runs_near_peak_short_runs_poor() {
        let m = model();
        assert!(
            m.efficiency(1 << 20) > 0.9,
            "1MB runs should be >90% efficient"
        );
        // 4-byte scattered accesses waste most of each 64B burst.
        assert!(m.efficiency(4) < 0.1);
    }

    #[test]
    fn hwc_beats_chw_for_strided_fills() {
        // Stride-2 conv, Ci=64, FP32. HWC: runs of Ci*4 = 256B (one pixel,
        // all channels). CHW: runs of 4B (single elements, stride 2 apart).
        let m = model();
        let hwc = m.effective_bandwidth(256);
        let chw = m.effective_bandwidth(4);
        assert!(hwc > 4.0 * chw, "HWC {hwc:.0} vs CHW {chw:.0}");
    }

    #[test]
    fn transfer_cycles_scale_linearly_in_bytes() {
        let m = model();
        let c1 = m.transfer_cycles(1 << 20, 1024);
        let c2 = m.transfer_cycles(2 << 20, 1024);
        let streamed1 = c1 - m.config().base_latency;
        let streamed2 = c2 - m.config().base_latency;
        let ratio = streamed2 as f64 / streamed1 as f64;
        assert!((ratio - 2.0).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn zero_bytes_costs_nothing() {
        assert_eq!(model().transfer_cycles(0, 64), 0);
    }

    #[test]
    fn small_transfer_dominated_by_latency() {
        let m = model();
        let c = m.transfer_cycles(64, 64);
        assert!(c >= m.config().base_latency);
        assert!(c < m.config().base_latency + 10);
    }

    #[test]
    fn v100_config_sane() {
        let m = DramModel::new(DramConfig::hbm2_v100());
        assert!(m.effective_bandwidth(4096) > 500.0);
    }
}
