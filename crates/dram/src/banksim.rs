//! Trace-driven bank/row-buffer DRAM simulation.
//!
//! Small-scale companion to the closed-form [`crate::DramModel`]: it
//! processes an explicit request trace with per-bank open-row state, a
//! shared data bus, and overlapped activates, and is used in tests to check
//! that the closed-form efficiency curve has the right shape.

use crate::model::DramConfig;
use iconv_trace::{NullSink, TraceSink};

/// One read request: `bytes` starting at byte address `addr`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Byte address.
    pub addr: u64,
    /// Length in bytes.
    pub bytes: u64,
}

impl Request {
    /// Construct a request.
    pub fn new(addr: u64, bytes: u64) -> Self {
        Self { addr, bytes }
    }
}

#[derive(Debug, Clone, Copy)]
struct Bank {
    open_row: Option<u64>,
    ready_at: u64,
}

/// Trace-driven bank-level DRAM simulator.
///
/// Address mapping is row-interleaved across banks: consecutive
/// `row_bytes`-sized blocks map to consecutive banks, so sequential streams
/// enjoy bank-level parallelism, while strided patterns thrash rows.
///
/// # Examples
///
/// ```
/// # use iconv_dram::{BankSim, Request, DramConfig};
/// let mut sim = BankSim::new(DramConfig::hbm_tpu_v2());
/// let seq: Vec<Request> = (0..64).map(|i| Request::new(i * 64, 64)).collect();
/// let cycles = sim.run(&seq);
/// assert!(cycles > 0);
/// ```
#[derive(Debug, Clone)]
pub struct BankSim {
    config: DramConfig,
    banks: Vec<Bank>,
    stats_row_hits: u64,
    stats_row_misses: u64,
}

impl BankSim {
    /// Create a simulator over `config`.
    pub fn new(config: DramConfig) -> Self {
        let banks = vec![
            Bank {
                open_row: None,
                ready_at: 0,
            };
            config.banks as usize
        ];
        Self {
            config,
            banks,
            stats_row_hits: 0,
            stats_row_misses: 0,
        }
    }

    fn bank_and_row(&self, addr: u64) -> (usize, u64) {
        let block = addr / self.config.row_bytes;
        (
            (block % self.config.banks) as usize,
            block / self.config.banks,
        )
    }

    /// Process `requests` in order; returns total cycles until the last
    /// burst completes. State (open rows) persists across calls.
    ///
    /// Activates are issued eagerly (the controller sees the queued trace),
    /// so a row miss only delays data when the bank was busy recently —
    /// bank-level parallelism hides misses on streams that rotate banks.
    /// CAS latency is pipelined: it adds to the completion time of a burst,
    /// not to the bank's availability for the next one.
    pub fn run(&mut self, requests: &[Request]) -> u64 {
        self.run_traced(requests, &mut NullSink)
    }

    /// [`BankSim::run`] emitting per-burst row hit/miss/activate events on
    /// a `dram` track (span start = bus start cycle, duration = burst bus
    /// time) plus `dram.*` counters into `sink`.
    pub fn run_traced(&mut self, requests: &[Request], sink: &mut dyn TraceSink) -> u64 {
        let c = self.config;
        // Data-bus cycles per burst at peak bandwidth.
        let burst_cycles = (c.burst_bytes as f64 / c.bytes_per_cycle).max(f64::MIN_POSITIVE);
        let mut bus_free = 0f64;
        let mut finish = 0f64;
        let hits0 = self.stats_row_hits;
        let misses0 = self.stats_row_misses;
        let mut activates = 0u64;
        for req in requests {
            let mut addr = req.addr;
            let end = req.addr + req.bytes;
            while addr < end {
                let (bank_idx, row) = self.bank_and_row(addr);
                let bank = &mut self.banks[bank_idx];
                // Earliest cycle the bank can put data on the bus.
                let (bank_ready, hit) = match bank.open_row {
                    Some(open) if open == row => {
                        self.stats_row_hits += 1;
                        (bank.ready_at as f64, true)
                    }
                    Some(_) => {
                        self.stats_row_misses += 1;
                        activates += 1;
                        (
                            bank.ready_at as f64 + (c.t_precharge + c.t_activate) as f64,
                            false,
                        )
                    }
                    None => {
                        self.stats_row_misses += 1;
                        activates += 1;
                        (bank.ready_at as f64 + c.t_activate as f64, false)
                    }
                };
                bank.open_row = Some(row);
                let start = bank_ready.max(bus_free);
                let done = start + burst_cycles;
                bus_free = done;
                bank.ready_at = done as u64;
                // CAS latency delays arrival of this burst's data only.
                finish = finish.max(done + c.t_cas as f64);
                if sink.enabled() {
                    if !hit {
                        // The activate occupies the window ending when the
                        // bank becomes ready.
                        sink.span(
                            "dram",
                            "activate",
                            bank_ready as u64 - c.t_activate,
                            c.t_activate,
                        );
                    }
                    sink.span(
                        "dram",
                        if hit { "row-hit" } else { "row-miss" },
                        start as u64,
                        burst_cycles.ceil() as u64,
                    );
                }
                addr += c.burst_bytes - (addr % c.burst_bytes);
            }
        }
        sink.counter("dram.requests", requests.len() as u64);
        sink.counter("dram.row_hits", self.stats_row_hits - hits0);
        sink.counter("dram.row_misses", self.stats_row_misses - misses0);
        sink.counter("dram.activates", activates);
        c.base_latency + finish.ceil() as u64
    }

    /// Total burst-granular accesses so far (`row_hits + row_misses`).
    pub fn accesses(&self) -> u64 {
        self.stats_row_hits + self.stats_row_misses
    }

    /// Row-buffer hit count so far.
    pub fn row_hits(&self) -> u64 {
        self.stats_row_hits
    }

    /// Row-buffer miss count so far.
    pub fn row_misses(&self) -> u64 {
        self.stats_row_misses
    }

    /// Row-buffer hit rate so far (0 when no accesses yet).
    pub fn hit_rate(&self) -> f64 {
        let total = self.stats_row_hits + self.stats_row_misses;
        if total == 0 {
            0.0
        } else {
            self.stats_row_hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::DramModel;

    fn cfg() -> DramConfig {
        DramConfig::hbm_tpu_v2()
    }

    fn sequential(bytes: u64) -> Vec<Request> {
        (0..bytes / 64).map(|i| Request::new(i * 64, 64)).collect()
    }

    /// Requests striding one element (4B) per 1 KiB row — worst case.
    fn scattered(count: u64) -> Vec<Request> {
        (0..count).map(|i| Request::new(i * 1024, 4)).collect()
    }

    #[test]
    fn sequential_stream_is_near_peak() {
        let mut sim = BankSim::new(cfg());
        let bytes = 1u64 << 20;
        let cycles = sim.run(&sequential(bytes));
        let eff = bytes as f64 / ((cycles - cfg().base_latency) as f64 * cfg().bytes_per_cycle);
        assert!(eff > 0.85, "sequential efficiency {eff}");
        assert!(sim.hit_rate() > 0.9);
    }

    #[test]
    fn scattered_stream_is_slow() {
        let mut sim = BankSim::new(cfg());
        let n = 4096u64;
        let cycles = sim.run(&scattered(n));
        let useful = n * 4;
        let eff = useful as f64 / ((cycles - cfg().base_latency) as f64 * cfg().bytes_per_cycle);
        assert!(eff < 0.2, "scattered efficiency {eff}");
    }

    #[test]
    fn closed_form_tracks_banksim_ordering() {
        // The analytic model must rank patterns the same way the bank sim
        // does: long runs faster than short runs faster than scattered.
        let model = DramModel::new(cfg());
        let total = 1u64 << 18;
        let mut measured = Vec::new();
        for run in [64u64, 256, 1024] {
            let reqs: Vec<Request> = (0..total / run)
                .map(|i| Request::new(i * run * 7, run)) // gaps between runs
                .collect();
            let mut sim = BankSim::new(cfg());
            measured.push((run, sim.run(&reqs)));
        }
        for w in measured.windows(2) {
            // Bus bytes are identical across the three patterns, so bank
            // scheduling noise can flip near-ties; allow 5%.
            assert!(
                w[0].1 as f64 >= w[1].1 as f64 * 0.95,
                "longer runs must not be meaningfully slower: {measured:?}"
            );
        }
        // The strong ordering: scattered 4-byte touches versus a sequential
        // stream of the same useful bytes.
        let scattered: Vec<Request> = (0..total / 4).map(|i| Request::new(i * 1024, 4)).collect();
        let scattered_cycles = BankSim::new(cfg()).run(&scattered);
        let seq_cycles = BankSim::new(cfg()).run(&sequential(total));
        assert!(
            scattered_cycles > 4 * seq_cycles,
            "scattered {scattered_cycles} vs sequential {seq_cycles}"
        );
        // Analytic agrees on the ordering.
        let a: Vec<u64> = [64u64, 256, 1024]
            .iter()
            .map(|&r| model.transfer_cycles(total, r))
            .collect();
        assert!(a[0] >= a[1] && a[1] >= a[2], "{a:?}");
    }

    #[test]
    fn state_persists_across_calls() {
        let mut sim = BankSim::new(cfg());
        sim.run(&[Request::new(0, 64)]);
        let misses_before = sim.row_misses();
        // Same row again: a hit.
        sim.run(&[Request::new(64, 64)]);
        assert_eq!(sim.row_misses(), misses_before);
        assert_eq!(sim.row_hits(), 1);
    }

    #[test]
    fn empty_trace_is_base_latency_only() {
        let mut sim = BankSim::new(cfg());
        assert_eq!(sim.run(&[]), cfg().base_latency);
        assert_eq!(sim.hit_rate(), 0.0);
    }

    /// Independent burst count for a request: how many `burst_bytes`
    /// boundaries the byte range `[addr, addr + bytes)` touches.
    fn expected_bursts(reqs: &[Request], burst_bytes: u64) -> u64 {
        reqs.iter()
            .map(|r| {
                let first = r.addr / burst_bytes;
                let last = (r.addr + r.bytes - 1) / burst_bytes;
                last - first + 1
            })
            .sum()
    }

    #[test]
    fn hits_plus_misses_account_for_every_request() {
        // Every burst-granular access is classified exactly once — no
        // request slips through unclassified, none is double counted.
        for reqs in [
            sequential(1 << 16),
            scattered(512),
            vec![Request::new(30, 100)],
        ] {
            let mut sim = BankSim::new(cfg());
            sim.run(&reqs);
            assert_eq!(
                sim.row_hits() + sim.row_misses(),
                expected_bursts(&reqs, cfg().burst_bytes),
            );
            assert_eq!(sim.accesses(), sim.row_hits() + sim.row_misses());
            assert!(sim.accesses() >= reqs.len() as u64);
        }
    }

    #[test]
    fn traced_run_emits_classified_events() {
        use iconv_trace::Recorder;
        let reqs = sequential(1 << 12);
        let mut rec = Recorder::new();
        let mut sim = BankSim::new(cfg());
        let traced_cycles = sim.run_traced(&reqs, &mut rec);
        // Tracing must not perturb timing or stats.
        let mut plain = BankSim::new(cfg());
        assert_eq!(plain.run(&reqs), traced_cycles);
        assert_eq!(plain.row_hits(), sim.row_hits());
        // Counters mirror the stats; every access got a span.
        assert_eq!(rec.counters()["dram.row_hits"], sim.row_hits());
        assert_eq!(rec.counters()["dram.row_misses"], sim.row_misses());
        assert_eq!(rec.counters()["dram.requests"], reqs.len() as u64);
        assert_eq!(
            rec.counters()["dram.activates"],
            rec.counters()["dram.row_misses"]
        );
        let bursts = rec
            .spans()
            .iter()
            .filter(|s| s.name == "row-hit" || s.name == "row-miss")
            .count() as u64;
        assert_eq!(bursts, sim.accesses());
    }

    #[test]
    fn unaligned_request_rounds_to_bursts() {
        let mut sim = BankSim::new(cfg());
        // 100 bytes starting mid-burst touches 2-3 bursts, never 0.
        sim.run(&[Request::new(30, 100)]);
        assert!(sim.row_hits() + sim.row_misses() >= 2);
    }
}
