//! Roofline sanity bounds.

/// A classic roofline: peak compute rate and peak memory bandwidth.
///
/// Used as a *lower bound* on any simulated latency — a simulator reporting
/// fewer cycles than the roofline has a bug (checked by integration tests).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Roofline {
    /// Peak MACs per cycle.
    pub macs_per_cycle: f64,
    /// Peak bytes per cycle.
    pub bytes_per_cycle: f64,
}

impl Roofline {
    /// TPU-v2 core roofline (Table II).
    pub fn tpu_v2() -> Self {
        Self {
            macs_per_cycle: 128.0 * 128.0,
            bytes_per_cycle: 1000.0,
        }
    }

    /// V100 FP16 tensor-core roofline.
    pub fn v100() -> Self {
        Self {
            macs_per_cycle: 80.0 * 512.0,
            bytes_per_cycle: 588.0,
        }
    }

    /// Minimum cycles to perform `macs` MACs while moving `bytes` bytes.
    pub fn min_cycles(&self, macs: u64, bytes: u64) -> f64 {
        (macs as f64 / self.macs_per_cycle).max(bytes as f64 / self.bytes_per_cycle)
    }

    /// Arithmetic intensity (MACs/byte) at which the machine is balanced.
    pub fn balance_point(&self) -> f64 {
        self.macs_per_cycle / self.bytes_per_cycle
    }

    /// True when a workload of the given intensity is compute-bound.
    pub fn is_compute_bound(&self, macs: u64, bytes: u64) -> bool {
        bytes == 0 || (macs as f64 / bytes as f64) >= self.balance_point()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balance_points() {
        assert!((Roofline::tpu_v2().balance_point() - 16.384).abs() < 0.01);
        assert!((Roofline::v100().balance_point() - 69.66).abs() < 0.1);
    }

    #[test]
    fn min_cycles_takes_the_max() {
        let r = Roofline::tpu_v2();
        // Compute-bound.
        assert_eq!(r.min_cycles(16384 * 100, 1000), 100.0);
        // Memory-bound.
        assert_eq!(r.min_cycles(16384, 1_000_000), 1000.0);
    }

    #[test]
    fn boundness_classification() {
        let r = Roofline::tpu_v2();
        assert!(r.is_compute_bound(1_000_000, 1));
        assert!(!r.is_compute_bound(1, 1_000_000));
        assert!(r.is_compute_bound(42, 0));
    }
}
