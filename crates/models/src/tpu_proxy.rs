//! The TPU-v2 "measured hardware" stand-in.

use iconv_core::schedule::tpu_group_size;
use iconv_tensor::ConvShape;

/// Analytical performance model of a TPU-v2-class channel-first machine,
/// playing the role of the measured hardware in the validation experiments.
///
/// The model is a roofline over the published Table II parameters — peak
/// MAC rate with pass-tiling occupancy, HBM bandwidth at a fixed efficiency
/// — plus a fixed per-op overhead and a deterministic, shape-keyed jitter
/// that stands in for measurement noise (cloud TPU latencies vary a few
/// percent run to run).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TpuMeasuredProxy {
    /// PE rows (128).
    pub rows: usize,
    /// PE columns (128).
    pub cols: usize,
    /// HBM bytes per core cycle (1000 at 700 GB/s / 700 MHz).
    pub bytes_per_cycle: f64,
    /// Fixed fraction of peak bandwidth the hardware sustains.
    pub mem_efficiency: f64,
    /// Element size in bytes.
    pub elem_bytes: u64,
    /// Fixed per-operation overhead cycles (dispatch, DMA setup, sync).
    pub overhead_cycles: f64,
    /// Relative amplitude of the deterministic measurement jitter.
    pub jitter: f64,
}

impl TpuMeasuredProxy {
    /// The TPU-v2 proxy.
    pub fn tpu_v2() -> Self {
        Self {
            rows: 128,
            cols: 128,
            bytes_per_cycle: 1000.0,
            mem_efficiency: 0.88,
            elem_bytes: 4,
            overhead_cycles: 1_600.0,
            jitter: 0.045,
        }
    }

    /// Deterministic jitter factor in `[1 − jitter, 1 + jitter]`, keyed by
    /// the operation's dimensions (FNV-1a hash) so repeated queries agree.
    fn jitter_factor(&self, key: &[u64]) -> f64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &v in key {
            for b in v.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
        }
        let unit = (h >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
        1.0 + self.jitter * (2.0 * unit - 1.0)
    }

    /// "Measured" cycles for an `M × N × K` GEMM.
    pub fn gemm_cycles(&self, m: usize, n: usize, k: usize) -> f64 {
        let passes = k.div_ceil(self.rows) as f64 * n.div_ceil(self.cols) as f64;
        let compute = passes * m as f64;
        let bytes = ((m * k + k * n + m * n) as u64 * self.elem_bytes) as f64;
        let mem = bytes / (self.bytes_per_cycle * self.mem_efficiency);
        (compute.max(mem) + self.overhead_cycles)
            * self.jitter_factor(&[m as u64, n as u64, k as u64])
    }

    /// "Measured" cycles for a convolution executed with the channel-first
    /// algorithm and the TPU multi-tile strategy.
    pub fn conv_cycles(&self, shape: &ConvShape) -> f64 {
        self.conv_cycles_grouped(shape, tpu_group_size(self.rows, shape.ci, shape.wf))
    }

    /// "Measured" cycles with a forced multi-tile group size (the Fig. 14a
    /// sweep; the hardware is configured via layout padding).
    pub fn conv_cycles_grouped(&self, shape: &ConvShape, group: usize) -> f64 {
        let group = group.clamp(1, (self.rows / shape.ci).max(1)).min(shape.wf);
        let m = shape.lowered_rows() as f64;
        // Groups along each filter row: full groups plus a remainder.
        let full = shape.wf / group;
        let rem = shape.wf % group;
        let n_tiles = shape.co.div_ceil(self.cols) as f64;
        let mut compute = 0.0;
        let per_group =
            |g: usize| -> f64 { (g * shape.ci).div_ceil(self.rows) as f64 * n_tiles * m };
        compute += shape.hf as f64 * full as f64 * per_group(group);
        if rem > 0 {
            compute += shape.hf as f64 * per_group(rem);
        }
        let bytes = ((shape.ifmap_elems() + shape.filter_elems() + shape.ofmap_elems()) as u64
            * self.elem_bytes) as f64;
        let mem = bytes / (self.bytes_per_cycle * self.mem_efficiency);
        let key = [
            shape.n as u64,
            shape.ci as u64,
            shape.hi as u64,
            shape.wi as u64,
            shape.co as u64,
            shape.hf as u64,
            shape.stride_h as u64,
            group as u64,
        ];
        (compute.max(mem) + self.overhead_cycles) * self.jitter_factor(&key)
    }

    /// "Measured" TFLOPS for a convolution at 700 MHz.
    pub fn conv_tflops(&self, shape: &ConvShape) -> f64 {
        let secs = self.conv_cycles(shape) / 700e6;
        shape.flops() as f64 / secs / 1e12
    }
}

impl Default for TpuMeasuredProxy {
    fn default() -> Self {
        Self::tpu_v2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn proxy() -> TpuMeasuredProxy {
        TpuMeasuredProxy::tpu_v2()
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let p = proxy();
        let a = p.gemm_cycles(1024, 1024, 1024);
        let b = p.gemm_cycles(1024, 1024, 1024);
        assert_eq!(a, b);
        // Different shapes get different jitter.
        let c = p.gemm_cycles(1024, 1024, 1025);
        assert_ne!(a, c);
    }

    #[test]
    fn big_gemm_near_ideal_tiling() {
        let p = proxy();
        let cycles = p.gemm_cycles(8192, 8192, 8192);
        let ideal = 64.0 * 64.0 * 8192.0;
        let ratio = cycles / ideal;
        assert!((0.9..1.1).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn skinny_gemm_memory_bound() {
        let p = proxy();
        // K=N=128 tall-skinny: 1 pass, big A: compute = m, mem > m.
        let m = 1 << 20;
        // mem ≈ 1.19 m cycles, modulated by ±4.5% jitter.
        let cycles = p.gemm_cycles(m, 128, 128);
        assert!(cycles > 1.1 * m as f64);
    }

    #[test]
    fn conv_uses_multi_tile_strategy() {
        // Ci=8, Wf=3: groups of 3 -> one merged pass per filter row.
        let s = ConvShape::square(8, 8, 56, 128, 3, 1, 1).unwrap();
        let grouped = proxy().conv_cycles(&s);
        let single = proxy().conv_cycles_grouped(&s, 1);
        assert!(grouped * 2.0 < single, "{grouped} vs {single}");
    }

    #[test]
    fn conv_stride_insensitive_tflops() {
        let t1 = proxy().conv_tflops(&ConvShape::square(8, 256, 28, 256, 3, 1, 1).unwrap());
        let t2 = proxy().conv_tflops(&ConvShape::square(8, 256, 28, 256, 3, 2, 1).unwrap());
        let drop = (t1 - t2) / t1;
        assert!(drop.abs() < 0.25, "drop {drop}");
    }

    #[test]
    fn remainder_groups_counted() {
        // Wf=5, group=3 -> groups of 3 and 2 per filter row.
        let s = ConvShape::square(8, 40, 28, 128, 5, 1, 2).unwrap();
        let c = proxy().conv_cycles_grouped(&s, 3);
        // Lower bound: 5 filter rows x (one group of 3 + one of 2) x M.
        let m = s.lowered_rows() as f64;
        assert!(c > 10.0 * m * 0.9);
    }
}
