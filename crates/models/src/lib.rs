//! # iconv-models
//!
//! Analytical hardware proxies and error metrics for the validation
//! experiments (paper Figs. 13–15).
//!
//! The paper validates TPUSim against *measured* cloud TPU-v2 latencies.
//! Real TPU hardware is unavailable here, so [`TpuMeasuredProxy`] stands in
//! for the measurement: an independent analytical performance model of a
//! TPU-v2-class channel-first machine, derived from the published Table II
//! parameters by a different modelling route than TPUSim's event pipeline
//! (no chunked DRAM overlap, no serializer stalls, no run-length-aware
//! bandwidth — instead a fixed-efficiency roofline with per-op overhead and
//! deterministic measurement jitter). Simulator-vs-proxy error is therefore
//! a real, non-trivial quantity with the same few-percent scale the paper
//! reports; see `DESIGN.md` §1 for the substitution rationale.

pub mod error;
pub mod roofline;
pub mod tpu_proxy;

pub use error::{error_distribution, mean_abs_pct_error};
pub use roofline::Roofline;
pub use tpu_proxy::TpuMeasuredProxy;
