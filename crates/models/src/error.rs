//! Error metrics for the simulator-vs-hardware validation figures
//! (Figs. 13, 14b, 15).

/// Mean absolute percentage error between `(simulated, measured)` pairs:
/// `mean(|sim − meas| / meas)`, as a fraction (0.05 = 5 %).
/// # Examples
///
/// ```
/// # use iconv_models::mean_abs_pct_error;
/// let pairs = [(105.0, 100.0), (97.0, 100.0)];
/// assert!((mean_abs_pct_error(&pairs) - 0.04).abs() < 1e-12);
/// ```
///
///
/// # Panics
///
/// Panics if `pairs` is empty or any measured value is non-positive.
pub fn mean_abs_pct_error(pairs: &[(f64, f64)]) -> f64 {
    assert!(!pairs.is_empty(), "no pairs to compare");
    let sum: f64 = pairs
        .iter()
        .map(|&(sim, meas)| {
            assert!(meas > 0.0, "measured value must be positive");
            (sim - meas).abs() / meas
        })
        .sum();
    sum / pairs.len() as f64
}

/// Histogram of absolute percentage errors: returns `(bin_edges, counts)`
/// for `bins` equal-width bins spanning `[0, max_error]` — the Fig. 15b
/// layer-wise error distribution.
///
/// # Panics
///
/// Panics if `pairs` is empty, `bins` is zero, or a measured value is
/// non-positive.
pub fn error_distribution(pairs: &[(f64, f64)], bins: usize) -> (Vec<f64>, Vec<usize>) {
    assert!(bins > 0, "need at least one bin");
    let errs: Vec<f64> = pairs
        .iter()
        .map(|&(sim, meas)| {
            assert!(meas > 0.0, "measured value must be positive");
            (sim - meas).abs() / meas
        })
        .collect();
    assert!(!errs.is_empty(), "no pairs to compare");
    let max = errs.iter().cloned().fold(0.0, f64::max).max(1e-12);
    let width = max / bins as f64;
    let mut counts = vec![0usize; bins];
    for &e in &errs {
        let idx = ((e / width) as usize).min(bins - 1);
        counts[idx] += 1;
    }
    let edges = (0..=bins).map(|i| i as f64 * width).collect();
    (edges, counts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mape_basic() {
        let pairs = [(110.0, 100.0), (95.0, 100.0)];
        assert!((mean_abs_pct_error(&pairs) - 0.075).abs() < 1e-12);
    }

    #[test]
    fn mape_zero_for_perfect_match() {
        assert_eq!(mean_abs_pct_error(&[(5.0, 5.0)]), 0.0);
    }

    #[test]
    #[should_panic(expected = "no pairs")]
    fn mape_empty_panics() {
        let _ = mean_abs_pct_error(&[]);
    }

    #[test]
    fn distribution_counts_everything() {
        let pairs: Vec<(f64, f64)> = (1..=100).map(|i| (100.0 + i as f64 * 0.1, 100.0)).collect();
        let (edges, counts) = error_distribution(&pairs, 10);
        assert_eq!(edges.len(), 11);
        assert_eq!(counts.iter().sum::<usize>(), 100);
        // Uniform-ish errors spread across bins.
        assert!(counts.iter().filter(|&&c| c > 0).count() >= 9);
    }

    #[test]
    fn distribution_single_bin_catches_all() {
        let (_, counts) = error_distribution(&[(1.0, 2.0), (3.0, 2.0)], 1);
        assert_eq!(counts, vec![2]);
    }
}
