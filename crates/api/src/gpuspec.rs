//! GPU hardware selection: the V100 preset plus optional overrides —
//! the GPU analogue of [`crate::spec::TpuHwSpec`].
//!
//! `Work::GpuConv` historically carried only a shape and an algorithm; the
//! whole V100 configuration was implied. This spec brings the GPU side of
//! the design space up to parity with the TPU side: every override is
//! optional, resolution goes through the simulator's typed config builder
//! so out-of-domain values surface as [`GpuConfigError`]s at request
//! validation, and the default spec resolves to exactly
//! [`GpuConfig::v100`] — so pre-existing requests keep their cache keys.

use iconv_core::{BlockConfig, PipelineSchedule};
use iconv_gpusim::{GpuConfig, GpuConfigError};

/// Hardware overrides for GPU-targeted requests. Every field is optional;
/// the spec resolves against the V100 preset *before* the cache key is
/// derived, so `{}` and `{"sms":80}` address the same cache line.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct GpuHwSpec {
    /// Streaming-multiprocessor count override (V100: 80).
    pub sms: Option<usize>,
    /// Tensor-core MACs per SM per cycle override (V100: 512).
    pub tc_macs: Option<u64>,
    /// Core clock override in MHz (V100 SXM2 boost: 1530).
    pub clock_mhz: Option<f64>,
    /// Thread-block GEMM tile override (`bm`/`bn`/`bk` together; the CUDA
    /// SDK kernel's tile when absent).
    pub block: Option<(usize, usize, usize)>,
    /// Concurrent-thread-blocks-per-SM override (bounded by shared memory
    /// for the double-buffered tiles; the builder enforces the budget).
    pub blocks_per_sm: Option<usize>,
    /// Shared-memory fill / compute overlap discipline override.
    pub schedule: Option<PipelineSchedule>,
}

impl GpuHwSpec {
    /// Resolve to the full GPU configuration this spec denotes, validating
    /// every override through the typed config builder.
    ///
    /// # Errors
    ///
    /// Returns the builder's [`GpuConfigError`] when an override is out of
    /// domain (e.g. resident double-buffered tiles that overflow shared
    /// memory). Request validators surface this as a `bad-request` instead
    /// of letting a nonsense config reach the simulator.
    pub fn resolve(&self) -> Result<GpuConfig, GpuConfigError> {
        let mut b = GpuConfig::builder_from(GpuConfig::v100());
        if let Some(s) = self.sms {
            b = b.sms(s);
        }
        if let Some(t) = self.tc_macs {
            b = b.tc_macs_per_sm_cycle(t);
        }
        if let Some(c) = self.clock_mhz {
            b = b.clock_mhz(c);
        }
        if let Some((bm, bn, bk)) = self.block {
            b = b.block(BlockConfig { bm, bn, bk });
        }
        if let Some(r) = self.blocks_per_sm {
            b = b.blocks_per_sm(r);
        }
        if let Some(s) = self.schedule {
            b = b.schedule(s);
        }
        b.build()
    }
}

/// Resolve a GPU hardware spec that is already known to be valid (anything
/// that passed request validation, or was built from in-tree presets).
///
/// # Panics
///
/// Panics if the spec fails validation — constructing a [`super::Work`]
/// from unvalidated external input without going through
/// [`GpuHwSpec::resolve`] first is a programming error.
pub fn resolve_gpu(hw: &GpuHwSpec) -> GpuConfig {
    hw.resolve().expect("gpu hardware spec failed validation")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_resolves_to_v100() {
        assert_eq!(resolve_gpu(&GpuHwSpec::default()), GpuConfig::v100());
        // Explicit defaults alias the preset too, mirroring the TPU spec.
        let explicit = GpuHwSpec {
            sms: Some(80),
            tc_macs: Some(512),
            clock_mhz: Some(1530.0),
            block: None,
            blocks_per_sm: Some(2),
            schedule: Some(PipelineSchedule::DoubleBuffered),
        };
        assert_eq!(resolve_gpu(&explicit), GpuConfig::v100());
    }

    #[test]
    fn resolve_applies_every_override() {
        let cfg = resolve_gpu(&GpuHwSpec {
            sms: Some(108),
            tc_macs: Some(1024),
            clock_mhz: Some(1410.0),
            block: Some((64, 64, 32)),
            blocks_per_sm: Some(1),
            schedule: Some(PipelineSchedule::SingleBuffered),
        });
        assert_eq!(cfg.sms, 108);
        assert_eq!(cfg.tc_macs_per_sm_cycle, 1024);
        assert_eq!(cfg.clock_mhz, 1410.0);
        assert_eq!((cfg.block.bm, cfg.block.bn, cfg.block.bk), (64, 64, 32));
        assert_eq!(cfg.blocks_per_sm, 1);
        assert_eq!(cfg.schedule, PipelineSchedule::SingleBuffered);
    }

    #[test]
    fn out_of_domain_overrides_are_typed_errors() {
        assert_eq!(
            GpuHwSpec {
                sms: Some(0),
                ..GpuHwSpec::default()
            }
            .resolve(),
            Err(GpuConfigError::ZeroSms)
        );
        // 16 resident double-buffered CUDA-SDK tiles overflow shared memory.
        assert!(matches!(
            GpuHwSpec {
                blocks_per_sm: Some(16),
                ..GpuHwSpec::default()
            }
            .resolve(),
            Err(GpuConfigError::SharedMemOverflow { .. })
        ));
    }
}
