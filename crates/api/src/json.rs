//! A minimal, panic-free JSON parser and writer.
//!
//! The offline dependency set has no `serde_json`, and the wire protocol is
//! one small object per line, so this module hand-rolls the slice of JSON
//! the protocol needs: objects, arrays, strings (with escapes), numbers,
//! booleans and null. Every malformed input maps to a typed [`JsonError`]
//! carrying the byte offset — never a panic — which the codec proptests
//! fuzz directly.
//!
//! Numbers are kept in both shapes the protocol uses: an exact `i64`/`u64`
//! when the literal is integral and in range, and the `f64` value otherwise
//! ([`Json::Num`]). GPU cycle counts, which must cross the wire *bit*-exactly
//! for the `--via-serve` determinism guarantee, are therefore transported as
//! hex-encoded `f64` bits in string fields rather than as JSON numbers.

use std::collections::BTreeMap;
use std::fmt;

/// Maximum nesting depth accepted by the parser. Protocol messages are two
/// levels deep; the bound exists so adversarial input exhausts a counter,
/// not the stack.
const MAX_DEPTH: usize = 32;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number. `int` carries the exact integer when the literal was
    /// integral and within `i64::MIN..=u64::MAX` — the union of the wire's
    /// signed and unsigned ranges, held in an `i128` so `u64` counters
    /// above `i64::MAX` stay exact.
    Num {
        /// The value as a double (always set).
        float: f64,
        /// The exact integer value, when representable.
        int: Option<i128>,
    },
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; `BTreeMap` keeps key order canonical.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Build an integral number.
    pub fn int(v: i64) -> Json {
        Json::Num {
            float: v as f64,
            int: Some(v as i128),
        }
    }

    /// The value as an object map, if it is one.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is an integral number
    /// in `u64` range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num { int: Some(v), .. } => u64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// The value as a float, if it is any number (integral literals
    /// included — the wire spells `1530` and `1530.5` the same way here).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num { float, .. } => Some(*float),
            _ => None,
        }
    }
}

/// A parse failure: what was expected and the byte offset it failed at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description of the failure.
    pub msg: String,
    /// Byte offset into the input.
    pub at: usize,
}

impl JsonError {
    fn new(msg: impl Into<String>, at: usize) -> Self {
        Self {
            msg: msg.into(),
            at,
        }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.msg, self.at)
    }
}

impl std::error::Error for JsonError {}

/// Parse one complete JSON value; trailing non-whitespace is an error.
///
/// # Errors
///
/// Returns [`JsonError`] on any malformed input.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(JsonError::new("trailing characters", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(JsonError::new(
                format!("expected '{}'", b as char),
                self.pos,
            ))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(JsonError::new("nesting too deep", self.pos));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(JsonError::new(
                format!("unexpected character '{}'", c as char),
                self.pos,
            )),
            None => Err(JsonError::new("unexpected end of input", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(JsonError::new(format!("expected '{word}'"), self.pos))
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(JsonError::new("expected ',' or '}'", self.pos)),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(JsonError::new("expected ',' or ']'", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(JsonError::new("unterminated string", self.pos)),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Accept surrogate pairs; lone surrogates map to
                            // U+FFFD rather than erroring (lenient but safe).
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let combined =
                                        0x10000 + ((cp - 0xD800) << 10) + (lo.wrapping_sub(0xDC00));
                                    char::from_u32(combined).unwrap_or('\u{FFFD}')
                                } else {
                                    '\u{FFFD}'
                                }
                            } else {
                                char::from_u32(cp).unwrap_or('\u{FFFD}')
                            };
                            out.push(c);
                            continue; // hex4 already advanced pos
                        }
                        _ => return Err(JsonError::new("invalid escape", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => {
                    return Err(JsonError::new("control character in string", self.pos))
                }
                Some(_) => {
                    // Copy a maximal run of plain characters in one go.
                    // `"`, `\` and control bytes never occur inside a UTF-8
                    // continuation, so the byte scan cannot split a scalar,
                    // and validating just the run keeps the whole parse
                    // linear in the input length.
                    let start = self.pos;
                    while let Some(&b) = self.bytes.get(self.pos) {
                        if b == b'"' || b == b'\\' || b < 0x20 {
                            break;
                        }
                        self.pos += 1;
                    }
                    let run = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| JsonError::new("invalid utf-8", start))?;
                    out.push_str(run);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(JsonError::new("truncated \\u escape", self.pos));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| JsonError::new("invalid \\u escape", self.pos))?;
        let v = u32::from_str_radix(s, 16)
            .map_err(|_| JsonError::new("invalid \\u escape", self.pos))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut integral = true;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    integral = false;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| JsonError::new("invalid number", start))?;
        // Fast path for the wire's common case: a short integral literal
        // (every counter and shape field). `i64` covers 18 digits plus
        // sign, converts to `f64` cheaply, and skips the float parser.
        if integral && text.len() <= 18 {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Json::Num {
                    float: v as f64,
                    int: Some(v as i128),
                });
            }
        }
        let float: f64 = text
            .parse()
            .map_err(|_| JsonError::new(format!("invalid number {text:?}"), start))?;
        if !float.is_finite() {
            return Err(JsonError::new("number out of range", start));
        }
        let int = if integral {
            text.parse::<i128>()
                .ok()
                .filter(|v| (i64::MIN as i128..=u64::MAX as i128).contains(v))
        } else {
            None
        };
        Ok(Json::Num { float, int })
    }
}

/// Escape a string into `out` as a JSON string literal (with quotes).
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_protocol_shaped_object() {
        let v =
            parse(r#"{"op":"conv","layer":{"n":8,"ci":64},"f":1.5,"ok":true,"x":null}"#).unwrap();
        let o = v.as_obj().unwrap();
        assert_eq!(o["op"].as_str(), Some("conv"));
        assert_eq!(o["layer"].as_obj().unwrap()["ci"].as_u64(), Some(64));
        assert_eq!(o["ok"], Json::Bool(true));
        assert_eq!(o["x"], Json::Null);
        match &o["f"] {
            Json::Num { float, int } => {
                assert_eq!(*float, 1.5);
                assert_eq!(*int, None);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn integral_numbers_are_exact() {
        let v = parse("9007199254740993").unwrap(); // 2^53 + 1: not f64-exact
        assert_eq!(v.as_u64(), Some(9007199254740993));
        let v = parse("-42").unwrap();
        assert_eq!(v, Json::int(-42));
        // Full u64 range is exact; one past it falls back to float-only.
        assert_eq!(
            parse("18446744073709551615").unwrap().as_u64(),
            Some(u64::MAX)
        );
        assert_eq!(parse("18446744073709551616").unwrap().as_u64(), None);
    }

    #[test]
    fn string_escapes_roundtrip() {
        let v = parse(r#""a\"b\\c\nd\u0041\u00e9""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\nd\u{41}é"));
        let mut out = String::new();
        write_str(&mut out, "a\"b\\c\nd");
        assert_eq!(out, r#""a\"b\\c\nd""#);
    }

    #[test]
    fn surrogate_pairs_and_lone_surrogates() {
        assert_eq!(parse(r#""\ud83d\ude00""#).unwrap().as_str(), Some("😀"));
        assert_eq!(parse(r#""\ud83d""#).unwrap().as_str(), Some("\u{FFFD}"));
    }

    #[test]
    fn malformed_inputs_are_typed_errors() {
        for bad in [
            "",
            "{",
            "}",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "tru",
            "1.2.3",
            "\"",
            "\"\\q\"",
            "{\"a\":1,}",
            "nul",
            "01a",
            "--1",
            "1e",
            "[",
            "{\"a\":1 \"b\":2}",
            "\u{7}",
            "\"\u{1}\"",
            "1e999",
        ] {
            let e = parse(bad).unwrap_err();
            assert!(!e.msg.is_empty(), "{bad:?}: {e}");
        }
    }

    #[test]
    fn depth_limit_is_an_error_not_a_crash() {
        let deep = "[".repeat(10_000) + &"]".repeat(10_000);
        let e = parse(&deep).unwrap_err();
        assert!(e.msg.contains("deep"), "{e}");
    }
}
