//! Content-addressed cache keys.
//!
//! A key is the canonical text rendering of *what will be simulated*:
//! the fully-resolved hardware configuration, the lowering mode after the
//! engine's own normalization, and every shape field. Requests that denote
//! the same simulation — default vs. explicit padding, `dilation:1` spelled
//! or omitted, an `hw` override equal to the chip default, an auto
//! channel-first group vs. the same group requested explicitly — collapse
//! to one key; requests that differ in any observable way never collide,
//! because every component is an injective rendering
//! ([`iconv_tpusim::TpuConfig::canonical_key`] and friends).

use iconv_core::{tpu_group_size, ConvPass};
use iconv_tensor::ConvShape;
use iconv_tpusim::{SimMode, TpuConfig};

use crate::gpuspec::resolve_gpu;
use crate::spec::resolve_tpu;
use crate::work::Work;

/// Canonical rendering of a shape: every field, fixed order. Symmetric
/// shapes render exactly as they always have; an asymmetric trailing pad
/// appends a `phe`/`pwe` suffix, which keeps the rendering injective (a
/// symmetric key never contains the suffix, and two asymmetric shapes
/// differing only in trailing pad render differently).
fn shape_key(s: &ConvShape) -> String {
    let mut key = format!(
        "n{},ci{},hi{},wi{},co{},hf{},wf{},sh{},sw{},ph{},pw{},dh{},dw{}",
        s.n,
        s.ci,
        s.hi,
        s.wi,
        s.co,
        s.hf,
        s.wf,
        s.stride_h,
        s.stride_w,
        s.pad_h,
        s.pad_w,
        s.dil_h,
        s.dil_w
    );
    if s.has_asymmetric_pad() {
        key.push_str(&format!(",phe{},pwe{}", s.pad_h_end, s.pad_w_end));
    }
    key
}

/// Canonical rendering of a TPU lowering mode *for a given shape, pass and
/// array*: `ChannelFirst` resolves its automatic group size, and explicit
/// groups are clamped exactly the way the engine clamps them, so every
/// spelling that runs the same schedule shares a key. The duplication axis
/// is pass-dependent — forward duplicates over `Ci`, dgrad/transpose over
/// `Co`, and wgrad streams a plain GEMM with no duplication at all (every
/// group spelling collapses to `g1`).
fn tpu_mode_key(mode: SimMode, shape: &ConvShape, pass: ConvPass, cfg: &TpuConfig) -> String {
    let rows = cfg.array.rows;
    let channels = if pass.gathers_output_side() {
        shape.co
    } else {
        shape.ci
    };
    let max_group = if pass == ConvPass::Wgrad {
        1
    } else {
        rows.div_ceil(channels)
    };
    match mode {
        SimMode::Explicit => "explicit".to_owned(),
        SimMode::Indirect => "indirect".to_owned(),
        SimMode::ChannelFirst => {
            format!(
                "cf:g{}",
                tpu_group_size(rows, channels, shape.wf).clamp(1, max_group)
            )
        }
        SimMode::ChannelFirstGrouped(g) => format!("cf:g{}", g.clamp(1, max_group)),
    }
}

/// Derive the cache key for a unit of work.
pub fn canonical_key(work: &Work) -> String {
    match work {
        Work::TpuConv { shape, mode, hw } => {
            let cfg = resolve_tpu(hw);
            format!(
                "{};conv;{};{}",
                cfg.canonical_key(),
                tpu_mode_key(*mode, shape, ConvPass::Forward, &cfg),
                shape_key(shape)
            )
        }
        Work::TpuPass {
            shape,
            pass,
            mode,
            hw,
        } => {
            // A forward-pass spelling denotes exactly the plain conv, so it
            // aliases the historical key. Non-forward keys insert the pass
            // segment, which keeps them injective against every plain key
            // by segment count alone.
            if *pass == ConvPass::Forward {
                return canonical_key(&Work::TpuConv {
                    shape: *shape,
                    mode: *mode,
                    hw: *hw,
                });
            }
            let cfg = resolve_tpu(hw);
            format!(
                "{};conv;{};{};{}",
                cfg.canonical_key(),
                pass.wire(),
                tpu_mode_key(*mode, shape, *pass, &cfg),
                shape_key(shape)
            )
        }
        Work::TpuGemm { m, n, k, hw } => {
            format!("{};gemm;m{m},n{n},k{k}", resolve_tpu(hw).canonical_key())
        }
        Work::GpuConv { shape, algo, hw } => {
            // The default spec resolves to exactly the V100 preset, so
            // pre-existing GPU requests keep their historical keys.
            format!(
                "{};conv;{};{}",
                resolve_gpu(hw).canonical_key(),
                algo,
                shape_key(shape)
            )
        }
        Work::GpuPass {
            shape,
            pass,
            algo,
            hw,
        } => {
            if *pass == ConvPass::Forward {
                return canonical_key(&Work::GpuConv {
                    shape: *shape,
                    algo: *algo,
                    hw: *hw,
                });
            }
            format!(
                "{};conv;{};{};{}",
                resolve_gpu(hw).canonical_key(),
                pass.wire(),
                algo,
                shape_key(shape)
            )
        }
        Work::Tune { shape, target } => {
            format!("tune;{};{}", target.key_component(), shape_key(shape))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gpuspec::GpuHwSpec;
    use crate::spec::{TpuChip, TpuHwSpec};
    use crate::tuned::TuneTarget;
    use iconv_gpusim::GpuAlgo;

    fn shape() -> ConvShape {
        ConvShape::square(8, 64, 56, 64, 3, 1, 1).unwrap()
    }

    #[test]
    fn default_hw_spellings_share_a_key() {
        let explicit_defaults = TpuHwSpec {
            chip: TpuChip::V2,
            array: Some(128),
            word_elems: Some(8),
            mxus: Some(1),
            layout: Some(iconv_tensor::Layout::Hwcn),
            schedule: Some(iconv_core::PipelineSchedule::SingleBuffered),
        };
        let a = canonical_key(&Work::TpuConv {
            shape: shape(),
            mode: SimMode::ChannelFirst,
            hw: TpuHwSpec::default(),
        });
        let b = canonical_key(&Work::TpuConv {
            shape: shape(),
            mode: SimMode::ChannelFirst,
            hw: explicit_defaults,
        });
        assert_eq!(a, b);
    }

    #[test]
    fn auto_group_aliases_its_resolved_spelling() {
        // ci=64 on a 128-row array: auto group = ceil(128/64).min(3) = 2.
        let auto = canonical_key(&Work::TpuConv {
            shape: shape(),
            mode: SimMode::ChannelFirst,
            hw: TpuHwSpec::default(),
        });
        let explicit2 = canonical_key(&Work::TpuConv {
            shape: shape(),
            mode: SimMode::ChannelFirstGrouped(2),
            hw: TpuHwSpec::default(),
        });
        // An over-asked group clamps to the same schedule as well.
        let clamped = canonical_key(&Work::TpuConv {
            shape: shape(),
            mode: SimMode::ChannelFirstGrouped(99),
            hw: TpuHwSpec::default(),
        });
        assert_eq!(auto, explicit2);
        assert_eq!(explicit2, clamped);
        // ...but a genuinely different group is a different key.
        let g1 = canonical_key(&Work::TpuConv {
            shape: shape(),
            mode: SimMode::ChannelFirstGrouped(1),
            hw: TpuHwSpec::default(),
        });
        assert_ne!(auto, g1);
    }

    #[test]
    fn distinct_work_never_collides() {
        let mut keys = std::collections::BTreeSet::new();
        let mut n = 0;
        for ci in [3, 64, 128] {
            for stride in [1, 2] {
                let s = ConvShape::square(4, ci, 28, 32, 3, stride, 1).unwrap();
                for mode in [SimMode::ChannelFirstGrouped(1), SimMode::Explicit] {
                    for hw in [
                        TpuHwSpec::default(),
                        TpuHwSpec {
                            chip: TpuChip::V3,
                            ..TpuHwSpec::default()
                        },
                        TpuHwSpec {
                            array: Some(256),
                            ..TpuHwSpec::default()
                        },
                        TpuHwSpec {
                            schedule: Some(iconv_core::PipelineSchedule::DoubleBuffered),
                            ..TpuHwSpec::default()
                        },
                    ] {
                        keys.insert(canonical_key(&Work::TpuConv { shape: s, mode, hw }));
                        n += 1;
                    }
                }
                for algo in [GpuAlgo::CudnnImplicit, GpuAlgo::ExplicitIm2col] {
                    for hw in [
                        GpuHwSpec::default(),
                        GpuHwSpec {
                            sms: Some(108),
                            ..GpuHwSpec::default()
                        },
                    ] {
                        keys.insert(canonical_key(&Work::GpuConv { shape: s, algo, hw }));
                        n += 1;
                    }
                }
                for target in [
                    TuneTarget::Tpu { chip: TpuChip::V2 },
                    TuneTarget::Tpu { chip: TpuChip::V3 },
                    TuneTarget::Gpu,
                ] {
                    keys.insert(canonical_key(&Work::Tune { shape: s, target }));
                    n += 1;
                }
            }
        }
        keys.insert(canonical_key(&Work::TpuGemm {
            m: 64,
            n: 64,
            k: 64,
            hw: TpuHwSpec::default(),
        }));
        n += 1;
        assert_eq!(keys.len(), n, "cache-key collision in sweep");
    }

    #[test]
    fn default_gpu_hw_keeps_the_historical_v100_key() {
        let work = Work::GpuConv {
            shape: shape(),
            algo: GpuAlgo::CudnnImplicit,
            hw: GpuHwSpec::default(),
        };
        let key = canonical_key(&work);
        assert!(
            key.starts_with(&iconv_gpusim::GpuConfig::v100().canonical_key()),
            "{key}"
        );
        // Explicitly-spelled defaults alias the preset key too.
        let explicit = Work::GpuConv {
            shape: shape(),
            algo: GpuAlgo::CudnnImplicit,
            hw: GpuHwSpec {
                sms: Some(80),
                clock_mhz: Some(1530.0),
                ..GpuHwSpec::default()
            },
        };
        assert_eq!(key, canonical_key(&explicit));
    }

    #[test]
    fn tune_keys_name_target_and_shape() {
        let key = canonical_key(&Work::Tune {
            shape: shape(),
            target: TuneTarget::Tpu { chip: TpuChip::V2 },
        });
        assert!(key.starts_with("tune;tpu:v2;n8,"), "{key}");
    }

    #[test]
    fn forward_pass_aliases_the_plain_conv_key() {
        for mode in [SimMode::ChannelFirst, SimMode::Explicit, SimMode::Indirect] {
            let plain = canonical_key(&Work::TpuConv {
                shape: shape(),
                mode,
                hw: TpuHwSpec::default(),
            });
            let spelled = canonical_key(&Work::TpuPass {
                shape: shape(),
                pass: ConvPass::Forward,
                mode,
                hw: TpuHwSpec::default(),
            });
            assert_eq!(plain, spelled);
        }
        let plain = canonical_key(&Work::GpuConv {
            shape: shape(),
            algo: GpuAlgo::CudnnImplicit,
            hw: GpuHwSpec::default(),
        });
        let spelled = canonical_key(&Work::GpuPass {
            shape: shape(),
            pass: ConvPass::Forward,
            algo: GpuAlgo::CudnnImplicit,
            hw: GpuHwSpec::default(),
        });
        assert_eq!(plain, spelled);
    }

    #[test]
    fn pass_keys_never_collide_with_forward_or_each_other() {
        let mut keys = std::collections::BTreeSet::new();
        let mut n = 0;
        for pass in [ConvPass::Wgrad, ConvPass::Dgrad, ConvPass::Transpose] {
            for mode in [SimMode::ChannelFirst, SimMode::Explicit, SimMode::Indirect] {
                keys.insert(canonical_key(&Work::TpuPass {
                    shape: shape(),
                    pass,
                    mode,
                    hw: TpuHwSpec::default(),
                }));
                n += 1;
            }
            keys.insert(canonical_key(&Work::GpuPass {
                shape: shape(),
                pass,
                algo: GpuAlgo::CudnnImplicit,
                hw: GpuHwSpec::default(),
            }));
            n += 1;
        }
        // dgrad and transpose share a cost model but are distinct
        // vocabulary, so their keys must stay distinct too.
        assert_eq!(keys.len(), n, "pass-key collision");
        // ...and none of them collide with the forward key space.
        for mode in [SimMode::ChannelFirst, SimMode::Explicit] {
            assert!(!keys.contains(&canonical_key(&Work::TpuConv {
                shape: shape(),
                mode,
                hw: TpuHwSpec::default(),
            })));
        }
    }

    #[test]
    fn wgrad_group_spellings_collapse_to_one_key() {
        // wgrad streams a plain GEMM — no duplication axis — so every
        // channel-first group spelling keys (and runs) identically.
        let spell = |mode| {
            canonical_key(&Work::TpuPass {
                shape: shape(),
                pass: ConvPass::Wgrad,
                mode,
                hw: TpuHwSpec::default(),
            })
        };
        let auto = spell(SimMode::ChannelFirst);
        assert_eq!(auto, spell(SimMode::ChannelFirstGrouped(1)));
        assert_eq!(auto, spell(SimMode::ChannelFirstGrouped(4)));
        assert!(auto.contains(";wgrad;cf:g1;"), "{auto}");
    }

    #[test]
    fn dgrad_groups_clamp_against_co_not_ci() {
        // ci=8, co=64 on a 128-row array: the forward clamp allows groups
        // up to 16, but dgrad duplicates over co, so its ceiling is 2.
        let s = ConvShape::square(4, 8, 28, 64, 3, 1, 1).unwrap();
        let spell = |mode| {
            canonical_key(&Work::TpuPass {
                shape: s,
                pass: ConvPass::Dgrad,
                mode,
                hw: TpuHwSpec::default(),
            })
        };
        assert_eq!(
            spell(SimMode::ChannelFirstGrouped(2)),
            spell(SimMode::ChannelFirstGrouped(99))
        );
        assert_ne!(
            spell(SimMode::ChannelFirstGrouped(1)),
            spell(SimMode::ChannelFirstGrouped(2))
        );
    }

    #[test]
    fn asymmetric_pad_extends_the_key_injectively() {
        let sym = ConvShape::new(1, 4, 14, 14, 4, 4, 4)
            .same_pad_symmetric()
            .build()
            .unwrap();
        let asym = ConvShape::new(1, 4, 14, 14, 4, 4, 4)
            .same_pad()
            .build()
            .unwrap();
        let key = |shape| {
            canonical_key(&Work::TpuConv {
                shape,
                mode: SimMode::Explicit,
                hw: TpuHwSpec::default(),
            })
        };
        // Symmetric keys carry no suffix (byte-stable with history);
        // asymmetric keys do, and the two never collide.
        assert!(!key(sym).contains("phe"));
        assert!(key(asym).contains(",phe2,pwe2"));
        assert_ne!(key(sym), key(asym));
    }
}
