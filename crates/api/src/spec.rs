//! Hardware selection: chip presets plus optional overrides.

use iconv_core::PipelineSchedule;
use iconv_tensor::Layout;
use iconv_tpusim::{TpuConfig, TpuConfigError};

/// Which TPU generation a request targets; resolved to a full
/// [`TpuConfig`] (plus the optional overrides in [`TpuHwSpec`]) before
/// simulation and cache-key derivation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TpuChip {
    /// TPU-v2 (paper Table II) — the default.
    #[default]
    V2,
    /// TPU-v3: two MXUs, faster clock, more HBM bandwidth.
    V3,
}

impl TpuChip {
    /// The preset configuration this chip denotes.
    pub fn base_config(self) -> TpuConfig {
        match self {
            TpuChip::V2 => TpuConfig::tpu_v2(),
            TpuChip::V3 => TpuConfig::tpu_v3(),
        }
    }
}

/// Hardware overrides for TPU-targeted requests. Every field is optional;
/// the spec resolves against the chip's defaults *before* the cache key is
/// derived, so `{}` and `{"chip":"v2","array":128}` address the same cache
/// line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TpuHwSpec {
    /// Base chip generation.
    pub chip: TpuChip,
    /// Systolic-array size override (`with_array_size`, Fig. 16a sweep).
    pub array: Option<usize>,
    /// Vector-memory word-size override (`with_word_elems`, Fig. 16b).
    pub word_elems: Option<usize>,
    /// MXU-count override.
    pub mxus: Option<usize>,
    /// DRAM IFMap layout override (default: the chip's, i.e. `HWCN`).
    pub layout: Option<Layout>,
    /// DMA pipeline schedule override (default: the chip's single-buffered
    /// per-chunk barrier; `DoubleBuffered` models a tuned prefetch that
    /// hides fill cycles behind steady-state compute).
    pub schedule: Option<PipelineSchedule>,
}

impl TpuHwSpec {
    /// Resolve to the full TPU configuration this spec denotes, validating
    /// every override through the typed config builder.
    ///
    /// # Errors
    ///
    /// Returns the builder's [`TpuConfigError`] when an override is out of
    /// domain (e.g. an array size so large the per-row SRAM budget
    /// underflows to zero). Request validators surface this as a
    /// `bad-request` instead of letting a nonsense config reach the
    /// simulator.
    pub fn resolve(&self) -> Result<TpuConfig, TpuConfigError> {
        let mut b = TpuConfig::builder_from(self.chip.base_config());
        if let Some(a) = self.array {
            b = b.array_size(a);
        }
        if let Some(w) = self.word_elems {
            b = b.word_elems(w);
        }
        if let Some(m) = self.mxus {
            b = b.mxus(m);
        }
        if let Some(l) = self.layout {
            b = b.ifmap_layout(l);
        }
        if let Some(s) = self.schedule {
            b = b.schedule(s);
        }
        b.build()
    }
}

/// Resolve a hardware spec that is already known to be valid (anything that
/// passed request validation, or was built from in-tree presets).
///
/// # Panics
///
/// Panics if the spec fails validation — constructing a [`super::Work`]
/// from unvalidated external input without going through
/// [`TpuHwSpec::resolve`] first is a programming error.
pub fn resolve_tpu(hw: &TpuHwSpec) -> TpuConfig {
    hw.resolve().expect("hardware spec failed validation")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_applies_every_override() {
        let cfg = resolve_tpu(&TpuHwSpec {
            chip: TpuChip::V3,
            array: Some(256),
            word_elems: Some(16),
            mxus: Some(4),
            layout: Some(Layout::Nchw),
            schedule: Some(PipelineSchedule::DoubleBuffered),
        });
        assert_eq!(cfg.array.rows, 256);
        assert_eq!(cfg.vector_mem.word_elems, 16);
        assert_eq!(cfg.mxus, 4);
        assert_eq!(cfg.ifmap_layout, Layout::Nchw);
        assert_eq!(cfg.schedule, PipelineSchedule::DoubleBuffered);
        assert_eq!(resolve_tpu(&TpuHwSpec::default()), TpuConfig::tpu_v2());
    }

    #[test]
    fn resolve_keeps_v3_deltas() {
        let cfg = resolve_tpu(&TpuHwSpec {
            chip: TpuChip::V3,
            ..TpuHwSpec::default()
        });
        assert_eq!(cfg, TpuConfig::tpu_v3());
    }

    #[test]
    fn out_of_domain_overrides_are_typed_errors() {
        let spec = TpuHwSpec {
            array: Some(1 << 30), // drives per-row SRAM capacity to zero
            ..TpuHwSpec::default()
        };
        assert!(spec.resolve().is_err());
        let spec = TpuHwSpec {
            mxus: Some(0),
            ..TpuHwSpec::default()
        };
        assert_eq!(spec.resolve(), Err(TpuConfigError::ZeroMxus));
    }
}
