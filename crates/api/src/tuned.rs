//! The tune vocabulary: what a `tune` request searches over, and what it
//! returns.
//!
//! A [`crate::Work::Tune`] asks "what is the best design-space configuration
//! for this layer on this target?". The answer is a [`TunedConfig`]: a
//! complete (mode/algorithm, hardware-override) pair that
//! [`TunedConfig::to_work`] turns back into an ordinary estimate — that is
//! how `"hw":"tuned"` conv requests and the tuned-vs-default bench table
//! re-measure a search winner through the exact same path as any other
//! request.

use iconv_gpusim::GpuAlgo;
use iconv_tensor::ConvShape;
use iconv_tpusim::SimMode;

use crate::gpuspec::GpuHwSpec;
use crate::spec::{TpuChip, TpuHwSpec};
use crate::work::Work;

/// Which simulator a tune searches, plus the constraints held fixed during
/// the search (the chip generation is a constraint, not an axis: asking
/// "best config for v3" must not answer with v2 hardware).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TuneTarget {
    /// Search the TPU design space (mode × array × layout × schedule).
    Tpu {
        /// Chip generation held fixed during the search.
        chip: TpuChip,
    },
    /// Search the GPU design space (algorithm × block tile × residency).
    Gpu,
}

impl TuneTarget {
    /// Canonical-key component naming this target (injective: chip
    /// generations render differently).
    pub fn key_component(&self) -> &'static str {
        match self {
            TuneTarget::Tpu { chip: TpuChip::V2 } => "tpu:v2",
            TuneTarget::Tpu { chip: TpuChip::V3 } => "tpu:v3",
            TuneTarget::Gpu => "gpu",
        }
    }
}

/// A complete design-space point: everything an estimate needs besides the
/// layer shape. The tuner returns one of these; [`TunedConfig::to_work`]
/// re-materializes it as ordinary estimate work.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TunedConfig {
    /// A TPU configuration (lowering mode + hardware overrides).
    Tpu {
        /// Lowering mode.
        mode: SimMode,
        /// Hardware overrides (chip included).
        hw: TpuHwSpec,
    },
    /// A GPU configuration (kernel algorithm + hardware overrides).
    Gpu {
        /// Kernel algorithm.
        algo: GpuAlgo,
        /// Hardware overrides.
        hw: GpuHwSpec,
    },
}

impl TunedConfig {
    /// The ordinary estimate work this config denotes for `shape`.
    pub fn to_work(&self, shape: ConvShape) -> Work {
        match *self {
            TunedConfig::Tpu { mode, hw } => Work::TpuConv { shape, mode, hw },
            TunedConfig::Gpu { algo, hw } => Work::GpuConv { shape, algo, hw },
        }
    }

    /// The target this config belongs to.
    pub fn target(&self) -> TuneTarget {
        match self {
            TunedConfig::Tpu { hw, .. } => TuneTarget::Tpu { chip: hw.chip },
            TunedConfig::Gpu { .. } => TuneTarget::Gpu,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn target_keys_are_distinct() {
        let keys = [
            TuneTarget::Tpu { chip: TpuChip::V2 }.key_component(),
            TuneTarget::Tpu { chip: TpuChip::V3 }.key_component(),
            TuneTarget::Gpu.key_component(),
        ];
        let set: std::collections::BTreeSet<_> = keys.iter().collect();
        assert_eq!(set.len(), keys.len());
    }

    #[test]
    fn to_work_round_trips_the_config() {
        let shape = ConvShape::square(1, 64, 14, 64, 3, 1, 1).unwrap();
        let cfg = TunedConfig::Tpu {
            mode: SimMode::Explicit,
            hw: TpuHwSpec {
                chip: TpuChip::V3,
                array: Some(256),
                ..TpuHwSpec::default()
            },
        };
        match cfg.to_work(shape) {
            Work::TpuConv { mode, hw, .. } => {
                assert_eq!(mode, SimMode::Explicit);
                assert_eq!(hw.array, Some(256));
                assert_eq!(cfg.target(), TuneTarget::Tpu { chip: TpuChip::V3 });
            }
            other => panic!("{other:?}"),
        }
    }
}
