//! The NDJSON wire protocol: request/response types, their codecs, and the
//! typed error vocabulary — shared verbatim by the server, the clients,
//! and the `routed` front-end, so there is exactly one place the wire
//! format is defined.
//!
//! One JSON object per line in each direction. Requests carry an `op` —
//! one entry of the [`Op`] registry (`conv`, `gemm`, `tune`, `batch`,
//! `stats`, `shards`, `ping`, `shutdown`) — an optional client `id` echoed
//! verbatim in the response, and an optional `deadline_ms` after which a
//! queued request is answered with a `deadline` error instead of being
//! simulated. Responses always carry `"ok":true|false`; failures name one
//! of the [`ErrorKind`] codes.
//!
//! A `tune` request (`{"op":"tune","target":"tpu"|"gpu",...}`) asks for
//! the best design-space configuration for a layer; the response carries
//! the winning [`TunedConfig`] plus tuned-vs-default cycle counts. A
//! `conv` request may spell `"hw":"tuned"` to have the server look the
//! layer's tuned config up (or search for it) and estimate under it.
//!
//! A `batch` request carries either `"items": [...]` (an array of estimate
//! objects, each shaped like a standalone `conv`/`gemm` request without
//! `id`/`deadline_ms`) or `"sweep": {...}` (a compact
//! [`crate::SweepSpec`]: base layer + axis value lists). The server
//! answers with one response line *per item*, tagged `"item": <index>`, in
//! item order, followed by a summary line `{"ok":true,"batch":{...}}` — so
//! a well-formed batch of `n` items always produces exactly `n + 1` lines.
//!
//! GPU cycle counts are `f64` and must survive the wire *bit*-exactly for
//! the `--via-serve` determinism guarantee, so estimates carry them twice:
//! a human-readable decimal (`cycles`) and an authoritative hex rendering
//! of the IEEE-754 bits (`cycles_bits`) that the client decodes.

use std::fmt;

use iconv_core::PipelineSchedule;
use iconv_gpusim::GpuAlgo;
use iconv_tensor::{ConvShape, Layout};
use iconv_tpusim::SimMode;

use crate::json::{self, write_str, Json};

// The request vocabulary lives beside this module; re-exported here so the
// codec surface is self-contained for downstream `use proto::*` callers.
pub use crate::{
    GpuHwSpec, LatencyHist, SweepError, SweepSpec, SweepTarget, TpuChip, TpuHwSpec, TuneTarget,
    TunedConfig, Work, MAX_SWEEP_ITEMS,
};

/// The operation registry: every verb the wire accepts, in one place.
/// Adding an op means adding a variant here plus its parse/encode arms —
/// the server, clients, and router all match on this enum, never on raw
/// strings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Convolution estimate (TPU or GPU, by `target`).
    Conv,
    /// Plain GEMM estimate on the TPU model.
    Gemm,
    /// Design-space search: best config for a layer on a target.
    Tune,
    /// Many estimates admitted as one unit (item array or sweep spec).
    Batch,
    /// Counter snapshot.
    Stats,
    /// Per-shard cache counters.
    Shards,
    /// Liveness probe.
    Ping,
    /// Graceful drain.
    Shutdown,
}

impl Op {
    /// Every op, in documentation order.
    pub const ALL: [Op; 8] = [
        Op::Conv,
        Op::Gemm,
        Op::Tune,
        Op::Batch,
        Op::Stats,
        Op::Shards,
        Op::Ping,
        Op::Shutdown,
    ];

    /// Wire spelling of the op.
    pub fn wire(self) -> &'static str {
        match self {
            Op::Conv => "conv",
            Op::Gemm => "gemm",
            Op::Tune => "tune",
            Op::Batch => "batch",
            Op::Stats => "stats",
            Op::Shards => "shards",
            Op::Ping => "ping",
            Op::Shutdown => "shutdown",
        }
    }

    /// Inverse of [`Op::wire`].
    pub fn from_wire(s: &str) -> Option<Op> {
        Op::ALL.iter().copied().find(|op| op.wire() == s)
    }

    /// Ops that denote one unit of simulation work — exactly the ops valid
    /// as `batch` items.
    pub fn is_estimate(self) -> bool {
        matches!(self, Op::Conv | Op::Gemm | Op::Tune)
    }

    /// `"a, b, ... or z"` rendering of a set of ops, for error details.
    fn expected(ops: &[Op]) -> String {
        let mut out = String::new();
        for (i, op) in ops.iter().enumerate() {
            if i > 0 {
                out.push_str(if i + 1 == ops.len() { " or " } else { ", " });
            }
            out.push_str(op.wire());
        }
        out
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.wire())
    }
}

/// An estimate request: the work plus delivery metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct EstimateRequest {
    /// Client-chosen id, echoed in the response.
    pub id: Option<String>,
    /// What to simulate.
    pub work: Work,
    /// Queue deadline in milliseconds; expired requests are answered with a
    /// `deadline` error instead of being simulated (cache hits are served
    /// regardless, since they cost nothing).
    pub deadline_ms: Option<u64>,
}

/// Any request the server accepts.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// `conv` / `gemm` / `tune`.
    Estimate(EstimateRequest),
    /// A `conv` spelled `"hw":"tuned"`: estimate the layer under its tuned
    /// configuration. The server resolves the tune (from its store, or by
    /// searching) and then runs the concrete estimate the winner denotes.
    TunedEstimate {
        /// Echoed id.
        id: Option<String>,
        /// Layer shape.
        shape: ConvShape,
        /// Which target's tuned config to apply.
        target: TuneTarget,
        /// Queue deadline applied to the whole resolve-then-estimate.
        deadline_ms: Option<u64>,
    },
    /// `batch`: many estimates admitted as one unit. The item list is fully
    /// expanded at parse time (sweeps included), so by the time the server
    /// sees this variant every item is a concrete, validated [`Work`].
    Batch {
        /// Echoed id (also echoed on every item line).
        id: Option<String>,
        /// The items, in request order.
        items: Vec<Work>,
        /// Queue deadline applied to the batch as a whole.
        deadline_ms: Option<u64>,
    },
    /// Counter snapshot.
    Stats {
        /// Echoed id.
        id: Option<String>,
    },
    /// Per-shard cache counter snapshot (the striped cache's internals;
    /// shard sums must equal the global `stats` counters).
    Shards {
        /// Echoed id.
        id: Option<String>,
    },
    /// Liveness probe.
    Ping {
        /// Echoed id.
        id: Option<String>,
    },
    /// Graceful shutdown: drain in-flight work, refuse new requests.
    Shutdown {
        /// Echoed id.
        id: Option<String>,
    },
}

/// The protocol's error vocabulary (the `error` field of a failure
/// response).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// The worker queue is full — explicit backpressure, never a hang.
    Busy,
    /// The request's `deadline_ms` elapsed while it sat in the queue.
    Deadline,
    /// The line was not valid JSON.
    Parse,
    /// Valid JSON, but not a valid request (unknown op, bad field, shape
    /// that fails validation).
    BadRequest,
    /// The server is draining and no longer accepts work.
    ShuttingDown,
    /// The worker running the simulation panicked. The request itself is
    /// answered (never hung); since estimates are idempotent under
    /// canonical cache keys, a client may safely retry.
    WorkerCrashed,
}

impl ErrorKind {
    /// Wire spelling of the code.
    pub fn wire(self) -> &'static str {
        match self {
            ErrorKind::Busy => "busy",
            ErrorKind::Deadline => "deadline",
            ErrorKind::Parse => "parse",
            ErrorKind::BadRequest => "bad-request",
            ErrorKind::ShuttingDown => "shutting-down",
            ErrorKind::WorkerCrashed => "worker-crashed",
        }
    }

    /// Inverse of [`ErrorKind::wire`].
    pub fn from_wire(s: &str) -> Option<ErrorKind> {
        Some(match s {
            "busy" => ErrorKind::Busy,
            "deadline" => ErrorKind::Deadline,
            "parse" => ErrorKind::Parse,
            "bad-request" => ErrorKind::BadRequest,
            "shutting-down" => ErrorKind::ShuttingDown,
            "worker-crashed" => ErrorKind::WorkerCrashed,
            _ => return None,
        })
    }
}

impl fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.wire())
    }
}

/// A request that could not be turned into [`Request`]: the typed kind
/// (`parse` for JSON syntax, `bad-request` for shape/semantics), a detail
/// string, and the client id when one could be salvaged from the line.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestError {
    /// `Parse` or `BadRequest`.
    pub kind: ErrorKind,
    /// Human-readable detail.
    pub detail: String,
    /// The request's `id`, if the line parsed far enough to find one.
    pub id: Option<String>,
}

impl RequestError {
    fn bad(detail: impl Into<String>) -> Self {
        Self {
            kind: ErrorKind::BadRequest,
            detail: detail.into(),
            id: None,
        }
    }
}

impl fmt::Display for RequestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.kind, self.detail)
    }
}

impl std::error::Error for RequestError {}

/// A successful TPU estimate, as decoded by the client.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TpuEstimate {
    /// Total cycles.
    pub cycles: u64,
    /// GEMM-streaming (compute) cycles.
    pub compute_cycles: u64,
    /// DRAM cycles not hidden under compute.
    pub exposed_memory_cycles: u64,
    /// DRAM bytes moved.
    pub dram_bytes: u64,
    /// Peak on-chip IFMap workspace, bytes.
    pub workspace_bytes: u64,
    /// FLOPs performed.
    pub flops: u64,
    /// Dispatch phase span.
    pub dispatch: u64,
    /// First-fill phase span.
    pub first_fill: u64,
    /// Steady phase span.
    pub steady: u64,
}

/// A successful GPU estimate, as decoded by the client. All `f64` fields
/// are reconstructed from their hex bit renderings, so they equal the
/// server-side values bit-for-bit.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct GpuEstimate {
    /// Total cycles (includes launch overhead).
    pub cycles: f64,
    /// Tensor-core compute cycles.
    pub compute_cycles: f64,
    /// DRAM transfer cycles.
    pub memory_cycles: f64,
    /// Explicit-transform cycles (zero for implicit algorithms).
    pub transform_cycles: f64,
    /// Thread blocks launched.
    pub blocks: u64,
    /// Useful convolution FLOPs.
    pub flops: u64,
}

/// A successful `tune` response, as decoded by the client. Cycle fields
/// are reconstructed from hex bit renderings, so they match the server
/// bit-for-bit (TPU cycle counts are integers but cross the wire through
/// the same `f64` transport the search measured them in).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TuneEstimate {
    /// The winning design-space configuration.
    pub best: TunedConfig,
    /// Cycles under the winning configuration.
    pub tuned_cycles: f64,
    /// Cycles under the Table-II default configuration.
    pub default_cycles: f64,
    /// Candidates actually measured.
    pub candidates: u64,
    /// Candidates pruned before measurement (invalid or key-duplicate).
    pub pruned: u64,
}

/// The counter snapshot returned by the `stats` op.
///
/// Not `Copy`: the service-time histogram carries its bucket vector, so
/// snapshots are cloned explicitly where two owners need one.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    /// Estimate requests answered successfully (`hits + misses`). Rejected
    /// requests (busy, deadline, parse, bad-request) are *not* counted.
    pub requests: u64,
    /// Responses served from the report cache.
    pub hits: u64,
    /// Responses that ran a simulation.
    pub misses: u64,
    /// Cache entries displaced by capacity pressure.
    pub evictions: u64,
    /// Current cache population.
    pub cache_entries: u64,
    /// Cache capacity.
    pub cache_capacity: u64,
    /// Jobs queued but not yet started.
    pub queue_depth: u64,
    /// Jobs currently executing on workers.
    pub in_flight: u64,
    /// Requests refused with `busy`.
    pub busy_rejections: u64,
    /// Requests refused with `deadline`.
    pub deadline_expired: u64,
    /// Lines refused with `parse` / `bad-request`.
    pub parse_errors: u64,
    /// Sum of successful-request latencies, microseconds.
    pub latency_us_total: u64,
    /// Worst successful-request latency, microseconds.
    pub latency_us_max: u64,
    /// Worker-pool size.
    pub workers: u64,
    /// `batch` requests accepted (each contributes its items to
    /// `requests`/`hits`/`misses` too).
    pub batches: u64,
    /// Items across all accepted batches.
    pub batch_items: u64,
    /// Batch items answered from cache (including intra-batch duplicates
    /// coalesced onto one simulation).
    pub batch_hits: u64,
    /// Batch items that ran a simulation.
    pub batch_misses: u64,
    /// Batch items answered with a typed error (deadline, busy, draining).
    pub batch_errors: u64,
    /// Simulations that panicked on a worker; each was answered with a
    /// typed `worker-crashed` error, never hung.
    pub worker_crashes: u64,
    /// Faults the armed fault plan decided to inject (0 when unarmed).
    pub faults_injected: u64,
    /// Faults the serve seams actually applied; conservation demands this
    /// equal `faults_injected` at any quiescent point.
    pub faults_observed: u64,
    /// `tune` requests answered successfully (a subset of `requests`).
    /// Conservation: `tunes == tune_searches + tune_cached` at any
    /// quiescent point.
    pub tunes: u64,
    /// Tune answers that ran the design-space search.
    pub tune_searches: u64,
    /// Tune answers served from the cache / tune store (single-flight
    /// followers included — their bytes came from a leader's search).
    pub tune_cached: u64,
    /// Service-time histogram over successful requests, microseconds,
    /// measured from request receipt to response enqueue. Its `count()`
    /// equals `requests` at any quiescent point (the same samples the
    /// `latency_us_total` / `latency_us_max` scalars summarize), and fleet
    /// merges add it bucket-wise — exact, not approximated.
    pub service_hist: LatencyHist,
}

impl StatsSnapshot {
    /// Merge another snapshot into this one, the way the `routed` front-end
    /// aggregates its backends: counters sum; `latency_us_max` takes the
    /// worst backend; capacities and populations sum (the fleet's cache is
    /// the union of its backends' shards).
    pub fn merge(&mut self, other: &StatsSnapshot) {
        let Self {
            requests,
            hits,
            misses,
            evictions,
            cache_entries,
            cache_capacity,
            queue_depth,
            in_flight,
            busy_rejections,
            deadline_expired,
            parse_errors,
            latency_us_total,
            latency_us_max,
            workers,
            batches,
            batch_items,
            batch_hits,
            batch_misses,
            batch_errors,
            worker_crashes,
            faults_injected,
            faults_observed,
            tunes,
            tune_searches,
            tune_cached,
            service_hist,
        } = self;
        *requests += other.requests;
        *hits += other.hits;
        *misses += other.misses;
        *evictions += other.evictions;
        *cache_entries += other.cache_entries;
        *cache_capacity += other.cache_capacity;
        *queue_depth += other.queue_depth;
        *in_flight += other.in_flight;
        *busy_rejections += other.busy_rejections;
        *deadline_expired += other.deadline_expired;
        *parse_errors += other.parse_errors;
        *latency_us_total += other.latency_us_total;
        *latency_us_max = (*latency_us_max).max(other.latency_us_max);
        *workers += other.workers;
        *batches += other.batches;
        *batch_items += other.batch_items;
        *batch_hits += other.batch_hits;
        *batch_misses += other.batch_misses;
        *batch_errors += other.batch_errors;
        *worker_crashes += other.worker_crashes;
        *faults_injected += other.faults_injected;
        *faults_observed += other.faults_observed;
        *tunes += other.tunes;
        *tune_searches += other.tune_searches;
        *tune_cached += other.tune_cached;
        service_hist.merge(&other.service_hist);
    }
}

/// One cache shard's counters, as returned by the `shards` op. The sums
/// across shards equal the global `stats` counters (`hits`, `misses`,
/// `evictions`, `cache_entries`) — pinned by test and gated in CI.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardStat {
    /// Shard index (position in the striped array).
    pub shard: u64,
    /// Requests answered from this shard (including single-flight
    /// followers, whose responses were produced by a leader's simulation).
    pub hits: u64,
    /// Simulations this shard's keys caused.
    pub misses: u64,
    /// Entries displaced from this shard by capacity pressure.
    pub evictions: u64,
    /// Current population of this shard.
    pub entries: u64,
    /// This shard's slice of the configured capacity.
    pub capacity: u64,
    /// Keys currently being simulated under this shard's single-flight
    /// registry (followers waiting on a leader).
    pub in_flight: u64,
}

/// Any response the server emits, as decoded by the client.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// TPU estimate.
    Tpu {
        /// Echoed id.
        id: Option<String>,
        /// The estimate.
        est: TpuEstimate,
    },
    /// GPU estimate.
    Gpu {
        /// Echoed id.
        id: Option<String>,
        /// The estimate.
        est: GpuEstimate,
    },
    /// Tune result.
    Tune {
        /// Echoed id.
        id: Option<String>,
        /// The search outcome.
        est: TuneEstimate,
    },
    /// Counter snapshot.
    Stats {
        /// Echoed id.
        id: Option<String>,
        /// The snapshot.
        stats: StatsSnapshot,
    },
    /// Per-shard cache counters.
    Shards {
        /// Echoed id.
        id: Option<String>,
        /// One entry per shard, in shard order.
        shards: Vec<ShardStat>,
    },
    /// `ping` acknowledgement.
    Pong {
        /// Echoed id.
        id: Option<String>,
    },
    /// `shutdown` acknowledgement.
    ShutdownAck {
        /// Echoed id.
        id: Option<String>,
    },
    /// The summary line closing a `batch` response stream.
    Batch {
        /// Echoed id.
        id: Option<String>,
        /// Items the batch carried.
        items: u64,
        /// Items answered with a typed error instead of an estimate.
        errors: u64,
    },
    /// A typed failure.
    Error {
        /// Echoed id.
        id: Option<String>,
        /// Error code.
        kind: ErrorKind,
        /// Human-readable detail.
        detail: String,
    },
}

impl Response {
    /// The echoed client id, whatever the variant.
    pub fn id(&self) -> Option<&str> {
        match self {
            Response::Tpu { id, .. }
            | Response::Gpu { id, .. }
            | Response::Tune { id, .. }
            | Response::Stats { id, .. }
            | Response::Shards { id, .. }
            | Response::Pong { id }
            | Response::ShutdownAck { id }
            | Response::Batch { id, .. }
            | Response::Error { id, .. } => id.as_deref(),
        }
    }
}

// ---------------------------------------------------------------------------
// f64 bit transport
// ---------------------------------------------------------------------------

/// Render an `f64` as 16 lowercase hex digits of its IEEE-754 bits.
pub fn f64_bits(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

/// Inverse of [`f64_bits`].
pub fn f64_from_bits(s: &str) -> Option<f64> {
    if s.len() != 16 {
        return None;
    }
    u64::from_str_radix(s, 16).ok().map(f64::from_bits)
}

// ---------------------------------------------------------------------------
// Request parsing (server side)
// ---------------------------------------------------------------------------

fn get_usize(
    obj: &std::collections::BTreeMap<String, Json>,
    key: &str,
) -> Result<usize, RequestError> {
    match obj.get(key) {
        Some(v) => opt_usize(v, key),
        None => Err(RequestError::bad(format!("missing field \"{key}\""))),
    }
}

fn opt_usize(v: &Json, key: &str) -> Result<usize, RequestError> {
    v.as_u64()
        .and_then(|v| usize::try_from(v).ok())
        .ok_or_else(|| RequestError::bad(format!("field \"{key}\" must be a non-negative integer")))
}

/// Parse one request line.
///
/// # Errors
///
/// Returns a [`RequestError`] with kind `Parse` for malformed JSON and
/// `BadRequest` for well-formed JSON that is not a valid request. The
/// error carries the client `id` whenever the line parsed far enough to
/// recover one, so the server can still address its failure response.
pub fn parse_request(line: &str) -> Result<Request, RequestError> {
    let root = json::parse(line).map_err(|e| RequestError {
        kind: ErrorKind::Parse,
        detail: e.to_string(),
        id: None,
    })?;
    let obj = root
        .as_obj()
        .ok_or_else(|| RequestError::bad("request must be a JSON object"))?;
    // Salvage the id first so even a bad request gets an addressed error.
    let id = obj.get("id").and_then(|v| v.as_str()).map(str::to_owned);
    let with_id = |mut e: RequestError| {
        e.id.clone_from(&id);
        e
    };
    let op_str = obj
        .get("op")
        .and_then(|v| v.as_str())
        .ok_or_else(|| with_id(RequestError::bad("missing string field \"op\"")))?;
    let op = Op::from_wire(op_str).ok_or_else(|| {
        with_id(RequestError::bad(format!(
            "unknown op {op_str:?} (expected {})",
            Op::expected(&Op::ALL)
        )))
    })?;
    match op {
        Op::Stats => return Ok(Request::Stats { id }),
        Op::Shards => return Ok(Request::Shards { id }),
        Op::Ping => return Ok(Request::Ping { id }),
        Op::Shutdown => return Ok(Request::Shutdown { id }),
        Op::Conv | Op::Gemm | Op::Tune | Op::Batch => {}
    }
    let deadline_ms = parse_deadline(obj).map_err(with_id)?;
    if op == Op::Batch {
        let items = parse_batch_items(obj).map_err(with_id)?;
        return Ok(Request::Batch {
            id,
            items,
            deadline_ms,
        });
    }
    // `"hw":"tuned"` on a conv defers mode/hw selection to the tune store;
    // only the top-level form supports it (a batch item's `hw` must be a
    // concrete object, so items stay pure `Work`).
    if op == Op::Conv && obj.get("hw").and_then(|v| v.as_str()) == Some("tuned") {
        let target = parse_tune_target(obj).map_err(with_id)?;
        let shape = parse_layer(obj.get("layer")).map_err(with_id)?;
        return Ok(Request::TunedEstimate {
            id,
            shape,
            target,
            deadline_ms,
        });
    }
    let work = parse_work(obj, op).map_err(with_id)?;
    Ok(Request::Estimate(EstimateRequest {
        id,
        work,
        deadline_ms,
    }))
}

/// Parse the `target`(+`chip`) fields of a `tune` request or a
/// `"hw":"tuned"` conv into the tune target they denote.
fn parse_tune_target(
    obj: &std::collections::BTreeMap<String, Json>,
) -> Result<TuneTarget, RequestError> {
    match obj.get("target").and_then(|v| v.as_str()).unwrap_or("tpu") {
        "tpu" => Ok(TuneTarget::Tpu {
            chip: parse_chip(obj.get("chip"))?,
        }),
        "gpu" => Ok(TuneTarget::Gpu),
        other => Err(RequestError::bad(format!(
            "unknown target {other:?} (expected tpu or gpu)"
        ))),
    }
}

fn parse_deadline(
    obj: &std::collections::BTreeMap<String, Json>,
) -> Result<Option<u64>, RequestError> {
    match obj.get("deadline_ms") {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v
            .as_u64()
            .map(Some)
            .ok_or_else(|| RequestError::bad("\"deadline_ms\" must be a non-negative integer")),
    }
}

/// Parse the work fields of a `conv`/`gemm`/`tune` object — one function
/// for a top-level request and for a batch item, so the two framings can
/// never drift apart.
fn parse_work(
    obj: &std::collections::BTreeMap<String, Json>,
    op: Op,
) -> Result<Work, RequestError> {
    match op {
        Op::Gemm => {
            return Ok(Work::TpuGemm {
                m: get_usize(obj, "m")?,
                n: get_usize(obj, "n")?,
                k: get_usize(obj, "k")?,
                hw: parse_tpu_hw(obj.get("hw"))?,
            })
        }
        Op::Tune => {
            return Ok(Work::Tune {
                shape: parse_layer(obj.get("layer"))?,
                target: parse_tune_target(obj)?,
            })
        }
        Op::Conv => {}
        other => {
            return Err(RequestError::bad(format!(
                "op {other} does not denote estimate work"
            )))
        }
    }
    let target = obj.get("target").and_then(|v| v.as_str()).unwrap_or("tpu");
    let shape = parse_layer(obj.get("layer"))?;
    let pass = parse_pass(obj.get("pass"))?;
    match target {
        "tpu" => {
            let mode = parse_tpu_mode(obj.get("mode"))?;
            let hw = parse_tpu_hw(obj.get("hw"))?;
            // An absent or forward `pass` keeps the historical variant (and
            // therefore the historical cache key and wire bytes).
            Ok(match pass {
                iconv_core::ConvPass::Forward => Work::TpuConv { shape, mode, hw },
                pass => Work::TpuPass {
                    shape,
                    pass,
                    mode,
                    hw,
                },
            })
        }
        "gpu" => {
            let algo = parse_gpu_algo(obj.get("mode"))?;
            let hw = parse_gpu_hw(obj.get("hw"))?;
            Ok(match pass {
                iconv_core::ConvPass::Forward => Work::GpuConv { shape, algo, hw },
                pass => Work::GpuPass {
                    shape,
                    pass,
                    algo,
                    hw,
                },
            })
        }
        other => Err(RequestError::bad(format!(
            "unknown target {other:?} (expected tpu or gpu)"
        ))),
    }
}

/// Parse an optional `"pass"` field; absence denotes the forward pass.
fn parse_pass(v: Option<&Json>) -> Result<iconv_core::ConvPass, RequestError> {
    let s = match v {
        None | Some(Json::Null) => return Ok(iconv_core::ConvPass::Forward),
        Some(v) => v
            .as_str()
            .ok_or_else(|| RequestError::bad("\"pass\" must be a string"))?,
    };
    iconv_core::ConvPass::from_wire(s).ok_or_else(|| {
        RequestError::bad(format!(
            "unknown pass {s:?} (expected forward, wgrad, dgrad or transpose)"
        ))
    })
}

/// Parse one batch item: an estimate-op object without `id`/`deadline_ms`.
fn parse_work_item(v: &Json) -> Result<Work, RequestError> {
    let obj = v
        .as_obj()
        .ok_or_else(|| RequestError::bad("must be an object"))?;
    match obj.get("op").and_then(|v| v.as_str()) {
        Some(s) => match Op::from_wire(s).filter(|op| op.is_estimate()) {
            Some(op) => parse_work(obj, op),
            None => Err(RequestError::bad(format!(
                "unknown item op {s:?} (expected {})",
                Op::expected(&[Op::Conv, Op::Gemm, Op::Tune])
            ))),
        },
        None => Err(RequestError::bad("missing string field \"op\"")),
    }
}

/// Parse a batch's `items` array or `sweep` object into the expanded item
/// list. Exactly one of the two must be present, the expansion must be
/// non-empty, and it may not exceed [`MAX_SWEEP_ITEMS`].
fn parse_batch_items(
    obj: &std::collections::BTreeMap<String, Json>,
) -> Result<Vec<Work>, RequestError> {
    match (obj.get("items"), obj.get("sweep")) {
        (Some(_), Some(_)) => Err(RequestError::bad(
            "\"items\" and \"sweep\" are mutually exclusive",
        )),
        (None, None) => Err(RequestError::bad(
            "batch needs an \"items\" array or a \"sweep\" object",
        )),
        (Some(v), None) => {
            let arr = v
                .as_arr()
                .ok_or_else(|| RequestError::bad("\"items\" must be an array"))?;
            if arr.is_empty() {
                return Err(RequestError::bad("batch \"items\" must be non-empty"));
            }
            if arr.len() > MAX_SWEEP_ITEMS {
                return Err(RequestError::bad(format!(
                    "batch has {} items (limit {MAX_SWEEP_ITEMS})",
                    arr.len()
                )));
            }
            arr.iter()
                .enumerate()
                .map(|(i, item)| {
                    parse_work_item(item).map_err(|mut e| {
                        e.detail = format!("item {i}: {}", e.detail);
                        e
                    })
                })
                .collect()
        }
        (None, Some(v)) => {
            let spec = parse_sweep(v)?;
            spec.expand()
                .map_err(|e| RequestError::bad(format!("invalid sweep: {e}")))
        }
    }
}

fn parse_sweep(v: &Json) -> Result<SweepSpec, RequestError> {
    let obj = v
        .as_obj()
        .ok_or_else(|| RequestError::bad("\"sweep\" must be an object"))?;
    let base = parse_layer(obj.get("layer"))?;
    let target = match obj.get("target").and_then(|v| v.as_str()).unwrap_or("tpu") {
        "tpu" => SweepTarget::Tpu {
            mode: parse_tpu_mode(obj.get("mode"))?,
            hw: parse_tpu_hw(obj.get("hw"))?,
        },
        "gpu" => SweepTarget::Gpu {
            algo: parse_gpu_algo(obj.get("mode"))?,
        },
        other => {
            return Err(RequestError::bad(format!(
                "unknown target {other:?} (expected tpu or gpu)"
            )))
        }
    };
    let usize_axis = |key: &str| -> Result<Vec<usize>, RequestError> {
        match obj.get(key) {
            None | Some(Json::Null) => Ok(Vec::new()),
            Some(v) => v
                .as_arr()
                .ok_or_else(|| RequestError::bad(format!("\"{key}\" must be an array")))?
                .iter()
                .map(|x| opt_usize(x, key))
                .collect(),
        }
    };
    let layouts = match obj.get("layouts") {
        None | Some(Json::Null) => Vec::new(),
        Some(v) => v
            .as_arr()
            .ok_or_else(|| RequestError::bad("\"layouts\" must be an array"))?
            .iter()
            .map(parse_layout)
            .collect::<Result<Vec<_>, _>>()?,
    };
    Ok(SweepSpec {
        base,
        target,
        cis: usize_axis("cis")?,
        strides: usize_axis("strides")?,
        dilations: usize_axis("dilations")?,
        layouts,
    })
}

fn parse_layer(v: Option<&Json>) -> Result<ConvShape, RequestError> {
    let obj = v
        .and_then(Json::as_obj)
        .ok_or_else(|| RequestError::bad("missing object field \"layer\""))?;
    let axis = |scalar: &str, specific: &str, default: usize| -> Result<usize, RequestError> {
        if let Some(v) = obj.get(specific) {
            return opt_usize(v, specific);
        }
        if let Some(v) = obj.get(scalar) {
            return opt_usize(v, scalar);
        }
        Ok(default)
    };
    ConvShape::new(
        get_usize(obj, "n")?,
        get_usize(obj, "ci")?,
        get_usize(obj, "hi")?,
        get_usize(obj, "wi")?,
        get_usize(obj, "co")?,
        get_usize(obj, "hf")?,
        get_usize(obj, "wf")?,
    )
    .stride_hw(
        axis("stride", "stride_h", 1)?,
        axis("stride", "stride_w", 1)?,
    )
    .pad_hw(axis("pad", "pad_h", 0)?, axis("pad", "pad_w", 0)?)
    // Trailing pads default to the leading ones (symmetric); only
    // asymmetric SAME-padded layers spell them on the wire.
    .pad_end_hw(
        axis("pad", "pad_h_end", axis("pad", "pad_h", 0)?)?,
        axis("pad", "pad_w_end", axis("pad", "pad_w", 0)?)?,
    )
    .dilation_hw(axis("dilation", "dil_h", 1)?, axis("dilation", "dil_w", 1)?)
    .build()
    .map_err(|e| RequestError::bad(format!("invalid layer: {e}")))
}

fn parse_tpu_mode(v: Option<&Json>) -> Result<SimMode, RequestError> {
    let s = match v {
        None | Some(Json::Null) => return Ok(SimMode::ChannelFirst),
        Some(v) => v
            .as_str()
            .ok_or_else(|| RequestError::bad("\"mode\" must be a string"))?,
    };
    if let Some(g) = s.strip_prefix("grouped:") {
        let g: usize = g
            .parse()
            .ok()
            .filter(|g| *g >= 1)
            .ok_or_else(|| RequestError::bad("grouped mode needs a positive group size"))?;
        return Ok(SimMode::ChannelFirstGrouped(g));
    }
    match s {
        "channel-first" => Ok(SimMode::ChannelFirst),
        "explicit" => Ok(SimMode::Explicit),
        "indirect" => Ok(SimMode::Indirect),
        other => Err(RequestError::bad(format!(
            "unknown tpu mode {other:?} (expected channel-first, grouped:<g>, explicit or indirect)"
        ))),
    }
}

fn parse_gpu_algo(v: Option<&Json>) -> Result<GpuAlgo, RequestError> {
    let s = match v {
        None | Some(Json::Null) => return Ok(GpuAlgo::ChannelFirst { reuse: true }),
        Some(v) => v
            .as_str()
            .ok_or_else(|| RequestError::bad("\"mode\" must be a string"))?,
    };
    match s {
        "cudnn-implicit" => Ok(GpuAlgo::CudnnImplicit),
        "channel-first+reuse" => Ok(GpuAlgo::ChannelFirst { reuse: true }),
        "channel-first" => Ok(GpuAlgo::ChannelFirst { reuse: false }),
        "explicit-im2col" => Ok(GpuAlgo::ExplicitIm2col),
        "gemm-equivalent" => Ok(GpuAlgo::GemmEquivalent),
        "indirect" => Ok(GpuAlgo::Indirect),
        other => Err(RequestError::bad(format!("unknown gpu mode {other:?}"))),
    }
}

fn parse_tpu_hw(v: Option<&Json>) -> Result<TpuHwSpec, RequestError> {
    let obj = match v {
        None | Some(Json::Null) => return Ok(TpuHwSpec::default()),
        Some(v) => v
            .as_obj()
            .ok_or_else(|| RequestError::bad("\"hw\" must be an object"))?,
    };
    let chip = parse_chip(obj.get("chip"))?;
    let opt = |key: &str| -> Result<Option<usize>, RequestError> {
        match obj.get(key) {
            None | Some(Json::Null) => Ok(None),
            Some(v) => opt_usize(v, key).map(Some).and_then(|v| {
                if v == Some(0) {
                    Err(RequestError::bad(format!("\"{key}\" must be positive")))
                } else {
                    Ok(v)
                }
            }),
        }
    };
    let layout = match obj.get("layout") {
        None | Some(Json::Null) => None,
        Some(v) => Some(parse_layout(v)?),
    };
    let schedule = match obj.get("schedule") {
        None | Some(Json::Null) => None,
        Some(v) => {
            let s = v
                .as_str()
                .ok_or_else(|| RequestError::bad("\"schedule\" must be a string"))?;
            Some(PipelineSchedule::from_wire(s).ok_or_else(|| {
                RequestError::bad(format!(
                    "unknown schedule {s:?} (expected single or double)"
                ))
            })?)
        }
    };
    let spec = TpuHwSpec {
        chip,
        array: opt("array")?,
        word_elems: opt("word_elems")?,
        mxus: opt("mxus")?,
        layout,
        schedule,
    };
    // Validate through the typed config builder so an out-of-domain
    // override (e.g. an array size that underflows the SRAM budget) is a
    // bad-request here rather than a panic in the engine.
    spec.resolve()
        .map_err(|e| RequestError::bad(format!("invalid hw spec: {e}")))?;
    Ok(spec)
}

fn parse_chip(v: Option<&Json>) -> Result<TpuChip, RequestError> {
    match v {
        None | Some(Json::Null) => Ok(TpuChip::V2),
        Some(v) => match v.as_str() {
            Some("v2") => Ok(TpuChip::V2),
            Some("v3") => Ok(TpuChip::V3),
            Some(other) => Err(RequestError::bad(format!(
                "unknown chip {other:?} (expected v2 or v3)"
            ))),
            None => Err(RequestError::bad("\"chip\" must be a string")),
        },
    }
}

fn parse_gpu_hw(v: Option<&Json>) -> Result<GpuHwSpec, RequestError> {
    let obj = match v {
        None | Some(Json::Null) => return Ok(GpuHwSpec::default()),
        Some(v) => v
            .as_obj()
            .ok_or_else(|| RequestError::bad("\"hw\" must be an object"))?,
    };
    let opt = |key: &str| -> Result<Option<usize>, RequestError> {
        match obj.get(key) {
            None | Some(Json::Null) => Ok(None),
            Some(v) => match opt_usize(v, key)? {
                0 => Err(RequestError::bad(format!("\"{key}\" must be positive"))),
                v => Ok(Some(v)),
            },
        }
    };
    let clock_mhz = match obj.get("clock_mhz") {
        None | Some(Json::Null) => None,
        Some(v) => Some(
            v.as_f64()
                .ok_or_else(|| RequestError::bad("\"clock_mhz\" must be a number"))?,
        ),
    };
    let block = match (opt("bm")?, opt("bn")?, opt("bk")?) {
        (None, None, None) => None,
        (Some(bm), Some(bn), Some(bk)) => Some((bm, bn, bk)),
        _ => {
            return Err(RequestError::bad(
                "\"bm\"/\"bn\"/\"bk\" must be given together",
            ))
        }
    };
    let schedule = match obj.get("schedule") {
        None | Some(Json::Null) => None,
        Some(v) => {
            let s = v
                .as_str()
                .ok_or_else(|| RequestError::bad("\"schedule\" must be a string"))?;
            Some(PipelineSchedule::from_wire(s).ok_or_else(|| {
                RequestError::bad(format!(
                    "unknown schedule {s:?} (expected single or double)"
                ))
            })?)
        }
    };
    let spec = GpuHwSpec {
        sms: opt("sms")?,
        tc_macs: opt("tc_macs")?.map(|v| v as u64),
        clock_mhz,
        block,
        blocks_per_sm: opt("blocks_per_sm")?,
        schedule,
    };
    // Validate through the typed config builder so an out-of-domain
    // override (e.g. tiles that overflow shared memory) is a bad-request
    // here rather than a panic in the engine.
    spec.resolve()
        .map_err(|e| RequestError::bad(format!("invalid hw spec: {e}")))?;
    Ok(spec)
}

fn parse_layout(v: &Json) -> Result<Layout, RequestError> {
    let s = v
        .as_str()
        .ok_or_else(|| RequestError::bad("\"layout\" must be a string"))?;
    match s.to_ascii_uppercase().as_str() {
        "NCHW" => Ok(Layout::Nchw),
        "NHWC" => Ok(Layout::Nhwc),
        "CHWN" => Ok(Layout::Chwn),
        "HWCN" => Ok(Layout::Hwcn),
        other => Err(RequestError::bad(format!("unknown layout {other:?}"))),
    }
}

// ---------------------------------------------------------------------------
// Request encoding (client side)
// ---------------------------------------------------------------------------

/// Wire spelling of a TPU lowering mode.
pub fn tpu_mode_wire(mode: SimMode) -> String {
    match mode {
        SimMode::ChannelFirst => "channel-first".to_owned(),
        SimMode::ChannelFirstGrouped(g) => format!("grouped:{g}"),
        SimMode::Explicit => "explicit".to_owned(),
        SimMode::Indirect => "indirect".to_owned(),
    }
}

fn push_id(out: &mut String, id: Option<&str>) {
    if let Some(id) = id {
        out.push_str("\"id\":");
        write_str(out, id);
        out.push(',');
    }
}

fn push_layer(out: &mut String, s: &ConvShape) {
    out.push_str(&format!(
        "\"layer\":{{\"n\":{},\"ci\":{},\"hi\":{},\"wi\":{},\"co\":{},\"hf\":{},\"wf\":{},\
         \"stride_h\":{},\"stride_w\":{},\"pad_h\":{},\"pad_w\":{}",
        s.n, s.ci, s.hi, s.wi, s.co, s.hf, s.wf, s.stride_h, s.stride_w, s.pad_h, s.pad_w,
    ));
    // Asymmetric trailing pads are spelled only when they differ from the
    // leading pads, so every historically-valid layer encodes to exactly
    // the bytes it always has.
    if s.has_asymmetric_pad() {
        out.push_str(&format!(
            ",\"pad_h_end\":{},\"pad_w_end\":{}",
            s.pad_h_end, s.pad_w_end
        ));
    }
    out.push_str(&format!(",\"dil_h\":{},\"dil_w\":{}}}", s.dil_h, s.dil_w));
}

fn push_tpu_hw(out: &mut String, hw: &TpuHwSpec) {
    if *hw == TpuHwSpec::default() {
        return;
    }
    out.push_str(",\"hw\":{");
    let mut first = true;
    let mut field = |out: &mut String, text: String| {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&text);
    };
    if hw.chip == TpuChip::V3 {
        field(out, "\"chip\":\"v3\"".to_owned());
    }
    if let Some(a) = hw.array {
        field(out, format!("\"array\":{a}"));
    }
    if let Some(w) = hw.word_elems {
        field(out, format!("\"word_elems\":{w}"));
    }
    if let Some(m) = hw.mxus {
        field(out, format!("\"mxus\":{m}"));
    }
    if let Some(l) = hw.layout {
        field(out, format!("\"layout\":\"{l}\""));
    }
    if let Some(s) = hw.schedule {
        field(out, format!("\"schedule\":\"{s}\""));
    }
    out.push('}');
}

fn push_gpu_hw(out: &mut String, hw: &GpuHwSpec) {
    if *hw == GpuHwSpec::default() {
        return;
    }
    out.push_str(",\"hw\":{");
    let mut first = true;
    let mut field = |out: &mut String, text: String| {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&text);
    };
    if let Some(s) = hw.sms {
        field(out, format!("\"sms\":{s}"));
    }
    if let Some(t) = hw.tc_macs {
        field(out, format!("\"tc_macs\":{t}"));
    }
    if let Some(c) = hw.clock_mhz {
        // Shortest-roundtrip `Display`: the decimal reparses bit-exactly.
        field(out, format!("\"clock_mhz\":{c}"));
    }
    if let Some((bm, bn, bk)) = hw.block {
        field(out, format!("\"bm\":{bm},\"bn\":{bn},\"bk\":{bk}"));
    }
    if let Some(r) = hw.blocks_per_sm {
        field(out, format!("\"blocks_per_sm\":{r}"));
    }
    if let Some(s) = hw.schedule {
        field(out, format!("\"schedule\":\"{s}\""));
    }
    out.push('}');
}

/// Append the `target`(+`chip`) fields naming a tune target.
fn push_tune_target(out: &mut String, target: &TuneTarget) {
    match target {
        TuneTarget::Tpu { chip } => {
            out.push_str("\"target\":\"tpu\"");
            if *chip == TpuChip::V3 {
                out.push_str(",\"chip\":\"v3\"");
            }
        }
        TuneTarget::Gpu => out.push_str("\"target\":\"gpu\""),
    }
}

fn push_deadline(out: &mut String, deadline_ms: Option<u64>) {
    if let Some(d) = deadline_ms {
        out.push_str(&format!(",\"deadline_ms\":{d}"));
    }
}

/// Append the `op`/`target`/`mode`/`layer`/`hw` fields of one work unit.
fn push_work(out: &mut String, work: &Work) {
    match work {
        Work::TpuConv { shape, mode, hw } => {
            out.push_str("\"op\":\"conv\",\"target\":\"tpu\",\"mode\":");
            write_str(out, &tpu_mode_wire(*mode));
            out.push(',');
            push_layer(out, shape);
            push_tpu_hw(out, hw);
        }
        Work::TpuPass {
            shape,
            pass,
            mode,
            hw,
        } => {
            // Non-forward passes add one field; forward spellings re-encode
            // as the plain conv they denote, keeping historical bytes.
            out.push_str("\"op\":\"conv\",\"target\":\"tpu\",");
            if *pass != iconv_core::ConvPass::Forward {
                out.push_str(&format!("\"pass\":\"{}\",", pass.wire()));
            }
            out.push_str("\"mode\":");
            write_str(out, &tpu_mode_wire(*mode));
            out.push(',');
            push_layer(out, shape);
            push_tpu_hw(out, hw);
        }
        Work::TpuGemm { m, n, k, hw } => {
            out.push_str(&format!("\"op\":\"gemm\",\"m\":{m},\"n\":{n},\"k\":{k}"));
            push_tpu_hw(out, hw);
        }
        Work::GpuConv { shape, algo, hw } => {
            out.push_str("\"op\":\"conv\",\"target\":\"gpu\",\"mode\":");
            write_str(out, &algo.to_string());
            out.push(',');
            push_layer(out, shape);
            push_gpu_hw(out, hw);
        }
        Work::GpuPass {
            shape,
            pass,
            algo,
            hw,
        } => {
            out.push_str("\"op\":\"conv\",\"target\":\"gpu\",");
            if *pass != iconv_core::ConvPass::Forward {
                out.push_str(&format!("\"pass\":\"{}\",", pass.wire()));
            }
            out.push_str("\"mode\":");
            write_str(out, &algo.to_string());
            out.push(',');
            push_layer(out, shape);
            push_gpu_hw(out, hw);
        }
        Work::Tune { shape, target } => {
            out.push_str("\"op\":\"tune\",");
            push_tune_target(out, target);
            out.push(',');
            push_layer(out, shape);
        }
    }
}

/// Encode a `conv` request that defers to the tuned config
/// (`"hw":"tuned"`) as one wire line.
pub fn encode_tuned_estimate(
    id: Option<&str>,
    shape: &ConvShape,
    target: &TuneTarget,
    deadline_ms: Option<u64>,
) -> String {
    let mut out = String::with_capacity(256);
    out.push('{');
    push_id(&mut out, id);
    out.push_str("\"op\":\"conv\",");
    push_tune_target(&mut out, target);
    out.push(',');
    push_layer(&mut out, shape);
    out.push_str(",\"hw\":\"tuned\"");
    push_deadline(&mut out, deadline_ms);
    out.push('}');
    out
}

/// Encode an estimate request as one wire line (no trailing newline).
pub fn encode_estimate(req: &EstimateRequest) -> String {
    let mut out = String::with_capacity(256);
    out.push('{');
    push_id(&mut out, req.id.as_deref());
    push_work(&mut out, &req.work);
    push_deadline(&mut out, req.deadline_ms);
    out.push('}');
    out
}

/// Encode a `batch` request with an explicit item array as one wire line.
pub fn encode_batch(id: Option<&str>, items: &[Work], deadline_ms: Option<u64>) -> String {
    let mut out = String::with_capacity(64 + 192 * items.len());
    out.push('{');
    push_id(&mut out, id);
    out.push_str("\"op\":\"batch\",\"items\":[");
    for (i, work) in items.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('{');
        push_work(&mut out, work);
        out.push('}');
    }
    out.push(']');
    push_deadline(&mut out, deadline_ms);
    out.push('}');
    out
}

/// Encode a `batch` request in compact sweep form as one wire line.
pub fn encode_sweep(id: Option<&str>, spec: &SweepSpec, deadline_ms: Option<u64>) -> String {
    let mut out = String::with_capacity(256);
    out.push('{');
    push_id(&mut out, id);
    out.push_str("\"op\":\"batch\",\"sweep\":{");
    match &spec.target {
        SweepTarget::Tpu { mode, hw } => {
            out.push_str("\"target\":\"tpu\",\"mode\":");
            write_str(&mut out, &tpu_mode_wire(*mode));
            out.push(',');
            push_layer(&mut out, &spec.base);
            push_tpu_hw(&mut out, hw);
        }
        SweepTarget::Gpu { algo } => {
            out.push_str("\"target\":\"gpu\",\"mode\":");
            write_str(&mut out, &algo.to_string());
            out.push(',');
            push_layer(&mut out, &spec.base);
        }
    }
    let mut usize_axis = |key: &str, values: &[usize]| {
        if values.is_empty() {
            return;
        }
        out.push_str(&format!(",\"{key}\":["));
        for (i, v) in values.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&v.to_string());
        }
        out.push(']');
    };
    usize_axis("cis", &spec.cis);
    usize_axis("strides", &spec.strides);
    usize_axis("dilations", &spec.dilations);
    if !spec.layouts.is_empty() {
        out.push_str(",\"layouts\":[");
        for (i, l) in spec.layouts.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{l}\""));
        }
        out.push(']');
    }
    out.push('}');
    push_deadline(&mut out, deadline_ms);
    out.push('}');
    out
}

/// Encode a `stats` / `ping` / `shutdown` request line.
pub fn encode_simple(op: &str, id: Option<&str>) -> String {
    let mut out = String::with_capacity(48);
    out.push('{');
    push_id(&mut out, id);
    out.push_str("\"op\":");
    write_str(&mut out, op);
    out.push('}');
    out
}

// ---------------------------------------------------------------------------
// Response encoding (server side)
// ---------------------------------------------------------------------------
//
// The server caches response *bodies*: the comma-joined interior of the
// object without the braces and without the id field. The same body is
// therefore byte-identical whether it was just simulated or replayed from
// cache, and `finish_response` grafts the per-request id on at send time.

/// Body of a successful TPU estimate response.
pub fn tpu_body(est: &TpuEstimate) -> String {
    format!(
        "\"ok\":true,\"target\":\"tpu\",\"cycles\":{},\"compute_cycles\":{},\
         \"exposed_memory_cycles\":{},\"dram_bytes\":{},\"workspace_bytes\":{},\"flops\":{},\
         \"dispatch\":{},\"first_fill\":{},\"steady\":{}",
        est.cycles,
        est.compute_cycles,
        est.exposed_memory_cycles,
        est.dram_bytes,
        est.workspace_bytes,
        est.flops,
        est.dispatch,
        est.first_fill,
        est.steady
    )
}

/// Body of a successful GPU estimate response.
pub fn gpu_body(est: &GpuEstimate) -> String {
    format!(
        "\"ok\":true,\"target\":\"gpu\",\"cycles\":{},\"cycles_bits\":\"{}\",\
         \"compute_bits\":\"{}\",\"memory_bits\":\"{}\",\"transform_bits\":\"{}\",\
         \"blocks\":{},\"flops\":{}",
        est.cycles,
        f64_bits(est.cycles),
        f64_bits(est.compute_cycles),
        f64_bits(est.memory_cycles),
        f64_bits(est.transform_cycles),
        est.blocks,
        est.flops
    )
}

/// Render a tuned config as a JSON object (the `best` field of a tune
/// response; also the on-disk tune-cache entry format).
pub fn tuned_config_json(cfg: &TunedConfig) -> String {
    let mut out = String::with_capacity(128);
    out.push('{');
    match cfg {
        TunedConfig::Tpu { mode, hw } => {
            out.push_str("\"target\":\"tpu\",\"mode\":");
            write_str(&mut out, &tpu_mode_wire(*mode));
            // `push_tpu_hw` spells the chip inside the hw object (and
            // omits the object entirely for the all-default spec).
            push_tpu_hw(&mut out, hw);
        }
        TunedConfig::Gpu { algo, hw } => {
            out.push_str("\"target\":\"gpu\",\"mode\":");
            write_str(&mut out, &algo.to_string());
            push_gpu_hw(&mut out, hw);
        }
    }
    out.push('}');
    out
}

/// Inverse of [`tuned_config_json`], from a parsed JSON object.
///
/// # Errors
///
/// Returns a `BadRequest` [`RequestError`] when the object is not a valid
/// tuned config (the same validators as request parsing apply).
pub fn parse_tuned_config(v: &Json) -> Result<TunedConfig, RequestError> {
    let obj = v
        .as_obj()
        .ok_or_else(|| RequestError::bad("tuned config must be an object"))?;
    match obj.get("target").and_then(|v| v.as_str()) {
        Some("tpu") => Ok(TunedConfig::Tpu {
            mode: parse_tpu_mode(obj.get("mode"))?,
            hw: parse_tpu_hw(obj.get("hw"))?,
        }),
        Some("gpu") => Ok(TunedConfig::Gpu {
            algo: parse_gpu_algo(obj.get("mode"))?,
            hw: parse_gpu_hw(obj.get("hw"))?,
        }),
        _ => Err(RequestError::bad(
            "tuned config missing target (expected tpu or gpu)",
        )),
    }
}

/// Body of a successful `tune` response.
pub fn tune_body(est: &TuneEstimate) -> String {
    format!(
        "\"ok\":true,\"target\":\"tune\",\"best\":{},\"tuned_cycles\":{},\
         \"tuned_bits\":\"{}\",\"default_cycles\":{},\"default_bits\":\"{}\",\
         \"candidates\":{},\"pruned\":{}",
        tuned_config_json(&est.best),
        est.tuned_cycles,
        f64_bits(est.tuned_cycles),
        est.default_cycles,
        f64_bits(est.default_cycles),
        est.candidates,
        est.pruned
    )
}

/// Body of a `stats` response.
pub fn stats_body(s: &StatsSnapshot) -> String {
    format!(
        "\"ok\":true,\"stats\":{{\"requests\":{},\"hits\":{},\"misses\":{},\"evictions\":{},\
         \"cache_entries\":{},\"cache_capacity\":{},\"queue_depth\":{},\"in_flight\":{},\
         \"busy_rejections\":{},\"deadline_expired\":{},\"parse_errors\":{},\
         \"latency_us_total\":{},\"latency_us_max\":{},\"workers\":{},\
         \"batches\":{},\"batch_items\":{},\"batch_hits\":{},\"batch_misses\":{},\
         \"batch_errors\":{},\"worker_crashes\":{},\"faults_injected\":{},\
         \"faults_observed\":{},\"tunes\":{},\"tune_searches\":{},\
         \"tune_cached\":{},\"service_hist\":{}}}",
        s.requests,
        s.hits,
        s.misses,
        s.evictions,
        s.cache_entries,
        s.cache_capacity,
        s.queue_depth,
        s.in_flight,
        s.busy_rejections,
        s.deadline_expired,
        s.parse_errors,
        s.latency_us_total,
        s.latency_us_max,
        s.workers,
        s.batches,
        s.batch_items,
        s.batch_hits,
        s.batch_misses,
        s.batch_errors,
        s.worker_crashes,
        s.faults_injected,
        s.faults_observed,
        s.tunes,
        s.tune_searches,
        s.tune_cached,
        s.service_hist.to_json()
    )
}

/// Body of a `shards` response: the striped cache's per-shard counters.
pub fn shards_body(shards: &[ShardStat]) -> String {
    let mut out = String::with_capacity(32 + 96 * shards.len());
    out.push_str("\"ok\":true,\"shards\":[");
    for (i, s) in shards.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"shard\":{},\"hits\":{},\"misses\":{},\"evictions\":{},\
             \"entries\":{},\"capacity\":{},\"in_flight\":{}}}",
            s.shard, s.hits, s.misses, s.evictions, s.entries, s.capacity, s.in_flight
        ));
    }
    out.push(']');
    out
}

/// Body of the summary line that closes a batch's response stream.
pub fn batch_summary_body(items: u64, errors: u64) -> String {
    format!("\"ok\":true,\"batch\":{{\"items\":{items},\"errors\":{errors}}}")
}

/// Wrap a response body into one batch-item wire line: like
/// [`finish_response`] plus the `"item":<index>` tag that names which batch
/// item the line answers.
pub fn finish_item_response(id: Option<&str>, item: usize, body: &str) -> String {
    let mut out = String::with_capacity(body.len() + 48);
    out.push('{');
    push_id(&mut out, id);
    out.push_str(&format!("\"item\":{item},"));
    out.push_str(body);
    out.push('}');
    out
}

/// Body of a `ping` acknowledgement.
pub fn pong_body() -> String {
    "\"ok\":true,\"pong\":true".to_owned()
}

/// Body of a `shutdown` acknowledgement.
pub fn shutdown_body() -> String {
    "\"ok\":true,\"shutdown\":true".to_owned()
}

/// Body of a typed failure response.
pub fn error_body(kind: ErrorKind, detail: &str) -> String {
    let mut out = String::with_capacity(48 + detail.len());
    out.push_str("\"ok\":false,\"error\":\"");
    out.push_str(kind.wire());
    out.push_str("\",\"detail\":");
    write_str(&mut out, detail);
    out
}

/// Wrap a response body into a complete wire line (no trailing newline),
/// grafting on the echoed client id.
pub fn finish_response(id: Option<&str>, body: &str) -> String {
    let mut out = String::with_capacity(body.len() + 32);
    out.push('{');
    push_id(&mut out, id);
    out.push_str(body);
    out.push('}');
    out
}

// ---------------------------------------------------------------------------
// Response parsing (client side)
// ---------------------------------------------------------------------------

fn need_u64(
    obj: &std::collections::BTreeMap<String, Json>,
    key: &str,
) -> Result<u64, RequestError> {
    obj.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| RequestError::bad(format!("response missing integer \"{key}\"")))
}

fn need_bits(
    obj: &std::collections::BTreeMap<String, Json>,
    key: &str,
) -> Result<f64, RequestError> {
    obj.get(key)
        .and_then(Json::as_str)
        .and_then(f64_from_bits)
        .ok_or_else(|| RequestError::bad(format!("response missing f64-bits \"{key}\"")))
}

/// Decode a latency histogram object (`{"count":..,"sum":..,"min":..,
/// "max":..,"buckets":[[i,c],..]}`); the sparse pieces are validated and
/// rebuilt by [`LatencyHist::from_sparse`].
fn need_hist(
    obj: &std::collections::BTreeMap<String, Json>,
    key: &str,
) -> Result<LatencyHist, RequestError> {
    let h = obj
        .get(key)
        .and_then(Json::as_obj)
        .ok_or_else(|| RequestError::bad(format!("response missing histogram \"{key}\"")))?;
    let buckets = h
        .get("buckets")
        .and_then(Json::as_arr)
        .ok_or_else(|| RequestError::bad(format!("histogram \"{key}\" missing buckets")))?
        .iter()
        .map(|entry| {
            let pair = entry.as_arr().filter(|p| p.len() == 2)?;
            let i = usize::try_from(pair[0].as_u64()?).ok()?;
            Some((i, pair[1].as_u64()?))
        })
        .collect::<Option<Vec<(usize, u64)>>>()
        .ok_or_else(|| RequestError::bad(format!("histogram \"{key}\" has malformed buckets")))?;
    LatencyHist::from_sparse(
        need_u64(h, "count")?,
        need_u64(h, "sum")?,
        need_u64(h, "min")?,
        need_u64(h, "max")?,
        &buckets,
    )
    .map_err(|e| RequestError::bad(format!("histogram \"{key}\": {e}")))
}

/// Parse one response line.
///
/// # Errors
///
/// Returns a [`RequestError`] when the line is not a well-formed response.
pub fn parse_response(line: &str) -> Result<Response, RequestError> {
    let root = json::parse(line).map_err(|e| RequestError {
        kind: ErrorKind::Parse,
        detail: e.to_string(),
        id: None,
    })?;
    let obj = root
        .as_obj()
        .ok_or_else(|| RequestError::bad("response must be a JSON object"))?;
    let id = obj.get("id").and_then(|v| v.as_str()).map(str::to_owned);
    let ok = match obj.get("ok") {
        Some(Json::Bool(b)) => *b,
        _ => return Err(RequestError::bad("response missing boolean \"ok\"")),
    };
    if !ok {
        let kind = obj
            .get("error")
            .and_then(|v| v.as_str())
            .and_then(ErrorKind::from_wire)
            .ok_or_else(|| RequestError::bad("error response missing known \"error\" code"))?;
        let detail = obj
            .get("detail")
            .and_then(|v| v.as_str())
            .unwrap_or_default()
            .to_owned();
        return Ok(Response::Error { id, kind, detail });
    }
    if obj.get("pong").is_some() {
        return Ok(Response::Pong { id });
    }
    if obj.get("shutdown").is_some() {
        return Ok(Response::ShutdownAck { id });
    }
    if let Some(b) = obj.get("batch").and_then(Json::as_obj) {
        return Ok(Response::Batch {
            id,
            items: need_u64(b, "items")?,
            errors: need_u64(b, "errors")?,
        });
    }
    if let Some(arr) = obj.get("shards").and_then(Json::as_arr) {
        let shards = arr
            .iter()
            .map(|v| {
                let s = v
                    .as_obj()
                    .ok_or_else(|| RequestError::bad("shard entry must be an object"))?;
                Ok(ShardStat {
                    shard: need_u64(s, "shard")?,
                    hits: need_u64(s, "hits")?,
                    misses: need_u64(s, "misses")?,
                    evictions: need_u64(s, "evictions")?,
                    entries: need_u64(s, "entries")?,
                    capacity: need_u64(s, "capacity")?,
                    in_flight: need_u64(s, "in_flight")?,
                })
            })
            .collect::<Result<Vec<_>, RequestError>>()?;
        return Ok(Response::Shards { id, shards });
    }
    if let Some(s) = obj.get("stats").and_then(Json::as_obj) {
        let stats = StatsSnapshot {
            requests: need_u64(s, "requests")?,
            hits: need_u64(s, "hits")?,
            misses: need_u64(s, "misses")?,
            evictions: need_u64(s, "evictions")?,
            cache_entries: need_u64(s, "cache_entries")?,
            cache_capacity: need_u64(s, "cache_capacity")?,
            queue_depth: need_u64(s, "queue_depth")?,
            in_flight: need_u64(s, "in_flight")?,
            busy_rejections: need_u64(s, "busy_rejections")?,
            deadline_expired: need_u64(s, "deadline_expired")?,
            parse_errors: need_u64(s, "parse_errors")?,
            latency_us_total: need_u64(s, "latency_us_total")?,
            latency_us_max: need_u64(s, "latency_us_max")?,
            workers: need_u64(s, "workers")?,
            batches: need_u64(s, "batches")?,
            batch_items: need_u64(s, "batch_items")?,
            batch_hits: need_u64(s, "batch_hits")?,
            batch_misses: need_u64(s, "batch_misses")?,
            batch_errors: need_u64(s, "batch_errors")?,
            worker_crashes: need_u64(s, "worker_crashes")?,
            faults_injected: need_u64(s, "faults_injected")?,
            faults_observed: need_u64(s, "faults_observed")?,
            tunes: need_u64(s, "tunes")?,
            tune_searches: need_u64(s, "tune_searches")?,
            tune_cached: need_u64(s, "tune_cached")?,
            service_hist: need_hist(s, "service_hist")?,
        };
        return Ok(Response::Stats { id, stats });
    }
    match obj.get("target").and_then(|v| v.as_str()) {
        Some("tpu") => Ok(Response::Tpu {
            id,
            est: TpuEstimate {
                cycles: need_u64(obj, "cycles")?,
                compute_cycles: need_u64(obj, "compute_cycles")?,
                exposed_memory_cycles: need_u64(obj, "exposed_memory_cycles")?,
                dram_bytes: need_u64(obj, "dram_bytes")?,
                workspace_bytes: need_u64(obj, "workspace_bytes")?,
                flops: need_u64(obj, "flops")?,
                dispatch: need_u64(obj, "dispatch")?,
                first_fill: need_u64(obj, "first_fill")?,
                steady: need_u64(obj, "steady")?,
            },
        }),
        Some("gpu") => Ok(Response::Gpu {
            id,
            est: GpuEstimate {
                cycles: need_bits(obj, "cycles_bits")?,
                compute_cycles: need_bits(obj, "compute_bits")?,
                memory_cycles: need_bits(obj, "memory_bits")?,
                transform_cycles: need_bits(obj, "transform_bits")?,
                blocks: need_u64(obj, "blocks")?,
                flops: need_u64(obj, "flops")?,
            },
        }),
        Some("tune") => Ok(Response::Tune {
            id,
            est: TuneEstimate {
                best: obj
                    .get("best")
                    .ok_or_else(|| RequestError::bad("tune response missing \"best\""))
                    .and_then(parse_tuned_config)?,
                tuned_cycles: need_bits(obj, "tuned_bits")?,
                default_cycles: need_bits(obj, "default_bits")?,
                candidates: need_u64(obj, "candidates")?,
                pruned: need_u64(obj, "pruned")?,
            },
        }),
        _ => Err(RequestError::bad("unrecognized response shape")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape() -> ConvShape {
        ConvShape::square(8, 64, 56, 64, 3, 1, 1).unwrap()
    }

    #[test]
    fn estimate_request_roundtrip() {
        let req = EstimateRequest {
            id: Some("r-1".into()),
            work: Work::TpuConv {
                shape: shape(),
                mode: SimMode::ChannelFirstGrouped(2),
                hw: TpuHwSpec {
                    chip: TpuChip::V3,
                    array: Some(256),
                    layout: Some(Layout::Nchw),
                    ..TpuHwSpec::default()
                },
            },
            deadline_ms: Some(250),
        };
        let line = encode_estimate(&req);
        assert_eq!(parse_request(&line), Ok(Request::Estimate(req)));
    }

    #[test]
    fn gpu_request_roundtrip() {
        for algo in [
            GpuAlgo::CudnnImplicit,
            GpuAlgo::ChannelFirst { reuse: true },
            GpuAlgo::ChannelFirst { reuse: false },
            GpuAlgo::ExplicitIm2col,
            GpuAlgo::GemmEquivalent,
        ] {
            let req = EstimateRequest {
                id: None,
                work: Work::GpuConv {
                    shape: shape(),
                    algo,
                    hw: GpuHwSpec::default(),
                },
                deadline_ms: None,
            };
            let line = encode_estimate(&req);
            assert_eq!(parse_request(&line), Ok(Request::Estimate(req)));
        }
    }

    #[test]
    fn pass_requests_roundtrip_and_forward_normalizes() {
        use iconv_core::ConvPass;
        // Every non-forward pass roundtrips on both targets.
        for pass in [ConvPass::Wgrad, ConvPass::Dgrad, ConvPass::Transpose] {
            for work in [
                Work::TpuPass {
                    shape: shape(),
                    pass,
                    mode: SimMode::Indirect,
                    hw: TpuHwSpec::default(),
                },
                Work::GpuPass {
                    shape: shape(),
                    pass,
                    algo: GpuAlgo::Indirect,
                    hw: GpuHwSpec::default(),
                },
            ] {
                let req = EstimateRequest {
                    id: None,
                    work,
                    deadline_ms: None,
                };
                let line = encode_estimate(&req);
                assert!(line.contains(&format!("\"pass\":\"{pass}\"")), "{line}");
                assert_eq!(parse_request(&line), Ok(Request::Estimate(req)));
            }
        }
        // A spelled-out forward pass encodes and parses as the plain conv
        // it denotes — the wire never grows a redundant field.
        let fwd = encode_estimate(&EstimateRequest {
            id: None,
            work: Work::TpuPass {
                shape: shape(),
                pass: ConvPass::Forward,
                mode: SimMode::ChannelFirst,
                hw: TpuHwSpec::default(),
            },
            deadline_ms: None,
        });
        assert!(!fwd.contains("\"pass\""), "{fwd}");
        let plain = encode_estimate(&EstimateRequest {
            id: None,
            work: Work::TpuConv {
                shape: shape(),
                mode: SimMode::ChannelFirst,
                hw: TpuHwSpec::default(),
            },
            deadline_ms: None,
        });
        assert_eq!(fwd, plain);
        // `"pass":"forward"` on the wire parses to the plain variant too.
        let spelled = plain.replacen(
            "\"op\":\"conv\",",
            "\"op\":\"conv\",\"pass\":\"forward\",",
            1,
        );
        assert_eq!(parse_request(&spelled), parse_request(&plain));
        // Unknown passes are typed bad-requests.
        let bad = plain.replacen(
            "\"op\":\"conv\",",
            "\"op\":\"conv\",\"pass\":\"sideways\",",
            1,
        );
        let e = parse_request(&bad).unwrap_err();
        assert_eq!(e.kind, ErrorKind::BadRequest);
        assert!(e.detail.contains("unknown pass"), "{e}");
    }

    #[test]
    fn indirect_mode_parses_on_both_targets() {
        let tpu = r#"{"op":"conv","mode":"indirect","layer":{"n":8,"ci":64,"hi":56,"wi":56,"co":64,"hf":3,"wf":3,"pad":1}}"#;
        let Ok(Request::Estimate(req)) = parse_request(tpu) else {
            panic!("tpu indirect parse failed");
        };
        assert!(matches!(
            req.work,
            Work::TpuConv {
                mode: SimMode::Indirect,
                ..
            }
        ));
        let gpu = r#"{"op":"conv","target":"gpu","mode":"indirect","layer":{"n":8,"ci":64,"hi":56,"wi":56,"co":64,"hf":3,"wf":3,"pad":1}}"#;
        let Ok(Request::Estimate(req)) = parse_request(gpu) else {
            panic!("gpu indirect parse failed");
        };
        assert!(matches!(
            req.work,
            Work::GpuConv {
                algo: GpuAlgo::Indirect,
                ..
            }
        ));
    }

    #[test]
    fn layer_defaults_and_scalar_axes() {
        let line = r#"{"op":"conv","layer":{"n":8,"ci":64,"hi":56,"wi":56,"co":64,"hf":3,"wf":3,"stride":1,"pad":1,"dilation":1}}"#;
        let Ok(Request::Estimate(req)) = parse_request(line) else {
            panic!("parse failed");
        };
        let Work::TpuConv { shape: s, mode, .. } = req.work else {
            panic!("wrong work");
        };
        assert_eq!(s, shape());
        assert_eq!(mode, SimMode::ChannelFirst);
    }

    #[test]
    fn bad_requests_are_typed_and_keep_the_id() {
        for (line, want_parse) in [
            ("{\"op\":\"conv\"", true),                // truncated JSON
            ("{\"id\":\"x\",\"op\":\"warp\"}", false), // unknown op
            ("{\"id\":\"x\",\"op\":\"conv\"}", false), // missing layer
            (
                "{\"id\":\"x\",\"op\":\"conv\",\"target\":\"fpga\",\"layer\":{}}",
                false,
            ),
            ("{\"id\":\"x\",\"op\":\"gemm\",\"m\":1,\"n\":1}", false), // missing k
            ("[1,2,3]", false),                                        // not an object
        ] {
            let e = parse_request(line).unwrap_err();
            if want_parse {
                assert_eq!(e.kind, ErrorKind::Parse, "{line}");
            } else {
                assert_eq!(e.kind, ErrorKind::BadRequest, "{line}");
            }
            if line.contains("\"id\"") {
                assert_eq!(e.id.as_deref(), Some("x"), "{line}");
            }
        }
        // Shape validation failures surface as bad-request, not panics.
        let e = parse_request(
            r#"{"op":"conv","layer":{"n":1,"ci":1,"hi":1,"wi":1,"co":1,"hf":3,"wf":3}}"#,
        )
        .unwrap_err();
        assert_eq!(e.kind, ErrorKind::BadRequest);
        assert!(e.detail.contains("invalid layer"), "{e}");
    }

    #[test]
    fn response_bodies_roundtrip() {
        let tpu = TpuEstimate {
            cycles: 123,
            compute_cycles: 100,
            exposed_memory_cycles: 13,
            dram_bytes: 4096,
            workspace_bytes: 512,
            flops: 1_000_000,
            dispatch: 10,
            first_fill: 13,
            steady: 100,
        };
        let line = finish_response(Some("a"), &tpu_body(&tpu));
        assert_eq!(
            parse_response(&line),
            Ok(Response::Tpu {
                id: Some("a".into()),
                est: tpu
            })
        );

        let gpu = GpuEstimate {
            cycles: 2126.456789,
            compute_cycles: 0.1 + 0.2, // not representable exactly in decimal
            memory_cycles: 1e-300,
            transform_cycles: 0.0,
            blocks: 77,
            flops: 42,
        };
        let line = finish_response(None, &gpu_body(&gpu));
        let Ok(Response::Gpu { id: None, est }) = parse_response(&line) else {
            panic!("bad gpu response");
        };
        assert_eq!(est.cycles.to_bits(), gpu.cycles.to_bits());
        assert_eq!(est.compute_cycles.to_bits(), gpu.compute_cycles.to_bits());
        assert_eq!(est.memory_cycles.to_bits(), gpu.memory_cycles.to_bits());

        let stats = StatsSnapshot {
            requests: 10,
            hits: 7,
            misses: 3,
            workers: 4,
            ..StatsSnapshot::default()
        };
        let line = finish_response(None, &stats_body(&stats));
        assert_eq!(
            parse_response(&line),
            Ok(Response::Stats { id: None, stats })
        );

        let line = finish_response(Some("e"), &error_body(ErrorKind::Busy, "queue full"));
        assert_eq!(
            parse_response(&line),
            Ok(Response::Error {
                id: Some("e".into()),
                kind: ErrorKind::Busy,
                detail: "queue full".into()
            })
        );
        assert_eq!(
            parse_response(&finish_response(None, &pong_body())),
            Ok(Response::Pong { id: None })
        );
    }

    #[test]
    fn batch_request_roundtrips() {
        let items = vec![
            Work::TpuConv {
                shape: shape(),
                mode: SimMode::ChannelFirst,
                hw: TpuHwSpec::default(),
            },
            Work::TpuGemm {
                m: 512,
                n: 256,
                k: 384,
                hw: TpuHwSpec {
                    chip: TpuChip::V3,
                    ..TpuHwSpec::default()
                },
            },
            Work::GpuConv {
                shape: shape(),
                algo: GpuAlgo::CudnnImplicit,
                hw: GpuHwSpec::default(),
            },
        ];
        let line = encode_batch(Some("b1"), &items, Some(750));
        assert_eq!(
            parse_request(&line),
            Ok(Request::Batch {
                id: Some("b1".into()),
                items,
                deadline_ms: Some(750),
            })
        );
    }

    #[test]
    fn sweep_request_parses_to_its_expansion() {
        let mut spec = SweepSpec::new(
            shape(),
            SweepTarget::Tpu {
                mode: SimMode::ChannelFirst,
                hw: TpuHwSpec::default(),
            },
        );
        spec.cis = vec![3, 64];
        spec.strides = vec![1, 2];
        spec.layouts = vec![Layout::Hwcn, Layout::Nchw];
        let line = encode_sweep(Some("s"), &spec, None);
        let Ok(Request::Batch { id, items, .. }) = parse_request(&line) else {
            panic!("sweep line did not parse as a batch: {line}");
        };
        assert_eq!(id.as_deref(), Some("s"));
        assert_eq!(items, spec.expand().unwrap());
    }

    #[test]
    fn bad_batches_are_typed_errors() {
        for line in [
            r#"{"id":"x","op":"batch"}"#,                         // neither form
            r#"{"id":"x","op":"batch","items":[]}"#,              // empty
            r#"{"id":"x","op":"batch","items":{}}"#,              // not an array
            r#"{"id":"x","op":"batch","items":[{"op":"ping"}]}"#, // bad item op
            r#"{"id":"x","op":"batch","items":[1]}"#,             // item not an object
            r#"{"id":"x","op":"batch","items":[],"sweep":{}}"#,   // both forms
            r#"{"id":"x","op":"batch","sweep":{"layer":{"n":1,"ci":3,"hi":8,"wi":8,"co":8,"hf":3,"wf":3},"target":"gpu","layouts":["NCHW"]}}"#,
        ] {
            let e = parse_request(line).unwrap_err();
            assert_eq!(e.kind, ErrorKind::BadRequest, "{line}");
            assert_eq!(e.id.as_deref(), Some("x"), "{line}");
        }
        // Per-item failures name the offending index.
        let e = parse_request(
            r#"{"op":"batch","items":[{"op":"gemm","m":1,"n":1,"k":1},{"op":"gemm","m":1}]}"#,
        )
        .unwrap_err();
        assert!(e.detail.contains("item 1"), "{e}");
    }

    #[test]
    fn oversized_hw_specs_are_rejected_at_parse_time() {
        // An array override that underflows the per-row SRAM budget must be
        // a bad-request, not a downstream panic.
        let line = format!(
            r#"{{"op":"conv","layer":{{"n":1,"ci":3,"hi":8,"wi":8,"co":8,"hf":3,"wf":3}},"hw":{{"array":{}}}}}"#,
            1_u64 << 30
        );
        let e = parse_request(&line).unwrap_err();
        assert_eq!(e.kind, ErrorKind::BadRequest);
        assert!(e.detail.contains("invalid hw spec"), "{e}");
    }

    #[test]
    fn schedule_override_parses_and_rejects_unknown_tokens() {
        let layer = r#"{"n":1,"ci":32,"hi":8,"wi":8,"co":8,"hf":3,"wf":3}"#;
        let line = format!(r#"{{"op":"conv","layer":{layer},"hw":{{"schedule":"double"}}}}"#);
        let Ok(Request::Estimate(req)) = parse_request(&line) else {
            panic!("schedule override should parse");
        };
        let Work::TpuConv { hw, .. } = req.work else {
            panic!("expected tpu conv");
        };
        assert_eq!(hw.schedule, Some(PipelineSchedule::DoubleBuffered));
        // Round-trip through the client encoder.
        let re = encode_estimate(&EstimateRequest {
            id: None,
            work: req.work,
            deadline_ms: None,
        });
        assert!(re.contains("\"schedule\":\"double\""), "{re}");

        let bad = format!(r#"{{"op":"conv","layer":{layer},"hw":{{"schedule":"triple"}}}}"#);
        let e = parse_request(&bad).unwrap_err();
        assert_eq!(e.kind, ErrorKind::BadRequest);
        assert!(e.detail.contains("unknown schedule"), "{e}");
    }

    #[test]
    fn batch_summary_and_item_lines_roundtrip() {
        let line = finish_response(Some("b"), &batch_summary_body(5, 1));
        assert_eq!(
            parse_response(&line),
            Ok(Response::Batch {
                id: Some("b".into()),
                items: 5,
                errors: 1,
            })
        );
        // Item lines carry the estimate body plus an "item" tag the
        // estimate decoder tolerates.
        let tpu = TpuEstimate {
            cycles: 9,
            ..TpuEstimate::default()
        };
        let line = finish_item_response(Some("b"), 3, &tpu_body(&tpu));
        assert!(line.contains("\"item\":3,"), "{line}");
        assert_eq!(
            parse_response(&line),
            Ok(Response::Tpu {
                id: Some("b".into()),
                est: tpu,
            })
        );
        // Error item lines parse as typed errors.
        let line = finish_item_response(None, 0, &error_body(ErrorKind::Deadline, "expired"));
        assert_eq!(
            parse_response(&line),
            Ok(Response::Error {
                id: None,
                kind: ErrorKind::Deadline,
                detail: "expired".into(),
            })
        );
    }

    #[test]
    fn asymmetric_pad_roundtrips_and_symmetric_bytes_are_stable() {
        // Symmetric layers never spell the trailing-pad fields: the encoded
        // bytes are exactly the historical ones.
        let sym = EstimateRequest {
            id: None,
            work: Work::TpuConv {
                shape: shape(),
                mode: SimMode::ChannelFirst,
                hw: TpuHwSpec::default(),
            },
            deadline_ms: None,
        };
        let line = encode_estimate(&sym);
        assert!(!line.contains("pad_h_end"), "{line}");
        assert_eq!(parse_request(&line), Ok(Request::Estimate(sym)));

        // An even-filter SAME layer carries its trailing pads and survives
        // the round trip exactly.
        let asym = EstimateRequest {
            id: Some("a".into()),
            work: Work::GpuConv {
                shape: ConvShape::new(1, 4, 14, 14, 4, 4, 4)
                    .same_pad()
                    .build()
                    .unwrap(),
                algo: GpuAlgo::CudnnImplicit,
                hw: GpuHwSpec::default(),
            },
            deadline_ms: None,
        };
        let line = encode_estimate(&asym);
        assert!(line.contains("\"pad_h_end\":2,\"pad_w_end\":2"), "{line}");
        assert_eq!(parse_request(&line), Ok(Request::Estimate(asym)));
    }

    #[test]
    fn shards_request_and_response_roundtrip() {
        let line = encode_simple("shards", Some("sh"));
        assert_eq!(
            parse_request(&line),
            Ok(Request::Shards {
                id: Some("sh".into())
            })
        );
        let shards = vec![
            ShardStat {
                shard: 0,
                hits: 10,
                misses: 3,
                evictions: 1,
                entries: 2,
                capacity: 1024,
                in_flight: 0,
            },
            ShardStat {
                shard: 1,
                hits: 0,
                misses: 7,
                evictions: 0,
                entries: 7,
                capacity: 1024,
                in_flight: 2,
            },
        ];
        let line = finish_response(Some("sh"), &shards_body(&shards));
        assert_eq!(
            parse_response(&line),
            Ok(Response::Shards {
                id: Some("sh".into()),
                shards,
            })
        );
        // Empty striping still parses (a zero-shard server is impossible,
        // but the codec should not care).
        let line = finish_response(None, &shards_body(&[]));
        assert_eq!(
            parse_response(&line),
            Ok(Response::Shards {
                id: None,
                shards: Vec::new(),
            })
        );
    }

    #[test]
    fn stats_merge_sums_counters_and_maxes_latency() {
        let mut a = StatsSnapshot {
            requests: 10,
            hits: 7,
            misses: 3,
            latency_us_max: 40,
            workers: 4,
            cache_capacity: 1000,
            ..StatsSnapshot::default()
        };
        let b = StatsSnapshot {
            requests: 5,
            hits: 1,
            misses: 4,
            latency_us_max: 90,
            workers: 2,
            cache_capacity: 1000,
            ..StatsSnapshot::default()
        };
        a.merge(&b);
        assert_eq!(a.requests, 15);
        assert_eq!(a.hits + a.misses, a.requests);
        assert_eq!(a.latency_us_max, 90);
        assert_eq!(a.workers, 6);
        assert_eq!(a.cache_capacity, 2000);
    }

    #[test]
    fn tune_request_and_response_roundtrip() {
        let req = EstimateRequest {
            id: Some("t".into()),
            work: Work::Tune {
                shape: shape(),
                target: TuneTarget::Tpu { chip: TpuChip::V3 },
            },
            deadline_ms: Some(500),
        };
        let line = encode_estimate(&req);
        assert!(line.contains("\"op\":\"tune\""), "{line}");
        assert!(line.contains("\"chip\":\"v3\""), "{line}");
        assert_eq!(parse_request(&line), Ok(Request::Estimate(req)));

        let est = TuneEstimate {
            best: TunedConfig::Tpu {
                mode: SimMode::ChannelFirstGrouped(2),
                hw: TpuHwSpec {
                    array: Some(64),
                    ..TpuHwSpec::default()
                },
            },
            tuned_cycles: 1234.0,
            default_cycles: 5678.5,
            candidates: 61,
            pruned: 9,
        };
        let line = finish_response(Some("t"), &tune_body(&est));
        assert_eq!(
            parse_response(&line),
            Ok(Response::Tune {
                id: Some("t".into()),
                est,
            })
        );
    }

    #[test]
    fn tuned_conv_framing_parses_to_tuned_estimate() {
        let line = encode_tuned_estimate(Some("x"), &shape(), &TuneTarget::Gpu, Some(100));
        assert!(line.contains("\"hw\":\"tuned\""), "{line}");
        assert_eq!(
            parse_request(&line),
            Ok(Request::TunedEstimate {
                id: Some("x".into()),
                shape: shape(),
                target: TuneTarget::Gpu,
                deadline_ms: Some(100),
            })
        );
    }

    #[test]
    fn gpu_hw_spec_roundtrips_and_rejects_overflow() {
        let req = EstimateRequest {
            id: None,
            work: Work::GpuConv {
                shape: shape(),
                algo: GpuAlgo::CudnnImplicit,
                hw: GpuHwSpec {
                    sms: Some(40),
                    clock_mhz: Some(1312.5),
                    block: Some((64, 64, 32)),
                    schedule: Some(PipelineSchedule::SingleBuffered),
                    ..GpuHwSpec::default()
                },
            },
            deadline_ms: None,
        };
        let line = encode_estimate(&req);
        assert_eq!(parse_request(&line), Ok(Request::Estimate(req)));

        // Tiles that overflow shared memory at default residency must be
        // a bad-request at parse time, not an engine panic.
        let layer = r#"{"n":1,"ci":32,"hi":8,"wi":8,"co":8,"hf":3,"wf":3}"#;
        let bad = format!(
            r#"{{"op":"conv","target":"gpu","layer":{layer},"hw":{{"bm":4096,"bn":4096,"bk":4096}}}}"#
        );
        let e = parse_request(&bad).unwrap_err();
        assert_eq!(e.kind, ErrorKind::BadRequest);
        assert!(e.detail.contains("invalid hw spec"), "{e}");
    }

    #[test]
    fn f64_bits_roundtrip_edge_values() {
        for v in [0.0, -0.0, 1.0, f64::MIN_POSITIVE, f64::MAX, 0.1 + 0.2] {
            assert_eq!(f64_from_bits(&f64_bits(v)).unwrap().to_bits(), v.to_bits());
        }
        assert_eq!(f64_from_bits("xyz"), None);
        assert_eq!(f64_from_bits("00000000000000000"), None);
    }
}
