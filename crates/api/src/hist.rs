//! A hand-rolled HDR-style log-linear latency histogram.
//!
//! The capacity harness needs latency percentiles that are (a) exact in
//! count — every recorded sample lands in exactly one bucket, no sampling,
//! no decay — (b) mergeable across connections and backends by plain
//! bucket-wise addition, and (c) bounded in relative quantile error by the
//! bucket layout alone. The layout is **fixed** (no configuration knobs),
//! so two histograms built anywhere in the fleet always share bucket
//! boundaries and merge losslessly:
//!
//! * Values `0..64` get their own unit-width bucket (exact).
//! * Above that, each power-of-two octave `[2^m, 2^(m+1))` is split into
//!   [`SUB_BUCKETS`] equal linear sub-buckets, so the bucket width at value
//!   `v` is at most `v / 32` — a ≤ 3.2 % relative quantile error.
//! * The full `u64` domain is covered by [`NUM_BUCKETS`] buckets (~15 KiB
//!   of counts), so recording can never overflow the layout.
//!
//! Units are the caller's choice; the serving stack records microseconds.
//!
//! The JSON encoding is sparse (`[index, count]` pairs for non-empty
//! buckets only) and canonical: [`LatencyHist::to_json`] followed by
//! [`LatencyHist::from_json`] is the identity, which the proptest battery
//! pins.

/// log2 of the linear sub-buckets per octave.
pub const SUB_BITS: u32 = 5;
/// Linear sub-buckets per power-of-two octave (32 → ≤ 1/32 relative error).
pub const SUB_BUCKETS: u64 = 1 << SUB_BITS;
/// Total buckets covering the whole `u64` domain.
pub const NUM_BUCKETS: usize = ((64 - SUB_BITS) as usize + 1) * SUB_BUCKETS as usize;

/// Bucket index for a value. Total and monotone non-decreasing over `u64`.
#[must_use]
pub fn bucket_index(v: u64) -> usize {
    if v < 2 * SUB_BUCKETS {
        // Two exact unit-width octaves: values 0..64.
        v as usize
    } else {
        let msb = 63 - v.leading_zeros();
        let e = msb - SUB_BITS; // bucket width is 2^e
        (((e + 1) as u64 * SUB_BUCKETS) + (v >> e) - SUB_BUCKETS) as usize
    }
}

/// Inclusive `(lo, hi)` value range of bucket `index`.
///
/// # Panics
///
/// Panics if `index >= NUM_BUCKETS`.
#[must_use]
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    assert!(index < NUM_BUCKETS, "bucket index {index} out of range");
    if index < 2 * SUB_BUCKETS as usize {
        (index as u64, index as u64)
    } else {
        let e = (index as u64 / SUB_BUCKETS - 1) as u32;
        let off = index as u64 % SUB_BUCKETS;
        let lo = (SUB_BUCKETS + off) << e;
        // The top octave's buckets end at u64::MAX; saturate instead of
        // wrapping past it.
        let width = 1u64.checked_shl(e).unwrap_or(u64::MAX);
        (lo, lo.saturating_add(width - 1))
    }
}

/// Fixed-layout log-linear histogram with exact counts (see the module
/// docs for the bucket layout).
#[derive(Clone, PartialEq, Eq)]
pub struct LatencyHist {
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for LatencyHist {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for LatencyHist {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatencyHist")
            .field("count", &self.count)
            .field("sum", &self.sum)
            .field("min", &self.min)
            .field("max", &self.max)
            .field("p50", &self.value_at_quantile(0.50))
            .field("p99", &self.value_at_quantile(0.99))
            .finish_non_exhaustive()
    }
}

impl LatencyHist {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self {
            counts: vec![0; NUM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Record one value.
    pub fn record(&mut self, v: u64) {
        self.record_n(v, 1);
    }

    /// Record `n` occurrences of the same value.
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.counts[bucket_index(v)] += n;
        self.count += n;
        self.sum = self.sum.saturating_add(v.saturating_mul(n));
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values (saturating).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded value (`0` when empty).
    #[must_use]
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value (`0` when empty).
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded values (`0.0` when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Fold another histogram into this one. Because the layout is fixed,
    /// this is exact: merging is equivalent to having recorded every sample
    /// into one histogram (the proptest battery pins the equivalence).
    pub fn merge(&mut self, other: &LatencyHist) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Value at quantile `q` in `[0, 1]`: the upper bound of the bucket
    /// holding the `ceil(q·count)`-th smallest sample, clamped to the
    /// recorded maximum. The estimate never undershoots the true sample
    /// and overshoots by at most the bucket width (≤ `value / 32`).
    /// Returns `0` on an empty histogram.
    #[must_use]
    pub fn value_at_quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= target {
                return bucket_bounds(i).1.min(self.max);
            }
        }
        self.max
    }

    /// `[index, count]` pairs for every non-empty bucket, ascending.
    #[must_use]
    pub fn nonzero_buckets(&self) -> Vec<(usize, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
            .collect()
    }

    /// Rebuild a histogram from its summary fields and sparse buckets (the
    /// decoding half used by the serve protocol, which parses the JSON with
    /// its own parser and hands the pieces here for validation).
    ///
    /// # Errors
    ///
    /// Rejects out-of-range or non-ascending bucket indices, a `count` that
    /// does not equal the bucket total, and min/max inconsistent with
    /// emptiness.
    pub fn from_sparse(
        count: u64,
        sum: u64,
        min: u64,
        max: u64,
        buckets: &[(usize, u64)],
    ) -> Result<Self, String> {
        let mut h = Self::new();
        let mut total = 0u64;
        let mut last: Option<usize> = None;
        for &(i, c) in buckets {
            if i >= NUM_BUCKETS {
                return Err(format!("bucket index {i} out of range"));
            }
            if last.is_some_and(|p| p >= i) {
                return Err("bucket indices must be strictly ascending".to_owned());
            }
            if c == 0 {
                return Err(format!("bucket {i} has zero count"));
            }
            last = Some(i);
            h.counts[i] = c;
            total = total
                .checked_add(c)
                .ok_or_else(|| "bucket counts overflow".to_owned())?;
        }
        if total != count {
            return Err(format!("count {count} != bucket total {total}"));
        }
        if count == 0 {
            if sum != 0 || min != 0 || max != 0 {
                return Err("empty histogram with non-zero summary".to_owned());
            }
            return Ok(h);
        }
        if min > max {
            return Err(format!("min {min} > max {max}"));
        }
        h.count = count;
        h.sum = sum;
        h.min = min;
        h.max = max;
        Ok(h)
    }

    /// Canonical compact JSON encoding:
    /// `{"count":C,"sum":S,"min":m,"max":M,"buckets":[[i,c],...]}` with
    /// non-empty buckets only, ascending. [`LatencyHist::from_json`] is its
    /// exact inverse.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64 + 16 * 8);
        out.push_str(&format!(
            "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"buckets\":[",
            self.count,
            self.sum,
            self.min(),
            self.max
        ));
        let mut first = true;
        for (i, c) in self.nonzero_buckets() {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("[{i},{c}]"));
        }
        out.push_str("]}");
        out
    }

    /// Parse the canonical encoding produced by [`LatencyHist::to_json`]
    /// (whitespace between tokens is tolerated; field order is fixed).
    ///
    /// # Errors
    ///
    /// Any deviation from the canonical shape, or values that fail
    /// [`LatencyHist::from_sparse`] validation.
    pub fn from_json(s: &str) -> Result<Self, String> {
        let mut c = Scan::new(s);
        c.expect('{')?;
        let count = c.field("count")?;
        c.expect(',')?;
        let sum = c.field("sum")?;
        c.expect(',')?;
        let min = c.field("min")?;
        c.expect(',')?;
        let max = c.field("max")?;
        c.expect(',')?;
        c.key("buckets")?;
        c.expect('[')?;
        let mut buckets = Vec::new();
        if !c.eat(']') {
            loop {
                c.expect('[')?;
                let i = c.u64()?;
                c.expect(',')?;
                let n = c.u64()?;
                c.expect(']')?;
                buckets.push((
                    usize::try_from(i).map_err(|_| format!("bucket index {i} too large"))?,
                    n,
                ));
                if c.eat(']') {
                    break;
                }
                c.expect(',')?;
            }
        }
        c.expect('}')?;
        c.end()?;
        Self::from_sparse(count, sum, min, max, &buckets)
    }
}

/// Tiny cursor over the canonical histogram encoding — just enough JSON
/// for the fixed shape `to_json` emits, so `iconv-api` stays free of any
/// general JSON dependency.
struct Scan<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Scan<'a> {
    fn new(s: &'a str) -> Self {
        Self {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn expect(&mut self, ch: char) -> Result<(), String> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&(ch as u8)) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{ch}' at byte {}", self.pos))
        }
    }

    fn eat(&mut self, ch: char) -> bool {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&(ch as u8)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn key(&mut self, name: &str) -> Result<(), String> {
        self.skip_ws();
        let quoted = format!("\"{name}\"");
        if self.bytes[self.pos..].starts_with(quoted.as_bytes()) {
            self.pos += quoted.len();
            self.expect(':')
        } else {
            Err(format!("expected key {quoted} at byte {}", self.pos))
        }
    }

    fn u64(&mut self) -> Result<u64, String> {
        self.skip_ws();
        let start = self.pos;
        while self.bytes.get(self.pos).is_some_and(u8::is_ascii_digit) {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(format!("expected integer at byte {start}"));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| format!("integer out of range at byte {start}"))
    }

    fn field(&mut self, name: &str) -> Result<u64, String> {
        self.key(name)?;
        self.u64()
    }

    fn end(&mut self) -> Result<(), String> {
        self.skip_ws();
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(format!("trailing input at byte {}", self.pos))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_is_total_monotone_and_self_consistent() {
        // Every value below 64 is exact; bucket bounds invert the index.
        for v in 0..64u64 {
            assert_eq!(bucket_bounds(bucket_index(v)), (v, v));
        }
        // Probe octave edges and interior points across the whole domain.
        let mut prev = 0usize;
        let mut probes = vec![0u64];
        for m in 5..64u32 {
            let base = 1u64 << m;
            probes.extend([base - 1, base, base + 1, base + base / 2]);
        }
        probes.push(u64::MAX);
        probes.sort_unstable();
        for v in probes {
            let i = bucket_index(v);
            assert!(i < NUM_BUCKETS, "index {i} for {v}");
            assert!(i >= prev, "index not monotone at {v}");
            let (lo, hi) = bucket_bounds(i);
            assert!(lo <= v && v <= hi, "{v} outside bucket [{lo},{hi}]");
            // Relative width bound: width <= lo/32 above the linear region.
            if v >= 64 {
                assert!(hi - lo <= lo / 32, "bucket too wide at {v}");
            }
            prev = i;
        }
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn record_and_quantiles() {
        let mut h = LatencyHist::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 1000);
        let p50 = h.value_at_quantile(0.50);
        let p99 = h.value_at_quantile(0.99);
        assert!((500..=516).contains(&p50), "p50 {p50}");
        assert!((990..=1000).contains(&p99), "p99 {p99}");
        assert_eq!(h.value_at_quantile(1.0), 1000);
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = LatencyHist::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.value_at_quantile(0.99), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(LatencyHist::from_json(&h.to_json()).unwrap(), h);
    }

    #[test]
    fn from_sparse_rejects_malformed() {
        assert!(LatencyHist::from_sparse(1, 0, 0, 0, &[]).is_err());
        assert!(LatencyHist::from_sparse(1, 5, 5, 5, &[(NUM_BUCKETS, 1)]).is_err());
        assert!(LatencyHist::from_sparse(2, 5, 5, 5, &[(3, 1), (3, 1)]).is_err());
        assert!(LatencyHist::from_sparse(2, 5, 5, 5, &[(4, 1), (3, 1)]).is_err());
        assert!(LatencyHist::from_sparse(1, 5, 6, 5, &[(5, 1)]).is_err());
        assert!(LatencyHist::from_sparse(0, 1, 0, 0, &[]).is_err());
        assert!(LatencyHist::from_sparse(1, 5, 5, 5, &[(5, 1)]).is_ok());
    }
}
