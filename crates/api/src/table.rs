//! The benchmark request mix: the paper's workload table under the
//! standard four estimators, shared by `loadgen`, the `--via-serve` path,
//! and the `estimate_many` contract tests so they all agree on what "the
//! full table" means.

use iconv_core::ConvPass;
use iconv_gpusim::GpuAlgo;
use iconv_tpusim::SimMode;

use crate::gpuspec::GpuHwSpec;
use crate::spec::TpuHwSpec;
use crate::work::Work;

/// The CI pass-matrix leg names, in matrix order: the four
/// [`ConvPass`]es plus the `indirect` lowering of the forward pass.
pub const PASS_LEGS: [&str; 5] = ["forward", "wgrad", "dgrad", "transpose", "indirect"];

/// Every layer of the workload CNNs (batch 8), each under four estimators:
/// TPU channel-first, TPU explicit, GPU cuDNN-implicit, and GPU
/// channel-first+reuse. `small` restricts to the first model for quick
/// runs.
pub fn workload_works(small: bool) -> Vec<Work> {
    let models = models(small);
    let hw = TpuHwSpec::default();
    let mut works = Vec::new();
    for m in &models {
        for l in &m.layers {
            works.push(Work::TpuConv {
                shape: l.shape,
                mode: SimMode::ChannelFirst,
                hw,
            });
            works.push(Work::TpuConv {
                shape: l.shape,
                mode: SimMode::Explicit,
                hw,
            });
            works.push(Work::GpuConv {
                shape: l.shape,
                algo: GpuAlgo::CudnnImplicit,
                hw: GpuHwSpec::default(),
            });
            works.push(Work::GpuConv {
                shape: l.shape,
                algo: GpuAlgo::ChannelFirst { reuse: true },
                hw: GpuHwSpec::default(),
            });
        }
    }
    works
}

/// The workload table for one CI pass-matrix leg. `"forward"` is exactly
/// [`workload_works`] (same works, same order, same cache keys);
/// `"indirect"` runs the forward pass through the indirect-buffer lowering
/// on both engines (paired with the implicit baseline); the backward /
/// transposed legs run their pass under the standard four estimators.
/// Returns `None` for an unknown leg name.
pub fn pass_leg_works(small: bool, leg: &str) -> Option<Vec<Work>> {
    let pass = match leg {
        "forward" => return Some(workload_works(small)),
        "indirect" => {
            let models = models(small);
            let mut works = Vec::new();
            for m in &models {
                for l in &m.layers {
                    works.push(Work::TpuConv {
                        shape: l.shape,
                        mode: SimMode::Indirect,
                        hw: TpuHwSpec::default(),
                    });
                    works.push(Work::TpuConv {
                        shape: l.shape,
                        mode: SimMode::ChannelFirst,
                        hw: TpuHwSpec::default(),
                    });
                    works.push(Work::GpuConv {
                        shape: l.shape,
                        algo: GpuAlgo::Indirect,
                        hw: GpuHwSpec::default(),
                    });
                    works.push(Work::GpuConv {
                        shape: l.shape,
                        algo: GpuAlgo::ChannelFirst { reuse: true },
                        hw: GpuHwSpec::default(),
                    });
                }
            }
            return Some(works);
        }
        other => ConvPass::from_wire(other)?,
    };
    let models = models(small);
    let mut works = Vec::new();
    for m in &models {
        for l in &m.layers {
            works.push(Work::TpuPass {
                shape: l.shape,
                pass,
                mode: SimMode::ChannelFirst,
                hw: TpuHwSpec::default(),
            });
            works.push(Work::TpuPass {
                shape: l.shape,
                pass,
                mode: SimMode::Explicit,
                hw: TpuHwSpec::default(),
            });
            works.push(Work::GpuPass {
                shape: l.shape,
                pass,
                algo: GpuAlgo::CudnnImplicit,
                hw: GpuHwSpec::default(),
            });
            works.push(Work::GpuPass {
                shape: l.shape,
                pass,
                algo: GpuAlgo::ChannelFirst { reuse: true },
                hw: GpuHwSpec::default(),
            });
        }
    }
    Some(works)
}

fn models(small: bool) -> Vec<iconv_workloads::Model> {
    let models = iconv_workloads::all_models(8);
    if small {
        models.into_iter().take(1).collect()
    } else {
        models
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_nonempty_and_small_is_a_prefix() {
        let all = workload_works(false);
        let small = workload_works(true);
        assert!(small.len() >= 4);
        assert!(all.len() > small.len());
        assert_eq!(&all[..small.len()], &small[..]);
        // Four estimators per layer.
        assert_eq!(all.len() % 4, 0);
    }

    #[test]
    fn pass_legs_cover_the_matrix_and_forward_is_the_classic_table() {
        for leg in PASS_LEGS {
            let works = pass_leg_works(true, leg).expect(leg);
            assert!(!works.is_empty(), "{leg}");
            assert_eq!(works.len() % 4, 0, "{leg}");
        }
        assert_eq!(pass_leg_works(true, "forward"), Some(workload_works(true)));
        assert_eq!(pass_leg_works(true, "sideways"), None);
        // Legs never share cache keys with each other (distinct work).
        let mut keys = std::collections::BTreeSet::new();
        let mut n = 0;
        for leg in PASS_LEGS {
            for w in pass_leg_works(true, leg).unwrap() {
                // The indirect leg re-lists the implicit baseline, which the
                // forward leg also carries — dedup within, distinct across.
                keys.insert(crate::key::canonical_key(&w));
                n += 1;
            }
        }
        // forward cf + gpu cf appear again in the indirect leg: 2 dups per
        // layer across legs.
        let layers = pass_leg_works(true, "forward").unwrap().len() / 4;
        assert_eq!(keys.len(), n - 2 * layers, "cross-leg key accounting");
    }
}
