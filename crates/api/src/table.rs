//! The benchmark request mix: the paper's workload table under the
//! standard four estimators, shared by `loadgen`, the `--via-serve` path,
//! and the `estimate_many` contract tests so they all agree on what "the
//! full table" means.

use iconv_gpusim::GpuAlgo;
use iconv_tpusim::SimMode;

use crate::gpuspec::GpuHwSpec;
use crate::spec::TpuHwSpec;
use crate::work::Work;

/// Every layer of the workload CNNs (batch 8), each under four estimators:
/// TPU channel-first, TPU explicit, GPU cuDNN-implicit, and GPU
/// channel-first+reuse. `small` restricts to the first model for quick
/// runs.
pub fn workload_works(small: bool) -> Vec<Work> {
    let models = iconv_workloads::all_models(8);
    let models: Vec<_> = if small {
        models.into_iter().take(1).collect()
    } else {
        models
    };
    let hw = TpuHwSpec::default();
    let mut works = Vec::new();
    for m in &models {
        for l in &m.layers {
            works.push(Work::TpuConv {
                shape: l.shape,
                mode: SimMode::ChannelFirst,
                hw,
            });
            works.push(Work::TpuConv {
                shape: l.shape,
                mode: SimMode::Explicit,
                hw,
            });
            works.push(Work::GpuConv {
                shape: l.shape,
                algo: GpuAlgo::CudnnImplicit,
                hw: GpuHwSpec::default(),
            });
            works.push(Work::GpuConv {
                shape: l.shape,
                algo: GpuAlgo::ChannelFirst { reuse: true },
                hw: GpuHwSpec::default(),
            });
        }
    }
    works
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_nonempty_and_small_is_a_prefix() {
        let all = workload_works(false);
        let small = workload_works(true);
        assert!(small.len() >= 4);
        assert!(all.len() > small.len());
        assert_eq!(&all[..small.len()], &small[..]);
        // Four estimators per layer.
        assert_eq!(all.len() % 4, 0);
    }
}
