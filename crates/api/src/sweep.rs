//! Compact sweep specifications: base shape × axis ranges → `Work` items.
//!
//! The paper's evaluation is sweep-shaped (network × layer × layout ×
//! stride × hardware), so the `batch` protocol op accepts either an
//! explicit item array or a [`SweepSpec`]: one base layer plus value lists
//! for the axes that vary. [`SweepSpec::expand`] turns the spec into the
//! equivalent item array in a **fixed order** — `layouts × cis × strides ×
//! dilations`, innermost last — so a sweep and the hand-written item list
//! it denotes produce byte-identical response streams.

use std::fmt;

use iconv_gpusim::GpuAlgo;
use iconv_tensor::{ConvShape, Layout};
use iconv_tpusim::SimMode;

use crate::spec::TpuHwSpec;
use crate::work::Work;

/// Upper bound on the number of items one sweep (or batch) may expand to;
/// keeps a single request line from admitting unbounded work.
pub const MAX_SWEEP_ITEMS: usize = 16_384;

/// What the swept layers run on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SweepTarget {
    /// The TPU model under one lowering mode.
    Tpu {
        /// Lowering mode applied to every item.
        mode: SimMode,
        /// Hardware overrides applied to every item (the `layouts` axis
        /// overrides `hw.layout` per item).
        hw: TpuHwSpec,
    },
    /// The V100 tensor-core model under one algorithm.
    Gpu {
        /// Kernel algorithm applied to every item.
        algo: GpuAlgo,
    },
}

/// A compact batch: one base shape plus the axis values to sweep. Empty
/// axis lists mean "keep the base value".
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpec {
    /// The base layer; unswept fields (batch, spatial size, channel counts,
    /// padding) are taken from here verbatim.
    pub base: ConvShape,
    /// What to run each item on.
    pub target: SweepTarget,
    /// Input-channel values (empty: the base's `ci`).
    pub cis: Vec<usize>,
    /// Square stride values (empty: the base's `stride_h`/`stride_w`).
    pub strides: Vec<usize>,
    /// Square dilation values (empty: the base's `dil_h`/`dil_w`).
    pub dilations: Vec<usize>,
    /// IFMap layout values — TPU targets only (empty: the spec's `hw`
    /// layout, i.e. the chip default unless overridden).
    pub layouts: Vec<Layout>,
}

/// Why a sweep failed to expand.
#[derive(Debug, Clone, PartialEq)]
pub enum SweepError {
    /// The axis product exceeds [`MAX_SWEEP_ITEMS`].
    TooLarge(usize),
    /// A `layouts` axis was given for a GPU target (the GPU model fixes its
    /// own data layout).
    LayoutsOnGpu,
    /// A swept combination produced an invalid shape.
    BadShape {
        /// The offending (ci, stride, dilation) combination.
        ci: usize,
        /// Stride of the combination.
        stride: usize,
        /// Dilation of the combination.
        dilation: usize,
        /// The shape validator's message.
        detail: String,
    },
}

impl fmt::Display for SweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::TooLarge(n) => {
                write!(f, "sweep expands to {n} items (limit {MAX_SWEEP_ITEMS})")
            }
            Self::LayoutsOnGpu => write!(f, "\"layouts\" axis is only valid for tpu targets"),
            Self::BadShape {
                ci,
                stride,
                dilation,
                detail,
            } => write!(
                f,
                "invalid swept shape at ci={ci} stride={stride} dilation={dilation}: {detail}"
            ),
        }
    }
}

impl std::error::Error for SweepError {}

impl SweepSpec {
    /// A sweep with no varying axes (expands to exactly the base layer).
    pub fn new(base: ConvShape, target: SweepTarget) -> Self {
        Self {
            base,
            target,
            cis: Vec::new(),
            strides: Vec::new(),
            dilations: Vec::new(),
            layouts: Vec::new(),
        }
    }

    /// Expand to the equivalent explicit item list, in `layouts × cis ×
    /// strides × dilations` order (dilations innermost).
    ///
    /// # Errors
    ///
    /// See [`SweepError`]. Shape validation runs per combination, so a
    /// sweep either expands completely or reports the first bad
    /// combination.
    pub fn expand(&self) -> Result<Vec<Work>, SweepError> {
        if !self.layouts.is_empty() && matches!(self.target, SweepTarget::Gpu { .. }) {
            return Err(SweepError::LayoutsOnGpu);
        }
        // An empty axis keeps the base value; a non-square base stride or
        // dilation survives only when that axis is unswept.
        let cis: Vec<usize> = if self.cis.is_empty() {
            vec![self.base.ci]
        } else {
            self.cis.clone()
        };
        let strides: Vec<Option<usize>> = if self.strides.is_empty() {
            vec![None]
        } else {
            self.strides.iter().copied().map(Some).collect()
        };
        let dilations: Vec<Option<usize>> = if self.dilations.is_empty() {
            vec![None]
        } else {
            self.dilations.iter().copied().map(Some).collect()
        };
        let layouts: Vec<Option<Layout>> = if self.layouts.is_empty() {
            vec![None]
        } else {
            self.layouts.iter().copied().map(Some).collect()
        };
        let total = layouts.len() * cis.len() * strides.len() * dilations.len();
        if total > MAX_SWEEP_ITEMS {
            return Err(SweepError::TooLarge(total));
        }
        let mut out = Vec::with_capacity(total);
        for &layout in &layouts {
            for &ci in &cis {
                for &stride in &strides {
                    for &dilation in &dilations {
                        let b = &self.base;
                        let (sh, sw) = match stride {
                            Some(s) => (s, s),
                            None => (b.stride_h, b.stride_w),
                        };
                        let (dh, dw) = match dilation {
                            Some(d) => (d, d),
                            None => (b.dil_h, b.dil_w),
                        };
                        let shape = ConvShape::new(b.n, ci, b.hi, b.wi, b.co, b.hf, b.wf)
                            .stride_hw(sh, sw)
                            .pad_hw(b.pad_h, b.pad_w)
                            .pad_end_hw(b.pad_h_end, b.pad_w_end)
                            .dilation_hw(dh, dw)
                            .build()
                            .map_err(|e| SweepError::BadShape {
                                ci,
                                stride: sh,
                                dilation: dh,
                                detail: e.to_string(),
                            })?;
                        out.push(match self.target {
                            SweepTarget::Tpu { mode, hw } => {
                                let mut hw = hw;
                                if layout.is_some() {
                                    hw.layout = layout;
                                }
                                Work::TpuConv { shape, mode, hw }
                            }
                            SweepTarget::Gpu { algo } => Work::GpuConv {
                                shape,
                                algo,
                                hw: crate::GpuHwSpec::default(),
                            },
                        });
                    }
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> ConvShape {
        ConvShape::square(8, 64, 56, 64, 3, 1, 1).unwrap()
    }

    fn tpu_target() -> SweepTarget {
        SweepTarget::Tpu {
            mode: SimMode::ChannelFirst,
            hw: TpuHwSpec::default(),
        }
    }

    #[test]
    fn empty_axes_expand_to_the_base_layer() {
        let works = SweepSpec::new(base(), tpu_target()).expand().unwrap();
        assert_eq!(
            works,
            vec![Work::TpuConv {
                shape: base(),
                mode: SimMode::ChannelFirst,
                hw: TpuHwSpec::default(),
            }]
        );
    }

    #[test]
    fn expansion_order_is_layouts_cis_strides_dilations() {
        let mut spec = SweepSpec::new(base(), tpu_target());
        spec.cis = vec![3, 64];
        spec.strides = vec![1, 2];
        spec.layouts = vec![Layout::Hwcn, Layout::Nchw];
        let works = spec.expand().unwrap();
        assert_eq!(works.len(), 8);
        // First half HWCN, second half NCHW; within a layout, ci varies
        // slower than stride.
        let fields: Vec<(Layout, usize, usize)> = works
            .iter()
            .map(|w| match w {
                Work::TpuConv { shape, hw, .. } => (hw.layout.unwrap(), shape.ci, shape.stride_h),
                _ => panic!("wrong work kind"),
            })
            .collect();
        assert_eq!(fields[0], (Layout::Hwcn, 3, 1));
        assert_eq!(fields[1], (Layout::Hwcn, 3, 2));
        assert_eq!(fields[2], (Layout::Hwcn, 64, 1));
        assert_eq!(fields[3], (Layout::Hwcn, 64, 2));
        assert_eq!(fields[4], (Layout::Nchw, 3, 1));
        assert_eq!(fields[7], (Layout::Nchw, 64, 2));
    }

    #[test]
    fn gpu_sweeps_reject_layout_axes_and_keep_algos() {
        let mut spec = SweepSpec::new(
            base(),
            SweepTarget::Gpu {
                algo: GpuAlgo::CudnnImplicit,
            },
        );
        spec.strides = vec![1, 2, 3];
        let works = spec.expand().unwrap();
        assert_eq!(works.len(), 3);
        assert!(works.iter().all(|w| matches!(
            w,
            Work::GpuConv {
                algo: GpuAlgo::CudnnImplicit,
                ..
            }
        )));
        spec.layouts = vec![Layout::Nchw];
        assert_eq!(spec.expand(), Err(SweepError::LayoutsOnGpu));
    }

    #[test]
    fn oversized_and_invalid_sweeps_are_typed_errors() {
        let mut spec = SweepSpec::new(base(), tpu_target());
        spec.cis = (1..=200).collect();
        spec.strides = (1..=10).collect();
        spec.dilations = (1..=10).collect();
        assert_eq!(spec.expand(), Err(SweepError::TooLarge(20_000)));

        let mut spec = SweepSpec::new(base(), tpu_target());
        spec.dilations = vec![1, 1000]; // dilated filter larger than input
        match spec.expand() {
            Err(SweepError::BadShape { dilation: 1000, .. }) => {}
            other => panic!("expected BadShape, got {other:?}"),
        }
    }

    #[test]
    fn unswept_axes_keep_non_square_base_values() {
        let rect = ConvShape::new(1, 16, 32, 32, 16, 3, 3)
            .stride_hw(2, 1)
            .build()
            .unwrap();
        let mut spec = SweepSpec::new(rect, tpu_target());
        spec.cis = vec![16, 32];
        let works = spec.expand().unwrap();
        for w in &works {
            let Work::TpuConv { shape, .. } = w else {
                panic!("wrong kind")
            };
            assert_eq!((shape.stride_h, shape.stride_w), (2, 1));
        }
    }
}
