//! `iconv-api` — the one shared request vocabulary.
//!
//! Before this crate existed, the "what do you want simulated?" types lived
//! in `iconv-serve`'s protocol module and every other consumer (the bench
//! summary sweeps, the load generator, the facade) either depended on the
//! whole service crate or re-declared parallel structs. This crate extracts
//! the vocabulary into a leaf that everything can share:
//!
//! - [`TpuChip`] / [`TpuHwSpec`]: hardware selection plus overrides, with
//!   [`TpuHwSpec::resolve`] producing a **validated** `TpuConfig` (via the
//!   simulator's typed config builder) so out-of-domain overrides surface as
//!   [`iconv_tpusim::TpuConfigError`] instead of panics downstream.
//! - [`Work`]: one unit of simulation (TPU conv, TPU GEMM, GPU conv).
//! - [`canonical_key`]: the injective cache-key rendering of a [`Work`] —
//!   requests that denote the same simulation collapse to the same key.
//! - [`SweepSpec`]: a compact batch description (base shape × axis ranges)
//!   that [`SweepSpec::expand`]s into concrete [`Work`] items in a fixed,
//!   documented order — the `batch` protocol op's "sweep" form.
//! - [`table::workload_works`]: the paper's full workload table under the
//!   standard four estimators, shared by `loadgen` and the contract tests.
//! - [`stable_hash64`] / [`shard_of`] / [`HashRing`]: the process-stable
//!   key hash shared by the striped in-process cache and the `routed`
//!   consistent-hash fleet, so shard placement is identical everywhere a
//!   canonical key is hashed.
//! - [`hist::LatencyHist`]: the fixed-layout HDR-style latency histogram —
//!   exact counts, mergeable across connections and backends, bounded
//!   quantile error — shared by the server's `stats` op and the open-loop
//!   capacity harness.
//! - [`zipf::ZipfSampler`]: the deterministic seeded Zipfian key sampler
//!   the capacity harness skews its canonical-key population with (the
//!   splitmix primitives are re-exported from `iconv-faults`).
//!
//! - [`proto`]: the NDJSON wire codecs themselves — one typed [`proto::Op`]
//!   registry plus request/response structs, shared verbatim by the server,
//!   the clients, and the `routed` front-end (they ride on [`json`], the
//!   hand-rolled panic-free parser). Sockets stay in `iconv-serve`; this
//!   crate still knows nothing about I/O.

#![warn(missing_docs)]

pub mod gpuspec;
pub mod hist;
pub mod json;
pub mod key;
pub mod proto;
pub mod ring;
pub mod spec;
pub mod sweep;
pub mod table;
pub mod tuned;
pub mod work;
pub mod zipf;

pub use gpuspec::{resolve_gpu, GpuHwSpec};
pub use hist::LatencyHist;
pub use key::canonical_key;
pub use ring::{shard_of, stable_hash64, HashRing};
pub use spec::{resolve_tpu, TpuChip, TpuHwSpec};
pub use sweep::{SweepError, SweepSpec, SweepTarget, MAX_SWEEP_ITEMS};
pub use tuned::{TuneTarget, TunedConfig};
pub use work::Work;
pub use zipf::ZipfSampler;
