//! One unit of simulation work.

use iconv_core::ConvPass;
use iconv_gpusim::GpuAlgo;
use iconv_tensor::ConvShape;
use iconv_tpusim::SimMode;

use crate::gpuspec::GpuHwSpec;
use crate::spec::TpuHwSpec;
use crate::tuned::TuneTarget;

/// The simulation a request asks for.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Work {
    /// A convolution layer on the TPU model.
    TpuConv {
        /// Layer shape.
        shape: ConvShape,
        /// Lowering mode.
        mode: SimMode,
        /// Hardware overrides.
        hw: TpuHwSpec,
    },
    /// A plain GEMM on the TPU model.
    TpuGemm {
        /// GEMM M.
        m: usize,
        /// GEMM N.
        n: usize,
        /// GEMM K.
        k: usize,
        /// Hardware overrides.
        hw: TpuHwSpec,
    },
    /// A non-forward convolution pass (wgrad / dgrad / transposed conv) on
    /// the TPU model. `ConvPass::Forward` denotes exactly the same
    /// simulation as [`Work::TpuConv`] and shares its cache key.
    TpuPass {
        /// Layer shape (always the *forward* convolution's shape; backward
        /// passes derive their GEMM views from it).
        shape: ConvShape,
        /// Which pass to run.
        pass: ConvPass,
        /// Lowering mode.
        mode: SimMode,
        /// Hardware overrides.
        hw: TpuHwSpec,
    },
    /// A convolution layer on the V100 tensor-core model.
    GpuConv {
        /// Layer shape.
        shape: ConvShape,
        /// Kernel algorithm.
        algo: GpuAlgo,
        /// Hardware overrides.
        hw: GpuHwSpec,
    },
    /// A non-forward convolution pass on the V100 tensor-core model (the
    /// GPU counterpart of [`Work::TpuPass`]).
    GpuPass {
        /// Layer shape (the forward convolution's shape).
        shape: ConvShape,
        /// Which pass to run.
        pass: ConvPass,
        /// Kernel algorithm.
        algo: GpuAlgo,
        /// Hardware overrides.
        hw: GpuHwSpec,
    },
    /// A design-space search: find the best configuration for this layer
    /// on this target. Deterministic (pure function of shape × target), so
    /// it is cached and single-flighted exactly like any estimate.
    Tune {
        /// Layer shape.
        shape: ConvShape,
        /// Simulator searched, plus its fixed constraints.
        target: TuneTarget,
    },
}
