//! Stable key hashing and the consistent-hash ring.
//!
//! Both layers of the sharded service pick a home for a canonical key by
//! hashing it: the in-process `StripedCache` selects one of N lock shards
//! ([`shard_of`]), and the `routed` front-end selects one of N backend
//! processes ([`HashRing::route`]). Neither can use `std`'s `RandomState`
//! hasher — shard assignment must be identical across processes and across
//! restarts so a router and its backends agree on key placement, and so
//! per-shard statistics are reproducible run to run. [`stable_hash64`] is
//! therefore a fixed function: FNV-1a over the key bytes followed by a
//! 64-bit avalanche finalizer (splitmix64's mixer) to spread FNV's
//! low-entropy high bits before they are reduced modulo a small shard
//! count.
//!
//! The ring uses virtual nodes — each backend owns `vnodes` pseudo-random
//! points on the 64-bit circle — so three backends split key space roughly
//! evenly, and removing one backend reassigns *only* that backend's keys
//! (the classic consistent-hashing property; the other backends' caches
//! stay hot).

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Hash a key to 64 bits, stably: the same bytes hash identically in every
/// process, on every run, forever. FNV-1a with a splitmix64 finalizer.
pub fn stable_hash64(key: &str) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in key.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    // splitmix64 finalizer: FNV alone is weak in its high bits, and both
    // shard selection (modulo) and ring placement (full-width compare)
    // need every bit to carry entropy.
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^= h >> 31;
    h
}

/// The shard a key lives in, for an `n_shards`-way striped structure.
///
/// # Panics
///
/// Panics if `n_shards` is zero.
pub fn shard_of(key: &str, n_shards: usize) -> usize {
    assert!(n_shards > 0, "shard_of: n_shards must be non-zero");
    // Multiply-shift reduction (Lemire): maps the full 64-bit range onto
    // [0, n) as evenly as a modulo, but costs one widening multiply
    // instead of a hardware division — this sits on the cache hit path.
    // Sound here because the splitmix finalizer already spread the
    // entropy across all 64 bits.
    ((u128::from(stable_hash64(key)) * n_shards as u128) >> 64) as usize
}

/// A consistent-hash ring over `n_backends` backends, each represented by
/// `vnodes` points on the 64-bit circle.
///
/// Construction is deterministic: point `j` of backend `i` sits at
/// `stable_hash64("vnode;<i>;<j>")`, so every router instance built with
/// the same `(n_backends, vnodes)` pair routes identically.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// `(position, backend)` pairs sorted by position.
    points: Vec<(u64, usize)>,
    n_backends: usize,
}

impl HashRing {
    /// Build a ring. `vnodes` trades balance for memory; 64 keeps the
    /// worst/best backend load ratio under ~1.5 for small fleets.
    ///
    /// # Panics
    ///
    /// Panics if `n_backends` or `vnodes` is zero.
    pub fn new(n_backends: usize, vnodes: usize) -> Self {
        assert!(n_backends > 0, "HashRing: need at least one backend");
        assert!(vnodes > 0, "HashRing: need at least one vnode per backend");
        let mut points = Vec::with_capacity(n_backends * vnodes);
        for backend in 0..n_backends {
            for j in 0..vnodes {
                points.push((stable_hash64(&format!("vnode;{backend};{j}")), backend));
            }
        }
        points.sort_unstable();
        Self { points, n_backends }
    }

    /// Number of backends the ring was built over.
    pub fn n_backends(&self) -> usize {
        self.n_backends
    }

    /// The backend owning `key`: the first ring point at or clockwise of
    /// the key's hash (wrapping past zero).
    pub fn route(&self, key: &str) -> usize {
        let h = stable_hash64(key);
        let idx = self.points.partition_point(|&(p, _)| p < h);
        self.points[idx % self.points.len()].1
    }

    /// The backends to try for `key`, primary first, then each remaining
    /// backend in the order its first point appears clockwise of the key.
    /// Every backend appears exactly once, so walking this list is a full
    /// failover sweep; a healthy fleet only ever uses element 0, which
    /// keeps each backend's cache hot for its own key range.
    pub fn failover_order(&self, key: &str) -> Vec<usize> {
        let h = stable_hash64(key);
        let start = self.points.partition_point(|&(p, _)| p < h);
        let mut order = Vec::with_capacity(self.n_backends);
        let mut seen = vec![false; self.n_backends];
        for i in 0..self.points.len() {
            let backend = self.points[(start + i) % self.points.len()].1;
            if !seen[backend] {
                seen[backend] = true;
                order.push(backend);
                if order.len() == self.n_backends {
                    break;
                }
            }
        }
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_hash_is_fixed_forever() {
        // Pinned values: a change here silently reshuffles every striped
        // cache and every routed fleet, so the function is frozen by test.
        assert_eq!(stable_hash64(""), 0xf52a_15e9_a9b5_e89b);
        assert_eq!(
            stable_hash64("tpu-v2;conv;explicit;n1"),
            0xb6b9_3eb8_2e4b_f6c0
        );
        assert_ne!(stable_hash64("a"), stable_hash64("b"));
    }

    #[test]
    fn shard_of_spreads_keys() {
        let n = 16;
        let mut counts = vec![0usize; n];
        for i in 0..4096 {
            counts[shard_of(&format!("key-{i}"), n)] += 1;
        }
        // Expect ~256 per shard; allow a generous band.
        for (s, &c) in counts.iter().enumerate() {
            assert!(
                (128..=384).contains(&c),
                "shard {s} got {c} of 4096 keys — hash badly skewed"
            );
        }
    }

    #[test]
    fn ring_routes_consistently_and_evenly() {
        let ring = HashRing::new(3, 64);
        let mut counts = [0usize; 3];
        for i in 0..3000 {
            let key = format!("canonical-key-{i}");
            let b = ring.route(&key);
            assert_eq!(b, ring.route(&key), "routing must be deterministic");
            counts[b] += 1;
        }
        for (b, &c) in counts.iter().enumerate() {
            assert!(
                (500..=1700).contains(&c),
                "backend {b} owns {c} of 3000 keys — ring badly unbalanced"
            );
        }
    }

    #[test]
    fn failover_order_is_a_permutation_led_by_the_primary() {
        let ring = HashRing::new(5, 32);
        for i in 0..100 {
            let key = format!("k{i}");
            let order = ring.failover_order(&key);
            assert_eq!(order[0], ring.route(&key));
            let mut sorted = order.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2, 3, 4], "not a permutation: {order:?}");
        }
    }

    #[test]
    fn losing_a_backend_moves_only_its_keys() {
        // The consistent-hashing property that keeps surviving backends'
        // caches hot: with backend 1 down, every key owned by 0 or 2 keeps
        // its assignment (failover only walks forward from the primary).
        let ring = HashRing::new(3, 64);
        for i in 0..1000 {
            let key = format!("k{i}");
            let primary = ring.route(&key);
            let order = ring.failover_order(&key);
            let down = 1usize;
            let routed = *order
                .iter()
                .find(|&&b| b != down)
                .expect("some backend is up");
            if primary != down {
                assert_eq!(routed, primary, "healthy key {key} moved");
            }
        }
    }
}
