//! Deterministic seeded Zipfian rank sampler.
//!
//! The capacity harness replays the workload table under realistic key
//! skew: a few hot layers absorb most of the traffic, the tail is cold.
//! This sampler draws ranks from a Zipf(s) distribution over a fixed
//! population using the same *stateless* discipline as the `iconv-faults`
//! decision streams: the `n`-th draw is a pure function of `(seed, n)`
//! via the splitmix64 finalizer, so a schedule built from indexed draws is
//! byte-identical for the same seed **independent of thread interleaving**
//! — exactly the property the determinism tests pin.
//!
//! The PRNG primitives themselves ([`mix64`], [`unit_f64`],
//! [`GOLDEN_GAMMA`], [`XorShift64`]) are re-exported from `iconv-faults`
//! (a dependency-free leaf crate), so `iconv-api` stays std-only.

pub use iconv_faults::{mix64, unit_f64, XorShift64, GOLDEN_GAMMA};

/// A Zipf(s) sampler over ranks `0..n` with precomputed cumulative
/// weights: rank `r` has weight `1 / (r+1)^s`. `s = 0` degenerates to
/// uniform; `s ≈ 1` is the classic web-traffic skew.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
    seed: u64,
}

impl ZipfSampler {
    /// Build a sampler over a population of `n` ranks with exponent `s`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s` is negative or non-finite.
    #[must_use]
    pub fn new(n: usize, s: f64, seed: u64) -> Self {
        assert!(n > 0, "Zipf population must be non-empty");
        assert!(
            s.is_finite() && s >= 0.0,
            "Zipf exponent must be finite and >= 0"
        );
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for r in 0..n {
            acc += 1.0 / ((r + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        // Guard the top against floating rounding: the last cumulative
        // weight must be exactly 1 so every draw lands in range.
        *cdf.last_mut().expect("non-empty") = 1.0;
        Self { cdf, seed }
    }

    /// Population size.
    #[must_use]
    pub fn population(&self) -> usize {
        self.cdf.len()
    }

    /// The seed this sampler draws under.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The `draw_index`-th rank of the stream: a pure function of
    /// `(seed, draw_index)`, O(log n), safe to evaluate from any thread in
    /// any order.
    #[must_use]
    pub fn rank_at(&self, draw_index: u64) -> usize {
        let u = unit_f64(mix64(self.seed ^ draw_index.wrapping_mul(GOLDEN_GAMMA)));
        let r = self.cdf.partition_point(|&c| c <= u);
        r.min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn draws_are_in_range_and_deterministic() {
        let a = ZipfSampler::new(57, 1.1, 42);
        let b = ZipfSampler::new(57, 1.1, 42);
        for i in 0..10_000 {
            let r = a.rank_at(i);
            assert!(r < 57);
            assert_eq!(r, b.rank_at(i));
        }
    }

    #[test]
    fn skew_concentrates_mass_on_low_ranks() {
        let z = ZipfSampler::new(100, 1.1, 7);
        let n = 20_000u64;
        let head = (0..n).filter(|&i| z.rank_at(i) < 10).count();
        // Zipf(1.1) over 100 ranks puts ~65% of mass on the top 10.
        assert!(head as f64 > 0.5 * n as f64, "head draws {head}/{n}");
        // Uniform (s = 0) must not.
        let u = ZipfSampler::new(100, 0.0, 7);
        let uhead = (0..n).filter(|&i| u.rank_at(i) < 10).count();
        assert!((uhead as f64) < 0.2 * n as f64, "uniform head {uhead}/{n}");
    }

    #[test]
    fn different_seeds_differ() {
        let a = ZipfSampler::new(64, 1.0, 1);
        let b = ZipfSampler::new(64, 1.0, 2);
        let same = (0..1000).filter(|&i| a.rank_at(i) == b.rank_at(i)).count();
        assert!(same < 900, "seeds produce near-identical streams: {same}");
    }
}
