//! Property battery for the HDR-style latency histogram, against exact
//! oracles:
//!
//! * quantiles vs. a sorted-vector oracle — the estimate never undershoots
//!   the true order statistic and overshoots by at most the width of the
//!   bucket the true value lives in;
//! * `merge(a, b)` is exactly equivalent to recording both streams into
//!   one histogram (full structural equality, not just matching counts);
//! * the compact JSON encoding round-trips to an identical histogram.
//!
//! Runs under the offline `proptest` shim: deterministic seed, no
//! shrinking — a failing case prints its inputs via the assertion message.

use proptest::prelude::*;

use iconv_api::hist::{bucket_bounds, bucket_index, LatencyHist};
use iconv_api::zipf::mix64;

/// Derive a pseudo-random value stream from `(seed, len)`, spanning many
/// orders of magnitude: each element's top bits pick a shift so streams
/// mix unit-width linear-region values with huge log-region ones.
fn stream(seed: u64, len: usize) -> Vec<u64> {
    (0..len as u64)
        .map(|i| {
            let r = mix64(seed ^ i);
            let shift = (r >> 58) % 60; // 0..=59: values from 64 bits down to ~4
            r >> shift
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Quantile estimates vs. the exact sorted-vector order statistic.
    #[test]
    fn quantiles_match_sorted_oracle(seed in 0u64..u64::MAX, len in 1usize..500) {
        let values = stream(seed, len);
        let mut h = LatencyHist::new();
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        prop_assert_eq!(h.count(), len as u64);
        prop_assert_eq!(h.min(), sorted[0]);
        prop_assert_eq!(h.max(), *sorted.last().unwrap());
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0] {
            let rank = ((q * len as f64).ceil() as usize).clamp(1, len);
            let exact = sorted[rank - 1];
            let est = h.value_at_quantile(q);
            // Never undershoots the true order statistic...
            prop_assert!(est >= exact, "q={q}: est {est} < exact {exact}");
            // ...and overshoots by at most the width of exact's bucket.
            let (_, hi) = bucket_bounds(bucket_index(exact));
            prop_assert!(est <= hi, "q={q}: est {est} > bucket hi {hi} of {exact}");
        }
    }

    /// merge(a, b) ≡ record-all: structurally identical histograms.
    #[test]
    fn merge_is_record_all(seed_a in 0u64..u64::MAX, seed_b in 0u64..u64::MAX,
                           len_a in 0usize..300, len_b in 0usize..300) {
        let (va, vb) = (stream(seed_a, len_a), stream(seed_b, len_b));
        let mut ha = LatencyHist::new();
        let mut hb = LatencyHist::new();
        let mut all = LatencyHist::new();
        for &v in &va {
            ha.record(v);
            all.record(v);
        }
        for &v in &vb {
            hb.record(v);
            all.record(v);
        }
        let mut merged = ha.clone();
        merged.merge(&hb);
        prop_assert_eq!(&merged, &all);
        // Merge is symmetric.
        let mut other_way = hb;
        other_way.merge(&ha);
        prop_assert_eq!(&other_way, &all);
    }

    /// to_json → from_json is the identity (empty case covered by len 0).
    #[test]
    fn json_roundtrip_identity(seed in 0u64..u64::MAX, len in 0usize..300) {
        let mut h = LatencyHist::new();
        for &v in &stream(seed, len) {
            h.record(v);
        }
        let encoded = h.to_json();
        let back = LatencyHist::from_json(&encoded).expect("canonical encoding parses");
        prop_assert_eq!(&back, &h);
        // And re-encoding is byte-stable.
        prop_assert_eq!(back.to_json(), encoded);
    }
}
