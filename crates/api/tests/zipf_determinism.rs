//! Determinism contract for the Zipfian sampler: the key sequence is a
//! pure function of `(seed, draw_index)` — byte-identical across runs and
//! **independent of thread interleaving**, the same discipline the
//! `iconv-faults` decision streams pin.

use iconv_api::ZipfSampler;

const N: usize = 228; // the small workload table's population size ballpark
const DRAWS: u64 = 50_000;

#[test]
fn same_seed_same_rank_sequence() {
    let a = ZipfSampler::new(N, 1.1, 0xC0FFEE);
    let b = ZipfSampler::new(N, 1.1, 0xC0FFEE);
    let seq_a: Vec<usize> = (0..DRAWS).map(|i| a.rank_at(i)).collect();
    let seq_b: Vec<usize> = (0..DRAWS).map(|i| b.rank_at(i)).collect();
    assert_eq!(seq_a, seq_b);
}

/// Four threads draw disjoint, interleaved slices of the stream in
/// whatever order the scheduler serves them; reassembled, the sequence
/// equals the single-threaded one exactly.
#[test]
fn rank_stream_is_interleaving_independent() {
    let z = ZipfSampler::new(N, 1.1, 42);
    let sequential: Vec<usize> = (0..DRAWS).map(|i| z.rank_at(i)).collect();

    let threads = 4u64;
    let mut reassembled = vec![usize::MAX; DRAWS as usize];
    let chunks: Vec<(u64, Vec<usize>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let z = &z;
                scope.spawn(move || {
                    // Stride-t slice, walked *backwards* so no thread's
                    // access order matches the sequential order.
                    let mut mine: Vec<(u64, usize)> = (0..DRAWS)
                        .filter(|i| i % threads == t)
                        .rev()
                        .map(|i| (i, z.rank_at(i)))
                        .collect();
                    mine.reverse();
                    (t, mine.into_iter().map(|(_, r)| r).collect())
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for (t, ranks) in chunks {
        for (k, r) in ranks.into_iter().enumerate() {
            reassembled[(k as u64 * threads + t) as usize] = r;
        }
    }
    assert_eq!(reassembled, sequential);
}

#[test]
fn draws_cover_the_population_head_heavily() {
    let z = ZipfSampler::new(N, 1.1, 7);
    let mut counts = vec![0u64; N];
    for i in 0..DRAWS {
        counts[z.rank_at(i)] += 1;
    }
    // Rank 0 is the hottest key and the head dominates the tail.
    let hottest = counts.iter().copied().max().unwrap();
    assert_eq!(counts[0], hottest, "rank 0 must be the hottest");
    let head: u64 = counts[..N / 10].iter().sum();
    assert!(
        head > DRAWS / 2,
        "top decile drew {head}/{DRAWS}, expected Zipf head dominance"
    );
}
