//! Pins the fault plan's determinism contract: the same seed produces the
//! same per-site schedule (byte-identical log render), different seeds
//! diverge, and per-site streams are independent of cross-site
//! interleaving and of threading.

use std::sync::Arc;

use iconv_faults::{FaultPlan, FaultPoint, FaultSite};
use proptest::prelude::*;

fn drive_sequential(plan: &FaultPlan, per_site: u64) {
    for site in FaultSite::ALL {
        for _ in 0..per_site {
            if plan.decide(site).is_some() {
                plan.observe(site);
            }
        }
    }
}

#[test]
fn same_seed_same_schedule_byte_identical() {
    let a = FaultPlan::parse("seed=42,rate=0.05").unwrap();
    let b = FaultPlan::parse("seed=42,rate=0.05").unwrap();
    drive_sequential(&a, 2000);
    drive_sequential(&b, 2000);
    let (la, lb) = (a.log_render(), b.log_render());
    assert!(!la.is_empty(), "0.05 over 12000 draws must fire");
    assert_eq!(la, lb, "same seed must replay byte-identically");
    assert!(a.counters().conserved());
    assert_eq!(a.counters(), b.counters());
}

#[test]
fn different_seeds_diverge() {
    let a = FaultPlan::parse("seed=42,rate=0.05").unwrap();
    let b = FaultPlan::parse("seed=43,rate=0.05").unwrap();
    drive_sequential(&a, 2000);
    drive_sequential(&b, 2000);
    assert_ne!(a.log_render(), b.log_render());
}

#[test]
fn interleaving_order_does_not_change_the_schedule() {
    // Round-robin across sites vs. site-major order: per-site streams
    // depend only on per-site consultation counts.
    let a = FaultPlan::parse("seed=9,rate=0.1").unwrap();
    let b = FaultPlan::parse("seed=9,rate=0.1").unwrap();
    drive_sequential(&a, 500);
    for _ in 0..500 {
        for site in FaultSite::ALL {
            if b.decide(site).is_some() {
                b.observe(site);
            }
        }
    }
    assert_eq!(a.log_render(), b.log_render());
}

#[test]
fn threaded_consultation_matches_sequential() {
    // One thread per site, racing freely: the sorted log must equal the
    // sequential one because each site's stream is indexed, not ordered.
    let seq = FaultPlan::parse("seed=77,rate=0.2").unwrap();
    drive_sequential(&seq, 1000);

    let par = Arc::new(FaultPlan::parse("seed=77,rate=0.2").unwrap());
    std::thread::scope(|scope| {
        for site in FaultSite::ALL {
            let par = Arc::clone(&par);
            scope.spawn(move || {
                for _ in 0..1000 {
                    if par.decide(site).is_some() {
                        par.observe(site);
                    }
                }
            });
        }
    });
    assert_eq!(seq.log_render(), par.log_render());
    assert!(par.counters().conserved());
}

#[test]
fn observed_rate_tracks_configured_rate() {
    let plan = FaultPlan::parse("seed=5,rate=0.05").unwrap();
    let n = 20_000u64;
    let mut fired = 0u64;
    for _ in 0..n {
        if plan.decide(FaultSite::SockWrite).is_some() {
            plan.observe(FaultSite::SockWrite);
            fired += 1;
        }
    }
    let rate = fired as f64 / n as f64;
    assert!(
        (0.03..0.07).contains(&rate),
        "rate 0.05 measured as {rate:.4}"
    );
}

proptest! {
    #[test]
    fn any_seed_replays_identically(seed in 0u64..u64::MAX, per_site in 1u64..300) {
        let a = FaultPlan::parse(&format!("seed={seed},rate=0.25")).unwrap();
        let b = FaultPlan::parse(&format!("seed={seed},rate=0.25")).unwrap();
        drive_sequential(&a, per_site);
        drive_sequential(&b, per_site);
        prop_assert_eq!(a.log_render(), b.log_render());
        prop_assert!(a.counters().conserved());
    }
}
