//! Proves the "zero cost when cold" claim for the fault layer: consulting
//! a seam that does not fire performs **zero** heap allocations, so an
//! armed-but-quiet plan (and a fortiori a disarmed or absent one) adds no
//! allocator traffic to the serve hot path.
//!
//! Same counting-`#[global_allocator]` idiom as
//! `crates/systolic/tests/alloc_counting.rs`: the test binary is
//! single-threaded by construction (one `#[test]` fn), so the global
//! counter is not perturbed by unrelated test threads.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use iconv_faults::{FaultPlan, FaultPoint, FaultSite};

struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs_during<R>(f: impl FnOnce() -> R) -> (R, usize) {
    let before = ALLOCS.load(Ordering::Relaxed);
    let r = f();
    (r, ALLOCS.load(Ordering::Relaxed) - before)
}

#[test]
fn cold_decide_paths_are_zero_alloc() {
    // Armed, every rate zero: the decide path hashes and compares, never
    // allocates.
    let quiet = FaultPlan::parse("seed=42,rate=0").expect("parse");
    // Disarmed entirely: the earliest-out path.
    let disarmed = FaultPlan::parse("seed=42,rate=1").expect("parse");
    disarmed.disarm();

    let (_, n) = allocs_during(|| {
        for _ in 0..1000 {
            for site in FaultSite::ALL {
                assert!(quiet.decide(site).is_none());
                assert!(disarmed.decide(site).is_none());
            }
        }
    });
    assert_eq!(n, 0, "cold decide allocated {n} times");

    // observe() and counters() are also allocation-free, so the seams can
    // account faults without allocator traffic either.
    let hot = FaultPlan::parse("seed=42,rate=1").expect("parse");
    let inj = hot.decide(FaultSite::Delay).expect("rate=1 fires");
    let (_, n) = allocs_during(|| {
        hot.observe(inj.site());
        let c = hot.counters();
        assert!(c.conserved());
    });
    assert_eq!(n, 0, "observe/counters allocated {n} times");
}
