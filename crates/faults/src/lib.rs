//! # iconv-faults
//!
//! Deterministic, seeded fault injection for the `iconv-serve` chaos
//! harness.
//!
//! The serving layer's resilience story follows the same shape as the
//! paper's algorithmic one: one well-placed indirection layer instead of
//! scattered special cases. Every adverse-I/O behaviour the stack must
//! survive — socket read/write errors, short writes, slow-loris stalls,
//! worker panics, deadline storms — is expressed as an [`Injection`]
//! decided at a named [`FaultSite`] by a [`FaultPoint`], and the serve
//! stack consults that single surface at its I/O and dispatch seams.
//!
//! * **Unarmed is free.** A production stack holds `None` instead of a
//!   fault point; the seams are a branch on an `Option` and this crate is
//!   never called. The armed-but-cold path (`decide` returning `None`)
//!   performs zero heap allocations — pinned by the counting-allocator
//!   test in `tests/alloc_counting.rs`.
//! * **Seeded and reproducible.** [`FaultPlan`] derives every decision
//!   from `mix64(seed, site, consultation-index)` — a pure function — so
//!   the per-site fault schedule is fixed by the seed (see
//!   [`plan`] for the exact contract) and `chaosgen` can assert two runs
//!   replay byte-identically.
//! * **Conserving.** Chosen faults are counted at decision
//!   ([`FaultPlan::decide`]) and again at application
//!   ([`FaultPlan::observe`]); `injected == observed` is the
//!   harness-gated invariant that no decision is silently dropped.
//!
//! The PRNG is in-tree ([`rng`]): the offline build environment has no
//! `rand`, and a fully specified generator is what makes the schedule a
//! contract rather than an accident.

pub mod plan;
pub mod rng;

pub use plan::{
    FaultConfig, FaultCounters, FaultPlan, FaultPoint, FaultSite, Injection, LogEntry, N_SITES,
};
pub use rng::{mix64, unit_f64, XorShift64, GOLDEN_GAMMA};
