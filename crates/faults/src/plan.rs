//! The seeded fault plan: per-site injection rates, a deterministic
//! schedule, and conservation counters.
//!
//! # Determinism contract
//!
//! Each [`FaultSite`] owns an independent decision stream. The n-th
//! consultation of a site draws `mix64(seed ⊕ site_salt ⊕ n·γ)` — a pure
//! function of `(seed, site, n)` — so the set of faulted indices per site
//! is fixed by the seed alone, regardless of how threads interleave
//! *across* sites. A driver that issues a deterministic call sequence
//! (e.g. `chaosgen`'s lockstep replay) therefore reproduces the injected
//! fault sequence byte-identically run over run; concurrent drivers still
//! get identical *per-site* schedules for identical per-site call counts.
//!
//! # Conservation contract
//!
//! [`FaultPlan::decide`] counts an **injected** fault at the moment it is
//! chosen; the code that applies the fault must call
//! [`FaultPlan::observe`] exactly once when it does. At any quiescent
//! point `injected == observed` per site — a decision is never dropped on
//! the floor. `chaosgen` and the CI chaos job gate on exactly this
//! ([`FaultCounters::conserved`]).

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

use crate::rng::{mix64, unit_f64, GOLDEN_GAMMA};

/// Number of distinct injection sites (the length of [`FaultSite::ALL`]).
pub const N_SITES: usize = 8;

/// An injection seam the serve stack consults.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// Per request line read from a socket: a hard read error that drops
    /// the connection.
    SockRead,
    /// Per response line written to a socket: a hard write error that
    /// drops the connection.
    SockWrite,
    /// Per response line: a short write — a truncated prefix reaches the
    /// client, then the connection drops.
    PartialWrite,
    /// Per response line: a slow-loris stall before the bytes go out.
    Delay,
    /// Per dispatched simulation: the worker panics mid-job.
    WorkerPanic,
    /// Per dispatched simulation: the deadline check fires as if the
    /// request's deadline had expired in the queue.
    DeadlineStorm,
    /// Per request forwarded from the router to a backend: the send fails
    /// as if the backend connection dropped mid-write.
    RouteSend,
    /// Per backend response relayed by the router: the receive fails as if
    /// the backend dropped mid-read.
    RouteRecv,
}

impl FaultSite {
    /// Every site, in wire/report order.
    pub const ALL: [FaultSite; N_SITES] = [
        FaultSite::SockRead,
        FaultSite::SockWrite,
        FaultSite::PartialWrite,
        FaultSite::Delay,
        FaultSite::WorkerPanic,
        FaultSite::DeadlineStorm,
        FaultSite::RouteSend,
        FaultSite::RouteRecv,
    ];

    /// Dense index into per-site counter arrays.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            FaultSite::SockRead => 0,
            FaultSite::SockWrite => 1,
            FaultSite::PartialWrite => 2,
            FaultSite::Delay => 3,
            FaultSite::WorkerPanic => 4,
            FaultSite::DeadlineStorm => 5,
            FaultSite::RouteSend => 6,
            FaultSite::RouteRecv => 7,
        }
    }

    /// Stable short name, used in plan specs, counter names
    /// (`serve.fault.injected.<name>`), and the schedule log.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::SockRead => "read",
            FaultSite::SockWrite => "write",
            FaultSite::PartialWrite => "partial",
            FaultSite::Delay => "delay",
            FaultSite::WorkerPanic => "panic",
            FaultSite::DeadlineStorm => "deadline",
            FaultSite::RouteSend => "route-send",
            FaultSite::RouteRecv => "route-recv",
        }
    }

    /// Per-site salt folded into the decision hash so sites draw
    /// independent streams from one seed.
    fn salt(self) -> u64 {
        // Any fixed distinct constants work; mix the index for avalanche.
        mix64(0xFA17 ^ (self.index() as u64) << 32)
    }
}

impl fmt::Display for FaultSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A concrete fault the consulting seam must apply (then
/// [`observe`](FaultPlan::observe)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Injection {
    /// Drop the connection as if the read failed.
    ReadError,
    /// Drop the connection as if the write failed.
    WriteError,
    /// Write only the first `keep` bytes of the line, then drop the
    /// connection.
    PartialWrite {
        /// Prefix length to let through (may exceed the line; the applier
        /// clamps).
        keep: usize,
    },
    /// Sleep `ms` milliseconds before writing (slow-loris).
    Delay {
        /// Stall duration in milliseconds.
        ms: u64,
    },
    /// Panic inside the worker job.
    WorkerPanic,
    /// Answer with a `deadline` error as if the queue deadline expired.
    DeadlineStorm,
    /// Fail the router→backend send as if the backend dropped.
    RouteSendError,
    /// Fail the backend→router receive as if the backend dropped.
    RouteRecvError,
}

impl Injection {
    /// The site this injection belongs to.
    #[must_use]
    pub fn site(self) -> FaultSite {
        match self {
            Injection::ReadError => FaultSite::SockRead,
            Injection::WriteError => FaultSite::SockWrite,
            Injection::PartialWrite { .. } => FaultSite::PartialWrite,
            Injection::Delay { .. } => FaultSite::Delay,
            Injection::WorkerPanic => FaultSite::WorkerPanic,
            Injection::DeadlineStorm => FaultSite::DeadlineStorm,
            Injection::RouteSendError => FaultSite::RouteSend,
            Injection::RouteRecvError => FaultSite::RouteRecv,
        }
    }
}

/// Injected/observed totals per site, snapshotted from a plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultCounters {
    /// Faults chosen by [`FaultPlan::decide`], per [`FaultSite::index`].
    pub injected: [u64; N_SITES],
    /// Faults applied (reported via [`FaultPlan::observe`]), per site.
    pub observed: [u64; N_SITES],
}

impl FaultCounters {
    /// Total faults chosen.
    #[must_use]
    pub fn injected_total(&self) -> u64 {
        self.injected.iter().sum()
    }

    /// Total faults applied.
    #[must_use]
    pub fn observed_total(&self) -> u64 {
        self.observed.iter().sum()
    }

    /// The conservation invariant: every chosen fault was applied.
    #[must_use]
    pub fn conserved(&self) -> bool {
        self.injected == self.observed
    }
}

/// The tunable part of a plan (what the spec string encodes).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Schedule seed; same seed ⇒ same per-site schedule.
    pub seed: u64,
    /// Injection probability per consultation, per [`FaultSite::index`].
    pub rates: [f64; N_SITES],
    /// Stall length for [`Injection::Delay`].
    pub delay_ms: u64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self {
            seed: 42,
            rates: [0.0; N_SITES],
            delay_ms: 20,
        }
    }
}

/// The consulting surface the serve stack sees: decide at a seam, report
/// the application, snapshot the totals. [`FaultPlan`] is the seeded
/// implementation; tests substitute scripted implementations to force a
/// specific fault exactly once.
///
/// An *unarmed* stack holds no fault point at all (`Option::None`), so the
/// production fast path is a branch on a `None` — it never even calls into
/// this trait.
pub trait FaultPoint: Send + Sync + fmt::Debug {
    /// Consult the seam. `Some(injection)` obliges the caller to apply it
    /// and then call [`observe`](FaultPoint::observe) exactly once.
    fn decide(&self, site: FaultSite) -> Option<Injection>;

    /// Report that an injection from [`decide`](FaultPoint::decide) was
    /// applied.
    fn observe(&self, site: FaultSite);

    /// Snapshot the injected/observed totals.
    fn counters(&self) -> FaultCounters;
}

/// One line of the schedule log: which consultation of which site fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LogEntry {
    /// The seam.
    pub site: FaultSite,
    /// Zero-based consultation index within that site's stream.
    pub index: u64,
    /// Payload draw (the `keep`/`ms` parameter where the site has one).
    pub payload: u64,
}

/// A seeded, armed/disarmed fault plan. See the module docs for the
/// determinism and conservation contracts.
#[derive(Debug)]
pub struct FaultPlan {
    cfg: FaultConfig,
    armed: AtomicBool,
    seq: [AtomicU64; N_SITES],
    injected: [AtomicU64; N_SITES],
    observed: [AtomicU64; N_SITES],
    log: Mutex<Vec<LogEntry>>,
}

impl FaultPlan {
    /// Build an armed plan from a config.
    #[must_use]
    pub fn new(cfg: FaultConfig) -> Self {
        Self {
            cfg,
            armed: AtomicBool::new(true),
            seq: std::array::from_fn(|_| AtomicU64::new(0)),
            injected: std::array::from_fn(|_| AtomicU64::new(0)),
            observed: std::array::from_fn(|_| AtomicU64::new(0)),
            log: Mutex::new(Vec::new()),
        }
    }

    /// Parse a `key=value,key=value` spec, e.g. `seed=42,rate=0.05` or
    /// `seed=7,rate=0,panic=0.5,delay-ms=5`. Keys: `seed`, `rate` (sets
    /// every site), the per-site names from [`FaultSite::name`]
    /// (`read`/`write`/`partial`/`delay`/`panic`/`deadline`, overriding
    /// `rate`), and `delay-ms`. Rates must be in `[0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for an unknown key, an unparsable
    /// value, or an out-of-range rate.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut cfg = FaultConfig::default();
        for part in spec.split(',').filter(|p| !p.trim().is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("fault-plan entry {part:?} is not key=value"))?;
            let (key, value) = (key.trim(), value.trim());
            let rate = |v: &str| -> Result<f64, String> {
                let r: f64 = v
                    .parse()
                    .map_err(|_| format!("fault-plan {key}={v:?} is not a number"))?;
                if !(0.0..=1.0).contains(&r) {
                    return Err(format!("fault-plan {key}={v} must be in [0, 1]"));
                }
                Ok(r)
            };
            match key {
                "seed" => {
                    cfg.seed = value
                        .parse()
                        .map_err(|_| format!("fault-plan seed={value:?} is not a u64"))?;
                }
                "delay-ms" | "delay_ms" => {
                    cfg.delay_ms = value
                        .parse()
                        .map_err(|_| format!("fault-plan delay-ms={value:?} is not a u64"))?;
                }
                "rate" => cfg.rates = [rate(value)?; N_SITES],
                _ => {
                    let site = FaultSite::ALL
                        .into_iter()
                        .find(|s| s.name() == key)
                        .ok_or_else(|| format!("fault-plan key {key:?} is not known"))?;
                    cfg.rates[site.index()] = rate(value)?;
                }
            }
        }
        Ok(FaultPlan::new(cfg))
    }

    /// The config this plan was built from.
    #[must_use]
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// Whether [`decide`](FaultPlan::decide) is currently live.
    #[must_use]
    pub fn is_armed(&self) -> bool {
        self.armed.load(Ordering::Relaxed)
    }

    /// Stop injecting: every subsequent `decide` returns `None` without
    /// consuming schedule indices. Used by `chaosgen`'s post-chaos clean
    /// pass.
    pub fn disarm(&self) {
        self.armed.store(false, Ordering::SeqCst);
    }

    /// Re-enable injection after [`disarm`](FaultPlan::disarm).
    pub fn arm(&self) {
        self.armed.store(true, Ordering::SeqCst);
    }

    /// Render the schedule log, sorted by `(site, index)` so two runs with
    /// identical per-site schedules render byte-identically regardless of
    /// thread interleaving. One line per injected fault:
    /// `<site> <index> <payload>`.
    ///
    /// # Panics
    ///
    /// Panics if the log mutex is poisoned (a panicking log writer).
    #[must_use]
    pub fn log_render(&self) -> String {
        let mut entries = self.log.lock().expect("fault log poisoned").clone();
        entries.sort_by_key(|e| (e.site.index(), e.index));
        let mut out = String::with_capacity(entries.len() * 24);
        for e in entries {
            out.push_str(e.site.name());
            out.push(' ');
            out.push_str(&e.index.to_string());
            out.push(' ');
            out.push_str(&e.payload.to_string());
            out.push('\n');
        }
        out
    }
}

impl FaultPoint for FaultPlan {
    fn decide(&self, site: FaultSite) -> Option<Injection> {
        if !self.armed.load(Ordering::Relaxed) {
            return None;
        }
        let idx = site.index();
        let n = self.seq[idx].fetch_add(1, Ordering::Relaxed);
        let h = mix64(self.cfg.seed ^ site.salt() ^ n.wrapping_mul(GOLDEN_GAMMA));
        if unit_f64(h) >= self.cfg.rates[idx] {
            return None;
        }
        // An injection: the (rare) slow path may allocate for the log.
        let payload = mix64(h ^ GOLDEN_GAMMA);
        self.injected[idx].fetch_add(1, Ordering::Relaxed);
        self.log.lock().expect("fault log poisoned").push(LogEntry {
            site,
            index: n,
            payload,
        });
        Some(match site {
            FaultSite::SockRead => Injection::ReadError,
            FaultSite::SockWrite => Injection::WriteError,
            // Keep a short prefix: enough to corrupt the line, never the
            // whole thing (responses are always > 32 bytes).
            FaultSite::PartialWrite => Injection::PartialWrite {
                keep: (payload % 32) as usize,
            },
            FaultSite::Delay => Injection::Delay {
                ms: self.cfg.delay_ms,
            },
            FaultSite::WorkerPanic => Injection::WorkerPanic,
            FaultSite::DeadlineStorm => Injection::DeadlineStorm,
            FaultSite::RouteSend => Injection::RouteSendError,
            FaultSite::RouteRecv => Injection::RouteRecvError,
        })
    }

    fn observe(&self, site: FaultSite) {
        self.observed[site.index()].fetch_add(1, Ordering::Relaxed);
    }

    fn counters(&self) -> FaultCounters {
        FaultCounters {
            injected: std::array::from_fn(|i| self.injected[i].load(Ordering::Relaxed)),
            observed: std::array::from_fn(|i| self.observed[i].load(Ordering::Relaxed)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_minimal_spec() {
        let plan = FaultPlan::parse("seed=42,rate=0.05").unwrap();
        assert_eq!(plan.config().seed, 42);
        assert!(plan.config().rates.iter().all(|&r| r == 0.05));
        assert!(plan.is_armed());
    }

    #[test]
    fn parse_per_site_overrides_and_delay() {
        let plan = FaultPlan::parse("seed=7,rate=0,panic=0.5,delay-ms=3").unwrap();
        let cfg = plan.config();
        assert_eq!(cfg.seed, 7);
        assert_eq!(cfg.delay_ms, 3);
        assert_eq!(cfg.rates[FaultSite::WorkerPanic.index()], 0.5);
        assert_eq!(cfg.rates[FaultSite::SockRead.index()], 0.0);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(FaultPlan::parse("seed").is_err());
        assert!(FaultPlan::parse("warp=0.1").is_err());
        assert!(FaultPlan::parse("rate=1.5").is_err());
        assert!(FaultPlan::parse("rate=x").is_err());
        assert!(FaultPlan::parse("seed=-1").is_err());
    }

    #[test]
    fn rate_zero_never_fires_rate_one_always_fires() {
        let never = FaultPlan::parse("seed=1,rate=0").unwrap();
        let always = FaultPlan::parse("seed=1,rate=1").unwrap();
        for site in FaultSite::ALL {
            for _ in 0..100 {
                assert_eq!(never.decide(site), None);
                assert!(always.decide(site).is_some());
            }
        }
        assert_eq!(never.counters().injected_total(), 0);
        assert_eq!(always.counters().injected_total(), 800);
    }

    #[test]
    fn disarmed_plan_is_inert_and_resumable() {
        let plan = FaultPlan::parse("seed=1,rate=1").unwrap();
        plan.disarm();
        assert_eq!(plan.decide(FaultSite::SockRead), None);
        assert_eq!(plan.counters().injected_total(), 0);
        plan.arm();
        assert!(plan.decide(FaultSite::SockRead).is_some());
    }

    #[test]
    fn conservation_tracks_observe_calls() {
        let plan = FaultPlan::parse("seed=1,rate=1").unwrap();
        let inj = plan.decide(FaultSite::WorkerPanic).unwrap();
        assert_eq!(inj, Injection::WorkerPanic);
        assert!(!plan.counters().conserved(), "observe not yet reported");
        plan.observe(FaultSite::WorkerPanic);
        assert!(plan.counters().conserved());
        assert_eq!(plan.counters().observed_total(), 1);
    }

    #[test]
    fn injection_site_roundtrips() {
        let plan = FaultPlan::parse("seed=3,rate=1").unwrap();
        for site in FaultSite::ALL {
            let inj = plan.decide(site).unwrap();
            assert_eq!(inj.site(), site);
        }
    }
}
