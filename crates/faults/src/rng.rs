//! The crate's only sources of randomness: an in-tree xorshift generator
//! for stateful draws and a splitmix-style finalizer for *stateless*
//! schedules.
//!
//! The build environment is offline (no `rand`), and the chaos harness
//! must be reproducible byte-for-byte anyway, so both primitives are
//! deliberately tiny and fully specified here:
//!
//! * [`XorShift64`] — Marsaglia's xorshift64\*, used where a caller owns a
//!   private stream (e.g. client backoff jitter could, in principle, walk
//!   one; the serve client actually uses [`mix64`] so jitter stays a pure
//!   function of `(seed, attempt, salt)`).
//! * [`mix64`] — the splitmix64 finalizer. Hashing `(seed, site, index)`
//!   with it gives every injection site an O(1)-addressable decision
//!   stream: the n-th consultation of a site always sees the same draw for
//!   the same seed, **independent of thread interleaving across sites**.
//!   That property is what makes a concurrent chaos run's per-site fault
//!   schedule reproducible.

/// Multiplier from the fixed-increment splitmix64 / Weyl-sequence family.
pub const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// The splitmix64 finalizer: a bijective avalanche mix of a 64-bit word.
#[inline]
#[must_use]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(GOLDEN_GAMMA);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Map a 64-bit draw onto the unit interval `[0, 1)` using the top 53 bits
/// (every value is exactly representable in an `f64`).
#[inline]
#[must_use]
pub fn unit_f64(x: u64) -> f64 {
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Marsaglia xorshift64\*: a tiny full-period (2^64 − 1) generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Seed the generator. A zero seed (the one fixed point of the xorshift
    /// step) is remapped through [`mix64`] so every seed yields a live
    /// stream.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        let state = if seed == 0 { mix64(seed) } else { seed };
        Self { state }
    }

    /// Next 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Next draw in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        unit_f64(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix64_is_deterministic_and_spreads() {
        assert_eq!(mix64(42), mix64(42));
        assert_ne!(mix64(42), mix64(43));
        // Consecutive inputs should not produce consecutive outputs.
        assert!(mix64(1).abs_diff(mix64(2)) > 1 << 32);
    }

    #[test]
    fn unit_f64_stays_in_range() {
        for x in [0, 1, u64::MAX, mix64(7), GOLDEN_GAMMA] {
            let u = unit_f64(x);
            assert!((0.0..1.0).contains(&u), "{u}");
        }
        assert_eq!(unit_f64(0), 0.0);
    }

    #[test]
    fn xorshift_same_seed_same_stream() {
        let mut a = XorShift64::new(1234);
        let mut b = XorShift64::new(1234);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn xorshift_zero_seed_is_not_stuck() {
        let mut r = XorShift64::new(0);
        let a = r.next_u64();
        let b = r.next_u64();
        assert_ne!(a, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn xorshift_roughly_uniform() {
        let mut r = XorShift64::new(9);
        let n = 4096;
        let ones: u32 = (0..n).map(|_| (r.next_u64() & 1) as u32).sum();
        assert!((n / 4..3 * n / 4).contains(&ones), "ones={ones}");
    }
}
