//! Closed-form systolic timing, validated cycle-exactly against the
//! functional array in [`crate::array`].

use crate::array::ArrayConfig;

/// Exact cycles for one weight-stationary pass streaming `m` activation rows
/// through an `R × C` grid: `m + R + C − 1`.
///
/// The `k`/`n` extents of the loaded tile do not appear: partial sums always
/// drain through all `R` rows (outputs exit at the bottom) and activations
/// traverse all `C` columns, exactly as in [`crate::array::SystolicArray`],
/// which this formula matches cycle-for-cycle (see that module's tests).
pub fn tile_stream_cycles(config: ArrayConfig, m: usize, _k: usize, _n: usize) -> u64 {
    (m + config.rows + config.cols - 1) as u64
}

/// Timing breakdown of a full GEMM executed as multiple weight-stationary
/// passes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GemmTiming {
    /// Number of weight tiles = `ceil(K/R) · ceil(N/C)` passes.
    pub passes: u64,
    /// Total compute cycles.
    pub cycles: u64,
    /// MACs performed.
    pub macs: u64,
}

impl GemmTiming {
    /// Fraction of peak MAC throughput achieved: `macs / (cycles · R · C)`.
    pub fn utilization(&self, config: ArrayConfig) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.macs as f64 / (self.cycles as f64 * (config.rows * config.cols) as f64)
    }
}

/// Cycles for a full `M × K × N` GEMM on the array.
///
/// The GEMM is tiled into `ceil(K/R) · ceil(N/C)` weight-stationary passes,
/// each streaming all `M` rows. With `double_buffered_weights` the next
/// tile's weights load while the current pass streams (the TPU's dual weight
/// buffer), so only the first load and the pipeline fill/drain are exposed:
///
/// `cycles = passes · M + R (first load) + (R + C − 1) (last drain)`
///
/// Without double buffering every pass pays the `R`-cycle weight load.
pub fn gemm_timing(
    config: ArrayConfig,
    m: usize,
    n: usize,
    k: usize,
    double_buffered_weights: bool,
) -> GemmTiming {
    let k_tiles = k.div_ceil(config.rows) as u64;
    let n_tiles = n.div_ceil(config.cols) as u64;
    let passes = k_tiles * n_tiles;
    let stream = passes * m as u64;
    let fill_drain = (config.rows + config.cols - 1) as u64;
    let weight_loads = if double_buffered_weights {
        config.rows as u64
    } else {
        passes * config.rows as u64
    };
    GemmTiming {
        passes,
        cycles: stream + fill_drain + weight_loads,
        macs: (m as u64) * (n as u64) * (k as u64),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::SystolicArray;
    use iconv_tensor::Matrix;

    #[test]
    fn formula_matches_functional_array_exactly() {
        for (rows, cols, m, k, n) in [
            (4usize, 4usize, 10usize, 4usize, 4usize),
            (4, 4, 1, 4, 4),
            (6, 3, 9, 2, 3),
            (3, 6, 5, 3, 2),
            (8, 8, 20, 5, 7),
        ] {
            let cfg = ArrayConfig { rows, cols };
            let a = Matrix::<i64>::from_fn(m, k, |r, c| (r * 31 + c * 7) as i64 % 13 - 6);
            let b = Matrix::<i64>::from_fn(k, n, |r, c| (r * 5 + c * 3) as i64 % 9 - 4);
            let mut arr = SystolicArray::with_weights(cfg, &b);
            let (out, cycles) = arr.stream(&a);
            assert!(
                out.approx_eq(&a.matmul(&b), 0.0) || {
                    // integer exact compare on the used sub-block
                    (0..m).all(|r| (0..n).all(|c| out[(r, c)] == a.matmul(&b)[(r, c)]))
                }
            );
            assert_eq!(
                cycles,
                tile_stream_cycles(cfg, m, k, n),
                "({rows},{cols},{m},{k},{n})"
            );
        }
    }

    #[test]
    fn single_pass_gemm_timing() {
        let cfg = ArrayConfig {
            rows: 128,
            cols: 128,
        };
        let t = gemm_timing(cfg, 1024, 128, 128, true);
        assert_eq!(t.passes, 1);
        assert_eq!(t.cycles, 1024 + 255 + 128);
        assert_eq!(t.macs, 1024 * 128 * 128);
    }

    #[test]
    fn multi_pass_gemm_timing() {
        let cfg = ArrayConfig {
            rows: 128,
            cols: 128,
        };
        let t = gemm_timing(cfg, 1024, 256, 256, true);
        assert_eq!(t.passes, 4);
        assert_eq!(t.cycles, 4 * 1024 + 255 + 128);
    }

    #[test]
    fn no_double_buffering_pays_reloads() {
        let cfg = ArrayConfig {
            rows: 128,
            cols: 128,
        };
        let db = gemm_timing(cfg, 512, 512, 512, true);
        let nodb = gemm_timing(cfg, 512, 512, 512, false);
        assert_eq!(nodb.cycles - db.cycles, (16 - 1) * 128);
    }

    #[test]
    fn utilization_peaks_for_full_tiles() {
        let cfg = ArrayConfig {
            rows: 128,
            cols: 128,
        };
        // Huge square GEMM: utilization approaches 1.
        let t = gemm_timing(cfg, 8192, 8192, 8192, true);
        assert!(t.utilization(cfg) > 0.95);
        // Small K underuses the rows.
        let t = gemm_timing(cfg, 8192, 128, 8, true);
        assert!(t.utilization(cfg) < 0.1);
    }

    #[test]
    fn utilization_zero_cycles_guard() {
        let t = GemmTiming {
            passes: 0,
            cycles: 0,
            macs: 0,
        };
        assert_eq!(t.utilization(ArrayConfig::tpu_v2()), 0.0);
    }
}
