//! The original naive cycle stepper, retained verbatim as the semantic
//! reference for [`crate::array::SystolicArray`].
//!
//! This model allocates two fresh `R×C` scratch grids every cycle and scans
//! every PE, exactly as the first implementation did. It is deliberately
//! simple — each register is an explicit `Option` moved by hand — so its
//! correctness is easy to audit. The optimized array must return the same
//! `(output, cycles)` for every input (see `tests/stream_equivalence.rs`),
//! which lets the fast path drop the per-cycle allocations and the full-grid
//! scan without weakening the ground-truth guarantee.

use crate::array::ArrayConfig;
use iconv_tensor::{Matrix, Scalar};

/// The naive, full-grid-scan weight-stationary array.
#[derive(Debug, Clone)]
pub struct ReferenceArray<T> {
    config: ArrayConfig,
    /// Stationary weight per PE, row-major `rows × cols`.
    weights: Vec<T>,
    /// Activation register per PE (moves right each cycle).
    act: Vec<Option<T>>,
    /// Partial-sum register per PE (moves down each cycle).
    psum: Vec<Option<(usize, T)>>, // tagged with the output row index
    cycle: u64,
}

impl<T: Scalar> ReferenceArray<T> {
    /// Build an array and preload the weight tile `b` (shape `K × N`).
    ///
    /// # Panics
    ///
    /// Panics if `b` exceeds the grid.
    pub fn with_weights(config: ArrayConfig, b: &Matrix<T>) -> Self {
        let (k, n) = b.shape();
        assert!(k <= config.rows, "K={k} exceeds {} PE rows", config.rows);
        assert!(n <= config.cols, "N={n} exceeds {} PE cols", config.cols);
        let mut weights = vec![T::zero(); config.rows * config.cols];
        for r in 0..k {
            for c in 0..n {
                weights[r * config.cols + c] = b[(r, c)];
            }
        }
        Self {
            config,
            weights,
            act: vec![None; config.rows * config.cols],
            psum: vec![None; config.rows * config.cols],
            cycle: config.rows as u64, // weight shift-in
        }
    }

    /// Current cycle count (includes the weight load).
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Stream activation matrix `a` (`M × K`) through the loaded weights and
    /// return `(a · b, cycles_elapsed_for_this_gemm)`.
    ///
    /// # Panics
    ///
    /// Panics if `a.cols()` exceeds the grid rows.
    pub fn stream(&mut self, a: &Matrix<T>) -> (Matrix<T>, u64) {
        let (m_dim, k) = a.shape();
        assert!(k <= self.config.rows, "K={k} exceeds PE rows");
        let n = self.config.cols;
        let rows = self.config.rows;
        let mut out = Matrix::<T>::zeros(m_dim, n);
        let start_cycle = self.cycle;
        let mut elapsed = 0u64;
        // Upper bound on drain time; the loop exits as soon as quiescent.
        loop {
            let t = elapsed as usize;
            // 1. Shift: activations right, psums down (rightmost/bottom fall
            //    out; bottom psums are the outputs).
            let mut new_act = vec![None; rows * n];
            let mut new_psum = vec![None; rows * n];
            for r in 0..rows {
                for c in 0..n {
                    let idx = r * n + c;
                    if c + 1 < n {
                        new_act[r * n + c + 1] = self.act[idx];
                    }
                    if let Some((m, v)) = self.psum[idx] {
                        if r + 1 < rows {
                            new_psum[(r + 1) * n + c] = Some((m, v));
                        } else {
                            // Drains out of the bottom: this is output C[m][c].
                            out[(m, c)] += v;
                        }
                    }
                }
            }
            self.act = new_act;
            self.psum = new_psum;
            // 2. Inject skewed activations at the left edge.
            for r in 0..k.min(rows) {
                if t >= r {
                    let m = t - r;
                    if m < m_dim {
                        self.act[r * n] = Some(a[(m, r)]);
                    }
                }
            }
            // 3. Compute: each PE with an activation produces/extends a psum
            //    for the wavefront entering it this cycle.
            for r in 0..rows {
                for c in 0..n {
                    let idx = r * n + c;
                    if let Some(aval) = self.act[idx] {
                        // The output row this activation belongs to:
                        // injected at t' = m + r at column 0, it reaches
                        // column c at cycle t' + c, i.e. m = t - r - c.
                        let m = t.checked_sub(r + c);
                        if let Some(m) = m {
                            if m < m_dim {
                                let w = self.weights[r * self.config.cols + c];
                                let contrib = aval * w;
                                match &mut self.psum[idx] {
                                    Some((pm, pv)) => {
                                        debug_assert_eq!(*pm, m, "wavefront misalignment");
                                        *pv += contrib;
                                    }
                                    slot @ None => *slot = Some((m, contrib)),
                                }
                            }
                        }
                    }
                }
            }
            elapsed += 1;
            // Quiescent once all inputs are injected and registers are empty.
            let injected_all = t >= m_dim + k;
            let empty =
                self.act.iter().all(Option::is_none) && self.psum.iter().all(Option::is_none);
            if injected_all && empty {
                break;
            }
            assert!(
                elapsed < (m_dim + rows + n + 8) as u64 * 2,
                "systolic array failed to drain"
            );
        }
        self.cycle = start_cycle + elapsed;
        (out, elapsed)
    }
}
