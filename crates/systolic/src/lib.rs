//! # iconv-systolic
//!
//! A cycle-stepped, functional **weight-stationary systolic array** — the
//! dataflow ground truth beneath TPUSim.
//!
//! * [`mod@array`] — the PE grid, stepped cycle by cycle, producing both real
//!   GEMM results and exact cycle counts;
//! * [`timing`] — the closed-form pass/GEMM latency formulas, validated
//!   cycle-exactly against the stepped grid;
//! * [`conv`] — channel-first implicit convolution executed end-to-end on
//!   the grid, proving the full Sec. IV dataflow (including multi-tile
//!   merging) equals direct convolution.
//!
//! ```
//! use iconv_systolic::{ArrayConfig, conv::self_check};
//! use iconv_tensor::ConvShape;
//!
//! # fn main() -> Result<(), iconv_tensor::ShapeError> {
//! // The paper's Fig. 10 working example on a 4x4 array.
//! let shape = ConvShape::square(2, 4, 5, 4, 3, 1, 0)?;
//! assert!(self_check(ArrayConfig { rows: 4, cols: 4 }, &shape, 1));
//! # Ok(()) }
//! ```

pub mod array;
pub mod conv;
pub mod output_stationary;
pub mod reference;
pub mod timing;

pub use array::{ArrayConfig, SystolicArray};
pub use output_stationary::{os_gemm, os_gemm_cycles, OsArrayConfig};
pub use timing::{gemm_timing, tile_stream_cycles, GemmTiming};
