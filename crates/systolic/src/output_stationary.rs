//! An **output-stationary** systolic dataflow, for comparison with the
//! weight-stationary TPU design.
//!
//! The paper's related work contrasts with SCALE-Sim, which simulates
//! systolic arrays under multiple dataflows but assumes *explicit* im2col.
//! This module provides the output-stationary alternative at the same
//! cycle-stepped fidelity as [`crate::array`]: each PE accumulates one
//! output element in place while `A` rows stream from the left and `B`
//! columns stream from the top; results shift out afterwards.
//!
//! The comparison it enables (see tests): for im2col-lowered convolutions
//! (`M ≫ K, N`), weight-stationary wins because the long `M` dimension
//! streams while small `K × N` weights sit still; output-stationary must
//! tile `M` into array-sized chunks and pay a drain per chunk — one more
//! reason the TPU's choice fits the channel-first algorithm.

use iconv_tensor::{Matrix, Scalar};

/// Geometry of the output-stationary grid: `rows × cols` accumulators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OsArrayConfig {
    /// PE rows (one output row of the tile each).
    pub rows: usize,
    /// PE columns (one output column of the tile each).
    pub cols: usize,
}

/// Closed-form cycles for one output-stationary tile computing an
/// `rows × cols` output block over a `k`-deep reduction:
/// `k` cycles of streaming + `rows + cols − 2` skew + `cols` drain shifts.
pub fn os_tile_cycles(config: OsArrayConfig, k: usize) -> u64 {
    (k + config.rows + config.cols - 2 + config.cols) as u64
}

/// Closed-form cycles for a full `M × N × K` GEMM on an output-stationary
/// grid: every `rows × cols` output tile pays a full `K` stream plus drain.
pub fn os_gemm_cycles(config: OsArrayConfig, m: usize, n: usize, k: usize) -> u64 {
    let tiles = m.div_ceil(config.rows) as u64 * n.div_ceil(config.cols) as u64;
    tiles * os_tile_cycles(config, k)
}

/// Cycle-stepped functional output-stationary GEMM of one tile
/// (`a`: `rows × K` slice, `b`: `K × cols` slice), returning the tile
/// product and exact cycles, matching [`os_tile_cycles`].
///
/// # Panics
///
/// Panics if the operand shapes exceed the grid.
pub fn os_tile<T: Scalar>(config: OsArrayConfig, a: &Matrix<T>, b: &Matrix<T>) -> (Matrix<T>, u64) {
    let (m, k) = a.shape();
    let (kb, n) = b.shape();
    assert_eq!(k, kb, "reduction mismatch");
    assert!(m <= config.rows, "M tile exceeds rows");
    assert!(n <= config.cols, "N tile exceeds cols");
    // Accumulators, one per PE.
    let mut acc = Matrix::<T>::zeros(config.rows, config.cols);
    // a-values flow right (skewed by row), b-values flow down (skewed by
    // col); PE (r, c) sees a[r][t - r - c] and b[t - r - c][c] at cycle t.
    let horizon = k + config.rows + config.cols - 2;
    for t in 0..horizon {
        for r in 0..m {
            for c in 0..n {
                if let Some(step) = t.checked_sub(r + c) {
                    if step < k {
                        let prod = a[(r, step)] * b[(step, c)];
                        acc[(r, c)] += prod;
                    }
                }
            }
        }
    }
    // Drain: results shift out column by column.
    let cycles = horizon as u64 + config.cols as u64;
    (Matrix::from_fn(m, n, |r, c| acc[(r, c)]), cycles)
}

/// Full functional output-stationary GEMM with tiling, plus exact cycles.
///
/// # Panics
///
/// Panics on shape mismatch.
pub fn os_gemm<T: Scalar>(config: OsArrayConfig, a: &Matrix<T>, b: &Matrix<T>) -> (Matrix<T>, u64) {
    let (m, k) = a.shape();
    let (kb, n) = b.shape();
    assert_eq!(k, kb, "reduction mismatch");
    let mut out = Matrix::<T>::zeros(m, n);
    let mut cycles = 0u64;
    let mut r0 = 0;
    while r0 < m {
        let rows = config.rows.min(m - r0);
        let mut c0 = 0;
        while c0 < n {
            let cols = config.cols.min(n - c0);
            let a_sub = Matrix::from_fn(rows, k, |r, kk| a[(r0 + r, kk)]);
            let b_sub = Matrix::from_fn(k, cols, |kk, c| b[(kk, c0 + c)]);
            let (tile, t_cycles) = os_tile(config, &a_sub, &b_sub);
            cycles += t_cycles;
            for r in 0..rows {
                for c in 0..cols {
                    out[(r0 + r, c0 + c)] = tile[(r, c)];
                }
            }
            c0 += cols;
        }
        r0 += rows;
    }
    (out, cycles)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timing::gemm_timing;
    use crate::ArrayConfig;

    fn cfg() -> OsArrayConfig {
        OsArrayConfig { rows: 4, cols: 4 }
    }

    #[test]
    fn os_tile_correct_and_cycle_exact() {
        let a = Matrix::<i64>::from_fn(4, 6, |r, c| (r * 6 + c) as i64 % 7 - 3);
        let b = Matrix::<i64>::from_fn(6, 4, |r, c| (r + 2 * c) as i64 % 5 - 2);
        let (got, cycles) = os_tile(cfg(), &a, &b);
        assert_eq!(got, a.matmul(&b));
        assert_eq!(cycles, os_tile_cycles(cfg(), 6));
    }

    #[test]
    fn os_gemm_correct_with_ragged_tiles() {
        let a = Matrix::<i64>::from_fn(10, 5, |r, c| (r * 5 + c) as i64 % 9 - 4);
        let b = Matrix::<i64>::from_fn(5, 7, |r, c| (3 * r + c) as i64 % 6 - 3);
        let (got, cycles) = os_gemm(cfg(), &a, &b);
        assert_eq!(got, a.matmul(&b));
        // 3 row tiles x 2 col tiles.
        assert_eq!(cycles, 6 * os_tile_cycles(cfg(), 5));
        assert_eq!(cycles, os_gemm_cycles(cfg(), 10, 7, 5));
    }

    #[test]
    fn weight_stationary_wins_for_im2col_shapes() {
        // A lowered conv GEMM: M >> K, N (e.g. M = N·Ho·Wo = 6272 rows,
        // K = 9·Ci = 576, N = Co = 128) on a 128x128 grid.
        let ws = ArrayConfig {
            rows: 128,
            cols: 128,
        };
        let os = OsArrayConfig {
            rows: 128,
            cols: 128,
        };
        let (m, n, k) = (6272usize, 128usize, 576usize);
        let ws_cycles = gemm_timing(ws, m, n, k, true).cycles;
        let os_cycles = os_gemm_cycles(os, m, n, k);
        assert!(
            ws_cycles < os_cycles,
            "WS {ws_cycles} should beat OS {os_cycles} on tall-skinny GEMMs"
        );
    }

    #[test]
    fn deep_square_reductions_are_a_wash_in_cycles() {
        // K >> M, N: OS accumulates the whole K in place; WS with
        // double-buffered weights streams the same K in passes. The cycle
        // counts converge — OS's real advantage there is partial-sum
        // traffic (nothing leaves the array), not time.
        let ws = ArrayConfig {
            rows: 128,
            cols: 128,
        };
        let os = OsArrayConfig {
            rows: 128,
            cols: 128,
        };
        let (m, n, k) = (128usize, 128usize, 16384usize);
        let ws_cycles = gemm_timing(ws, m, n, k, true).cycles;
        let os_cycles = os_gemm_cycles(os, m, n, k);
        let ratio = os_cycles as f64 / ws_cycles as f64;
        assert!(
            (0.95..1.05).contains(&ratio),
            "OS {os_cycles} vs WS {ws_cycles}"
        );
    }

    #[test]
    fn single_element_grid_degenerates_to_dot_products() {
        let c = OsArrayConfig { rows: 1, cols: 1 };
        let a = Matrix::<i64>::from_fn(3, 4, |r, cc| (r + cc) as i64);
        let b = Matrix::<i64>::from_fn(4, 2, |r, cc| (r * 2 + cc) as i64);
        let (got, _) = os_gemm(c, &a, &b);
        assert_eq!(got, a.matmul(&b));
    }
}
