//! A cycle-stepped, functional weight-stationary systolic array.
//!
//! This is the ground-truth dataflow model: activations move left→right,
//! partial sums move top→bottom, exactly as in the TPU (paper Fig. 9). It
//! computes real values *and* exact cycle counts, and is used to validate
//! both the closed-form tile-latency formula in [`crate::timing`] and
//! (transitively) TPUSim's fast engine.
//!
//! Scale note: stepping is **band-limited** — at relative cycle `t` the only
//! PEs that can hold live state are those on the wavefront band
//! `t − r − c ∈ [0, M)`, so per-cycle work is O(active band), not O(R·C),
//! and the per-array scratch buffers are allocated once and reused across
//! cycles and streams (zero heap allocations per cycle). This makes the
//! stepped model usable well beyond the small configurations the original
//! full-grid-scan implementation (retained in [`crate::reference`]) could
//! handle; `tests/stream_equivalence.rs` pins the two to identical
//! `(output, cycles)` on randomized configs.

use iconv_tensor::{Matrix, Scalar};

/// Geometry of the PE grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ArrayConfig {
    /// PE rows (the GEMM K dimension maps here; TPU-v2: 128).
    pub rows: usize,
    /// PE columns (the GEMM N dimension maps here; TPU-v2: 128).
    pub cols: usize,
}

impl ArrayConfig {
    /// The TPU-v2 128×128 array.
    pub fn tpu_v2() -> Self {
        Self {
            rows: 128,
            cols: 128,
        }
    }
}

/// A weight-stationary systolic array holding one `K × N` weight tile
/// (`K ≤ rows`, `N ≤ cols`).
#[derive(Debug, Clone)]
pub struct SystolicArray<T> {
    config: ArrayConfig,
    /// Stationary weight per PE, row-major `rows × cols` (zero outside the
    /// loaded tile).
    weights: Vec<T>,
    /// In-flight partial sums, indexed `[c · M + m]` during a stream: the
    /// accumulator for output element `(m, c)` while its psum wavefront is
    /// still inside the grid. Grown on demand, never shrunk, reused across
    /// streams — the steady state performs no per-cycle allocation.
    psum_acc: Vec<T>,
    /// Column-major copy of the streaming activation tile (`a` transposed,
    /// indexed `[r · M + m]`), so the inner MAC loop reads unit-stride.
    /// Same reuse discipline as `psum_acc`.
    act_tile: Vec<T>,
    cycle: u64,
}

impl<T: Scalar> SystolicArray<T> {
    /// Build an array and preload the weight tile `b` (shape `K × N`).
    ///
    /// Loading shifts weights through the rows, costing
    /// [`SystolicArray::weight_load_cycles`]; the constructor accounts for
    /// it in the cycle counter.
    ///
    /// # Panics
    ///
    /// Panics if `b` exceeds the grid.
    pub fn with_weights(config: ArrayConfig, b: &Matrix<T>) -> Self {
        let (k, n) = b.shape();
        assert!(k <= config.rows, "K={k} exceeds {} PE rows", config.rows);
        assert!(n <= config.cols, "N={n} exceeds {} PE cols", config.cols);
        let mut weights = vec![T::zero(); config.rows * config.cols];
        for r in 0..k {
            for c in 0..n {
                weights[r * config.cols + c] = b[(r, c)];
            }
        }
        Self {
            config,
            weights,
            psum_acc: Vec::new(),
            act_tile: Vec::new(),
            cycle: config.rows as u64, // weight shift-in
        }
    }

    /// Cycles spent shifting a weight tile into the array.
    pub fn weight_load_cycles(config: ArrayConfig) -> u64 {
        config.rows as u64
    }

    /// The grid geometry.
    pub fn config(&self) -> ArrayConfig {
        self.config
    }

    /// Current cycle count (includes the weight load).
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Stream activation matrix `a` (`M × K`) through the loaded weights and
    /// return `(a · b, cycles_elapsed_for_this_gemm)`.
    ///
    /// Row `m` of `a` enters PE row `r` at relative cycle `m + r` (the
    /// systolic skew — produced on the real TPU by the skewed address
    /// generation of `iconv_core::addrgen`). The function steps the grid
    /// cycle by cycle until the last partial sum drains from the bottom,
    /// but each cycle only visits the live wavefront band: an activation
    /// injected for output row `m` sits at PE `(r, c)` exactly when
    /// `t − r − c = m`, and the psum tagged `m` in column `c` sits at row
    /// `t − m − c`, so all live state satisfies `t − r − c ∈ [0, M)`.
    ///
    /// Contributions reach each accumulator in ascending-`r` order — the
    /// same order the physical psum picks them up falling down the column —
    /// so results are bit-identical to [`crate::reference::ReferenceArray`]
    /// (floats included).
    ///
    /// # Panics
    ///
    /// Panics if `a.cols()` exceeds the grid rows.
    pub fn stream(&mut self, a: &Matrix<T>) -> (Matrix<T>, u64) {
        let (m_dim, k) = a.shape();
        assert!(k <= self.config.rows, "K={k} exceeds PE rows");
        let n = self.config.cols;
        let rows = self.config.rows;
        let mut out = Matrix::<T>::zeros(m_dim, n);

        // (Re)prime the per-stream scratch: accumulators to zero, activation
        // tile to aᵀ. `resize` only allocates when this stream is larger
        // than any before it on this array.
        self.psum_acc.clear();
        self.psum_acc.resize(n * m_dim, T::zero());
        self.act_tile.clear();
        self.act_tile.resize(k * m_dim, T::zero());
        for m in 0..m_dim {
            let arow = a.row(m);
            for (r, &v) in arow.iter().enumerate() {
                self.act_tile[r * m_dim + m] = v;
            }
        }

        let mut elapsed = 0u64;
        loop {
            let t = elapsed as usize;

            // 1. Drain: a psum tagged (m, c) leaves the bottom row during
            //    cycle t = m + c + rows (it was created in row 0 at cycle
            //    m + c and falls one row per cycle). By then every
            //    contribution (the last lands at cycle m + (k−1) + c) has
            //    been folded in. Psums exist only when K ≥ 1.
            if k > 0 {
                if let Some(base) = t.checked_sub(rows) {
                    // m = base − c ∈ [0, M) bounds the draining columns.
                    let c_hi = base.min(n - 1);
                    let c_lo = (base + 1).saturating_sub(m_dim);
                    for c in c_lo..=c_hi {
                        let m = base - c;
                        out[(m, c)] += self.psum_acc[c * m_dim + m];
                    }
                }
            }

            // 2. Compute along the wavefront band: PE (r, c) holds the
            //    activation for output row m = t − r − c and multiplies it
            //    into the in-flight accumulator of (m, c).
            for r in 0..k {
                let Some(tr) = t.checked_sub(r) else { break };
                let c_hi = tr.min(n - 1);
                let c_lo = (tr + 1).saturating_sub(m_dim);
                if c_lo > c_hi {
                    continue;
                }
                let wrow = &self.weights[r * n..r * n + n];
                let arow = &self.act_tile[r * m_dim..(r + 1) * m_dim];
                for (c, &w) in wrow.iter().enumerate().take(c_hi + 1).skip(c_lo) {
                    let m = tr - c;
                    self.psum_acc[c * m_dim + m] += arow[m] * w;
                }
            }

            elapsed += 1;
            // Quiescence, in closed form (each term is exact — see the
            // equivalence tests against the reference stepper):
            //  * all rows injected once t ≥ M + K;
            //  * the last activation leaves PE (K−1, N−1) after cycle
            //    K + N + M − 3;
            //  * the last psum (tagged M−1, column N−1) drains during cycle
            //    M + N + rows − 3 + 1.
            let injected_all = t >= m_dim + k;
            let act_empty = m_dim == 0 || k == 0 || t >= k + n + m_dim - 2;
            let psum_empty = m_dim == 0 || k == 0 || t >= m_dim + rows + n - 2;
            if injected_all && act_empty && psum_empty {
                break;
            }
        }
        self.cycle += elapsed;
        (out, elapsed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run<T: Scalar>(cfg: ArrayConfig, a: &Matrix<T>, b: &Matrix<T>) -> (Matrix<T>, u64) {
        let mut arr = SystolicArray::with_weights(cfg, b);
        arr.stream(a)
    }

    #[test]
    fn tiny_gemm_correct() {
        let a = Matrix::from_rows(&[&[1i64, 2][..], &[3, 4][..]]);
        let b = Matrix::from_rows(&[&[5i64, 6][..], &[7, 8][..]]);
        let cfg = ArrayConfig { rows: 2, cols: 2 };
        let (c, _) = run(cfg, &a, &b);
        assert_eq!(c, a.matmul(&b));
    }

    #[test]
    fn rectangular_gemm_correct() {
        let a = Matrix::from_fn(7, 3, |r, c| (r * 3 + c) as i64);
        let b = Matrix::from_fn(3, 5, |r, c| (r as i64) - (c as i64));
        let cfg = ArrayConfig { rows: 3, cols: 5 };
        let (c, _) = run(cfg, &a, &b);
        assert_eq!(c, a.matmul(&b));
    }

    #[test]
    fn underutilized_array_still_correct() {
        // K=2, N=3 on a 6x6 grid: unused rows pass psums through, unused
        // columns are ignored.
        let a = Matrix::from_fn(5, 2, |r, c| (r + c) as i64);
        let b = Matrix::from_fn(2, 3, |r, c| (1 + r * 3 + c) as i64);
        let cfg = ArrayConfig { rows: 6, cols: 6 };
        let (c, _) = run(cfg, &a, &b);
        let want = a.matmul(&b);
        for r in 0..5 {
            for col in 0..3 {
                assert_eq!(c[(r, col)], want[(r, col)]);
            }
        }
    }

    #[test]
    fn cycle_count_formula() {
        // Last activation row (m = M-1) enters row K-1 at cycle M-1 + K-1;
        // its psum then falls through the remaining rows and drains at the
        // bottom after `rows - ...`; measured empirically the drain is
        // elapsed = M + K + rows - 1 when N <= M (bottom-right output lags
        // by N-1 but injection dominates) — assert exact values so any
        // dataflow change is caught.
        let cfg = ArrayConfig { rows: 4, cols: 4 };
        let a = Matrix::<i64>::from_fn(10, 4, |r, c| (r + c) as i64);
        let b = Matrix::<i64>::identity(4);
        let (_, cycles) = run(cfg, &a, &b);
        // M=10, K=rows=4: measured elapsed must be within a couple cycles of
        // M + K + rows; pin it exactly.
        assert_eq!(cycles, crate::timing::tile_stream_cycles(cfg, 10, 4, 4));
    }

    #[test]
    fn f32_matches_reference() {
        let a = Matrix::<f32>::from_fn(9, 4, |r, c| (r as f32 * 0.3) - c as f32 * 0.7);
        let b = Matrix::<f32>::from_fn(4, 6, |r, c| (c as f32 * 0.11) - r as f32 * 0.2);
        let cfg = ArrayConfig { rows: 4, cols: 6 };
        let (c, _) = run(cfg, &a, &b);
        assert!(c.approx_eq(&a.matmul(&b), 1e-4));
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn oversized_weights_panic() {
        let b = Matrix::<i32>::identity(5);
        let _ = SystolicArray::with_weights(ArrayConfig { rows: 4, cols: 4 }, &b);
    }

    #[test]
    fn weight_load_accounted() {
        let cfg = ArrayConfig { rows: 8, cols: 8 };
        let arr = SystolicArray::with_weights(cfg, &Matrix::<i32>::identity(8));
        assert_eq!(arr.cycle(), 8);
    }

    #[test]
    fn back_to_back_streams_accumulate_cycles() {
        let cfg = ArrayConfig { rows: 2, cols: 2 };
        let b = Matrix::<i64>::identity(2);
        let mut arr = SystolicArray::with_weights(cfg, &b);
        let a = Matrix::from_fn(4, 2, |r, c| (r + c) as i64);
        let (_, e1) = arr.stream(&a);
        let c0 = arr.cycle();
        let (_, e2) = arr.stream(&a);
        assert_eq!(e1, e2);
        assert_eq!(arr.cycle(), c0 + e2);
    }

    #[test]
    fn narrow_activation_tile_matches_reference() {
        // a.cols() smaller than the loaded K: only the first k weight rows
        // contribute, exactly as in the reference stepper.
        let cfg = ArrayConfig { rows: 5, cols: 4 };
        let b = Matrix::<i64>::from_fn(5, 4, |r, c| (r * 4 + c) as i64 - 9);
        let a = Matrix::<i64>::from_fn(6, 3, |r, c| (r + 2 * c) as i64 - 2);
        let (got, cycles) = run(cfg, &a, &b);
        let mut reference = crate::reference::ReferenceArray::with_weights(cfg, &b);
        let (want, ref_cycles) = reference.stream(&a);
        assert_eq!(got, want);
        assert_eq!(cycles, ref_cycles);
    }

    #[test]
    fn scratch_reuse_across_growing_streams() {
        // Stream tiles of different M through one array: scratch grows then
        // is reused; results stay exact.
        let cfg = ArrayConfig { rows: 3, cols: 3 };
        let b = Matrix::<i64>::from_fn(3, 3, |r, c| (r + c) as i64 - 1);
        let mut arr = SystolicArray::with_weights(cfg, &b);
        for m in [1usize, 8, 2, 8, 5] {
            let a = Matrix::<i64>::from_fn(m, 3, |r, c| (r * 7 + c) as i64 % 11 - 5);
            let (got, _) = arr.stream(&a);
            for r in 0..m {
                for c in 0..3 {
                    assert_eq!(got[(r, c)], a.matmul(&b)[(r, c)], "m={m}");
                }
            }
        }
    }
}
