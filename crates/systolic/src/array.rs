//! A cycle-stepped, functional weight-stationary systolic array.
//!
//! This is the ground-truth dataflow model: every PE is stepped every cycle,
//! activations move left→right, partial sums move top→bottom, exactly as in
//! the TPU (paper Fig. 9). It computes real values *and* exact cycle counts,
//! and is used to validate both the closed-form tile-latency formula in
//! [`crate::timing`] and (transitively) TPUSim's fast engine.
//!
//! Scale note: stepping `R×C` PEs per cycle is O(R·C) per cycle, so this
//! model is for small/medium configurations; layer-scale simulation uses the
//! validated closed form.

use iconv_tensor::{Matrix, Scalar};

/// Geometry of the PE grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ArrayConfig {
    /// PE rows (the GEMM K dimension maps here; TPU-v2: 128).
    pub rows: usize,
    /// PE columns (the GEMM N dimension maps here; TPU-v2: 128).
    pub cols: usize,
}

impl ArrayConfig {
    /// The TPU-v2 128×128 array.
    pub fn tpu_v2() -> Self {
        Self { rows: 128, cols: 128 }
    }
}

/// A weight-stationary systolic array holding one `K × N` weight tile
/// (`K ≤ rows`, `N ≤ cols`).
#[derive(Debug, Clone)]
pub struct SystolicArray<T> {
    config: ArrayConfig,
    /// Stationary weight per PE, row-major `rows × cols` (zero outside the
    /// loaded tile).
    weights: Vec<T>,
    /// Activation register per PE (moves right each cycle).
    act: Vec<Option<T>>,
    /// Partial-sum register per PE (moves down each cycle).
    psum: Vec<Option<(usize, T)>>, // tagged with the output row index
    cycle: u64,
}

impl<T: Scalar> SystolicArray<T> {
    /// Build an array and preload the weight tile `b` (shape `K × N`).
    ///
    /// Loading shifts weights through the rows, costing
    /// [`SystolicArray::weight_load_cycles`]; the constructor accounts for
    /// it in the cycle counter.
    ///
    /// # Panics
    ///
    /// Panics if `b` exceeds the grid.
    pub fn with_weights(config: ArrayConfig, b: &Matrix<T>) -> Self {
        let (k, n) = b.shape();
        assert!(k <= config.rows, "K={k} exceeds {} PE rows", config.rows);
        assert!(n <= config.cols, "N={n} exceeds {} PE cols", config.cols);
        let mut weights = vec![T::zero(); config.rows * config.cols];
        for r in 0..k {
            for c in 0..n {
                weights[r * config.cols + c] = b[(r, c)];
            }
        }
        Self {
            config,
            weights,
            act: vec![None; config.rows * config.cols],
            psum: vec![None; config.rows * config.cols],
            cycle: config.rows as u64, // weight shift-in
        }
    }

    /// Cycles spent shifting a weight tile into the array.
    pub fn weight_load_cycles(config: ArrayConfig) -> u64 {
        config.rows as u64
    }

    /// The grid geometry.
    pub fn config(&self) -> ArrayConfig {
        self.config
    }

    /// Current cycle count (includes the weight load).
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Stream activation matrix `a` (`M × K`) through the loaded weights and
    /// return `(a · b, cycles_elapsed_for_this_gemm)`.
    ///
    /// Row `m` of `a` enters PE row `r` at relative cycle `m + r` (the
    /// systolic skew — produced on the real TPU by the skewed address
    /// generation of `iconv_core::addrgen`). The function steps the grid
    /// cycle by cycle until the last partial sum drains from the bottom.
    ///
    /// # Panics
    ///
    /// Panics if `a.cols()` does not equal the loaded `K`.
    pub fn stream(&mut self, a: &Matrix<T>) -> (Matrix<T>, u64) {
        let (m_dim, k) = a.shape();
        assert!(k <= self.config.rows, "K={k} exceeds PE rows");
        let n = self.config.cols;
        let rows = self.config.rows;
        let mut out = Matrix::<T>::zeros(m_dim, n);
        let start_cycle = self.cycle;
        let mut elapsed = 0u64;
        // Upper bound on drain time; the loop exits as soon as quiescent.
        loop {
            let t = elapsed as usize;
            // 1. Shift: activations right, psums down (rightmost/bottom fall
            //    out; bottom psums are the outputs).
            let mut new_act = vec![None; rows * n];
            let mut new_psum = vec![None; rows * n];
            for r in 0..rows {
                for c in 0..n {
                    let idx = r * n + c;
                    if c + 1 < n {
                        new_act[r * n + c + 1] = self.act[idx];
                    }
                    if let Some((m, v)) = self.psum[idx] {
                        if r + 1 < rows {
                            new_psum[(r + 1) * n + c] = Some((m, v));
                        } else {
                            // Drains out of the bottom: this is output C[m][c].
                            out[(m, c)] += v;
                        }
                    }
                }
            }
            self.act = new_act;
            self.psum = new_psum;
            // 2. Inject skewed activations at the left edge.
            for r in 0..k.min(rows) {
                if t >= r {
                    let m = t - r;
                    if m < m_dim {
                        self.act[r * n] = Some(a[(m, r)]);
                    }
                }
            }
            // 3. Compute: each PE with an activation produces/extends a psum
            //    for the wavefront entering it this cycle.
            for r in 0..rows {
                for c in 0..n {
                    let idx = r * n + c;
                    if let Some(aval) = self.act[idx] {
                        // The output row this activation belongs to:
                        // injected at t' = m + r at column 0, it reaches
                        // column c at cycle t' + c, i.e. m = t - r - c.
                        let m = t.checked_sub(r + c);
                        if let Some(m) = m {
                            if m < m_dim {
                                let w = self.weights[r * self.config.cols + c];
                                let contrib = aval * w;
                                match &mut self.psum[idx] {
                                    Some((pm, pv)) => {
                                        debug_assert_eq!(*pm, m, "wavefront misalignment");
                                        *pv += contrib;
                                    }
                                    slot @ None => *slot = Some((m, contrib)),
                                }
                            }
                        }
                    }
                }
            }
            elapsed += 1;
            // Quiescent once all inputs are injected and registers are empty.
            let injected_all = t >= m_dim + k;
            let empty = self.act.iter().all(Option::is_none)
                && self.psum.iter().all(Option::is_none);
            if injected_all && empty {
                break;
            }
            assert!(
                elapsed < (m_dim + rows + n + 8) as u64 * 2,
                "systolic array failed to drain"
            );
        }
        self.cycle = start_cycle + elapsed;
        (out, elapsed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run<T: Scalar>(cfg: ArrayConfig, a: &Matrix<T>, b: &Matrix<T>) -> (Matrix<T>, u64) {
        let mut arr = SystolicArray::with_weights(cfg, b);
        arr.stream(a)
    }

    #[test]
    fn tiny_gemm_correct() {
        let a = Matrix::from_rows(&[&[1i64, 2][..], &[3, 4][..]]);
        let b = Matrix::from_rows(&[&[5i64, 6][..], &[7, 8][..]]);
        let cfg = ArrayConfig { rows: 2, cols: 2 };
        let (c, _) = run(cfg, &a, &b);
        assert_eq!(c, a.matmul(&b));
    }

    #[test]
    fn rectangular_gemm_correct() {
        let a = Matrix::from_fn(7, 3, |r, c| (r * 3 + c) as i64);
        let b = Matrix::from_fn(3, 5, |r, c| (r as i64) - (c as i64));
        let cfg = ArrayConfig { rows: 3, cols: 5 };
        let (c, _) = run(cfg, &a, &b);
        assert_eq!(c, a.matmul(&b));
    }

    #[test]
    fn underutilized_array_still_correct() {
        // K=2, N=3 on a 6x6 grid: unused rows pass psums through, unused
        // columns are ignored.
        let a = Matrix::from_fn(5, 2, |r, c| (r + c) as i64);
        let b = Matrix::from_fn(2, 3, |r, c| (1 + r * 3 + c) as i64);
        let cfg = ArrayConfig { rows: 6, cols: 6 };
        let (c, _) = run(cfg, &a, &b);
        let want = a.matmul(&b);
        for r in 0..5 {
            for col in 0..3 {
                assert_eq!(c[(r, col)], want[(r, col)]);
            }
        }
    }

    #[test]
    fn cycle_count_formula() {
        // Last activation row (m = M-1) enters row K-1 at cycle M-1 + K-1;
        // its psum then falls through the remaining rows and drains at the
        // bottom after `rows - ...`; measured empirically the drain is
        // elapsed = M + K + rows - 1 when N <= M (bottom-right output lags
        // by N-1 but injection dominates) — assert exact values so any
        // dataflow change is caught.
        let cfg = ArrayConfig { rows: 4, cols: 4 };
        let a = Matrix::<i64>::from_fn(10, 4, |r, c| (r + c) as i64);
        let b = Matrix::<i64>::identity(4);
        let (_, cycles) = run(cfg, &a, &b);
        // M=10, K=rows=4: measured elapsed must be within a couple cycles of
        // M + K + rows; pin it exactly.
        assert_eq!(cycles, crate::timing::tile_stream_cycles(cfg, 10, 4, 4));
    }

    #[test]
    fn f32_matches_reference() {
        let a = Matrix::<f32>::from_fn(9, 4, |r, c| (r as f32 * 0.3) - c as f32 * 0.7);
        let b = Matrix::<f32>::from_fn(4, 6, |r, c| (c as f32 * 0.11) - r as f32 * 0.2);
        let cfg = ArrayConfig { rows: 4, cols: 6 };
        let (c, _) = run(cfg, &a, &b);
        assert!(c.approx_eq(&a.matmul(&b), 1e-4));
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn oversized_weights_panic() {
        let b = Matrix::<i32>::identity(5);
        let _ = SystolicArray::with_weights(ArrayConfig { rows: 4, cols: 4 }, &b);
    }

    #[test]
    fn weight_load_accounted() {
        let cfg = ArrayConfig { rows: 8, cols: 8 };
        let arr = SystolicArray::with_weights(cfg, &Matrix::<i32>::identity(8));
        assert_eq!(arr.cycle(), 8);
    }

    #[test]
    fn back_to_back_streams_accumulate_cycles() {
        let cfg = ArrayConfig { rows: 2, cols: 2 };
        let b = Matrix::<i64>::identity(2);
        let mut arr = SystolicArray::with_weights(cfg, &b);
        let a = Matrix::from_fn(4, 2, |r, c| (r + c) as i64);
        let (_, e1) = arr.stream(&a);
        let c0 = arr.cycle();
        let (_, e2) = arr.stream(&a);
        assert_eq!(e1, e2);
        assert_eq!(arr.cycle(), c0 + e2);
    }
}
