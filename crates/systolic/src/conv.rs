//! Channel-first implicit convolution executed on the functional systolic
//! array — the end-to-end dataflow proof.
//!
//! For each tile group of the schedule, the group's `(g·Ci) × Co` weight
//! slice is made stationary and the group's lowered rows are streamed
//! through the grid; partial OFMaps accumulate across groups. This is
//! exactly the TPU execution of Sec. IV at PE granularity, and it must (and
//! does, by test) reproduce the direct convolution bit-exactly for integer
//! data while reporting exact cycle counts.

use crate::array::{ArrayConfig, SystolicArray};
use crate::timing;
use iconv_core::schedule::TileSchedule;
use iconv_tensor::conv_ref::{filter_dims, ifmap_dims};
use iconv_tensor::im2col::ofmap_from_matrix;
use iconv_tensor::{ConvShape, Layout, Matrix, Scalar, Tensor};

/// Result of running a convolution on the functional array.
#[derive(Debug, Clone)]
pub struct ConvRun<T> {
    /// The OFMap, `NCHW`.
    pub ofmap: Tensor<T>,
    /// Exact cycles spent streaming (including per-group weight loads).
    pub cycles: u64,
    /// Cycles the closed-form model predicts for the same schedule.
    pub predicted_cycles: u64,
}

/// Execute `shape` with the channel-first schedule on a functional array.
///
/// Each group's `N ≤ cols` requirement is handled by splitting `Co` into
/// column tiles.
///
/// # Panics
///
/// Panics if a group needs more than `config.rows` PE rows (choose the
/// schedule with [`TileSchedule::tpu`] to avoid this) or tensor dims
/// mismatch `shape`.
pub fn run_conv_channel_first<T: Scalar>(
    config: ArrayConfig,
    shape: &ConvShape,
    ifmap: &Tensor<T>,
    filter: &Tensor<T>,
    schedule: &TileSchedule,
) -> ConvRun<T> {
    assert_eq!(ifmap.dims(), ifmap_dims(shape), "ifmap dims mismatch");
    assert_eq!(filter.dims(), filter_dims(shape), "filter dims mismatch");
    let m = shape.lowered_rows();
    let mut acc = Matrix::<T>::zeros(m, shape.co);
    let mut cycles = 0u64;
    let mut predicted = 0u64;
    for group in schedule.groups() {
        let k = group.occupied_rows(shape);
        assert!(k <= config.rows, "group {group} needs {k} rows");
        let a = group.a_merged(shape, ifmap);
        let b = group.b_merged(shape, filter);
        // Column-tile Co over the array width.
        let mut col0 = 0;
        while col0 < shape.co {
            let cols = config.cols.min(shape.co - col0);
            let b_sub = Matrix::from_fn(k, cols, |r, c| b[(r, col0 + c)]);
            let mut arr = SystolicArray::with_weights(config, &b_sub);
            cycles += SystolicArray::<T>::weight_load_cycles(config);
            let (out, elapsed) = arr.stream(&a);
            cycles += elapsed;
            predicted += SystolicArray::<T>::weight_load_cycles(config)
                + timing::tile_stream_cycles(config, m, k, cols);
            for r in 0..m {
                for c in 0..cols {
                    acc[(r, col0 + c)] += out[(r, c)];
                }
            }
            col0 += cols;
        }
    }
    ConvRun {
        ofmap: ofmap_from_matrix(shape, &acc),
        cycles,
        predicted_cycles: predicted,
    }
}

/// Convenience: run with the TPU multi-tile schedule and return just the
/// OFMap, checking the cycle prediction internally.
///
/// # Panics
///
/// Panics on dims mismatch, or if the closed-form prediction diverges from
/// the stepped array (which would indicate a dataflow bug).
pub fn conv_on_array<T: Scalar>(
    config: ArrayConfig,
    shape: &ConvShape,
    ifmap: &Tensor<T>,
    filter: &Tensor<T>,
) -> Tensor<T> {
    let schedule = TileSchedule::tpu(shape, config.rows);
    let run = run_conv_channel_first(config, shape, ifmap, filter, &schedule);
    assert_eq!(
        run.cycles, run.predicted_cycles,
        "closed-form timing diverged from the stepped array"
    );
    run.ofmap
}

/// Quick self-check helper used by examples: random tensors, both paths.
pub fn self_check(config: ArrayConfig, shape: &ConvShape, seed: u64) -> bool {
    let x = Tensor::<i64>::random(ifmap_dims(shape), Layout::Nchw, seed);
    let f = Tensor::<i64>::random(filter_dims(shape), Layout::Nchw, seed + 1);
    let want = iconv_tensor::conv_ref::direct_conv(shape, &x, &f);
    let got = conv_on_array(config, shape, &x, &f);
    want.approx_eq(&got, 0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use iconv_tensor::conv_ref::direct_conv;

    #[test]
    fn fig10_example_on_4x4_array() {
        // Paper Fig. 10: N=2, Ci=4, 5x5, f=3x3, Co=4 on a 4x4 array.
        let shape = ConvShape::square(2, 4, 5, 4, 3, 1, 0).unwrap();
        let cfg = ArrayConfig { rows: 4, cols: 4 };
        assert!(self_check(cfg, &shape, 42));
    }

    #[test]
    fn fig11_multi_tile_on_4x4_array() {
        // Paper Fig. 11: Ci=2, group of 2 tiles fills the 4-row array.
        let shape = ConvShape::square(2, 2, 5, 4, 3, 1, 0).unwrap();
        let cfg = ArrayConfig { rows: 4, cols: 4 };
        let sched = TileSchedule::tpu(&shape, cfg.rows);
        assert_eq!(sched.max_duplication(), 2);
        assert!(self_check(cfg, &shape, 7));
    }

    #[test]
    fn strided_and_padded_conv_on_array() {
        let shape = ConvShape::square(1, 3, 9, 5, 3, 2, 1).unwrap();
        let cfg = ArrayConfig { rows: 9, cols: 5 };
        assert!(self_check(cfg, &shape, 3));
    }

    #[test]
    fn co_wider_than_array_column_tiles() {
        let shape = ConvShape::square(1, 2, 6, 7, 3, 1, 0).unwrap();
        let cfg = ArrayConfig { rows: 6, cols: 3 }; // Co=7 > 3 columns
        assert!(self_check(cfg, &shape, 9));
    }

    #[test]
    fn multi_tile_cycles_fewer_than_single_tile() {
        // The whole point of multi-tile: fewer groups -> fewer streamed
        // passes -> fewer cycles.
        let shape = ConvShape::square(1, 2, 7, 4, 3, 1, 0).unwrap();
        let cfg = ArrayConfig { rows: 8, cols: 4 };
        let x = Tensor::<i64>::random(ifmap_dims(&shape), Layout::Nchw, 1);
        let f = Tensor::<i64>::random(filter_dims(&shape), Layout::Nchw, 2);
        let single =
            run_conv_channel_first(cfg, &shape, &x, &f, &TileSchedule::single_tile(&shape));
        let multi = run_conv_channel_first(cfg, &shape, &x, &f, &TileSchedule::tpu(&shape, 8));
        let want = direct_conv(&shape, &x, &f);
        assert!(want.approx_eq(&single.ofmap, 0.0));
        assert!(want.approx_eq(&multi.ofmap, 0.0));
        assert!(
            multi.cycles < single.cycles,
            "multi {} vs single {}",
            multi.cycles,
            single.cycles
        );
    }

    #[test]
    fn prediction_matches_for_every_group_shape() {
        let shape = ConvShape::square(2, 3, 6, 5, 2, 1, 0).unwrap();
        let cfg = ArrayConfig { rows: 6, cols: 5 };
        let x = Tensor::<i64>::random(ifmap_dims(&shape), Layout::Nchw, 11);
        let f = Tensor::<i64>::random(filter_dims(&shape), Layout::Nchw, 12);
        for g in [1usize, 2] {
            let sched = TileSchedule::multi_tile(&shape, g);
            let run = run_conv_channel_first(cfg, &shape, &x, &f, &sched);
            assert_eq!(run.cycles, run.predicted_cycles, "group size {g}");
        }
    }
}
