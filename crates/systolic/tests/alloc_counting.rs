//! Proves the zero-alloc claim for `SystolicArray::stream`: after scratch
//! has been sized by a first stream, subsequent streams of the same or
//! smaller M perform **zero** heap allocations inside the cycle loop (the
//! only allocation left is the output matrix itself).
//!
//! A counting `#[global_allocator]` wrapper makes this a hard assertion
//! instead of a code-review promise. The test binary is single-threaded by
//! construction (one `#[test]` fn), so the global counter is not perturbed
//! by unrelated test threads.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use iconv_systolic::{ArrayConfig, SystolicArray};
use iconv_tensor::Matrix;

struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs_during<R>(f: impl FnOnce() -> R) -> (R, usize) {
    let before = ALLOCS.load(Ordering::Relaxed);
    let r = f();
    (r, ALLOCS.load(Ordering::Relaxed) - before)
}

#[test]
fn stream_is_zero_alloc_per_cycle() {
    let cfg = ArrayConfig { rows: 16, cols: 16 };
    let b = Matrix::<i64>::from_fn(16, 16, |r, c| (r * 17 + c * 3) as i64 % 11 - 5);
    let mut array = SystolicArray::with_weights(cfg, &b);

    // Warm-up stream sizes the internal scratch for M = 64.
    let a_big = Matrix::<i64>::from_fn(64, 16, |r, c| (r * 7 + c) as i64 % 13 - 6);
    array.stream(&a_big);

    // A warmed-up stream allocates only the output matrix: one allocation,
    // independent of M and of the number of cycles stepped.
    let a = Matrix::<i64>::from_fn(64, 16, |r, c| (r * 5 + c * 11) as i64 % 9 - 4);
    let ((_, cycles), n_allocs) = allocs_during(|| array.stream(&a));
    assert!(cycles > 64, "expected a nontrivial number of cycles");
    assert!(
        n_allocs <= 1,
        "stream made {n_allocs} allocations over {cycles} cycles; \
         expected at most 1 (the output matrix)"
    );

    // Same bound for a smaller stream reusing the larger scratch.
    let a_small = Matrix::<i64>::from_fn(5, 16, |r, c| (r + c) as i64 % 7 - 3);
    let ((_, cycles_small), n_allocs_small) = allocs_during(|| array.stream(&a_small));
    assert!(
        n_allocs_small <= 1,
        "small stream made {n_allocs_small} allocations over {cycles_small} cycles"
    );

    // And crucially: alloc count does not scale with cycle count. Compare a
    // long stream against a short one — identical allocation totals.
    assert_eq!(
        n_allocs, n_allocs_small,
        "allocation count must be independent of stream length"
    );
}
