//! Property tests pinning the optimized band-stepped array to the retained
//! naive reference stepper: same outputs, same per-stream cycle counts, same
//! cumulative cycle counter, over randomized geometries and data — including
//! degenerate tiles (M, K, or N of 1) and repeated streams on one array.

use iconv_systolic::reference::ReferenceArray;
use iconv_systolic::{tile_stream_cycles, ArrayConfig, SystolicArray};
use iconv_tensor::Matrix;
use proptest::prelude::*;

/// Random grid geometry plus a streamable (M × K ≤ rows) tile shape.
fn geometries() -> impl Strategy<Value = (ArrayConfig, usize, usize, usize)> {
    (1usize..=8, 1usize..=8, 1usize..=12, 1usize..=8)
        .prop_filter_map("K must fit the grid rows", |(rows, cols, m, k)| {
            (k <= rows).then_some((ArrayConfig { rows, cols }, m, k, cols))
        })
}

fn int_tile(rows: usize, cols: usize, seed: u64) -> Matrix<i64> {
    Matrix::from_fn(rows, cols, |r, c| {
        ((r as u64 * 31 + c as u64 * 7 + seed * 13) % 17) as i64 - 8
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Optimized stream == reference stream, bit-exactly on integers,
    /// including elapsed cycles and the cumulative cycle counter.
    #[test]
    fn optimized_equals_reference((cfg, m, k, _n) in geometries(), seed in 0u64..1000) {
        let b = int_tile(k, cfg.cols.min(k.max(1)), seed);
        let a = int_tile(m, k, seed + 1);
        let mut fast = SystolicArray::with_weights(cfg, &b);
        let mut naive = ReferenceArray::with_weights(cfg, &b);
        let (out_f, cyc_f) = fast.stream(&a);
        let (out_n, cyc_n) = naive.stream(&a);
        prop_assert_eq!(out_f, out_n);
        prop_assert_eq!(cyc_f, cyc_n, "rows={} cols={} m={} k={}", cfg.rows, cfg.cols, m, k);
        prop_assert_eq!(fast.cycle(), naive.cycle());
    }

    /// Same equivalence on floats: the band-stepped accumulation applies
    /// contributions in the same (ascending r) order as the falling psum,
    /// so even float results are bit-identical.
    #[test]
    fn optimized_equals_reference_f32((cfg, m, k, _n) in geometries(), seed in 0u64..1000) {
        let b = Matrix::<f32>::from_fn(k, cfg.cols, |r, c| {
            ((r * 31 + c * 7 + seed as usize) % 23) as f32 * 0.17 - 1.9
        });
        let a = Matrix::<f32>::from_fn(m, k, |r, c| {
            ((r * 13 + c * 5 + seed as usize) % 19) as f32 * 0.23 - 2.1
        });
        let mut fast = SystolicArray::with_weights(cfg, &b);
        let mut naive = ReferenceArray::with_weights(cfg, &b);
        let (out_f, cyc_f) = fast.stream(&a);
        let (out_n, cyc_n) = naive.stream(&a);
        prop_assert_eq!(cyc_f, cyc_n);
        // Bit-identical, not approximately equal.
        prop_assert_eq!(out_f.as_slice(), out_n.as_slice());
    }

    /// Back-to-back streams of different sizes on one array agree with the
    /// reference, exercising scratch reuse and growth.
    #[test]
    fn repeated_streams_equal_reference(
        (cfg, m1, k, _n) in geometries(),
        m2 in 1usize..=12,
        seed in 0u64..1000,
    ) {
        let b = int_tile(k, cfg.cols, seed);
        let mut fast = SystolicArray::with_weights(cfg, &b);
        let mut naive = ReferenceArray::with_weights(cfg, &b);
        for (i, m) in [m1, m2, m1.min(m2)].into_iter().enumerate() {
            let a = int_tile(m, k, seed + i as u64);
            let (out_f, cyc_f) = fast.stream(&a);
            let (out_n, cyc_n) = naive.stream(&a);
            prop_assert_eq!(out_f, out_n, "stream {}", i);
            prop_assert_eq!(cyc_f, cyc_n, "stream {}", i);
        }
        prop_assert_eq!(fast.cycle(), naive.cycle());
    }

    /// The pinned closed form still matches the stepped grid whenever both
    /// are defined (K, N ≥ 1 and N ≥ 2 keeps drain dominant — the regime
    /// `timing::tile_stream_cycles` documents).
    #[test]
    fn closed_form_matches_stepping((cfg, m, k, _n) in geometries(), seed in 0u64..100) {
        if cfg.cols >= 2 && m >= 1 {
            let b = int_tile(k, cfg.cols, seed);
            let a = int_tile(m, k, seed + 1);
            let (_, cycles) = SystolicArray::with_weights(cfg, &b).stream(&a);
            prop_assert_eq!(cycles, tile_stream_cycles(cfg, m, k, cfg.cols));
        }
    }
}
