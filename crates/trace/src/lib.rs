//! Observability primitives for the simulators: spans, counters, and
//! Chrome-trace export.
//!
//! Every simulator crate emits into a [`TraceSink`]. The trait's methods
//! default to no-ops and [`TraceSink::enabled`] defaults to `false`, so an
//! instrumented hot path costs one virtual call (or nothing, when the call
//! site checks `enabled()` before building event payloads). [`NullSink`] is
//! the zero-cost default; [`Recorder`] accumulates spans and counters in
//! memory and exports [Chrome trace format] JSON that loads directly into
//! `chrome://tracing` or [Perfetto](https://ui.perfetto.dev).
//!
//! Spans are *complete* events (`ph: "X"`) on named tracks; all timestamps
//! are in simulated cycles (exported as microseconds, which trace viewers
//! treat as an opaque time unit). Counters are monotonic accumulators:
//! repeated [`TraceSink::counter`] calls with the same name add up, which is
//! what the per-experiment rollups in `results/summary.json` want.
//!
//! The load-bearing consumer is the cycle-conservation invariant: the
//! TPUSim engine emits spans that must partition each layer's reported
//! `cycles` exactly, and tests sum [`Recorder::track_total`] against the
//! report to enforce it.

use std::collections::BTreeMap;

/// A destination for trace events. All methods default to doing nothing, so
/// simulators can emit unconditionally without a feature flag.
pub trait TraceSink {
    /// Whether this sink records anything. Hot paths may skip constructing
    /// per-event data (names, timestamps) when this returns `false`.
    fn enabled(&self) -> bool {
        false
    }

    /// Record a completed span covering `[start, start + dur)` cycles on
    /// the named track.
    fn span(&mut self, track: &str, name: &str, start: u64, dur: u64) {
        let _ = (track, name, start, dur);
    }

    /// Accumulate `value` into the named counter.
    fn counter(&mut self, name: &str, value: u64) {
        let _ = (name, value);
    }

    /// Accumulate `value` into `{prefix}.{index}.{name}` — the naming
    /// convention for per-instance counters (cache shards, fleet
    /// backends), so rollups can both sum across instances and inspect
    /// one. Skips the formatting entirely when the sink is disabled.
    fn counter_indexed(&mut self, prefix: &str, index: usize, name: &str, value: u64) {
        if self.enabled() {
            self.counter(&format!("{prefix}.{index}.{name}"), value);
        }
    }
}

/// The no-op sink: every emission compiles to an empty inlinable call.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TraceSink for NullSink {}

/// One recorded span on a track, in cycles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Track (rendered as a thread row in trace viewers).
    pub track: String,
    /// Event name.
    pub name: String,
    /// Start cycle.
    pub start: u64,
    /// Duration in cycles.
    pub dur: u64,
}

/// An in-memory sink: spans in emission order plus accumulated counters.
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    spans: Vec<Span>,
    counters: BTreeMap<String, u64>,
}

impl Recorder {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// All spans, in emission order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Accumulated counters, sorted by name.
    pub fn counters(&self) -> &BTreeMap<String, u64> {
        &self.counters
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty() && self.counters.is_empty()
    }

    /// Sum of span durations on `track` — the quantity the
    /// cycle-conservation tests compare against reported cycles.
    pub fn track_total(&self, track: &str) -> u64 {
        self.spans
            .iter()
            .filter(|s| s.track == track)
            .map(|s| s.dur)
            .sum()
    }

    /// Distinct track names, in first-emission order.
    pub fn tracks(&self) -> Vec<&str> {
        let mut seen = Vec::new();
        for s in &self.spans {
            if !seen.contains(&s.track.as_str()) {
                seen.push(s.track.as_str());
            }
        }
        seen
    }

    /// Fold another recorder's events into this one (spans append,
    /// counters add). Used to roll worker-local recorders up
    /// deterministically, in input order.
    pub fn merge(&mut self, other: &Recorder) {
        self.spans.extend(other.spans.iter().cloned());
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
    }

    /// Export as Chrome trace format JSON (the `traceEvents` array form):
    /// one `ph: "X"` complete event per span, a `thread_name` metadata
    /// event per track, and one `ph: "C"` counter sample per counter.
    /// Cycles map to the viewer's microsecond unit.
    pub fn to_chrome_json(&self) -> String {
        let tracks = self.tracks();
        let tid = |t: &str| tracks.iter().position(|x| *x == t).unwrap_or(0);
        let mut events = Vec::new();
        for (i, t) in tracks.iter().enumerate() {
            events.push(format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{i},\
                 \"args\":{{\"name\":\"{}\"}}}}",
                escape(t)
            ));
        }
        for s in &self.spans {
            events.push(format!(
                "{{\"name\":\"{}\",\"cat\":\"sim\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                 \"pid\":0,\"tid\":{}}}",
                escape(&s.name),
                s.start,
                s.dur,
                tid(&s.track)
            ));
        }
        for (name, value) in &self.counters {
            events.push(format!(
                "{{\"name\":\"{}\",\"ph\":\"C\",\"ts\":0,\"pid\":0,\
                 \"args\":{{\"value\":{value}}}}}",
                escape(name)
            ));
        }
        let mut out = String::from("{\n  \"displayTimeUnit\": \"ns\",\n  \"traceEvents\": [\n");
        for (i, e) in events.iter().enumerate() {
            out.push_str("    ");
            out.push_str(e);
            if i + 1 < events.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]\n}\n");
        out
    }
}

impl TraceSink for Recorder {
    fn enabled(&self) -> bool {
        true
    }

    fn span(&mut self, track: &str, name: &str, start: u64, dur: u64) {
        self.spans.push(Span {
            track: track.to_string(),
            name: name.to_string(),
            start,
            dur,
        });
    }

    fn counter(&mut self, name: &str, value: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += value;
    }
}

/// Minimal JSON string escaping for event/track names.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sink_is_disabled_and_silent() {
        let mut s = NullSink;
        assert!(!s.enabled());
        s.span("t", "n", 0, 10);
        s.counter("c", 5);
    }

    #[test]
    fn recorder_accumulates_spans_and_counters() {
        let mut r = Recorder::new();
        assert!(r.is_empty());
        r.span("layer", "dispatch", 0, 100);
        r.span("layer", "steady", 100, 900);
        r.span("mem", "fill", 0, 300);
        r.counter("cycles", 1000);
        r.counter("cycles", 500);
        assert_eq!(r.spans().len(), 3);
        assert_eq!(r.track_total("layer"), 1000);
        assert_eq!(r.track_total("mem"), 300);
        assert_eq!(r.counters()["cycles"], 1500);
        assert_eq!(r.tracks(), vec!["layer", "mem"]);
    }

    #[test]
    fn counter_indexed_names_by_prefix_index_name() {
        let mut r = Recorder::new();
        r.counter_indexed("serve.shard", 3, "hits", 7);
        r.counter_indexed("serve.shard", 3, "hits", 2);
        r.counter_indexed("serve.shard", 11, "misses", 1);
        assert_eq!(r.counters()["serve.shard.3.hits"], 9);
        assert_eq!(r.counters()["serve.shard.11.misses"], 1);
        // Disabled sinks skip the name formatting and record nothing.
        let mut n = NullSink;
        n.counter_indexed("serve.shard", 0, "hits", 1);
    }

    #[test]
    fn merge_appends_spans_and_adds_counters() {
        let mut a = Recorder::new();
        a.span("t", "x", 0, 1);
        a.counter("c", 2);
        let mut b = Recorder::new();
        b.span("t", "y", 1, 2);
        b.counter("c", 3);
        b.counter("d", 1);
        a.merge(&b);
        assert_eq!(a.spans().len(), 2);
        assert_eq!(a.counters()["c"], 5);
        assert_eq!(a.counters()["d"], 1);
    }

    #[test]
    fn chrome_json_is_well_formed() {
        let mut r = Recorder::new();
        r.span("conv1", "dispatch", 0, 10);
        r.counter("tpusim.cycles", 42);
        let j = r.to_chrome_json();
        assert!(j.starts_with('{') && j.trim_end().ends_with('}'));
        assert!(j.contains("\"traceEvents\""));
        assert!(j.contains("\"ph\":\"X\""));
        assert!(j.contains("\"ph\":\"M\""));
        assert!(j.contains("\"ph\":\"C\""));
        assert!(j.contains("\"dur\":10"));
        assert!(j.contains("\"value\":42"));
        // Balanced braces/brackets (hand-rolled JSON sanity).
        assert_eq!(
            j.matches('{').count(),
            j.matches('}').count(),
            "unbalanced braces"
        );
        assert_eq!(j.matches('[').count(), j.matches(']').count());
        // No trailing comma before the closing bracket.
        assert!(!j.contains(",\n  ]"));
    }

    #[test]
    fn names_are_escaped() {
        let mut r = Recorder::new();
        r.span("t\"rack", "na\\me", 0, 1);
        let j = r.to_chrome_json();
        assert!(j.contains("t\\\"rack"));
        assert!(j.contains("na\\\\me"));
    }
}
