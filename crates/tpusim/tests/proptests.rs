//! Property-based sanity of the TPU simulator: monotonicity, conservation
//! and cross-model invariants over randomized layers.

use iconv_models::Roofline;
use iconv_tensor::ConvShape;
use iconv_tpusim::{SimMode, Simulator, TpuConfig};
use proptest::prelude::*;

fn conv_shapes() -> impl Strategy<Value = ConvShape> {
    (
        1usize..=16,  // n
        1usize..=256, // ci
        1usize..=3,   // hf=wf
        1usize..=128, // co
        1usize..=2,   // stride
        prop::sample::select(vec![7usize, 14, 28, 56]),
    )
        .prop_filter_map("valid", |(n, ci, f, co, s, hw)| {
            ConvShape::new(n, ci, hw, hw, co, f, f)
                .stride(s)
                .pad(f / 2)
                .build()
                .ok()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Simulated latency never beats the machine roofline.
    #[test]
    fn never_beats_roofline(shape in conv_shapes()) {
        let sim = Simulator::new(TpuConfig::tpu_v2());
        let rep = sim.simulate_conv("l", &shape, SimMode::ChannelFirst);
        let min = Roofline::tpu_v2().min_cycles(shape.macs(), rep.dram_bytes);
        prop_assert!(rep.cycles as f64 >= min * 0.999,
            "{shape}: {} cycles < roofline {min:.0}", rep.cycles);
    }

    /// Utilization and occupancy are proper fractions.
    #[test]
    fn fractions_in_range(shape in conv_shapes()) {
        let sim = Simulator::new(TpuConfig::tpu_v2());
        let rep = sim.simulate_conv("l", &shape, SimMode::ChannelFirst);
        let u = rep.utilization(sim.config());
        prop_assert!((0.0..=1.0).contains(&u), "utilization {u}");
        prop_assert!((0.0..=1.0).contains(&rep.array_occupancy));
        prop_assert!(rep.compute_cycles <= rep.cycles);
    }

    /// Doubling the batch size never makes the layer *more* than ~2.2x
    /// slower and never faster (work scales linearly, overheads amortize).
    #[test]
    fn batch_monotone(shape in conv_shapes()) {
        let sim = Simulator::new(TpuConfig::tpu_v2());
        let double = ConvShape { n: shape.n * 2, ..shape };
        let a = sim.simulate_conv("l", &shape, SimMode::ChannelFirst).cycles;
        let b = sim.simulate_conv("l", &double, SimMode::ChannelFirst).cycles;
        prop_assert!(b >= a, "batch x2 got faster: {a} -> {b}");
        prop_assert!(b as f64 <= 2.3 * a as f64, "batch x2 superlinear: {a} -> {b}");
    }

    /// The explicit baseline is never cheaper in DRAM traffic than the
    /// implicit method (it moves the lowered matrix on top).
    #[test]
    fn explicit_always_moves_more_data(shape in conv_shapes()) {
        let sim = Simulator::new(TpuConfig::tpu_v2());
        let imp = sim.simulate_conv("l", &shape, SimMode::ChannelFirst);
        let exp = sim.simulate_conv("l", &shape, SimMode::Explicit);
        prop_assert!(exp.dram_bytes > imp.dram_bytes);
    }

    /// Multi-tile grouping never hurts: the auto strategy is at least as
    /// fast as single-tile.
    #[test]
    fn auto_strategy_never_slower_than_single(shape in conv_shapes()) {
        let sim = Simulator::new(TpuConfig::tpu_v2());
        let auto = sim.simulate_conv("l", &shape, SimMode::ChannelFirst).cycles;
        let single = sim.simulate_conv("l", &shape, SimMode::ChannelFirstGrouped(1)).cycles;
        prop_assert!(auto <= single, "auto {auto} > single {single}");
    }

    /// A TPU-v3 core is never slower than v2 on compute-bound layers (its
    /// two MXUs dominate); on memory-bound layers it may lose modestly —
    /// its per-core HBM share is smaller — but never by more than the
    /// bandwidth ratio.
    #[test]
    fn v3_vs_v2_wallclock(shape in conv_shapes()) {
        let v2 = Simulator::new(TpuConfig::tpu_v2());
        let v3 = Simulator::new(TpuConfig::tpu_v3());
        let r2 = v2.simulate_conv("l", &shape, SimMode::ChannelFirst);
        let s2 = r2.seconds(v2.config());
        let s3 = {
            let r = v3.simulate_conv("l", &shape, SimMode::ChannelFirst);
            r.seconds(v3.config())
        };
        let v3_balance = v3.config().peak_macs_per_cycle() as f64
            / v3.config().dram.bytes_per_cycle;
        let compute_bound = shape.macs() as f64 / r2.dram_bytes as f64 >= v3_balance;
        if compute_bound {
            prop_assert!(s3 <= s2 * 1.02, "compute-bound: v3 {s3} vs v2 {s2}");
        } else {
            // Bounded by the per-core bandwidth ratio (~2.1x) plus margin.
            prop_assert!(s3 <= s2 * 2.3, "memory-bound: v3 {s3} vs v2 {s2}");
        }
    }

    /// Training: gradient passes conserve FLOPs (each equals the forward).
    #[test]
    fn training_flops_conserved(shape in conv_shapes()) {
        let sim = Simulator::new(TpuConfig::tpu_v2());
        let step = sim.simulate_training_step("l", &shape, true);
        prop_assert_eq!(step.forward.flops, step.wgrad.flops);
        prop_assert_eq!(step.total_flops(), 3 * step.forward.flops);
        prop_assert!(step.total_cycles() > step.forward.cycles);
    }

    /// Cycle conservation on randomized shapes, all modes: phase spans
    /// partition `cycles`, and `compute + exposed == cycles − dispatch`.
    #[test]
    fn conservation_on_random_shapes(shape in conv_shapes()) {
        let sim = Simulator::new(TpuConfig::tpu_v2());
        for mode in [SimMode::ChannelFirst, SimMode::ChannelFirstGrouped(3), SimMode::Explicit] {
            let rep = sim.simulate_conv("l", &shape, mode);
            prop_assert!(rep.assert_conserved(), "{mode:?} on {shape}");
        }
    }
}

/// The exhaustive table sweep: every layer of every workload model, under
/// every lowering mode and every IFMap layout, must satisfy the cycle
/// conservation invariants. This is the always-on net beneath the trace
/// layer — the whole class of remainder-truncation / underflow accounting
/// bugs fails this test.
#[test]
fn conservation_over_all_workload_tables() {
    use iconv_tensor::Layout;
    let mut checked = 0usize;
    for layout in [Layout::Hwcn, Layout::Nhwc, Layout::Nchw, Layout::Chwn] {
        let mut cfg = TpuConfig::tpu_v2();
        cfg.ifmap_layout = layout;
        let sim = Simulator::new(cfg);
        for model in iconv_workloads::all_models(8) {
            for layer in &model.layers {
                for mode in [
                    SimMode::ChannelFirst,
                    SimMode::ChannelFirstGrouped(2),
                    SimMode::Explicit,
                ] {
                    let rep = sim.simulate_conv(&layer.name, &layer.shape, mode);
                    assert!(
                        rep.assert_conserved(),
                        "{}/{} {mode:?} {layout:?}",
                        model.name,
                        layer.name
                    );
                    assert!(rep.compute_cycles <= rep.cycles);
                    checked += 1;
                }
                if layer.groups > 1 {
                    let gc = iconv_tensor::GroupedConv::new(layer.shape, layer.groups).unwrap();
                    for strategy in [
                        iconv_tpusim::grouped::GroupedStrategy::Sequential,
                        iconv_tpusim::grouped::GroupedStrategy::BlockDiagonal,
                    ] {
                        let rep = sim.simulate_grouped(&layer.name, &gc, strategy);
                        assert!(rep.assert_conserved(), "{} {strategy:?}", layer.name);
                        checked += 1;
                    }
                }
            }
        }
    }
    assert!(checked > 500, "sweep too small: {checked} reports");
}
