//! Grouped/depthwise convolution on the channel-first machine.
//!
//! GEMM accelerators have no native grouped-convolution support; the two
//! realizable strategies, both expressible with the paper's machinery:
//!
//! * [`GroupedStrategy::Sequential`] — run each group as its own small
//!   channel-first convolution. The array sees `Ci/G` input channels per
//!   pass; the multi-tile merge recovers some occupancy (up to `Wf` taps),
//!   but for depthwise (`Ci/G = 1`) at most `Wf` of 128 rows ever work.
//! * [`GroupedStrategy::BlockDiagonal`] — run ONE dense-shaped convolution
//!   whose weight matrix is block-diagonal (zeros between groups). Streaming
//!   efficiency is that of the dense layer, but `(G−1)/G` of the MACs
//!   multiply zeros.
//!
//! Either way the *useful* FLOPs are `1/G` of the dense layer's — the
//! channel-first analysis makes precise why depthwise layers achieve ~1 % of
//! peak on TPU-class hardware (see the `ablation_depthwise` runner).

use crate::engine::{SimMode, Simulator};
use crate::report::LayerReport;
use iconv_tensor::grouped::GroupedConv;

/// Execution strategy for a grouped convolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GroupedStrategy {
    /// One small convolution per group, back to back.
    Sequential,
    /// One dense-shaped pass with block-diagonal (mostly zero) weights.
    BlockDiagonal,
    /// Whichever of the two is faster for this layer (what a tuned
    /// compiler would pick).
    Auto,
}

impl Simulator {
    /// Simulate a grouped convolution under `strategy`. The report's
    /// `flops` counts only the useful (non-zero) work, so `tflops()` and
    /// `utilization()` read as achieved useful throughput.
    /// # Examples
    ///
    /// ```
    /// # use iconv_tpusim::{grouped::GroupedStrategy, Simulator, TpuConfig};
    /// # use iconv_tensor::{ConvShape, GroupedConv};
    /// # fn main() -> Result<(), iconv_tensor::ShapeError> {
    /// let sim = Simulator::new(TpuConfig::tpu_v2());
    /// let dw = GroupedConv::depthwise(ConvShape::square(8, 256, 14, 256, 3, 1, 1)?, 1)?;
    /// let rep = sim.simulate_grouped("dw", &dw, GroupedStrategy::Auto);
    /// // One channel per group leaves the 128x128 array almost idle.
    /// assert!(rep.utilization(sim.config()) < 0.05);
    /// # Ok(()) }
    /// ```
    pub fn simulate_grouped(
        &self,
        name: &str,
        conv: &GroupedConv,
        strategy: GroupedStrategy,
    ) -> LayerReport {
        match strategy {
            GroupedStrategy::Sequential => self.simulate_grouped_sequential(name, conv),
            GroupedStrategy::BlockDiagonal => self.simulate_grouped_blockdiag(name, conv),
            GroupedStrategy::Auto => {
                let seq = self.simulate_grouped_sequential(name, conv);
                let blk = self.simulate_grouped_blockdiag(name, conv);
                if seq.cycles <= blk.cycles {
                    seq
                } else {
                    blk
                }
            }
        }
    }

    fn simulate_grouped_sequential(&self, name: &str, conv: &GroupedConv) -> LayerReport {
        let gs = conv.group_shape();
        let one = self.simulate_conv(name, &gs, SimMode::ChannelFirst);
        let g = conv.groups as u64;
        // Dispatch once; per-group compute/memory repeats. Weight loads for
        // the next group overlap the current group's stream (double
        // buffering), matching the dense engine's assumption.
        let per_group = one.cycles - self.config().dispatch_cycles.min(one.cycles);
        // Only the first group's fill is exposed head; later groups' fills
        // fold into the steady pipeline, keeping the phase partition exact.
        let phases = crate::report::Phases {
            dispatch: self.config().dispatch_cycles,
            first_fill: one.phases.first_fill,
            steady: per_group * g - one.phases.first_fill,
        };
        let rep = LayerReport {
            name: format!("{name} (seq x{g})"),
            cycles: self.config().dispatch_cycles + per_group * g,
            compute_cycles: one.compute_cycles * g,
            exposed_memory_cycles: one.exposed_memory_cycles * g,
            flops: conv.flops(),
            dram_bytes: one.dram_bytes * g,
            workspace_bytes: one.workspace_bytes,
            sram: one.sram,
            array_occupancy: one.array_occupancy,
            phases,
        };
        debug_assert!(rep.assert_conserved());
        rep
    }

    fn simulate_grouped_blockdiag(&self, name: &str, conv: &GroupedConv) -> LayerReport {
        // Dense-shaped pass over the full channel extents...
        let mut rep = self.simulate_conv(name, &conv.shape, SimMode::ChannelFirst);
        rep.name = format!("{name} (block-diag)");
        // ...but only 1/G of the MACs are useful, and only the
        // block-diagonal weights move from DRAM.
        rep.flops = conv.flops();
        let eb = self.config().vector_mem.elem_bytes as u64;
        let dense_weights = conv.shape.filter_elems() as u64 * eb;
        let useful_weights = dense_weights / conv.groups as u64;
        rep.dram_bytes = rep.dram_bytes - dense_weights + useful_weights;
        rep.array_occupancy /= conv.groups as f64;
        rep
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TpuConfig;
    use iconv_tensor::ConvShape;

    fn sim() -> Simulator {
        Simulator::new(TpuConfig::tpu_v2())
    }

    fn depthwise(ci: usize, hw: usize) -> GroupedConv {
        let s = ConvShape::square(8, ci, hw, ci, 3, 1, 1).unwrap();
        GroupedConv::new(s, ci).unwrap()
    }

    #[test]
    fn depthwise_utilization_collapses() {
        // The headline: a 512-channel depthwise layer achieves ~1% of peak
        // under either strategy.
        let dw = depthwise(512, 14);
        for strategy in [GroupedStrategy::Sequential, GroupedStrategy::BlockDiagonal] {
            let r = sim().simulate_grouped("dw", &dw, strategy);
            let u = r.utilization(sim().config());
            assert!(u < 0.05, "{strategy:?}: utilization {u}");
        }
    }

    #[test]
    fn dense_group_of_one_matches_plain_simulation() {
        let shape = ConvShape::square(8, 64, 28, 64, 3, 1, 1).unwrap();
        let gc = GroupedConv::new(shape, 1).unwrap();
        let grouped = sim().simulate_grouped("l", &gc, GroupedStrategy::Sequential);
        let plain = sim().simulate_conv("l", &shape, SimMode::ChannelFirst);
        assert_eq!(grouped.cycles, plain.cycles);
        assert_eq!(grouped.flops, plain.flops);
    }

    #[test]
    fn auto_picks_the_better_strategy() {
        let dw = depthwise(256, 28);
        let seq = sim().simulate_grouped("l", &dw, GroupedStrategy::Sequential);
        let blk = sim().simulate_grouped("l", &dw, GroupedStrategy::BlockDiagonal);
        let auto = sim().simulate_grouped("l", &dw, GroupedStrategy::Auto);
        assert_eq!(auto.cycles, seq.cycles.min(blk.cycles));
    }

    #[test]
    fn block_diagonal_wins_for_many_small_groups() {
        // Depthwise: sequential pays per-group passes (Ho·Wo·N cycles each,
        // thousands of groups); block-diagonal pays one dense-shaped pass.
        let dw = depthwise(512, 14);
        let seq = sim().simulate_grouped("l", &dw, GroupedStrategy::Sequential);
        let blk = sim().simulate_grouped("l", &dw, GroupedStrategy::BlockDiagonal);
        assert!(
            blk.cycles < seq.cycles,
            "block-diag {} vs sequential {}",
            blk.cycles,
            seq.cycles
        );
    }

    #[test]
    fn grouped_reports_stay_conserved() {
        let dw = depthwise(256, 14);
        for strategy in [GroupedStrategy::Sequential, GroupedStrategy::BlockDiagonal] {
            let r = sim().simulate_grouped("dw", &dw, strategy);
            assert!(r.assert_conserved(), "{strategy:?}");
        }
    }

    #[test]
    fn useful_flops_are_one_gth_of_dense() {
        let shape = ConvShape::square(8, 64, 28, 64, 3, 1, 1).unwrap();
        let gc = GroupedConv::new(shape, 4).unwrap();
        let r = sim().simulate_grouped("l", &gc, GroupedStrategy::BlockDiagonal);
        assert_eq!(r.flops, shape.flops() / 4);
    }
}
