//! First-order energy accounting for simulated layers.
//!
//! The paper argues its design points (no crossbar, wide SRAM words, HWCN
//! DRAM layout) from area and performance; energy is the third axis the
//! same counters expose. This model charges the canonical 45 nm-class
//! per-event energies to the activity TPUSim already counts: MACs, vector-
//! memory word accesses, and DRAM bytes. Constants follow the widely used
//! Horowitz ISSCC'14 numbers (as popularized by the Eyeriss/TPU papers),
//! with SRAM access energy scaled by word width.

use crate::config::TpuConfig;
use crate::report::LayerReport;

/// Per-event energy constants (picojoules).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// One 32-bit multiply-accumulate (datapath only).
    pub mac_pj: f64,
    /// SRAM access energy per *byte* for a ~256 KB macro (word-width
    /// scaling applied per access).
    pub sram_pj_per_byte: f64,
    /// Fixed per-SRAM-access overhead (decode, wordline) independent of
    /// width — why narrow words are energy-inefficient too.
    pub sram_pj_per_access: f64,
    /// DRAM transfer energy per byte (HBM class).
    pub dram_pj_per_byte: f64,
    /// Static leakage + clock power per core-cycle (nanojoules/cycle),
    /// covering the always-on fraction of the 40 W-class core.
    pub static_nj_per_cycle: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self {
            mac_pj: 3.1,             // 32-bit int/fp-mixed MAC, 45 nm class
            sram_pj_per_byte: 1.2,   // large-macro read, per byte
            sram_pj_per_access: 6.0, // decode/wordline per access
            dram_pj_per_byte: 31.2,  // HBM-class, ~4 pJ/bit
            static_nj_per_cycle: 8.0,
        }
    }
}

/// Energy breakdown of one simulated layer, in millijoules.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyReport {
    /// MAC (datapath) energy.
    pub mac_mj: f64,
    /// Vector-memory access energy.
    pub sram_mj: f64,
    /// Off-chip transfer energy.
    pub dram_mj: f64,
    /// Static/clock energy over the layer's cycles.
    pub static_mj: f64,
}

impl EnergyReport {
    /// Total energy in millijoules.
    pub fn total_mj(&self) -> f64 {
        self.mac_mj + self.sram_mj + self.dram_mj + self.static_mj
    }

    /// Energy efficiency in GFLOPS/W given the layer's FLOPs and seconds.
    pub fn gflops_per_watt(&self, flops: u64, seconds: f64) -> f64 {
        let watts = self.total_mj() / 1e3 / seconds;
        (flops as f64 / seconds / 1e9) / watts
    }
}

impl EnergyModel {
    /// Charge the model to a layer report produced by the simulator.
    pub fn energy_of(&self, report: &LayerReport, config: &TpuConfig) -> EnergyReport {
        let macs = (report.flops / 2) as f64;
        let word_bytes = config.vector_mem.word_bytes() as f64;
        // Per-array average access counts were recorded per array; scale to
        // the full file.
        let accesses = (report.sram.reads + report.sram.writes) as f64 * config.array.rows as f64;
        let sram_pj = accesses * (self.sram_pj_per_access + self.sram_pj_per_byte * word_bytes);
        EnergyReport {
            mac_mj: macs * self.mac_pj / 1e9,
            sram_mj: sram_pj / 1e9,
            dram_mj: report.dram_bytes as f64 * self.dram_pj_per_byte / 1e9,
            static_mj: report.cycles as f64 * self.static_nj_per_cycle / 1e6,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{SimMode, Simulator};
    use iconv_tensor::ConvShape;

    fn report() -> (LayerReport, TpuConfig) {
        let cfg = TpuConfig::tpu_v2();
        let sim = Simulator::new(cfg);
        let shape = ConvShape::square(8, 128, 28, 128, 3, 1, 1).unwrap();
        (sim.simulate_conv("l", &shape, SimMode::ChannelFirst), cfg)
    }

    #[test]
    fn breakdown_is_positive_and_mac_dominated_for_dense_layers() {
        let (rep, cfg) = report();
        let e = EnergyModel::default().energy_of(&rep, &cfg);
        assert!(e.mac_mj > 0.0 && e.sram_mj > 0.0 && e.dram_mj > 0.0);
        // Compute-bound conv: datapath + static dominate off-chip.
        assert!(e.mac_mj > e.dram_mj, "{e:?}");
    }

    #[test]
    fn efficiency_in_plausible_range() {
        let (rep, cfg) = report();
        let e = EnergyModel::default().energy_of(&rep, &cfg);
        let gw = e.gflops_per_watt(rep.flops, rep.seconds(&cfg));
        // TPU-class accelerators land in the hundreds of GFLOPS/W.
        assert!((50.0..5000.0).contains(&gw), "{gw} GFLOPS/W");
    }

    #[test]
    fn explicit_im2col_costs_more_dram_energy() {
        let cfg = TpuConfig::tpu_v2();
        let sim = Simulator::new(cfg);
        let shape = ConvShape::square(8, 64, 56, 64, 3, 1, 1).unwrap();
        let m = EnergyModel::default();
        let imp = m.energy_of(&sim.simulate_conv("l", &shape, SimMode::ChannelFirst), &cfg);
        let exp = m.energy_of(&sim.simulate_conv("l", &shape, SimMode::Explicit), &cfg);
        assert!(
            exp.dram_mj > 2.0 * imp.dram_mj,
            "explicit {:.3} vs implicit {:.3} mJ DRAM",
            exp.dram_mj,
            imp.dram_mj
        );
    }

    #[test]
    fn wider_words_cost_more_per_access_but_fewer_accesses() {
        let shape = ConvShape::square(8, 128, 28, 128, 3, 1, 1).unwrap();
        let m = EnergyModel::default();
        let mut totals = Vec::new();
        for elems in [1usize, 8] {
            let cfg = TpuConfig::tpu_v2().with_word_elems(elems);
            let sim = Simulator::new(cfg);
            let rep = sim.simulate_conv("l", &shape, SimMode::ChannelFirst);
            totals.push(m.energy_of(&rep, &cfg).sram_mj);
        }
        // Word 8 amortizes the per-access overhead: less SRAM energy than
        // word 1 for the same delivered data.
        assert!(
            totals[1] < totals[0],
            "w8 {} vs w1 {}",
            totals[1],
            totals[0]
        );
    }
}
