//! Cycle-stepped micro-simulation of the full TPU datapath — the machine of
//! paper Fig. 10, wired end to end:
//!
//! ```text
//!  vector memories ──word──▶ serializers ──elem/cycle──▶ systolic array
//!        ▲                                                    │
//!        └──────word──── de-serializers ◀──result/cycle───────┘
//! ```
//!
//! Every component is stepped every cycle: each single-port SRAM array
//! accepts at most one access per cycle (reads for the serializer, writes
//! from the de-serializer, interleaved exactly as Sec. IV-A describes); the
//! serializers hold one word and issue one element per cycle into their PE
//! row with the systolic skew; the weight-stationary grid computes; the
//! de-serializers pack results back into words.
//!
//! This is the ground truth beneath the phase-level engine: it produces
//! *both* bit-exact OFMaps and exact cycle counts with real port-conflict
//! behaviour, at small scale. Tests verify the OFMap against direct
//! convolution, the port-discipline invariant (never two accesses in one
//! cycle), and that the phase engine's throughput assumptions (one lowered
//! row per cycle at word ≥ 2, 2× stall at word 1 with write-back) emerge
//! rather than being assumed.

use iconv_core::addrgen::{AddrGen, ArrayOp, VectorMemSpec};
use iconv_core::schedule::TileSchedule;
use iconv_systolic::{ArrayConfig, SystolicArray};
use iconv_tensor::conv_ref::{filter_dims, ifmap_dims, ofmap_dims};
use iconv_tensor::im2col::ofmap_from_matrix;
use iconv_tensor::{ConvShape, Layout, Matrix, Scalar, Tensor};
use iconv_trace::{NullSink, TraceSink};

/// Result of a micro-simulated convolution.
#[derive(Debug, Clone)]
pub struct MicroRun<T> {
    /// The OFMap, `NCHW`, bit-exact for integer scalars.
    pub ofmap: Tensor<T>,
    /// Exact cycles, including weight loads, port stalls and drains.
    pub cycles: u64,
    /// Total vector-memory read accesses issued.
    pub sram_reads: u64,
    /// Total vector-memory write accesses issued.
    pub sram_writes: u64,
    /// Cycles lost to read/write port conflicts.
    pub port_stall_cycles: u64,
}

impl<T> MicroRun<T> {
    /// Port busy fraction over the run.
    pub fn port_utilization(&self, arrays: usize) -> f64 {
        (self.sram_reads + self.sram_writes) as f64 / (self.cycles as f64 * arrays as f64)
    }
}

/// One per-PE-row serializer: holds a word, issues one element per cycle.
#[derive(Debug, Clone)]
struct Serializer<T> {
    /// Remaining elements of the current word (front = next to issue).
    word: Vec<Option<T>>,
    cursor: usize,
}

impl<T: Scalar> Serializer<T> {
    fn new() -> Self {
        Self {
            word: Vec::new(),
            cursor: 0,
        }
    }

    fn empty(&self) -> bool {
        self.cursor >= self.word.len()
    }

    fn load(&mut self, word: Vec<Option<T>>) {
        debug_assert!(self.empty(), "serializer overrun");
        self.word = word;
        self.cursor = 0;
    }

    fn issue(&mut self) -> Option<T> {
        let v = self.word.get(self.cursor).copied().flatten();
        self.cursor += 1;
        v
    }
}

/// Cycle-stepped micro-simulation of one convolution with the channel-first
/// schedule on the Fig. 10 machine.
///
/// `spec.arrays` vector memories feed an `spec.arrays × cols` grid; the
/// schedule's groups run back to back. `write_back` enables OFMap
/// de-serialization into the same vector memories (contending for the
/// single ports); with it off, results stream to a separate buffer (the
/// TPU-v1-style split memory, for ablation).
///
/// # Panics
///
/// Panics if a tile group needs more PE rows than `spec.arrays`, or if
/// tensor dims mismatch `shape`.
pub fn run_conv<T: Scalar>(
    shape: &ConvShape,
    ifmap: &Tensor<T>,
    filter: &Tensor<T>,
    spec: VectorMemSpec,
    cols: usize,
    schedule: &TileSchedule,
    write_back: bool,
) -> MicroRun<T> {
    run_conv_traced(
        shape,
        ifmap,
        filter,
        spec,
        cols,
        schedule,
        write_back,
        &mut NullSink,
    )
}

/// [`run_conv`] with per-pass `weight-load` / `stream` / `drain` spans on a
/// `microsim` track (their durations sum exactly to the returned `cycles`)
/// and port counters emitted into `sink`.
#[allow(clippy::too_many_arguments)]
pub fn run_conv_traced<T: Scalar>(
    shape: &ConvShape,
    ifmap: &Tensor<T>,
    filter: &Tensor<T>,
    spec: VectorMemSpec,
    cols: usize,
    schedule: &TileSchedule,
    write_back: bool,
    sink: &mut dyn TraceSink,
) -> MicroRun<T> {
    assert_eq!(ifmap.dims(), ifmap_dims(shape), "ifmap dims mismatch");
    assert_eq!(filter.dims(), filter_dims(shape), "filter dims mismatch");
    let m_total = shape.lowered_rows();
    let mut acc = Matrix::<T>::zeros(m_total, shape.co);
    let mut cycles = 0u64;
    let mut sram_reads = 0u64;
    let mut sram_writes = 0u64;
    let mut stalls = 0u64;
    let arrays = spec.arrays;
    let grid = ArrayConfig { rows: arrays, cols };

    for group in schedule.groups() {
        let gen = AddrGen::new(shape, spec, group);
        // Column-tile Co over the grid width.
        let mut col0 = 0;
        while col0 < shape.co {
            let ncols = cols.min(shape.co - col0);
            let b = group.b_merged(shape, filter);
            let b_sub = Matrix::from_fn(group.occupied_rows(shape), ncols, |r, c| b[(r, col0 + c)]);
            let mut array = SystolicArray::with_weights(grid, &b_sub);
            let pass_start = cycles;
            let weight_load = SystolicArray::<T>::weight_load_cycles(grid);
            cycles += weight_load;

            // Streamed A rows are assembled through serializers, one lowered
            // row per issue cycle (modulo port stalls). We model the port
            // discipline cycle by cycle, then hand the assembled activation
            // matrix to the (already cycle-validated) systolic grid.
            let mut serializers: Vec<Serializer<T>> =
                (0..arrays).map(|_| Serializer::new()).collect();
            let mut a_rows: Vec<Vec<T>> = Vec::with_capacity(m_total);
            let mut row_ids: Vec<usize> = Vec::with_capacity(m_total);
            let mut step = 0usize;
            let mut lane = 0usize;
            // Pending OFMap write-backs per array: each completed output
            // word costs one port access on its target array.
            let mut pending_writes: u64 = 0;
            let mut stream_cycles = 0u64;
            while step < gen.steps() {
                // Refill phase: any serializer that ran dry loads its next
                // word — one port access. A pending OFMap write to the same
                // array must wait (interleave), stalling the stream a cycle.
                let mut port_used = vec![false; arrays];
                if lane == 0 {
                    for (a, ser) in serializers.iter_mut().enumerate() {
                        if !ser.empty() {
                            continue; // already refilled before a stall retry
                        }
                        match gen.op(step, a) {
                            ArrayOp::Read(_) => {
                                let word: Vec<Option<T>> = (0..spec.word_elems)
                                    .map(|l| gen.element(step, a, l).map(|c| ifmap.get(c)))
                                    .collect();
                                ser.load(word);
                                sram_reads += 1;
                                port_used[a] = true;
                            }
                            ArrayOp::ZeroInject => {
                                ser.load(vec![None; spec.word_elems]);
                            }
                            ArrayOp::Unassigned => {
                                ser.load(vec![None; spec.word_elems]);
                            }
                        }
                    }
                }
                // Drain one pending output word into a free port slot; the
                // de-serializer buffers a few words, so the stream only
                // stalls when the buffer would overflow (all ports busy for
                // too long — the word-1 pathology).
                const WRITE_BUFFER_WORDS: u64 = 4;
                if write_back {
                    if pending_writes > 0 && port_used.iter().any(|&u| !u) {
                        pending_writes -= 1;
                        sram_writes += 1;
                    }
                    if pending_writes > WRITE_BUFFER_WORDS {
                        stalls += 1;
                        stream_cycles += 1;
                        continue;
                    }
                }
                // Issue phase: one element per row into the assembled A row.
                let mut row = vec![T::zero(); arrays];
                for (a, ser) in serializers.iter_mut().enumerate() {
                    if let Some(v) = ser.issue() {
                        row[a] = v;
                    }
                }
                if let Some(lowered_row) = gen.lowered_row(step, lane) {
                    a_rows.push(row);
                    row_ids.push(lowered_row);
                    // Every `word_elems` issued rows completes one output
                    // word per active... per Co column group: approximate a
                    // word of results ready per packing interval.
                    if write_back && a_rows.len().is_multiple_of(spec.word_elems) {
                        pending_writes += 1;
                    }
                }
                stream_cycles += 1;
                lane += 1;
                if lane == spec.word_elems {
                    lane = 0;
                    step += 1;
                }
            }
            cycles += stream_cycles;

            // Run the assembled activations through the grid (its own exact
            // fill/drain latency added once per pass).
            let k = group.occupied_rows(shape);
            let a = Matrix::from_fn(a_rows.len(), k, |r, c| a_rows[r][c]);
            let (out, elapsed) = array.stream(&a);
            // The streaming above and the grid injection overlap: the grid's
            // cycle count covers the same issue cycles plus fill/drain, so
            // count only the excess.
            let drain = elapsed.saturating_sub(stream_cycles);
            cycles += drain;
            if sink.enabled() {
                sink.span("microsim", "weight-load", pass_start, weight_load);
                sink.span(
                    "microsim",
                    "stream",
                    pass_start + weight_load,
                    stream_cycles,
                );
                sink.span(
                    "microsim",
                    "drain",
                    pass_start + weight_load + stream_cycles,
                    drain,
                );
            }
            for (i, &row) in row_ids.iter().enumerate() {
                for c in 0..ncols {
                    acc[(row, col0 + c)] += out[(i, c)];
                }
            }
            col0 += ncols;
        }
    }

    sink.counter("microsim.cycles", cycles);
    sink.counter("microsim.sram_reads", sram_reads);
    sink.counter("microsim.sram_writes", sram_writes);
    sink.counter("microsim.port_stall_cycles", stalls);

    MicroRun {
        ofmap: ofmap_from_matrix(shape, &acc),
        cycles,
        sram_reads,
        sram_writes,
        port_stall_cycles: stalls,
    }
}

/// Convenience: run with the TPU schedule, random data, and check against
/// direct convolution; returns the run for inspection.
/// # Examples
///
/// ```
/// # use iconv_core::addrgen::VectorMemSpec;
/// # use iconv_tpusim::microsim::self_check;
/// # use iconv_tensor::ConvShape;
/// # fn main() -> Result<(), iconv_tensor::ShapeError> {
/// // The paper's Fig. 10 machine: 4 vector memories, word 2, 4x4 grid.
/// let shape = ConvShape::square(2, 4, 5, 4, 3, 1, 0)?;
/// let spec = VectorMemSpec { arrays: 4, word_elems: 2 };
/// let run = self_check(&shape, spec, 4, 1, true);
/// assert_eq!(run.port_stall_cycles, 0); // word 2 interleaves cleanly
/// # Ok(()) }
/// ```
///
pub fn self_check(
    shape: &ConvShape,
    spec: VectorMemSpec,
    cols: usize,
    seed: u64,
    write_back: bool,
) -> MicroRun<i64> {
    let x = Tensor::<i64>::random(ifmap_dims(shape), Layout::Nchw, seed);
    let f = Tensor::<i64>::random(filter_dims(shape), Layout::Nchw, seed + 1);
    let want = iconv_tensor::conv_ref::direct_conv(shape, &x, &f);
    let sched = TileSchedule::tpu(shape, spec.arrays);
    let run = run_conv(shape, &x, &f, spec, cols, &sched, write_back);
    assert!(
        want.approx_eq(&run.ofmap, 0.0),
        "micro-simulated OFMap diverged for {shape}"
    );
    assert_eq!(run.ofmap.dims(), ofmap_dims(shape));
    run
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig10_spec() -> VectorMemSpec {
        VectorMemSpec {
            arrays: 4,
            word_elems: 2,
        }
    }

    #[test]
    fn fig10_machine_end_to_end() {
        // Paper Fig. 10: N=2, Ci=4, 5x5, 3x3 filter on a 4x4 grid with
        // word-2 vector memories.
        let shape = ConvShape::square(2, 4, 5, 4, 3, 1, 0).unwrap();
        let run = self_check(&shape, fig10_spec(), 4, 42, true);
        assert!(run.cycles > 0);
        // Word 2 with write-back: port demand 1.0 — interleave with zero
        // contention, exactly the paper's claim.
        assert_eq!(run.port_stall_cycles, 0, "word 2 must interleave cleanly");
    }

    #[test]
    fn fig11_multi_tile_machine() {
        // Paper Fig. 11: Ci=2 with a 2-tile merge filling the 4 rows.
        let shape = ConvShape::square(2, 2, 5, 4, 3, 1, 0).unwrap();
        let sched = TileSchedule::tpu(&shape, 4);
        assert_eq!(sched.max_duplication(), 2);
        let run = self_check(&shape, fig10_spec(), 4, 7, true);
        assert_eq!(run.port_stall_cycles, 0);
    }

    #[test]
    fn strided_and_padded_cases() {
        for (i, shape) in [
            ConvShape::square(2, 4, 7, 3, 3, 2, 1).unwrap(),
            ConvShape::square(4, 2, 6, 5, 3, 1, 1).unwrap(),
            ConvShape::square(2, 4, 5, 2, 1, 1, 0).unwrap(),
        ]
        .into_iter()
        .enumerate()
        {
            let _ = self_check(&shape, fig10_spec(), 3, 10 + i as u64, true);
        }
    }

    #[test]
    fn word1_with_writeback_stalls_word2_does_not() {
        // The Sec. IV-A interleave argument, demonstrated rather than
        // assumed: at word 1 every cycle is a read, so write-backs steal
        // cycles; at word ≥ 2 they slot into the idle port cycles.
        let shape = ConvShape::square(2, 4, 6, 4, 3, 1, 0).unwrap();
        let w1 = self_check(
            &shape,
            VectorMemSpec {
                arrays: 4,
                word_elems: 1,
            },
            4,
            3,
            true,
        );
        let w2 = self_check(&shape, fig10_spec(), 4, 3, true);
        assert!(w1.port_stall_cycles > 0, "word 1 must stall on write-back");
        assert_eq!(w2.port_stall_cycles, 0);
        assert!(w1.cycles > w2.cycles);
    }

    #[test]
    fn split_memory_never_stalls() {
        // TPU-v1-style split buffers (write_back = false): no contention at
        // any word size.
        let shape = ConvShape::square(2, 4, 6, 4, 3, 1, 0).unwrap();
        let run = self_check(
            &shape,
            VectorMemSpec {
                arrays: 4,
                word_elems: 1,
            },
            4,
            3,
            false,
        );
        assert_eq!(run.port_stall_cycles, 0);
        assert_eq!(run.sram_writes, 0);
    }

    #[test]
    fn read_counts_match_the_address_generator() {
        let shape = ConvShape::square(2, 4, 5, 4, 3, 1, 0).unwrap();
        let sched = TileSchedule::tpu(&shape, 4);
        let expected: u64 = sched
            .groups()
            .iter()
            .map(|g| AddrGen::new(&shape, fig10_spec(), g).total_reads())
            .sum();
        let run = self_check(&shape, fig10_spec(), 4, 5, true);
        assert_eq!(run.sram_reads, expected);
    }

    #[test]
    fn traced_spans_partition_micro_cycles() {
        // The microsim's weight-load/stream/drain spans must sum exactly
        // to the cycle-stepped total — conservation at the ground-truth
        // level, not just in the phase engine.
        use iconv_trace::Recorder;
        let shape = ConvShape::square(2, 4, 5, 4, 3, 1, 0).unwrap();
        let x = Tensor::<i64>::random(ifmap_dims(&shape), Layout::Nchw, 11);
        let f = Tensor::<i64>::random(filter_dims(&shape), Layout::Nchw, 12);
        let sched = TileSchedule::tpu(&shape, 4);
        let mut rec = Recorder::new();
        let run = run_conv_traced(&shape, &x, &f, fig10_spec(), 4, &sched, true, &mut rec);
        assert_eq!(rec.track_total("microsim"), run.cycles);
        assert_eq!(rec.counters()["microsim.sram_reads"], run.sram_reads);
        assert_eq!(
            rec.counters()["microsim.port_stall_cycles"],
            run.port_stall_cycles
        );
    }

    #[test]
    fn port_utilization_below_one() {
        let shape = ConvShape::square(2, 4, 6, 4, 3, 1, 0).unwrap();
        let run = self_check(&shape, fig10_spec(), 4, 9, true);
        let u = run.port_utilization(4);
        assert!(u > 0.0 && u <= 1.0, "port utilization {u}");
    }
}
