//! # iconv-tpusim
//!
//! **TPUSim** — a configurable cycle-level simulator of a TPU-v2 core
//! executing convolutions via the implicit channel-first im2col algorithm
//! (paper Secs. IV & VI, Table II).
//!
//! The engine is a phase-level pipeline model built from components that are
//! each validated at finer granularity: systolic pass latencies are
//! cycle-exact against the stepped PE grid in `iconv-systolic`, DRAM
//! transfer times come from the run-length-aware model in `iconv-dram`
//! (checked against a bank/row-buffer trace simulator), and vector-memory
//! port behaviour from `iconv-sram`. Layer-scale runs are therefore fast
//! (closed-form per chunk) without being hand-waved.
//!
//! ```
//! use iconv_tpusim::{Simulator, SimMode, TpuConfig};
//! use iconv_tensor::ConvShape;
//!
//! # fn main() -> Result<(), iconv_tensor::ShapeError> {
//! let sim = Simulator::new(TpuConfig::tpu_v2());
//! let layer = ConvShape::square(8, 64, 56, 64, 3, 1, 1)?; // ResNet-ish
//! let report = sim.simulate_conv("res2_3x3", &layer, SimMode::ChannelFirst);
//! println!("{}: {:.1} TFLOPS", report.name, report.tflops(sim.config()));
//! # Ok(()) }
//! ```

pub mod config;
pub mod energy;
pub mod engine;
pub mod grouped;
pub mod microsim;
pub mod multicore;
pub mod report;
pub mod training;

pub use config::{TpuConfig, TpuConfigBuilder, TpuConfigError};
pub use energy::{EnergyModel, EnergyReport};
pub use engine::{SimMode, Simulator};
pub use multicore::{Interconnect, MulticoreReport};
pub use report::{Bottleneck, LayerReport, ModelReport, Phases};
pub use training::TrainingReport;
