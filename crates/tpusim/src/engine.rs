//! The TPUSim engine: phase-level cycle simulation of one TPU core running
//! convolutions via implicit channel-first im2col (and the explicit baseline
//! for Fig. 2b).
//!
//! The engine composes validated component models instead of stepping PEs:
//! systolic pass latency from `iconv-systolic` (cycle-exact vs the stepped
//! grid), DRAM transfer time from `iconv-dram` (run-length aware), and
//! vector-memory port behaviour from `iconv-sram`. Layers are chunked over
//! the output dimension to fit the double-buffered IFMap budget, and each
//! chunk's DRAM fill is overlapped with the previous chunk's GEMM, exactly
//! the Fig. 3/8 pipeline.

use crate::config::TpuConfig;
use crate::report::{LayerReport, ModelReport, Phases};
use iconv_core::schedule::{tpu_group_size, TileSchedule};
use iconv_core::ConvPass;
use iconv_dram::DramModel;
use iconv_sram::PortStats;
use iconv_tensor::{ConvShape, Layout};
use iconv_trace::{NullSink, TraceSink};
use iconv_workloads::Model;

// The single-buffered closed form lives in iconv-core so both simulators
// (and the `PipelineSchedule` knob selecting between it and the
// double-buffered variant) share one definition; re-exported for the
// engine's pipeline tests.
pub(crate) use iconv_core::schedule::chunked_steady;

/// Emit the conserved span partition and the standard per-layer counters
/// for a finished report, and (in debug builds) check the invariants.
fn emit_layer_trace(sink: &mut dyn TraceSink, rep: &LayerReport) {
    debug_assert!(rep.assert_conserved());
    if !sink.enabled() {
        return;
    }
    let p = rep.phases;
    sink.span(&rep.name, "dispatch", 0, p.dispatch);
    sink.span(&rep.name, "ifmap-fill", p.dispatch, p.first_fill);
    sink.span(&rep.name, "steady", p.dispatch + p.first_fill, p.steady);
    sink.counter("tpusim.layers", 1);
    sink.counter("tpusim.cycles", rep.cycles);
    sink.counter("tpusim.dispatch_cycles", p.dispatch);
    sink.counter("tpusim.first_fill_cycles", p.first_fill);
    sink.counter("tpusim.steady_cycles", p.steady);
    sink.counter("tpusim.compute_cycles", rep.compute_cycles);
    sink.counter("tpusim.exposed_memory_cycles", rep.exposed_memory_cycles);
    sink.counter("tpusim.dram_bytes", rep.dram_bytes);
    rep.sram.record(sink);
}

/// How a convolution is lowered for simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SimMode {
    /// The paper's implicit channel-first algorithm; `group_size = None`
    /// selects the TPU strategy `min(R/Ci, Wf)`.
    #[default]
    ChannelFirst,
    /// Channel-first with a forced multi-tile group size (Fig. 14a sweep).
    ChannelFirstGrouped(usize),
    /// Explicit im2col: a memory-bound lowering pass, then a GEMM over the
    /// materialized matrix (the Fig. 2b baseline).
    Explicit,
    /// Dukhan's indirect-convolution baseline: the implicit channel-first
    /// schedule fed through a pointer table instead of address generation.
    /// DRAM traffic is the tensor footprint plus the pointer bytes, and
    /// every row tile pays a per-tap pointer-dereference dispatch cost.
    Indirect,
}

/// The simulator: immutable configuration plus per-call simulation.
#[derive(Debug, Clone)]
pub struct Simulator {
    config: TpuConfig,
    dram: DramModel,
}

impl Simulator {
    /// Create a simulator for `config`.
    pub fn new(config: TpuConfig) -> Self {
        Self {
            dram: DramModel::new(config.dram),
            config,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &TpuConfig {
        &self.config
    }

    /// Elements packed per vector-memory word access for this layer's
    /// stream: the batch dimension fills the word (`HWCN`); when the batch
    /// is shallow but the layer is dense (`stride_w = 1`), consecutive
    /// pixels pack instead.
    fn word_packing(&self, shape: &ConvShape) -> usize {
        let w = self.config.vector_mem.word_elems;
        if shape.n >= w || (shape.stride_w == 1 && shape.dil_w == 1) {
            w
        } else {
            // `n` is validated non-zero by `ConvShapeBuilder::build`.
            shape.n
        }
    }

    /// DRAM run length (bytes) for filling IFMap tiles, by layout.
    fn ifmap_run_bytes(&self, shape: &ConvShape) -> u64 {
        self.gather_run_bytes(shape, shape.ci, shape.wi)
    }

    /// DRAM run length (bytes) for gathering a `channels`-deep,
    /// `width`-wide tensor under this layer's stride, by layout. With
    /// `(shape.ci, shape.wi)` this is the classic IFMap fill run; the
    /// backward passes gather the output-side tensor instead
    /// (`(shape.co, shape.out_w())`), whose stride-dilated view scatters
    /// exactly like a strided forward gather.
    fn gather_run_bytes(&self, shape: &ConvShape, channels: usize, width: usize) -> u64 {
        let eb = self.config.vector_mem.elem_bytes as u64;
        let dense_w = shape.stride_w == 1 && shape.dil_w == 1;
        match self.config.ifmap_layout {
            // HWCN/NHWC: channels (× batch for HWCN) of one pixel are
            // contiguous; dense-width layers extend the run across pixels.
            Layout::Hwcn => {
                let per_pixel = (channels * shape.n) as u64 * eb;
                if dense_w {
                    per_pixel * width as u64
                } else {
                    per_pixel
                }
            }
            Layout::Nhwc => {
                let per_pixel = channels as u64 * eb;
                if dense_w {
                    per_pixel * width as u64
                } else {
                    per_pixel
                }
            }
            // CHW layouts: only the width dimension is contiguous.
            Layout::Nchw | Layout::Chwn => {
                if dense_w {
                    width as u64 * eb
                } else {
                    eb
                }
            }
        }
    }

    /// Simulate one convolution layer.
    pub fn simulate_conv(&self, name: &str, shape: &ConvShape, mode: SimMode) -> LayerReport {
        self.simulate_conv_traced(name, shape, mode, &mut NullSink)
    }

    /// Simulate one convolution layer, emitting phase spans (a conserved
    /// partition of `cycles` on a track named after the layer) plus
    /// breakdown counters into `sink`.
    pub fn simulate_conv_traced(
        &self,
        name: &str,
        shape: &ConvShape,
        mode: SimMode,
        sink: &mut dyn TraceSink,
    ) -> LayerReport {
        let rep = match mode {
            SimMode::ChannelFirst => {
                let g = tpu_group_size(self.config.array.rows, shape.ci, shape.wf);
                self.simulate_channel_first(name, shape, g, sink)
            }
            SimMode::ChannelFirstGrouped(g) => self.simulate_channel_first(name, shape, g, sink),
            SimMode::Explicit => self.simulate_explicit(name, shape, sink),
            SimMode::Indirect => {
                let g = tpu_group_size(self.config.array.rows, shape.ci, shape.wf);
                let rep = self.simulate_channel_first(name, shape, g, sink);
                self.apply_indirect_overhead(rep, shape, ConvPass::Forward, sink)
            }
        };
        emit_layer_trace(sink, &rep);
        rep
    }

    /// Simulate one convolution pass (forward, wgrad, dgrad, or transposed
    /// convolution) of the layer described by `shape` under `mode`.
    /// `ConvPass::Forward` is exactly [`Simulator::simulate_conv`].
    pub fn simulate_pass(
        &self,
        name: &str,
        shape: &ConvShape,
        pass: ConvPass,
        mode: SimMode,
    ) -> LayerReport {
        self.simulate_pass_traced(name, shape, pass, mode, &mut NullSink)
    }

    /// [`Simulator::simulate_pass`] with conserved phase spans and counters
    /// emitted into `sink`.
    pub fn simulate_pass_traced(
        &self,
        name: &str,
        shape: &ConvShape,
        pass: ConvPass,
        mode: SimMode,
        sink: &mut dyn TraceSink,
    ) -> LayerReport {
        if pass == ConvPass::Forward {
            return self.simulate_conv_traced(name, shape, mode, sink);
        }
        let rows = self.config.array.rows;
        // dgrad/transpose duplicate over the *output* channels (the gathered
        // tensor is dY); wgrad has no duplication axis (its K runs over
        // pixels), so every group spelling collapses to the same schedule.
        let auto_group = match pass {
            ConvPass::Wgrad => 1,
            _ => tpu_group_size(rows, shape.co, shape.wf),
        };
        let rep = match mode {
            SimMode::ChannelFirst => self.simulate_pass_implicit(name, shape, pass, auto_group),
            SimMode::ChannelFirstGrouped(g) => self.simulate_pass_implicit(name, shape, pass, g),
            SimMode::Explicit => self.simulate_pass_explicit(name, shape, pass, sink),
            SimMode::Indirect => {
                let rep = self.simulate_pass_implicit(name, shape, pass, auto_group);
                self.apply_indirect_overhead(rep, shape, pass, sink)
            }
        };
        emit_layer_trace(sink, &rep);
        rep
    }

    fn simulate_channel_first(
        &self,
        name: &str,
        shape: &ConvShape,
        group: usize,
        sink: &mut dyn TraceSink,
    ) -> LayerReport {
        let cfg = &self.config;
        let (rows, cols) = (cfg.array.rows, cfg.array.cols);
        let eb = cfg.vector_mem.elem_bytes as u64;
        // Duplication cannot usefully exceed what fills the array.
        let group = group.clamp(1, rows.div_ceil(shape.ci));
        let sched = TileSchedule::multi_tile(shape, group);
        let m_total = shape.lowered_rows();

        // --- Compute phase. With duplication factor `group`, up to
        // `group·Ci` K-rows are concurrently resident, so each filter row's
        // `Wf·Ci` reduction packs the PE rows densely in
        // `ceil(Wf·Ci / cap)` passes — a tap may straddle two passes (its
        // second residency copy supplies the tail), which is what lets
        // non-dividing channel counts (e.g. Ci = 96) avoid per-tap padding.
        let cap = (group * shape.ci).min(rows).max(1);
        let passes_per_row = (shape.wf * shape.ci).div_ceil(cap) as u64;
        let total_passes = shape.hf as u64 * passes_per_row * shape.co.div_ceil(cols) as u64;
        // Multiple MXUs (TPU-v3) process independent passes concurrently,
        // each pulling its own stream from the shared vector memories.
        let stream_cycles = total_passes.div_ceil(cfg.mxus as u64) * m_total as u64;
        // Serializer/port contention: per active array, delivering one
        // element per cycle needs `1/packing` reads per cycle; OFMap
        // write-back adds `(m·co/rows)/stream/packing` writes per cycle
        // (rare — each output element is written once while inputs are
        // re-read per tap). Demand beyond one access per cycle stalls the
        // stream.
        let packing = self.word_packing(shape);
        let write_elems_per_array = (m_total * shape.co / rows.max(1)) as f64;
        let port_demand = (1.0 + write_elems_per_array / (stream_cycles.max(1) as f64))
            * cfg.mxus as f64
            / packing as f64;
        let stall = port_demand.max(1.0);
        let compute_cycles = (stream_cycles as f64 * stall).ceil() as u64
            + (rows + cols - 1) as u64 // pipeline fill/drain, exposed once
            + rows as u64; // first weight load (rest double-buffered)

        // --- Memory phase.
        let ifmap_bytes = shape.ifmap_elems() as u64 * eb;
        let filter_bytes = shape.filter_elems() as u64 * eb;
        let ofmap_bytes = shape.ofmap_elems() as u64 * eb;
        let fill = self
            .dram
            .transfer_cycles(ifmap_bytes, self.ifmap_run_bytes(shape));
        let weights = self.dram.transfer_cycles(filter_bytes, 4096);
        let writeback = self.dram.transfer_cycles(ofmap_bytes, 4096);
        let mem_cycles = fill + weights + writeback;

        // --- Workspace and chunking: the widest group's resident IFMap
        // words (duplicated per member), double-buffered within the budget.
        let batch_words = shape.n.div_ceil(cfg.vector_mem.word_elems) as u64;
        let word_bytes = cfg.vector_mem.word_bytes();
        let workspace_bytes = sched
            .groups()
            .iter()
            .map(|g| {
                g.tiles()
                    .iter()
                    .map(|t| t.working_set_len(shape) as u64 * batch_words * word_bytes)
                    .sum::<u64>()
                    * shape.ci as u64
            })
            .max()
            .unwrap_or(0);
        let budget = (cfg.total_sram_bytes() as f64 * cfg.ifmap_buffer_fraction / 2.0) as u64;
        let chunks = workspace_bytes
            .div_ceil(budget.max(1))
            .max(cfg.min_pipeline_stages);

        // --- Pipeline: per-chunk fills overlap the previous chunk's GEMM.
        // Chunk totals are distributed with their remainders (truncating
        // division here used to drop up to `chunks − 1` cycles per phase
        // and made memory free whenever `mem_cycles < chunks`); the first
        // chunk's fill — the largest, `div_ceil` — is the exposed head.
        // The schedule knob selects the per-chunk-barrier closed form or
        // the double-buffered overlap (`max(compute, mem − first_fill)`).
        let first_fill = mem_cycles.div_ceil(chunks);
        let steady = cfg
            .schedule
            .steady_cycles(compute_cycles, mem_cycles, chunks);
        let cycles = cfg.dispatch_cycles + first_fill + steady;
        // `steady ≥ compute_cycles` by construction, so this never
        // saturates; the old `cycles − dispatch − min(compute, cycles)`
        // underflowed whenever truncation pushed steady below compute.
        let exposed = (first_fill + steady).saturating_sub(compute_cycles);
        debug_assert!(first_fill + steady >= compute_cycles);

        // --- Vector-memory port stats (per-array averages).
        let row_occ =
            ((shape.wf * shape.ci) as f64 / (passes_per_row as f64 * rows as f64)).min(1.0);
        let reads = (stream_cycles as f64 * row_occ / packing as f64) as u64;
        // One division: `/rows/packing` truncated twice, dropping up to
        // `packing − 1` extra words.
        let writes = (m_total * shape.co) as u64 / (rows * packing) as u64;
        let col_occ = shape.co as f64 / (shape.co.div_ceil(cols) * cols) as f64;

        if sink.enabled() {
            let stall_extra =
                compute_cycles - stream_cycles - (rows + cols - 1) as u64 - rows as u64;
            // Breakdown counters for the rollups...
            sink.counter("tpusim.dram_fill_cycles", fill);
            sink.counter("tpusim.dram_weight_load_cycles", weights);
            sink.counter("tpusim.dram_writeback_cycles", writeback);
            sink.counter("tpusim.stream_cycles", stream_cycles);
            sink.counter("tpusim.stall_cycles", stall_extra);
            sink.counter("tpusim.chunks", chunks);
            // ...and detail tracks showing what overlaps inside `steady`:
            // the serialized DRAM stream and the serialized array activity,
            // each drawn from cycle 0 of the layer's local timeline.
            let mem_track = format!("{name} mem");
            sink.span(&mem_track, "ifmap-fill", 0, fill);
            sink.span(&mem_track, "weight-load", fill, weights);
            sink.span(&mem_track, "writeback", fill + weights, writeback);
            let comp_track = format!("{name} compute");
            sink.span(&comp_track, "weight-load", 0, rows as u64);
            sink.span(&comp_track, "stream", rows as u64, stream_cycles);
            sink.span(
                &comp_track,
                "stall",
                rows as u64 + stream_cycles,
                stall_extra,
            );
            sink.span(
                &comp_track,
                "fill-drain",
                rows as u64 + stream_cycles + stall_extra,
                (rows + cols - 1) as u64,
            );
        }

        LayerReport {
            name: name.to_string(),
            cycles,
            compute_cycles,
            exposed_memory_cycles: exposed,
            flops: shape.flops(),
            dram_bytes: ifmap_bytes + filter_bytes + ofmap_bytes,
            workspace_bytes,
            // Port stats are measured over the compute (streaming) period,
            // averaged across all arrays; idle arrays dilute the demand.
            sram: PortStats {
                cycles: compute_cycles,
                reads,
                writes,
            },
            array_occupancy: row_occ * col_occ,
            phases: Phases {
                dispatch: cfg.dispatch_cycles,
                first_fill,
                steady,
            },
        }
    }

    /// Simulate a convolution whose filter carries structured sparsity
    /// (see `iconv_core::sparse`): pruned taps drop out of the schedule and
    /// inactive channel blocks skip their PE rows, so streamed passes scale
    /// with the *schedule density* rather than the dense tap count — the
    /// sparse-accelerator direction the paper's conclusion proposes.
    pub fn simulate_conv_sparse<T: iconv_tensor::Scalar>(
        &self,
        name: &str,
        sparse: &iconv_core::SparseFilter<T>,
    ) -> LayerReport {
        let shape = *sparse.shape();
        let mut rep = self.simulate_conv(name, &shape, SimMode::ChannelFirst);
        let density = sparse.schedule_density().max(1e-9);
        // Compute passes shrink with active scheduling units; the IFMap
        // still streams for any tap that needs it, so memory traffic keeps
        // the ifmap/ofmap terms and scales only the weight term.
        let dense_compute = rep.compute_cycles as f64;
        let sparse_compute = (dense_compute * density).ceil() as u64;
        let saved = rep.compute_cycles - sparse_compute;
        rep.compute_cycles = sparse_compute;
        // The saved compute comes straight out of the steady phase
        // (`saved ≤ compute ≤ steady`), so conservation is preserved and
        // the exposed memory time is unchanged — the IFMap still streams
        // under the shorter compute.
        rep.cycles -= saved;
        rep.phases.steady -= saved;
        debug_assert!(rep.assert_conserved());
        rep.flops = (shape.flops() as f64 * density) as u64;
        let eb = self.config().vector_mem.elem_bytes as u64;
        let dense_w = shape.filter_elems() as u64 * eb;
        let sparse_w = (dense_w as f64 * density) as u64;
        rep.dram_bytes = rep.dram_bytes - dense_w + sparse_w;
        rep.name = format!("{name} (density {:.2})", density);
        rep
    }

    /// Simulate a plain `M × N × K` GEMM (the TPU's native primitive,
    /// Fig. 13a validation target).
    pub fn simulate_gemm(&self, name: &str, m: usize, n: usize, k: usize) -> LayerReport {
        self.gemm_report(name, m, n, k, &mut NullSink)
    }

    /// [`Simulator::simulate_gemm`] with phase spans and counters emitted
    /// into `sink`.
    pub fn simulate_gemm_traced(
        &self,
        name: &str,
        m: usize,
        n: usize,
        k: usize,
        sink: &mut dyn TraceSink,
    ) -> LayerReport {
        let rep = self.gemm_report(name, m, n, k, sink);
        emit_layer_trace(sink, &rep);
        rep
    }

    fn gemm_report(
        &self,
        name: &str,
        m: usize,
        n: usize,
        k: usize,
        sink: &mut dyn TraceSink,
    ) -> LayerReport {
        let cfg = &self.config;
        let (rows, cols) = (cfg.array.rows, cfg.array.cols);
        let eb = cfg.vector_mem.elem_bytes as u64;
        let passes = k.div_ceil(rows) as u64 * n.div_ceil(cols) as u64;
        let compute_cycles =
            passes.div_ceil(cfg.mxus as u64) * m as u64 + (rows + cols - 1) as u64 + rows as u64;

        let a_bytes = (m * k) as u64 * eb;
        let b_bytes = (k * n) as u64 * eb;
        let c_bytes = (m * n) as u64 * eb;
        // B resident when it fits in a quarter of SRAM, else re-streamed per
        // A chunk.
        let budget = (cfg.total_sram_bytes() as f64 * cfg.ifmap_buffer_fraction / 2.0) as u64;
        // Capacity chunks decide whether B must be re-streamed; the
        // pipeline runs at least `min_pipeline_stages` fill/compute stages.
        let capacity_chunks = a_bytes.div_ceil(budget.max(1)).max(1);
        let chunks = capacity_chunks.max(cfg.min_pipeline_stages);
        let b_resident = b_bytes < cfg.total_sram_bytes() / 4;
        let b_traffic = if b_resident {
            b_bytes
        } else {
            b_bytes * capacity_chunks
        };
        let mem_cycles = self.dram.transfer_cycles(a_bytes, 4096)
            + self.dram.transfer_cycles(b_traffic, 4096)
            + self.dram.transfer_cycles(c_bytes, 4096);

        // Same remainder-conserving pipeline math as the conv path: the
        // old truncating `mem_cycles / chunks` leaked cycles and could push
        // `steady` below `compute_cycles`, underflowing `exposed`.
        let first_fill = mem_cycles.div_ceil(chunks);
        let steady = cfg
            .schedule
            .steady_cycles(compute_cycles, mem_cycles, chunks);
        let cycles = cfg.dispatch_cycles + first_fill + steady;
        let exposed = (first_fill + steady).saturating_sub(compute_cycles);
        debug_assert!(first_fill + steady >= compute_cycles);
        let occupancy = (k as f64 / (k.div_ceil(rows) * rows) as f64)
            * (n as f64 / (n.div_ceil(cols) * cols) as f64);

        if sink.enabled() {
            sink.counter(
                "tpusim.dram_fill_cycles",
                self.dram.transfer_cycles(a_bytes, 4096),
            );
            sink.counter(
                "tpusim.dram_weight_load_cycles",
                self.dram.transfer_cycles(b_traffic, 4096),
            );
            sink.counter(
                "tpusim.dram_writeback_cycles",
                self.dram.transfer_cycles(c_bytes, 4096),
            );
            sink.counter("tpusim.chunks", chunks);
        }

        let w = cfg.vector_mem.word_elems as u64;
        LayerReport {
            name: name.to_string(),
            cycles,
            compute_cycles,
            exposed_memory_cycles: exposed,
            flops: 2 * (m as u64) * (n as u64) * (k as u64),
            dram_bytes: a_bytes + b_traffic + c_bytes,
            workspace_bytes: a_bytes.min(budget),
            sram: PortStats {
                cycles,
                reads: compute_cycles / w,
                writes: compute_cycles / w,
            },
            array_occupancy: occupancy,
            phases: Phases {
                dispatch: cfg.dispatch_cycles,
                first_fill,
                steady,
            },
        }
    }

    /// Simulate a convolution executed as *explicit* im2col: a memory-bound
    /// lowering pass (read IFMap, write the lowered matrix) followed by a
    /// GEMM that streams the lowered matrix back in.
    fn simulate_explicit(
        &self,
        name: &str,
        shape: &ConvShape,
        sink: &mut dyn TraceSink,
    ) -> LayerReport {
        let eb = self.config.vector_mem.elem_bytes as u64;
        let ifmap_bytes = shape.ifmap_elems() as u64 * eb;
        let lowered_bytes = shape.lowered_elems() as u64 * eb;
        // The transform is bandwidth-bound: it gathers (short runs under
        // stride) and writes sequentially.
        let gather_run = self.ifmap_run_bytes(shape);
        let transform = self.dram.transfer_cycles(ifmap_bytes, gather_run)
            + self.dram.transfer_cycles(lowered_bytes, 4096);
        let (m, n, k) = shape.gemm_mnk();
        let mut gemm = self.gemm_report(name, m, n, k, sink);
        gemm.name = name.to_string();
        gemm.cycles += transform;
        gemm.exposed_memory_cycles += transform;
        // The lowering pass runs before the GEMM pipeline starts: it
        // extends the exposed head, keeping the partition exact.
        gemm.phases.first_fill += transform;
        gemm.dram_bytes += ifmap_bytes + lowered_bytes; // transform traffic
        gemm.flops = shape.flops();
        sink.counter("tpusim.transform_cycles", transform);
        gemm
    }

    /// Cycles the explicit transform alone would take (the stacked-bar
    /// breakdown of Fig. 2b).
    pub fn explicit_transform_cycles(&self, shape: &ConvShape) -> u64 {
        let eb = self.config.vector_mem.elem_bytes as u64;
        let ifmap_bytes = shape.ifmap_elems() as u64 * eb;
        let lowered_bytes = shape.lowered_elems() as u64 * eb;
        self.dram
            .transfer_cycles(ifmap_bytes, self.ifmap_run_bytes(shape))
            + self.dram.transfer_cycles(lowered_bytes, 4096)
    }

    /// Implicit (channel-first) execution of a backward or transposed pass.
    ///
    /// The BP-Im2col observation: dgrad is the forward channel-first
    /// schedule with the tensor roles swapped — the gathered operand is the
    /// stride-dilated output gradient (`Co` channels), the resident operand
    /// is the 180°-rotated filter, and the stream writes input pixels. No
    /// zero padding is ever materialized: the address generator skips
    /// dilation holes exactly as the forward path skips stride holes, so
    /// DRAM traffic is the tensor footprint, same as forward. wgrad is the
    /// plain-GEMM shape (K runs over pixels, so taps give no packing trick)
    /// with the IFMap gathered on the fly.
    fn simulate_pass_implicit(
        &self,
        name: &str,
        shape: &ConvShape,
        pass: ConvPass,
        group: usize,
    ) -> LayerReport {
        let cfg = &self.config;
        let (rows, cols) = (cfg.array.rows, cfg.array.cols);
        let eb = cfg.vector_mem.elem_bytes as u64;
        let (m, out_cols, _) = pass.gemm_mnk(shape);
        let ifmap_bytes = shape.ifmap_elems() as u64 * eb;
        let filter_bytes = shape.filter_elems() as u64 * eb;
        let ofmap_bytes = shape.ofmap_elems() as u64 * eb;

        // --- Compute phase: streamed passes over the array.
        let (total_passes, row_occ, group) = match pass {
            // K over pixels: dense GEMM tiling of the reduction dimension.
            ConvPass::Wgrad => {
                let k = shape.n * shape.out_h() * shape.out_w();
                let passes = k.div_ceil(rows) as u64 * shape.co.div_ceil(cols) as u64;
                let occ = k as f64 / (k.div_ceil(rows) * rows) as f64;
                (passes, occ, 1)
            }
            // K over taps × Co: the mirrored channel-first pass structure,
            // duplicating the rotated filter `group` ways when Co is small.
            _ => {
                let group = group.clamp(1, rows.div_ceil(shape.co));
                let cap = (group * shape.co).min(rows).max(1);
                let passes_per_row = (shape.wf * shape.co).div_ceil(cap) as u64;
                let passes = shape.hf as u64 * passes_per_row * shape.ci.div_ceil(cols) as u64;
                let occ =
                    ((shape.wf * shape.co) as f64 / (passes_per_row as f64 * rows as f64)).min(1.0);
                (passes, occ, group)
            }
        };
        let stream_cycles = total_passes.div_ceil(cfg.mxus as u64) * m as u64;
        let packing = self.word_packing(shape);
        let write_elems_per_array = (m * out_cols / rows.max(1)) as f64;
        let port_demand = (1.0 + write_elems_per_array / (stream_cycles.max(1) as f64))
            * cfg.mxus as f64
            / packing as f64;
        let stall = port_demand.max(1.0);
        let compute_cycles =
            (stream_cycles as f64 * stall).ceil() as u64 + (rows + cols - 1) as u64 + rows as u64;

        // --- Memory phase: the pass reads two of the three tensors and
        // writes the third; the gathered one pays its layout's run length.
        let mem_cycles = if pass.gathers_output_side() {
            let run = self.gather_run_bytes(shape, shape.co, shape.out_w());
            self.dram.transfer_cycles(ofmap_bytes, run)
                + self.dram.transfer_cycles(filter_bytes, 4096)
                + self.dram.transfer_cycles(ifmap_bytes, 4096)
        } else {
            self.dram
                .transfer_cycles(ifmap_bytes, self.ifmap_run_bytes(shape))
                + self.dram.transfer_cycles(ofmap_bytes, 4096)
                + self.dram.transfer_cycles(filter_bytes, 4096)
        };

        // --- Workspace and chunking: the gathered operand's resident tile,
        // duplicated per group member on the dgrad side.
        let workspace_bytes = if pass.gathers_output_side() {
            ofmap_bytes * group as u64
        } else {
            ifmap_bytes
        };
        let budget = (cfg.total_sram_bytes() as f64 * cfg.ifmap_buffer_fraction / 2.0) as u64;
        let chunks = workspace_bytes
            .div_ceil(budget.max(1))
            .max(cfg.min_pipeline_stages);

        // --- Pipeline: identical closed form to the forward path, so the
        // conservation identities hold by construction.
        let first_fill = mem_cycles.div_ceil(chunks);
        let steady = cfg
            .schedule
            .steady_cycles(compute_cycles, mem_cycles, chunks);
        let cycles = cfg.dispatch_cycles + first_fill + steady;
        let exposed = (first_fill + steady).saturating_sub(compute_cycles);
        debug_assert!(first_fill + steady >= compute_cycles);

        let col_occ = out_cols as f64 / (out_cols.div_ceil(cols) * cols) as f64;
        let reads = (stream_cycles as f64 * row_occ / packing as f64) as u64;
        let writes = (m * out_cols) as u64 / (rows * packing) as u64;

        LayerReport {
            name: name.to_string(),
            cycles,
            compute_cycles,
            exposed_memory_cycles: exposed,
            // Useful MACs only: the dgrad view's dilation holes are skipped
            // by the address generator, never multiplied.
            flops: shape.flops(),
            dram_bytes: ifmap_bytes + filter_bytes + ofmap_bytes,
            workspace_bytes,
            sram: PortStats {
                cycles: compute_cycles,
                reads,
                writes,
            },
            array_occupancy: row_occ * col_occ,
            phases: Phases {
                dispatch: cfg.dispatch_cycles,
                first_fill,
                steady,
            },
        }
    }

    /// Explicit execution of a backward or transposed pass: materialize the
    /// pass's lowered view (for dgrad, the zero-dilated rotated-filter
    /// matrix), then run the dense GEMM over it — the same
    /// transform-then-GEMM structure as forward explicit im2col.
    fn simulate_pass_explicit(
        &self,
        name: &str,
        shape: &ConvShape,
        pass: ConvPass,
        sink: &mut dyn TraceSink,
    ) -> LayerReport {
        let eb = self.config.vector_mem.elem_bytes as u64;
        let (m, n, k) = pass.gemm_mnk(shape);
        let lowered_bytes = pass.lowered_view_elems(shape) as u64 * eb;
        let (src_bytes, gather_run) = if pass.gathers_output_side() {
            (
                shape.ofmap_elems() as u64 * eb,
                self.gather_run_bytes(shape, shape.co, shape.out_w()),
            )
        } else {
            (shape.ifmap_elems() as u64 * eb, self.ifmap_run_bytes(shape))
        };
        let transform = self.dram.transfer_cycles(src_bytes, gather_run)
            + self.dram.transfer_cycles(lowered_bytes, 4096);
        let mut gemm = self.gemm_report(name, m, n, k, sink);
        gemm.name = name.to_string();
        gemm.cycles += transform;
        gemm.exposed_memory_cycles += transform;
        gemm.phases.first_fill += transform;
        gemm.dram_bytes += src_bytes + lowered_bytes; // transform traffic
        gemm.flops = shape.flops();
        sink.counter("tpusim.transform_cycles", transform);
        gemm
    }

    /// Layer Dukhan's indirect-convolution costs onto an implicit report:
    /// the pointer table streams in ahead of the pipeline (extending the
    /// exposed head), and every row tile pays a per-tap pointer dereference
    /// before it can issue (a dispatch-side cost — indirection serializes
    /// address resolution that the implicit address generator computes for
    /// free). The phase partition stays exact.
    fn apply_indirect_overhead(
        &self,
        mut rep: LayerReport,
        shape: &ConvShape,
        pass: ConvPass,
        sink: &mut dyn TraceSink,
    ) -> LayerReport {
        const PTR_BYTES: u64 = 8;
        let entries = pass.indirect_ptr_entries(shape) as u64;
        let ptr_bytes = entries * PTR_BYTES;
        let ptr_cycles = self.dram.transfer_cycles(ptr_bytes, 4096);
        let (m, _, _) = pass.gemm_mnk(shape);
        let taps = (shape.hf * shape.wf) as u64;
        let dispatch_extra = m.div_ceil(self.config.array.rows) as u64 * taps;
        rep.cycles += ptr_cycles + dispatch_extra;
        rep.phases.first_fill += ptr_cycles;
        rep.phases.dispatch += dispatch_extra;
        rep.exposed_memory_cycles += ptr_cycles;
        rep.dram_bytes += ptr_bytes;
        sink.counter("tpusim.indirect_ptr_cycles", ptr_cycles);
        sink.counter("tpusim.indirect_dispatch_cycles", dispatch_extra);
        rep
    }

    /// Simulate every conv layer of `model`.
    pub fn simulate_model(&self, model: &Model, mode: SimMode) -> ModelReport {
        self.simulate_model_traced(model, mode, &mut NullSink)
    }

    /// [`Simulator::simulate_model`] with per-layer spans and counters
    /// emitted into `sink`.
    pub fn simulate_model_traced(
        &self,
        model: &Model,
        mode: SimMode,
        sink: &mut dyn TraceSink,
    ) -> ModelReport {
        ModelReport {
            name: model.name.to_string(),
            layers: model
                .layers
                .iter()
                .map(|l| {
                    (
                        self.simulate_conv_traced(&l.name, &l.shape, mode, sink),
                        l.count,
                    )
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim() -> Simulator {
        Simulator::new(TpuConfig::tpu_v2())
    }

    fn layer(ci: usize, hw: usize, co: usize, f: usize, stride: usize, n: usize) -> ConvShape {
        ConvShape::square(n, ci, hw, co, f, stride, f / 2).unwrap()
    }

    #[test]
    fn compute_bound_layer_hits_high_utilization() {
        // 128-channel dense 3x3 at 56x56, batch 8: fills the array.
        let s = layer(128, 56, 128, 3, 1, 8);
        let r = sim().simulate_conv("l", &s, SimMode::ChannelFirst);
        let u = r.utilization(sim().config());
        assert!(u > 0.7, "utilization {u}");
    }

    #[test]
    fn small_channel_layer_benefits_from_multi_tile() {
        let s = layer(8, 128, 128, 3, 1, 8);
        let single = sim().simulate_conv("l", &s, SimMode::ChannelFirstGrouped(1));
        let auto = sim().simulate_conv("l", &s, SimMode::ChannelFirst);
        assert!(
            auto.cycles * 2 < single.cycles,
            "multi-tile should be >2x faster: {} vs {}",
            auto.cycles,
            single.cycles
        );
        assert!(auto.workspace_bytes > single.workspace_bytes);
    }

    #[test]
    fn fig14a_diminishing_returns() {
        // N=8, Ci=8, Wi=Co=128, Wf=3 (the paper's Fig. 14a layer).
        let s = layer(8, 128, 128, 3, 1, 8);
        let mut cycles = Vec::new();
        let mut workspace = Vec::new();
        for g in 1..=3 {
            let r = sim().simulate_conv("l", &s, SimMode::ChannelFirstGrouped(g));
            cycles.push(r.cycles);
            workspace.push(r.workspace_bytes);
        }
        assert!(cycles[0] > cycles[1] && cycles[1] > cycles[2]);
        // Workspace grows roughly linearly.
        let ratio = workspace[2] as f64 / workspace[0] as f64;
        assert!(ratio > 2.5 && ratio < 3.5, "workspace ratio {ratio}");
    }

    #[test]
    fn tpu_stride_insensitivity() {
        // Fig. 4b: TFLOPS roughly flat across strides for compute-heavy
        // layers (both FLOPs and cycles shrink together).
        let cfg = sim();
        let t1 = {
            let s = layer(256, 28, 256, 3, 1, 8);
            let r = cfg.simulate_conv("s1", &s, SimMode::ChannelFirst);
            r.tflops(cfg.config())
        };
        let t2 = {
            let s = layer(256, 28, 256, 3, 2, 8);
            let r = cfg.simulate_conv("s2", &s, SimMode::ChannelFirst);
            r.tflops(cfg.config())
        };
        let drop = (t1 - t2) / t1;
        assert!(
            drop < 0.25,
            "stride-2 drop {drop:.2} (t1={t1:.1}, t2={t2:.1})"
        );
    }

    #[test]
    fn explicit_slower_than_implicit() {
        // Fig. 2b: explicit im2col ~20-30% slower.
        let s = layer(64, 56, 64, 3, 1, 8);
        let imp = sim().simulate_conv("l", &s, SimMode::ChannelFirst);
        let exp = sim().simulate_conv("l", &s, SimMode::Explicit);
        assert!(exp.cycles > imp.cycles, "{} vs {}", exp.cycles, imp.cycles);
        let overhead = exp.cycles as f64 / imp.cycles as f64;
        assert!(
            overhead > 1.05 && overhead < 2.5,
            "explicit overhead {overhead}"
        );
    }

    #[test]
    fn gemm_matches_closed_form_when_compute_bound() {
        let s = sim();
        let r = s.simulate_gemm("g", 4096, 1024, 1024);
        // passes = 8*8 = 64; stream = 64*4096.
        let expect = 64 * 4096 + 255 + 128;
        assert!(r.compute_cycles == expect);
        assert!(r.cycles >= r.compute_cycles);
        let u = r.utilization(s.config());
        assert!(u > 0.8, "{u}");
    }

    #[test]
    fn hwcn_layout_faster_than_nchw_for_strided() {
        let shape = layer(64, 56, 64, 3, 2, 8);
        let hwcn = sim().simulate_conv("l", &shape, SimMode::ChannelFirst);
        let mut cfg = TpuConfig::tpu_v2();
        cfg.ifmap_layout = Layout::Nchw;
        let nchw = Simulator::new(cfg).simulate_conv("l", &shape, SimMode::ChannelFirst);
        assert!(
            nchw.cycles >= hwcn.cycles,
            "{} vs {}",
            nchw.cycles,
            hwcn.cycles
        );
    }

    #[test]
    fn model_simulation_produces_all_layers() {
        let m = iconv_workloads::alexnet(8);
        let rep = sim().simulate_model(&m, SimMode::ChannelFirst);
        assert_eq!(rep.layers.len(), 5);
        assert!(rep.total_cycles() > 0);
        assert_eq!(rep.total_flops(), m.total_flops());
    }

    #[test]
    fn big_layer_chunks_fit_budget() {
        // YOLO conv1 at batch 64 exceeds 32MB: must chunk, not explode.
        let s = layer(32, 208, 64, 3, 1, 64);
        let r = sim().simulate_conv("l", &s, SimMode::ChannelFirst);
        assert!(r.cycles > 0);
        // Workspace reported is pre-chunking demand; sanity only.
        assert!(r.workspace_bytes > 0);
    }

    #[test]
    fn chunked_steady_matches_per_chunk_loop() {
        // The closed form must equal the literal Σᵢ max(computeᵢ, memᵢ).
        let loopy = |c: u64, m: u64, n: u64| -> u64 {
            (0..n)
                .map(|i| {
                    let ci = c / n + u64::from(i < c % n);
                    let mi = m / n + u64::from(i < m % n);
                    ci.max(mi)
                })
                .sum()
        };
        for &(c, m, n) in &[
            (0u64, 0u64, 1u64),
            (0, 5, 8),
            (5, 0, 8),
            (3, 3, 8),
            (1000, 7, 8),
            (7, 1000, 8),
            (262_527, 18_341, 8),
            (12_345, 12_344, 17),
            (u64::from(u32::MAX), 3, 1000),
        ] {
            assert_eq!(chunked_steady(c, m, n), loopy(c, m, n), "c={c} m={m} n={n}");
        }
    }

    #[test]
    fn tiny_memory_phase_is_not_free() {
        // Regression: with `mem_cycles < chunks` the old truncating math
        // gave `mem_chunk = 0`, erasing the memory phase entirely. Force
        // `chunks` above any plausible transfer time.
        let mut cfg = TpuConfig::tpu_v2();
        cfg.min_pipeline_stages = 1 << 24;
        let s = layer(64, 28, 64, 3, 1, 8);
        let sim = Simulator::new(cfg);
        let r = sim.simulate_conv("l", &s, SimMode::ChannelFirst);
        assert!(r.phases.first_fill >= 1, "memory must stay visible");
        assert!(r.assert_conserved());
        // The layer is memory-touched: exposed accounts for all of the
        // non-overlapped DRAM time, so cycles strictly exceed dispatch +
        // compute.
        assert!(r.cycles > sim.config().dispatch_cycles + r.compute_cycles);
    }

    #[test]
    fn exposed_never_underflows_when_memory_dominates() {
        // Regression: `steady < compute_cycles` after truncation made
        // `cycles − dispatch − compute` wrap. Pin the correct identity on
        // a strongly memory-bound layer (1x1, huge channel traffic, tiny
        // batch) and on the sweep that used to trip it.
        let s = layer(2048, 7, 2048, 1, 1, 1);
        let r = sim().simulate_conv("l", &s, SimMode::ChannelFirst);
        assert!(r.exposed_memory_cycles < r.cycles, "no wraparound");
        assert_eq!(
            r.compute_cycles + r.exposed_memory_cycles,
            r.cycles - r.phases.dispatch
        );
        for (m, n, k) in [(128, 128, 128), (256, 8192, 64), (8192, 64, 256)] {
            let g = sim().simulate_gemm("g", m, n, k);
            assert!(g.exposed_memory_cycles < g.cycles);
            assert!(g.assert_conserved());
        }
    }

    #[test]
    fn traced_spans_partition_cycles_exactly() {
        // Always-on enforcement of the conservation invariant through the
        // public traced API: the spans on the layer's track sum to the
        // reported `cycles`, for every mode.
        use iconv_trace::Recorder;
        let s = layer(96, 28, 128, 3, 2, 4);
        for mode in [
            SimMode::ChannelFirst,
            SimMode::ChannelFirstGrouped(2),
            SimMode::Explicit,
            SimMode::Indirect,
        ] {
            let mut rec = Recorder::new();
            let r = sim().simulate_conv_traced("l", &s, mode, &mut rec);
            assert!(r.assert_conserved());
            assert_eq!(rec.track_total("l"), r.cycles, "{mode:?}");
            assert_eq!(rec.counters()["tpusim.cycles"], r.cycles);
            assert_eq!(rec.counters()["tpusim.compute_cycles"], r.compute_cycles);
        }
        let mut rec = Recorder::new();
        let g = sim().simulate_gemm_traced("g", 512, 512, 512, &mut rec);
        assert_eq!(rec.track_total("g"), g.cycles);
    }

    #[test]
    fn untraced_and_traced_reports_are_identical() {
        use iconv_trace::Recorder;
        let s = layer(64, 56, 64, 3, 1, 8);
        let plain = sim().simulate_conv("l", &s, SimMode::ChannelFirst);
        let mut rec = Recorder::new();
        let traced = sim().simulate_conv_traced("l", &s, SimMode::ChannelFirst, &mut rec);
        assert_eq!(plain, traced);
        assert!(!rec.is_empty());
    }

    #[test]
    fn sparse_report_stays_conserved() {
        use iconv_core::{sparse::prune_taps, SparseFilter};
        use iconv_tensor::conv_ref::filter_dims;
        use iconv_tensor::Tensor;
        let s = layer(64, 28, 64, 3, 1, 8);
        let filter = Tensor::<f32>::random(filter_dims(&s), Layout::Nchw, 7);
        for keep in [1.0, 0.5, 0.0] {
            let pruned = prune_taps(&s, &filter, keep, 17);
            let sparse = SparseFilter::from_dense(s, pruned);
            let r = sim().simulate_conv_sparse("l", &sparse);
            assert!(r.assert_conserved());
        }
    }

    #[test]
    fn every_pass_conserves_under_every_mode() {
        use iconv_core::ALL_PASSES;
        let shapes = [
            layer(64, 56, 64, 3, 1, 8),
            layer(96, 27, 256, 5, 2, 8),
            layer(3, 227, 96, 11, 4, 8),
        ];
        let modes = [
            SimMode::ChannelFirst,
            SimMode::ChannelFirstGrouped(2),
            SimMode::Explicit,
            SimMode::Indirect,
        ];
        for s in &shapes {
            for pass in ALL_PASSES {
                for mode in modes {
                    let r = sim().simulate_pass("l", s, pass, mode);
                    assert!(r.assert_conserved(), "{pass} {mode:?}");
                    assert_eq!(r.flops, s.flops(), "{pass} {mode:?}");
                }
            }
        }
    }

    #[test]
    fn pass_dram_ordering_implicit_indirect_explicit() {
        use iconv_core::ALL_PASSES;
        let eb = sim().config().vector_mem.elem_bytes as u64;
        let s = layer(96, 27, 256, 5, 2, 8);
        let footprint = (s.ifmap_elems() + s.filter_elems() + s.ofmap_elems()) as u64 * eb;
        for pass in ALL_PASSES {
            let imp = sim().simulate_pass("l", &s, pass, SimMode::ChannelFirst);
            let ind = sim().simulate_pass("l", &s, pass, SimMode::Indirect);
            let exp = sim().simulate_pass("l", &s, pass, SimMode::Explicit);
            // Implicit moves exactly the tensor footprint; the pointer
            // table sits strictly between it and the materialized matrix.
            assert_eq!(imp.dram_bytes, footprint, "{pass}");
            let lowered = pass.lowered_view_elems(&s) as u64 * eb;
            assert!(exp.dram_bytes >= footprint + 2 * lowered, "{pass}");
            assert!(
                imp.dram_bytes < ind.dram_bytes && ind.dram_bytes < exp.dram_bytes,
                "{pass}: {} / {} / {}",
                imp.dram_bytes,
                ind.dram_bytes,
                exp.dram_bytes
            );
        }
    }

    #[test]
    fn forward_pass_is_simulate_conv() {
        use iconv_core::ConvPass;
        let s = layer(64, 56, 64, 3, 1, 8);
        for mode in [SimMode::ChannelFirst, SimMode::Explicit, SimMode::Indirect] {
            let a = sim().simulate_conv("l", &s, mode);
            let b = sim().simulate_pass("l", &s, ConvPass::Forward, mode);
            assert_eq!(a, b, "{mode:?}");
        }
    }

    #[test]
    fn transpose_costs_exactly_like_dgrad() {
        use iconv_core::ConvPass;
        let s = layer(64, 28, 32, 4, 2, 8);
        for mode in [SimMode::ChannelFirst, SimMode::Explicit, SimMode::Indirect] {
            let d = sim().simulate_pass("l", &s, ConvPass::Dgrad, mode);
            let t = sim().simulate_pass("l", &s, ConvPass::Transpose, mode);
            assert_eq!(d, t, "{mode:?}");
        }
    }

    #[test]
    fn dgrad_implicit_beats_explicit_on_deep_layers() {
        use iconv_core::ConvPass;
        // ci >= 16: the materialized dilated view dwarfs the footprint.
        let s = layer(64, 56, 64, 3, 2, 8);
        let imp = sim().simulate_pass("l", &s, ConvPass::Dgrad, SimMode::ChannelFirst);
        let exp = sim().simulate_pass("l", &s, ConvPass::Dgrad, SimMode::Explicit);
        assert!(imp.cycles <= exp.cycles, "{} vs {}", imp.cycles, exp.cycles);
    }

    #[test]
    fn wgrad_group_spellings_share_one_schedule() {
        use iconv_core::ConvPass;
        let s = layer(8, 56, 128, 3, 1, 8);
        let auto = sim().simulate_pass("l", &s, ConvPass::Wgrad, SimMode::ChannelFirst);
        let g4 = sim().simulate_pass("l", &s, ConvPass::Wgrad, SimMode::ChannelFirstGrouped(4));
        assert_eq!(auto, g4);
    }

    #[test]
    fn pass_traced_spans_partition_cycles() {
        use iconv_core::{ConvPass, ALL_PASSES};
        use iconv_trace::Recorder;
        let s = layer(96, 28, 128, 3, 2, 4);
        for pass in ALL_PASSES {
            for mode in [SimMode::ChannelFirst, SimMode::Explicit, SimMode::Indirect] {
                let mut rec = Recorder::new();
                let r = sim().simulate_pass_traced("l", &s, pass, mode, &mut rec);
                assert_eq!(rec.track_total("l"), r.cycles, "{pass} {mode:?}");
            }
        }
        // Indirect overhead lands in the dispatch + exposed head, visibly.
        let fwd = sim().simulate_pass("l", &s, ConvPass::Forward, SimMode::ChannelFirst);
        let ind = sim().simulate_pass("l", &s, ConvPass::Forward, SimMode::Indirect);
        assert!(ind.phases.dispatch > fwd.phases.dispatch);
        assert!(ind.cycles > fwd.cycles);
    }

    #[test]
    fn word_size_one_stalls_compute() {
        let s = layer(128, 28, 128, 3, 2, 2); // shallow batch, strided
        let base = sim().simulate_conv("l", &s, SimMode::ChannelFirst);
        let w1 = Simulator::new(TpuConfig::tpu_v2().with_word_elems(1));
        let r1 = w1.simulate_conv("l", &s, SimMode::ChannelFirst);
        assert!(r1.compute_cycles >= base.compute_cycles);
    }
}
