//! TPUSim configuration (paper Table II), fully parameterizable for the
//! design-space explorations of Fig. 16.

use iconv_dram::DramConfig;
use iconv_sram::VectorMemConfig;
use iconv_systolic::ArrayConfig;
use iconv_tensor::Layout;

/// Complete configuration of one simulated TPU core.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TpuConfig {
    /// Systolic array geometry (TPU-v2: 128 × 128 weight-stationary).
    pub array: ArrayConfig,
    /// Core clock in MHz (TPU-v2: 700).
    pub clock_mhz: f64,
    /// One vector memory per PE row (TPU-v2: 128 arrays of 256 KB, 8 × 4 B
    /// words).
    pub vector_mem: VectorMemConfig,
    /// Off-chip memory (TPU-v2: 700 GB/s HBM).
    pub dram: DramConfig,
    /// DRAM-resident IFMap layout; `HWCN` is the paper's proposal, `NCHW`
    /// the conventional baseline (Fig. 7 comparison).
    pub ifmap_layout: Layout,
    /// Fraction of on-chip memory budgeted to double-buffered IFMap tiles
    /// (the rest holds OFMaps, weights in flight, and spill margin).
    pub ifmap_buffer_fraction: f64,
    /// Fixed per-layer dispatch overhead in cycles (instruction fetch,
    /// DMA descriptor setup).
    pub dispatch_cycles: u64,
    /// Minimum number of double-buffered pipeline stages a layer's DRAM
    /// stream is split into: even when the whole working set fits on chip,
    /// the DMA engine fills it in pieces that overlap with compute, so only
    /// `1/stages` of the transfer is exposed at the pipeline head.
    pub min_pipeline_stages: u64,
    /// Number of systolic arrays (MXUs) sharing the vector memories.
    /// TPU-v2 has 1; TPU-v3 adds a second to soak up the spare
    /// vector-memory bandwidth the Fig. 16b analysis exposes (paper
    /// Sec. VII-A: "this insight explains why the TPUv3 chooses to add
    /// another systolic array").
    pub mxus: usize,
}

impl TpuConfig {
    /// The TPU-v2 core of paper Table II.
    pub fn tpu_v2() -> Self {
        Self {
            array: ArrayConfig::tpu_v2(),
            clock_mhz: 700.0,
            vector_mem: VectorMemConfig::tpu_v2(),
            dram: DramConfig::hbm_tpu_v2(),
            ifmap_layout: Layout::Hwcn,
            ifmap_buffer_fraction: 0.45,
            dispatch_cycles: 1_000,
            min_pipeline_stages: 8,
            mxus: 1,
        }
    }

    /// A TPU-v3 core: two 128×128 MXUs sharing the vector memories, a
    /// faster clock, and more HBM bandwidth (published deltas over v2).
    pub fn tpu_v3() -> Self {
        let mut c = Self::tpu_v2();
        c.mxus = 2;
        c.clock_mhz = 940.0;
        // ~450 GB/s per core at 940 MHz.
        c.dram.bytes_per_cycle = 479.0;
        c
    }

    /// Total unified on-chip memory in bytes (TPU-v2: 32 MB).
    pub fn total_sram_bytes(&self) -> u64 {
        self.vector_mem.capacity_bytes * self.array.rows as u64
    }

    /// Peak MACs per cycle: `mxus × rows × cols`.
    pub fn peak_macs_per_cycle(&self) -> u64 {
        (self.mxus * self.array.rows * self.array.cols) as u64
    }

    /// Peak TFLOPS (2 FLOPs per MAC).
    pub fn peak_tflops(&self) -> f64 {
        2.0 * self.peak_macs_per_cycle() as f64 * self.clock_mhz * 1e6 / 1e12
    }

    /// Convert cycles to seconds at the configured clock.
    pub fn cycles_to_seconds(&self, cycles: u64) -> f64 {
        cycles as f64 / (self.clock_mhz * 1e6)
    }

    /// Scale the systolic array (and the per-row vector-memory count with
    /// it, keeping total SRAM constant) — the Fig. 16a sweep.
    pub fn with_array_size(mut self, size: usize) -> Self {
        let total = self.total_sram_bytes();
        self.array = ArrayConfig {
            rows: size,
            cols: size,
        };
        self.vector_mem.capacity_bytes = total / size as u64;
        self
    }

    /// Change the vector-memory word size in elements — the Fig. 16b sweep.
    pub fn with_word_elems(mut self, word_elems: usize) -> Self {
        self.vector_mem.word_elems = word_elems;
        self
    }

    /// A canonical, injective text rendering of *every* configuration field,
    /// used as the hardware component of content-addressed cache keys (the
    /// `iconv-serve` report cache): two configs produce the same string iff
    /// they denote the same simulated machine. Floats use Rust's shortest
    /// round-trip `Display`, so distinct values never alias.
    pub fn canonical_key(&self) -> String {
        let vm = &self.vector_mem;
        let d = &self.dram;
        format!(
            "tpu;a{}x{};clk{};vm{}x{}x{};dram{},{},{},{},{},{},{},{};lay{:?};frac{};disp{};stages{};mxus{}",
            self.array.rows,
            self.array.cols,
            self.clock_mhz,
            vm.word_elems,
            vm.elem_bytes,
            vm.capacity_bytes,
            d.bytes_per_cycle,
            d.burst_bytes,
            d.row_bytes,
            d.banks,
            d.t_activate,
            d.t_precharge,
            d.t_cas,
            d.base_latency,
            self.ifmap_layout,
            self.ifmap_buffer_fraction,
            self.dispatch_cycles,
            self.min_pipeline_stages,
            self.mxus
        )
    }
}

impl Default for TpuConfig {
    fn default() -> Self {
        Self::tpu_v2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_parameters() {
        let c = TpuConfig::tpu_v2();
        assert_eq!(c.array.rows, 128);
        assert_eq!(c.array.cols, 128);
        assert_eq!(c.clock_mhz, 700.0);
        assert_eq!(c.vector_mem.word_elems, 8);
        assert_eq!(c.vector_mem.elem_bytes, 4);
        assert_eq!(c.total_sram_bytes(), 32 * 1024 * 1024);
        assert!((c.dram.bytes_per_cycle - 1000.0).abs() < 1.0); // 700 GB/s @ 700 MHz
    }

    #[test]
    fn peak_tflops_matches_tpu_v2_core() {
        // One TPU-v2 core: 128*128*2*700e6 ≈ 22.9 TFLOPS.
        let t = TpuConfig::tpu_v2().peak_tflops();
        assert!((t - 22.9).abs() < 0.1, "peak = {t}");
    }

    #[test]
    fn array_resize_preserves_total_sram() {
        let c = TpuConfig::tpu_v2().with_array_size(256);
        assert_eq!(c.array.rows, 256);
        assert_eq!(c.total_sram_bytes(), 32 * 1024 * 1024);
        assert_eq!(c.vector_mem.capacity_bytes, 128 * 1024);
    }

    #[test]
    fn tpu_v3_doubles_peak_compute() {
        let v2 = TpuConfig::tpu_v2();
        let v3 = TpuConfig::tpu_v3();
        // 2 MXUs x faster clock: v3 core ≈ 61.6 TFLOPS vs v2's 22.9.
        assert!(v3.peak_tflops() > 2.5 * v2.peak_tflops());
        assert_eq!(v3.mxus, 2);
    }

    #[test]
    fn canonical_key_distinguishes_every_knob() {
        let base = TpuConfig::tpu_v2();
        let variants = [
            base,
            base.with_array_size(256),
            base.with_word_elems(16),
            TpuConfig::tpu_v3(),
            {
                let mut c = base;
                c.ifmap_layout = Layout::Nchw;
                c
            },
            {
                let mut c = base;
                c.ifmap_buffer_fraction = 0.5;
                c
            },
            {
                let mut c = base;
                c.dram.bytes_per_cycle += 0.5;
                c
            },
        ];
        let keys: std::collections::BTreeSet<String> =
            variants.iter().map(TpuConfig::canonical_key).collect();
        assert_eq!(keys.len(), variants.len(), "{keys:?}");
        // Identical configs agree.
        assert_eq!(base.canonical_key(), TpuConfig::tpu_v2().canonical_key());
    }

    #[test]
    fn cycles_seconds_roundtrip() {
        let c = TpuConfig::tpu_v2();
        assert!((c.cycles_to_seconds(700_000_000) - 1.0).abs() < 1e-9);
    }
}
