//! TPUSim configuration (paper Table II), fully parameterizable for the
//! design-space explorations of Fig. 16.

use std::fmt;

use iconv_core::PipelineSchedule;
use iconv_dram::DramConfig;
use iconv_sram::VectorMemConfig;
use iconv_systolic::ArrayConfig;
use iconv_tensor::Layout;

/// Complete configuration of one simulated TPU core.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TpuConfig {
    /// Systolic array geometry (TPU-v2: 128 × 128 weight-stationary).
    pub array: ArrayConfig,
    /// Core clock in MHz (TPU-v2: 700).
    pub clock_mhz: f64,
    /// One vector memory per PE row (TPU-v2: 128 arrays of 256 KB, 8 × 4 B
    /// words).
    pub vector_mem: VectorMemConfig,
    /// Off-chip memory (TPU-v2: 700 GB/s HBM).
    pub dram: DramConfig,
    /// DRAM-resident IFMap layout; `HWCN` is the paper's proposal, `NCHW`
    /// the conventional baseline (Fig. 7 comparison).
    pub ifmap_layout: Layout,
    /// Fraction of on-chip memory budgeted to double-buffered IFMap tiles
    /// (the rest holds OFMaps, weights in flight, and spill margin).
    pub ifmap_buffer_fraction: f64,
    /// Fixed per-layer dispatch overhead in cycles (instruction fetch,
    /// DMA descriptor setup).
    pub dispatch_cycles: u64,
    /// Minimum number of double-buffered pipeline stages a layer's DRAM
    /// stream is split into: even when the whole working set fits on chip,
    /// the DMA engine fills it in pieces that overlap with compute, so only
    /// `1/stages` of the transfer is exposed at the pipeline head.
    pub min_pipeline_stages: u64,
    /// Number of systolic arrays (MXUs) sharing the vector memories.
    /// TPU-v2 has 1; TPU-v3 adds a second to soak up the spare
    /// vector-memory bandwidth the Fig. 16b analysis exposes (paper
    /// Sec. VII-A: "this insight explains why the TPUv3 chooses to add
    /// another systolic array").
    pub mxus: usize,
    /// SRAM fill / compute overlap discipline of the chunked DMA pipeline.
    /// `SingleBuffered` (the paper's measured model) pays a per-chunk
    /// barrier; `DoubleBuffered` prefetches the next chunk behind
    /// steady-state compute, hiding fill cycles entirely when compute-bound.
    pub schedule: PipelineSchedule,
}

impl TpuConfig {
    /// The TPU-v2 core of paper Table II.
    pub fn tpu_v2() -> Self {
        Self {
            array: ArrayConfig::tpu_v2(),
            clock_mhz: 700.0,
            vector_mem: VectorMemConfig::tpu_v2(),
            dram: DramConfig::hbm_tpu_v2(),
            ifmap_layout: Layout::Hwcn,
            ifmap_buffer_fraction: 0.45,
            dispatch_cycles: 1_000,
            min_pipeline_stages: 8,
            mxus: 1,
            schedule: PipelineSchedule::SingleBuffered,
        }
    }

    /// A TPU-v3 core: two 128×128 MXUs sharing the vector memories, a
    /// faster clock, and more HBM bandwidth (published deltas over v2).
    pub fn tpu_v3() -> Self {
        let mut c = Self::tpu_v2();
        c.mxus = 2;
        c.clock_mhz = 940.0;
        // ~450 GB/s per core at 940 MHz.
        c.dram.bytes_per_cycle = 479.0;
        c
    }

    /// Total unified on-chip memory in bytes (TPU-v2: 32 MB).
    pub fn total_sram_bytes(&self) -> u64 {
        self.vector_mem.capacity_bytes * self.array.rows as u64
    }

    /// Peak MACs per cycle: `mxus × rows × cols`.
    pub fn peak_macs_per_cycle(&self) -> u64 {
        (self.mxus * self.array.rows * self.array.cols) as u64
    }

    /// Peak TFLOPS (2 FLOPs per MAC).
    pub fn peak_tflops(&self) -> f64 {
        2.0 * self.peak_macs_per_cycle() as f64 * self.clock_mhz * 1e6 / 1e12
    }

    /// Convert cycles to seconds at the configured clock.
    pub fn cycles_to_seconds(&self, cycles: u64) -> f64 {
        cycles as f64 / (self.clock_mhz * 1e6)
    }

    /// Scale the systolic array (and the per-row vector-memory count with
    /// it, keeping total SRAM constant) — the Fig. 16a sweep.
    pub fn with_array_size(mut self, size: usize) -> Self {
        let total = self.total_sram_bytes();
        self.array = ArrayConfig {
            rows: size,
            cols: size,
        };
        self.vector_mem.capacity_bytes = total / size as u64;
        self
    }

    /// Change the vector-memory word size in elements — the Fig. 16b sweep.
    pub fn with_word_elems(mut self, word_elems: usize) -> Self {
        self.vector_mem.word_elems = word_elems;
        self
    }

    /// A canonical, injective text rendering of *every* configuration field,
    /// used as the hardware component of content-addressed cache keys (the
    /// `iconv-serve` report cache): two configs produce the same string iff
    /// they denote the same simulated machine. Floats use Rust's shortest
    /// round-trip `Display`, so distinct values never alias.
    pub fn canonical_key(&self) -> String {
        let vm = &self.vector_mem;
        let d = &self.dram;
        format!(
            "tpu;a{}x{};clk{};vm{}x{}x{};dram{},{},{},{},{},{},{},{};lay{:?};frac{};disp{};stages{};mxus{};sched{}",
            self.array.rows,
            self.array.cols,
            self.clock_mhz,
            vm.word_elems,
            vm.elem_bytes,
            vm.capacity_bytes,
            d.bytes_per_cycle,
            d.burst_bytes,
            d.row_bytes,
            d.banks,
            d.t_activate,
            d.t_precharge,
            d.t_cas,
            d.base_latency,
            self.ifmap_layout,
            self.ifmap_buffer_fraction,
            self.dispatch_cycles,
            self.min_pipeline_stages,
            self.mxus,
            self.schedule
        )
    }
}

impl Default for TpuConfig {
    fn default() -> Self {
        Self::tpu_v2()
    }
}

/// Why a [`TpuConfigBuilder`] refused to produce a config.
///
/// Each variant names the knob that was out of domain, so callers (the serve
/// request validator in particular) can surface a precise `bad-request`
/// detail instead of a panic deep inside the simulator.
#[derive(Debug, Clone, PartialEq)]
pub enum TpuConfigError {
    /// Systolic array rows/cols must both be ≥ 1.
    ZeroArrayDim,
    /// Vector-memory word width in elements must be ≥ 1.
    ZeroWordElems,
    /// Element size in bytes must be ≥ 1.
    ZeroElemBytes,
    /// Per-row vector memory capacity must be ≥ 1 byte; scaling the array up
    /// past the total-SRAM budget drives this to zero.
    ZeroVectorMemCapacity,
    /// At least one MXU must be present.
    ZeroMxus,
    /// Clock must be finite and positive (MHz).
    BadClock(f64),
    /// IFMap buffer fraction must lie in (0, 1].
    BadIfmapFraction(f64),
    /// The DMA pipeline needs at least one stage.
    ZeroPipelineStages,
    /// DRAM bank count must be a power of two (the bank-interleaving hash
    /// takes low address bits).
    NonPowerOfTwoDramBanks(u64),
    /// DRAM burst length must be ≥ 1 byte.
    ZeroDramBurst,
}

impl fmt::Display for TpuConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::ZeroArrayDim => write!(f, "systolic array dimensions must be >= 1"),
            Self::ZeroWordElems => write!(f, "vector-memory word width must be >= 1 element"),
            Self::ZeroElemBytes => write!(f, "element size must be >= 1 byte"),
            Self::ZeroVectorMemCapacity => {
                write!(f, "per-row vector memory capacity underflows to 0 bytes")
            }
            Self::ZeroMxus => write!(f, "at least one MXU is required"),
            Self::BadClock(v) => write!(f, "clock must be finite and positive, got {v} MHz"),
            Self::BadIfmapFraction(v) => {
                write!(f, "ifmap buffer fraction must be in (0, 1], got {v}")
            }
            Self::ZeroPipelineStages => write!(f, "pipeline stage count must be >= 1"),
            Self::NonPowerOfTwoDramBanks(n) => {
                write!(f, "dram bank count must be a power of two, got {n}")
            }
            Self::ZeroDramBurst => write!(f, "dram burst length must be >= 1 byte"),
        }
    }
}

impl std::error::Error for TpuConfigError {}

/// Validated builder for [`TpuConfig`].
///
/// Starts from a known-good base (`tpu_v2` unless [`TpuConfig::builder_from`]
/// says otherwise), applies overrides, and checks every knob's domain in
/// [`build`](TpuConfigBuilder::build). Field-literal construction still works
/// for internal code that mutates a copy of a preset, but anything deriving a
/// config from *external input* (the serve wire protocol, CLI flags) should
/// come through here so out-of-domain values surface as a typed error
/// instead of a panic or a silently nonsensical simulation.
#[derive(Debug, Clone, Copy)]
pub struct TpuConfigBuilder {
    cfg: TpuConfig,
}

impl TpuConfigBuilder {
    /// Square array size; keeps total SRAM constant like
    /// [`TpuConfig::with_array_size`].
    pub fn array_size(mut self, size: usize) -> Self {
        let total = self.cfg.total_sram_bytes();
        self.cfg.array = ArrayConfig {
            rows: size,
            cols: size,
        };
        // `with_array_size` divides the SRAM budget by `size`; keep zero out
        // of the divisor so `build` reports `ZeroArrayDim` instead of
        // panicking here.
        self.cfg.vector_mem.capacity_bytes = if size == 0 { 0 } else { total / size as u64 };
        self
    }

    /// Vector-memory word width in elements.
    pub fn word_elems(mut self, word_elems: usize) -> Self {
        self.cfg.vector_mem.word_elems = word_elems;
        self
    }

    /// Number of MXUs sharing the vector memories.
    pub fn mxus(mut self, mxus: usize) -> Self {
        self.cfg.mxus = mxus;
        self
    }

    /// Core clock in MHz.
    pub fn clock_mhz(mut self, mhz: f64) -> Self {
        self.cfg.clock_mhz = mhz;
        self
    }

    /// DRAM-resident IFMap layout.
    pub fn ifmap_layout(mut self, layout: Layout) -> Self {
        self.cfg.ifmap_layout = layout;
        self
    }

    /// Fraction of on-chip memory budgeted to IFMap tiles.
    pub fn ifmap_buffer_fraction(mut self, fraction: f64) -> Self {
        self.cfg.ifmap_buffer_fraction = fraction;
        self
    }

    /// Fixed per-layer dispatch overhead in cycles.
    pub fn dispatch_cycles(mut self, cycles: u64) -> Self {
        self.cfg.dispatch_cycles = cycles;
        self
    }

    /// Minimum number of double-buffered DMA pipeline stages.
    pub fn min_pipeline_stages(mut self, stages: u64) -> Self {
        self.cfg.min_pipeline_stages = stages;
        self
    }

    /// Replace the off-chip memory model wholesale.
    pub fn dram(mut self, dram: DramConfig) -> Self {
        self.cfg.dram = dram;
        self
    }

    /// SRAM fill / compute overlap discipline of the DMA pipeline.
    pub fn schedule(mut self, schedule: PipelineSchedule) -> Self {
        self.cfg.schedule = schedule;
        self
    }

    /// Validate every knob and return the finished config.
    pub fn build(self) -> Result<TpuConfig, TpuConfigError> {
        let c = &self.cfg;
        if c.array.rows == 0 || c.array.cols == 0 {
            return Err(TpuConfigError::ZeroArrayDim);
        }
        if c.vector_mem.word_elems == 0 {
            return Err(TpuConfigError::ZeroWordElems);
        }
        if c.vector_mem.elem_bytes == 0 {
            return Err(TpuConfigError::ZeroElemBytes);
        }
        if c.vector_mem.capacity_bytes == 0 {
            return Err(TpuConfigError::ZeroVectorMemCapacity);
        }
        if c.mxus == 0 {
            return Err(TpuConfigError::ZeroMxus);
        }
        if !c.clock_mhz.is_finite() || c.clock_mhz <= 0.0 {
            return Err(TpuConfigError::BadClock(c.clock_mhz));
        }
        if !c.ifmap_buffer_fraction.is_finite()
            || c.ifmap_buffer_fraction <= 0.0
            || c.ifmap_buffer_fraction > 1.0
        {
            return Err(TpuConfigError::BadIfmapFraction(c.ifmap_buffer_fraction));
        }
        if c.min_pipeline_stages == 0 {
            return Err(TpuConfigError::ZeroPipelineStages);
        }
        if c.dram.banks == 0 || !c.dram.banks.is_power_of_two() {
            return Err(TpuConfigError::NonPowerOfTwoDramBanks(c.dram.banks));
        }
        if c.dram.burst_bytes == 0 {
            return Err(TpuConfigError::ZeroDramBurst);
        }
        Ok(self.cfg)
    }
}

impl TpuConfig {
    /// Builder seeded from the TPU-v2 preset.
    pub fn builder() -> TpuConfigBuilder {
        Self::builder_from(Self::tpu_v2())
    }

    /// Builder seeded from an arbitrary base config (e.g. `tpu_v3`).
    pub fn builder_from(base: TpuConfig) -> TpuConfigBuilder {
        TpuConfigBuilder { cfg: base }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_parameters() {
        let c = TpuConfig::tpu_v2();
        assert_eq!(c.array.rows, 128);
        assert_eq!(c.array.cols, 128);
        assert_eq!(c.clock_mhz, 700.0);
        assert_eq!(c.vector_mem.word_elems, 8);
        assert_eq!(c.vector_mem.elem_bytes, 4);
        assert_eq!(c.total_sram_bytes(), 32 * 1024 * 1024);
        assert!((c.dram.bytes_per_cycle - 1000.0).abs() < 1.0); // 700 GB/s @ 700 MHz
    }

    #[test]
    fn peak_tflops_matches_tpu_v2_core() {
        // One TPU-v2 core: 128*128*2*700e6 ≈ 22.9 TFLOPS.
        let t = TpuConfig::tpu_v2().peak_tflops();
        assert!((t - 22.9).abs() < 0.1, "peak = {t}");
    }

    #[test]
    fn array_resize_preserves_total_sram() {
        let c = TpuConfig::tpu_v2().with_array_size(256);
        assert_eq!(c.array.rows, 256);
        assert_eq!(c.total_sram_bytes(), 32 * 1024 * 1024);
        assert_eq!(c.vector_mem.capacity_bytes, 128 * 1024);
    }

    #[test]
    fn tpu_v3_doubles_peak_compute() {
        let v2 = TpuConfig::tpu_v2();
        let v3 = TpuConfig::tpu_v3();
        // 2 MXUs x faster clock: v3 core ≈ 61.6 TFLOPS vs v2's 22.9.
        assert!(v3.peak_tflops() > 2.5 * v2.peak_tflops());
        assert_eq!(v3.mxus, 2);
    }

    #[test]
    fn canonical_key_distinguishes_every_knob() {
        let base = TpuConfig::tpu_v2();
        let variants = [
            base,
            base.with_array_size(256),
            base.with_word_elems(16),
            TpuConfig::tpu_v3(),
            {
                let mut c = base;
                c.ifmap_layout = Layout::Nchw;
                c
            },
            {
                let mut c = base;
                c.ifmap_buffer_fraction = 0.5;
                c
            },
            {
                let mut c = base;
                c.dram.bytes_per_cycle += 0.5;
                c
            },
            {
                let mut c = base;
                c.schedule = PipelineSchedule::DoubleBuffered;
                c
            },
        ];
        let keys: std::collections::BTreeSet<String> =
            variants.iter().map(TpuConfig::canonical_key).collect();
        assert_eq!(keys.len(), variants.len(), "{keys:?}");
        // Identical configs agree.
        assert_eq!(base.canonical_key(), TpuConfig::tpu_v2().canonical_key());
    }

    #[test]
    fn cycles_seconds_roundtrip() {
        let c = TpuConfig::tpu_v2();
        assert!((c.cycles_to_seconds(700_000_000) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn builder_defaults_match_preset() {
        assert_eq!(TpuConfig::builder().build().unwrap(), TpuConfig::tpu_v2());
        assert_eq!(
            TpuConfig::builder_from(TpuConfig::tpu_v3())
                .build()
                .unwrap(),
            TpuConfig::tpu_v3()
        );
    }

    #[test]
    fn builder_matches_with_helpers() {
        let a = TpuConfig::builder()
            .array_size(256)
            .word_elems(16)
            .build()
            .unwrap();
        let b = TpuConfig::tpu_v2().with_array_size(256).with_word_elems(16);
        assert_eq!(a, b);
    }

    #[test]
    fn builder_rejects_out_of_domain_knobs() {
        use TpuConfigError as E;
        assert_eq!(
            TpuConfig::builder().array_size(0).build(),
            Err(E::ZeroArrayDim)
        );
        assert_eq!(
            TpuConfig::builder().word_elems(0).build(),
            Err(E::ZeroWordElems)
        );
        assert_eq!(TpuConfig::builder().mxus(0).build(), Err(E::ZeroMxus));
        assert_eq!(
            TpuConfig::builder().clock_mhz(0.0).build(),
            Err(E::BadClock(0.0))
        );
        assert!(TpuConfig::builder().clock_mhz(f64::NAN).build().is_err());
        assert_eq!(
            TpuConfig::builder().ifmap_buffer_fraction(1.5).build(),
            Err(E::BadIfmapFraction(1.5))
        );
        assert_eq!(
            TpuConfig::builder().min_pipeline_stages(0).build(),
            Err(E::ZeroPipelineStages)
        );
        // Scaling the array past the SRAM budget drives per-row capacity to 0.
        assert_eq!(
            TpuConfig::builder().array_size(1 << 30).build(),
            Err(E::ZeroVectorMemCapacity)
        );
        let mut dram = DramConfig::hbm_tpu_v2();
        dram.banks = 96;
        assert_eq!(
            TpuConfig::builder().dram(dram).build(),
            Err(E::NonPowerOfTwoDramBanks(96))
        );
    }

    #[test]
    fn builder_errors_display_the_offending_knob() {
        let msg = TpuConfig::builder().array_size(0).build().unwrap_err();
        assert!(msg.to_string().contains("array"), "{msg}");
        let msg = {
            let mut dram = DramConfig::hbm_tpu_v2();
            dram.banks = 3;
            TpuConfig::builder().dram(dram).build().unwrap_err()
        };
        assert!(msg.to_string().contains("power of two"), "{msg}");
    }
}
