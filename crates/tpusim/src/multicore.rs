//! Multi-core scaling: the paper's baseline is a **dual-core** TPU-v2 chip
//! (Sec. IV-A); pods gang many chips. This module models the standard
//! data-parallel execution: the batch splits across cores, each core runs
//! the channel-first schedule on its shard, and (for training) gradients
//! all-reduce over the inter-core interconnect.

use crate::engine::{SimMode, Simulator};
use crate::report::ModelReport;
use iconv_tensor::ConvShape;
use iconv_trace::{NullSink, TraceSink};
use iconv_workloads::Model;

/// Interconnect parameters for gradient all-reduce.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interconnect {
    /// Per-link bandwidth in bytes per core-cycle (TPU-v2 ICI class).
    pub bytes_per_cycle: f64,
    /// Fixed latency per collective step, cycles.
    pub step_latency: u64,
}

impl Interconnect {
    /// TPU-v2 inter-core interconnect (≈ 500 GB/s links at 700 MHz).
    pub fn tpu_v2_ici() -> Self {
        Self {
            bytes_per_cycle: 700.0,
            step_latency: 2_000,
        }
    }

    /// Cycles for a ring all-reduce of `bytes` across `cores`:
    /// `2·(cores−1)/cores` of the data crosses each link.
    pub fn allreduce_cycles(&self, bytes: u64, cores: usize) -> u64 {
        if cores <= 1 {
            return 0;
        }
        let steps = 2 * (cores - 1) as u64;
        let per_step = bytes as f64 / cores as f64 / self.bytes_per_cycle;
        steps * (per_step.ceil() as u64 + self.step_latency)
    }
}

/// Result of a data-parallel run.
#[derive(Debug, Clone, PartialEq)]
pub struct MulticoreReport {
    /// Cores used.
    pub cores: usize,
    /// Per-core compute cycles (the slowest shard).
    pub compute_cycles: u64,
    /// All-reduce cycles (zero for inference).
    pub allreduce_cycles: u64,
    /// Speedup over the single-core run of the full batch.
    pub speedup: f64,
}

impl MulticoreReport {
    /// Total cycles for the step.
    pub fn total_cycles(&self) -> u64 {
        self.compute_cycles + self.allreduce_cycles
    }

    /// Parallel efficiency: `speedup / cores`.
    pub fn efficiency(&self) -> f64 {
        self.speedup / self.cores as f64
    }
}

/// Split a batch as evenly as possible; the slowest shard sets the pace.
fn shard_batches(n: usize, cores: usize) -> Vec<usize> {
    let base = n / cores;
    let extra = n % cores;
    (0..cores)
        .map(|c| base + usize::from(c < extra))
        .filter(|&b| b > 0)
        .collect()
}

impl Simulator {
    /// Simulate data-parallel inference of `model` across `cores` cores of
    /// this configuration. Returns per-step cycles and scaling metrics.
    /// # Examples
    ///
    /// ```
    /// # use iconv_tpusim::{Interconnect, Simulator, TpuConfig};
    /// let sim = Simulator::new(TpuConfig::tpu_v2());
    /// let model = iconv_workloads::resnet50(16);
    /// let two = sim.simulate_model_multicore(&model, 2, false, Interconnect::tpu_v2_ici());
    /// assert!(two.speedup > 1.5 && two.efficiency() <= 1.01);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero.
    pub fn simulate_model_multicore(
        &self,
        model: &Model,
        cores: usize,
        training: bool,
        ici: Interconnect,
    ) -> MulticoreReport {
        self.simulate_model_multicore_traced(model, cores, training, ici, &mut NullSink)
    }

    /// [`Simulator::simulate_model_multicore`] with the step's
    /// compute/all-reduce phases emitted as spans on a `multicore` track.
    pub fn simulate_model_multicore_traced(
        &self,
        model: &Model,
        cores: usize,
        training: bool,
        ici: Interconnect,
        sink: &mut dyn TraceSink,
    ) -> MulticoreReport {
        assert!(cores > 0, "at least one core required");
        let single = self.total_model_cycles(model, training);
        let shards = shard_batches(model.layers[0].shape.n, cores);
        // The slowest (largest) shard paces the step.
        let max_shard = shards.iter().copied().max().unwrap_or(0);
        let sharded_model = Model {
            name: model.name,
            layers: model
                .layers
                .iter()
                .map(|l| {
                    let mut l2 = l.clone();
                    l2.shape = ConvShape {
                        n: max_shard,
                        ..l.shape
                    };
                    l2
                })
                .collect(),
        };
        let compute = self.total_model_cycles(&sharded_model, training);
        let allreduce = if training {
            let eb = self.config().vector_mem.elem_bytes as u64;
            let grad_bytes: u64 = model
                .layers
                .iter()
                .map(|l| l.shape.filter_elems() as u64 * eb * l.count as u64)
                .sum();
            ici.allreduce_cycles(grad_bytes, shards.len())
        } else {
            0
        };
        if sink.enabled() {
            let track = format!("{} multicore x{}", model.name, shards.len());
            sink.span(&track, "compute", 0, compute);
            sink.span(&track, "allreduce", compute, allreduce);
        }
        sink.counter("multicore.compute_cycles", compute);
        sink.counter("multicore.allreduce_cycles", allreduce);
        MulticoreReport {
            cores: shards.len(),
            compute_cycles: compute,
            allreduce_cycles: allreduce,
            speedup: single as f64 / (compute + allreduce) as f64,
        }
    }

    fn total_model_cycles(&self, model: &Model, training: bool) -> u64 {
        if training {
            self.simulate_model_training(model)
                .iter()
                .map(|(r, k)| r.total_cycles() * *k as u64)
                .sum()
        } else {
            self.simulate_model(model, SimMode::ChannelFirst)
                .total_cycles()
        }
    }
}

/// Convenience: report totals of a [`ModelReport`] — re-exported here so the
/// multicore ablation can compare against plain runs without re-simulation.
pub fn model_cycles(report: &ModelReport) -> u64 {
    report.total_cycles()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TpuConfig;
    use iconv_workloads::resnet50;

    fn sim() -> Simulator {
        Simulator::new(TpuConfig::tpu_v2())
    }

    #[test]
    fn two_cores_speed_up_inference() {
        let model = resnet50(16);
        let rep = sim().simulate_model_multicore(&model, 2, false, Interconnect::tpu_v2_ici());
        assert_eq!(rep.cores, 2);
        assert_eq!(rep.allreduce_cycles, 0);
        assert!(rep.speedup > 1.4, "speedup {:.2}", rep.speedup);
        assert!(rep.efficiency() <= 1.01);
    }

    #[test]
    fn training_pays_allreduce() {
        let model = resnet50(16);
        let inf = sim().simulate_model_multicore(&model, 4, false, Interconnect::tpu_v2_ici());
        let tr = sim().simulate_model_multicore(&model, 4, true, Interconnect::tpu_v2_ici());
        assert!(tr.allreduce_cycles > 0);
        assert!(tr.efficiency() <= inf.efficiency() + 0.05);
    }

    #[test]
    fn scaling_saturates_with_tiny_batches() {
        // Batch 4 over 8 cores: only 4 shards exist, and per-shard overheads
        // dominate — efficiency collapses.
        let model = resnet50(4);
        let rep = sim().simulate_model_multicore(&model, 8, false, Interconnect::tpu_v2_ici());
        assert!(rep.cores <= 4);
        assert!(rep.efficiency() < 0.9, "efficiency {:.2}", rep.efficiency());
    }

    #[test]
    fn one_core_is_identity() {
        let model = resnet50(8);
        let rep = sim().simulate_model_multicore(&model, 1, false, Interconnect::tpu_v2_ici());
        assert_eq!(rep.cores, 1);
        assert!((rep.speedup - 1.0).abs() < 1e-9);
    }

    #[test]
    fn traced_run_partitions_the_step() {
        use iconv_trace::Recorder;
        let model = resnet50(16);
        let mut rec = Recorder::new();
        let rep = sim().simulate_model_multicore_traced(
            &model,
            2,
            true,
            Interconnect::tpu_v2_ici(),
            &mut rec,
        );
        assert_eq!(rec.track_total("ResNet multicore x2"), rep.total_cycles());
        assert_eq!(
            rec.counters()["multicore.allreduce_cycles"],
            rep.allreduce_cycles
        );
    }

    #[test]
    fn allreduce_cycles_scale_with_data_and_cores() {
        let ici = Interconnect::tpu_v2_ici();
        assert_eq!(ici.allreduce_cycles(1 << 20, 1), 0);
        let two = ici.allreduce_cycles(1 << 26, 2);
        let four = ici.allreduce_cycles(1 << 26, 4);
        // More cores: more steps but less data per link; for big payloads
        // ring all-reduce total stays roughly flat.
        let ratio = four as f64 / two as f64;
        assert!((0.7..2.0).contains(&ratio), "ratio {ratio}");
    }
}
