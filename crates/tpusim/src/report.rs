//! Simulation reports: per-layer and per-model cycle/traffic/utilization
//! accounting.

use crate::config::TpuConfig;
use iconv_sram::PortStats;
use std::fmt;

/// The three phases that partition a layer's `cycles` exactly:
/// `dispatch + first_fill + steady == cycles`. This is the span layout the
/// trace layer emits, and the identity [`LayerReport::assert_conserved`]
/// enforces — per-phase attribution that cannot drift from the total.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Phases {
    /// Fixed host dispatch overhead.
    pub dispatch: u64,
    /// Exposed head of the pipeline: the first chunk's DRAM fill (plus the
    /// explicit-im2col transform, in that mode) that nothing overlaps.
    pub first_fill: u64,
    /// Steady-state pipeline: per-chunk `max(compute, memory)`, where
    /// memory beyond compute is the exposed tail.
    pub steady: u64,
}

impl Phases {
    /// `dispatch + first_fill + steady` — must equal the report's `cycles`.
    pub fn total(&self) -> u64 {
        self.dispatch + self.first_fill + self.steady
    }
}

/// Result of simulating one layer (or one GEMM).
#[derive(Debug, Clone, PartialEq)]
pub struct LayerReport {
    /// Human-readable identifier.
    pub name: String,
    /// Total cycles, including dispatch and exposed memory time.
    pub cycles: u64,
    /// Cycles attributable to GEMM streaming (the compute component).
    pub compute_cycles: u64,
    /// Cycles of DRAM transfer *not* hidden under compute.
    pub exposed_memory_cycles: u64,
    /// FLOPs performed (2 × MACs).
    pub flops: u64,
    /// DRAM bytes moved (reads + writes).
    pub dram_bytes: u64,
    /// Peak on-chip workspace used for IFMap tiles, bytes (the Fig. 14a
    /// metric).
    pub workspace_bytes: u64,
    /// Vector-memory port activity over the layer.
    pub sram: PortStats,
    /// PE-array occupancy of the schedule: fraction of PE rows doing useful
    /// work, before pipeline effects.
    pub array_occupancy: f64,
    /// Span partition of `cycles` (see [`Phases`]).
    pub phases: Phases,
}

/// What limits a simulated layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bottleneck {
    /// GEMM streaming dominates and the array is well occupied.
    Compute,
    /// Exposed DRAM time dominates.
    Memory,
    /// The array streams but mostly empty rows/columns (small Ci/Co).
    Occupancy,
    /// Fixed dispatch overhead dominates (tiny layer).
    Overhead,
}

impl std::fmt::Display for Bottleneck {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Bottleneck::Compute => "compute",
            Bottleneck::Memory => "memory",
            Bottleneck::Occupancy => "occupancy",
            Bottleneck::Overhead => "overhead",
        })
    }
}

impl LayerReport {
    /// Enforce the cycle-conservation invariants: the phase spans partition
    /// `cycles` exactly, and compute + exposed memory account for every
    /// post-dispatch cycle. Panics with a diagnostic when violated. Called
    /// from `debug_assert!` at every construction site and from the
    /// always-on invariant tests.
    #[track_caller]
    pub fn assert_conserved(&self) -> bool {
        assert_eq!(
            self.phases.total(),
            self.cycles,
            "{}: phases {:?} sum to {} but cycles = {}",
            self.name,
            self.phases,
            self.phases.total(),
            self.cycles
        );
        assert_eq!(
            self.compute_cycles + self.exposed_memory_cycles,
            self.cycles - self.phases.dispatch,
            "{}: compute {} + exposed {} != cycles {} - dispatch {}",
            self.name,
            self.compute_cycles,
            self.exposed_memory_cycles,
            self.cycles,
            self.phases.dispatch
        );
        // Under every schedule (single- or double-buffered, sparse, or
        // explicit-im2col) the steady phase runs at least as long as the
        // compute it hides: overlap can only hide memory behind compute,
        // never shrink compute itself.
        assert!(
            self.phases.steady >= self.compute_cycles,
            "{}: steady {} < compute {}",
            self.name,
            self.phases.steady,
            self.compute_cycles
        );
        true
    }

    /// Classify what limits this layer (used by the reporting runners and
    /// the `simulate` CLI to explain numbers, not just print them).
    pub fn bottleneck(&self, config: &TpuConfig) -> Bottleneck {
        if config.dispatch_cycles * 2 > self.cycles {
            Bottleneck::Overhead
        } else if self.exposed_memory_cycles * 2 > self.cycles {
            Bottleneck::Memory
        } else if self.array_occupancy < 0.5 {
            Bottleneck::Occupancy
        } else {
            Bottleneck::Compute
        }
    }

    /// Achieved TFLOPS at `config`'s clock.
    pub fn tflops(&self, config: &TpuConfig) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.flops as f64 / config.cycles_to_seconds(self.cycles) / 1e12
    }

    /// Fraction of peak MAC throughput achieved.
    pub fn utilization(&self, config: &TpuConfig) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        (self.flops / 2) as f64 / (self.cycles as f64 * config.peak_macs_per_cycle() as f64)
    }

    /// Wall-clock seconds at `config`'s clock.
    pub fn seconds(&self, config: &TpuConfig) -> f64 {
        config.cycles_to_seconds(self.cycles)
    }
}

impl fmt::Display for LayerReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} cycles ({} compute, {} exposed mem), {:.2} GFLOP, {:.1} MB DRAM",
            self.name,
            self.cycles,
            self.compute_cycles,
            self.exposed_memory_cycles,
            self.flops as f64 / 1e9,
            self.dram_bytes as f64 / 1e6
        )
    }
}

/// Result of simulating a whole model.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelReport {
    /// Model name.
    pub name: String,
    /// Per-layer reports in execution order (repeated layers expanded into
    /// their cycle contribution via `weight`).
    pub layers: Vec<(LayerReport, usize)>,
}

impl ModelReport {
    /// Total cycles across all layer instances.
    pub fn total_cycles(&self) -> u64 {
        self.layers.iter().map(|(l, k)| l.cycles * *k as u64).sum()
    }

    /// Total FLOPs across all layer instances.
    pub fn total_flops(&self) -> u64 {
        self.layers.iter().map(|(l, k)| l.flops * *k as u64).sum()
    }

    /// Total DRAM traffic in bytes.
    pub fn total_dram_bytes(&self) -> u64 {
        self.layers
            .iter()
            .map(|(l, k)| l.dram_bytes * *k as u64)
            .sum()
    }

    /// Model-level achieved TFLOPS.
    pub fn tflops(&self, config: &TpuConfig) -> f64 {
        let s = config.cycles_to_seconds(self.total_cycles());
        if s == 0.0 {
            return 0.0;
        }
        self.total_flops() as f64 / s / 1e12
    }

    /// Wall-clock seconds.
    pub fn seconds(&self, config: &TpuConfig) -> f64 {
        config.cycles_to_seconds(self.total_cycles())
    }

    /// Cycle-weighted mean SRAM idle ratio (Fig. 16b metric).
    pub fn sram_idle_ratio(&self) -> f64 {
        let mut merged = PortStats::default();
        for (l, k) in &self.layers {
            let mut s = l.sram;
            s.cycles *= *k as u64;
            s.reads *= *k as u64;
            s.writes *= *k as u64;
            merged.merge(&s);
        }
        merged.idle_ratio()
    }
}

impl fmt::Display for ModelReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} layers, {} cycles, {:.2} GFLOP",
            self.name,
            self.layers.len(),
            self.total_cycles(),
            self.total_flops() as f64 / 1e9
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layer(cycles: u64, flops: u64) -> LayerReport {
        LayerReport {
            name: "l".into(),
            cycles,
            compute_cycles: cycles,
            exposed_memory_cycles: 0,
            flops,
            dram_bytes: 1000,
            workspace_bytes: 0,
            sram: PortStats {
                cycles,
                reads: cycles / 8,
                writes: cycles / 8,
            },
            array_occupancy: 1.0,
            phases: Phases {
                dispatch: 0,
                first_fill: 0,
                steady: cycles,
            },
        }
    }

    #[test]
    fn conservation_holds_for_helper_and_catches_violations() {
        let l = layer(100, 200);
        assert!(l.assert_conserved());
        let mut bad = layer(100, 200);
        bad.phases.steady += 1;
        assert!(std::panic::catch_unwind(move || bad.assert_conserved()).is_err());
        let mut bad2 = layer(100, 200);
        bad2.exposed_memory_cycles = 7; // compute already equals cycles
        assert!(std::panic::catch_unwind(move || bad2.assert_conserved()).is_err());
    }

    #[test]
    fn tflops_math() {
        let cfg = TpuConfig::tpu_v2();
        // 700M cycles = 1 s; 22.9 TFLOP in 1 s = peak.
        let l = layer(700_000_000, 22_937_600_000_000);
        assert!((l.tflops(&cfg) - cfg.peak_tflops()).abs() < 0.1);
        assert!((l.utilization(&cfg) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn model_totals_respect_weights() {
        let m = ModelReport {
            name: "m".into(),
            layers: vec![(layer(100, 200), 3), (layer(50, 80), 1)],
        };
        assert_eq!(m.total_cycles(), 350);
        assert_eq!(m.total_flops(), 680);
        assert_eq!(m.total_dram_bytes(), 4000);
    }

    #[test]
    fn idle_ratio_weighted() {
        let m = ModelReport {
            name: "m".into(),
            layers: vec![(layer(800, 0), 1)],
        };
        // reads+writes = 100+100 over 800 cycles -> 25% busy.
        assert!((m.sram_idle_ratio() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn zero_cycles_reports_zero() {
        let cfg = TpuConfig::tpu_v2();
        let l = layer(0, 0);
        assert_eq!(l.tflops(&cfg), 0.0);
        assert_eq!(l.utilization(&cfg), 0.0);
    }
}
