//! Training-pass timing: the weight- and input-gradient convolutions on the
//! same channel-first machine (see `iconv_core::backward` for the lowered
//! semantics). TPU-v2/v3 are training chips, so the training step is the
//! workload the hardware was actually sized for.

use crate::config::TpuConfig;
use crate::engine::{SimMode, Simulator};
use crate::report::{LayerReport, Phases};
use iconv_core::schedule::tpu_group_size;
use iconv_dram::DramModel;
use iconv_sram::PortStats;
use iconv_tensor::ConvShape;
use iconv_workloads::Model;

/// The three computations of one training step for one layer.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainingReport {
    /// Forward pass.
    pub forward: LayerReport,
    /// Weight gradient (`dW = Aᵀ·dY`, per tap).
    pub wgrad: LayerReport,
    /// Input gradient (`dX += dY·Bᵀ`, per tap), `None` for the first layer
    /// of a network (no upstream gradient needed).
    pub dgrad: Option<LayerReport>,
}

impl TrainingReport {
    /// Total cycles of the step.
    pub fn total_cycles(&self) -> u64 {
        self.forward.cycles + self.wgrad.cycles + self.dgrad.as_ref().map_or(0, |d| d.cycles)
    }

    /// Total FLOPs of the step (≈3× the forward pass when dgrad runs).
    pub fn total_flops(&self) -> u64 {
        self.forward.flops + self.wgrad.flops + self.dgrad.as_ref().map_or(0, |d| d.flops)
    }
}

impl Simulator {
    /// Gradient-pass helper: one pass structure shared by wgrad and dgrad —
    /// `hf` filter rows, K packed densely over `wf·k_per_tap` with
    /// duplication bounded by `min(rows/k_per_tap, wf)`, `out_cols` output
    /// columns, `m` streamed reduction rows.
    fn simulate_grad_pass(
        &self,
        name: &str,
        shape: &ConvShape,
        k_per_tap: usize,
        out_cols: usize,
        reads_bytes: u64,
        writes_bytes: u64,
    ) -> LayerReport {
        let cfg = self.config();
        let (rows, cols) = (cfg.array.rows, cfg.array.cols);
        let m = shape.lowered_rows();
        let dup = tpu_group_size(rows, k_per_tap, shape.wf);
        let cap = (dup * k_per_tap).min(rows).max(1);
        let passes = shape.hf as u64
            * ((shape.wf * k_per_tap).div_ceil(cap) as u64)
            * (out_cols.div_ceil(cols) as u64);
        let stream = passes.div_ceil(cfg.mxus as u64) * m as u64;
        let packing = cfg.vector_mem.word_elems.min(shape.n.max(1));
        let stall = (cfg.mxus as f64 / packing as f64).max(1.0);
        let compute_cycles =
            (stream as f64 * stall).ceil() as u64 + (rows + cols - 1) as u64 + rows as u64;

        let dram = DramModel::new(cfg.dram);
        let mem_cycles =
            dram.transfer_cycles(reads_bytes, 4096) + dram.transfer_cycles(writes_bytes, 4096);
        let chunks = cfg.min_pipeline_stages.max(1);
        // Same remainder-conserving pipeline identity as the forward engine
        // (`crate::engine`): distribute chunk remainders instead of
        // truncating them away, expose the first fill, and derive the
        // exposed memory time from the conserved partition.
        let first_fill = mem_cycles.div_ceil(chunks);
        let steady = crate::engine::chunked_steady(compute_cycles, mem_cycles, chunks);
        let cycles = cfg.dispatch_cycles + first_fill + steady;
        let rep = LayerReport {
            name: name.to_string(),
            cycles,
            compute_cycles,
            exposed_memory_cycles: (first_fill + steady).saturating_sub(compute_cycles),
            flops: shape.flops(),
            dram_bytes: reads_bytes + writes_bytes,
            workspace_bytes: 0,
            sram: PortStats {
                cycles: compute_cycles,
                reads: compute_cycles / packing as u64,
                writes: compute_cycles / packing as u64,
            },
            array_occupancy: ((shape.wf * k_per_tap) as f64
                / ((shape.wf * k_per_tap).div_ceil(cap) * rows) as f64)
                .min(1.0),
            phases: Phases {
                dispatch: cfg.dispatch_cycles,
                first_fill,
                steady,
            },
        };
        debug_assert!(rep.assert_conserved());
        rep
    }

    /// Simulate the weight-gradient convolution: per tap
    /// `dW_tap[Ci×Co] = A_tapᵀ[Ci×M] · dY[M×Co]` — same pass structure as
    /// the forward (the same A slices stream through the array), outputs
    /// accumulated across `M` instead of along it.
    pub fn simulate_wgrad(&self, name: &str, shape: &ConvShape) -> LayerReport {
        let eb = self.config().vector_mem.elem_bytes as u64;
        let reads = (shape.ifmap_elems() + shape.ofmap_elems()) as u64 * eb;
        let writes = shape.filter_elems() as u64 * eb;
        self.simulate_grad_pass(name, shape, shape.ci, shape.co, reads, writes)
    }

    /// Simulate the input-gradient convolution: per tap
    /// `dX_tap[M×Ci] = dY[M×Co] · B_tapᵀ[Co×Ci]` — reduction over `Co`,
    /// scattered back through the de-serializer to the tap's input
    /// positions (the forward address generation, reversed).
    pub fn simulate_dgrad(&self, name: &str, shape: &ConvShape) -> LayerReport {
        let eb = self.config().vector_mem.elem_bytes as u64;
        let reads = (shape.ofmap_elems() + shape.filter_elems()) as u64 * eb;
        let writes = shape.ifmap_elems() as u64 * eb;
        self.simulate_grad_pass(name, shape, shape.co, shape.ci, reads, writes)
    }

    /// One full training step for a layer (forward + wgrad + optional
    /// dgrad).
    /// # Examples
    ///
    /// ```
    /// # use iconv_tpusim::{Simulator, TpuConfig};
    /// # use iconv_tensor::ConvShape;
    /// # fn main() -> Result<(), iconv_tensor::ShapeError> {
    /// let sim = Simulator::new(TpuConfig::tpu_v2());
    /// let layer = ConvShape::square(8, 128, 28, 128, 3, 1, 1)?;
    /// let step = sim.simulate_training_step("res4", &layer, true);
    /// assert_eq!(step.total_flops(), 3 * step.forward.flops);
    /// # Ok(()) }
    /// ```
    pub fn simulate_training_step(
        &self,
        name: &str,
        shape: &ConvShape,
        needs_dgrad: bool,
    ) -> TrainingReport {
        TrainingReport {
            forward: self.simulate_conv(name, shape, SimMode::ChannelFirst),
            wgrad: self.simulate_wgrad(name, shape),
            dgrad: needs_dgrad.then(|| self.simulate_dgrad(name, shape)),
        }
    }

    /// Training-step cycles for a whole model (dgrad skipped on the first
    /// layer).
    pub fn simulate_model_training(&self, model: &Model) -> Vec<(TrainingReport, usize)> {
        model
            .layers
            .iter()
            .enumerate()
            .map(|(i, l)| {
                (
                    self.simulate_training_step(&l.name, &l.shape, i > 0),
                    l.count,
                )
            })
            .collect()
    }
}

/// Peak TFLOPS helper for training reports.
pub fn training_tflops(cfg: &TpuConfig, reports: &[(TrainingReport, usize)]) -> f64 {
    let cycles: u64 = reports
        .iter()
        .map(|(r, k)| r.total_cycles() * *k as u64)
        .sum();
    let flops: u64 = reports
        .iter()
        .map(|(r, k)| r.total_flops() * *k as u64)
        .sum();
    if cycles == 0 {
        return 0.0;
    }
    flops as f64 / cfg.cycles_to_seconds(cycles) / 1e12
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TpuConfig;

    fn sim() -> Simulator {
        Simulator::new(TpuConfig::tpu_v2())
    }

    fn layer() -> ConvShape {
        ConvShape::square(8, 128, 28, 128, 3, 1, 1).unwrap()
    }

    #[test]
    fn gradient_passes_cost_about_a_forward_each() {
        // Same MACs, same machine: each gradient pass lands within ~2x of
        // the forward for square layers.
        let s = sim();
        let fwd = s.simulate_conv("l", &layer(), SimMode::ChannelFirst).cycles;
        let wg = s.simulate_wgrad("l", &layer()).cycles;
        let dg = s.simulate_dgrad("l", &layer()).cycles;
        for (name, c) in [("wgrad", wg), ("dgrad", dg)] {
            let ratio = c as f64 / fwd as f64;
            assert!((0.5..2.0).contains(&ratio), "{name} ratio {ratio}");
        }
    }

    #[test]
    fn training_step_is_about_3x_inference() {
        let s = sim();
        let step = s.simulate_training_step("l", &layer(), true);
        let ratio = step.total_cycles() as f64 / step.forward.cycles as f64;
        assert!((2.2..4.0).contains(&ratio), "training/forward = {ratio}");
        assert_eq!(step.total_flops(), 3 * step.forward.flops);
    }

    #[test]
    fn first_layer_skips_dgrad() {
        let s = sim();
        let step = s.simulate_training_step("conv1", &layer(), false);
        assert!(step.dgrad.is_none());
        assert_eq!(step.total_flops(), 2 * step.forward.flops);
    }

    #[test]
    fn tpu_v3_trains_faster_than_v2() {
        let model = iconv_workloads::resnet50(8);
        let v2 = Simulator::new(TpuConfig::tpu_v2());
        let v3 = Simulator::new(TpuConfig::tpu_v3());
        let t2: u64 = v2
            .simulate_model_training(&model)
            .iter()
            .map(|(r, k)| r.total_cycles() * *k as u64)
            .sum();
        let t3: u64 = v3
            .simulate_model_training(&model)
            .iter()
            .map(|(r, k)| r.total_cycles() * *k as u64)
            .sum();
        // v3 wins in wall-clock (cycles x clock): compare seconds.
        let s2 = v2.config().cycles_to_seconds(t2);
        let s3 = v3.config().cycles_to_seconds(t3);
        assert!(s3 < s2 * 0.75, "v3 {s3:.4}s vs v2 {s2:.4}s");
    }

    #[test]
    fn gradient_reports_stay_conserved() {
        let s = sim();
        let step = s.simulate_training_step("l", &layer(), true);
        assert!(step.forward.assert_conserved());
        assert!(step.wgrad.assert_conserved());
        assert!(step.dgrad.unwrap().assert_conserved());
    }

    #[test]
    fn asymmetric_layer_gradients_differ_sensibly() {
        // Co >> Ci: dgrad's reduction (over Co) is deeper than wgrad's
        // K-side, so their pass counts differ.
        let s = sim();
        let shape = ConvShape::square(8, 32, 28, 512, 3, 1, 1).unwrap();
        let wg = s.simulate_wgrad("l", &shape);
        let dg = s.simulate_dgrad("l", &shape);
        assert_ne!(wg.cycles, dg.cycles);
        assert!(wg.flops == dg.flops);
    }
}
