//! Property tests for the tuner and its persistent cache.
//!
//! * **Determinism** — one `TuneKey` has one answer: for any shape and
//!   target, every `(jobs, batch_chunk)` measurement mechanics returns a
//!   `TuneEstimate` whose rendered `tune_body` is byte-identical to the
//!   sequential reference. This is the invariant that lets a tune be
//!   cached, single-flighted, and fleet-routed like any other estimate.
//! * **Persistence** — `to_json`/`from_json` is the identity, and corrupt
//!   input (truncations, byte flips) is rejected with an error, never a
//!   panic.
//!
//! Runs under the offline `proptest` shim: deterministic seed, no
//! shrinking — a failing case prints its inputs via the assertion message.

use proptest::prelude::*;

use iconv_api::proto::tune_body;
use iconv_api::{TpuChip, TuneTarget};
use iconv_tensor::ConvShape;
use iconv_tune::{tune, tune_key, InProcessSource, TuneCache, TuneOptions};

/// Small-but-varied valid conv shapes (the tuner measures dozens of
/// candidates per case, so keep each simulation cheap).
fn shape_strategy() -> impl proptest::strategy::Strategy<Value = ConvShape> {
    (
        (1usize..=4, 1usize..=64, 4usize..=20),
        (1usize..=64, 1usize..=5),
        (1usize..=2, 0usize..=2),
    )
        .prop_filter_map("buildable shape", |((n, ci, hw_dim), (co, f), (s, p))| {
            ConvShape::new(n, ci, hw_dim, hw_dim, co, f, f)
                .stride(s)
                .pad(p)
                .build()
                .ok()
        })
}

fn target_strategy() -> impl proptest::strategy::Strategy<Value = TuneTarget> {
    prop::sample::select(vec![
        TuneTarget::Tpu { chip: TpuChip::V2 },
        TuneTarget::Tpu { chip: TpuChip::V3 },
        TuneTarget::Gpu,
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Same key, same answer: the worker count and the measurement
    /// chunking never change a tune result, byte for byte.
    #[test]
    fn tune_is_deterministic_across_jobs_and_chunking(
        shape in shape_strategy(),
        target in target_strategy(),
        jobs in 1usize..6,
        batch_chunk in 1usize..12,
    ) {
        let src = InProcessSource::new();
        let reference = tune(&src, &shape, target, &TuneOptions { jobs: 1, batch_chunk: 1 });
        let got = tune(&src, &shape, target, &TuneOptions { jobs, batch_chunk });
        prop_assert_eq!(got, reference);
        prop_assert_eq!(tune_body(&got), tune_body(&reference));
        prop_assert!(got.tuned_cycles <= got.default_cycles);
    }

    /// The JSON rendering round-trips exactly, and its rendering is a
    /// fixed point (so save/load/save is stable on disk).
    #[test]
    fn cache_json_round_trip_is_identity(
        a in shape_strategy(),
        b in shape_strategy(),
        target in target_strategy(),
    ) {
        let src = InProcessSource::new();
        let mut cache = TuneCache::new();
        for shape in [&a, &b] {
            let est = tune(&src, shape, target, &TuneOptions::default());
            cache.insert(tune_key(shape, target), est);
        }
        let text = cache.to_json();
        let back = TuneCache::from_json(&text);
        prop_assert!(back.is_ok(), "{:?}", back.err());
        let back = back.unwrap();
        prop_assert_eq!(&back, &cache);
        prop_assert_eq!(back.to_json(), text);
    }

    /// Corrupting a valid document never panics the parser: truncations
    /// are always rejected, byte flips either reparse or error.
    #[test]
    fn corrupted_cache_files_are_rejected_without_panic(
        shape in shape_strategy(),
        target in target_strategy(),
        cut_frac in 0.01f64..0.99,
        flip_frac in 0.0f64..1.0,
        flip_byte in 0u8..=255,
    ) {
        let src = InProcessSource::new();
        let mut cache = TuneCache::new();
        cache.insert(tune_key(&shape, target), tune(&src, &shape, target, &TuneOptions::default()));
        let text = cache.to_json();

        // Truncation strictly inside the document can never be valid.
        let cut = ((text.len() as f64 * cut_frac) as usize).clamp(1, text.len() - 1);
        let truncated = &text[..cut];
        if truncated.is_empty() || std::str::from_utf8(truncated.as_bytes()).is_ok() {
            prop_assert!(TuneCache::from_json(truncated).is_err(), "cut {}", cut);
        }

        // A flipped byte must be handled — Ok only if it still denotes a
        // well-formed cache, and in no case a panic.
        let mut bytes = text.clone().into_bytes();
        let at = ((bytes.len() as f64 * flip_frac) as usize).min(bytes.len() - 1);
        bytes[at] = flip_byte;
        if let Ok(mutated) = String::from_utf8(bytes) {
            let _ = TuneCache::from_json(&mutated);
        }
    }
}
