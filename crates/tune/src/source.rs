//! Where cycle estimates come from.
//!
//! [`CycleSource`] started life in `iconv-bench`'s summary module; it moved
//! here so the tuner, the bench runners, and the serve engine all measure
//! through one trait. The bench crate re-exports these names, so historical
//! `iconv_bench::summary::CycleSource` paths still resolve.

use iconv_api::{resolve_gpu, resolve_tpu, GpuHwSpec, TpuHwSpec, Work};
use iconv_gpusim::{GpuAlgo, GpuConfig, GpuSim};
use iconv_tensor::ConvShape;
use iconv_tpusim::{SimMode, Simulator, TpuConfig};

use crate::search::{tune, TuneOptions};

/// A cycle total in the currency of whichever engine produced it: TPU
/// estimates are exact integers, GPU estimates are analytic `f64`s whose
/// bit pattern must survive any transport.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CycleCount {
    /// Cycle-exact TPU total.
    Tpu(u64),
    /// Analytic GPU total (`KernelTiming::cycles`, bit-exact).
    Gpu(f64),
    /// Best-config total from a design-space search (`Work::Tune`). TPU
    /// winners cross as exact integral `f64`s; GPU winners are bit-exact.
    Tuned(f64),
}

impl CycleCount {
    /// The TPU total.
    ///
    /// # Panics
    ///
    /// Panics when the estimate came from another engine — the figure
    /// reductions know statically which engine each work targets, so a
    /// mismatch is a bug, not a recoverable condition.
    pub fn tpu(self) -> u64 {
        match self {
            CycleCount::Tpu(c) => c,
            CycleCount::Gpu(c) => panic!("expected a TPU cycle count, got GPU {c}"),
            CycleCount::Tuned(c) => panic!("expected a TPU cycle count, got tuned {c}"),
        }
    }

    /// The GPU total.
    ///
    /// # Panics
    ///
    /// Panics when the estimate came from another engine.
    pub fn gpu(self) -> f64 {
        match self {
            CycleCount::Gpu(c) => c,
            CycleCount::Tpu(c) => panic!("expected a GPU cycle count, got TPU {c}"),
            CycleCount::Tuned(c) => panic!("expected a GPU cycle count, got tuned {c}"),
        }
    }

    /// The tuned total.
    ///
    /// # Panics
    ///
    /// Panics when the estimate did not come from a `Work::Tune` search.
    pub fn tuned(self) -> f64 {
        match self {
            CycleCount::Tuned(c) => c,
            CycleCount::Tpu(c) => panic!("expected a tuned cycle count, got TPU {c}"),
            CycleCount::Gpu(c) => panic!("expected a tuned cycle count, got GPU {c}"),
        }
    }

    /// The total as an `f64` in the measuring engine's own currency — the
    /// comparison currency the tuner ranks candidates in (TPU integers
    /// below 2^53 convert exactly).
    pub fn as_f64(self) -> f64 {
        match self {
            CycleCount::Tpu(c) => c as f64,
            CycleCount::Gpu(c) | CycleCount::Tuned(c) => c,
        }
    }
}

/// Where layer estimates come from: the in-process simulators, or a remote
/// `iconv-serve` instance (`expall --via-serve`).
///
/// Implementations must be *bit*-deterministic: the same query returns the
/// same value every time, so the summary JSON is byte-identical whichever
/// source backs it. GPU estimates carry the raw `f64` total cycles
/// (`KernelTiming::cycles`) because downstream arithmetic must replay the
/// in-process operation sequence exactly.
///
/// The vocabulary is [`iconv_api::Work`]: one `estimate` call per unit, or
/// a whole table at once via [`estimate_many`](CycleSource::estimate_many)
/// — which a networked source can override to pipeline a single batched
/// request instead of `works.len()` round trips.
pub trait CycleSource: Sync {
    /// Estimate one unit of work.
    fn estimate(&self, work: &Work) -> CycleCount;

    /// Estimate a whole table, preserving input order. The default fans
    /// the per-item [`estimate`](CycleSource::estimate) over `jobs`
    /// workers; any override must return exactly the same values in the
    /// same order (pinned by the `estimate_many` contract test).
    fn estimate_many(&self, jobs: usize, works: &[Work]) -> Vec<CycleCount> {
        iconv_par::par_map_jobs(jobs, works, |w| self.estimate(w))
    }

    /// Total cycles of a TPU convolution under `mode` (default hardware).
    fn tpu_conv_cycles(&self, shape: &ConvShape, mode: SimMode) -> u64 {
        self.estimate(&Work::TpuConv {
            shape: *shape,
            mode,
            hw: TpuHwSpec::default(),
        })
        .tpu()
    }

    /// Total cycles of a TPU GEMM (default hardware).
    fn tpu_gemm_cycles(&self, m: usize, n: usize, k: usize) -> u64 {
        self.estimate(&Work::TpuGemm {
            m,
            n,
            k,
            hw: TpuHwSpec::default(),
        })
        .tpu()
    }

    /// Total cycles of a GPU convolution under `algo` (bit-exact `f64`,
    /// default hardware).
    fn gpu_conv_cycles(&self, shape: &ConvShape, algo: GpuAlgo) -> f64 {
        self.estimate(&Work::GpuConv {
            shape: *shape,
            algo,
            hw: GpuHwSpec::default(),
        })
        .gpu()
    }

    /// Total cycles of a TPU convolution pass under `mode` (default
    /// hardware). `ConvPass::Forward` is exactly
    /// [`tpu_conv_cycles`](CycleSource::tpu_conv_cycles).
    fn tpu_pass_cycles(&self, shape: &ConvShape, pass: iconv_core::ConvPass, mode: SimMode) -> u64 {
        self.estimate(&Work::TpuPass {
            shape: *shape,
            pass,
            mode,
            hw: TpuHwSpec::default(),
        })
        .tpu()
    }

    /// Total cycles of a GPU convolution pass under `algo` (bit-exact
    /// `f64`, default hardware).
    fn gpu_pass_cycles(&self, shape: &ConvShape, pass: iconv_core::ConvPass, algo: GpuAlgo) -> f64 {
        self.estimate(&Work::GpuPass {
            shape: *shape,
            pass,
            algo,
            hw: GpuHwSpec::default(),
        })
        .gpu()
    }
}

/// The in-process source: calls the simulators directly.
pub struct InProcessSource {
    sim: Simulator,
    gpu: GpuSim,
}

impl InProcessSource {
    /// Source over the paper's default TPU-v2 / V100 configurations.
    pub fn new() -> Self {
        Self {
            sim: Simulator::new(TpuConfig::tpu_v2()),
            gpu: GpuSim::new(GpuConfig::v100()),
        }
    }
}

impl Default for InProcessSource {
    fn default() -> Self {
        Self::new()
    }
}

impl CycleSource for InProcessSource {
    fn estimate(&self, work: &Work) -> CycleCount {
        match work {
            Work::TpuConv { shape, mode, hw } => {
                let cycles = if *hw == TpuHwSpec::default() {
                    self.sim.simulate_conv("summary", shape, *mode).cycles
                } else {
                    Simulator::new(resolve_tpu(hw))
                        .simulate_conv("summary", shape, *mode)
                        .cycles
                };
                CycleCount::Tpu(cycles)
            }
            Work::TpuGemm { m, n, k, hw } => {
                let cycles = if *hw == TpuHwSpec::default() {
                    self.sim.simulate_gemm("summary", *m, *n, *k).cycles
                } else {
                    Simulator::new(resolve_tpu(hw))
                        .simulate_gemm("summary", *m, *n, *k)
                        .cycles
                };
                CycleCount::Tpu(cycles)
            }
            Work::TpuPass {
                shape,
                pass,
                mode,
                hw,
            } => {
                let cycles = if *hw == TpuHwSpec::default() {
                    self.sim
                        .simulate_pass("summary", shape, *pass, *mode)
                        .cycles
                } else {
                    Simulator::new(resolve_tpu(hw))
                        .simulate_pass("summary", shape, *pass, *mode)
                        .cycles
                };
                CycleCount::Tpu(cycles)
            }
            Work::GpuConv { shape, algo, hw } => {
                let cycles = if *hw == GpuHwSpec::default() {
                    self.gpu
                        .simulate_conv("summary", shape, *algo)
                        .timing
                        .cycles
                } else {
                    GpuSim::new(resolve_gpu(hw))
                        .simulate_conv("summary", shape, *algo)
                        .timing
                        .cycles
                };
                CycleCount::Gpu(cycles)
            }
            Work::GpuPass {
                shape,
                pass,
                algo,
                hw,
            } => {
                let cycles = if *hw == GpuHwSpec::default() {
                    self.gpu
                        .simulate_pass("summary", shape, *pass, *algo)
                        .timing
                        .cycles
                } else {
                    GpuSim::new(resolve_gpu(hw))
                        .simulate_pass("summary", shape, *pass, *algo)
                        .timing
                        .cycles
                };
                CycleCount::Gpu(cycles)
            }
            Work::Tune { shape, target } => {
                // A tune is itself work: run the search against this same
                // source (candidates are concrete works, so no recursion).
                let est = tune(self, shape, *target, &TuneOptions::default());
                CycleCount::Tuned(est.tuned_cycles)
            }
        }
    }
}
