//! `iconv-tune` — design-space autotuning as a first-class operation.
//!
//! The paper's Table II fixes one configuration per target; this crate
//! asks, per layer, whether any nearby design-space point beats it. A
//! [`search::tune`] enumerates a fixed candidate grid (TPU: lowering mode
//! x array size x ifmap layout x pipeline schedule; GPU: kernel algorithm
//! x block tile x residency x schedule), prunes infeasible and
//! key-aliasing points, measures the rest through a [`CycleSource`], and
//! returns the strict-minimum winner with the Table-II default as the
//! reported baseline — candidate 0 *is* the default, so tuned cycles never
//! exceed default cycles.
//!
//! Everything is deterministic: same `(shape, target)` in, byte-identical
//! [`iconv_api::proto::TuneEstimate`] out, for every worker count and
//! measurement chunking (proptest-pinned). That is what lets a tune ride
//! the serve stack as ordinary cached work — `Work::Tune` has a canonical
//! key like any estimate, so the striped cache, single-flight, the batch
//! op, and the `routed` hash ring all apply unchanged.
//!
//! [`TuneCache`] is the durable layer: a canonical-key -> best-config map
//! with a lossless JSON round trip (cycles as IEEE-754 bit strings), used
//! by `served --tune-cache` for warm boots and by `tunebench` for
//! `BENCH_tune.json`.
//!
//! [`CycleSource`] (and [`InProcessSource`]) moved here from
//! `iconv-bench`'s summary module so the tuner, the bench runners, and the
//! serve engine measure through one trait; `iconv-bench` re-exports them
//! under the historical paths.

#![warn(missing_docs)]

pub mod search;
pub mod source;
pub mod store;

pub use iconv_api::proto::TuneEstimate;
pub use iconv_api::{TuneTarget, TunedConfig};
pub use search::{candidates, default_config, tune, tune_key, tune_work, TuneOptions, ALL_TARGETS};
pub use source::{CycleCount, CycleSource, InProcessSource};
pub use store::TuneCache;
