//! The persistent best-config cache.
//!
//! A [`TuneCache`] maps canonical tune keys (`tune;<target>;<shape>`) to
//! their [`TuneEstimate`]s. The JSON rendering is the durable interchange
//! format: `served --tune-cache` loads one at boot (seeding both its tune
//! store and the striped response cache) and saves it back on graceful
//! shutdown, and `tunebench` writes the same shape into `BENCH_tune.json`
//! sections. Cycle totals persist as IEEE-754 bit strings so a reloaded
//! cache replays byte-identical response bodies.

use std::collections::BTreeMap;
use std::path::Path;

use iconv_api::json::{self, Json};
use iconv_api::proto::{
    f64_bits, f64_from_bits, parse_tuned_config, tuned_config_json, TuneEstimate,
};

/// On-disk format version; bump on any incompatible change.
const VERSION: u64 = 1;

/// A key -> best-config map with a lossless JSON round trip.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TuneCache {
    entries: BTreeMap<String, TuneEstimate>,
}

impl TuneCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The entry for `key`, if present.
    pub fn get(&self, key: &str) -> Option<&TuneEstimate> {
        self.entries.get(key)
    }

    /// Insert (or replace) the entry for `key`.
    pub fn insert(&mut self, key: String, est: TuneEstimate) {
        self.entries.insert(key, est);
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate entries in key order (the serialization order).
    pub fn iter(&self) -> impl Iterator<Item = (&str, &TuneEstimate)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Render the cache as JSON (one entry per line, key order — diffs
    /// stay reviewable and the rendering is deterministic).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64 + 160 * self.entries.len());
        out.push_str(&format!("{{\"version\":{VERSION},\"entries\":[\n"));
        for (i, (key, est)) in self.entries.iter().enumerate() {
            out.push_str("{\"key\":");
            json::write_str(&mut out, key);
            out.push_str(&format!(
                ",\"best\":{},\"tuned_bits\":\"{}\",\"default_bits\":\"{}\",\
                 \"candidates\":{},\"pruned\":{}}}{}\n",
                tuned_config_json(&est.best),
                f64_bits(est.tuned_cycles),
                f64_bits(est.default_cycles),
                est.candidates,
                est.pruned,
                if i + 1 < self.entries.len() { "," } else { "" }
            ));
        }
        out.push_str("]}\n");
        out
    }

    /// Parse a cache back from [`TuneCache::to_json`] output.
    ///
    /// # Errors
    ///
    /// Returns a description of the first problem found — syntax errors,
    /// wrong version, or malformed entries. Corrupt input never panics.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let doc = json::parse(text).map_err(|e| format!("tune cache: {e}"))?;
        let obj = doc.as_obj().ok_or("tune cache: root must be an object")?;
        match obj.get("version").and_then(Json::as_u64) {
            Some(VERSION) => {}
            Some(v) => return Err(format!("tune cache: unsupported version {v}")),
            None => return Err("tune cache: missing version".to_owned()),
        }
        let entries = obj
            .get("entries")
            .and_then(Json::as_arr)
            .ok_or("tune cache: \"entries\" must be an array")?;
        let mut cache = Self::new();
        for (i, entry) in entries.iter().enumerate() {
            let ctx = |what: &str| format!("tune cache entry {i}: {what}");
            let e = entry.as_obj().ok_or_else(|| ctx("must be an object"))?;
            let key = e
                .get("key")
                .and_then(Json::as_str)
                .ok_or_else(|| ctx("missing key"))?;
            let best = e.get("best").ok_or_else(|| ctx("missing best"))?;
            let best = parse_tuned_config(best).map_err(|err| ctx(&err.to_string()))?;
            let bits = |field: &str| {
                e.get(field)
                    .and_then(Json::as_str)
                    .and_then(f64_from_bits)
                    .ok_or_else(|| ctx(&format!("bad {field}")))
            };
            let est = TuneEstimate {
                best,
                tuned_cycles: bits("tuned_bits")?,
                default_cycles: bits("default_bits")?,
                candidates: e
                    .get("candidates")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| ctx("bad candidates"))?,
                pruned: e
                    .get("pruned")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| ctx("bad pruned"))?,
            };
            if cache.entries.insert(key.to_owned(), est).is_some() {
                return Err(ctx(&format!("duplicate key {key:?}")));
            }
        }
        Ok(cache)
    }

    /// Load from a file. A missing file is an empty cache (first boot);
    /// an unreadable or corrupt file is an error.
    ///
    /// # Errors
    ///
    /// See [`TuneCache::from_json`]; I/O failures other than not-found are
    /// reported with the path.
    pub fn load(path: &Path) -> Result<Self, String> {
        match std::fs::read_to_string(path) {
            Ok(text) => Self::from_json(&text),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Self::new()),
            Err(e) => Err(format!("tune cache {}: {e}", path.display())),
        }
    }

    /// Save to a file (write-then-rename so a crash never truncates an
    /// existing cache).
    ///
    /// # Errors
    ///
    /// Any I/O failure, with the path.
    pub fn save(&self, path: &Path) -> Result<(), String> {
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, self.to_json())
            .and_then(|()| std::fs::rename(&tmp, path))
            .map_err(|e| format!("tune cache {}: {e}", path.display()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::{tune, tune_key, TuneOptions, ALL_TARGETS};
    use crate::source::InProcessSource;
    use iconv_tensor::ConvShape;

    fn sample() -> TuneCache {
        let src = InProcessSource::new();
        let shape = ConvShape::square(4, 32, 28, 64, 3, 1, 1).unwrap();
        let mut cache = TuneCache::new();
        for target in ALL_TARGETS {
            let est = tune(&src, &shape, target, &TuneOptions::default());
            cache.insert(tune_key(&shape, target), est);
        }
        cache
    }

    #[test]
    fn json_round_trip_is_identity() {
        let cache = sample();
        let text = cache.to_json();
        let back = TuneCache::from_json(&text).unwrap();
        assert_eq!(back, cache);
        // And the rendering itself is a fixed point.
        assert_eq!(back.to_json(), text);
    }

    #[test]
    fn corrupt_input_is_an_error_not_a_panic() {
        for bad in [
            "",
            "not json",
            "{}",
            "{\"version\":99,\"entries\":[]}",
            "{\"version\":1}",
            "{\"version\":1,\"entries\":[{\"key\":\"k\"}]}",
            "{\"version\":1,\"entries\":[{\"key\":\"k\",\"best\":{\"target\":\"tpu\",\
             \"mode\":\"cf\"},\"tuned_bits\":\"xyz\",\"default_bits\":\"xyz\",\
             \"candidates\":1,\"pruned\":0}]}",
        ] {
            assert!(TuneCache::from_json(bad).is_err(), "accepted {bad:?}");
        }
        // Truncations of a valid document must also fail cleanly.
        let text = sample().to_json();
        for cut in [1, text.len() / 2, text.len() - 2] {
            assert!(TuneCache::from_json(&text[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn load_save_round_trips_and_missing_file_is_empty() {
        let dir = std::env::temp_dir().join(format!("iconv-tune-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.json");
        let cache = sample();
        cache.save(&path).unwrap();
        assert_eq!(TuneCache::load(&path).unwrap(), cache);
        let missing = dir.join("nope.json");
        assert!(TuneCache::load(&missing).unwrap().is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }
}
