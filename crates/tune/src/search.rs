//! The design-space search itself.
//!
//! A tune is a deterministic function of (shape, target): enumerate a
//! fixed candidate grid with the Table-II default configuration first,
//! prune candidates that fail hardware validation or alias an already-kept
//! canonical key, measure the survivors through a [`CycleSource`], and keep
//! the strict minimum with first-in-order tie-breaking. Because candidate 0
//! *is* the default, the winner's cycles are `<=` the default's by
//! construction — the CI gate checks the inequality end to end anyway.

use std::collections::BTreeSet;

use iconv_api::proto::TuneEstimate;
use iconv_api::{canonical_key, GpuHwSpec, TpuChip, TpuHwSpec, TuneTarget, TunedConfig, Work};
use iconv_core::PipelineSchedule;
use iconv_gpusim::GpuAlgo;
use iconv_tensor::{ConvShape, Layout};
use iconv_tpusim::SimMode;

use crate::source::{CycleCount, CycleSource};

/// Measurement mechanics for a search. Neither knob may change the result:
/// `estimate_many` preserves order for every worker count, and chunking
/// only partitions the candidate table — the determinism proptests pin
/// both invariances byte-for-byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TuneOptions {
    /// Worker count handed to [`CycleSource::estimate_many`].
    pub jobs: usize,
    /// Candidates measured per `estimate_many` call (a networked source
    /// turns each chunk into one batched request). Clamped to >= 1.
    pub batch_chunk: usize,
}

impl Default for TuneOptions {
    fn default() -> Self {
        Self {
            jobs: 1,
            batch_chunk: 8,
        }
    }
}

/// The Table-II default configuration for a target — always candidate 0,
/// and the baseline the tuned result is reported against.
pub fn default_config(target: TuneTarget) -> TunedConfig {
    match target {
        TuneTarget::Tpu { chip } => TunedConfig::Tpu {
            mode: SimMode::ChannelFirst,
            hw: TpuHwSpec {
                chip,
                ..TpuHwSpec::default()
            },
        },
        TuneTarget::Gpu => TunedConfig::Gpu {
            algo: GpuAlgo::ChannelFirst { reuse: true },
            hw: GpuHwSpec::default(),
        },
    }
}

/// The full candidate grid for a target, default first, fixed order.
/// Includes points that hardware validation rejects (counted as pruned) —
/// the grid is the *asked* space, not the feasible one.
pub fn candidates(target: TuneTarget) -> Vec<TunedConfig> {
    let mut out = vec![default_config(target)];
    match target {
        TuneTarget::Tpu { chip } => {
            // mode x array x layout x schedule, nested in that order. The
            // grouped modes intentionally overlap ChannelFirst's automatic
            // group on many shapes — canonical-key dedup prunes the alias.
            const MODES: [SimMode; 6] = [
                SimMode::ChannelFirst,
                SimMode::ChannelFirstGrouped(1),
                SimMode::ChannelFirstGrouped(2),
                SimMode::ChannelFirstGrouped(4),
                SimMode::Explicit,
                SimMode::Indirect,
            ];
            const ARRAYS: [Option<usize>; 3] = [None, Some(64), Some(256)];
            const LAYOUTS: [Option<Layout>; 2] = [None, Some(Layout::Nhwc)];
            const SCHEDULES: [Option<PipelineSchedule>; 2] =
                [None, Some(PipelineSchedule::DoubleBuffered)];
            for mode in MODES {
                for array in ARRAYS {
                    for layout in LAYOUTS {
                        for schedule in SCHEDULES {
                            out.push(TunedConfig::Tpu {
                                mode,
                                hw: TpuHwSpec {
                                    chip,
                                    array,
                                    word_elems: None,
                                    mxus: None,
                                    layout,
                                    schedule,
                                },
                            });
                        }
                    }
                }
            }
        }
        TuneTarget::Gpu => {
            // algo x (block tile, residency, schedule) alternates. The
            // GemmEquivalent reference bars are deliberately absent: they
            // are not a convolution, so they may not win a conv tune. The
            // bare 128x128x64 tile overflows shared memory at the default
            // residency — it stays in the grid as a validation-prune probe.
            const ALGOS: [GpuAlgo; 5] = [
                GpuAlgo::ChannelFirst { reuse: true },
                GpuAlgo::ChannelFirst { reuse: false },
                GpuAlgo::CudnnImplicit,
                GpuAlgo::ExplicitIm2col,
                GpuAlgo::Indirect,
            ];
            let base = GpuHwSpec::default();
            let hws = [
                base,
                GpuHwSpec {
                    block: Some((64, 64, 32)),
                    ..base
                },
                GpuHwSpec {
                    block: Some((128, 128, 64)),
                    blocks_per_sm: Some(1),
                    ..base
                },
                GpuHwSpec {
                    block: Some((128, 128, 64)),
                    ..base
                },
                GpuHwSpec {
                    schedule: Some(PipelineSchedule::SingleBuffered),
                    ..base
                },
            ];
            for algo in ALGOS {
                for hw in hws {
                    out.push(TunedConfig::Gpu { algo, hw });
                }
            }
        }
    }
    out
}

/// Whether a candidate's hardware resolves to a valid configuration.
fn is_valid(cfg: &TunedConfig) -> bool {
    match cfg {
        TunedConfig::Tpu { hw, .. } => hw.resolve().is_ok(),
        TunedConfig::Gpu { hw, .. } => hw.resolve().is_ok(),
    }
}

/// Run the design-space search for one layer.
///
/// Deterministic in every argument: the candidate order is fixed, pruning
/// is value-based, measurement order is preserved by the
/// [`CycleSource::estimate_many`] contract for any `opts.jobs`, and
/// chunking by `opts.batch_chunk` only partitions the table. Two calls
/// with the same `(shape, target)` return identical [`TuneEstimate`]s on
/// any bit-deterministic source.
pub fn tune(
    src: &dyn CycleSource,
    shape: &ConvShape,
    target: TuneTarget,
    opts: &TuneOptions,
) -> TuneEstimate {
    let grid = candidates(target);
    let mut kept: Vec<(TunedConfig, Work)> = Vec::with_capacity(grid.len());
    let mut seen = BTreeSet::new();
    let mut pruned = 0u64;
    for cfg in grid {
        if !is_valid(&cfg) {
            pruned += 1;
            continue;
        }
        let work = cfg.to_work(*shape);
        // Candidates that denote the same simulation collapse to the same
        // canonical key; measuring one of them is measuring all of them.
        if seen.insert(canonical_key(&work)) {
            kept.push((cfg, work));
        } else {
            pruned += 1;
        }
    }

    let works: Vec<Work> = kept.iter().map(|(_, w)| *w).collect();
    let chunk = opts.batch_chunk.max(1);
    let mut cycles: Vec<f64> = Vec::with_capacity(works.len());
    for part in works.chunks(chunk) {
        cycles.extend(
            src.estimate_many(opts.jobs, part)
                .into_iter()
                .map(CycleCount::as_f64),
        );
    }

    // Strict minimum, first-in-order tie-break; index 0 is the default.
    let mut best = 0usize;
    for (i, &c) in cycles.iter().enumerate() {
        if c < cycles[best] {
            best = i;
        }
    }
    TuneEstimate {
        best: kept[best].0,
        tuned_cycles: cycles[best],
        default_cycles: cycles[0],
        candidates: works.len() as u64,
        pruned,
    }
}

/// The work value whose canonical key names this search in every cache:
/// the striped serve cache, the router's hash ring, and the on-disk
/// tune store all key the same bytes.
pub fn tune_work(shape: ConvShape, target: TuneTarget) -> Work {
    Work::Tune { shape, target }
}

/// Convenience: the canonical tune-cache key for `(shape, target)`.
pub fn tune_key(shape: &ConvShape, target: TuneTarget) -> String {
    canonical_key(&tune_work(*shape, target))
}

/// All tune targets, in reporting order.
pub const ALL_TARGETS: [TuneTarget; 3] = [
    TuneTarget::Tpu { chip: TpuChip::V2 },
    TuneTarget::Tpu { chip: TpuChip::V3 },
    TuneTarget::Gpu,
];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::InProcessSource;

    fn shape() -> ConvShape {
        ConvShape::square(8, 64, 56, 64, 3, 1, 1).unwrap()
    }

    #[test]
    fn candidate_zero_is_the_default_for_every_target() {
        for target in ALL_TARGETS {
            assert_eq!(candidates(target)[0], default_config(target));
        }
    }

    #[test]
    fn tuned_never_beats_nothing_and_never_loses_to_default() {
        let src = InProcessSource::new();
        for target in ALL_TARGETS {
            let est = tune(&src, &shape(), target, &TuneOptions::default());
            assert!(
                est.tuned_cycles <= est.default_cycles,
                "{target:?}: tuned {} > default {}",
                est.tuned_cycles,
                est.default_cycles
            );
            assert!(est.candidates > 1);
            assert_eq!(est.best.target(), target);
        }
    }

    #[test]
    fn gpu_grid_prunes_the_infeasible_tile_and_tpu_grid_dedups_groups() {
        let src = InProcessSource::new();
        // The bare 128x128x64 tile fails shared-memory validation for all
        // four algos.
        let gpu = tune(&src, &shape(), TuneTarget::Gpu, &TuneOptions::default());
        assert!(gpu.pruned >= 4, "gpu pruned {}", gpu.pruned);
        // ci=64 on 128 rows: auto group 2, so ChannelFirstGrouped(2)
        // aliases ChannelFirst and dedup must catch it.
        let tpu = tune(
            &src,
            &shape(),
            TuneTarget::Tpu { chip: TpuChip::V2 },
            &TuneOptions::default(),
        );
        assert!(tpu.pruned >= 1, "tpu pruned {}", tpu.pruned);
    }

    #[test]
    fn search_is_invariant_to_jobs_and_chunking() {
        let src = InProcessSource::new();
        let reference = tune(
            &src,
            &shape(),
            TuneTarget::Tpu { chip: TpuChip::V3 },
            &TuneOptions {
                jobs: 1,
                batch_chunk: 1,
            },
        );
        for jobs in [2, 5] {
            for batch_chunk in [3, 7, 64] {
                let got = tune(
                    &src,
                    &shape(),
                    TuneTarget::Tpu { chip: TpuChip::V3 },
                    &TuneOptions { jobs, batch_chunk },
                );
                assert_eq!(got, reference, "jobs={jobs} chunk={batch_chunk}");
            }
        }
    }

    #[test]
    fn tune_key_matches_the_canonical_work_key() {
        let target = TuneTarget::Gpu;
        assert_eq!(
            tune_key(&shape(), target),
            canonical_key(&Work::Tune {
                shape: shape(),
                target
            })
        );
    }
}
