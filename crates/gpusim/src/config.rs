//! V100 Tensor-Core GPU model configuration (paper Sec. VI: CUDA 10.2,
//! cuDNN 7, FP16, `cudaTensorCoreGemm`-style blocking).

use iconv_core::BlockConfig;
use iconv_dram::DramConfig;

/// Static GPU parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuConfig {
    /// Streaming multiprocessors (V100: 80).
    pub sms: usize,
    /// Tensor-core MACs per SM per cycle (V100: 8 TCs × 64 FP16 FMA = 512).
    pub tc_macs_per_sm_cycle: u64,
    /// Core clock in MHz (V100 SXM2 boost: 1530).
    pub clock_mhz: f64,
    /// Shared memory per SM in bytes (V100: 96 KB usable).
    pub shared_bytes: u64,
    /// Element size in bytes (FP16: 2).
    pub elem_bytes: u64,
    /// Off-chip memory model parameters.
    pub dram: DramConfig,
    /// Thread-block GEMM tile.
    pub block: BlockConfig,
    /// Concurrent thread blocks per SM (bounded by shared memory for the
    /// double-buffered tiles).
    pub blocks_per_sm: usize,
    /// Kernel launch + tail overhead in cycles (~3 µs).
    pub launch_cycles: u64,
    /// Relative software pipeline efficiency of our open implementation vs
    /// cuDNN's microarchitecture-tuned kernels (the paper attributes its
    /// average 1% gap to "low-level microarchitecture-specific
    /// optimizations unavailable to us").
    pub sw_pipeline_efficiency: f64,
}

impl GpuConfig {
    /// NVIDIA V100 (SXM2) with the paper's software stack.
    pub fn v100() -> Self {
        Self {
            sms: 80,
            tc_macs_per_sm_cycle: 512,
            clock_mhz: 1530.0,
            shared_bytes: 96 * 1024,
            elem_bytes: 2,
            dram: DramConfig::hbm2_v100(),
            block: BlockConfig::cuda_sdk(),
            blocks_per_sm: 2,
            launch_cycles: 4_600,
            sw_pipeline_efficiency: 0.985,
        }
    }

    /// Peak FP16 tensor-core TFLOPS.
    pub fn peak_tflops(&self) -> f64 {
        2.0 * (self.sms as u64 * self.tc_macs_per_sm_cycle) as f64 * self.clock_mhz * 1e6 / 1e12
    }

    /// Convert cycles to seconds.
    pub fn cycles_to_seconds(&self, cycles: f64) -> f64 {
        cycles / (self.clock_mhz * 1e6)
    }

    /// A canonical, injective text rendering of every configuration field —
    /// the GPU analogue of `TpuConfig::canonical_key`, used as the hardware
    /// component of `iconv-serve` cache keys. Floats use shortest
    /// round-trip `Display`, so distinct values never alias.
    pub fn canonical_key(&self) -> String {
        let d = &self.dram;
        format!(
            "gpu;sms{};tc{};clk{};sh{};eb{};dram{},{},{},{},{},{},{},{};blk{}x{}x{};bpsm{};launch{};swpe{}",
            self.sms,
            self.tc_macs_per_sm_cycle,
            self.clock_mhz,
            self.shared_bytes,
            self.elem_bytes,
            d.bytes_per_cycle,
            d.burst_bytes,
            d.row_bytes,
            d.banks,
            d.t_activate,
            d.t_precharge,
            d.t_cas,
            d.base_latency,
            self.block.bm,
            self.block.bn,
            self.block.bk,
            self.blocks_per_sm,
            self.launch_cycles,
            self.sw_pipeline_efficiency
        )
    }
}

impl Default for GpuConfig {
    fn default() -> Self {
        Self::v100()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v100_peak_is_125_tflops() {
        let t = GpuConfig::v100().peak_tflops();
        assert!((t - 125.3).abs() < 1.0, "peak = {t}");
    }

    #[test]
    fn canonical_key_distinguishes_configs() {
        let base = GpuConfig::v100();
        let mut faster = base;
        faster.clock_mhz = 1544.0;
        let mut wider = base;
        wider.block.bk = 64;
        assert_eq!(base.canonical_key(), GpuConfig::v100().canonical_key());
        assert_ne!(base.canonical_key(), faster.canonical_key());
        assert_ne!(base.canonical_key(), wider.canonical_key());
    }

    #[test]
    fn shared_memory_fits_double_buffered_tiles() {
        let c = GpuConfig::v100();
        let tile_bytes = (c.block.bm * c.block.bk + c.block.bk * c.block.bn) as u64 * c.elem_bytes;
        // Two blocks per SM, each double buffered.
        assert!(2 * 2 * tile_bytes <= c.shared_bytes);
    }
}
