//! V100 Tensor-Core GPU model configuration (paper Sec. VI: CUDA 10.2,
//! cuDNN 7, FP16, `cudaTensorCoreGemm`-style blocking).

use std::fmt;

use iconv_core::{BlockConfig, PipelineSchedule};
use iconv_dram::DramConfig;

/// Static GPU parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuConfig {
    /// Streaming multiprocessors (V100: 80).
    pub sms: usize,
    /// Tensor-core MACs per SM per cycle (V100: 8 TCs × 64 FP16 FMA = 512).
    pub tc_macs_per_sm_cycle: u64,
    /// Core clock in MHz (V100 SXM2 boost: 1530).
    pub clock_mhz: f64,
    /// Shared memory per SM in bytes (V100: 96 KB usable).
    pub shared_bytes: u64,
    /// Element size in bytes (FP16: 2).
    pub elem_bytes: u64,
    /// Off-chip memory model parameters.
    pub dram: DramConfig,
    /// Thread-block GEMM tile.
    pub block: BlockConfig,
    /// Concurrent thread blocks per SM (bounded by shared memory for the
    /// double-buffered tiles).
    pub blocks_per_sm: usize,
    /// Kernel launch + tail overhead in cycles (~3 µs).
    pub launch_cycles: u64,
    /// Relative software pipeline efficiency of our open implementation vs
    /// cuDNN's microarchitecture-tuned kernels (the paper attributes its
    /// average 1% gap to "low-level microarchitecture-specific
    /// optimizations unavailable to us").
    pub sw_pipeline_efficiency: f64,
    /// Shared-memory fill / compute overlap discipline. The cp.async-style
    /// `DoubleBuffered` prefetch (the CUDA SDK kernel the paper models) is
    /// the default: `cycles = max(compute, memory) + launch`.
    /// `SingleBuffered` is the serialized reference without prefetch:
    /// `cycles = compute + memory + launch`.
    pub schedule: PipelineSchedule,
}

impl GpuConfig {
    /// NVIDIA V100 (SXM2) with the paper's software stack.
    pub fn v100() -> Self {
        Self {
            sms: 80,
            tc_macs_per_sm_cycle: 512,
            clock_mhz: 1530.0,
            shared_bytes: 96 * 1024,
            elem_bytes: 2,
            dram: DramConfig::hbm2_v100(),
            block: BlockConfig::cuda_sdk(),
            blocks_per_sm: 2,
            launch_cycles: 4_600,
            sw_pipeline_efficiency: 0.985,
            schedule: PipelineSchedule::DoubleBuffered,
        }
    }

    /// Peak FP16 tensor-core TFLOPS.
    pub fn peak_tflops(&self) -> f64 {
        2.0 * (self.sms as u64 * self.tc_macs_per_sm_cycle) as f64 * self.clock_mhz * 1e6 / 1e12
    }

    /// Convert cycles to seconds.
    pub fn cycles_to_seconds(&self, cycles: f64) -> f64 {
        cycles / (self.clock_mhz * 1e6)
    }

    /// A canonical, injective text rendering of every configuration field —
    /// the GPU analogue of `TpuConfig::canonical_key`, used as the hardware
    /// component of `iconv-serve` cache keys. Floats use shortest
    /// round-trip `Display`, so distinct values never alias.
    pub fn canonical_key(&self) -> String {
        let d = &self.dram;
        format!(
            "gpu;sms{};tc{};clk{};sh{};eb{};dram{},{},{},{},{},{},{},{};blk{}x{}x{};bpsm{};launch{};swpe{};sched{}",
            self.sms,
            self.tc_macs_per_sm_cycle,
            self.clock_mhz,
            self.shared_bytes,
            self.elem_bytes,
            d.bytes_per_cycle,
            d.burst_bytes,
            d.row_bytes,
            d.banks,
            d.t_activate,
            d.t_precharge,
            d.t_cas,
            d.base_latency,
            self.block.bm,
            self.block.bn,
            self.block.bk,
            self.blocks_per_sm,
            self.launch_cycles,
            self.sw_pipeline_efficiency,
            self.schedule
        )
    }
}

impl Default for GpuConfig {
    fn default() -> Self {
        Self::v100()
    }
}

/// Why a [`GpuConfigBuilder`] refused to produce a config.
#[derive(Debug, Clone, PartialEq)]
pub enum GpuConfigError {
    /// SM count must be ≥ 1.
    ZeroSms,
    /// Tensor-core MAC throughput must be ≥ 1 MAC/SM/cycle.
    ZeroTensorCoreMacs,
    /// Clock must be finite and positive (MHz).
    BadClock(f64),
    /// Element size must be ≥ 1 byte.
    ZeroElemBytes,
    /// Every thread-block tile dimension must be ≥ 1.
    ZeroBlockDim,
    /// At least one resident block per SM is required.
    ZeroBlocksPerSm,
    /// The double-buffered tiles of all resident blocks must fit in shared
    /// memory: `blocks_per_sm × 2 × (bm·bk + bk·bn) × elem_bytes ≤
    /// shared_bytes`.
    SharedMemOverflow {
        /// Bytes the resident tiles need.
        need: u64,
        /// Shared memory actually available per SM.
        have: u64,
    },
    /// Software pipeline efficiency must lie in (0, 1].
    BadPipelineEfficiency(f64),
    /// DRAM bank count must be a power of two.
    NonPowerOfTwoDramBanks(u64),
}

impl fmt::Display for GpuConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::ZeroSms => write!(f, "SM count must be >= 1"),
            Self::ZeroTensorCoreMacs => write!(f, "tensor-core MACs/SM/cycle must be >= 1"),
            Self::BadClock(v) => write!(f, "clock must be finite and positive, got {v} MHz"),
            Self::ZeroElemBytes => write!(f, "element size must be >= 1 byte"),
            Self::ZeroBlockDim => write!(f, "thread-block tile dimensions must be >= 1"),
            Self::ZeroBlocksPerSm => write!(f, "blocks per SM must be >= 1"),
            Self::SharedMemOverflow { need, have } => write!(
                f,
                "double-buffered tiles need {need} B shared memory but only {have} B available"
            ),
            Self::BadPipelineEfficiency(v) => {
                write!(f, "pipeline efficiency must be in (0, 1], got {v}")
            }
            Self::NonPowerOfTwoDramBanks(n) => {
                write!(f, "dram bank count must be a power of two, got {n}")
            }
        }
    }
}

impl std::error::Error for GpuConfigError {}

/// Validated builder for [`GpuConfig`], seeded from the V100 preset (or any
/// base via [`GpuConfig::builder_from`]). See `TpuConfigBuilder` for the
/// policy: external input goes through a builder so domain violations —
/// including the shared-memory capacity constraint the blocking model relies
/// on — become typed errors rather than nonsense simulations.
#[derive(Debug, Clone, Copy)]
pub struct GpuConfigBuilder {
    cfg: GpuConfig,
}

impl GpuConfigBuilder {
    /// Streaming-multiprocessor count.
    pub fn sms(mut self, sms: usize) -> Self {
        self.cfg.sms = sms;
        self
    }

    /// Tensor-core MACs per SM per cycle.
    pub fn tc_macs_per_sm_cycle(mut self, macs: u64) -> Self {
        self.cfg.tc_macs_per_sm_cycle = macs;
        self
    }

    /// Core clock in MHz.
    pub fn clock_mhz(mut self, mhz: f64) -> Self {
        self.cfg.clock_mhz = mhz;
        self
    }

    /// Thread-block GEMM tile.
    pub fn block(mut self, block: BlockConfig) -> Self {
        self.cfg.block = block;
        self
    }

    /// Concurrent thread blocks per SM.
    pub fn blocks_per_sm(mut self, blocks: usize) -> Self {
        self.cfg.blocks_per_sm = blocks;
        self
    }

    /// Kernel launch + tail overhead in cycles.
    pub fn launch_cycles(mut self, cycles: u64) -> Self {
        self.cfg.launch_cycles = cycles;
        self
    }

    /// Relative software pipeline efficiency in (0, 1].
    pub fn sw_pipeline_efficiency(mut self, eff: f64) -> Self {
        self.cfg.sw_pipeline_efficiency = eff;
        self
    }

    /// Replace the off-chip memory model wholesale.
    pub fn dram(mut self, dram: DramConfig) -> Self {
        self.cfg.dram = dram;
        self
    }

    /// Shared-memory fill / compute overlap discipline.
    pub fn schedule(mut self, schedule: PipelineSchedule) -> Self {
        self.cfg.schedule = schedule;
        self
    }

    /// Validate every knob and return the finished config.
    pub fn build(self) -> Result<GpuConfig, GpuConfigError> {
        let c = &self.cfg;
        if c.sms == 0 {
            return Err(GpuConfigError::ZeroSms);
        }
        if c.tc_macs_per_sm_cycle == 0 {
            return Err(GpuConfigError::ZeroTensorCoreMacs);
        }
        if !c.clock_mhz.is_finite() || c.clock_mhz <= 0.0 {
            return Err(GpuConfigError::BadClock(c.clock_mhz));
        }
        if c.elem_bytes == 0 {
            return Err(GpuConfigError::ZeroElemBytes);
        }
        if c.block.bm == 0 || c.block.bn == 0 || c.block.bk == 0 {
            return Err(GpuConfigError::ZeroBlockDim);
        }
        if c.blocks_per_sm == 0 {
            return Err(GpuConfigError::ZeroBlocksPerSm);
        }
        let tile_bytes = (c.block.bm * c.block.bk + c.block.bk * c.block.bn) as u64 * c.elem_bytes;
        let need = c.blocks_per_sm as u64 * 2 * tile_bytes;
        if need > c.shared_bytes {
            return Err(GpuConfigError::SharedMemOverflow {
                need,
                have: c.shared_bytes,
            });
        }
        if !c.sw_pipeline_efficiency.is_finite()
            || c.sw_pipeline_efficiency <= 0.0
            || c.sw_pipeline_efficiency > 1.0
        {
            return Err(GpuConfigError::BadPipelineEfficiency(
                c.sw_pipeline_efficiency,
            ));
        }
        if c.dram.banks == 0 || !c.dram.banks.is_power_of_two() {
            return Err(GpuConfigError::NonPowerOfTwoDramBanks(c.dram.banks));
        }
        Ok(self.cfg)
    }
}

impl GpuConfig {
    /// Builder seeded from the V100 preset.
    pub fn builder() -> GpuConfigBuilder {
        Self::builder_from(Self::v100())
    }

    /// Builder seeded from an arbitrary base config.
    pub fn builder_from(base: GpuConfig) -> GpuConfigBuilder {
        GpuConfigBuilder { cfg: base }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v100_peak_is_125_tflops() {
        let t = GpuConfig::v100().peak_tflops();
        assert!((t - 125.3).abs() < 1.0, "peak = {t}");
    }

    #[test]
    fn canonical_key_distinguishes_configs() {
        let base = GpuConfig::v100();
        let mut faster = base;
        faster.clock_mhz = 1544.0;
        let mut wider = base;
        wider.block.bk = 64;
        assert_eq!(base.canonical_key(), GpuConfig::v100().canonical_key());
        assert_ne!(base.canonical_key(), faster.canonical_key());
        assert_ne!(base.canonical_key(), wider.canonical_key());
    }

    #[test]
    fn shared_memory_fits_double_buffered_tiles() {
        let c = GpuConfig::v100();
        let tile_bytes = (c.block.bm * c.block.bk + c.block.bk * c.block.bn) as u64 * c.elem_bytes;
        // Two blocks per SM, each double buffered.
        assert!(2 * 2 * tile_bytes <= c.shared_bytes);
    }

    #[test]
    fn builder_defaults_match_preset() {
        assert_eq!(GpuConfig::builder().build().unwrap(), GpuConfig::v100());
    }

    #[test]
    fn builder_accepts_faster_clock_and_wider_tiles() {
        let faster = GpuConfig::builder().clock_mhz(1544.0).build().unwrap();
        assert_ne!(faster.canonical_key(), GpuConfig::v100().canonical_key());
        // A wider-K tile doubles the double-buffered footprint, so it only
        // fits at single-block residency.
        let mut block = BlockConfig::cuda_sdk();
        block.bk = 64;
        let wider = GpuConfig::builder()
            .block(block)
            .blocks_per_sm(1)
            .build()
            .unwrap();
        assert_ne!(wider.canonical_key(), GpuConfig::v100().canonical_key());
        assert!(GpuConfig::builder().block(block).build().is_err());
    }

    #[test]
    fn builder_rejects_out_of_domain_knobs() {
        use GpuConfigError as E;
        assert_eq!(GpuConfig::builder().sms(0).build(), Err(E::ZeroSms));
        assert_eq!(
            GpuConfig::builder().tc_macs_per_sm_cycle(0).build(),
            Err(E::ZeroTensorCoreMacs)
        );
        assert_eq!(
            GpuConfig::builder().clock_mhz(-1.0).build(),
            Err(E::BadClock(-1.0))
        );
        assert_eq!(
            GpuConfig::builder().blocks_per_sm(0).build(),
            Err(E::ZeroBlocksPerSm)
        );
        assert_eq!(
            GpuConfig::builder().sw_pipeline_efficiency(0.0).build(),
            Err(E::BadPipelineEfficiency(0.0))
        );
        let mut block = BlockConfig::cuda_sdk();
        block.bm = 0;
        assert_eq!(
            GpuConfig::builder().block(block).build(),
            Err(E::ZeroBlockDim)
        );
        let mut dram = DramConfig::hbm2_v100();
        dram.banks = 100;
        assert_eq!(
            GpuConfig::builder().dram(dram).build(),
            Err(E::NonPowerOfTwoDramBanks(100))
        );
    }

    #[test]
    fn builder_enforces_shared_memory_capacity() {
        // 16 resident double-buffered CUDA-SDK tiles blow the 96 KB budget.
        let err = GpuConfig::builder().blocks_per_sm(16).build().unwrap_err();
        match err {
            GpuConfigError::SharedMemOverflow { need, have } => {
                assert!(need > have, "need={need} have={have}");
            }
            other => panic!("expected SharedMemOverflow, got {other:?}"),
        }
    }
}
