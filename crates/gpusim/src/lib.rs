//! # iconv-gpusim
//!
//! A V100 Tensor-Core GPU timing model running the paper's convolution
//! schedules (Secs. II, V): the cuDNN-proxy implicit **channel-last**
//! algorithm, our block-level implicit **channel-first** algorithm (with and
//! without inter-tile reuse), the **explicit** im2col baseline, and the
//! plain **GEMM-equivalent** reference.
//!
//! All schedules run on the *identical* machine model (SM fleet, shared-
//! memory tile pipeline, run-length-aware HBM), so differences isolate the
//! algorithmic effects the paper measures: stride sensitivity (Fig. 4a),
//! explicit-transform overhead (Fig. 2a), near-parity at batch 8 (Fig. 17),
//! strided-layer wins (Fig. 18a) and inter-tile reuse (Fig. 18b).
//!
//! ```
//! use iconv_gpusim::{GpuAlgo, GpuConfig, GpuSim};
//! use iconv_tensor::ConvShape;
//!
//! # fn main() -> Result<(), iconv_tensor::ShapeError> {
//! let sim = GpuSim::new(GpuConfig::v100());
//! let layer = ConvShape::square(8, 128, 56, 128, 3, 2, 1)?; // strided
//! let ours = sim.simulate_conv("l", &layer, GpuAlgo::ChannelFirst { reuse: true });
//! let cudnn = sim.simulate_conv("l", &layer, GpuAlgo::CudnnImplicit);
//! assert!(ours.timing.cycles <= cudnn.timing.cycles * 1.05);
//! # Ok(()) }
//! ```

pub mod config;
pub mod conv;
pub mod kernel;
pub mod traffic;

pub use config::{GpuConfig, GpuConfigBuilder, GpuConfigError};
pub use conv::{GpuAlgo, GpuLayerReport, GpuSim};
pub use kernel::KernelTiming;
pub use traffic::Traffic;
