//! Global-memory traffic accounting per convolution schedule.
//!
//! The schedules differ in *what* each thread block stages into shared
//! memory, which is where the paper's stride effects come from:
//!
//! * **Channel-last (cuDNN proxy, Lym-et-al. structure)** — each output
//!   block stages the *input region* covering its receptive fields and
//!   dynamically forms lowered rows from it. The region (≈ the whole IFMap,
//!   summed over blocks) does **not** shrink with stride, while the GEMM
//!   work does: the Fig. 3 imbalance.
//! * **Channel-first (ours)** — each block fetches, per decomposed filter
//!   tap, exactly the pixels that tap needs for the block's outputs. Traffic
//!   scales with the *output* count, so it shrinks with the GEMM under
//!   stride: the Fig. 8b balance. With inter-tile reuse
//!   ([`iconv_core::FetchOrder::Reordered`]), overlap with the previously
//!   resident tap is subtracted.
//! * **GEMM-equivalent** — dense `A` rows; the Fig. 4 reference bars.

use crate::config::GpuConfig;
use iconv_core::{BlockDecomposition, ConvPass, FetchOrder};
use iconv_tensor::ConvShape;
use std::collections::HashMap;

/// Traffic (bytes) and the characteristic DRAM run length of a schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Traffic {
    /// Total bytes read from global memory for the `A` (IFMap) side.
    pub a_bytes: u64,
    /// Total bytes read for the `B` (filter) side.
    pub b_bytes: u64,
    /// Bytes written for the output.
    pub c_bytes: u64,
    /// Characteristic contiguous run length of the `A`-side accesses.
    pub a_run_bytes: u64,
}

impl Traffic {
    /// Total bytes moved.
    pub fn total(&self) -> u64 {
        self.a_bytes + self.b_bytes + self.c_bytes
    }
}

/// V100 L2 capacity; a B column-tile that fits in half of it stays resident
/// across the m-blocks that share it.
const L2_BYTES: u64 = 6 * 1024 * 1024;

fn common_bc(cfg: &GpuConfig, shape: &ConvShape) -> (u64, u64, u64, u64) {
    let (m, n, k) = shape.gemm_mnk();
    view_bc(cfg, m, n, k)
}

/// The B/C side of any `M×N×K` GEMM view under the block schedule — the
/// backward passes run the same tiling over swapped tensor roles, so the
/// view dimensions are a parameter rather than always `shape.gemm_mnk()`.
fn view_bc(cfg: &GpuConfig, m: usize, n: usize, k: usize) -> (u64, u64, u64, u64) {
    let blocks_m = m.div_ceil(cfg.block.bm) as u64;
    let blocks_n = n.div_ceil(cfg.block.bn) as u64;
    // B column-tile: re-read per m-block only when it cannot stay in L2.
    let b_tile = (k * cfg.block.bn.min(n)) as u64 * cfg.elem_bytes;
    let b_bytes = if b_tile <= L2_BYTES / 2 {
        (k * n) as u64 * cfg.elem_bytes
    } else {
        b_tile * blocks_m * blocks_n
    };
    let c_bytes = (m * n) as u64 * cfg.elem_bytes;
    (blocks_m, blocks_n, b_bytes, c_bytes)
}

/// Traffic of the channel-last (cuDNN-proxy) schedule: the input coverage is
/// staged once per output-column block regardless of stride.
pub fn channel_last(cfg: &GpuConfig, shape: &ConvShape) -> Traffic {
    let (_bm, blocks_n, b_bytes, c_bytes) = common_bc(cfg, shape);
    let ifmap_bytes = shape.ifmap_elems() as u64 * cfg.elem_bytes;
    // When the stride exceeds the (dilated) filter extent, some input
    // pixels belong to no receptive field and are never fetched: per
    // dimension, only `min(f, s)` of every `s` rows/columns are used.
    let used_h = (shape.eff_hf().min(shape.stride_h) as f64) / shape.stride_h as f64;
    let used_w = (shape.eff_wf().min(shape.stride_w) as f64) / shape.stride_w as f64;
    // Region loads are row-contiguous in the NHWC global layout while the
    // filter covers every column (stride ≤ filter width); beyond that only
    // the strided pixels are read, so runs shrink to one channel vector.
    let run = if shape.stride_w <= shape.eff_wf() {
        (shape.wi * shape.ci) as u64 * cfg.elem_bytes
    } else {
        shape.ci as u64 * cfg.elem_bytes
    };
    Traffic {
        a_bytes: (ifmap_bytes as f64 * used_h * used_w) as u64 * blocks_n,
        b_bytes,
        c_bytes,
        a_run_bytes: run,
    }
}

/// Traffic of the block-level channel-first schedule, with or without the
/// inter-tile reuse reordering. Exact per-block accounting via
/// [`BlockDecomposition::block_fetch_elems`], memoized over the repeating
/// block pattern within each batch image.
pub fn channel_first(cfg: &GpuConfig, shape: &ConvShape, reuse: bool) -> Traffic {
    let order = if reuse {
        FetchOrder::Reordered
    } else {
        FetchOrder::Naive
    };
    let decomp = BlockDecomposition::new(*shape, cfg.block, order);
    let per_img = shape.out_h() * shape.out_w();
    // Blocks whose row ranges are congruent modulo the per-image row count
    // have identical pixel footprints: memoize on the phase. NOTE: the
    // per-block *image multiplier* varies between same-phase blocks only
    // when a block spans a batch boundary, which the phase key also
    // captures via `row0 % per_img + rows > per_img`.
    let mut cache: HashMap<(usize, usize), u64> = HashMap::new();
    let mut a_elems = 0u64;
    for block in decomp.output_blocks() {
        let key = (block.row0 % per_img, block.rows);
        let elems = *cache.entry(key).or_insert_with(|| {
            let (cold, warm) = decomp.block_fetch_elems(&block);
            // The paper's naive order "has no data reuse" (Fig. 12): each
            // tap's sub-tile is fetched in full. The reordering keeps the
            // previous tap resident and fetches only the fresh pixels.
            if reuse {
                warm
            } else {
                cold
            }
        });
        a_elems += elems;
    }
    let (_bm, _bn, b_bytes, c_bytes) = common_bc(cfg, shape);
    // Tap fetches: contiguous across channels (× consecutive pixels when the
    // layer is dense in `w`).
    let per_pixel = shape.ci as u64 * cfg.elem_bytes;
    let run = if shape.stride_w == 1 && shape.dil_w == 1 {
        per_pixel * shape.out_w().min(cfg.block.bm) as u64
    } else {
        per_pixel
    };
    Traffic {
        a_bytes: a_elems * cfg.elem_bytes,
        b_bytes,
        c_bytes,
        a_run_bytes: run,
    }
}

/// Traffic of a plain GEMM of the lowered dimensions (the Fig. 4 reference):
/// dense `A` rows streamed once per output-column block.
pub fn gemm_equivalent(cfg: &GpuConfig, shape: &ConvShape) -> Traffic {
    let (m, n, k) = shape.gemm_mnk();
    view_gemm(cfg, m, n, k)
}

/// [`gemm_equivalent`] generalized to any `M×N×K` view — the dense-matrix
/// traffic of a backward or transposed pass run as a plain (or explicitly
/// lowered) GEMM.
pub fn view_gemm(cfg: &GpuConfig, m: usize, n: usize, k: usize) -> Traffic {
    let (_bm, blocks_n, b_bytes, c_bytes) = view_bc(cfg, m, n, k);
    // An A row-tile (bm × K) that fits in half the L2 is read once and
    // reused across the output-column blocks (swizzled launch order).
    let a_tile = (cfg.block.bm * k) as u64 * cfg.elem_bytes;
    let a_reads = if a_tile <= L2_BYTES / 2 { 1 } else { blocks_n };
    Traffic {
        a_bytes: (m * k) as u64 * cfg.elem_bytes * a_reads,
        b_bytes,
        c_bytes,
        a_run_bytes: (k as u64 * cfg.elem_bytes).max(4096),
    }
}

/// Traffic of an *implicit* backward/transposed pass: the gathered operand
/// streams straight from its tensor (no lowered matrix, no materialized
/// zero dilation — BP-Im2col), so the A side is exactly the source tensor's
/// footprint; B and C follow the pass's GEMM view, which maps them onto the
/// other operand and the result tensor byte-for-byte (`K·N` is the filter
/// for dgrad and dY for wgrad; `M·N` is the written gradient).
pub fn pass_implicit(cfg: &GpuConfig, shape: &ConvShape, pass: ConvPass) -> Traffic {
    let (m, n, k) = pass.gemm_mnk(shape);
    let (_bm, _bn, b_bytes, c_bytes) = view_bc(cfg, m, n, k);
    let (src_elems, channels, width) = if pass.gathers_output_side() {
        (shape.ofmap_elems(), shape.co, shape.out_w())
    } else {
        (shape.ifmap_elems(), shape.ci, shape.wi)
    };
    // Gathers are contiguous across channels (× consecutive pixels when the
    // layer is dense in `w` — dilation holes break the run exactly like a
    // forward stride).
    let per_pixel = channels as u64 * cfg.elem_bytes;
    let run = if shape.stride_w == 1 && shape.dil_w == 1 {
        per_pixel * width as u64
    } else {
        per_pixel
    };
    Traffic {
        a_bytes: src_elems as u64 * cfg.elem_bytes,
        b_bytes,
        c_bytes,
        a_run_bytes: run,
    }
}

/// Bytes moved by an explicit im2col transform pass (read IFMap, write the
/// lowered matrix), which precedes [`gemm_equivalent`] in the explicit
/// algorithm (Fig. 2a baseline).
pub fn explicit_transform_bytes(cfg: &GpuConfig, shape: &ConvShape) -> u64 {
    (shape.ifmap_elems() + shape.lowered_elems()) as u64 * cfg.elem_bytes
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> GpuConfig {
        GpuConfig::v100()
    }

    fn shape(stride: usize) -> ConvShape {
        ConvShape::square(8, 64, 56, 64, 3, stride, 1).unwrap()
    }

    #[test]
    fn channel_last_a_traffic_is_stride_independent() {
        let t1 = channel_last(&cfg(), &shape(1));
        let t2 = channel_last(&cfg(), &shape(2));
        assert_eq!(t1.a_bytes, t2.a_bytes);
        // ...while the GEMM work shrinks 4x: the Fig. 3 imbalance.
        assert!(shape(1).flops() > 3 * shape(2).flops());
    }

    #[test]
    fn channel_first_a_traffic_shrinks_with_stride() {
        let t1 = channel_first(&cfg(), &shape(1), true);
        let t2 = channel_first(&cfg(), &shape(2), true);
        assert!(
            (t2.a_bytes as f64) < 0.6 * t1.a_bytes as f64,
            "s1 {} vs s2 {}",
            t1.a_bytes,
            t2.a_bytes
        );
    }

    #[test]
    fn reuse_cuts_channel_first_traffic() {
        let s = shape(2);
        let naive = channel_first(&cfg(), &s, false);
        let reordered = channel_first(&cfg(), &s, true);
        assert!(
            reordered.a_bytes < naive.a_bytes,
            "reordered {} vs naive {}",
            reordered.a_bytes,
            naive.a_bytes
        );
    }

    #[test]
    fn stride1_parity_between_schedules() {
        // At stride 1 the reordered channel-first traffic is within ~2x of
        // the channel-last coverage (both ≈ one pass over the used input per
        // n-block).
        // Per-block strips re-fetch their row halo (no L2 model), so the
        // channel-first total sits a small multiple above the one-pass
        // coverage; it must stay the same order of magnitude.
        let s = shape(1);
        let cl = channel_last(&cfg(), &s);
        let cf = channel_first(&cfg(), &s, true);
        let ratio = cf.a_bytes as f64 / cl.a_bytes as f64;
        assert!((0.4..4.5).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn gemm_equivalent_scales_with_lowered_size() {
        let g1 = gemm_equivalent(&cfg(), &shape(1));
        let g2 = gemm_equivalent(&cfg(), &shape(2));
        let ratio = g1.a_bytes as f64 / g2.a_bytes as f64;
        assert!((3.0..5.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn explicit_transform_dominated_by_lowered_matrix() {
        let s = shape(1);
        let b = explicit_transform_bytes(&cfg(), &s);
        assert!(b > 8 * s.ifmap_elems() as u64 * 2);
    }

    #[test]
    fn pass_implicit_traffic_is_the_tensor_footprint() {
        // B-resident shape: every pass's implicit traffic is exactly the
        // three tensor footprints (no lowered matrix ever hits DRAM).
        let c = cfg();
        let s = shape(2);
        for pass in iconv_core::ALL_PASSES {
            let t = pass_implicit(&c, &s, pass);
            let (m, n, k) = pass.gemm_mnk(&s);
            let src = if pass.gathers_output_side() {
                s.ofmap_elems()
            } else {
                s.ifmap_elems()
            };
            assert_eq!(t.a_bytes, src as u64 * c.elem_bytes, "{pass}");
            assert_eq!(
                t.b_bytes,
                (k * n) as u64 * c.elem_bytes,
                "{pass} B resident"
            );
            assert_eq!(t.c_bytes, (m * n) as u64 * c.elem_bytes, "{pass}");
        }
        // dgrad's B side is the filter; wgrad's is dY.
        let d = pass_implicit(&c, &s, iconv_core::ConvPass::Dgrad);
        assert_eq!(d.b_bytes, s.filter_elems() as u64 * c.elem_bytes);
        let w = pass_implicit(&c, &s, iconv_core::ConvPass::Wgrad);
        assert_eq!(w.b_bytes, s.ofmap_elems() as u64 * c.elem_bytes);
    }

    #[test]
    fn memoization_matches_direct_sum() {
        // The memoized per-phase cache must reproduce the exact per-block
        // sum from iconv-core.
        let s = ConvShape::square(3, 4, 10, 8, 3, 1, 1).unwrap();
        let t = channel_first(&cfg(), &s, true);
        let decomp = BlockDecomposition::new(s, cfg().block, FetchOrder::Reordered);
        let (_, warm) = decomp.layer_fetch_elems();
        assert_eq!(t.a_bytes, warm * cfg().elem_bytes);
    }
}
