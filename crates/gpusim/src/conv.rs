//! Per-layer convolution timing under each GPU algorithm.

use crate::config::GpuConfig;
use crate::kernel::{time_kernel, KernelTiming};
use crate::traffic;
use crate::traffic::Traffic;
use iconv_core::ConvPass;
use iconv_tensor::ConvShape;
use iconv_trace::TraceSink;
use iconv_workloads::Model;
use std::fmt;

/// The GPU convolution algorithms compared in Figs. 2a, 4a, 17 and 18.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GpuAlgo {
    /// cuDNN's `IMPLICIT_PRECOMP_GEMM` proxy: implicit channel-last im2col
    /// staging input regions in shared memory (Lym-et-al. structure).
    CudnnImplicit,
    /// Our block-level implicit channel-first im2col; `reuse` enables the
    /// inter-tile reordering of Sec. V.
    ChannelFirst {
        /// Enable the inter-tile reuse reordering.
        reuse: bool,
    },
    /// Explicit im2col: a bandwidth-bound transform kernel followed by a
    /// plain GEMM over the materialized matrix.
    ExplicitIm2col,
    /// A plain GEMM of the lowered dimensions — not a convolution at all,
    /// the Fig. 4 "GEMM" reference bars.
    GemmEquivalent,
    /// Dukhan's indirect convolution: the implicit channel-first schedule
    /// fed through a pointer table. DRAM adds the pointer bytes, and every
    /// block pays a per-tap pointer dereference the implicit address
    /// generation computes for free.
    Indirect,
}

impl fmt::Display for GpuAlgo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GpuAlgo::CudnnImplicit => write!(f, "cudnn-implicit"),
            GpuAlgo::ChannelFirst { reuse: true } => write!(f, "channel-first+reuse"),
            GpuAlgo::ChannelFirst { reuse: false } => write!(f, "channel-first"),
            GpuAlgo::ExplicitIm2col => write!(f, "explicit-im2col"),
            GpuAlgo::GemmEquivalent => write!(f, "gemm-equivalent"),
            GpuAlgo::Indirect => write!(f, "indirect"),
        }
    }
}

/// Timing of one conv layer under one algorithm.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuLayerReport {
    /// Layer identifier.
    pub name: String,
    /// Algorithm used.
    pub algo: GpuAlgo,
    /// Kernel timing (for explicit: transform + GEMM combined).
    pub timing: KernelTiming,
    /// Cycles of the explicit transform alone (zero for implicit).
    pub transform_cycles: f64,
    /// Useful convolution FLOPs (excludes K-padding waste).
    pub conv_flops: u64,
}

impl GpuLayerReport {
    /// Achieved TFLOPS over *useful* conv FLOPs.
    pub fn tflops(&self, cfg: &GpuConfig) -> f64 {
        if self.timing.cycles == 0.0 {
            return 0.0;
        }
        self.conv_flops as f64 / cfg.cycles_to_seconds(self.timing.cycles) / 1e12
    }

    /// Wall-clock seconds.
    pub fn seconds(&self, cfg: &GpuConfig) -> f64 {
        cfg.cycles_to_seconds(self.timing.cycles)
    }
}

/// The GPU simulator.
#[derive(Debug, Clone, Copy)]
pub struct GpuSim {
    config: GpuConfig,
}

impl GpuSim {
    /// Create a simulator over `config`.
    pub fn new(config: GpuConfig) -> Self {
        Self { config }
    }

    /// The configuration.
    pub fn config(&self) -> &GpuConfig {
        &self.config
    }

    /// K-dimension as the schedule pads it: channel-first pads each tap's
    /// `Ci` up to the WMMA fragment granularity (16); for channel counts
    /// below the fragment size, consecutive taps are packed into shared
    /// fragments (the GPU analogue of the TPU multi-tile merge), so the
    /// whole reduction pads once. Channel-last pads the whole `Hf·Wf·Ci`
    /// once to the slice width.
    fn k_padded(&self, shape: &ConvShape, per_tap: bool) -> usize {
        if per_tap {
            if shape.ci >= 16 {
                shape.hf * shape.wf * shape.ci.div_ceil(16) * 16
            } else {
                shape.lowered_cols().div_ceil(16) * 16
            }
        } else {
            let bk = self.config.block.bk;
            shape.lowered_cols().div_ceil(bk) * bk
        }
    }

    /// Simulate one layer under `algo`.
    pub fn simulate_conv(&self, name: &str, shape: &ConvShape, algo: GpuAlgo) -> GpuLayerReport {
        let cfg = &self.config;
        let (m, n, _) = shape.gemm_mnk();
        let (timing, transform_cycles) = match algo {
            GpuAlgo::CudnnImplicit => {
                let t = traffic::channel_last(cfg, shape);
                let k = self.k_padded(shape, false);
                // Strided access breaks the conflict-free shared-memory
                // layout the channel-last design relies on (Lym et al.
                // lay the IFMap out offline for unit stride): consecutive
                // lanes hit banks `stride` apart, serializing the fill.
                // Calibrated against the paper's Fig. 4a degradations.
                // 1x1 filters gather whole channel vectors per pixel and
                // need no window-overlap routing, so they escape the
                // conflict serialization.
                let conflicts = if shape.hf * shape.wf > 1 {
                    ((shape.stride_h * shape.stride_w) as f64).min(3.0)
                } else {
                    1.0
                };
                // Conflicted banks also delay operand delivery into the
                // tensor cores (load-use stalls), throttling compute by a
                // shallower factor than the fill itself.
                let sw = conflicts.powf(0.25).recip();
                (
                    crate::kernel::time_kernel_with_penalty(cfg, m, n, k, &t, sw, conflicts),
                    0.0,
                )
            }
            GpuAlgo::ChannelFirst { reuse } => {
                // For channel counts below the WMMA fragment size the
                // packed-tap kernel stages whole input rows (per-pixel
                // vectors would be sub-sector fetches); its precomputed
                // per-tap addressing keeps the staging conflict-free.
                let t = if shape.ci >= 16 {
                    traffic::channel_first(cfg, shape, reuse)
                } else {
                    traffic::channel_last(cfg, shape)
                };
                let k = self.k_padded(shape, true);
                (
                    time_kernel(cfg, m, n, k, &t, cfg.sw_pipeline_efficiency),
                    0.0,
                )
            }
            GpuAlgo::GemmEquivalent => {
                let t = traffic::gemm_equivalent(cfg, shape);
                let k = self.k_padded(shape, false);
                (time_kernel(cfg, m, n, k, &t, 1.0), 0.0)
            }
            GpuAlgo::ExplicitIm2col => {
                let t = traffic::gemm_equivalent(cfg, shape);
                let k = self.k_padded(shape, false);
                let mut timing = time_kernel(cfg, m, n, k, &t, 1.0);
                // The transform kernel: bandwidth-bound. The lowered-matrix
                // write dominates and streams sequentially; the IFMap gather
                // reads whole rows through the cache hierarchy, so it is
                // charged at row-run efficiency rather than per-window.
                let dram = iconv_dram::DramModel::new(cfg.dram);
                let lowered = shape.lowered_elems() as u64 * cfg.elem_bytes;
                let ifmap = shape.ifmap_elems() as u64 * cfg.elem_bytes;
                let row_run = (shape.wi * shape.ci) as u64 * cfg.elem_bytes;
                let transform = lowered as f64 / (cfg.dram.bytes_per_cycle * dram.efficiency(4096))
                    + ifmap as f64 / (cfg.dram.bytes_per_cycle * dram.efficiency(row_run))
                    + cfg.launch_cycles as f64;
                timing.cycles += transform;
                timing.memory_cycles += transform;
                (timing, transform)
            }
            GpuAlgo::Indirect => {
                let base = if shape.ci >= 16 {
                    traffic::channel_first(cfg, shape, true)
                } else {
                    traffic::channel_last(cfg, shape)
                };
                let k = self.k_padded(shape, true);
                (
                    self.apply_indirect(shape, ConvPass::Forward, base, m, n, k),
                    0.0,
                )
            }
        };
        GpuLayerReport {
            name: name.to_string(),
            algo,
            timing,
            transform_cycles,
            conv_flops: shape.flops(),
        }
    }

    /// K-dimension padding of a backward/transposed pass's GEMM view.
    /// dgrad/transpose reduce over taps × `Co`, so the per-tap WMMA padding
    /// mirrors the forward rule with `Co` in `Ci`'s place; wgrad reduces
    /// over pixels (no tap structure) and pads once to fragment granularity.
    fn k_padded_view(&self, shape: &ConvShape, pass: ConvPass, per_tap: bool) -> usize {
        let (_, _, k) = pass.gemm_mnk(shape);
        if per_tap && pass.gathers_output_side() && shape.co >= 16 {
            shape.hf * shape.wf * shape.co.div_ceil(16) * 16
        } else if per_tap {
            k.div_ceil(16) * 16
        } else {
            let bk = self.config.block.bk;
            k.div_ceil(bk) * bk
        }
    }

    /// Layer the indirect-convolution costs onto an implicit schedule: the
    /// pointer table adds its bytes to the gathered side, and each block
    /// serializes one pointer dereference per filter tap before its tensor
    /// cores can start.
    fn apply_indirect(
        &self,
        shape: &ConvShape,
        pass: ConvPass,
        base: Traffic,
        m: usize,
        n: usize,
        k: usize,
    ) -> KernelTiming {
        const PTR_BYTES: u64 = 8;
        let cfg = &self.config;
        let t = Traffic {
            a_bytes: base.a_bytes + pass.indirect_ptr_entries(shape) as u64 * PTR_BYTES,
            ..base
        };
        let mut timing = time_kernel(cfg, m, n, k, &t, cfg.sw_pipeline_efficiency);
        let deref = (timing.blocks * (shape.hf * shape.wf) as u64) as f64;
        timing.cycles += deref;
        timing.memory_cycles += deref;
        timing
    }

    /// Simulate one convolution pass (forward, wgrad, dgrad, or transposed
    /// convolution) under `algo`. `ConvPass::Forward` is exactly
    /// [`GpuSim::simulate_conv`]; the backward passes time the pass's GEMM
    /// view (see [`ConvPass::gemm_mnk`]) over the corresponding tensor
    /// traffic.
    pub fn simulate_pass(
        &self,
        name: &str,
        shape: &ConvShape,
        pass: ConvPass,
        algo: GpuAlgo,
    ) -> GpuLayerReport {
        if pass == ConvPass::Forward {
            return self.simulate_conv(name, shape, algo);
        }
        let cfg = &self.config;
        let (m, n, k_view) = pass.gemm_mnk(shape);
        let (timing, transform_cycles) = match algo {
            GpuAlgo::CudnnImplicit => {
                let t = traffic::pass_implicit(cfg, shape, pass);
                let k = self.k_padded_view(shape, pass, false);
                // The channel-last layout scatters under a backward gather
                // the same way it does under a forward stride: dgrad's
                // dilation holes and wgrad's strided windows both break the
                // conflict-free staging (1×1 filters escape, as forward).
                let conflicts = if shape.hf * shape.wf > 1 {
                    ((shape.stride_h * shape.stride_w) as f64).min(3.0)
                } else {
                    1.0
                };
                let sw = conflicts.powf(0.25).recip();
                (
                    crate::kernel::time_kernel_with_penalty(cfg, m, n, k, &t, sw, conflicts),
                    0.0,
                )
            }
            GpuAlgo::ChannelFirst { .. } => {
                let t = traffic::pass_implicit(cfg, shape, pass);
                let k = self.k_padded_view(shape, pass, true);
                (
                    time_kernel(cfg, m, n, k, &t, cfg.sw_pipeline_efficiency),
                    0.0,
                )
            }
            GpuAlgo::GemmEquivalent => {
                let t = traffic::view_gemm(cfg, m, n, k_view);
                let k = self.k_padded_view(shape, pass, false);
                (time_kernel(cfg, m, n, k, &t, 1.0), 0.0)
            }
            GpuAlgo::ExplicitIm2col => {
                let t = traffic::view_gemm(cfg, m, n, k_view);
                let k = self.k_padded_view(shape, pass, false);
                let mut timing = time_kernel(cfg, m, n, k, &t, 1.0);
                // Materialize the pass's lowered view (for dgrad, the
                // zero-dilated rotated-filter matrix) — bandwidth-bound,
                // same structure as the forward transform.
                let dram = iconv_dram::DramModel::new(cfg.dram);
                let lowered = pass.lowered_view_elems(shape) as u64 * cfg.elem_bytes;
                let (src_elems, channels, width) = if pass.gathers_output_side() {
                    (shape.ofmap_elems(), shape.co, shape.out_w())
                } else {
                    (shape.ifmap_elems(), shape.ci, shape.wi)
                };
                let src = src_elems as u64 * cfg.elem_bytes;
                let row_run = (width * channels) as u64 * cfg.elem_bytes;
                let transform = lowered as f64 / (cfg.dram.bytes_per_cycle * dram.efficiency(4096))
                    + src as f64 / (cfg.dram.bytes_per_cycle * dram.efficiency(row_run))
                    + cfg.launch_cycles as f64;
                timing.cycles += transform;
                timing.memory_cycles += transform;
                (timing, transform)
            }
            GpuAlgo::Indirect => {
                let t = traffic::pass_implicit(cfg, shape, pass);
                let k = self.k_padded_view(shape, pass, true);
                (self.apply_indirect(shape, pass, t, m, n, k), 0.0)
            }
        };
        GpuLayerReport {
            name: name.to_string(),
            algo,
            timing,
            transform_cycles,
            conv_flops: shape.flops(),
        }
    }

    /// [`GpuSim::simulate_conv`] with kernel stages emitted into `sink`:
    /// a `launch`/`transform`/`exec` span partition of the (rounded) total
    /// on a per-layer track, the overlapped compute and DRAM-traffic
    /// durations on detail tracks, and `gpusim.*` counters.
    pub fn simulate_conv_traced(
        &self,
        name: &str,
        shape: &ConvShape,
        algo: GpuAlgo,
        sink: &mut dyn TraceSink,
    ) -> GpuLayerReport {
        let rep = self.simulate_conv(name, shape, algo);
        let total = rep.timing.cycles.round() as u64;
        // Clamp each stage in turn so the three spans partition the rounded
        // total exactly even at rounding boundaries.
        let launch = self.config.launch_cycles.min(total);
        let transform = (rep.transform_cycles.round() as u64).min(total - launch);
        let exec = total - launch - transform;
        if sink.enabled() {
            let track = format!("{name} [{algo}]");
            sink.span(&track, "launch", 0, launch);
            sink.span(&track, "transform", launch, transform);
            sink.span(&track, "exec", launch + transform, exec);
            let compute = rep.timing.compute_cycles.round() as u64;
            let memory = rep.timing.memory_cycles.round() as u64;
            sink.span(
                &format!("{track} compute"),
                "tensor-core",
                launch + transform,
                compute,
            );
            sink.span(
                &format!("{track} memory"),
                "dram-traffic",
                launch + transform,
                memory,
            );
            sink.counter("gpusim.layers", 1);
            sink.counter("gpusim.cycles", total);
            sink.counter("gpusim.launch_cycles", launch);
            sink.counter("gpusim.transform_cycles", transform);
            sink.counter("gpusim.compute_cycles", compute);
            sink.counter("gpusim.memory_cycles", memory);
            sink.counter("gpusim.blocks", rep.timing.blocks);
            sink.counter("gpusim.flops", rep.timing.flops);
        }
        rep
    }

    /// Simulate every layer of a model; returns per-layer reports (paired
    /// with their occurrence counts) in execution order.
    pub fn simulate_model(&self, model: &Model, algo: GpuAlgo) -> Vec<(GpuLayerReport, usize)> {
        model
            .layers
            .iter()
            .map(|l| (self.simulate_conv(&l.name, &l.shape, algo), l.count))
            .collect()
    }

    /// Total seconds for a model under `algo`.
    pub fn model_seconds(&self, model: &Model, algo: GpuAlgo) -> f64 {
        self.simulate_model(model, algo)
            .iter()
            .map(|(r, k)| r.seconds(&self.config) * *k as f64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim() -> GpuSim {
        GpuSim::new(GpuConfig::v100())
    }

    fn layer(ci: usize, hw: usize, co: usize, f: usize, stride: usize) -> ConvShape {
        ConvShape::square(8, ci, hw, co, f, stride, f / 2).unwrap()
    }

    #[test]
    fn cudnn_proxy_degrades_with_stride() {
        // Fig. 4a: channel-last TFLOPS drop ~30% at stride 2, more at 4.
        let s = sim();
        let t1 = s
            .simulate_conv("l", &layer(128, 56, 128, 3, 1), GpuAlgo::CudnnImplicit)
            .tflops(s.config());
        let t2 = s
            .simulate_conv("l", &layer(128, 56, 128, 3, 2), GpuAlgo::CudnnImplicit)
            .tflops(s.config());
        let drop = 1.0 - t2 / t1;
        assert!(
            drop > 0.15,
            "stride-2 drop only {drop:.2} ({t1:.1} -> {t2:.1})"
        );
    }

    #[test]
    fn channel_first_degrades_less_than_cudnn_under_stride() {
        // On the GPU ours is not perfectly stride-flat (that is the TPU
        // result, Fig. 4b) — but it must degrade substantially less than
        // the channel-last proxy (Fig. 18a).
        let s = sim();
        let ours = GpuAlgo::ChannelFirst { reuse: true };
        let t1 = s
            .simulate_conv("l", &layer(128, 56, 128, 3, 1), ours)
            .tflops(s.config());
        let t2 = s
            .simulate_conv("l", &layer(128, 56, 128, 3, 2), ours)
            .tflops(s.config());
        let our_drop = 1.0 - t2 / t1;
        let c1 = s
            .simulate_conv("l", &layer(128, 56, 128, 3, 1), GpuAlgo::CudnnImplicit)
            .tflops(s.config());
        let c2 = s
            .simulate_conv("l", &layer(128, 56, 128, 3, 2), GpuAlgo::CudnnImplicit)
            .tflops(s.config());
        let cudnn_drop = 1.0 - c2 / c1;
        assert!(
            our_drop < 0.45,
            "stride-2 drop {our_drop:.2} ({t1:.1} -> {t2:.1})"
        );
        assert!(
            our_drop < cudnn_drop,
            "ours {our_drop:.2} vs cudnn {cudnn_drop:.2}"
        );
    }

    #[test]
    fn ours_beats_cudnn_on_strided_layers() {
        // Fig. 18a: ours faster where stride > 1.
        let s = sim();
        let shape = layer(128, 56, 128, 3, 2);
        let ours = s.simulate_conv("l", &shape, GpuAlgo::ChannelFirst { reuse: true });
        let cudnn = s.simulate_conv("l", &shape, GpuAlgo::CudnnImplicit);
        assert!(
            ours.timing.cycles < cudnn.timing.cycles,
            "ours {} vs cudnn {}",
            ours.timing.cycles,
            cudnn.timing.cycles
        );
    }

    #[test]
    fn near_parity_on_dense_layers() {
        // Fig. 17: within a few percent at stride 1.
        let s = sim();
        let shape = layer(512, 14, 512, 3, 1);
        let ours = s.simulate_conv("l", &shape, GpuAlgo::ChannelFirst { reuse: true });
        let cudnn = s.simulate_conv("l", &shape, GpuAlgo::CudnnImplicit);
        let ratio = ours.timing.cycles / cudnn.timing.cycles;
        assert!((0.9..1.1).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn explicit_slower_than_implicit() {
        // Fig. 2a: explicit ≈ 25-30% slower; its GEMM portion ≈ the implicit
        // time.
        let s = sim();
        let shape = layer(512, 14, 512, 3, 1);
        let exp = s.simulate_conv("l", &shape, GpuAlgo::ExplicitIm2col);
        let imp = s.simulate_conv("l", &shape, GpuAlgo::CudnnImplicit);
        assert!(exp.timing.cycles > imp.timing.cycles);
        assert!(exp.transform_cycles > 0.0);
        let gemm_only = exp.timing.cycles - exp.transform_cycles;
        let ratio = gemm_only / imp.timing.cycles;
        assert!((0.6..1.4).contains(&ratio), "GEMM-portion ratio {ratio}");
    }

    #[test]
    fn gemm_reference_faster_than_implicit_under_stride() {
        // Fig. 4a: the equivalent GEMM's TFLOPS stay high under stride.
        let s = sim();
        let shape = layer(128, 56, 128, 3, 4);
        let gemm = s.simulate_conv("l", &shape, GpuAlgo::GemmEquivalent);
        let cudnn = s.simulate_conv("l", &shape, GpuAlgo::CudnnImplicit);
        assert!(gemm.tflops(s.config()) > cudnn.tflops(s.config()));
    }

    #[test]
    fn reuse_helps_memory_bound_layers() {
        // Fig. 18b: the reordering speeds up layers whose fills are not
        // fully overlapped.
        let s = sim();
        let shape = layer(32, 112, 32, 3, 2); // shallow channels: memory bound
        let with = s.simulate_conv("l", &shape, GpuAlgo::ChannelFirst { reuse: true });
        let without = s.simulate_conv("l", &shape, GpuAlgo::ChannelFirst { reuse: false });
        assert!(
            with.timing.cycles < without.timing.cycles,
            "with {} vs without {}",
            with.timing.cycles,
            without.timing.cycles
        );
    }

    #[test]
    fn traced_stages_partition_rounded_cycles() {
        use iconv_trace::Recorder;
        let s = sim();
        let shape = layer(128, 28, 128, 3, 2);
        for algo in [
            GpuAlgo::CudnnImplicit,
            GpuAlgo::ChannelFirst { reuse: true },
            GpuAlgo::ExplicitIm2col,
            GpuAlgo::GemmEquivalent,
            GpuAlgo::Indirect,
        ] {
            let mut rec = Recorder::new();
            let rep = s.simulate_conv_traced("l", &shape, algo, &mut rec);
            let track = format!("l [{algo}]");
            assert_eq!(
                rec.track_total(&track),
                rep.timing.cycles.round() as u64,
                "{algo}"
            );
            assert_eq!(rec.counters()["gpusim.blocks"], rep.timing.blocks);
            // Traced and plain runs agree.
            assert_eq!(rep, s.simulate_conv("l", &shape, algo));
        }
    }

    #[test]
    fn model_simulation_runs() {
        let s = sim();
        let m = iconv_workloads::alexnet(8);
        let secs = s.model_seconds(&m, GpuAlgo::CudnnImplicit);
        assert!(secs > 0.0 && secs < 1.0, "{secs}");
    }

    const ALL_ALGOS: [GpuAlgo; 6] = [
        GpuAlgo::CudnnImplicit,
        GpuAlgo::ChannelFirst { reuse: true },
        GpuAlgo::ChannelFirst { reuse: false },
        GpuAlgo::ExplicitIm2col,
        GpuAlgo::GemmEquivalent,
        GpuAlgo::Indirect,
    ];

    #[test]
    fn forward_pass_is_simulate_conv() {
        let s = sim();
        let shape = layer(128, 28, 128, 3, 2);
        for algo in ALL_ALGOS {
            assert_eq!(
                s.simulate_pass("l", &shape, iconv_core::ConvPass::Forward, algo),
                s.simulate_conv("l", &shape, algo),
                "{algo}"
            );
        }
    }

    #[test]
    fn every_pass_times_every_algo() {
        let s = sim();
        for shape in [layer(96, 27, 256, 5, 2), layer(3, 224, 64, 7, 2)] {
            for pass in iconv_core::ALL_PASSES {
                for algo in ALL_ALGOS {
                    let rep = s.simulate_pass("l", &shape, pass, algo);
                    assert!(
                        rep.timing.cycles.is_finite() && rep.timing.cycles > 0.0,
                        "{pass}/{algo}: {}",
                        rep.timing.cycles
                    );
                    assert_eq!(rep.conv_flops, shape.flops(), "{pass}/{algo}");
                }
            }
        }
    }

    #[test]
    fn transpose_pass_costs_exactly_like_dgrad() {
        let s = sim();
        let shape = layer(128, 28, 256, 3, 2);
        for algo in ALL_ALGOS {
            let d = s.simulate_pass("l", &shape, iconv_core::ConvPass::Dgrad, algo);
            let t = s.simulate_pass("l", &shape, iconv_core::ConvPass::Transpose, algo);
            assert_eq!(d.timing, t.timing, "{algo}");
        }
    }

    #[test]
    fn indirect_traffic_sits_between_implicit_and_explicit() {
        let s = sim();
        let cfg = s.config();
        let shape = layer(128, 28, 256, 3, 1);
        for pass in iconv_core::ALL_PASSES {
            let (m, n, k_view) = pass.gemm_mnk(&shape);
            let imp = traffic::pass_implicit(cfg, &shape, pass).total();
            let ptr = pass.indirect_ptr_entries(&shape) as u64 * 8;
            let ind = imp + ptr;
            // Explicit lowers the view to DRAM and reads it back on top of
            // the GEMM's own streams.
            let exp = traffic::view_gemm(cfg, m, n, k_view).total()
                + pass.lowered_view_elems(&shape) as u64 * cfg.elem_bytes;
            assert!(ind > imp, "{pass}: pointer table adds traffic");
            assert!(ind < exp, "{pass}: indirect {ind} vs explicit {exp}");
        }
    }

    #[test]
    fn indirect_dereference_slows_the_kernel() {
        let s = sim();
        let shape = layer(128, 28, 256, 3, 1);
        for pass in iconv_core::ALL_PASSES {
            let ind = s.simulate_pass("l", &shape, pass, GpuAlgo::Indirect);
            let imp = s.simulate_pass("l", &shape, pass, GpuAlgo::ChannelFirst { reuse: true });
            assert!(
                ind.timing.cycles > imp.timing.cycles,
                "{pass}: indirect {} vs implicit {}",
                ind.timing.cycles,
                imp.timing.cycles
            );
        }
    }
}
