//! Wave-level kernel timing: thread-block compute/fill overlap on the SM
//! fleet.

use crate::config::GpuConfig;
use crate::traffic::Traffic;

/// Timing result for one kernel (= one conv layer under one schedule).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelTiming {
    /// Total cycles including launch overhead.
    pub cycles: f64,
    /// Pure tensor-core compute cycles (chip-level, occupancy-adjusted).
    pub compute_cycles: f64,
    /// Pure DRAM transfer cycles (efficiency-adjusted).
    pub memory_cycles: f64,
    /// Thread blocks launched.
    pub blocks: u64,
    /// FLOPs performed.
    pub flops: u64,
}

impl KernelTiming {
    /// Achieved TFLOPS.
    pub fn tflops(&self, cfg: &GpuConfig) -> f64 {
        if self.cycles == 0.0 {
            return 0.0;
        }
        self.flops as f64 / cfg.cycles_to_seconds(self.cycles) / 1e12
    }

    /// Wall-clock seconds.
    pub fn seconds(&self, cfg: &GpuConfig) -> f64 {
        cfg.cycles_to_seconds(self.cycles)
    }
}

/// How many ways the kernel-selection heuristic may split a thread-block
/// tile to restore occupancy on small problems (e.g. 128×128 → four 64×64
/// tiles), mirroring cuDNN's per-shape kernel choice.
const TILE_SPLIT_MAX: u64 = 4;

/// Time a blocked GEMM of `m × n × k_padded` (the K already padded to the
/// schedule's slice granularity) with the given global-memory traffic.
///
/// The kernel is modeled as waves of `sms × blocks_per_sm` concurrent
/// blocks; within a block, shared-memory fills are double-buffered against
/// tensor-core slices, so the kernel costs `max(compute, fill)`. When the
/// launch has fewer blocks than the machine has slots, the kernel-selection
/// heuristic splits tiles (up to `TILE_SPLIT_MAX` = 4×) to restore occupancy;
/// the residual shortfall shows up as an occupancy factor on compute.
/// `fill_penalty` multiplies the `A`-side transfer time (used for the
/// channel-last schedule's strided shared-memory bank conflicts).
pub fn time_kernel_with_penalty(
    cfg: &GpuConfig,
    m: usize,
    n: usize,
    k_padded: usize,
    traffic: &Traffic,
    sw_efficiency: f64,
    fill_penalty: f64,
) -> KernelTiming {
    let dram = iconv_dram::DramModel::new(cfg.dram);
    let blocks_m = m.div_ceil(cfg.block.bm) as u64;
    let blocks_n = n.div_ceil(cfg.block.bn) as u64;
    let blocks = blocks_m * blocks_n;

    // Compute: every block runs the padded tile GEMM.
    let block_macs = (cfg.block.bm * cfg.block.bn * k_padded) as u64;
    let total_macs = blocks * block_macs;
    let concurrency = (cfg.sms * cfg.blocks_per_sm) as f64;
    let occupancy = ((blocks * TILE_SPLIT_MAX) as f64 / concurrency).min(1.0);
    let chip_rate = (cfg.sms as u64 * cfg.tc_macs_per_sm_cycle) as f64;
    let compute_cycles = total_macs as f64 / chip_rate / occupancy / sw_efficiency;

    // Memory: all concurrent blocks share the chip bandwidth.
    let eff = dram.efficiency(traffic.a_run_bytes.max(1));
    let a_cycles = traffic.a_bytes as f64 / (cfg.dram.bytes_per_cycle * eff) * fill_penalty;
    let bc_eff = dram.efficiency(4096);
    let bc_cycles =
        (traffic.b_bytes + traffic.c_bytes) as f64 / (cfg.dram.bytes_per_cycle * bc_eff);
    let memory_cycles = a_cycles + bc_cycles;

    // Schedule knob: the cp.async-style double-buffered prefetch (the CUDA
    // SDK kernel the paper models, and the default) overlaps fills with
    // compute; the single-buffered reference serializes them.
    let overlapped = match cfg.schedule {
        iconv_core::PipelineSchedule::DoubleBuffered => compute_cycles.max(memory_cycles),
        iconv_core::PipelineSchedule::SingleBuffered => compute_cycles + memory_cycles,
    };

    KernelTiming {
        cycles: overlapped + cfg.launch_cycles as f64,
        compute_cycles,
        memory_cycles,
        blocks,
        flops: 2 * total_macs,
    }
}

/// [`time_kernel_with_penalty`] without a fill penalty.
pub fn time_kernel(
    cfg: &GpuConfig,
    m: usize,
    n: usize,
    k_padded: usize,
    traffic: &Traffic,
    sw_efficiency: f64,
) -> KernelTiming {
    time_kernel_with_penalty(cfg, m, n, k_padded, traffic, sw_efficiency, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> GpuConfig {
        GpuConfig::v100()
    }

    fn dense_traffic(m: usize, n: usize, k: usize) -> Traffic {
        let eb = cfg().elem_bytes;
        Traffic {
            a_bytes: (m * k) as u64 * eb,
            b_bytes: (k * n) as u64 * eb,
            c_bytes: (m * n) as u64 * eb,
            a_run_bytes: 4096,
        }
    }

    #[test]
    fn big_gemm_near_peak() {
        let (m, n, k) = (16384, 4096, 4096);
        let t = time_kernel(&cfg(), m, n, k, &dense_traffic(m, n, k), 1.0);
        let tf = t.tflops(&cfg());
        assert!(tf > 0.85 * cfg().peak_tflops(), "{tf} TFLOPS");
    }

    #[test]
    fn small_kernel_dominated_by_launch() {
        let t = time_kernel(&cfg(), 128, 128, 64, &dense_traffic(128, 128, 64), 1.0);
        assert!(t.cycles >= cfg().launch_cycles as f64);
        assert!(t.tflops(&cfg()) < 0.1 * cfg().peak_tflops());
    }

    #[test]
    fn memory_bound_kernel_limited_by_traffic() {
        // Tiny K: almost no compute per byte.
        let (m, n, k) = (131072, 128, 32);
        let t = time_kernel(&cfg(), m, n, k, &dense_traffic(m, n, k), 1.0);
        assert!(t.memory_cycles > t.compute_cycles);
        assert!(t.cycles >= t.memory_cycles);
    }

    #[test]
    fn sw_efficiency_slows_compute_bound_kernels() {
        let (m, n, k) = (16384, 4096, 4096);
        let fast = time_kernel(&cfg(), m, n, k, &dense_traffic(m, n, k), 1.0);
        let slow = time_kernel(&cfg(), m, n, k, &dense_traffic(m, n, k), 0.9);
        assert!(slow.cycles > fast.cycles);
    }

    #[test]
    fn waves_scale_with_blocks() {
        let t1 = time_kernel(
            &cfg(),
            128 * 160,
            128,
            512,
            &dense_traffic(128 * 160, 128, 512),
            1.0,
        );
        let t2 = time_kernel(
            &cfg(),
            128 * 320,
            128,
            512,
            &dense_traffic(128 * 320, 128, 512),
            1.0,
        );
        let ratio = t2.compute_cycles / t1.compute_cycles;
        assert!((ratio - 2.0).abs() < 0.05, "ratio {ratio}");
    }

    #[test]
    fn single_buffered_reference_serializes_fill_and_compute() {
        use iconv_core::PipelineSchedule;
        let sb_cfg = GpuConfig::builder()
            .schedule(PipelineSchedule::SingleBuffered)
            .build()
            .unwrap();
        let (m, n, k) = (16384, 4096, 4096);
        let t = dense_traffic(m, n, k);
        let db = time_kernel(&cfg(), m, n, k, &t, 1.0);
        let sb = time_kernel(&sb_cfg, m, n, k, &t, 1.0);
        // Default is double-buffered (the knob preserves historical numbers).
        assert_eq!(cfg().schedule, PipelineSchedule::DoubleBuffered);
        let launch = cfg().launch_cycles as f64;
        assert_eq!(db.cycles, db.compute_cycles.max(db.memory_cycles) + launch);
        assert_eq!(sb.cycles, sb.compute_cycles + sb.memory_cycles + launch);
        assert!(sb.cycles > db.cycles);
    }
}
