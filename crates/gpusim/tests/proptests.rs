//! Property-based sanity of the GPU model over randomized layers.

use iconv_gpusim::{GpuAlgo, GpuConfig, GpuSim};
use iconv_models::Roofline;
use iconv_tensor::ConvShape;
use proptest::prelude::*;

fn conv_shapes() -> impl Strategy<Value = ConvShape> {
    (
        1usize..=8, // n
        prop::sample::select(vec![16usize, 32, 64, 128]),
        1usize..=3, // hf=wf
        prop::sample::select(vec![16usize, 64, 128]),
        1usize..=2, // stride
        prop::sample::select(vec![7usize, 14, 28]),
    )
        .prop_filter_map("valid", |(n, ci, f, co, s, hw)| {
            ConvShape::new(n, ci, hw, hw, co, f, f)
                .stride(s)
                .pad(f / 2)
                .build()
                .ok()
        })
}

fn all_algos() -> Vec<GpuAlgo> {
    vec![
        GpuAlgo::CudnnImplicit,
        GpuAlgo::ChannelFirst { reuse: true },
        GpuAlgo::ChannelFirst { reuse: false },
        GpuAlgo::ExplicitIm2col,
        GpuAlgo::GemmEquivalent,
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// No schedule beats the chip's compute roofline on useful FLOPs.
    #[test]
    fn never_beats_compute_roofline(shape in conv_shapes()) {
        let sim = GpuSim::new(GpuConfig::v100());
        let roof = Roofline::v100();
        for algo in all_algos() {
            let r = sim.simulate_conv("l", &shape, algo);
            let min = shape.macs() as f64 / roof.macs_per_cycle;
            prop_assert!(
                r.timing.cycles >= min * 0.999,
                "{algo}: {} cycles < compute roofline {min:.0}",
                r.timing.cycles
            );
        }
    }

    /// Reuse never hurts: the reordered schedule is never slower than the
    /// no-reuse one.
    #[test]
    fn reuse_never_slower(shape in conv_shapes()) {
        let sim = GpuSim::new(GpuConfig::v100());
        let with = sim.simulate_conv("l", &shape, GpuAlgo::ChannelFirst { reuse: true });
        let without = sim.simulate_conv("l", &shape, GpuAlgo::ChannelFirst { reuse: false });
        prop_assert!(
            with.timing.cycles <= without.timing.cycles * 1.0001,
            "reuse slower: {} vs {}",
            with.timing.cycles,
            without.timing.cycles
        );
    }

    /// The explicit algorithm is never faster than the plain GEMM of the
    /// same lowered problem (it runs that GEMM *plus* a transform).
    #[test]
    fn explicit_slower_than_its_own_gemm(shape in conv_shapes()) {
        let sim = GpuSim::new(GpuConfig::v100());
        let exp = sim.simulate_conv("l", &shape, GpuAlgo::ExplicitIm2col);
        let gemm = sim.simulate_conv("l", &shape, GpuAlgo::GemmEquivalent);
        prop_assert!(exp.timing.cycles > gemm.timing.cycles);
        prop_assert!(exp.transform_cycles > 0.0);
    }

    /// Every timing is at least the launch overhead and all components are
    /// non-negative and consistent.
    #[test]
    fn timings_are_sane(shape in conv_shapes()) {
        let sim = GpuSim::new(GpuConfig::v100());
        for algo in all_algos() {
            let r = sim.simulate_conv("l", &shape, algo);
            prop_assert!(r.timing.cycles >= sim.config().launch_cycles as f64);
            prop_assert!(r.timing.compute_cycles >= 0.0 && r.timing.memory_cycles >= 0.0);
            prop_assert!(r.timing.blocks > 0);
            let tf = r.tflops(sim.config());
            prop_assert!(tf >= 0.0 && tf <= sim.config().peak_tflops() * 1.001, "{tf}");
        }
    }

    /// Batch scaling is monotone and at most mildly superlinear.
    #[test]
    fn batch_monotone(shape in conv_shapes()) {
        let sim = GpuSim::new(GpuConfig::v100());
        let double = ConvShape { n: shape.n * 2, ..shape };
        for algo in [GpuAlgo::CudnnImplicit, GpuAlgo::ChannelFirst { reuse: true }] {
            let a = sim.simulate_conv("l", &shape, algo).timing.cycles;
            let b = sim.simulate_conv("l", &double, algo).timing.cycles;
            prop_assert!(b >= a * 0.999, "{algo}: batch x2 faster");
            prop_assert!(b <= 2.5 * a, "{algo}: batch x2 superlinear {a} -> {b}");
        }
    }
}
