//! # iconv-workloads
//!
//! Convolution-layer tables for the networks evaluated in the paper:
//! AlexNet, ZFNet, VGG16, ResNet-50, GoogLeNet, DenseNet-121 and YOLOv2
//! (Sec. VI), plus the representative-layer selections used by Figs. 4
//! and 18.
//!
//! ```
//! use iconv_workloads::{resnet50, all_models};
//!
//! let r50 = resnet50(8);
//! assert_eq!(r50.layers.len(), 53);
//! assert_eq!(all_models(8).len(), 7);
//! ```

pub mod layer;
pub mod nets;

pub use layer::{Layer, Model};
pub use nets::{
    alexnet, all_models, dcgan_generator, densenet121, googlenet, mobilenet_v1, resnet50,
    resnet_representative_layers, table1_models, transpose_models, unet, vgg16, yolov2, zfnet,
};
