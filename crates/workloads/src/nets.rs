//! Convolution-layer tables for the seven networks evaluated in the paper
//! (Sec. VI "Workload"): AlexNet, ZFNet, VGG16, ResNet-50, GoogLeNet,
//! DenseNet-121 and YOLOv2. ImageNet-scale inputs (YOLOv2 uses its native
//! 416×416 detection resolution).

use crate::layer::{conv, Layer, Model};
use iconv_tensor::ConvShape;

/// AlexNet (Krizhevsky et al. 2012), 227×227 input, 5 conv layers.
pub fn alexnet(n: usize) -> Model {
    Model {
        name: "AlexNet",
        layers: vec![
            conv("conv1", n, 3, 227, 96, 11, 4, 0),
            conv("conv2", n, 96, 27, 256, 5, 1, 2),
            conv("conv3", n, 256, 13, 384, 3, 1, 1),
            conv("conv4", n, 384, 13, 384, 3, 1, 1),
            conv("conv5", n, 384, 13, 256, 3, 1, 1),
        ],
    }
}

/// ZFNet (Zeiler & Fergus 2014), 224×224 input, 5 conv layers.
pub fn zfnet(n: usize) -> Model {
    Model {
        name: "ZFNet",
        layers: vec![
            conv("conv1", n, 3, 224, 96, 7, 2, 1),
            conv("conv2", n, 96, 55, 256, 5, 2, 0),
            conv("conv3", n, 256, 13, 384, 3, 1, 1),
            conv("conv4", n, 384, 13, 384, 3, 1, 1),
            conv("conv5", n, 384, 13, 256, 3, 1, 1),
        ],
    }
}

/// VGG-16 (Simonyan & Zisserman 2014), 13 conv layers, all 3×3 stride 1.
pub fn vgg16(n: usize) -> Model {
    let mut layers = Vec::new();
    let stages: [(usize, usize, usize, usize); 5] = [
        // (in_ch at stage start, out_ch, spatial, convs)
        (3, 64, 224, 2),
        (64, 128, 112, 2),
        (128, 256, 56, 3),
        (256, 512, 28, 3),
        (512, 512, 14, 3),
    ];
    for (stage, &(cin, cout, hw, reps)) in stages.iter().enumerate() {
        for i in 0..reps {
            let ci = if i == 0 { cin } else { cout };
            layers.push(conv(
                &format!("conv{}_{}", stage + 1, i + 1),
                n,
                ci,
                hw,
                cout,
                3,
                1,
                1,
            ));
        }
    }
    Model {
        name: "VGG16",
        layers,
    }
}

/// ResNet-50 (He et al. 2016): conv1 plus four bottleneck stages
/// (3, 4, 6, 3 blocks), stride-2 at the first 3×3 of stages 3–5, with
/// 1×1 projection shortcuts.
pub fn resnet50(n: usize) -> Model {
    let mut layers = vec![conv("conv1", n, 3, 224, 64, 7, 2, 3)];
    // (stage, blocks, in_ch, mid_ch, out_ch, in_spatial, stride_of_first)
    let stages = [
        (2usize, 3usize, 64usize, 64usize, 256usize, 56usize, 1usize),
        (3, 4, 256, 128, 512, 56, 2),
        (4, 6, 512, 256, 1024, 28, 2),
        (5, 3, 1024, 512, 2048, 14, 2),
    ];
    for (stage, blocks, in_ch, mid, out, in_hw, first_stride) in stages {
        for b in 0..blocks {
            let (ci, hw, s) = if b == 0 {
                (in_ch, in_hw, first_stride)
            } else {
                (out, in_hw / first_stride, 1)
            };
            let out_hw = hw / s;
            let p = |suffix: &str| format!("conv{stage}_{}_{suffix}", b + 1);
            layers.push(conv(&p("1x1a"), n, ci, hw, mid, 1, 1, 0));
            // Stride applied at the 3x3 (the torchvision-style variant).
            layers.push(conv(&p("3x3"), n, mid, hw, mid, 3, s, 1));
            layers.push(conv(&p("1x1b"), n, mid, out_hw, out, 1, 1, 0));
            if b == 0 {
                layers.push(conv(&p("proj"), n, ci, hw, out, 1, s, 0));
            }
        }
    }
    Model {
        name: "ResNet",
        layers,
    }
}

/// GoogLeNet / Inception-v1 (Szegedy et al. 2015): stem plus nine inception
/// modules.
pub fn googlenet(n: usize) -> Model {
    let mut layers = vec![
        conv("conv1", n, 3, 224, 64, 7, 2, 3),
        conv("conv2_red", n, 64, 56, 64, 1, 1, 0),
        conv("conv2", n, 64, 56, 192, 3, 1, 1),
    ];
    // (name, in_ch, n1x1, n3x3red, n3x3, n5x5red, n5x5, pool_proj, spatial)
    let modules = [
        ("3a", 192, 64, 96, 128, 16, 32, 32, 28),
        ("3b", 256, 128, 128, 192, 32, 96, 64, 28),
        ("4a", 480, 192, 96, 208, 16, 48, 64, 14),
        ("4b", 512, 160, 112, 224, 24, 64, 64, 14),
        ("4c", 512, 128, 128, 256, 24, 64, 64, 14),
        ("4d", 512, 112, 144, 288, 32, 64, 64, 14),
        ("4e", 528, 256, 160, 320, 32, 128, 128, 14),
        ("5a", 832, 256, 160, 320, 32, 128, 128, 7),
        ("5b", 832, 384, 192, 384, 48, 128, 128, 7),
    ];
    for (m, ci, n1, n3r, n3, n5r, n5, pp, hw) in modules {
        layers.push(conv(&format!("inc{m}_1x1"), n, ci, hw, n1, 1, 1, 0));
        layers.push(conv(&format!("inc{m}_3x3red"), n, ci, hw, n3r, 1, 1, 0));
        layers.push(conv(&format!("inc{m}_3x3"), n, n3r, hw, n3, 3, 1, 1));
        layers.push(conv(&format!("inc{m}_5x5red"), n, ci, hw, n5r, 1, 1, 0));
        layers.push(conv(&format!("inc{m}_5x5"), n, n5r, hw, n5, 5, 1, 2));
        layers.push(conv(&format!("inc{m}_pool"), n, ci, hw, pp, 1, 1, 0));
    }
    Model {
        name: "GoogleNet",
        layers,
    }
}

/// DenseNet-121 (Huang et al. 2017): growth rate 32, blocks of
/// (6, 12, 24, 16) layers, each a 1×1 bottleneck (→128) plus 3×3 (→32),
/// with channel-halving 1×1 transitions.
pub fn densenet121(n: usize) -> Model {
    let growth = 32;
    let bottleneck = 4 * growth; // 128
    let mut layers = vec![conv("conv0", n, 3, 224, 64, 7, 2, 3)];
    let mut ch = 64;
    let blocks = [
        (1usize, 6usize, 56usize),
        (2, 12, 28),
        (3, 24, 14),
        (4, 16, 7),
    ];
    for (bi, reps, hw) in blocks {
        for l in 0..reps {
            let p = format!("block{bi}_l{}", l + 1);
            layers.push(conv(&format!("{p}_1x1"), n, ch, hw, bottleneck, 1, 1, 0));
            layers.push(conv(
                &format!("{p}_3x3"),
                n,
                bottleneck,
                hw,
                growth,
                3,
                1,
                1,
            ));
            ch += growth;
        }
        if bi < 4 {
            layers.push(conv(&format!("trans{bi}"), n, ch, hw, ch / 2, 1, 1, 0));
            ch /= 2;
        }
    }
    Model {
        name: "DesNet",
        layers,
    }
}

/// YOLOv2 (Redmon & Farhadi 2016): Darknet-19 backbone at the native
/// 416×416 detection resolution, plus the detection head.
pub fn yolov2(n: usize) -> Model {
    Model {
        name: "YOLO",
        layers: vec![
            conv("conv1", n, 3, 416, 32, 3, 1, 1),
            conv("conv2", n, 32, 208, 64, 3, 1, 1),
            conv("conv3", n, 64, 104, 128, 3, 1, 1),
            conv("conv4", n, 128, 104, 64, 1, 1, 0),
            conv("conv5", n, 64, 104, 128, 3, 1, 1),
            conv("conv6", n, 128, 52, 256, 3, 1, 1),
            conv("conv7", n, 256, 52, 128, 1, 1, 0),
            conv("conv8", n, 128, 52, 256, 3, 1, 1),
            conv("conv9", n, 256, 26, 512, 3, 1, 1),
            conv("conv10", n, 512, 26, 256, 1, 1, 0),
            conv("conv11", n, 256, 26, 512, 3, 1, 1),
            conv("conv12", n, 512, 26, 256, 1, 1, 0),
            conv("conv13", n, 256, 26, 512, 3, 1, 1),
            conv("conv14", n, 512, 13, 1024, 3, 1, 1),
            conv("conv15", n, 1024, 13, 512, 1, 1, 0),
            conv("conv16", n, 512, 13, 1024, 3, 1, 1),
            conv("conv17", n, 1024, 13, 512, 1, 1, 0),
            conv("conv18", n, 512, 13, 1024, 3, 1, 1),
            conv("conv19", n, 1024, 13, 1024, 3, 1, 1),
            conv("conv20", n, 1024, 13, 1024, 3, 1, 1),
            conv("passthrough", n, 512, 26, 64, 1, 1, 0),
            conv("conv21", n, 1280, 13, 1024, 3, 1, 1),
            conv("detect", n, 1024, 13, 425, 1, 1, 0),
        ],
    }
}

/// MobileNetV1 (Howard et al. 2017): depthwise-separable convolutions —
/// *not* in the paper's workload set; included to study how GEMM
/// accelerators cope with grouped/depthwise layers (see the
/// `ablation_depthwise` runner). Depthwise layers carry `groups = ci`.
pub fn mobilenet_v1(n: usize) -> Model {
    let mut layers = vec![conv("conv1", n, 3, 224, 32, 3, 2, 1)];
    // (in_ch, out_ch, spatial at the dw layer, dw stride)
    let blocks = [
        (32usize, 64usize, 112usize, 1usize),
        (64, 128, 112, 2),
        (128, 128, 56, 1),
        (128, 256, 56, 2),
        (256, 256, 28, 1),
        (256, 512, 28, 2),
        (512, 512, 14, 1),
        (512, 512, 14, 1),
        (512, 512, 14, 1),
        (512, 512, 14, 1),
        (512, 512, 14, 1),
        (512, 1024, 14, 2),
        (1024, 1024, 7, 1),
    ];
    for (i, &(cin, cout, hw, s)) in blocks.iter().enumerate() {
        let dw = ConvShape::square(n, cin, hw, cin, 3, s, 1)
            .unwrap_or_else(|e| panic!("bad mobilenet dw{i}: {e}"));
        layers.push(Layer::grouped(format!("dw{}", i + 1), dw, cin));
        layers.push(conv(&format!("pw{}", i + 1), n, cin, hw / s, cout, 1, 1, 0));
    }
    Model {
        name: "MobileNetV1",
        layers,
    }
}

/// DCGAN generator (Radford et al. 2016), 64×64 output: four stride-2
/// 4×4 transposed convolutions on top of the z-projection — *not* in the
/// paper's workload set; included as a transposed-conv-heavy table for the
/// backprop/transpose pass sweeps (`passes` runner, CI pass matrix).
///
/// Each layer is described by its **forward** [`ConvShape`] — the
/// convolution whose `ConvPass::Transpose` pass performs the upsample —
/// so `ci` is the layer's *output* channels and `hw` its *output* spatial
/// size, per the pass-vocabulary convention (DESIGN.md §15).
pub fn dcgan_generator(n: usize) -> Model {
    Model {
        name: "DCGAN-G",
        layers: vec![
            // z (100) 1x1 -> 4x4x1024 full projection.
            conv("tconv1", n, 1024, 4, 100, 4, 1, 0),
            // 4x4x1024 -> 8x8x512, then doubling spatial / halving depth.
            conv("tconv2", n, 512, 8, 1024, 4, 2, 1),
            conv("tconv3", n, 256, 16, 512, 4, 2, 1),
            conv("tconv4", n, 128, 32, 256, 4, 2, 1),
            conv("tconv5", n, 3, 64, 128, 4, 2, 1),
        ],
    }
}

/// U-Net (Ronneberger et al. 2015) at a padded 256×256 resolution:
/// double-conv encoder, 1024-channel bottleneck, and a decoder whose
/// 2×2 stride-2 up-convolutions are transposed convs. Like
/// [`dcgan_generator`], the `up*` layers are described by their forward
/// [`ConvShape`]s; the decoder convs consume concatenated skip channels.
pub fn unet(n: usize) -> Model {
    let mut layers = Vec::new();
    // Encoder: (in_ch, out_ch, spatial) double-conv stages.
    let enc = [
        (3usize, 64usize, 256usize),
        (64, 128, 128),
        (128, 256, 64),
        (256, 512, 32),
        (512, 1024, 16), // bottleneck
    ];
    for (i, &(cin, cout, hw)) in enc.iter().enumerate() {
        let tag = if i == 4 {
            "bott".into()
        } else {
            format!("enc{}", i + 1)
        };
        layers.push(conv(&format!("{tag}a"), n, cin, hw, cout, 3, 1, 1));
        layers.push(conv(&format!("{tag}b"), n, cout, hw, cout, 3, 1, 1));
    }
    // Decoder: up-conv (forward shape of the 2x2 s2 transposed conv) then
    // a double conv over the concatenated skip + upsampled channels.
    let dec = [
        (4usize, 1024usize, 32usize),
        (3, 512, 64),
        (2, 256, 128),
        (1, 128, 256),
    ];
    for (stage, cin, hw) in dec {
        layers.push(conv(&format!("up{stage}"), n, cin / 2, hw, cin, 2, 2, 0));
        layers.push(conv(&format!("dec{stage}a"), n, cin, hw, cin / 2, 3, 1, 1));
        layers.push(conv(
            &format!("dec{stage}b"),
            n,
            cin / 2,
            hw,
            cin / 2,
            3,
            1,
            1,
        ));
    }
    layers.push(conv("head", n, 64, 256, 2, 1, 1, 0));
    Model {
        name: "UNet",
        layers,
    }
}

/// The transposed-conv-heavy tables ([`dcgan_generator`], [`unet`]) used
/// by the pass sweeps.
pub fn transpose_models(n: usize) -> Vec<Model> {
    vec![dcgan_generator(n), unet(n)]
}

/// All seven evaluated networks at batch size `n`, in the paper's figure
/// order.
pub fn all_models(n: usize) -> Vec<Model> {
    vec![
        alexnet(n),
        densenet121(n),
        googlenet(n),
        resnet50(n),
        vgg16(n),
        yolov2(n),
        zfnet(n),
    ]
}

/// The five networks of Table I (memory-overhead comparison).
pub fn table1_models(n: usize) -> Vec<Model> {
    vec![alexnet(n), resnet50(n), vgg16(n), yolov2(n), densenet121(n)]
}

/// The representative ResNet layers of Fig. 4 / Fig. 18, labelled by
/// `(Wi, Ci, Co, Wf)` as in the paper's x-axes, at the requested stride.
///
/// These are the unique 3×3 bottleneck shapes of ResNet-50's four stages.
pub fn resnet_representative_layers(n: usize, stride: usize) -> Vec<Layer> {
    [
        (56usize, 64usize, 64usize, 3usize),
        (56, 128, 128, 3),
        (28, 256, 256, 3),
        (14, 512, 512, 3),
    ]
    .iter()
    .map(|&(wi, ci, co, wf)| {
        Layer::new(
            format!("{wi}-{ci}-{co}-{wf}-s{stride}"),
            ConvShape::square(n, ci, wi, co, wf, stride, wf / 2).expect("valid table entry"),
        )
    })
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layer_counts_match_architectures() {
        assert_eq!(alexnet(1).layers.len(), 5);
        assert_eq!(zfnet(1).layers.len(), 5);
        assert_eq!(vgg16(1).layers.len(), 13);
        // ResNet-50: 1 + (3+4+6+3)*3 + 4 projections = 53.
        assert_eq!(resnet50(1).layers.len(), 53);
        // GoogLeNet: 3 stem + 9 modules × 6 convs = 57.
        assert_eq!(googlenet(1).layers.len(), 57);
        // DenseNet-121: 1 + 58*2 + 3 transitions = 120.
        assert_eq!(densenet121(1).layers.len(), 120);
        assert_eq!(yolov2(1).layers.len(), 23);
    }

    #[test]
    fn flops_in_published_ballpark() {
        // Published conv-FLOP counts (N=1, multiply-add = 2 FLOPs):
        // VGG16 ≈ 30.7 G, ResNet-50 ≈ 7.7 G (conv-only ≈ 7), AlexNet ≈ 1.3 G.
        let v = vgg16(1).total_flops() as f64 / 1e9;
        assert!((28.0..33.0).contains(&v), "VGG16 {v} GFLOPs");
        let r = resnet50(1).total_flops() as f64 / 1e9;
        assert!((6.5..8.5).contains(&r), "ResNet-50 {r} GFLOPs");
        // AlexNet here is the ungrouped (single-GPU) variant: ~2.2 G vs the
        // original 2-group network's ~1.3 G.
        let a = alexnet(1).total_flops() as f64 / 1e9;
        assert!((1.8..2.4).contains(&a), "AlexNet {a} GFLOPs");
        let g = googlenet(1).total_flops() as f64 / 1e9;
        assert!((2.5..3.5).contains(&g), "GoogLeNet {g} GFLOPs");
    }

    #[test]
    fn channel_chains_are_consistent() {
        // Every model: the input channels of layer i+1 must be producible
        // from some earlier layer's output channels (sequential nets: exactly
        // the previous layer's Co). Check the strictly sequential ones.
        for m in [alexnet(1), zfnet(1), vgg16(1)] {
            for w in m.layers.windows(2) {
                assert_eq!(
                    w[1].shape.ci, w[0].shape.co,
                    "{}: {} -> {}",
                    m.name, w[0].name, w[1].name
                );
            }
        }
    }

    #[test]
    fn spatial_dims_produce_integer_outputs() {
        for m in all_models(1) {
            for l in &m.layers {
                // ConvShape::square already validated; check output nonzero.
                assert!(
                    l.shape.out_h() > 0 && l.shape.out_w() > 0,
                    "{} {}",
                    m.name,
                    l
                );
            }
        }
    }

    #[test]
    fn densenet_channel_growth() {
        let d = densenet121(1);
        // Last dense layer of block 4 consumes 512 + 15*32 = 992 channels.
        let last_1x1 = d
            .layers
            .iter()
            .find(|l| l.name == "block4_l16_1x1")
            .expect("layer exists");
        assert_eq!(last_1x1.shape.ci, 992);
    }

    #[test]
    fn resnet_strided_blocks_present() {
        let r = resnet50(1);
        let strided = r.strided_layers();
        // conv1 + (3x3 + proj) at stages 3, 4, 5 = 7 strided layers.
        assert_eq!(strided.len(), 7);
        assert!(strided.iter().all(|l| l.shape.stride_h == 2));
    }

    #[test]
    fn table1_duplication_ratios_match_paper_shape() {
        // Paper Table I: lowered IFMaps are 1.5x-10.5x the raw IFMaps.
        for m in table1_models(64) {
            let ratio = m.lowered_bytes(4) as f64 / m.ifmap_bytes(4) as f64;
            assert!(
                (1.3..12.0).contains(&ratio),
                "{}: lowered/ifmap = {ratio:.2}",
                m.name
            );
        }
        // VGG16 is 3x3-dominated: close to 9x.
        let v = vgg16(64);
        let ratio = v.lowered_bytes(4) as f64 / v.ifmap_bytes(4) as f64;
        assert!((7.0..9.2).contains(&ratio), "VGG16 ratio {ratio:.2}");
    }

    #[test]
    fn representative_layers_follow_label_format() {
        let layers = resnet_representative_layers(8, 2);
        assert_eq!(layers.len(), 4);
        assert_eq!(layers[0].name, "56-64-64-3-s2");
        assert_eq!(layers[0].shape.stride_h, 2);
        assert_eq!(layers[0].shape.n, 8);
    }

    #[test]
    fn mobilenet_structure_and_flops() {
        let m = mobilenet_v1(1);
        // 1 stem + 13 x (dw + pw) = 27 layers.
        assert_eq!(m.layers.len(), 27);
        // Published MobileNetV1 ≈ 1.1 GFLOPs (multiply-add = 2).
        let g = m.total_flops() as f64 / 1e9;
        assert!((0.9..1.3).contains(&g), "MobileNetV1 {g} GFLOPs");
        // Depthwise layers carry their group counts.
        let dw1 = m.layers.iter().find(|l| l.name == "dw1").unwrap();
        assert_eq!(dw1.groups, 32);
        assert_eq!(dw1.shape.ci, 32);
        // Depthwise FLOPs are tiny next to the pointwise partner.
        let pw1 = m.layers.iter().find(|l| l.name == "pw1").unwrap();
        assert!(pw1.total_flops() > 3 * dw1.total_flops());
    }

    #[test]
    fn transpose_tables_are_upconv_heavy() {
        let models = transpose_models(1);
        assert_eq!(models.len(), 2);

        let g = &models[0];
        assert_eq!(g.name, "DCGAN-G");
        assert_eq!(g.layers.len(), 5);
        // Four of five generator layers are stride-2 4x4 upsamples.
        let strided = g.layers.iter().filter(|l| l.shape.stride_h == 2).count();
        assert_eq!(strided, 4);
        assert!(g.layers.iter().all(|l| l.shape.hf == 4));
        // Forward-shape convention: depth halves / spatial doubles going up
        // the generator, so consecutive forward shapes chain co -> ci.
        for w in g.layers.windows(2) {
            assert_eq!(w[0].shape.ci, w[1].shape.co);
        }

        let u = &models[1];
        assert_eq!(u.name, "UNet");
        // 5 double-conv stages + 4 x (up + double conv) + 1x1 head = 23.
        assert_eq!(u.layers.len(), 23);
        let ups: Vec<_> = u
            .layers
            .iter()
            .filter(|l| l.name.starts_with("up"))
            .collect();
        assert_eq!(ups.len(), 4);
        // Every up-conv is the forward shape of a 2x2 stride-2 transposed
        // conv that exactly doubles the spatial size: out = hw / 2.
        for l in &ups {
            assert_eq!((l.shape.hf, l.shape.stride_h, l.shape.pad_h), (2, 2, 0));
            assert_eq!(l.shape.out_h(), l.shape.hi / 2);
            assert_eq!(l.shape.co, 2 * l.shape.ci);
        }
    }

    #[test]
    fn batch_size_scales_flops_linearly() {
        let f1 = resnet50(1).total_flops();
        let f8 = resnet50(8).total_flops();
        assert_eq!(f8, 8 * f1);
    }
}
