//! Layer and model descriptors.

use iconv_tensor::ConvShape;
use std::fmt;

/// One convolution layer of a network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Layer {
    /// Layer name as usually written for the network (e.g. `conv3_2`).
    pub name: String,
    /// The convolution shape (batch size baked in by the model constructor).
    pub shape: ConvShape,
    /// How many times this exact layer occurs in the network (weights
    /// differ; timing does not), so end-to-end sums stay honest without
    /// duplicating table rows.
    pub count: usize,
    /// Channel groups (`1` = dense, `ci` = depthwise). The `shape` carries
    /// the *full* channel extents; FLOPs divide by `groups`.
    pub groups: usize,
}

impl Layer {
    /// Construct a layer occurring once.
    pub fn new(name: impl Into<String>, shape: ConvShape) -> Self {
        Self {
            name: name.into(),
            shape,
            count: 1,
            groups: 1,
        }
    }

    /// Construct a layer occurring `count` times.
    pub fn repeated(name: impl Into<String>, shape: ConvShape, count: usize) -> Self {
        Self {
            name: name.into(),
            shape,
            count,
            groups: 1,
        }
    }

    /// Construct a grouped (or depthwise, `groups = ci`) layer.
    pub fn grouped(name: impl Into<String>, shape: ConvShape, groups: usize) -> Self {
        debug_assert_eq!(shape.ci % groups, 0, "groups must divide ci");
        debug_assert_eq!(shape.co % groups, 0, "groups must divide co");
        Self {
            name: name.into(),
            shape,
            count: 1,
            groups,
        }
    }

    /// Total FLOPs contributed by all occurrences (grouped layers do `1/G`
    /// of the dense work).
    pub fn total_flops(&self) -> u64 {
        self.shape.flops() / self.groups as u64 * self.count as u64
    }
}

impl fmt::Display for Layer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}]", self.name, self.shape)?;
        if self.count > 1 {
            write!(f, " x{}", self.count)?;
        }
        Ok(())
    }
}

/// A CNN described by its convolution layers.
///
/// Only convolutions are listed: they dominate runtime on GEMM accelerators
/// and are the paper's entire subject. Pooling/BN/activation are omitted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Model {
    /// Network name as used in the paper's figures.
    pub name: &'static str,
    /// The convolution layers, in execution order.
    pub layers: Vec<Layer>,
}

impl Model {
    /// Total FLOPs of the convolution layers.
    pub fn total_flops(&self) -> u64 {
        self.layers.iter().map(Layer::total_flops).sum()
    }

    /// Total distinct conv layer instances (expanding `count`).
    pub fn layer_instances(&self) -> usize {
        self.layers.iter().map(|l| l.count).sum()
    }

    /// Layers with any stride greater than one (the Fig. 18a selection).
    pub fn strided_layers(&self) -> Vec<&Layer> {
        self.layers
            .iter()
            .filter(|l| l.shape.stride_h > 1 || l.shape.stride_w > 1)
            .collect()
    }

    /// Sum of IFMap bytes across layer instances (Table I "IFmaps" row).
    pub fn ifmap_bytes(&self, elem_bytes: usize) -> u64 {
        self.layers
            .iter()
            .map(|l| iconv_tensor::im2col::ifmap_bytes(&l.shape, elem_bytes) * l.count as u64)
            .sum()
    }

    /// Sum of lowered-matrix bytes (Table I "Lower IFmaps" row).
    pub fn lowered_bytes(&self, elem_bytes: usize) -> u64 {
        self.layers
            .iter()
            .map(|l| iconv_tensor::im2col::lowered_bytes(&l.shape, elem_bytes) * l.count as u64)
            .sum()
    }
}

impl fmt::Display for Model {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} conv layers, {:.2} GFLOPs)",
            self.name,
            self.layer_instances(),
            self.total_flops() as f64 / 1e9
        )
    }
}

/// Build a square conv layer; panics on inconsistent dims (tables are
/// static, so a panic is a compile-time-style table bug).
#[allow(clippy::too_many_arguments)] // mirrors the paper table columns
pub(crate) fn conv(
    name: &str,
    n: usize,
    ci: usize,
    hw: usize,
    co: usize,
    f: usize,
    stride: usize,
    pad: usize,
) -> Layer {
    Layer::new(
        name,
        ConvShape::square(n, ci, hw, co, f, stride, pad)
            .unwrap_or_else(|e| panic!("bad table entry {name}: {e}")),
    )
}
