//! Property-based tests of the channel-first algorithm's invariants:
//! decomposition completeness, schedule coverage, address-stream
//! correctness, and working-set algebra — over randomized shapes.

use iconv_core::addrgen::{AddrGen, VectorMemSpec};
use iconv_core::block::{reordered_taps, BlockConfig, BlockDecomposition, FetchOrder};
use iconv_core::decompose::FilterTile;
use iconv_core::schedule::{tpu_group_size, TileSchedule};
use iconv_tensor::conv_ref::{direct_conv, filter_dims, ifmap_dims};
use iconv_tensor::{ColumnOrder, ConvShape, Layout, Tensor};
use proptest::prelude::*;
use std::collections::BTreeSet;

fn conv_shapes() -> impl Strategy<Value = ConvShape> {
    (
        1usize..=3,
        1usize..=5,
        1usize..=3,
        1usize..=3,
        1usize..=5,
        1usize..=3,
        0usize..=1,
        0usize..=5,
    )
        .prop_filter_map("filter must fit", |(n, ci, hf, wf, co, s, p, extra)| {
            let hi = hf.saturating_sub(2 * p).max(1) + extra;
            let wi = wf.saturating_sub(2 * p).max(1) + extra;
            ConvShape::new(n, ci, hi, wi, co, hf, wf)
                .stride(s)
                .pad(p)
                .build()
                .ok()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Filter decomposition partitions the lowered matrix: the per-tile
    /// `a_tile` slices, laid side by side in channel-first tap order,
    /// reconstruct the full lowered matrix exactly.
    #[test]
    fn tiles_partition_the_lowered_matrix(shape in conv_shapes(), seed in 0u64..500) {
        let x = Tensor::<i64>::random(ifmap_dims(&shape), Layout::Nchw, seed);
        let full = iconv_tensor::im2col::lower(&shape, &x, ColumnOrder::ChannelFirst);
        for tile in FilterTile::all(&shape) {
            let a = tile.a_tile(&shape, &x);
            let col0 = tile.index(&shape) * shape.ci;
            for r in 0..a.rows() {
                for c in 0..shape.ci {
                    prop_assert_eq!(a[(r, c)], full[(r, col0 + c)]);
                }
            }
        }
    }

    /// The closed-form working-set size equals the enumerated set, and the
    /// union over all tiles covers every pixel any tile touches.
    #[test]
    fn working_set_algebra(shape in conv_shapes()) {
        let mut union = BTreeSet::new();
        for tile in FilterTile::all(&shape) {
            let ws = tile.working_set(&shape);
            prop_assert_eq!(tile.working_set_len(&shape), ws.len(), "{}", tile);
            union.extend(ws);
        }
        // Union is within the input plane.
        for &(h, w) in &union {
            prop_assert!(h < shape.hi && w < shape.wi);
        }
        // Stride 1, no padding: union = exactly the input region reachable
        // by windows.
        if shape.stride_h == 1 && shape.stride_w == 1 && shape.pad_h == 0 && shape.pad_w == 0 {
            prop_assert_eq!(union.len(), shape.hi * shape.wi.min(shape.wi));
        }
    }

    /// Every schedule (single, multi, tpu) visits each filter tile exactly
    /// once, and its duplication never exceeds the group size.
    #[test]
    fn schedules_cover_tiles_exactly_once(shape in conv_shapes(), g in 1usize..5) {
        for sched in [
            TileSchedule::single_tile(&shape),
            TileSchedule::multi_tile(&shape, g),
            TileSchedule::tpu(&shape, 16),
        ] {
            let tiles: Vec<_> = sched.tiles().collect();
            let set: BTreeSet<_> = tiles.iter().copied().collect();
            prop_assert_eq!(tiles.len(), shape.hf * shape.wf);
            prop_assert_eq!(set.len(), tiles.len(), "duplicate tiles");
            prop_assert!(sched.max_duplication() <= shape.wf.max(1));
        }
    }

    /// The TPU group size never overflows the array and is bounded by Wf.
    #[test]
    fn tpu_group_size_bounds(rows in 1usize..512, ci in 1usize..512, wf in 1usize..12) {
        let g = tpu_group_size(rows, ci, wf);
        prop_assert!(g >= 1 && g <= wf);
        // Merged rows only exceed the array by at most one partial tile.
        prop_assert!((g - 1) * ci < rows.max(ci));
    }

    /// Address-generator streams deliver exactly the channel-first lowered
    /// matrix: every element matches, every lowered row appears once.
    #[test]
    fn addrgen_streams_are_complete_and_correct(shape in conv_shapes(), seed in 0u64..500) {
        let spec = VectorMemSpec { arrays: 4 * shape.ci, word_elems: 2 };
        let x = Tensor::<i64>::random(ifmap_dims(&shape), Layout::Nchw, seed);
        let lowered = iconv_tensor::im2col::lower(&shape, &x, ColumnOrder::ChannelFirst);
        let sched = TileSchedule::multi_tile(&shape, (4).min(shape.wf));
        for group in sched.groups() {
            let gen = AddrGen::new(&shape, spec, group);
            let mut row_seen = vec![0u32; shape.lowered_rows()];
            for step in 0..gen.steps() {
                for lane in 0..spec.word_elems {
                    let Some(row) = gen.lowered_row(step, lane) else { continue };
                    row_seen[row] += 1;
                    for (member, tile) in group.tiles().iter().enumerate() {
                        for ci in 0..shape.ci {
                            let array = member * shape.ci + ci;
                            let col = tile.index(&shape) * shape.ci + ci;
                            let want = lowered[(row, col)];
                            let got = gen.element(step, array, lane).map_or(0, |c| x.get(c));
                            prop_assert_eq!(got, want);
                        }
                    }
                }
            }
            prop_assert!(row_seen.iter().all(|&n| n == 1), "rows streamed exactly once");
        }
    }

    /// Reordered tap order is always a permutation of all taps, and its
    /// chained overlap is at least the naive order's.
    #[test]
    fn reordering_never_loses_taps_or_reuse(shape in conv_shapes()) {
        let naive = FilterTile::all(&shape);
        let reordered = reordered_taps(&shape);
        let mut sorted = reordered.clone();
        sorted.sort();
        prop_assert_eq!(&sorted, &naive);
        let chain = |order: &[FilterTile]| -> usize {
            order.windows(2).map(|w| w[0].overlap(&w[1], &shape)).sum()
        };
        prop_assert!(chain(&reordered) >= chain(&naive));
    }

    /// Block-level execution equals direct convolution for random blockings.
    #[test]
    fn blocked_execution_correct(
        shape in conv_shapes(),
        bm in 1usize..40, bn in 1usize..10, bk in 1usize..8,
        seed in 0u64..500,
    ) {
        let x = Tensor::<i64>::random(ifmap_dims(&shape), Layout::Nchw, seed);
        let f = Tensor::<i64>::random(filter_dims(&shape), Layout::Nchw, seed + 7);
        let want = direct_conv(&shape, &x, &f);
        let cfg = BlockConfig { bm, bn, bk };
        for order in [FetchOrder::Naive, FetchOrder::Reordered] {
            let got = BlockDecomposition::new(shape, cfg, order).execute(&x, &f);
            prop_assert!(want.approx_eq(&got, 0.0));
        }
    }

    /// Traffic accounting: warm fetches never exceed cold, and cold equals
    /// the sum of per-tap footprints.
    #[test]
    fn traffic_monotonicity(shape in conv_shapes(), bm in 4usize..40) {
        let cfg = BlockConfig { bm, bn: 8, bk: 4 };
        let d = BlockDecomposition::new(shape, cfg, FetchOrder::Reordered);
        let (cold, warm) = d.layer_fetch_elems();
        prop_assert!(warm <= cold, "warm {warm} > cold {cold}");
        // With a single tap there is nothing to reuse.
        if shape.hf * shape.wf == 1 {
            prop_assert_eq!(warm, cold);
        }
    }
}
