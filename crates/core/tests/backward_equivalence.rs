//! BP-Im2col's core identity, verified bit-exactly: the **implicit dgrad**
//! (per-tap scatter through the forward pixel map, no materialization) of
//! a convolution equals an **explicit forward convolution** of the
//! stride-dilated, zero-padded output gradient with the 180°-rotated,
//! channel-swapped filter.
//!
//! The explicit side materializes everything the implicit path only
//! *implies*: `dY` is scattered into a dense `(Hi + Hf − 1) × (Wi + Wf − 1)`
//! plane at positions `eff_f − 1 − pad + o·stride` (zeros between samples
//! under stride — the "dilated input" of the textbook construction, with a
//! ragged trailing margin where the forward output stopped short), and the
//! filter index flip `fh → Hf − 1 − fh` plus the `Ci ↔ Co` swap build the
//! rotated kernel. A plain stride-1, pad-0 direct convolution over that
//! pair must then reproduce implicit dgrad exactly — integer tensors, so
//! equality is bitwise, across ragged shapes, strides 1–3, even filters,
//! and the asymmetric "SAME" padding.

use iconv_core::backward::dgrad;
use iconv_tensor::conv_ref::{direct_conv, filter_dims, ofmap_dims};
use iconv_tensor::{ConvShape, Coord, Layout, Tensor};
use proptest::prelude::*;

/// Ragged backward-pass shapes: independent heights/widths and filter
/// sides (even filters included), strides 1–3, and either explicit
/// leading-symmetric padding or the framework-style asymmetric
/// [`same_pad`](iconv_tensor::ConvShapeBuilder::same_pad).
fn backward_shapes() -> impl Strategy<Value = ConvShape> {
    (
        1usize..=2, // n
        1usize..=4, // ci
        1usize..=4, // co
        1usize..=4, // hf (even sizes included)
        1usize..=4, // wf
        1usize..=3, // stride
        0usize..=6, // extra rows beyond the minimum input
        0usize..=6, // extra cols (independent: ragged hi != wi)
        0usize..=1, // same-pad (asymmetric for even filters) vs explicit
        0usize..=2, // explicit pad request (clamped below)
    )
        .prop_filter_map(
            "filter must fit",
            |(n, ci, co, hf, wf, s, eh, ew, same, p)| {
                let same = same == 1;
                let hi = hf + eh;
                let wi = wf + ew;
                let b = ConvShape::new(n, ci, hi, wi, co, hf, wf).stride(s);
                if same {
                    b.same_pad().build().ok()
                } else {
                    // The rotated-filter construction needs the leading pad
                    // to stay inside the filter: pad <= f - 1.
                    b.pad_hw(p.min(hf - 1), p.min(wf - 1)).build().ok()
                }
            },
        )
}

/// Materialize the stride-dilated, zero-embedded `dY` plane and the
/// rotated/swapped filter, returning them with the stride-1 pad-0 shape
/// whose direct convolution realizes dgrad explicitly.
fn explicit_dgrad_operands(
    shape: &ConvShape,
    filter: &Tensor<i64>,
    dout: &Tensor<i64>,
) -> (ConvShape, Tensor<i64>, Tensor<i64>) {
    let (hp, wp) = (shape.hi + shape.hf - 1, shape.wi + shape.wf - 1);
    let eq = ConvShape::new(shape.n, shape.co, hp, wp, shape.ci, shape.hf, shape.wf)
        .stride(1)
        .pad(0)
        .build()
        .expect("equivalent shape is valid by construction");

    // dY lands at `f − 1 − pad + o·stride`; everything else stays zero —
    // the inter-sample zeros are the stride dilation, the top-left margin
    // is the flipped leading pad, and the bottom-right margin is ragged
    // (whatever the forward output left uncovered plus the trailing pad).
    let mut dilated = Tensor::<i64>::zeros(iconv_tensor::conv_ref::ifmap_dims(&eq), Layout::Nchw);
    for n in 0..shape.n {
        for co in 0..shape.co {
            for oh in 0..shape.out_h() {
                for ow in 0..shape.out_w() {
                    let h = shape.hf - 1 - shape.pad_h + oh * shape.stride_h;
                    let w = shape.wf - 1 - shape.pad_w + ow * shape.stride_w;
                    dilated.set(Coord::new(n, co, h, w), dout.get(Coord::new(n, co, oh, ow)));
                }
            }
        }
    }

    // 180° spatial rotation plus the Ci <-> Co role swap.
    let rotated = Tensor::<i64>::from_fn(filter_dims(&eq), Layout::Nchw, |c| {
        filter.get(Coord::new(
            c.c, // original co: the equivalent conv's input channel
            c.n, // original ci: the equivalent conv's output channel
            shape.hf - 1 - c.h,
            shape.wf - 1 - c.w,
        ))
    });
    (eq, dilated, rotated)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Implicit dgrad == explicit conv(dilate(dY), rot180(W)ᵀ), bit for bit.
    #[test]
    fn implicit_dgrad_matches_explicit_rotated_conv(
        shape in backward_shapes(),
        seed in 0u64..1000,
    ) {
        let f = Tensor::<i64>::random(filter_dims(&shape), Layout::Nchw, seed);
        let dy = Tensor::<i64>::random(ofmap_dims(&shape), Layout::Nchw, seed + 101);

        let implicit = dgrad(&shape, &f, &dy);

        let (eq, dilated, rotated) = explicit_dgrad_operands(&shape, &f, &dy);
        prop_assert_eq!(eq.out_h(), shape.hi, "equivalent conv must recover Hi");
        prop_assert_eq!(eq.out_w(), shape.wi, "equivalent conv must recover Wi");
        let explicit = direct_conv(&eq, &dilated, &rotated);

        prop_assert!(
            implicit.approx_eq(&explicit, 0.0),
            "dgrad != rotated-conv for {shape}"
        );
    }
}
