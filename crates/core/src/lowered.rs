//! The *conceptual* lowered IFMap matrix.
//!
//! In implicit im2col the lowered matrix never physically exists — it is
//! "dynamically generated and consumed" (paper Sec. III-A). This module gives
//! that virtual matrix a concrete algebra: a [`LoweredView`] answers, for any
//! `(row, col)`, which IFMap element lives there (or that it is a padding
//! zero), without materializing anything.
//!
//! The correctness of channel-first im2col is the statement that the
//! channel-first view is a column permutation of the channel-last view, and
//! GEMM is invariant under paired column/row permutations — proved
//! constructively by [`LoweredView::permutation_to`] and tested against
//! `iconv_tensor::Matrix::permute_cols`.

use iconv_tensor::im2col::{entry_coord, output_to_row, row_to_output};
use iconv_tensor::{ColumnOrder, ConvShape, Coord, Matrix, Scalar, Tap, Tensor};
use std::ops::Range;

/// A zero-cost view of the conceptual lowered IFMap matrix for one
/// convolution and one column order.
///
/// # Examples
///
/// ```
/// # use iconv_core::LoweredView;
/// # use iconv_tensor::{ColumnOrder, ConvShape};
/// # fn main() -> Result<(), iconv_tensor::ShapeError> {
/// let shape = ConvShape::square(1, 8, 5, 4, 3, 1, 0)?;
/// let view = LoweredView::new(shape, ColumnOrder::ChannelFirst);
/// assert_eq!(view.rows(), 9);
/// assert_eq!(view.cols(), 72);
/// // Column 1 of row 0 is channel 1 of input pixel (0,0):
/// let coord = view.entry(0, 1).unwrap();
/// assert_eq!((coord.c, coord.h, coord.w), (1, 0, 0));
/// # Ok(()) }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoweredView {
    shape: ConvShape,
    order: ColumnOrder,
}

impl LoweredView {
    /// Create a view for `shape` with column order `order`.
    pub fn new(shape: ConvShape, order: ColumnOrder) -> Self {
        Self { shape, order }
    }

    /// The convolution this view lowers.
    pub fn shape(&self) -> &ConvShape {
        &self.shape
    }

    /// The column order of this view.
    pub fn order(&self) -> ColumnOrder {
        self.order
    }

    /// Row count `N·Ho·Wo`.
    pub fn rows(&self) -> usize {
        self.shape.lowered_rows()
    }

    /// Column count `Hf·Wf·Ci`.
    pub fn cols(&self) -> usize {
        self.shape.lowered_cols()
    }

    /// The IFMap coordinate at `(row, col)`, or `None` for a padding zero.
    pub fn entry(&self, row: usize, col: usize) -> Option<Coord> {
        entry_coord(&self.shape, self.order, row, col)
    }

    /// The filter tap addressed by column `col`.
    pub fn tap(&self, col: usize) -> Tap {
        self.order.tap(&self.shape, col)
    }

    /// The column holding filter tap `tap`.
    pub fn col_of(&self, tap: Tap) -> usize {
        self.order.col(&self.shape, tap)
    }

    /// The output pixel `(n, oh, ow)` addressed by row `row`.
    pub fn output_of(&self, row: usize) -> (usize, usize, usize) {
        row_to_output(&self.shape, row)
    }

    /// The row addressing output pixel `(n, oh, ow)`.
    pub fn row_of(&self, n: usize, oh: usize, ow: usize) -> usize {
        output_to_row(&self.shape, n, oh, ow)
    }

    /// In the channel-first order the columns of filter-tap `(fh, fw)` are
    /// contiguous: this returns that `Ci`-wide range.
    ///
    /// # Panics
    ///
    /// Panics if the view is channel-last (where tap columns are scattered)
    /// or the tap is out of range.
    pub fn tap_col_range(&self, fh: usize, fw: usize) -> Range<usize> {
        assert_eq!(
            self.order,
            ColumnOrder::ChannelFirst,
            "tap columns are only contiguous in the channel-first order"
        );
        assert!(fh < self.shape.hf && fw < self.shape.wf, "tap out of range");
        let start = self.order.col(&self.shape, Tap { fh, fw, ci: 0 });
        start..start + self.shape.ci
    }

    /// Materialize the view (for tests and the explicit baseline): identical
    /// to `iconv_tensor::im2col::lower`.
    ///
    /// # Panics
    ///
    /// Panics if `ifmap` dims do not match the shape.
    pub fn materialize<T: Scalar>(&self, ifmap: &Tensor<T>) -> Matrix<T> {
        iconv_tensor::im2col::lower(&self.shape, ifmap, self.order)
    }

    /// Column permutation carrying this view onto `other`'s column order:
    /// `other.materialize(x).permute_cols(&perm) == self.materialize(x)`.
    pub fn permutation_to(&self, other: &LoweredView) -> Vec<usize> {
        debug_assert_eq!(self.shape, other.shape, "views must share a shape");
        self.order.permutation_to(other.order, &self.shape)
    }

    /// Count of non-padding entries in the whole matrix; used by traffic
    /// accounting (padding entries are generated, never loaded).
    pub fn nonzero_entries(&self) -> usize {
        let mut count = 0;
        for row in 0..self.rows() {
            let (_, oh, ow) = self.output_of(row);
            for fh in 0..self.shape.hf {
                for fw in 0..self.shape.wf {
                    if iconv_tensor::conv_ref::input_pixel(&self.shape, oh, ow, fh, fw).is_some() {
                        count += self.shape.ci;
                    }
                }
            }
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iconv_tensor::conv_ref::ifmap_dims;
    use iconv_tensor::Layout;

    fn fig5_shape() -> ConvShape {
        ConvShape::square(1, 8, 5, 4, 3, 1, 0).unwrap()
    }

    #[test]
    fn entries_match_materialized_matrix() {
        let shape = ConvShape::square(2, 3, 6, 2, 3, 2, 1).unwrap();
        let x = Tensor::<i64>::random(ifmap_dims(&shape), Layout::Nchw, 77);
        for order in ColumnOrder::ALL {
            let view = LoweredView::new(shape, order);
            let mat = view.materialize(&x);
            for r in 0..view.rows() {
                for c in 0..view.cols() {
                    let want = view.entry(r, c).map_or(0, |coord| x.get(coord));
                    assert_eq!(mat[(r, c)], want, "({r},{c}) {order}");
                }
            }
        }
    }

    #[test]
    fn permutation_carries_channel_last_onto_channel_first() {
        let shape = fig5_shape();
        let x = Tensor::<i32>::random(ifmap_dims(&shape), Layout::Nchw, 3);
        let first = LoweredView::new(shape, ColumnOrder::ChannelFirst);
        let last = LoweredView::new(shape, ColumnOrder::ChannelLast);
        let perm = first.permutation_to(&last);
        assert_eq!(
            last.materialize(&x).permute_cols(&perm),
            first.materialize(&x)
        );
    }

    #[test]
    fn tap_col_range_is_contiguous_and_correct() {
        let shape = fig5_shape();
        let view = LoweredView::new(shape, ColumnOrder::ChannelFirst);
        let range = view.tap_col_range(1, 2);
        assert_eq!(range.len(), 8);
        for (i, col) in range.enumerate() {
            let tap = view.tap(col);
            assert_eq!((tap.fh, tap.fw, tap.ci), (1, 2, i));
        }
    }

    #[test]
    #[should_panic(expected = "only contiguous in the channel-first order")]
    fn tap_col_range_rejects_channel_last() {
        let view = LoweredView::new(fig5_shape(), ColumnOrder::ChannelLast);
        let _ = view.tap_col_range(0, 0);
    }

    #[test]
    fn nonzero_entries_no_padding_is_full() {
        let shape = fig5_shape();
        let view = LoweredView::new(shape, ColumnOrder::ChannelFirst);
        assert_eq!(view.nonzero_entries(), view.rows() * view.cols());
    }

    #[test]
    fn nonzero_entries_with_padding_is_smaller() {
        let shape = ConvShape::square(1, 4, 5, 2, 3, 1, 1).unwrap();
        let view = LoweredView::new(shape, ColumnOrder::ChannelFirst);
        let nz = view.nonzero_entries();
        assert!(nz < view.rows() * view.cols());
        // Cross-check against the materialized matrix of an all-ones input.
        let x = Tensor::<i32>::from_fn(ifmap_dims(&shape), Layout::Nchw, |_| 1);
        let ones: usize = view
            .materialize(&x)
            .as_slice()
            .iter()
            .filter(|&&v| v == 1)
            .count();
        assert_eq!(nz, ones);
    }

    #[test]
    fn row_output_roundtrip() {
        let shape = ConvShape::square(3, 2, 7, 2, 3, 2, 0).unwrap();
        let view = LoweredView::new(shape, ColumnOrder::ChannelFirst);
        for row in 0..view.rows() {
            let (n, oh, ow) = view.output_of(row);
            assert_eq!(view.row_of(n, oh, ow), row);
        }
    }
}
