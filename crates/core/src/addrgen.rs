//! Address generation for the TPU's per-PE-row vector memories
//! (paper Sec. IV-A, Figs. 9 & 10).
//!
//! The TPU has no crossbar: it has `R` *independent* single-port SRAM arrays,
//! one per PE row. Channel-first im2col maps channel `ci` of tile-group
//! member `m` to array `m·Ci + ci`, so every IFMap element always feeds the
//! same fixed PE row. The systolic time delay is absorbed by **skewing the
//! address generation** (array `a` issues step `k` at cycle `k·w + a`), not
//! the data layout.
//!
//! With the batched `HWCN` layout, one `w`-element word holds `w` batch items
//! of one pixel/channel, so a single SRAM read feeds the serializer for `w`
//! consecutive GEMM rows — each array is read only once every `w` cycles,
//! leaving the other port-slots free for interleaved OFMap writes
//! (de-serializer), which is how the unified memory sustains full duplex.

use crate::decompose::FilterTile;
use crate::schedule::TileGroup;
use iconv_tensor::{ConvShape, Coord};

/// Geometry of the vector-memory file: number of independent SRAM arrays
/// (= PE rows) and elements per word.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VectorMemSpec {
    /// Number of independent SRAM arrays (TPU-v2: 128).
    pub arrays: usize,
    /// Elements per word (TPU-v2: 8).
    pub word_elems: usize,
}

impl VectorMemSpec {
    /// The TPU-v2 configuration from paper Table II.
    pub fn tpu_v2() -> Self {
        Self {
            arrays: 128,
            word_elems: 8,
        }
    }
}

/// A logical word address inside one SRAM array: pixel `(h, w)` of the
/// array's channel, batch-word `bw` (batch items `bw·w .. bw·w + w`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WordAddr {
    /// Input row.
    pub h: usize,
    /// Input column.
    pub w: usize,
    /// Which group of `word_elems` batch items.
    pub batch_word: usize,
}

/// What one array does at one logical step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrayOp {
    /// Array is not assigned to any (member, channel) — idle PE row.
    Unassigned,
    /// The tap lands in the padding: the serializer injects zeros, the SRAM
    /// port stays free.
    ZeroInject,
    /// A real word read.
    Read(WordAddr),
}

/// Address generator for streaming one [`TileGroup`]'s merged GEMM out of
/// the vector memories.
///
/// A *step* is one word-time: all active arrays logically read (or
/// zero-inject) once per step, and the serializer drains the word over the
/// next `word_elems` cycles. Steps advance through output pixels in raster
/// order with the batch dimension innermost (the `HWCN` stream).
///
/// # Examples
///
/// ```
/// # use iconv_core::addrgen::{AddrGen, VectorMemSpec, ArrayOp};
/// # use iconv_core::schedule::TileSchedule;
/// # use iconv_tensor::ConvShape;
/// # fn main() -> Result<(), iconv_tensor::ShapeError> {
/// // Paper Fig. 10: N=2, Ci=4, 5x5 input, 3x3 filter, 4x4 array, word=2.
/// let shape = ConvShape::square(2, 4, 5, 4, 3, 1, 0)?;
/// let spec = VectorMemSpec { arrays: 4, word_elems: 2 };
/// let sched = TileSchedule::single_tile(&shape);
/// let gen = AddrGen::new(&shape, spec, &sched.groups()[0]);
/// assert_eq!(gen.steps(), 9); // 3x3 outputs x (2 batch / word 2)
/// // All four arrays read every step (Ci=4 fills the array):
/// assert!(matches!(gen.op(0, 0), ArrayOp::Read(_)));
/// # Ok(()) }
/// ```
#[derive(Debug, Clone)]
pub struct AddrGen<'a> {
    shape: &'a ConvShape,
    spec: VectorMemSpec,
    group: &'a TileGroup,
}

impl<'a> AddrGen<'a> {
    /// Create a generator for one tile group.
    ///
    /// # Panics
    ///
    /// Panics if the group needs more PE rows than `spec.arrays` provides.
    pub fn new(shape: &'a ConvShape, spec: VectorMemSpec, group: &'a TileGroup) -> Self {
        assert!(
            group.occupied_rows(shape) <= spec.arrays,
            "tile group needs {} rows but the array has {}",
            group.occupied_rows(shape),
            spec.arrays
        );
        Self { shape, spec, group }
    }

    /// Words needed to hold one pixel across the batch: `ceil(N / w)`.
    pub fn batch_words(&self) -> usize {
        self.shape.n.div_ceil(self.spec.word_elems)
    }

    /// Logical steps to stream the whole merged GEMM: `Ho·Wo·batch_words`.
    pub fn steps(&self) -> usize {
        self.shape.out_h() * self.shape.out_w() * self.batch_words()
    }

    /// The `(member, channel)` assignment of array `a`, or `None` when the
    /// array is idle for this group.
    pub fn assignment(&self, array: usize) -> Option<(usize, usize)> {
        (array < self.group.occupied_rows(self.shape))
            .then(|| (array / self.shape.ci, array % self.shape.ci))
    }

    /// Output pixel and batch-word of step `s`: `(oh, ow, bw)`.
    pub fn step_target(&self, step: usize) -> (usize, usize, usize) {
        let bw = self.batch_words();
        let pix = step / bw;
        (
            pix / self.shape.out_w(),
            pix % self.shape.out_w(),
            step % bw,
        )
    }

    /// What array `a` does at step `s`.
    ///
    /// # Panics
    ///
    /// Panics if `step >= self.steps()` or `array >= spec.arrays`.
    pub fn op(&self, step: usize, array: usize) -> ArrayOp {
        assert!(step < self.steps(), "step {step} out of range");
        assert!(array < self.spec.arrays, "array {array} out of range");
        let Some((member, _ci)) = self.assignment(array) else {
            return ArrayOp::Unassigned;
        };
        let (oh, ow, bw) = self.step_target(step);
        let tile = self.group.tiles()[member];
        match tile.input_pixel(self.shape, oh, ow) {
            Some((h, w)) => ArrayOp::Read(WordAddr {
                h,
                w,
                batch_word: bw,
            }),
            None => ArrayOp::ZeroInject,
        }
    }

    /// The cycle at which array `a` *issues* step `s`: reads are spaced one
    /// word-time apart and skewed by the array index to fit the systolic
    /// dataflow ("we skew the address generation", Sec. IV-A).
    pub fn issue_cycle(&self, step: usize, array: usize) -> u64 {
        (step * self.spec.word_elems + array) as u64
    }

    /// IFMap element delivered by array `a` in lane `lane` (0-based within
    /// the word) of step `s`; `None` for padding/idle/beyond-batch lanes.
    pub fn element(&self, step: usize, array: usize, lane: usize) -> Option<Coord> {
        let (member, ci) = self.assignment(array)?;
        let (oh, ow, bw) = self.step_target(step);
        let n = bw * self.spec.word_elems + lane;
        if n >= self.shape.n {
            return None;
        }
        let tile = self.group.tiles()[member];
        let (h, w) = tile.input_pixel(self.shape, oh, ow)?;
        Some(Coord::new(n, ci, h, w))
    }

    /// The lowered-matrix row fed by `(step, lane)` — the stream is a
    /// permutation of the `N·Ho·Wo` lowered rows (batch innermost instead of
    /// outermost), which is legal because GEMM is row-order invariant.
    pub fn lowered_row(&self, step: usize, lane: usize) -> Option<usize> {
        let (oh, ow, bw) = self.step_target(step);
        let n = bw * self.spec.word_elems + lane;
        (n < self.shape.n).then(|| iconv_tensor::im2col::output_to_row(self.shape, n, oh, ow))
    }

    /// Total real word reads issued across all arrays and steps (padding
    /// taps inject zeros without a read).
    pub fn total_reads(&self) -> u64 {
        let mut reads = 0u64;
        let bw = self.batch_words() as u64;
        for (member, tile) in self.group.tiles().iter().enumerate() {
            let _ = member;
            let valid_pixels = (0..self.shape.out_h())
                .flat_map(|oh| (0..self.shape.out_w()).map(move |ow| (oh, ow)))
                .filter(|&(oh, ow)| tile.input_pixel(self.shape, oh, ow).is_some())
                .count() as u64;
            reads += valid_pixels * bw * self.shape.ci as u64;
        }
        reads
    }

    /// Words each active array must hold resident for its member tile:
    /// `|working_set| · batch_words` (the Fig. 14a workspace metric, per
    /// array).
    pub fn resident_words(&self, array: usize) -> usize {
        match self.assignment(array) {
            Some((member, _)) => {
                self.group.tiles()[member].working_set_len(self.shape) * self.batch_words()
            }
            None => 0,
        }
    }

    /// Total resident words across all arrays — the on-chip workspace for
    /// this group. Grows ∝ group size (IFMap duplication).
    pub fn total_resident_words(&self) -> usize {
        (0..self.spec.arrays).map(|a| self.resident_words(a)).sum()
    }

    /// The tile of group member `m`.
    pub fn member_tile(&self, member: usize) -> FilterTile {
        self.group.tiles()[member]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::TileSchedule;
    use iconv_tensor::conv_ref::ifmap_dims;
    use iconv_tensor::{ColumnOrder, Layout, Tensor};

    /// Paper Fig. 10 configuration.
    fn fig10() -> (ConvShape, VectorMemSpec) {
        (
            ConvShape::square(2, 4, 5, 4, 3, 1, 0).unwrap(),
            VectorMemSpec {
                arrays: 4,
                word_elems: 2,
            },
        )
    }

    #[test]
    fn fixed_pe_row_per_channel() {
        // The defining property: every element of channel ci is only ever
        // delivered by array ci (single-tile groups).
        let (shape, spec) = fig10();
        let sched = TileSchedule::single_tile(&shape);
        for group in sched.groups() {
            let gen = AddrGen::new(&shape, spec, group);
            for step in 0..gen.steps() {
                for array in 0..spec.arrays {
                    for lane in 0..spec.word_elems {
                        if let Some(c) = gen.element(step, array, lane) {
                            assert_eq!(c.c, array, "channel must match array");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn stream_covers_lowered_matrix_exactly() {
        // Across all steps/lanes, each (lowered_row) appears exactly once per
        // step-pixel, and the delivered elements equal the channel-first
        // lowered matrix entries for the tile's columns.
        let (shape, spec) = fig10();
        let x = Tensor::<i64>::random(ifmap_dims(&shape), Layout::Nchw, 9);
        let lowered = iconv_tensor::im2col::lower(&shape, &x, ColumnOrder::ChannelFirst);
        let sched = TileSchedule::single_tile(&shape);
        for (tix, group) in sched.groups().iter().enumerate() {
            let gen = AddrGen::new(&shape, spec, group);
            let mut seen_rows = vec![0usize; shape.lowered_rows()];
            for step in 0..gen.steps() {
                for lane in 0..spec.word_elems {
                    let Some(row) = gen.lowered_row(step, lane) else {
                        continue;
                    };
                    seen_rows[row] += 1;
                    for array in 0..spec.arrays {
                        let col = tix * shape.ci + array; // channel-first col
                        let want = lowered[(row, col)];
                        let got = gen.element(step, array, lane).map_or(0, |c| x.get(c));
                        assert_eq!(got, want, "tile {tix} row {row} array {array}");
                    }
                }
            }
            assert!(seen_rows.iter().all(|&n| n == 1), "each row streamed once");
        }
    }

    #[test]
    fn skewed_issue_cycles() {
        let (shape, spec) = fig10();
        let sched = TileSchedule::single_tile(&shape);
        let gen = AddrGen::new(&shape, spec, &sched.groups()[0]);
        // Array a issues step k at cycle 2k + a: adjacent arrays one apart.
        assert_eq!(gen.issue_cycle(0, 0), 0);
        assert_eq!(gen.issue_cycle(0, 3), 3);
        assert_eq!(gen.issue_cycle(5, 1), 11);
        // Port never re-used within a word time: consecutive steps of one
        // array are word_elems cycles apart.
        assert_eq!(
            gen.issue_cycle(1, 2) - gen.issue_cycle(0, 2),
            spec.word_elems as u64
        );
    }

    #[test]
    fn multi_tile_assignment_replicates_channels() {
        // Fig. 11: Ci=2, array 4, group of 2 tiles -> arrays (0,1) = member 0
        // channels (0,1); arrays (2,3) = member 1 channels (0,1).
        let shape = ConvShape::square(2, 2, 5, 4, 3, 1, 0).unwrap();
        let spec = VectorMemSpec {
            arrays: 4,
            word_elems: 2,
        };
        let sched = TileSchedule::multi_tile(&shape, 2);
        let gen = AddrGen::new(&shape, spec, &sched.groups()[0]);
        assert_eq!(gen.assignment(0), Some((0, 0)));
        assert_eq!(gen.assignment(1), Some((0, 1)));
        assert_eq!(gen.assignment(2), Some((1, 0)));
        assert_eq!(gen.assignment(3), Some((1, 1)));
        // Members read *different* pixels at the same step.
        let (a0, a2) = (gen.op(0, 0), gen.op(0, 2));
        match (a0, a2) {
            (ArrayOp::Read(w0), ArrayOp::Read(w2)) => {
                assert_eq!((w0.h, w0.w), (0, 0));
                assert_eq!((w2.h, w2.w), (0, 1)); // tile ⟨1,2⟩ shifted by 1
            }
            other => panic!("expected reads, got {other:?}"),
        }
    }

    #[test]
    fn padding_taps_zero_inject_without_reads() {
        let shape = ConvShape::square(2, 4, 5, 4, 3, 1, 1).unwrap();
        let spec = VectorMemSpec {
            arrays: 4,
            word_elems: 2,
        };
        let sched = TileSchedule::single_tile(&shape);
        // Tile (0,0), output (0,0) -> pixel (-1,-1): padding.
        let gen = AddrGen::new(&shape, spec, &sched.groups()[0]);
        assert_eq!(gen.op(0, 0), ArrayOp::ZeroInject);
        assert_eq!(gen.element(0, 0, 0), None);
        // total_reads excludes those steps.
        let full_steps = gen.steps() as u64 * shape.ci as u64;
        assert!(gen.total_reads() < full_steps);
    }

    #[test]
    fn unassigned_arrays_idle() {
        let shape = ConvShape::square(2, 2, 5, 4, 3, 1, 0).unwrap();
        let spec = VectorMemSpec {
            arrays: 8,
            word_elems: 2,
        };
        let sched = TileSchedule::single_tile(&shape);
        let gen = AddrGen::new(&shape, spec, &sched.groups()[0]);
        assert_eq!(gen.op(0, 7), ArrayOp::Unassigned);
        assert_eq!(gen.resident_words(7), 0);
    }

    #[test]
    fn group_too_large_for_array_panics() {
        let shape = ConvShape::square(1, 4, 5, 4, 3, 1, 0).unwrap();
        let spec = VectorMemSpec {
            arrays: 4,
            word_elems: 2,
        };
        let sched = TileSchedule::multi_tile(&shape, 2); // needs 8 rows
        let result = std::panic::catch_unwind(|| {
            AddrGen::new(&shape, spec, &sched.groups()[0]);
        });
        assert!(result.is_err());
    }

    #[test]
    fn workspace_grows_linearly_with_group_size() {
        // Fig. 14a: vector-memory workspace ∝ multi-tile parameter.
        let shape = ConvShape::square(8, 8, 16, 16, 3, 1, 1).unwrap();
        let spec = VectorMemSpec {
            arrays: 128,
            word_elems: 8,
        };
        let w1: usize = {
            let sched = TileSchedule::multi_tile(&shape, 1);
            AddrGen::new(&shape, spec, &sched.groups()[0]).total_resident_words()
        };
        let w3: usize = {
            let sched = TileSchedule::multi_tile(&shape, 3);
            AddrGen::new(&shape, spec, &sched.groups()[0]).total_resident_words()
        };
        let ratio = w3 as f64 / w1 as f64;
        assert!(ratio > 2.8 && ratio < 3.2, "ratio = {ratio}");
    }

    #[test]
    fn batch_words_rounds_up() {
        let shape = ConvShape::square(3, 4, 5, 4, 3, 1, 0).unwrap();
        let spec = VectorMemSpec {
            arrays: 4,
            word_elems: 2,
        };
        let sched = TileSchedule::single_tile(&shape);
        let gen = AddrGen::new(&shape, spec, &sched.groups()[0]);
        assert_eq!(gen.batch_words(), 2);
        // Lane 1 of the last batch word is beyond N=3.
        assert_eq!(gen.element(1, 0, 1), None);
        assert!(gen.lowered_row(1, 1).is_none());
    }
}
