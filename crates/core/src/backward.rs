//! Training-pass lowering: the convolution **gradients** through the same
//! channel-first decomposition.
//!
//! The paper targets TPU-v2/v3 — *training* chips ("batching ... is common
//! in training — a key focus of TPU-v2/v3", Sec. IV-C) — so a faithful
//! system must lower the backward pass too. Both gradients inherit the
//! per-tap 1×1 structure of the forward decomposition:
//!
//! * **weight gradient** — `dW⟨fh,fw⟩ = A⟨fh,fw⟩ᵀ · dY`: per tap, the
//!   `M × Ci` lowered slice (the very same [`FilterTile::a_tile`] the
//!   forward pass streams) transposed against the `M × Co` output
//!   gradient. No im2col materialization, no new data layout.
//! * **input gradient** — `dX ⟨at tap positions⟩ += dY · B⟨fh,fw⟩ᵀ`: per
//!   tap, a `M × Co` by `Co × Ci` GEMM scattered through the same
//!   output→input pixel map the forward pass gathers through.
//!
//! Correctness is pinned two ways: against direct loop references derived
//! from the chain rule, and by the adjoint identity
//! `⟨dY, conv(X)⟩ = ⟨wgrad(X, dY), W⟩ = ⟨dgrad(W, dY), X⟩` (convolution is
//! bilinear), which property tests verify exactly on integers.

use crate::decompose::FilterTile;
use iconv_tensor::conv_ref::{filter_dims, ifmap_dims, input_pixel, ofmap_dims};
use iconv_tensor::{ConvShape, Coord, Layout, Matrix, Scalar, Tensor};

/// Weight gradient via the channel-first decomposition: for each tap,
/// `dW_tap = A_tapᵀ · dY` — the implicit-im2col training kernel.
/// # Examples
///
/// ```
/// # use iconv_core::backward::{wgrad, dgrad, inner};
/// # use iconv_tensor::{conv_ref, ConvShape, Layout, Tensor};
/// # fn main() -> Result<(), iconv_tensor::ShapeError> {
/// let shape = ConvShape::square(1, 4, 6, 8, 3, 1, 1)?;
/// let x = Tensor::<i64>::random(conv_ref::ifmap_dims(&shape), Layout::Nchw, 1);
/// let w = Tensor::<i64>::random(conv_ref::filter_dims(&shape), Layout::Nchw, 2);
/// let dy = Tensor::<i64>::random(conv_ref::ofmap_dims(&shape), Layout::Nchw, 3);
/// // The adjoint identity holds bit-exactly: <dY, conv(X)> = <dW, W> = <dX, X>.
/// let y = conv_ref::direct_conv(&shape, &x, &w);
/// assert_eq!(inner(&dy, &y), inner(&wgrad(&shape, &x, &dy), &w));
/// assert_eq!(inner(&dy, &y), inner(&dgrad(&shape, &w, &dy), &x));
/// # Ok(()) }
/// ```
///
///
/// `dout` must have [`ofmap_dims`]`(shape)`; the result has
/// [`filter_dims`]`(shape)`.
///
/// # Panics
///
/// Panics if tensor dims do not match `shape`.
pub fn wgrad<T: Scalar>(shape: &ConvShape, ifmap: &Tensor<T>, dout: &Tensor<T>) -> Tensor<T> {
    assert_eq!(ifmap.dims(), ifmap_dims(shape), "ifmap dims mismatch");
    assert_eq!(dout.dims(), ofmap_dims(shape), "dout dims mismatch");
    let dy = dout_matrix(shape, dout);
    let mut dw = Tensor::zeros(filter_dims(shape), Layout::Nchw);
    for tile in FilterTile::all(shape) {
        let a = tile.a_tile(shape, ifmap); // M × Ci
        let grad = a.transpose().matmul(&dy); // Ci × Co
        for ci in 0..shape.ci {
            for co in 0..shape.co {
                dw.set(Coord::new(co, ci, tile.fh, tile.fw), grad[(ci, co)]);
            }
        }
    }
    dw
}

/// Input gradient via the channel-first decomposition: for each tap,
/// scatter `dY · B_tapᵀ` through the tap's output→input pixel map.
///
/// # Panics
///
/// Panics if tensor dims do not match `shape`.
pub fn dgrad<T: Scalar>(shape: &ConvShape, filter: &Tensor<T>, dout: &Tensor<T>) -> Tensor<T> {
    assert_eq!(filter.dims(), filter_dims(shape), "filter dims mismatch");
    assert_eq!(dout.dims(), ofmap_dims(shape), "dout dims mismatch");
    let dy = dout_matrix(shape, dout);
    let mut dx = Tensor::zeros(ifmap_dims(shape), Layout::Nchw);
    let (ho, wo) = (shape.out_h(), shape.out_w());
    for tile in FilterTile::all(shape) {
        let b_t = tile.b_tile(shape, filter).transpose(); // Co × Ci
        let partial = dy.matmul(&b_t); // M × Ci
        for row in 0..partial.rows() {
            let n = row / (ho * wo);
            let oh = (row / wo) % ho;
            let ow = row % wo;
            let Some((h, w)) = tile.input_pixel(shape, oh, ow) else {
                continue; // gradient into the zero padding is discarded
            };
            for ci in 0..shape.ci {
                dx.accumulate(Coord::new(n, ci, h, w), partial[(row, ci)]);
            }
        }
    }
    dx
}

/// Direct-loop weight-gradient reference (chain rule, no lowering).
pub fn wgrad_ref<T: Scalar>(shape: &ConvShape, ifmap: &Tensor<T>, dout: &Tensor<T>) -> Tensor<T> {
    assert_eq!(ifmap.dims(), ifmap_dims(shape), "ifmap dims mismatch");
    assert_eq!(dout.dims(), ofmap_dims(shape), "dout dims mismatch");
    let mut dw = Tensor::zeros(filter_dims(shape), Layout::Nchw);
    for co in 0..shape.co {
        for ci in 0..shape.ci {
            for fh in 0..shape.hf {
                for fw in 0..shape.wf {
                    let mut acc = T::zero();
                    for n in 0..shape.n {
                        for oh in 0..shape.out_h() {
                            for ow in 0..shape.out_w() {
                                if let Some((h, w)) = input_pixel(shape, oh, ow, fh, fw) {
                                    acc += dout.get(Coord::new(n, co, oh, ow))
                                        * ifmap.get(Coord::new(n, ci, h, w));
                                }
                            }
                        }
                    }
                    dw.set(Coord::new(co, ci, fh, fw), acc);
                }
            }
        }
    }
    dw
}

/// Direct-loop input-gradient reference (chain rule, no lowering).
pub fn dgrad_ref<T: Scalar>(shape: &ConvShape, filter: &Tensor<T>, dout: &Tensor<T>) -> Tensor<T> {
    assert_eq!(filter.dims(), filter_dims(shape), "filter dims mismatch");
    assert_eq!(dout.dims(), ofmap_dims(shape), "dout dims mismatch");
    let mut dx = Tensor::zeros(ifmap_dims(shape), Layout::Nchw);
    for n in 0..shape.n {
        for co in 0..shape.co {
            for oh in 0..shape.out_h() {
                for ow in 0..shape.out_w() {
                    let g = dout.get(Coord::new(n, co, oh, ow));
                    for ci in 0..shape.ci {
                        for fh in 0..shape.hf {
                            for fw in 0..shape.wf {
                                if let Some((h, w)) = input_pixel(shape, oh, ow, fh, fw) {
                                    let wv = filter.get(Coord::new(co, ci, fh, fw));
                                    dx.accumulate(Coord::new(n, ci, h, w), g * wv);
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    dx
}

/// Transposed convolution (a.k.a. deconvolution / fractionally-strided
/// convolution), as used by decoders and GANs: maps a small `(N, Co, Ho,
/// Wo)` input up to the `(N, Ci, Hi, Wi)` geometry that `shape` would have
/// convolved *down* from. Mathematically identical to [`dgrad`] — the
/// transpose of the forward lowering — so it inherits the per-tap schedule
/// unchanged.
///
/// # Panics
///
/// Panics if tensor dims do not match `shape`.
pub fn conv_transpose<T: Scalar>(
    shape: &ConvShape,
    filter: &Tensor<T>,
    input: &Tensor<T>,
) -> Tensor<T> {
    dgrad(shape, filter, input)
}

/// Flatten the output-gradient tensor to the `M × Co` matrix the per-tap
/// GEMMs consume.
fn dout_matrix<T: Scalar>(shape: &ConvShape, dout: &Tensor<T>) -> Matrix<T> {
    let (ho, wo) = (shape.out_h(), shape.out_w());
    Matrix::from_fn(shape.lowered_rows(), shape.co, |row, co| {
        let n = row / (ho * wo);
        let oh = (row / wo) % ho;
        let ow = row % wo;
        dout.get(Coord::new(n, co, oh, ow))
    })
}

/// Inner product of two same-dims tensors (adjoint-identity test helper).
pub fn inner<T: Scalar>(a: &Tensor<T>, b: &Tensor<T>) -> T {
    assert_eq!(a.dims(), b.dims(), "dims mismatch");
    let mut acc = T::zero();
    for c in a.dims().iter() {
        acc += a.get(c) * b.get(c);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use iconv_tensor::conv_ref::direct_conv;

    fn cases() -> Vec<ConvShape> {
        vec![
            ConvShape::square(1, 3, 5, 2, 3, 1, 0).unwrap(),
            ConvShape::square(2, 2, 6, 3, 3, 2, 1).unwrap(),
            ConvShape::square(1, 4, 4, 2, 1, 1, 0).unwrap(),
            ConvShape::new(1, 2, 9, 7, 2, 3, 2)
                .dilation(2)
                .pad(1)
                .build()
                .unwrap(),
        ]
    }

    #[test]
    fn wgrad_matches_reference() {
        for (i, s) in cases().into_iter().enumerate() {
            let x = Tensor::<i64>::random(ifmap_dims(&s), Layout::Nchw, i as u64);
            let dy = Tensor::<i64>::random(ofmap_dims(&s), Layout::Nchw, 40 + i as u64);
            assert!(
                wgrad(&s, &x, &dy).approx_eq(&wgrad_ref(&s, &x, &dy), 0.0),
                "case {i} ({s})"
            );
        }
    }

    #[test]
    fn dgrad_matches_reference() {
        for (i, s) in cases().into_iter().enumerate() {
            let f = Tensor::<i64>::random(filter_dims(&s), Layout::Nchw, 60 + i as u64);
            let dy = Tensor::<i64>::random(ofmap_dims(&s), Layout::Nchw, 80 + i as u64);
            assert!(
                dgrad(&s, &f, &dy).approx_eq(&dgrad_ref(&s, &f, &dy), 0.0),
                "case {i} ({s})"
            );
        }
    }

    #[test]
    fn adjoint_identities_hold_exactly() {
        // <dY, conv(X; W)> = <wgrad(X, dY), W> = <dgrad(W, dY), X>.
        for (i, s) in cases().into_iter().enumerate() {
            let x = Tensor::<i64>::random(ifmap_dims(&s), Layout::Nchw, 7 + i as u64);
            let f = Tensor::<i64>::random(filter_dims(&s), Layout::Nchw, 17 + i as u64);
            let dy = Tensor::<i64>::random(ofmap_dims(&s), Layout::Nchw, 27 + i as u64);
            let y = direct_conv(&s, &x, &f);
            let lhs = inner(&dy, &y);
            assert_eq!(
                lhs,
                inner(&wgrad(&s, &x, &dy), &f),
                "wgrad adjoint, case {i}"
            );
            assert_eq!(
                lhs,
                inner(&dgrad(&s, &f, &dy), &x),
                "dgrad adjoint, case {i}"
            );
        }
    }

    #[test]
    fn padding_gradient_is_discarded_not_leaked() {
        // With padding, some dY contributions map to padding pixels; dgrad
        // must drop them, and the adjoint identity (which it passes) plus
        // this bound check confirm nothing lands out of bounds.
        let s = ConvShape::square(1, 1, 3, 1, 3, 1, 1).unwrap();
        let f = Tensor::<i64>::from_fn(filter_dims(&s), Layout::Nchw, |_| 1);
        let dy = Tensor::<i64>::from_fn(ofmap_dims(&s), Layout::Nchw, |_| 1);
        let dx = dgrad(&s, &f, &dy);
        // Centre pixel is covered by all 9 windows; corners by 4.
        assert_eq!(dx.get(Coord::new(0, 0, 1, 1)), 9);
        assert_eq!(dx.get(Coord::new(0, 0, 0, 0)), 4);
    }

    #[test]
    fn conv_transpose_upsamples_stride_2() {
        // Stride-2 transpose conv with a one-hot 1x1-ish filter scatters
        // each input pixel to every other output position.
        let s = ConvShape::square(1, 1, 4, 1, 2, 2, 0).unwrap(); // Ho=Wo=2
        let f = Tensor::<i64>::from_fn(filter_dims(&s), Layout::Nchw, |c| {
            i64::from(c.h == 0 && c.w == 0)
        });
        let up =
            Tensor::<i64>::from_fn(ofmap_dims(&s), Layout::Nchw, |c| (c.h * 2 + c.w + 1) as i64);
        let out = conv_transpose(&s, &f, &up);
        assert_eq!(out.dims(), ifmap_dims(&s));
        // Input (oh, ow) lands at output (2oh, 2ow).
        assert_eq!(out.get(Coord::new(0, 0, 0, 0)), 1);
        assert_eq!(out.get(Coord::new(0, 0, 0, 2)), 2);
        assert_eq!(out.get(Coord::new(0, 0, 2, 2)), 4);
        // Odd positions stay zero.
        assert_eq!(out.get(Coord::new(0, 0, 1, 1)), 0);
    }

    #[test]
    fn pointwise_wgrad_is_plain_gemm() {
        let s = ConvShape::square(2, 3, 4, 5, 1, 1, 0).unwrap();
        let x = Tensor::<i64>::random(ifmap_dims(&s), Layout::Nchw, 5);
        let dy = Tensor::<i64>::random(ofmap_dims(&s), Layout::Nchw, 6);
        let dw = wgrad(&s, &x, &dy);
        // Hand-compute one entry: dW[co=2][ci=1] = sum over pixels.
        let mut acc = 0i64;
        for n in 0..2 {
            for h in 0..4 {
                for w in 0..4 {
                    acc += x.get(Coord::new(n, 1, h, w)) * dy.get(Coord::new(n, 2, h, w));
                }
            }
        }
        assert_eq!(dw.get(Coord::new(2, 1, 0, 0)), acc);
    }
}
