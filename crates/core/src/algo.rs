//! Functional executors for every convolution-lowering algorithm in the
//! paper, all provably equal to the direct-convolution golden model.
//!
//! These are the *semantic* definitions the simulators time. The explicit
//! baseline materializes the lowered matrix; the implicit variants never do.

use crate::block::{BlockConfig, BlockDecomposition, FetchOrder};
use crate::schedule::TileSchedule;
use iconv_tensor::conv_ref::{filter_dims, ifmap_dims};
use iconv_tensor::im2col::{entry_coord, filter_matrix, ofmap_from_matrix};
use iconv_tensor::{ColumnOrder, ConvShape, Matrix, Scalar, Tensor};
use std::fmt;

/// The convolution-lowering algorithms compared throughout the paper.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ConvAlgorithm {
    /// Explicit im2col: materialize the lowered matrix, then one big GEMM
    /// (paper Sec. II-B baseline; `1.5–10×` memory overhead).
    ExplicitIm2col(ColumnOrder),
    /// Implicit channel-last (Lym et al. / cuDNN style): lowered rows are
    /// formed on the fly from a multi-banked SRAM through a crossbar.
    ImplicitChannelLast,
    /// Implicit channel-first (the paper's contribution): filter decomposed
    /// into 1×1 convs, executed per [`TileSchedule`].
    ImplicitChannelFirst {
        /// Multi-tile group size (1 = single-tile).
        group_size: usize,
    },
    /// Block-level channel-first for output-partitioned engines (GPU).
    ImplicitChannelFirstBlocked(BlockConfig, FetchOrder),
}

impl fmt::Display for ConvAlgorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConvAlgorithm::ExplicitIm2col(o) => write!(f, "explicit-im2col({o})"),
            ConvAlgorithm::ImplicitChannelLast => write!(f, "implicit-channel-last"),
            ConvAlgorithm::ImplicitChannelFirst { group_size } => {
                write!(f, "implicit-channel-first(g={group_size})")
            }
            ConvAlgorithm::ImplicitChannelFirstBlocked(c, o) => {
                write!(
                    f,
                    "implicit-channel-first-blocked({}/{}/{}, {o:?})",
                    c.bm, c.bn, c.bk
                )
            }
        }
    }
}

/// Run `algo` on the given tensors. All algorithms produce an `NCHW` OFMap
/// identical (bit-exact for integer scalars) to
/// [`iconv_tensor::conv_ref::direct_conv`].
///
/// # Panics
///
/// Panics if tensor dims do not match `shape`.
pub fn run<T: Scalar>(
    algo: ConvAlgorithm,
    shape: &ConvShape,
    ifmap: &Tensor<T>,
    filter: &Tensor<T>,
) -> Tensor<T> {
    match algo {
        ConvAlgorithm::ExplicitIm2col(order) => {
            iconv_tensor::im2col::conv_explicit(shape, ifmap, filter, order)
        }
        ConvAlgorithm::ImplicitChannelLast => conv_implicit_channel_last(shape, ifmap, filter),
        ConvAlgorithm::ImplicitChannelFirst { group_size } => {
            let sched = TileSchedule::multi_tile(shape, group_size);
            conv_implicit_channel_first(shape, ifmap, filter, &sched)
        }
        ConvAlgorithm::ImplicitChannelFirstBlocked(cfg, order) => {
            BlockDecomposition::new(*shape, cfg, order).execute(ifmap, filter)
        }
    }
}

/// Implicit channel-last convolution: stream each lowered row (one output
/// pixel's receptive field across channels) straight into the GEMM without
/// materializing the matrix — the dataflow of Lym et al. (paper Fig. 3).
///
/// # Panics
///
/// Panics if tensor dims do not match `shape`.
pub fn conv_implicit_channel_last<T: Scalar>(
    shape: &ConvShape,
    ifmap: &Tensor<T>,
    filter: &Tensor<T>,
) -> Tensor<T> {
    assert_eq!(ifmap.dims(), ifmap_dims(shape), "ifmap dims mismatch");
    let b = filter_matrix(shape, filter, ColumnOrder::ChannelLast);
    let mut out = Matrix::<T>::zeros(shape.lowered_rows(), shape.co);
    for row in 0..shape.lowered_rows() {
        for col in 0..shape.lowered_cols() {
            // The "dynamically formed" lowered element.
            let Some(coord) = entry_coord(shape, ColumnOrder::ChannelLast, row, col) else {
                continue;
            };
            let a = ifmap.get(coord);
            if a == T::zero() {
                continue;
            }
            for co in 0..shape.co {
                out[(row, co)] += a * b[(col, co)];
            }
        }
    }
    ofmap_from_matrix(shape, &out)
}

/// Implicit channel-first convolution: execute the decomposed 1×1 convs per
/// `schedule`, accumulating partial OFMaps — the paper's Sec. III algorithm.
///
/// # Panics
///
/// Panics if tensor dims do not match `shape`.
pub fn conv_implicit_channel_first<T: Scalar>(
    shape: &ConvShape,
    ifmap: &Tensor<T>,
    filter: &Tensor<T>,
    schedule: &TileSchedule,
) -> Tensor<T> {
    assert_eq!(ifmap.dims(), ifmap_dims(shape), "ifmap dims mismatch");
    assert_eq!(filter.dims(), filter_dims(shape), "filter dims mismatch");
    let mut out = Matrix::<T>::zeros(shape.lowered_rows(), shape.co);
    let mut ws = iconv_tensor::GemmWorkspace::new();
    for group in schedule.groups() {
        // One merged GEMM per group (associativity of GEMM); the packing
        // workspace is reused across groups so the per-group multiply is
        // allocation-free in steady state.
        let a = group.a_merged(shape, ifmap);
        let b = group.b_merged(shape, filter);
        let partial = a.matmul_with(&b, &mut ws);
        for r in 0..out.rows() {
            for c in 0..out.cols() {
                out[(r, c)] += partial[(r, c)];
            }
        }
    }
    ofmap_from_matrix(shape, &out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use iconv_tensor::conv_ref::direct_conv;
    use iconv_tensor::Layout;

    fn cases() -> Vec<ConvShape> {
        vec![
            ConvShape::square(1, 8, 5, 4, 3, 1, 0).unwrap(), // Fig. 5
            ConvShape::square(2, 3, 9, 5, 3, 2, 1).unwrap(), // strided, padded
            ConvShape::square(1, 4, 7, 2, 1, 1, 0).unwrap(), // pointwise
            ConvShape::new(1, 2, 9, 9, 3, 3, 3)
                .dilation(2)
                .build()
                .unwrap(), // dilated
            ConvShape::new(2, 3, 8, 10, 4, 3, 2)
                .stride_hw(2, 1)
                .pad_hw(1, 0)
                .build()
                .unwrap(), // asymmetric everything
        ]
    }

    fn algos() -> Vec<ConvAlgorithm> {
        vec![
            ConvAlgorithm::ExplicitIm2col(ColumnOrder::ChannelLast),
            ConvAlgorithm::ExplicitIm2col(ColumnOrder::ChannelFirst),
            ConvAlgorithm::ImplicitChannelLast,
            ConvAlgorithm::ImplicitChannelFirst { group_size: 1 },
            ConvAlgorithm::ImplicitChannelFirst { group_size: 2 },
            ConvAlgorithm::ImplicitChannelFirst { group_size: 3 },
            ConvAlgorithm::ImplicitChannelFirstBlocked(
                BlockConfig {
                    bm: 16,
                    bn: 4,
                    bk: 2,
                },
                FetchOrder::Naive,
            ),
            ConvAlgorithm::ImplicitChannelFirstBlocked(
                BlockConfig {
                    bm: 16,
                    bn: 4,
                    bk: 2,
                },
                FetchOrder::Reordered,
            ),
        ]
    }

    #[test]
    fn all_algorithms_equal_golden_model() {
        for shape in cases() {
            let x = Tensor::<i64>::random(ifmap_dims(&shape), Layout::Nchw, 17);
            let f = Tensor::<i64>::random(filter_dims(&shape), Layout::Nchw, 18);
            let want = direct_conv(&shape, &x, &f);
            for algo in algos() {
                let got = run(algo, &shape, &x, &f);
                assert!(want.approx_eq(&got, 0.0), "{algo} on {shape}");
            }
        }
    }

    #[test]
    fn tile_order_is_irrelevant() {
        // Commutativity of accumulation: executing tiles in reverse yields
        // the same result.
        let shape = ConvShape::square(1, 3, 7, 4, 3, 1, 1).unwrap();
        let x = Tensor::<i64>::random(ifmap_dims(&shape), Layout::Nchw, 5);
        let f = Tensor::<i64>::random(filter_dims(&shape), Layout::Nchw, 6);
        let fwd = TileSchedule::single_tile(&shape);
        let rev = {
            let mut groups: Vec<_> = fwd.groups().to_vec();
            groups.reverse();
            // Rebuild via multi_tile-free path: execute group-by-group.
            groups
        };
        let want = conv_implicit_channel_first(&shape, &x, &f, &fwd);
        // Manual reversed accumulation.
        let mut out = Matrix::<i64>::zeros(shape.lowered_rows(), shape.co);
        for g in &rev {
            let p = g.a_merged(&shape, &x).matmul(&g.b_merged(&shape, &f));
            for r in 0..out.rows() {
                for c in 0..out.cols() {
                    out[(r, c)] += p[(r, c)];
                }
            }
        }
        let got = ofmap_from_matrix(&shape, &out);
        assert!(want.approx_eq(&got, 0.0));
    }

    #[test]
    fn f32_paths_agree_within_tolerance() {
        let shape = ConvShape::square(2, 6, 8, 8, 3, 1, 1).unwrap();
        let x = Tensor::<f32>::random(ifmap_dims(&shape), Layout::Nhwc, 7);
        let f = Tensor::<f32>::random(filter_dims(&shape), Layout::Nchw, 8);
        let want = direct_conv(&shape, &x, &f);
        for algo in algos() {
            let got = run(algo, &shape, &x, &f);
            assert!(want.approx_eq(&got, 1e-3), "{algo}");
        }
    }

    #[test]
    fn display_names_are_informative() {
        let a = ConvAlgorithm::ImplicitChannelFirst { group_size: 3 };
        assert_eq!(a.to_string(), "implicit-channel-first(g=3)");
    }
}
