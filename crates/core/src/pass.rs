//! The convolution-pass vocabulary: which of the four GEMM-shaped passes a
//! layer runs as.
//!
//! Training chips execute three distinct convolutions per layer — the
//! forward pass, the weight gradient and the input gradient — and
//! generator/segmentation networks add transposed convolution as a primary
//! op. All four are matrix multiplications over *views* of the same three
//! tensors (BP-Im2col), so one [`iconv_tensor::ConvShape`] plus a
//! [`ConvPass`] fully determines the GEMM each pass streams:
//!
//! | pass      | M          | N  | K          | reads          | writes |
//! |-----------|------------|----|------------|----------------|--------|
//! | forward   | `N·Ho·Wo`  | Co | `Hf·Wf·Ci` | IFMap, filter  | OFMap  |
//! | wgrad     | `Hf·Wf·Ci` | Co | `N·Ho·Wo`  | IFMap, dY      | dW     |
//! | dgrad     | `N·Hi·Wi`  | Ci | `Hf·Wf·Co` | dY, filter     | dX     |
//! | transpose | `N·Hi·Wi`  | Ci | `Hf·Wf·Co` | input, filter  | output |
//!
//! dgrad is the forward schedule run through a 180°-rotated filter over the
//! stride-dilated output gradient (see [`crate::backward`]); transposed
//! convolution is the same GEMM applied to an input rather than a gradient,
//! so the two passes share cost structure but are distinct vocabulary (a
//! transpose layer's `shape` describes the *forward* convolution whose
//! adjoint it computes). Forward and wgrad multiply the same three
//! dimension groups, so their dense GEMMs perform exactly `shape.flops()`;
//! the dgrad/transpose *dense* view ranges over input pixels and the
//! stride-dilated gradient, so its `2·M·N·K` is an upper bound on the
//! useful work — the adjoint identity pins useful MACs at `shape.flops()`
//! for every pass, which is what the cost models report.

use iconv_tensor::ConvShape;

/// Which pass of a convolution layer to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum ConvPass {
    /// The inference/forward pass (the paper's sole subject).
    #[default]
    Forward,
    /// Weight gradient: `dW = lowered(IFMap)ᵀ · dY`.
    Wgrad,
    /// Input gradient: `dX = lowered(dY) · rot180(W)ᵀ`.
    Dgrad,
    /// Transposed convolution (a.k.a. deconvolution): the dgrad GEMM
    /// applied to an activation, upsampling `Ho×Wo → Hi×Wi`.
    Transpose,
}

/// All passes, in wire order (the CI matrix iterates this).
pub const ALL_PASSES: [ConvPass; 4] = [
    ConvPass::Forward,
    ConvPass::Wgrad,
    ConvPass::Dgrad,
    ConvPass::Transpose,
];

impl ConvPass {
    /// The canonical wire spelling (also the canonical-key component).
    pub fn wire(self) -> &'static str {
        match self {
            ConvPass::Forward => "forward",
            ConvPass::Wgrad => "wgrad",
            ConvPass::Dgrad => "dgrad",
            ConvPass::Transpose => "transpose",
        }
    }

    /// Parse a wire spelling (the inverse of [`ConvPass::wire`]).
    pub fn from_wire(s: &str) -> Option<Self> {
        match s {
            "forward" => Some(ConvPass::Forward),
            "wgrad" => Some(ConvPass::Wgrad),
            "dgrad" => Some(ConvPass::Dgrad),
            "transpose" => Some(ConvPass::Transpose),
            _ => None,
        }
    }

    /// The `(M, N, K)` of this pass's GEMM view of `shape` (see the module
    /// table). `2·M·N·K == shape.flops()` for every pass.
    pub fn gemm_mnk(self, shape: &ConvShape) -> (usize, usize, usize) {
        let pixels = shape.n * shape.out_h() * shape.out_w();
        let taps_in = shape.hf * shape.wf * shape.ci;
        let taps_out = shape.hf * shape.wf * shape.co;
        match self {
            ConvPass::Forward => (pixels, shape.co, taps_in),
            ConvPass::Wgrad => (taps_in, shape.co, pixels),
            ConvPass::Dgrad | ConvPass::Transpose => {
                (shape.n * shape.hi * shape.wi, shape.ci, taps_out)
            }
        }
    }

    /// Elements of the conceptual lowered matrix this pass would
    /// materialize under *explicit* im2col: `M·K` of the GEMM view. For the
    /// forward and wgrad passes this is the classic lowered IFMap (they
    /// share it, transposed); dgrad/transpose lower the output-side tensor.
    pub fn lowered_view_elems(self, shape: &ConvShape) -> usize {
        let (m, _, k) = self.gemm_mnk(shape);
        m * k
    }

    /// Pointer-table entries of Dukhan's indirect-convolution buffer for
    /// this pass: one pointer per (output pixel, filter tap), shared across
    /// the batch and channel dimensions.
    pub fn indirect_ptr_entries(self, shape: &ConvShape) -> usize {
        let taps = shape.hf * shape.wf;
        match self {
            ConvPass::Forward | ConvPass::Wgrad => shape.out_h() * shape.out_w() * taps,
            ConvPass::Dgrad | ConvPass::Transpose => shape.hi * shape.wi * taps,
        }
    }

    /// Whether this pass streams the *output-side* tensor (dY or the
    /// transpose input) as its gathered operand — i.e. the im2col view is
    /// taken over a `Co`-channel, `Ho×Wo`-spatial tensor rather than the
    /// IFMap.
    pub fn gathers_output_side(self) -> bool {
        matches!(self, ConvPass::Dgrad | ConvPass::Transpose)
    }
}

impl std::fmt::Display for ConvPass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.wire())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape() -> ConvShape {
        ConvShape::square(8, 96, 27, 256, 5, 2, 2).unwrap()
    }

    #[test]
    fn wire_round_trips() {
        for p in ALL_PASSES {
            assert_eq!(ConvPass::from_wire(p.wire()), Some(p));
        }
        assert_eq!(ConvPass::from_wire("sideways"), None);
    }

    #[test]
    fn view_flops_bound_useful_flops() {
        let s = shape();
        for p in ALL_PASSES {
            let (m, n, k) = p.gemm_mnk(&s);
            // The dense view never undercounts the useful work...
            assert!(2 * (m * n * k) as u64 >= s.flops(), "{p}");
        }
        // ...and forward/wgrad perform it exactly.
        for p in [ConvPass::Forward, ConvPass::Wgrad] {
            let (m, n, k) = p.gemm_mnk(&s);
            assert_eq!(2 * (m * n * k) as u64, s.flops(), "{p}");
        }
    }

    #[test]
    fn forward_view_matches_shape_gemm() {
        let s = shape();
        assert_eq!(ConvPass::Forward.gemm_mnk(&s), s.gemm_mnk());
        assert_eq!(ConvPass::Forward.lowered_view_elems(&s), s.lowered_elems());
        // wgrad lowers the same matrix, transposed.
        assert_eq!(ConvPass::Wgrad.lowered_view_elems(&s), s.lowered_elems());
    }

    #[test]
    fn dgrad_and_transpose_share_the_view() {
        let s = shape();
        assert_eq!(
            ConvPass::Dgrad.gemm_mnk(&s),
            ConvPass::Transpose.gemm_mnk(&s)
        );
        let (m, n, k) = ConvPass::Dgrad.gemm_mnk(&s);
        assert_eq!(m, s.n * s.hi * s.wi);
        assert_eq!(n, s.ci);
        assert_eq!(k, s.hf * s.wf * s.co);
    }

    #[test]
    fn pointer_table_is_batch_and_channel_free() {
        let s = shape();
        let fwd = ConvPass::Forward.indirect_ptr_entries(&s);
        assert_eq!(fwd, s.out_h() * s.out_w() * s.hf * s.wf);
        // Doubling the batch or channels leaves the table unchanged.
        let big = ConvShape::square(16, 192, 27, 512, 5, 2, 2).unwrap();
        assert_eq!(ConvPass::Forward.indirect_ptr_entries(&big), fwd);
        assert_eq!(
            ConvPass::Dgrad.indirect_ptr_entries(&s),
            s.hi * s.wi * s.hf * s.wf
        );
    }
}
