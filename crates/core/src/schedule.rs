//! Tile schedules: execution order of the decomposed 1×1 convolutions and
//! the **multi-tile** optimization (paper Sec. IV-B, Figs. 11 & 14).
//!
//! On a `R × R` systolic array, a single tile occupies only `Ci` PE rows.
//! When `Ci < R` (e.g. the 3-channel first layer), the multi-tile
//! optimization merges `g` tiles into one larger GEMM, occupying `g · Ci`
//! rows at the cost of duplicating the IFMap `g×` in the vector memories.
//! The strategy the paper reverse-engineers from TPU-v2 measurements is
//! `g = MIN(R / Ci, Wf)` ([`tpu_group_size`]) — bounded by the filter width
//! so grouped taps share a filter row, and just enough to fill the array.

use crate::decompose::FilterTile;
use iconv_tensor::{ConvShape, Matrix, Scalar, Tensor};
use std::fmt;

/// The multi-tile group size used by the TPU: `min(array_rows / ci, wf)`,
/// at least 1.
///
/// The division rounds *up*: for channel counts that do not divide the
/// array (e.g. `Ci = 96`), merging a second (partially resident) tile lets
/// the K dimension pack the PE rows densely — every point of the paper's
/// Fig. 14b sweep uses exact divisors, where ceiling and floor agree.
///
/// # Examples
///
/// ```
/// # use iconv_core::schedule::tpu_group_size;
/// // Paper Fig. 14: Ci=8, Wf=3 on a 128-row array -> bounded by Wf: 3 tiles.
/// assert_eq!(tpu_group_size(128, 8, 3), 3);
/// // Ci=64: 128/64 = 2 tiles.
/// assert_eq!(tpu_group_size(128, 64, 3), 2);
/// // Ci >= rows: no merging possible.
/// assert_eq!(tpu_group_size(128, 256, 3), 1);
/// // Non-dividing channel count: round up to keep the rows packed.
/// assert_eq!(tpu_group_size(128, 96, 5), 2);
/// ```
pub fn tpu_group_size(array_rows: usize, ci: usize, wf: usize) -> usize {
    array_rows.div_ceil(ci.max(1)).min(wf).max(1)
}

/// Steady-state cycles of a `chunks`-stage pipeline with a per-chunk
/// barrier: compute and memory totals are distributed across the stages with
/// the remainders riding on the leading chunks — chunk `i` runs
/// `max(compute_i, mem_i)` where `compute_i = compute/chunks + (i < compute
/// % chunks)` (same for memory). Closed form of `Σᵢ max(compute_i, mem_i)`
/// over the three index bands, so no per-chunk loop. The result is ≥ both
/// totals, which is what makes `exposed = first_fill + steady − compute`
/// non-negative by construction (the conservation invariant).
///
/// # Panics
///
/// Debug-asserts `chunks > 0`.
pub fn chunked_steady(compute: u64, mem: u64, chunks: u64) -> u64 {
    debug_assert!(chunks > 0);
    let (qc, rc) = (compute / chunks, compute % chunks);
    let (qm, rm) = (mem / chunks, mem % chunks);
    let lo = rc.min(rm); // chunks where both carry a remainder cycle
    let hi = rc.max(rm); // ...where exactly one does
    let mid = if rc >= rm {
        (qc + 1).max(qm)
    } else {
        qc.max(qm + 1)
    };
    lo * (qc.max(qm) + 1) + (hi - lo) * mid + (chunks - hi) * qc.max(qm)
}

/// SRAM fill / compute overlap discipline of a simulated accelerator
/// pipeline — the schedule analogue of the host-side packed GEMM's
/// double-buffered panel reuse.
///
/// Shared by `iconv-tpusim` (chunked DMA pipeline) and `iconv-gpusim`
/// (shared-memory tile fills), and selectable through the serve wire
/// protocol, so the paper tables can carry a tuned-schedule column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PipelineSchedule {
    /// Per-chunk barrier: chunk `i`'s fill overlaps chunk `i−1`'s compute,
    /// but each chunk waits for its own fill *and* the previous compute —
    /// steady state is `Σᵢ max(computeᵢ, memᵢ)` ([`chunked_steady`]).
    #[default]
    SingleBuffered,
    /// Two-deep prefetch (cp.async-style): while chunk `i` computes, chunk
    /// `i+1` streams into the alternate buffer, so after the exposed first
    /// fill the two streams run freely — steady state is
    /// `max(compute, mem − first_fill)`. Never slower than
    /// [`PipelineSchedule::SingleBuffered`] (debug-asserted at every use).
    DoubleBuffered,
}

impl PipelineSchedule {
    /// Every variant, for sweeps.
    pub const ALL: [Self; 2] = [Self::SingleBuffered, Self::DoubleBuffered];

    /// Steady-state cycles after the exposed head `first_fill =
    /// ceil(mem / chunks)`, under this schedule.
    ///
    /// Both forms satisfy the conservation preconditions the reports
    /// assert: `steady ≥ compute` and `first_fill + steady ≥ mem`. The
    /// double-buffered form is additionally bounded above by the
    /// single-buffered one — overlap can hide fill cycles, never add them.
    ///
    /// # Panics
    ///
    /// Debug-asserts `chunks > 0` and the double-buffered ≤ single-buffered
    /// bound.
    pub fn steady_cycles(self, compute: u64, mem: u64, chunks: u64) -> u64 {
        debug_assert!(chunks > 0);
        match self {
            Self::SingleBuffered => chunked_steady(compute, mem, chunks),
            Self::DoubleBuffered => {
                let first_fill = mem.div_ceil(chunks);
                let steady = compute.max(mem - first_fill);
                // Σᵢ max(cᵢ, mᵢ) ≥ max(C, M) ≥ max(C, M − ff): fill overlap
                // may never make the tuned schedule slower.
                debug_assert!(steady <= chunked_steady(compute, mem, chunks));
                steady
            }
        }
    }

    /// Short stable token used in wire formats and cache keys.
    pub fn wire_name(self) -> &'static str {
        match self {
            Self::SingleBuffered => "single",
            Self::DoubleBuffered => "double",
        }
    }

    /// Inverse of [`PipelineSchedule::wire_name`].
    pub fn from_wire(s: &str) -> Option<Self> {
        match s {
            "single" => Some(Self::SingleBuffered),
            "double" => Some(Self::DoubleBuffered),
            _ => None,
        }
    }
}

impl fmt::Display for PipelineSchedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.wire_name())
    }
}

/// A group of filter tiles executed as one merged GEMM.
///
/// The merged operands are the horizontal/vertical concatenations of the
/// member tiles' `a_tile`/`b_tile`; correctness is "guaranteed by the
/// associativity of GEMM" (paper Sec. IV-B) and tested in [`crate::algo`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TileGroup {
    tiles: Vec<FilterTile>,
}

impl TileGroup {
    /// Create a group from tiles.
    ///
    /// # Panics
    ///
    /// Panics if `tiles` is empty.
    pub fn new(tiles: Vec<FilterTile>) -> Self {
        assert!(
            !tiles.is_empty(),
            "a tile group must contain at least one tile"
        );
        Self { tiles }
    }

    /// The member tiles.
    pub fn tiles(&self) -> &[FilterTile] {
        &self.tiles
    }

    /// Number of member tiles = IFMap duplication factor in the vector
    /// memories (paper Fig. 11: computing ⟨1,1⟩ and ⟨1,2⟩ together stores
    /// each channel twice).
    pub fn duplication(&self) -> usize {
        self.tiles.len()
    }

    /// Systolic-array rows occupied by the merged GEMM: `len · Ci`.
    pub fn occupied_rows(&self, shape: &ConvShape) -> usize {
        self.tiles.len() * shape.ci
    }

    /// Merged `M × (g·Ci)` lowered slice: member `a_tile`s side by side.
    pub fn a_merged<T: Scalar>(&self, shape: &ConvShape, ifmap: &Tensor<T>) -> Matrix<T> {
        let parts: Vec<Matrix<T>> = self.tiles.iter().map(|t| t.a_tile(shape, ifmap)).collect();
        Matrix::from_fn(shape.lowered_rows(), self.tiles.len() * shape.ci, |r, c| {
            parts[c / shape.ci][(r, c % shape.ci)]
        })
    }

    /// Merged `(g·Ci) × Co` filter slice: member `b_tile`s stacked.
    pub fn b_merged<T: Scalar>(&self, shape: &ConvShape, filter: &Tensor<T>) -> Matrix<T> {
        let parts: Vec<Matrix<T>> = self.tiles.iter().map(|t| t.b_tile(shape, filter)).collect();
        Matrix::from_fn(self.tiles.len() * shape.ci, shape.co, |k, co| {
            parts[k / shape.ci][(k % shape.ci, co)]
        })
    }
}

impl fmt::Display for TileGroup {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "group[")?;
        for (i, t) in self.tiles.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, "]")
    }
}

/// A complete schedule: every filter tile assigned to exactly one group,
/// groups executed in order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TileSchedule {
    groups: Vec<TileGroup>,
}

impl TileSchedule {
    /// One tile per group, raster order — the unmerged baseline.
    pub fn single_tile(shape: &ConvShape) -> Self {
        Self {
            groups: FilterTile::all(shape)
                .into_iter()
                .map(|t| TileGroup::new(vec![t]))
                .collect(),
        }
    }

    /// Group up to `group_size` tiles *within each filter row* (taps with the
    /// same `fh`), raster order — the multi-tile schedule. `group_size` is
    /// clamped to `[1, Wf]`.
    pub fn multi_tile(shape: &ConvShape, group_size: usize) -> Self {
        let g = group_size.clamp(1, shape.wf);
        let mut groups = Vec::new();
        for fh in 0..shape.hf {
            let mut fw = 0;
            while fw < shape.wf {
                let end = (fw + g).min(shape.wf);
                groups.push(TileGroup::new(
                    (fw..end).map(|w| FilterTile::new(fh, w)).collect(),
                ));
                fw = end;
            }
        }
        Self { groups }
    }

    /// The TPU strategy: [`multi_tile`](Self::multi_tile) with
    /// [`tpu_group_size`]`(array_rows, ci, wf)`.
    /// # Examples
    ///
    /// ```
    /// # use iconv_core::TileSchedule;
    /// # use iconv_tensor::ConvShape;
    /// # fn main() -> Result<(), iconv_tensor::ShapeError> {
    /// // An 8-channel 3x3 layer on a 128-row array: merge 3 taps per pass.
    /// let shape = ConvShape::square(8, 8, 56, 64, 3, 1, 1)?;
    /// let sched = TileSchedule::tpu(&shape, 128);
    /// assert_eq!(sched.max_duplication(), 3);
    /// assert_eq!(sched.max_occupied_rows(&shape), 24);
    /// # Ok(()) }
    /// ```
    pub fn tpu(shape: &ConvShape, array_rows: usize) -> Self {
        Self::multi_tile(shape, tpu_group_size(array_rows, shape.ci, shape.wf))
    }

    /// The groups, in execution order.
    pub fn groups(&self) -> &[TileGroup] {
        &self.groups
    }

    /// Iterate over all tiles in execution order.
    pub fn tiles(&self) -> impl Iterator<Item = FilterTile> + '_ {
        self.groups.iter().flat_map(|g| g.tiles().iter().copied())
    }

    /// Largest group size = peak IFMap duplication in the vector memories.
    pub fn max_duplication(&self) -> usize {
        self.groups
            .iter()
            .map(TileGroup::duplication)
            .max()
            .unwrap_or(1)
    }

    /// Peak systolic rows occupied by any group.
    pub fn max_occupied_rows(&self, shape: &ConvShape) -> usize {
        self.groups
            .iter()
            .map(|g| g.occupied_rows(shape))
            .max()
            .unwrap_or(0)
    }

    /// Mean PE-row occupancy across groups (each group weighted by its GEMM
    /// work), as a fraction of `array_rows`; the array-utilization metric of
    /// Figs. 14a/16a. Capped at 1.
    pub fn row_utilization(&self, shape: &ConvShape, array_rows: usize) -> f64 {
        if self.groups.is_empty() {
            return 0.0;
        }
        // Every group streams the same M rows, so weights are proportional
        // to occupied rows; utilization = sum(occ·occ)/sum(occ)/R would
        // overweight big groups. The natural metric: total MACs done /
        // (cycles · R) where cycles ∝ sum over groups of M. Both numerator
        // and denominator share M, giving mean occupied/R.
        let total: usize = self.groups.iter().map(|g| g.occupied_rows(shape)).sum();
        (total as f64 / self.groups.len() as f64 / array_rows as f64).min(1.0)
    }
}

impl fmt::Display for TileSchedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "schedule({} groups)", self.groups.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn shape(ci: usize, f: usize) -> ConvShape {
        ConvShape::square(1, ci, 12, 16, f, 1, f / 2).unwrap()
    }

    #[test]
    fn tpu_group_size_matches_paper_table() {
        // Fig. 14b sweep: Ci in {4, 8, 16, 32, 64, 128}, Wf = 3.
        for (ci, want) in [(4, 3), (8, 3), (16, 3), (32, 3), (64, 2), (128, 1)] {
            assert_eq!(tpu_group_size(128, ci, 3), want, "ci={ci}");
        }
        // 7x7 first layer with Ci=3: 128/3 = 42 > 7 -> bounded by Wf = 7.
        assert_eq!(tpu_group_size(128, 3, 7), 7);
    }

    #[test]
    fn single_tile_schedule_covers_all_tiles_once() {
        let s = shape(8, 3);
        let sched = TileSchedule::single_tile(&s);
        assert_eq!(sched.groups().len(), 9);
        assert_eq!(sched.max_duplication(), 1);
        let tiles: Vec<_> = sched.tiles().collect();
        assert_eq!(tiles, FilterTile::all(&s));
    }

    #[test]
    fn multi_tile_partitions_within_filter_rows() {
        let s = shape(8, 3);
        let sched = TileSchedule::multi_tile(&s, 2);
        // Each filter row of 3 taps splits into [2, 1] -> 6 groups.
        assert_eq!(sched.groups().len(), 6);
        for g in sched.groups() {
            let fh0 = g.tiles()[0].fh;
            assert!(g.tiles().iter().all(|t| t.fh == fh0), "group spans rows");
        }
        // Exact cover.
        let seen: BTreeSet<_> = sched.tiles().collect();
        assert_eq!(seen.len(), 9);
    }

    #[test]
    fn multi_tile_clamps_group_size() {
        let s = shape(8, 3);
        assert_eq!(TileSchedule::multi_tile(&s, 0).max_duplication(), 1);
        assert_eq!(TileSchedule::multi_tile(&s, 99).max_duplication(), 3);
    }

    #[test]
    fn tpu_schedule_fills_array_for_small_channels() {
        // Ci=8 on 128 rows, 3x3 filter: groups of 3 -> 24 rows occupied.
        let s = shape(8, 3);
        let sched = TileSchedule::tpu(&s, 128);
        assert_eq!(sched.max_duplication(), 3);
        assert_eq!(sched.max_occupied_rows(&s), 24);
        // Ci=128: no merging.
        let s = shape(128, 3);
        assert_eq!(TileSchedule::tpu(&s, 128).max_duplication(), 1);
    }

    #[test]
    fn utilization_improves_with_grouping() {
        let s = shape(8, 3);
        let u1 = TileSchedule::single_tile(&s).row_utilization(&s, 128);
        let u3 = TileSchedule::tpu(&s, 128).row_utilization(&s, 128);
        assert!((u1 - 8.0 / 128.0).abs() < 1e-12);
        assert!(u3 > 2.9 * u1 && u3 <= 3.0 * u1 + 1e-12);
    }

    #[test]
    fn merged_operands_have_expected_shapes() {
        let s = shape(4, 3);
        let x = iconv_tensor::Tensor::<i32>::random(
            iconv_tensor::conv_ref::ifmap_dims(&s),
            iconv_tensor::Layout::Nchw,
            1,
        );
        let f = iconv_tensor::Tensor::<i32>::random(
            iconv_tensor::conv_ref::filter_dims(&s),
            iconv_tensor::Layout::Nchw,
            2,
        );
        let g = TileGroup::new(vec![FilterTile::new(0, 0), FilterTile::new(0, 1)]);
        let a = g.a_merged(&s, &x);
        let b = g.b_merged(&s, &f);
        assert_eq!(a.shape(), (s.lowered_rows(), 8));
        assert_eq!(b.shape(), (8, s.co));
        // Merged product equals the sum of per-tile products.
        let want_sum = {
            let p0 = g.tiles()[0]
                .a_tile(&s, &x)
                .matmul(&g.tiles()[0].b_tile(&s, &f));
            let p1 = g.tiles()[1]
                .a_tile(&s, &x)
                .matmul(&g.tiles()[1].b_tile(&s, &f));
            iconv_tensor::Matrix::from_fn(p0.rows(), p0.cols(), |r, c| p0[(r, c)] + p1[(r, c)])
        };
        assert_eq!(a.matmul(&b), want_sum);
    }

    #[test]
    #[should_panic(expected = "at least one tile")]
    fn empty_group_panics() {
        let _ = TileGroup::new(vec![]);
    }

    #[test]
    fn chunked_steady_matches_explicit_loop() {
        for compute in [0u64, 1, 7, 100, 1023] {
            for mem in [0u64, 1, 9, 100, 2048] {
                for chunks in [1u64, 2, 3, 5, 16] {
                    let mut want = 0;
                    for i in 0..chunks {
                        let c = compute / chunks + u64::from(i < compute % chunks);
                        let m = mem / chunks + u64::from(i < mem % chunks);
                        want += c.max(m);
                    }
                    assert_eq!(
                        chunked_steady(compute, mem, chunks),
                        want,
                        "c={compute} m={mem} k={chunks}"
                    );
                }
            }
        }
    }

    #[test]
    fn double_buffered_never_slower_and_stays_conserved() {
        for compute in [0u64, 1, 7, 100, 900, 1023] {
            for mem in [0u64, 1, 9, 100, 1000, 2048] {
                for chunks in [1u64, 2, 3, 5, 16] {
                    let sb = PipelineSchedule::SingleBuffered.steady_cycles(compute, mem, chunks);
                    let db = PipelineSchedule::DoubleBuffered.steady_cycles(compute, mem, chunks);
                    assert!(db <= sb, "db={db} sb={sb}");
                    // Conservation preconditions both reports assert on.
                    let first_fill = mem.div_ceil(chunks);
                    for steady in [sb, db] {
                        assert!(steady >= compute);
                        assert!(first_fill + steady >= mem);
                    }
                }
            }
        }
    }

    #[test]
    fn double_buffered_hides_fill_exactly_when_compute_bound() {
        // Compute-bound: all memory after the first fill hides entirely.
        assert_eq!(
            PipelineSchedule::DoubleBuffered.steady_cycles(1000, 400, 4),
            1000
        );
        // Memory-bound: steady is the unhidden memory tail.
        assert_eq!(
            PipelineSchedule::DoubleBuffered.steady_cycles(100, 400, 4),
            300
        );
        // Single-buffered pays the per-chunk barrier on the same point.
        assert_eq!(
            PipelineSchedule::SingleBuffered.steady_cycles(100, 400, 4),
            400
        );
    }

    #[test]
    fn schedule_wire_names_round_trip() {
        for s in PipelineSchedule::ALL {
            assert_eq!(PipelineSchedule::from_wire(s.wire_name()), Some(s));
            assert_eq!(s.to_string(), s.wire_name());
        }
        assert_eq!(PipelineSchedule::from_wire("triple"), None);
        assert_eq!(
            PipelineSchedule::default(),
            PipelineSchedule::SingleBuffered
        );
    }
}
