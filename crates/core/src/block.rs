//! Block-level channel-first im2col for output-partitioned GEMM engines
//! (paper Sec. V, Fig. 12).
//!
//! GPUs parallelize GEMM by assigning each **output tile** to a thread
//! block, so partial sums must stay inside a block (no atomics). The flat
//! filter-decomposition schedule would accumulate the OFMap `Hf·Wf` times
//! globally; the block-level variant instead applies the channel-first
//! decomposition *inside* each output tile: a block iterates over the
//! K-dimension in channel-first order (per-tap `Ci` slices), fetching each
//! tap's input sub-tile from global memory into shared memory and running a
//! tensor-core GEMM per slice.
//!
//! [`FetchOrder::Reordered`] implements the inter-tile reuse optimization
//! (Sec. V "Inter-tile Reuse"): consecutive taps are ordered greedily by
//! working-set overlap, so part of each shared-memory fill is already
//! resident. The paper leaves optimal reordering to future work; the greedy
//! nearest-neighbour order here is the "simple reordering" it describes.

use crate::decompose::FilterTile;
use iconv_tensor::conv_ref::{filter_dims, ifmap_dims};
use iconv_tensor::{ConvShape, Coord, Matrix, Scalar, Tensor};
use std::collections::BTreeSet;

/// Thread-block tiling of the output GEMM (`M = N·Ho·Wo` × `N = Co`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BlockConfig {
    /// Output rows per thread block (`M` tile).
    pub bm: usize,
    /// Output columns per thread block (`N` tile).
    pub bn: usize,
    /// K-slice depth per shared-memory stage (≤ `Ci`; one tap is split into
    /// `ceil(Ci / bk)` slices).
    pub bk: usize,
}

impl BlockConfig {
    /// The CUDA-SDK-style 128×128×32 blocking used by the paper's
    /// `cudaTensorCoreGemm`-based implementation.
    pub fn cuda_sdk() -> Self {
        Self {
            bm: 128,
            bn: 128,
            bk: 32,
        }
    }
}

/// Execution order of the decomposed filter taps within each block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum FetchOrder {
    /// Taps "as they show up on the original filter" (raster) — no reuse.
    #[default]
    Naive,
    /// Greedy nearest-neighbour by working-set overlap — the inter-tile
    /// reuse optimization.
    Reordered,
}

/// One thread block's output tile: rows `row0 .. row0+rows`, columns
/// `col0 .. col0+cols` of the output matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutputBlock {
    /// First output-matrix row.
    pub row0: usize,
    /// Row count (≤ `bm`; edge blocks are smaller).
    pub rows: usize,
    /// First output-matrix column.
    pub col0: usize,
    /// Column count (≤ `bn`).
    pub cols: usize,
}

/// One K-stage of a block: tap `tile`, channels `ci0 .. ci0+ci_len`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KSlice {
    /// The decomposed filter tap.
    pub tile: FilterTile,
    /// First channel of the slice.
    pub ci0: usize,
    /// Channel count (≤ `bk`).
    pub ci_len: usize,
}

/// The block-level decomposition of one convolution.
#[derive(Debug, Clone)]
pub struct BlockDecomposition {
    shape: ConvShape,
    config: BlockConfig,
    order: FetchOrder,
    /// Tap order resolved once at construction (the greedy reorder walks
    /// whole-plane working sets, too costly to recompute per block).
    taps: Vec<FilterTile>,
}

impl BlockDecomposition {
    /// Create a decomposition.
    pub fn new(shape: ConvShape, config: BlockConfig, order: FetchOrder) -> Self {
        let taps = match order {
            FetchOrder::Naive => FilterTile::all(&shape),
            FetchOrder::Reordered => reordered_taps(&shape),
        };
        Self {
            shape,
            config,
            order,
            taps,
        }
    }

    /// The convolution being decomposed.
    pub fn shape(&self) -> &ConvShape {
        &self.shape
    }

    /// The blocking parameters.
    pub fn config(&self) -> BlockConfig {
        self.config
    }

    /// Taps in the configured fetch order (resolved at construction).
    pub fn tap_order(&self) -> Vec<FilterTile> {
        self.taps.clone()
    }

    /// The configured fetch order.
    pub fn order(&self) -> FetchOrder {
        self.order
    }

    /// All thread-block output tiles, row-major over the output matrix.
    pub fn output_blocks(&self) -> Vec<OutputBlock> {
        let (m, n, _) = self.shape.gemm_mnk();
        let mut blocks = Vec::new();
        let mut row0 = 0;
        while row0 < m {
            let rows = self.config.bm.min(m - row0);
            let mut col0 = 0;
            while col0 < n {
                let cols = self.config.bn.min(n - col0);
                blocks.push(OutputBlock {
                    row0,
                    rows,
                    col0,
                    cols,
                });
                col0 += cols;
            }
            row0 += rows;
        }
        blocks
    }

    /// The K-slices each block iterates, in fetch order: for each tap (in
    /// [`Self::tap_order`]), `ceil(Ci / bk)` channel slices.
    pub fn k_slices(&self) -> Vec<KSlice> {
        let mut slices = Vec::new();
        for tile in self.tap_order() {
            let mut ci0 = 0;
            while ci0 < self.shape.ci {
                let ci_len = self.config.bk.min(self.shape.ci - ci0);
                slices.push(KSlice { tile, ci0, ci_len });
                ci0 += ci_len;
            }
        }
        slices
    }

    /// The distinct input pixels `(h, w)` a block must fetch for one tap —
    /// the shared-memory A-subtile footprint, per channel per image.
    pub fn block_tap_pixels(
        &self,
        block: &OutputBlock,
        tile: FilterTile,
    ) -> BTreeSet<(usize, usize)> {
        let (ho, wo) = (self.shape.out_h(), self.shape.out_w());
        let mut set = BTreeSet::new();
        for r in block.row0..block.row0 + block.rows {
            let oh = (r / wo) % ho;
            let ow = r % wo;
            if let Some(p) = tile.input_pixel(&self.shape, oh, ow) {
                set.insert(p);
            }
        }
        set
    }

    /// The distinct `(image, h, w)` input coordinates a block must fetch
    /// for one tap — per-image, so blocks spanning batch boundaries count
    /// each image's footprint separately.
    fn block_tap_coords(
        &self,
        block: &OutputBlock,
        tile: FilterTile,
    ) -> BTreeSet<(usize, usize, usize)> {
        let (ho, wo) = (self.shape.out_h(), self.shape.out_w());
        let per_img = ho * wo;
        let mut set = BTreeSet::new();
        for r in block.row0..block.row0 + block.rows {
            let img = r / per_img;
            let oh = (r / wo) % ho;
            let ow = r % wo;
            if let Some((h, w)) = tile.input_pixel(&self.shape, oh, ow) {
                set.insert((img, h, w));
            }
        }
        set
    }

    /// Global-memory elements fetched by `block` across its decomposed
    /// filter taps, with and without counting reuse from the previously
    /// resident tap's sub-tile: returns `(total_without_reuse,
    /// total_with_reuse)` in elements (distinct `(image, pixel)` coordinates
    /// × all `Ci` channels).
    ///
    /// Reuse is accounted at **tap granularity**: the on-chip window
    /// (shared memory + L2) is assumed to retain one tap's full working set,
    /// so the next tap only fetches the coordinates outside the overlap —
    /// the Sec. V inter-tile-reuse model. Channel sub-slicing (`bk`) affects
    /// compute staging, not traffic: each (pixel, channel) is fetched once
    /// per tap visit regardless of slicing.
    pub fn block_fetch_elems(&self, block: &OutputBlock) -> (u64, u64) {
        let ci = self.shape.ci as u64;
        let mut cold = 0u64;
        let mut warm = 0u64;
        let mut prev: Option<BTreeSet<(usize, usize, usize)>> = None;
        for tile in self.tap_order() {
            let coords = self.block_tap_coords(block, tile);
            cold += coords.len() as u64 * ci;
            let fresh = match &prev {
                Some(p) => coords.difference(p).count() as u64,
                None => coords.len() as u64,
            };
            warm += fresh * ci;
            prev = Some(coords);
        }
        (cold, warm)
    }

    /// Whole-layer global traffic in elements: `(naive, with_reuse)` summed
    /// over all blocks. The ratio drives the Fig. 18b speedups.
    pub fn layer_fetch_elems(&self) -> (u64, u64) {
        let mut cold = 0;
        let mut warm = 0;
        for b in self.output_blocks() {
            let (c, w) = self.block_fetch_elems(&b);
            cold += c;
            warm += w;
        }
        (cold, warm)
    }

    /// Functional execution: compute the convolution with the block-level
    /// schedule (each block accumulates privately — no cross-block writes),
    /// proving the schedule needs no atomics. Output in `NCHW`.
    ///
    /// # Panics
    ///
    /// Panics if tensor dims do not match the shape.
    pub fn execute<T: Scalar>(&self, ifmap: &Tensor<T>, filter: &Tensor<T>) -> Tensor<T> {
        assert_eq!(ifmap.dims(), ifmap_dims(&self.shape), "ifmap dims mismatch");
        assert_eq!(
            filter.dims(),
            filter_dims(&self.shape),
            "filter dims mismatch"
        );
        let (m, _, _) = self.shape.gemm_mnk();
        let mut out = Matrix::<T>::zeros(m, self.shape.co);
        let (ho, wo) = (self.shape.out_h(), self.shape.out_w());
        for block in self.output_blocks() {
            for slice in self.k_slices() {
                for r in block.row0..block.row0 + block.rows {
                    let n = r / (ho * wo);
                    let oh = (r / wo) % ho;
                    let ow = r % wo;
                    let Some((h, w)) = slice.tile.input_pixel(&self.shape, oh, ow) else {
                        continue;
                    };
                    for ci in slice.ci0..slice.ci0 + slice.ci_len {
                        let a = ifmap.get(Coord::new(n, ci, h, w));
                        if a == T::zero() {
                            continue;
                        }
                        for co in block.col0..block.col0 + block.cols {
                            let b = filter.get(Coord::new(co, ci, slice.tile.fh, slice.tile.fw));
                            out[(r, co)] += a * b;
                        }
                    }
                }
            }
        }
        iconv_tensor::im2col::ofmap_from_matrix(&self.shape, &out)
    }
}

/// Greedy nearest-neighbour tap order: start at `(0,0)`, repeatedly take the
/// unvisited tap with the largest working-set overlap with the current one
/// (ties broken by raster order).
pub fn reordered_taps(shape: &ConvShape) -> Vec<FilterTile> {
    let all = FilterTile::all(shape);
    if all.len() <= 2 {
        return all;
    }
    // Precompute working sets once; overlap() would recompute per pair.
    let sets: Vec<BTreeSet<(usize, usize)>> = all.iter().map(|t| t.working_set(shape)).collect();
    let mut order = vec![all[0]];
    let mut used = vec![false; all.len()];
    used[0] = true;
    let mut cur = 0usize;
    for _ in 1..all.len() {
        let mut best: Option<(usize, usize)> = None; // (overlap, idx)
        for (i, t) in all.iter().enumerate() {
            let _ = t;
            if used[i] {
                continue;
            }
            let ov = sets[cur].intersection(&sets[i]).count();
            let better = match best {
                None => true,
                Some((bov, bidx)) => ov > bov || (ov == bov && i < bidx),
            };
            if better {
                best = Some((ov, i));
            }
        }
        let (_, idx) = best.expect("unvisited tap must exist");
        used[idx] = true;
        order.push(all[idx]);
        cur = idx;
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use iconv_tensor::conv_ref::direct_conv;
    use iconv_tensor::Layout;

    fn shape() -> ConvShape {
        ConvShape::square(2, 5, 9, 6, 3, 1, 1).unwrap()
    }

    fn cfg() -> BlockConfig {
        BlockConfig {
            bm: 16,
            bn: 4,
            bk: 3,
        }
    }

    #[test]
    fn output_blocks_tile_exactly() {
        let d = BlockDecomposition::new(shape(), cfg(), FetchOrder::Naive);
        let (m, n, _) = shape().gemm_mnk();
        let blocks = d.output_blocks();
        let covered: usize = blocks.iter().map(|b| b.rows * b.cols).sum();
        assert_eq!(covered, m * n);
        // Edge blocks are clipped, not padded.
        assert!(blocks
            .iter()
            .all(|b| b.row0 + b.rows <= m && b.col0 + b.cols <= n));
    }

    #[test]
    fn k_slices_cover_all_taps_and_channels() {
        let d = BlockDecomposition::new(shape(), cfg(), FetchOrder::Naive);
        let slices = d.k_slices();
        // 9 taps × ceil(5/3)=2 slices.
        assert_eq!(slices.len(), 18);
        let total_k: usize = slices.iter().map(|s| s.ci_len).sum();
        assert_eq!(total_k, shape().lowered_cols());
    }

    #[test]
    fn execute_matches_direct_conv_both_orders() {
        let s = shape();
        let x = Tensor::<i64>::random(ifmap_dims(&s), Layout::Nchw, 1);
        let f = Tensor::<i64>::random(filter_dims(&s), Layout::Nchw, 2);
        let want = direct_conv(&s, &x, &f);
        for order in [FetchOrder::Naive, FetchOrder::Reordered] {
            let got = BlockDecomposition::new(s, cfg(), order).execute(&x, &f);
            assert!(want.approx_eq(&got, 0.0), "{order:?}");
        }
    }

    #[test]
    fn execute_matches_with_strides_and_big_blocks() {
        let s = ConvShape::square(1, 3, 11, 4, 3, 2, 1).unwrap();
        let x = Tensor::<i64>::random(ifmap_dims(&s), Layout::Nchw, 3);
        let f = Tensor::<i64>::random(filter_dims(&s), Layout::Nchw, 4);
        let want = direct_conv(&s, &x, &f);
        let big = BlockConfig {
            bm: 1024,
            bn: 1024,
            bk: 1024,
        };
        let got = BlockDecomposition::new(s, big, FetchOrder::Reordered).execute(&x, &f);
        assert!(want.approx_eq(&got, 0.0));
    }

    #[test]
    fn reordered_taps_is_a_permutation() {
        let s = ConvShape::square(1, 2, 9, 2, 5, 2, 2).unwrap();
        let order = reordered_taps(&s);
        let mut sorted = order.clone();
        sorted.sort();
        assert_eq!(sorted, FilterTile::all(&s));
    }

    #[test]
    fn reuse_reduces_traffic_stride_1() {
        // Stride 1: adjacent taps overlap heavily, so reordered traffic is
        // much lower than naive.
        let s = ConvShape::square(1, 8, 28, 8, 3, 1, 1).unwrap();
        let d = BlockDecomposition::new(
            s,
            BlockConfig {
                bm: 64,
                bn: 8,
                bk: 8,
            },
            FetchOrder::Reordered,
        );
        let (cold, warm) = d.layer_fetch_elems();
        assert!(warm < cold, "reuse must reduce traffic: {warm} vs {cold}");
        assert!(
            (warm as f64) < 0.6 * cold as f64,
            "expected >40% cut, got {warm}/{cold}"
        );
    }

    #[test]
    fn reordered_beats_naive_order_under_stride_2() {
        // Under stride 2 only congruent taps share data; the greedy order
        // chains them while the raster order alternates congruence classes.
        let s = ConvShape::square(1, 8, 56, 8, 3, 2, 1).unwrap();
        let naive = BlockDecomposition::new(
            s,
            BlockConfig {
                bm: 64,
                bn: 8,
                bk: 8,
            },
            FetchOrder::Naive,
        );
        let reord = BlockDecomposition::new(
            s,
            BlockConfig {
                bm: 64,
                bn: 8,
                bk: 8,
            },
            FetchOrder::Reordered,
        );
        let (_, warm_naive) = naive.layer_fetch_elems();
        let (_, warm_reord) = reord.layer_fetch_elems();
        assert!(
            warm_reord < warm_naive,
            "reordered {warm_reord} should beat naive {warm_naive}"
        );
    }

    #[test]
    fn block_tap_pixels_respects_block_rows() {
        let s = shape();
        let d = BlockDecomposition::new(s, cfg(), FetchOrder::Naive);
        let blocks = d.output_blocks();
        let tile = FilterTile::new(1, 1);
        // A small block touches at most `rows` pixels.
        let px = d.block_tap_pixels(&blocks[0], tile);
        assert!(px.len() <= blocks[0].rows);
        assert!(!px.is_empty());
    }
}
