//! Filter decomposition into 1×1 convolutions (paper Sec. III-B).
//!
//! Channel-first im2col "essentially decomposes the `Hf × Wf × Ci` filter
//! into `Hf · Wf` 1×1 filters". Each [`FilterTile`] is one such decomposed
//! filter: the tap `(fh, fw)` applied across all channels. Its GEMM operands
//! are an `M × Ci` slice of the lowered matrix ([`FilterTile::a_tile`]) and a
//! `Ci × Co` slice of the filter matrix ([`FilterTile::b_tile`]); the full
//! convolution is the sum of the per-tile products, in **any order**
//! (commutativity of accumulation — tested in [`crate::algo`]).
//!
//! The tile working-set analysis here ([`FilterTile::working_set`],
//! [`FilterTile::overlap`]) also powers two headline results:
//!
//! * stride-insensitivity: a tile's working set (and its GEMM) shrinks by
//!   `stride²`, so SRAM-fill latency stays hidden (Fig. 8b);
//! * inter-tile reuse on GPUs: tiles whose taps are congruent modulo the
//!   stride share most of their working set (Sec. V, Fig. 18b).

use iconv_tensor::conv_ref::{filter_dims, ifmap_dims, input_pixel};
use iconv_tensor::{ConvShape, Coord, Matrix, Scalar, Tensor};
use std::collections::BTreeSet;
use std::fmt;

/// One decomposed 1×1 filter: the tap at `(fh, fw)`.
///
/// The paper writes this `⟨fh+1, fw+1⟩` (1-based); we are 0-based.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FilterTile {
    /// Filter row of the tap.
    pub fh: usize,
    /// Filter column of the tap.
    pub fw: usize,
}

impl FilterTile {
    /// Construct a tile.
    pub fn new(fh: usize, fw: usize) -> Self {
        Self { fh, fw }
    }

    /// All `Hf · Wf` tiles of `shape` in raster (`fh`, then `fw`) order —
    /// the naive execution order.
    /// # Examples
    ///
    /// ```
    /// # use iconv_core::FilterTile;
    /// # use iconv_tensor::ConvShape;
    /// # fn main() -> Result<(), iconv_tensor::ShapeError> {
    /// let shape = ConvShape::square(1, 8, 5, 4, 3, 1, 0)?;
    /// let tiles = FilterTile::all(&shape);
    /// assert_eq!(tiles.len(), 9); // a 3x3 filter decomposes into nine 1x1s
    /// // Stride-insensitivity: working sets shrink with the outputs.
    /// assert_eq!(tiles[0].working_set_len(&shape), 9);
    /// # Ok(()) }
    /// ```
    pub fn all(shape: &ConvShape) -> Vec<FilterTile> {
        let mut v = Vec::with_capacity(shape.hf * shape.wf);
        for fh in 0..shape.hf {
            for fw in 0..shape.wf {
                v.push(FilterTile::new(fh, fw));
            }
        }
        v
    }

    /// Linear tile index in raster order.
    pub fn index(&self, shape: &ConvShape) -> usize {
        self.fh * shape.wf + self.fw
    }

    /// The input pixel `(h, w)` this tile reads for output pixel `(oh, ow)`,
    /// or `None` in the padding.
    pub fn input_pixel(&self, shape: &ConvShape, oh: usize, ow: usize) -> Option<(usize, usize)> {
        input_pixel(shape, oh, ow, self.fh, self.fw)
    }

    /// The distinct valid input pixels `(h, w)` this tile touches across the
    /// whole output plane (per image, per channel): a strided grid.
    pub fn working_set(&self, shape: &ConvShape) -> BTreeSet<(usize, usize)> {
        let mut set = BTreeSet::new();
        for oh in 0..shape.out_h() {
            for ow in 0..shape.out_w() {
                if let Some(p) = self.input_pixel(shape, oh, ow) {
                    set.insert(p);
                }
            }
        }
        set
    }

    /// `|working_set(self) ∩ working_set(other)|` — shared input pixels.
    ///
    /// Closed form (no padding): the grids `{fh·d − p + s·i}` intersect only
    /// when tap offsets are congruent modulo the stride; with congruent taps
    /// the 1-D overlap is `Ho − |Δfh·d| / s`.
    pub fn overlap(&self, other: &FilterTile, shape: &ConvShape) -> usize {
        self.working_set(shape)
            .intersection(&other.working_set(shape))
            .count()
    }

    /// Fraction of `self`'s working set also needed by `other`: the data
    /// reuse a fetch of `other` can get from `self`'s residency.
    ///
    /// Returns 0 when `self`'s working set is empty (degenerate shapes).
    pub fn reuse_fraction(&self, other: &FilterTile, shape: &ConvShape) -> f64 {
        let ws = self.working_set(shape);
        if ws.is_empty() {
            return 0.0;
        }
        let shared = ws.intersection(&other.working_set(shape)).count();
        shared as f64 / ws.len() as f64
    }

    /// The `M × Ci` lowered-matrix slice for this tile: the operand of its
    /// 1×1 GEMM. Row `r` is output pixel `r`, column `ci` is that channel's
    /// value at the tile's tap (0 in the padding).
    ///
    /// # Panics
    ///
    /// Panics if `ifmap` dims do not match `shape`.
    pub fn a_tile<T: Scalar>(&self, shape: &ConvShape, ifmap: &Tensor<T>) -> Matrix<T> {
        assert_eq!(ifmap.dims(), ifmap_dims(shape), "ifmap dims mismatch");
        let (ho, wo) = (shape.out_h(), shape.out_w());
        Matrix::from_fn(shape.lowered_rows(), shape.ci, |row, ci| {
            let n = row / (ho * wo);
            let oh = (row / wo) % ho;
            let ow = row % wo;
            self.input_pixel(shape, oh, ow)
                .map_or_else(T::zero, |(h, w)| ifmap.get(Coord::new(n, ci, h, w)))
        })
    }

    /// The `Ci × Co` filter slice for this tile: weights of tap `(fh, fw)`
    /// across all channel pairs. This is what gets pre-loaded into the
    /// (weight-stationary) systolic array for this tile.
    ///
    /// # Panics
    ///
    /// Panics if `filter` dims do not match `shape`.
    pub fn b_tile<T: Scalar>(&self, shape: &ConvShape, filter: &Tensor<T>) -> Matrix<T> {
        assert_eq!(filter.dims(), filter_dims(shape), "filter dims mismatch");
        Matrix::from_fn(shape.ci, shape.co, |ci, co| {
            filter.get(Coord::new(co, ci, self.fh, self.fw))
        })
    }

    /// Number of distinct output rows `oh` whose tap lands on a valid input
    /// row (not padding) for this tile.
    pub fn valid_out_h(&self, shape: &ConvShape) -> usize {
        count_valid(
            shape.out_h(),
            shape.stride_h,
            self.fh * shape.dil_h,
            shape.pad_h,
            shape.hi,
        )
    }

    /// Number of distinct output columns `ow` whose tap lands on a valid
    /// input column for this tile.
    pub fn valid_out_w(&self, shape: &ConvShape) -> usize {
        count_valid(
            shape.out_w(),
            shape.stride_w,
            self.fw * shape.dil_w,
            shape.pad_w,
            shape.wi,
        )
    }

    /// `|working_set|` in closed form — the pixel grid is a product of the
    /// valid output rows and columns (each output maps to a distinct input
    /// pixel, strides being positive). Tested equal to
    /// [`FilterTile::working_set`]`.len()`. Shrinks ∝ `1/stride²`, the key
    /// to Fig. 8b; multiplied out by channels/batch elsewhere.
    pub fn working_set_len(&self, shape: &ConvShape) -> usize {
        self.valid_out_h(shape) * self.valid_out_w(shape)
    }
}

/// Count `o ∈ [0, out)` with `0 ≤ o·stride + off − pad < extent`.
fn count_valid(out: usize, stride: usize, off: usize, pad: usize, extent: usize) -> usize {
    (0..out)
        .filter(|o| {
            (o * stride + off)
                .checked_sub(pad)
                .is_some_and(|x| x < extent)
        })
        .count()
}

impl fmt::Display for FilterTile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨{},{}⟩", self.fh + 1, self.fw + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iconv_tensor::Layout;

    #[test]
    fn all_tiles_raster_order() {
        let s = ConvShape::square(1, 2, 5, 2, 3, 1, 0).unwrap();
        let tiles = FilterTile::all(&s);
        assert_eq!(tiles.len(), 9);
        assert_eq!(tiles[0], FilterTile::new(0, 0));
        assert_eq!(tiles[5], FilterTile::new(1, 2));
        for (i, t) in tiles.iter().enumerate() {
            assert_eq!(t.index(&s), i);
        }
    }

    #[test]
    fn working_set_stride_one_is_shifted_window() {
        // 5x5 input, 3x3 filter, stride 1, no pad: every tile sees a 3x3
        // output grid of distinct pixels, i.e. 9 pixels.
        let s = ConvShape::square(1, 8, 5, 4, 3, 1, 0).unwrap();
        for tile in FilterTile::all(&s) {
            assert_eq!(tile.working_set_len(&s), 9, "{tile}");
        }
        // Tile ⟨1,1⟩ covers rows/cols 0..2; tile ⟨3,3⟩ covers 2..4.
        let ws = FilterTile::new(0, 0).working_set(&s);
        assert!(ws.contains(&(0, 0)) && ws.contains(&(2, 2)) && !ws.contains(&(3, 3)));
    }

    #[test]
    fn working_set_shrinks_with_stride_squared() {
        // Paper Fig. 8: stride 2 quarters each tile's working set.
        let s1 = ConvShape::square(1, 8, 9, 4, 3, 1, 0).unwrap();
        let s2 = ConvShape::square(1, 8, 9, 4, 3, 2, 0).unwrap();
        let t = FilterTile::new(0, 0);
        let (w1, w2) = (t.working_set_len(&s1), t.working_set_len(&s2));
        assert_eq!(w1, 49); // 7x7 outputs
        assert_eq!(w2, 16); // 4x4 outputs
        assert!((w1 as f64 / w2 as f64 - 4.0).abs() < 1.0);
    }

    #[test]
    fn fig8c_overlap_example() {
        // Paper Fig. 8c: 5x5 input, 3x3 filter, stride 2. Tiles ⟨1,1⟩ and
        // ⟨1,3⟩ (0-based (0,0) and (0,2)) share half their pixels (1C, 3C).
        let s = ConvShape::square(1, 8, 5, 4, 3, 2, 0).unwrap();
        let a = FilterTile::new(0, 0);
        let b = FilterTile::new(0, 2);
        // a reads {(0,0),(0,2),(2,0),(2,2)}; b reads {(0,2),(0,4),(2,2),(2,4)}.
        assert_eq!(a.working_set(&s).len(), 4);
        assert_eq!(a.overlap(&b, &s), 2);
        assert!((a.reuse_fraction(&b, &s) - 0.5).abs() < 1e-12);
        // Non-congruent taps share nothing under stride 2.
        let c = FilterTile::new(0, 1);
        assert_eq!(a.overlap(&c, &s), 0);
    }

    #[test]
    fn large_map_overlap_approaches_96_percent() {
        // Paper: "when the IFMap size increases to 99×99, the working set
        // overlap between these two decomposed filters becomes 96%."
        let s = ConvShape::square(1, 1, 99, 1, 3, 2, 0).unwrap();
        let a = FilterTile::new(0, 0);
        let b = FilterTile::new(0, 2);
        let f = a.reuse_fraction(&b, &s);
        assert!(f > 0.94 && f < 1.0, "reuse fraction = {f}");
    }

    #[test]
    fn a_tile_is_lowered_column_slice() {
        // a_tile(t) must equal columns [tap range] of the channel-first
        // lowered matrix.
        let s = ConvShape::square(2, 3, 6, 2, 3, 2, 1).unwrap();
        let x = Tensor::<i64>::random(iconv_tensor::conv_ref::ifmap_dims(&s), Layout::Nchw, 5);
        let full = iconv_tensor::im2col::lower(&s, &x, iconv_tensor::ColumnOrder::ChannelFirst);
        for tile in FilterTile::all(&s) {
            let a = tile.a_tile(&s, &x);
            let col0 = (tile.fh * s.wf + tile.fw) * s.ci;
            for r in 0..a.rows() {
                for ci in 0..s.ci {
                    assert_eq!(a[(r, ci)], full[(r, col0 + ci)], "{tile} r{r} ci{ci}");
                }
            }
        }
    }

    #[test]
    fn b_tile_extracts_tap_weights() {
        let s = ConvShape::square(1, 2, 5, 3, 3, 1, 0).unwrap();
        let f = Tensor::<i32>::coordinate_coded(filter_dims(&s), Layout::Nchw);
        let b = FilterTile::new(2, 1).b_tile(&s, &f);
        assert_eq!(b.shape(), (2, 3));
        // filter coord (co, ci, 2, 1) encodes co*1e6 + ci*1e4 + 201.
        assert_eq!(b[(1, 2)], 2 * 1_000_000 + 10_000 + 201);
    }

    #[test]
    fn padding_shrinks_edge_tile_working_sets() {
        let s = ConvShape::square(1, 1, 5, 1, 3, 1, 1).unwrap();
        // Corner tap (0,0) misses the first output row/col (padding).
        let corner = FilterTile::new(0, 0).working_set_len(&s);
        let centre = FilterTile::new(1, 1).working_set_len(&s);
        assert_eq!(centre, 25);
        assert_eq!(corner, 16);
    }

    #[test]
    fn dilated_taps_spread_working_sets() {
        let s = ConvShape::new(1, 1, 9, 9, 1, 3, 3)
            .dilation(2)
            .build()
            .unwrap();
        let a = FilterTile::new(0, 0).working_set(&s);
        let b = FilterTile::new(0, 1).working_set(&s);
        // Tap (0,1) is offset by dilation 2 in w.
        assert!(a.contains(&(0, 0)));
        assert!(b.contains(&(0, 2)) && !b.contains(&(0, 1)));
    }

    #[test]
    fn display_is_one_based() {
        assert_eq!(FilterTile::new(0, 0).to_string(), "⟨1,1⟩");
    }

    #[test]
    fn closed_form_working_set_matches_enumeration() {
        let shapes = [
            ConvShape::square(1, 2, 9, 2, 3, 1, 0).unwrap(),
            ConvShape::square(1, 2, 9, 2, 3, 2, 1).unwrap(),
            ConvShape::square(1, 2, 11, 2, 5, 3, 2).unwrap(),
            ConvShape::new(1, 1, 9, 13, 1, 3, 3)
                .stride_hw(2, 1)
                .pad_hw(0, 1)
                .dilation(2)
                .build()
                .unwrap(),
        ];
        for s in shapes {
            for tile in FilterTile::all(&s) {
                assert_eq!(
                    tile.working_set_len(&s),
                    tile.working_set(&s).len(),
                    "{tile} on {s}"
                );
            }
        }
    }
}
