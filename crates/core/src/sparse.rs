//! Structured sparsity on the channel-first schedule — the paper's stated
//! future work ("we believe that our work can encourage future study for
//! designing sparse CNN accelerators based on the described channel-first
//! implicit im2col algorithm", Sec. VIII).
//!
//! The channel-first decomposition makes two sparsity granularities *free*
//! to exploit, because they align with whole scheduling units:
//!
//! * **tap sparsity** — a pruned filter position `⟨fh, fw⟩` that is zero
//!   across all `Ci × Co` weights is simply dropped from the tile schedule:
//!   no gather, no pass, no partial sum. (Channel-last schedules interleave
//!   taps inside every lowered row, so a zero tap still occupies its K
//!   columns.)
//! * **channel-block sparsity** — within a tap, a block of input channels
//!   whose weights are all zero skips its PE rows in the merged pass.
//!
//! [`SparseFilter`] captures both masks from a (pruned) dense filter;
//! [`conv_sparse`] executes the reduced schedule functionally (bit-equal to
//! the dense convolution of the same weights); `iconv-tpusim`'s
//! `simulate_conv_sparse` times it.

use crate::decompose::FilterTile;
use iconv_tensor::conv_ref::{filter_dims, ifmap_dims};
use iconv_tensor::im2col::ofmap_from_matrix;
use iconv_tensor::{ConvShape, Coord, Matrix, Scalar, Tensor};

/// Channel-block granularity for the within-tap mask (PE rows are skipped
/// in blocks of this many channels).
pub const CHANNEL_BLOCK: usize = 8;

/// A filter annotated with its structured-sparsity masks.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseFilter<T> {
    shape: ConvShape,
    filter: Tensor<T>,
    /// `active_taps[tile.index]`: any nonzero weight at this tap.
    active_taps: Vec<bool>,
    /// `active_blocks[tile.index][block]`: any nonzero weight in channel
    /// block `block` of this tap.
    active_blocks: Vec<Vec<bool>>,
}

impl<T: Scalar> SparseFilter<T> {
    /// Analyze a (pruned) dense filter.
    ///
    /// # Panics
    ///
    /// Panics if `filter` dims do not match `shape`.
    pub fn from_dense(shape: ConvShape, filter: Tensor<T>) -> Self {
        assert_eq!(filter.dims(), filter_dims(&shape), "filter dims mismatch");
        let blocks = shape.ci.div_ceil(CHANNEL_BLOCK);
        let mut active_taps = Vec::with_capacity(shape.hf * shape.wf);
        let mut active_blocks = Vec::with_capacity(shape.hf * shape.wf);
        for tile in FilterTile::all(&shape) {
            let mut tap_active = false;
            let mut block_mask = vec![false; blocks];
            for ci in 0..shape.ci {
                for co in 0..shape.co {
                    if filter.get(Coord::new(co, ci, tile.fh, tile.fw)) != T::zero() {
                        tap_active = true;
                        block_mask[ci / CHANNEL_BLOCK] = true;
                    }
                }
            }
            active_taps.push(tap_active);
            active_blocks.push(block_mask);
        }
        Self {
            shape,
            filter,
            active_taps,
            active_blocks,
        }
    }

    /// The convolution shape.
    pub fn shape(&self) -> &ConvShape {
        &self.shape
    }

    /// The underlying (pruned) dense filter.
    pub fn filter(&self) -> &Tensor<T> {
        &self.filter
    }

    /// The taps with any nonzero weight, in raster order.
    pub fn active_tiles(&self) -> Vec<FilterTile> {
        FilterTile::all(&self.shape)
            .into_iter()
            .filter(|t| self.active_taps[t.index(&self.shape)])
            .collect()
    }

    /// Fraction of taps that are active.
    pub fn tap_density(&self) -> f64 {
        self.active_taps.iter().filter(|&&a| a).count() as f64 / self.active_taps.len() as f64
    }

    /// Fraction of (tap × channel-block) scheduling units that are active —
    /// the quantity cycle savings scale with.
    pub fn schedule_density(&self) -> f64 {
        let total: usize = self.active_blocks.iter().map(Vec::len).sum();
        let active: usize = self
            .active_blocks
            .iter()
            .map(|m| m.iter().filter(|&&a| a).count())
            .sum();
        active as f64 / total.max(1) as f64
    }

    /// Active channel blocks of a tap.
    pub fn active_blocks_of(&self, tile: FilterTile) -> &[bool] {
        &self.active_blocks[tile.index(&self.shape)]
    }
}

/// Prune a filter to tap-structured sparsity: keep each tap with
/// probability `keep` (deterministic in `seed`), zeroing pruned taps; the
/// centre tap is always kept so the filter never vanishes.
pub fn prune_taps<T: Scalar>(
    shape: &ConvShape,
    filter: &Tensor<T>,
    keep: f64,
    seed: u64,
) -> Tensor<T> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(7);
    let mut keep_mask = Vec::new();
    for tile in FilterTile::all(shape) {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        let unit = (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64;
        let centre = tile.fh == shape.hf / 2 && tile.fw == shape.wf / 2;
        keep_mask.push(centre || unit < keep);
    }
    Tensor::from_fn(filter_dims(shape), filter.layout(), |c| {
        if keep_mask[c.h * shape.wf + c.w] {
            filter.get(c)
        } else {
            T::zero()
        }
    })
}

/// Channel-first convolution executing only the active scheduling units —
/// bit-equal to the dense convolution of the same (pruned) weights.
///
/// # Panics
///
/// Panics if `ifmap` dims do not match the sparse filter's shape.
pub fn conv_sparse<T: Scalar>(sparse: &SparseFilter<T>, ifmap: &Tensor<T>) -> Tensor<T> {
    let shape = sparse.shape;
    assert_eq!(ifmap.dims(), ifmap_dims(&shape), "ifmap dims mismatch");
    let (ho, wo) = (shape.out_h(), shape.out_w());
    let mut out = Matrix::<T>::zeros(shape.lowered_rows(), shape.co);
    for tile in sparse.active_tiles() {
        let blocks = sparse.active_blocks_of(tile);
        for row in 0..shape.lowered_rows() {
            let n = row / (ho * wo);
            let oh = (row / wo) % ho;
            let ow = row % wo;
            let Some((h, w)) = tile.input_pixel(&shape, oh, ow) else {
                continue;
            };
            for (b, &active) in blocks.iter().enumerate() {
                if !active {
                    continue; // a skipped channel block: no PE rows, no reads
                }
                let ci_end = ((b + 1) * CHANNEL_BLOCK).min(shape.ci);
                for ci in b * CHANNEL_BLOCK..ci_end {
                    let a = ifmap.get(Coord::new(n, ci, h, w));
                    if a == T::zero() {
                        continue;
                    }
                    for co in 0..shape.co {
                        let wv = sparse.filter.get(Coord::new(co, ci, tile.fh, tile.fw));
                        out[(row, co)] += a * wv;
                    }
                }
            }
        }
    }
    ofmap_from_matrix(&shape, &out)
}

/// Convenience: the fraction of dense MACs the sparse schedule performs.
pub fn mac_fraction<T: Scalar>(sparse: &SparseFilter<T>) -> f64 {
    sparse.schedule_density()
}

#[cfg(test)]
mod tests {
    use super::*;
    use iconv_tensor::conv_ref::direct_conv;
    use iconv_tensor::Layout;

    fn shape() -> ConvShape {
        ConvShape::square(2, 16, 8, 6, 3, 1, 1).unwrap()
    }

    fn pruned(keep: f64, seed: u64) -> (Tensor<i64>, SparseFilter<i64>) {
        let s = shape();
        let dense = Tensor::<i64>::random(filter_dims(&s), Layout::Nchw, seed);
        let pruned = prune_taps(&s, &dense, keep, seed + 1);
        let sparse = SparseFilter::from_dense(s, pruned.clone());
        (pruned, sparse)
    }

    #[test]
    fn sparse_conv_equals_dense_of_pruned_weights() {
        let s = shape();
        let x = Tensor::<i64>::random(ifmap_dims(&s), Layout::Nchw, 3);
        for keep in [1.0, 0.6, 0.3, 0.0] {
            let (pruned_filter, sparse) = pruned(keep, 11);
            let want = direct_conv(&s, &x, &pruned_filter);
            let got = conv_sparse(&sparse, &x);
            assert!(want.approx_eq(&got, 0.0), "keep={keep}");
        }
    }

    #[test]
    fn density_tracks_pruning() {
        let (_, dense) = pruned(1.0, 5);
        assert_eq!(dense.tap_density(), 1.0);
        let (_, heavy) = pruned(0.0, 5);
        // Only the centre tap survives keep=0.
        assert!((heavy.tap_density() - 1.0 / 9.0).abs() < 1e-12);
        assert!(heavy.schedule_density() <= heavy.tap_density());
    }

    #[test]
    fn centre_tap_always_survives() {
        let s = shape();
        let (_, sparse) = pruned(0.0, 99);
        let tiles = sparse.active_tiles();
        assert_eq!(tiles.len(), 1);
        assert_eq!(tiles[0], FilterTile::new(1, 1));
        let _ = s;
    }

    #[test]
    fn channel_block_mask_detected() {
        // Zero out channels 8..16 at every tap: one of two blocks inactive.
        let s = shape();
        let f = Tensor::<i64>::from_fn(filter_dims(&s), Layout::Nchw, |c| {
            if c.c >= 8 {
                0
            } else {
                (c.n + c.c + c.h + c.w) as i64 + 1
            }
        });
        let sparse = SparseFilter::from_dense(s, f);
        assert_eq!(sparse.tap_density(), 1.0);
        assert!((sparse.schedule_density() - 0.5).abs() < 1e-12);
        for tile in FilterTile::all(&s) {
            assert_eq!(sparse.active_blocks_of(tile), &[true, false]);
        }
    }

    #[test]
    fn all_zero_filter_is_fully_inactive() {
        let s = shape();
        let sparse = SparseFilter::from_dense(s, Tensor::zeros(filter_dims(&s), Layout::Nchw));
        assert_eq!(sparse.tap_density(), 0.0);
        assert!(sparse.active_tiles().is_empty());
        let x = Tensor::<i64>::random(ifmap_dims(&s), Layout::Nchw, 2);
        let y = conv_sparse(&sparse, &x);
        assert!(y.as_slice().iter().all(|&v| v == 0));
    }
}
