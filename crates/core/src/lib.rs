//! # iconv-core
//!
//! The paper's primary contribution: the **channel-first implicit im2col**
//! algorithm (IISWC 2021, "Characterizing and Demystifying the Implicit
//! Convolution Algorithm on Commercial Matrix-Multiplication Accelerators").
//!
//! The algorithm converts a convolution into GEMM *dynamically* — the
//! lowered matrix never exists in memory — while keeping every IFMap element
//! routed to a **fixed** PE row, so the feeding SRAM needs neither banks nor
//! a crossbar. It rests on three pieces, each a module here:
//!
//! * [`lowered`] — the index algebra of the conceptual lowered matrix and
//!   the column-permutation correctness argument;
//! * [`decompose`] — the filter decomposition into `Hf·Wf` 1×1 convolutions
//!   whose working sets shrink with `stride²` (stride-insensitivity);
//! * [`schedule`] — tile execution orders, including the multi-tile merge
//!   (`min(R/Ci, Wf)`) that fills the array for small channel counts;
//! * [`addrgen`] — the skewed per-SRAM-array address generation that maps
//!   the algorithm onto a TPU-style systolic array;
//! * [`block`] — the block-level variant for output-partitioned engines
//!   (GPU tensor cores), with the inter-tile-reuse reordering;
//! * [`algo`] — functional executors proving every variant equal to direct
//!   convolution;
//! * [`backward`] — the training pass: weight and input gradients lowered
//!   through the same per-tap decomposition (TPU-v2/v3 are training chips).
//!
//! ## Example: three lowerings, one answer
//!
//! ```
//! use iconv_core::algo::{run, ConvAlgorithm};
//! use iconv_tensor::{conv_ref, ColumnOrder, ConvShape, Layout, Tensor};
//!
//! # fn main() -> Result<(), iconv_tensor::ShapeError> {
//! let shape = ConvShape::square(1, 8, 5, 4, 3, 1, 0)?;
//! let x = Tensor::<f32>::random(conv_ref::ifmap_dims(&shape), Layout::Nhwc, 1);
//! let f = Tensor::<f32>::random(conv_ref::filter_dims(&shape), Layout::Nchw, 2);
//! let golden = conv_ref::direct_conv(&shape, &x, &f);
//!
//! for algo in [
//!     ConvAlgorithm::ExplicitIm2col(ColumnOrder::ChannelLast),
//!     ConvAlgorithm::ImplicitChannelLast,
//!     ConvAlgorithm::ImplicitChannelFirst { group_size: 3 },
//! ] {
//!     assert!(golden.approx_eq(&run(algo, &shape, &x, &f), 1e-4));
//! }
//! # Ok(()) }
//! ```

pub mod addrgen;
pub mod algo;
pub mod backward;
pub mod block;
pub mod decompose;
pub mod lowered;
pub mod pass;
pub mod schedule;
pub mod sparse;

pub use addrgen::{AddrGen, ArrayOp, VectorMemSpec, WordAddr};
pub use algo::ConvAlgorithm;
pub use block::{BlockConfig, BlockDecomposition, FetchOrder, KSlice, OutputBlock};
pub use decompose::FilterTile;
pub use lowered::LoweredView;
pub use pass::{ConvPass, ALL_PASSES};
pub use schedule::{chunked_steady, tpu_group_size, PipelineSchedule, TileGroup, TileSchedule};
pub use sparse::SparseFilter;
