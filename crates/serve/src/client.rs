//! A blocking client for the serve protocol: typed one-shot calls plus the
//! split `send`/`recv` surface the load generator uses for windowed
//! pipelining.

use std::fmt;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use iconv_gpusim::GpuAlgo;
use iconv_tensor::ConvShape;
use iconv_tpusim::SimMode;

use crate::protocol::{
    encode_batch, encode_estimate, encode_simple, parse_response, ErrorKind, EstimateRequest,
    GpuEstimate, Response, StatsSnapshot, TpuEstimate, TpuHwSpec, Work,
};

/// One successfully-estimated batch item, in either engine's currency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Estimate {
    /// A TPU (cycle-exact, integer) estimate.
    Tpu(TpuEstimate),
    /// A GPU (analytic, f64) estimate.
    Gpu(GpuEstimate),
}

/// Per-item outcome of a [`Client::batch`] call: the estimate, or the
/// typed protocol error the server attached to that item (deadline, busy,
/// shutting-down).
pub type BatchItemResult = Result<Estimate, (ErrorKind, String)>;

/// Anything that can go wrong on a client call.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (including server disconnect).
    Io(io::Error),
    /// The server's reply could not be decoded.
    Malformed(String),
    /// The server answered with a typed protocol error.
    Server {
        /// The error code.
        kind: ErrorKind,
        /// Human-readable detail.
        detail: String,
    },
    /// The reply decoded fine but was not the kind the call expected.
    Unexpected(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Malformed(d) => write!(f, "malformed response: {d}"),
            ClientError::Server { kind, detail } => write!(f, "server error ({kind}): {detail}"),
            ClientError::Unexpected(d) => write!(f, "unexpected response: {d}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A connected protocol client.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Connect to a serve endpoint.
    ///
    /// # Errors
    ///
    /// Propagates connect/clone failures.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: BufWriter::new(stream),
        })
    }

    /// Connect, retrying until `timeout` elapses — for racing a server
    /// that is still binding its socket (CI boots `served` in the
    /// background and connects "immediately").
    ///
    /// # Errors
    ///
    /// Returns the last connect error once the deadline passes.
    pub fn connect_retry(addr: &str, timeout: Duration) -> io::Result<Client> {
        let deadline = Instant::now() + timeout;
        loop {
            match Client::connect(addr) {
                Ok(c) => return Ok(c),
                Err(e) => {
                    if Instant::now() >= deadline {
                        return Err(e);
                    }
                    std::thread::sleep(Duration::from_millis(20));
                }
            }
        }
    }

    /// Queue one raw request line (no newline) without flushing — the
    /// pipelined half of the API.
    ///
    /// # Errors
    ///
    /// Propagates write failures.
    pub fn send_line(&mut self, line: &str) -> io::Result<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")
    }

    /// Flush queued requests to the server.
    ///
    /// # Errors
    ///
    /// Propagates flush failures.
    pub fn flush(&mut self) -> io::Result<()> {
        self.writer.flush()
    }

    /// Read one raw response line (without the newline).
    ///
    /// # Errors
    ///
    /// Propagates read failures; EOF maps to `UnexpectedEof`.
    pub fn recv_line(&mut self) -> io::Result<String> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        while line.ends_with('\n') || line.ends_with('\r') {
            line.pop();
        }
        Ok(line)
    }

    /// Read and decode one response.
    ///
    /// # Errors
    ///
    /// Transport or decode failures (a typed server error decodes
    /// *successfully* into [`Response::Error`]).
    pub fn recv_response(&mut self) -> Result<Response, ClientError> {
        let line = self.recv_line()?;
        parse_response(&line).map_err(|e| ClientError::Malformed(format!("{e} in {line:?}")))
    }

    /// Send one request line and read its response (the non-pipelined
    /// path; responses come back in request order).
    ///
    /// # Errors
    ///
    /// Transport or decode failures.
    pub fn call(&mut self, line: &str) -> Result<Response, ClientError> {
        self.send_line(line)?;
        self.flush()?;
        self.recv_response()
    }

    fn call_estimate(&mut self, work: Work) -> Result<Response, ClientError> {
        let line = encode_estimate(&EstimateRequest {
            id: None,
            work,
            deadline_ms: None,
        });
        match self.call(&line)? {
            Response::Error { kind, detail, .. } => Err(ClientError::Server { kind, detail }),
            other => Ok(other),
        }
    }

    /// Estimate a TPU convolution.
    ///
    /// # Errors
    ///
    /// Transport, decode, or typed server errors.
    pub fn tpu_conv(
        &mut self,
        shape: &ConvShape,
        mode: SimMode,
        hw: &TpuHwSpec,
    ) -> Result<TpuEstimate, ClientError> {
        match self.call_estimate(Work::TpuConv {
            shape: *shape,
            mode,
            hw: *hw,
        })? {
            Response::Tpu { est, .. } => Ok(est),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Estimate a TPU GEMM.
    ///
    /// # Errors
    ///
    /// Transport, decode, or typed server errors.
    pub fn tpu_gemm(
        &mut self,
        m: usize,
        n: usize,
        k: usize,
        hw: &TpuHwSpec,
    ) -> Result<TpuEstimate, ClientError> {
        match self.call_estimate(Work::TpuGemm { m, n, k, hw: *hw })? {
            Response::Tpu { est, .. } => Ok(est),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Estimate a GPU convolution. The returned `f64` fields are
    /// bit-identical to the server-side simulation.
    ///
    /// # Errors
    ///
    /// Transport, decode, or typed server errors.
    pub fn gpu_conv(
        &mut self,
        shape: &ConvShape,
        algo: GpuAlgo,
    ) -> Result<GpuEstimate, ClientError> {
        match self.call_estimate(Work::GpuConv {
            shape: *shape,
            algo,
        })? {
            Response::Gpu { est, .. } => Ok(est),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Estimate a whole slice of works in one `batch` request. The server
    /// streams item replies in item order followed by a summary line; this
    /// returns one result per input work, in input order.
    ///
    /// # Errors
    ///
    /// Transport or decode failures, a batch-level server error (e.g. a
    /// rejected request), or a summary that does not match the item count.
    /// *Per-item* errors do not fail the call — they come back as the
    /// `Err` variant of that item's [`BatchItemResult`].
    pub fn batch(
        &mut self,
        works: &[Work],
        deadline_ms: Option<u64>,
    ) -> Result<Vec<BatchItemResult>, ClientError> {
        if works.is_empty() {
            return Ok(Vec::new());
        }
        self.send_line(&encode_batch(None, works, deadline_ms))?;
        self.flush()?;
        let mut out = Vec::with_capacity(works.len());
        for i in 0..works.len() {
            match self.recv_response()? {
                Response::Tpu { est, .. } => out.push(Ok(Estimate::Tpu(est))),
                Response::Gpu { est, .. } => out.push(Ok(Estimate::Gpu(est))),
                Response::Error { kind, detail, .. } => {
                    if i == 0 && kind == ErrorKind::BadRequest {
                        // A rejected batch is one error line, not n+1.
                        return Err(ClientError::Server { kind, detail });
                    }
                    out.push(Err((kind, detail)));
                }
                other => return Err(ClientError::Unexpected(format!("{other:?}"))),
            }
        }
        match self.recv_response()? {
            Response::Batch { items, errors, .. } => {
                let want_errors = out.iter().filter(|r| r.is_err()).count() as u64;
                if items != works.len() as u64 || errors != want_errors {
                    return Err(ClientError::Unexpected(format!(
                        "batch summary {items} items / {errors} errors, \
                         expected {} / {want_errors}",
                        works.len()
                    )));
                }
                Ok(out)
            }
            other => Err(ClientError::Unexpected(format!(
                "missing batch summary, got {other:?}"
            ))),
        }
    }

    /// Fetch the server's counter snapshot.
    ///
    /// # Errors
    ///
    /// Transport, decode, or typed server errors.
    pub fn stats(&mut self) -> Result<StatsSnapshot, ClientError> {
        match self.call(&encode_simple("stats", None))? {
            Response::Stats { stats, .. } => Ok(stats),
            Response::Error { kind, detail, .. } => Err(ClientError::Server { kind, detail }),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// Transport, decode, or typed server errors.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.call(&encode_simple("ping", None))? {
            Response::Pong { .. } => Ok(()),
            Response::Error { kind, detail, .. } => Err(ClientError::Server { kind, detail }),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Ask the server to drain and shut down.
    ///
    /// # Errors
    ///
    /// Transport, decode, or typed server errors.
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        match self.call(&encode_simple("shutdown", None))? {
            Response::ShutdownAck { .. } => Ok(()),
            Response::Error { kind, detail, .. } => Err(ClientError::Server { kind, detail }),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }
}
