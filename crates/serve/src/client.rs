//! A blocking client for the serve protocol: typed one-shot calls plus the
//! split `send`/`recv` surface the load generator uses for windowed
//! pipelining, and a [`RetryClient`] wrapper that survives transient
//! faults (drops, short writes, worker crashes) by reconnecting and
//! re-issuing the request.
//!
//! Request-level retry is sound here because every estimate is keyed by
//! its canonical cache key and simulations are pure: re-asking after an
//! ambiguous failure either hits the cache entry the lost answer created
//! or recomputes the identical bytes — idempotent either way.

use std::fmt;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use iconv_faults::{mix64, unit_f64, GOLDEN_GAMMA};

use iconv_gpusim::GpuAlgo;
use iconv_tensor::ConvShape;
use iconv_tpusim::SimMode;

use crate::protocol::{
    encode_batch, encode_estimate, encode_simple, parse_response, ErrorKind, EstimateRequest,
    GpuEstimate, GpuHwSpec, Response, ShardStat, StatsSnapshot, TpuEstimate, TpuHwSpec,
    TuneEstimate, TuneTarget, Work,
};

/// Connect-retry budget shared by every tool that races a freshly-booted
/// server (loadgen, chaosgen, the bench adapter, integration tests). One
/// constant instead of scattered hardcoded `Duration::from_secs(5)` calls;
/// `loadgen --connect-timeout` overrides it per run.
pub const DEFAULT_CONNECT_TIMEOUT: Duration = Duration::from_secs(5);

/// One successfully-estimated batch item, in either engine's currency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Estimate {
    /// A TPU (cycle-exact, integer) estimate.
    Tpu(TpuEstimate),
    /// A GPU (analytic, f64) estimate.
    Gpu(GpuEstimate),
    /// A design-space search result.
    Tune(TuneEstimate),
}

/// Per-item outcome of a [`Client::batch`] call: the estimate, or the
/// typed protocol error the server attached to that item (deadline, busy,
/// shutting-down).
pub type BatchItemResult = Result<Estimate, (ErrorKind, String)>;

/// Anything that can go wrong on a client call.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (including server disconnect).
    Io(io::Error),
    /// The server's reply could not be decoded.
    Malformed(String),
    /// The server answered with a typed protocol error.
    Server {
        /// The error code.
        kind: ErrorKind,
        /// Human-readable detail.
        detail: String,
    },
    /// The reply decoded fine but was not the kind the call expected.
    Unexpected(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Malformed(d) => write!(f, "malformed response: {d}"),
            ClientError::Server { kind, detail } => write!(f, "server error ({kind}): {detail}"),
            ClientError::Unexpected(d) => write!(f, "unexpected response: {d}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A connected protocol client.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Connect to a serve endpoint.
    ///
    /// # Errors
    ///
    /// Propagates connect/clone failures.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: BufWriter::new(stream),
        })
    }

    /// Connect, retrying until `timeout` elapses — for racing a server
    /// that is still binding its socket (CI boots `served` in the
    /// background and connects "immediately").
    ///
    /// # Errors
    ///
    /// Returns the last connect error once the deadline passes.
    pub fn connect_retry(addr: &str, timeout: Duration) -> io::Result<Client> {
        let deadline = Instant::now() + timeout;
        loop {
            match Client::connect(addr) {
                Ok(c) => return Ok(c),
                Err(e) => {
                    if Instant::now() >= deadline {
                        return Err(e);
                    }
                    std::thread::sleep(Duration::from_millis(20));
                }
            }
        }
    }

    /// Queue one raw request line (no newline) without flushing — the
    /// pipelined half of the API.
    ///
    /// # Errors
    ///
    /// Propagates write failures.
    pub fn send_line(&mut self, line: &str) -> io::Result<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")
    }

    /// Flush queued requests to the server.
    ///
    /// # Errors
    ///
    /// Propagates flush failures.
    pub fn flush(&mut self) -> io::Result<()> {
        self.writer.flush()
    }

    /// Read one raw response line (without the newline).
    ///
    /// # Errors
    ///
    /// Propagates read failures; EOF maps to `UnexpectedEof`.
    pub fn recv_line(&mut self) -> io::Result<String> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        while line.ends_with('\n') || line.ends_with('\r') {
            line.pop();
        }
        Ok(line)
    }

    /// Read and decode one response.
    ///
    /// # Errors
    ///
    /// Transport or decode failures (a typed server error decodes
    /// *successfully* into [`Response::Error`]).
    pub fn recv_response(&mut self) -> Result<Response, ClientError> {
        let line = self.recv_line()?;
        parse_response(&line).map_err(|e| ClientError::Malformed(format!("{e} in {line:?}")))
    }

    /// Send one request line and read its response (the non-pipelined
    /// path; responses come back in request order).
    ///
    /// # Errors
    ///
    /// Transport or decode failures.
    pub fn call(&mut self, line: &str) -> Result<Response, ClientError> {
        self.send_line(line)?;
        self.flush()?;
        self.recv_response()
    }

    fn call_estimate(&mut self, work: Work) -> Result<Response, ClientError> {
        let line = encode_estimate(&EstimateRequest {
            id: None,
            work,
            deadline_ms: None,
        });
        match self.call(&line)? {
            Response::Error { kind, detail, .. } => Err(ClientError::Server { kind, detail }),
            other => Ok(other),
        }
    }

    /// Estimate a TPU convolution.
    ///
    /// # Errors
    ///
    /// Transport, decode, or typed server errors.
    pub fn tpu_conv(
        &mut self,
        shape: &ConvShape,
        mode: SimMode,
        hw: &TpuHwSpec,
    ) -> Result<TpuEstimate, ClientError> {
        match self.call_estimate(Work::TpuConv {
            shape: *shape,
            mode,
            hw: *hw,
        })? {
            Response::Tpu { est, .. } => Ok(est),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Estimate a TPU GEMM.
    ///
    /// # Errors
    ///
    /// Transport, decode, or typed server errors.
    pub fn tpu_gemm(
        &mut self,
        m: usize,
        n: usize,
        k: usize,
        hw: &TpuHwSpec,
    ) -> Result<TpuEstimate, ClientError> {
        match self.call_estimate(Work::TpuGemm { m, n, k, hw: *hw })? {
            Response::Tpu { est, .. } => Ok(est),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Estimate a GPU convolution. The returned `f64` fields are
    /// bit-identical to the server-side simulation.
    ///
    /// # Errors
    ///
    /// Transport, decode, or typed server errors.
    pub fn gpu_conv(
        &mut self,
        shape: &ConvShape,
        algo: GpuAlgo,
    ) -> Result<GpuEstimate, ClientError> {
        match self.call_estimate(Work::GpuConv {
            shape: *shape,
            algo,
            hw: GpuHwSpec::default(),
        })? {
            Response::Gpu { est, .. } => Ok(est),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Run (or fetch the cached result of) a design-space search for one
    /// layer. The response is byte-deterministic for a given
    /// `(shape, target)`, so repeated tunes are cache hits.
    ///
    /// # Errors
    ///
    /// Transport, decode, or typed server errors.
    pub fn tune(
        &mut self,
        shape: &ConvShape,
        target: TuneTarget,
    ) -> Result<TuneEstimate, ClientError> {
        match self.call_estimate(Work::Tune {
            shape: *shape,
            target,
        })? {
            Response::Tune { est, .. } => Ok(est),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Estimate a whole slice of works in one `batch` request. The server
    /// streams item replies in item order followed by a summary line; this
    /// returns one result per input work, in input order.
    ///
    /// # Errors
    ///
    /// Transport or decode failures, a batch-level server error (e.g. a
    /// rejected request), or a summary that does not match the item count.
    /// *Per-item* errors do not fail the call — they come back as the
    /// `Err` variant of that item's [`BatchItemResult`].
    pub fn batch(
        &mut self,
        works: &[Work],
        deadline_ms: Option<u64>,
    ) -> Result<Vec<BatchItemResult>, ClientError> {
        if works.is_empty() {
            return Ok(Vec::new());
        }
        self.send_line(&encode_batch(None, works, deadline_ms))?;
        self.flush()?;
        let mut out = Vec::with_capacity(works.len());
        for i in 0..works.len() {
            match self.recv_response()? {
                Response::Tpu { est, .. } => out.push(Ok(Estimate::Tpu(est))),
                Response::Gpu { est, .. } => out.push(Ok(Estimate::Gpu(est))),
                Response::Tune { est, .. } => out.push(Ok(Estimate::Tune(est))),
                Response::Error { kind, detail, .. } => {
                    if i == 0 && kind == ErrorKind::BadRequest {
                        // A rejected batch is one error line, not n+1.
                        return Err(ClientError::Server { kind, detail });
                    }
                    out.push(Err((kind, detail)));
                }
                other => return Err(ClientError::Unexpected(format!("{other:?}"))),
            }
        }
        match self.recv_response()? {
            Response::Batch { items, errors, .. } => {
                let want_errors = out.iter().filter(|r| r.is_err()).count() as u64;
                if items != works.len() as u64 || errors != want_errors {
                    return Err(ClientError::Unexpected(format!(
                        "batch summary {items} items / {errors} errors, \
                         expected {} / {want_errors}",
                        works.len()
                    )));
                }
                Ok(out)
            }
            other => Err(ClientError::Unexpected(format!(
                "missing batch summary, got {other:?}"
            ))),
        }
    }

    /// Fetch the server's counter snapshot.
    ///
    /// # Errors
    ///
    /// Transport, decode, or typed server errors.
    pub fn stats(&mut self) -> Result<StatsSnapshot, ClientError> {
        match self.call(&encode_simple("stats", None))? {
            Response::Stats { stats, .. } => Ok(stats),
            Response::Error { kind, detail, .. } => Err(ClientError::Server { kind, detail }),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Fetch the server's per-shard cache counters (the striped cache's
    /// internals; shard sums equal the global `stats` counters).
    ///
    /// # Errors
    ///
    /// Transport, decode, or typed server errors.
    pub fn shards(&mut self) -> Result<Vec<ShardStat>, ClientError> {
        match self.call(&encode_simple("shards", None))? {
            Response::Shards { shards, .. } => Ok(shards),
            Response::Error { kind, detail, .. } => Err(ClientError::Server { kind, detail }),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// Transport, decode, or typed server errors.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.call(&encode_simple("ping", None))? {
            Response::Pong { .. } => Ok(()),
            Response::Error { kind, detail, .. } => Err(ClientError::Server { kind, detail }),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Ask the server to drain and shut down.
    ///
    /// # Errors
    ///
    /// Transport, decode, or typed server errors.
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        match self.call(&encode_simple("shutdown", None))? {
            Response::ShutdownAck { .. } => Ok(()),
            Response::Error { kind, detail, .. } => Err(ClientError::Server { kind, detail }),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }
}

/// Retry schedule for [`RetryClient`]: capped exponential backoff with
/// deterministic jitter. The jitter is a pure function of
/// `(seed, salt, attempt)` — two runs with the same seed sleep the same
/// schedule, which keeps chaos runs byte-reproducible end to end.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total tries per request (first attempt included). `1` disables
    /// retry.
    pub attempts: u32,
    /// Backoff before the second attempt; doubles per attempt after that.
    pub base_delay: Duration,
    /// Ceiling the doubling saturates at.
    pub max_delay: Duration,
    /// Jitter seed (mix with the per-call salt).
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            attempts: 4,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(500),
            seed: 0x1c0_feed,
        }
    }
}

impl RetryPolicy {
    /// The backoff slept after failed attempt number `attempt` (0-based):
    /// `min(base << attempt, max)` scaled into `[50%, 100%]` by the
    /// deterministic jitter stream. Pure — exposed so tests can pin the
    /// schedule.
    #[must_use]
    pub fn backoff(&self, attempt: u32, salt: u64) -> Duration {
        let exp = self
            .base_delay
            .saturating_mul(1u32 << attempt.min(16))
            .min(self.max_delay);
        let h =
            mix64(self.seed ^ salt ^ u64::from(attempt.wrapping_add(1)).wrapping_mul(GOLDEN_GAMMA));
        exp.mul_f64(0.5 + 0.5 * unit_f64(h))
    }
}

/// Is this failure worth re-asking about? Transport errors and decode
/// failures leave the connection in an unknown state (a fault may have
/// eaten half a line) — retry on a *fresh* connection. `busy`,
/// `worker-crashed`, and `deadline` are transient server-side conditions
/// on a still-synchronized connection. `bad-request`/`parse`/
/// `shutting-down` are terminal: the request itself (or the server's
/// lifecycle) is the problem.
fn is_transient(e: &ClientError) -> Option<bool> {
    match e {
        ClientError::Io(_) | ClientError::Malformed(_) => Some(true),
        ClientError::Server { kind, .. } => match kind {
            ErrorKind::Busy | ErrorKind::WorkerCrashed | ErrorKind::Deadline => Some(false),
            ErrorKind::Parse | ErrorKind::BadRequest | ErrorKind::ShuttingDown => None,
        },
        ClientError::Unexpected(_) => Some(true),
    }
}

/// A [`Client`] wrapper that retries transient failures with the
/// [`RetryPolicy`] schedule, reconnecting whenever the connection state is
/// no longer trustworthy. Safe for estimate traffic because responses are
/// idempotent (see the module docs); *not* for `shutdown`, which this type
/// deliberately issues at most once.
pub struct RetryClient {
    addr: String,
    policy: RetryPolicy,
    connect_timeout: Duration,
    inner: Option<Client>,
    retries: u64,
    reconnects: u64,
}

impl RetryClient {
    /// Connect (with the connect-retry budget) and wrap the connection.
    ///
    /// # Errors
    ///
    /// Returns the last connect error once `connect_timeout` elapses.
    pub fn connect(
        addr: &str,
        policy: RetryPolicy,
        connect_timeout: Duration,
    ) -> io::Result<RetryClient> {
        let inner = Client::connect_retry(addr, connect_timeout)?;
        Ok(RetryClient {
            addr: addr.to_owned(),
            policy,
            connect_timeout,
            inner: Some(inner),
            retries: 0,
            reconnects: 0,
        })
    }

    /// Attempts re-issued beyond each request's first try.
    #[must_use]
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Connections re-established after ambiguous failures.
    #[must_use]
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    /// Run `op` with the retry schedule. `salt` decorrelates the jitter
    /// streams of concurrent callers (pass a per-client or per-request
    /// id).
    ///
    /// # Errors
    ///
    /// The final attempt's error, or any terminal (non-transient) error
    /// immediately.
    pub fn with_retry<T>(
        &mut self,
        salt: u64,
        mut op: impl FnMut(&mut Client) -> Result<T, ClientError>,
    ) -> Result<T, ClientError> {
        let attempts = self.policy.attempts.max(1);
        let mut attempt = 0u32;
        loop {
            let client = match self.inner.as_mut() {
                Some(c) => c,
                None => {
                    self.reconnects += 1;
                    self.inner = Some(Client::connect_retry(&self.addr, self.connect_timeout)?);
                    self.inner.as_mut().expect("just connected")
                }
            };
            let err = match op(client) {
                Ok(v) => return Ok(v),
                Err(e) => e,
            };
            let Some(reconnect) = is_transient(&err) else {
                return Err(err);
            };
            if reconnect {
                // Drop the stream: any in-flight bytes from the failed
                // exchange die with it, so a stale response can never be
                // misread as the answer to the re-issued request.
                self.inner = None;
            }
            attempt += 1;
            if attempt >= attempts {
                return Err(err);
            }
            self.retries += 1;
            std::thread::sleep(self.policy.backoff(attempt - 1, salt));
        }
    }

    /// [`Client::tpu_gemm`] with retries.
    ///
    /// # Errors
    ///
    /// See [`RetryClient::with_retry`].
    pub fn tpu_gemm(
        &mut self,
        m: usize,
        n: usize,
        k: usize,
        hw: &TpuHwSpec,
        salt: u64,
    ) -> Result<TpuEstimate, ClientError> {
        self.with_retry(salt, |c| c.tpu_gemm(m, n, k, hw))
    }

    /// [`Client::batch`] with retries (all-or-nothing per attempt).
    ///
    /// # Errors
    ///
    /// See [`RetryClient::with_retry`].
    pub fn batch(
        &mut self,
        works: &[Work],
        deadline_ms: Option<u64>,
        salt: u64,
    ) -> Result<Vec<BatchItemResult>, ClientError> {
        self.with_retry(salt, |c| c.batch(works, deadline_ms))
    }

    /// [`Client::stats`] with retries.
    ///
    /// # Errors
    ///
    /// See [`RetryClient::with_retry`].
    pub fn stats(&mut self, salt: u64) -> Result<StatsSnapshot, ClientError> {
        self.with_retry(salt, Client::stats)
    }

    /// [`Client::call`] with retries, for raw request lines.
    ///
    /// # Errors
    ///
    /// See [`RetryClient::with_retry`].
    pub fn call(&mut self, line: &str, salt: u64) -> Result<Response, ClientError> {
        self.with_retry(salt, |c| match c.call(line)? {
            Response::Error { kind, detail, .. } => Err(ClientError::Server { kind, detail }),
            other => Ok(other),
        })
    }

    /// One-shot graceful shutdown — never retried (a lost ack after the
    /// server began draining must not turn into a second shutdown racing
    /// the first).
    ///
    /// # Errors
    ///
    /// Transport, decode, or typed server errors.
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        match self.inner.as_mut() {
            Some(c) => c.shutdown_server(),
            None => {
                self.reconnects += 1;
                let c = Client::connect_retry(&self.addr, self.connect_timeout)?;
                self.inner = Some(c);
                self.inner
                    .as_mut()
                    .expect("just connected")
                    .shutdown_server()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_capped_and_jittered() {
        let p = RetryPolicy::default();
        for attempt in 0..8 {
            for salt in [0u64, 1, 99] {
                let d = p.backoff(attempt, salt);
                assert_eq!(d, p.backoff(attempt, salt), "same inputs, same sleep");
                let ceiling = p
                    .base_delay
                    .saturating_mul(1u32 << attempt)
                    .min(p.max_delay);
                assert!(d <= ceiling, "attempt {attempt}: {d:?} > {ceiling:?}");
                assert!(
                    d >= ceiling.mul_f64(0.5),
                    "attempt {attempt}: {d:?} below the jitter floor"
                );
            }
        }
        // Jitter actually varies across salts.
        assert_ne!(p.backoff(3, 1), p.backoff(3, 2));
    }

    #[test]
    fn transient_classification() {
        use std::io::ErrorKind as Io;
        assert_eq!(
            is_transient(&ClientError::Io(io::Error::from(Io::ConnectionReset))),
            Some(true)
        );
        assert_eq!(
            is_transient(&ClientError::Malformed("half a line".into())),
            Some(true)
        );
        for kind in [
            ErrorKind::Busy,
            ErrorKind::WorkerCrashed,
            ErrorKind::Deadline,
        ] {
            assert_eq!(
                is_transient(&ClientError::Server {
                    kind,
                    detail: String::new()
                }),
                Some(false),
                "{kind} must retry without reconnecting"
            );
        }
        for kind in [
            ErrorKind::Parse,
            ErrorKind::BadRequest,
            ErrorKind::ShuttingDown,
        ] {
            assert_eq!(
                is_transient(&ClientError::Server {
                    kind,
                    detail: String::new()
                }),
                None,
                "{kind} must be terminal"
            );
        }
    }
}
