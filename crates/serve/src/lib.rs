//! `iconv-serve`: a cached, concurrent layer-estimate service.
//!
//! The experiment runners call the simulators in-process, which is perfect
//! for one-shot sweeps and wasteful for interactive exploration: a design
//! tool poking at the TPU/GPU models re-simulates the same layers over and
//! over. This crate turns the simulators into a long-running TCP service:
//!
//! * **Protocol** — newline-delimited JSON ([`protocol`]), hand-rolled on a
//!   panic-free parser ([`json`]) because the offline dependency set has no
//!   serde. Ops: `conv`, `gemm`, `batch`, `stats`, `shards`, `ping`,
//!   `shutdown`.
//!   Every failure is a typed error response (`busy`, `deadline`, `parse`,
//!   `bad-request`, `shutting-down`) — malformed input never panics or
//!   disconnects. The request vocabulary itself ([`Work`], [`TpuHwSpec`],
//!   [`SweepSpec`], cache keys) lives in the shared `iconv-api` crate so
//!   every consumer agrees on what a request *means*.
//! * **Dispatch** — requests run on an [`iconv_par::WorkerPool`] with a
//!   bounded queue; overload is surfaced as an explicit `busy` error
//!   instead of a hang, and per-request `deadline_ms` bounds queue time.
//!   A `batch` op (item array or compact sweep spec) is admitted as a
//!   single unit, deduplicated against the cache *and* within itself, run
//!   under a bounded in-flight chunk so giant sweeps cannot starve other
//!   clients, and streamed back in item order.
//! * **Cache** — a content-addressed, lock-striped LRU
//!   ([`cache::StripedCache`]) keyed on the canonical rendering of
//!   (hardware config × lowering mode × layout × shape) ([`key`]).
//!   Equivalent request spellings share entries; distinct simulations never
//!   collide. Keys hash onto independent shards so concurrent hits never
//!   serialize on one lock, bodies are shared [`cache::Body`]s (a warm hit
//!   allocates nothing under the lock), and per-shard single-flight makes
//!   concurrent misses of one key run the simulation once. Cached replays
//!   are byte-identical to fresh ones, so responses are deterministic under
//!   any concurrency and any cache state.
//! * **Observability** — hits, misses, evictions, queue depth, latency are
//!   visible live via the `stats` op and exportable as `iconv-trace`
//!   counters.
//!
//! Binaries: `served` (the server), `routed` (a cache-affinity front-end
//! that consistent-hashes canonical keys across a fleet of `served`
//! backends — [`router`]), and `loadgen` (a closed-loop generator replaying
//! the paper's workload table, writing `BENCH_serve.json`; with
//! `--open-loop`, a coordinated-omission-safe capacity harness —
//! [`capacity`] — that soaks a fixed offered rate, bisects for the
//! max-sustained-rps knee under a p99 SLO, and writes
//! `BENCH_capacity.json`). The `stats` op carries a mergeable service-time
//! histogram ([`iconv_api::LatencyHist`]), striped per cache shard on the
//! server and fleet-merged through the router. `expall --via-serve` routes
//! its summary's layer estimates through a server (or a router) with
//! byte-identical output — GPU `f64` cycles cross the wire as IEEE-754 bit
//! strings to keep that guarantee exact.

pub mod cache;
pub mod capacity;
pub mod cli;
pub mod client;
pub mod engine;
// The wire vocabulary and codecs moved to `iconv-api` (`json` / `proto`),
// so the server, clients, and router all share one definition; these
// aliases keep every historical `iconv_serve::json` / `::protocol` path
// resolving to it.
pub use iconv_api::json;
pub use iconv_api::proto as protocol;
pub mod key;
pub mod router;
pub mod server;

pub use cache::{Body, LruCache, StripedCache};
pub use client::{
    BatchItemResult, Client, ClientError, Estimate, RetryClient, RetryPolicy,
    DEFAULT_CONNECT_TIMEOUT,
};
pub use key::canonical_key;
pub use protocol::{
    ErrorKind, EstimateRequest, GpuEstimate, GpuHwSpec, Op, Request, Response, ShardStat,
    StatsSnapshot, SweepError, SweepSpec, SweepTarget, TpuChip, TpuEstimate, TpuHwSpec,
    TuneEstimate, TuneTarget, TunedConfig, Work, MAX_SWEEP_ITEMS,
};
pub use router::{spawn_router, Breaker, BreakerState, RouterConfig, RouterHandle, RouterStats};
pub use server::{spawn, ServerConfig, ServerHandle};
