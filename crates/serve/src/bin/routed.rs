//! `routed` — the cache-affinity router.
//!
//! Fronts a fleet of `served` backends, consistent-hashing every
//! canonical cache key onto the same backend so each backend's striped
//! cache stays hot for its own key range. Prints `listening on <addr>`
//! once bound, then routes until a client sends the `shutdown` op (which
//! is broadcast to the fleet) and exits with a counter report on stderr.

use std::sync::Arc;
use std::time::Duration;

use iconv_faults::FaultPlan;
use iconv_serve::router::{spawn_router, RouterConfig};

const USAGE: &str = "usage: routed --backend HOST:PORT [--backend HOST:PORT ...] \
     [--addr HOST:PORT] [--vnodes N] [--breaker-threshold N] [--health-interval-ms N] \
     [--connect-timeout-ms N] [--fault-plan SPEC]\n       SPEC e.g. seed=42,route-send=0.05 \
     (router sites: route-send,route-recv)";

fn parse_args(args: impl IntoIterator<Item = String>) -> Result<RouterConfig, String> {
    let mut cfg = RouterConfig {
        listen_addr: "127.0.0.1:7071".to_owned(),
        ..RouterConfig::default()
    };
    let mut args = args.into_iter();
    while let Some(a) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} requires a value; {USAGE}"))
        };
        let positive = |name: &str, v: String| {
            v.parse::<u64>()
                .ok()
                .filter(|n| *n > 0)
                .ok_or_else(|| format!("{name} needs a positive integer (got {v:?}); {USAGE}"))
        };
        match a.as_str() {
            "--addr" => cfg.listen_addr = value("--addr")?,
            "--backend" => cfg.backends.push(value("--backend")?),
            "--vnodes" => cfg.vnodes = positive("--vnodes", value("--vnodes")?)? as usize,
            "--breaker-threshold" => {
                cfg.breaker_threshold =
                    positive("--breaker-threshold", value("--breaker-threshold")?)? as u32;
            }
            "--health-interval-ms" => {
                cfg.health_interval = Duration::from_millis(positive(
                    "--health-interval-ms",
                    value("--health-interval-ms")?,
                )?);
            }
            "--connect-timeout-ms" => {
                cfg.connect_timeout = Duration::from_millis(positive(
                    "--connect-timeout-ms",
                    value("--connect-timeout-ms")?,
                )?);
            }
            "--fault-plan" => {
                let spec = value("--fault-plan")?;
                let plan = FaultPlan::parse(&spec)
                    .map_err(|e| format!("--fault-plan {spec:?}: {e}; {USAGE}"))?;
                cfg.faults = Some(Arc::new(plan));
            }
            other => return Err(format!("unknown argument {other:?}; {USAGE}")),
        }
    }
    if cfg.backends.is_empty() {
        return Err(format!("at least one --backend is required; {USAGE}"));
    }
    Ok(cfg)
}

fn main() {
    let cfg = match parse_args(std::env::args().skip(1)) {
        Ok(cfg) => cfg,
        Err(err) => {
            eprintln!("routed: {err}");
            std::process::exit(2);
        }
    };
    let n_backends = cfg.backends.len();
    let faults = cfg.faults.clone();
    let handle = match spawn_router(cfg) {
        Ok(h) => h,
        Err(err) => {
            eprintln!("routed: bind failed: {err}");
            std::process::exit(1);
        }
    };
    let faulted = faults.is_some();
    println!("listening on {}", handle.local_addr());
    // Line-buffered stdout may sit on that line forever under redirection;
    // scripts wait for it, so push it out now.
    use std::io::Write;
    let _ = std::io::stdout().flush();
    eprintln!(
        "routed: {n_backends} backend(s){}; send {{\"op\":\"shutdown\"}} to stop",
        if faulted { ", fault plan ARMED" } else { "" }
    );

    handle.wait_shutdown_requested();
    let stats = handle.shutdown();
    eprintln!(
        "routed: drained; forwarded={} failovers={} unrouted={} parse={}",
        stats.forwarded, stats.failovers, stats.unrouted, stats.parse_errors
    );
    if let Some(plan) = faults {
        let c = plan.counters();
        eprintln!(
            "routed: faults injected={} observed={} conserved={}",
            c.injected_total(),
            c.observed_total(),
            c.conserved()
        );
    }
}
