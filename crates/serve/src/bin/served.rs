//! `served` — the long-running estimate server.
//!
//! Prints `listening on <addr>` once the socket is bound, then serves
//! until a client sends the `shutdown` op, at which point it drains
//! in-flight work, answers everything it accepted, and exits with a final
//! counter report on stderr.

use std::sync::Arc;

use iconv_faults::FaultPlan;
use iconv_serve::server::{spawn, ServerConfig};

const USAGE: &str = "usage: served [--addr HOST:PORT] [--workers N] [--queue N] [--cache N] \
     [--cache-shards N] [--batch-chunk N] [--tune-cache PATH] [--fault-plan SPEC]\n       SPEC \
     e.g. seed=42,rate=0.05 (per-site keys: read,write,partial,delay,panic,deadline; delay-ms=N)";

fn parse_args(args: impl IntoIterator<Item = String>) -> Result<ServerConfig, String> {
    let mut cfg = ServerConfig {
        addr: "127.0.0.1:7070".to_owned(),
        ..ServerConfig::default()
    };
    let mut args = args.into_iter();
    while let Some(a) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} requires a value; {USAGE}"))
        };
        let positive = |name: &str, v: String| {
            v.parse::<usize>()
                .ok()
                .filter(|n| *n > 0)
                .ok_or_else(|| format!("{name} needs a positive integer (got {v:?}); {USAGE}"))
        };
        match a.as_str() {
            "--addr" => cfg.addr = value("--addr")?,
            "--workers" => cfg.workers = positive("--workers", value("--workers")?)?,
            "--queue" => cfg.queue_capacity = positive("--queue", value("--queue")?)?,
            "--cache" => cfg.cache_capacity = positive("--cache", value("--cache")?)?,
            "--cache-shards" => {
                cfg.cache_shards = positive("--cache-shards", value("--cache-shards")?)?;
            }
            "--batch-chunk" => {
                cfg.batch_chunk = positive("--batch-chunk", value("--batch-chunk")?)?;
            }
            "--tune-cache" => {
                cfg.tune_cache_path = Some(std::path::PathBuf::from(value("--tune-cache")?));
            }
            "--fault-plan" => {
                let spec = value("--fault-plan")?;
                let plan = FaultPlan::parse(&spec)
                    .map_err(|e| format!("--fault-plan {spec:?}: {e}; {USAGE}"))?;
                cfg.faults = Some(Arc::new(plan));
            }
            other => return Err(format!("unknown argument {other:?}; {USAGE}")),
        }
    }
    Ok(cfg)
}

fn main() {
    let cfg = match parse_args(std::env::args().skip(1)) {
        Ok(cfg) => cfg,
        Err(err) => {
            eprintln!("served: {err}");
            std::process::exit(2);
        }
    };
    let workers = cfg.workers;
    let faults = cfg.faults.clone();
    let handle = match spawn(cfg) {
        Ok(h) => h,
        Err(err) => {
            eprintln!("served: bind failed: {err}");
            std::process::exit(1);
        }
    };
    let faulted = faults.is_some();
    println!("listening on {}", handle.local_addr());
    // Line-buffered stdout may sit on that line forever under redirection;
    // scripts wait for it, so push it out now.
    use std::io::Write;
    let _ = std::io::stdout().flush();
    eprintln!(
        "served: {workers} worker(s){}; send {{\"op\":\"shutdown\"}} to stop",
        if faulted { ", fault plan ARMED" } else { "" }
    );

    handle.wait_shutdown_requested();
    let stats = handle.shutdown();
    eprintln!(
        "served: drained; requests={} hits={} misses={} evictions={} busy={} deadline={} parse={} \
         batches={} batch_items={} tunes={} tune_searches={} worker_crashes={}",
        stats.requests,
        stats.hits,
        stats.misses,
        stats.evictions,
        stats.busy_rejections,
        stats.deadline_expired,
        stats.parse_errors,
        stats.batches,
        stats.batch_items,
        stats.tunes,
        stats.tune_searches,
        stats.worker_crashes
    );
    if let Some(plan) = faults {
        let c = plan.counters();
        eprintln!(
            "served: faults injected={} observed={} conserved={}",
            c.injected_total(),
            c.observed_total(),
            c.conserved()
        );
    }
}
