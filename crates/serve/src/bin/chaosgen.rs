//! `chaosgen` — chaos harness for the serve stack.
//!
//! Replays the paper workload table against servers running under an
//! armed, seeded [`FaultPlan`], in both framings (single `conv`/`gemm`
//! lines and `batch` requests), through the retrying client. Four phases,
//! each gated:
//!
//! 1. **Soak** — an in-process server with faults armed takes the whole
//!    table from several concurrent clients (mixed framing). Gates: every
//!    issued request reaches exactly one terminal outcome (no losses), no
//!    stale response is ever accepted (duplicates are *detected* by id
//!    mismatch and retried on a fresh connection), zero hard failures,
//!    faults actually fired, and the plan conserves
//!    (`injected == observed`).
//! 2. **Clean pass** — the *same* soaked server, disarmed, then replayed
//!    in lockstep; the transcript must be byte-identical to a fresh,
//!    never-faulted server's. Chaos must leave no residue: not in the
//!    cache, not in the counters' invariants.
//! 3. **Determinism** — two fresh single-worker servers under the same
//!    seed, driven in lockstep: fault logs and response transcripts must
//!    both replay byte-identically.
//! 4. **External soak** (with `--addr`) — the same soak against a running
//!    `served --fault-plan ...`, with conservation checked through the
//!    `stats` RPC (`faults_injected == faults_observed`).
//!
//! Writes a machine-readable gate report (default `chaos.json`) and exits
//! nonzero if any gate fails.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use iconv_api::table::workload_works;
use iconv_faults::{mix64, FaultPlan, FaultPoint};
use iconv_serve::client::{ClientError, RetryClient, RetryPolicy, DEFAULT_CONNECT_TIMEOUT};
use iconv_serve::protocol::{
    encode_estimate, parse_response, ErrorKind, EstimateRequest, Response, Work,
};
use iconv_serve::server::{spawn, ServerConfig};

const USAGE: &str = "usage: chaosgen [--seed N] [--rate F] [--clients N] [--batch N] \
     [--attempts N] [--models all|small] [--addr HOST:PORT] [--connect-timeout SECS] \
     [--out PATH] [--shutdown]";

struct Args {
    seed: u64,
    rate: f64,
    clients: usize,
    batch: usize,
    attempts: u32,
    small: bool,
    addr: Option<String>,
    connect_timeout: Duration,
    out: String,
    shutdown: bool,
}

impl Default for Args {
    fn default() -> Self {
        Self {
            seed: 42,
            rate: 0.05,
            clients: 4,
            batch: 16,
            attempts: 12,
            small: true,
            addr: None,
            connect_timeout: DEFAULT_CONNECT_TIMEOUT,
            out: "chaos.json".to_owned(),
            shutdown: false,
        }
    }
}

fn parse_args(args: impl IntoIterator<Item = String>) -> Result<Args, String> {
    let mut parsed = Args::default();
    let mut args = args.into_iter();
    while let Some(a) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} requires a value; {USAGE}"))
        };
        let positive = |name: &str, v: String| {
            v.parse::<usize>()
                .ok()
                .filter(|n| *n > 0)
                .ok_or_else(|| format!("{name} needs a positive integer (got {v:?}); {USAGE}"))
        };
        match a.as_str() {
            "--seed" => {
                parsed.seed = value("--seed")?
                    .parse()
                    .map_err(|_| format!("--seed needs an integer; {USAGE}"))?;
            }
            "--rate" => {
                let v = value("--rate")?;
                parsed.rate = v
                    .parse::<f64>()
                    .ok()
                    .filter(|r| (0.0..=1.0).contains(r))
                    .ok_or_else(|| {
                        format!("--rate needs a number in [0,1] (got {v:?}); {USAGE}")
                    })?;
            }
            "--clients" => parsed.clients = positive("--clients", value("--clients")?)?,
            "--batch" => parsed.batch = positive("--batch", value("--batch")?)?,
            "--attempts" => {
                parsed.attempts = positive("--attempts", value("--attempts")?)? as u32;
            }
            "--models" => {
                parsed.small = match value("--models")?.as_str() {
                    "all" => false,
                    "small" => true,
                    other => {
                        return Err(format!(
                            "--models must be all|small (got {other:?}); {USAGE}"
                        ))
                    }
                }
            }
            "--addr" => parsed.addr = Some(value("--addr")?),
            "--connect-timeout" => {
                parsed.connect_timeout = Duration::from_secs(positive(
                    "--connect-timeout",
                    value("--connect-timeout")?,
                )? as u64);
            }
            "--out" => parsed.out = value("--out")?,
            "--shutdown" => parsed.shutdown = true,
            other => return Err(format!("unknown argument {other:?}; {USAGE}")),
        }
    }
    Ok(parsed)
}

fn response_id(r: &Response) -> Option<&str> {
    match r {
        Response::Tpu { id, .. }
        | Response::Gpu { id, .. }
        | Response::Tune { id, .. }
        | Response::Stats { id, .. }
        | Response::Pong { id }
        | Response::ShutdownAck { id }
        | Response::Batch { id, .. }
        | Response::Shards { id, .. }
        | Response::Error { id, .. } => id.as_deref(),
    }
}

/// One lockstep estimate with retries, returning the *raw* response line
/// (for byte-level transcript comparison). A response carrying the wrong
/// id is a detected stale/duplicate: counted, never accepted, and retried
/// on a fresh connection so the stream re-synchronizes.
fn checked_call(
    rc: &mut RetryClient,
    line: &str,
    want_id: &str,
    salt: u64,
    id_mismatches: &AtomicU64,
) -> Result<String, ClientError> {
    rc.with_retry(salt, |c| {
        c.send_line(line)?;
        c.flush()?;
        let raw = c.recv_line()?;
        let resp =
            parse_response(&raw).map_err(|e| ClientError::Malformed(format!("{e} in {raw:?}")))?;
        if let Response::Error { kind, detail, .. } = resp {
            return Err(ClientError::Server { kind, detail });
        }
        if response_id(&resp) == Some(want_id) {
            Ok(raw)
        } else {
            id_mismatches.fetch_add(1, Ordering::Relaxed);
            Err(ClientError::Unexpected(format!(
                "wanted id {want_id:?}, got {:?}",
                response_id(&resp)
            )))
        }
    })
}

#[derive(Default)]
struct Tally {
    issued: u64,
    ok: u64,
    typed_err: u64,
    hard_fail: u64,
    retries: u64,
    reconnects: u64,
}

impl Tally {
    fn absorb(&mut self, other: &Tally) {
        self.issued += other.issued;
        self.ok += other.ok;
        self.typed_err += other.typed_err;
        self.hard_fail += other.hard_fail;
        self.retries += other.retries;
        self.reconnects += other.reconnects;
    }

    /// Terminal outcomes reached — must equal `issued` (no losses).
    fn outcomes(&self) -> u64 {
        self.ok + self.typed_err + self.hard_fail
    }
}

fn retry_policy(seed: u64, attempts: u32) -> RetryPolicy {
    RetryPolicy {
        attempts,
        // Chaos runs retry a lot; short sleeps keep the soak fast while
        // still exercising the backoff schedule.
        base_delay: Duration::from_millis(2),
        max_delay: Duration::from_millis(50),
        seed,
    }
}

/// Single-line framing worker: every request carries a unique id, checked
/// on the way back.
fn soak_single(
    addr: &str,
    works: &[(usize, Work)],
    tag: &str,
    policy: RetryPolicy,
    connect_timeout: Duration,
    id_mismatches: &AtomicU64,
) -> Tally {
    let mut t = Tally::default();
    let Ok(mut rc) = RetryClient::connect(addr, policy, connect_timeout) else {
        t.issued = works.len() as u64;
        t.hard_fail = works.len() as u64;
        return t;
    };
    for &(i, work) in works {
        let id = format!("{tag}-{i}");
        let line = encode_estimate(&EstimateRequest {
            id: Some(id.clone()),
            work,
            deadline_ms: None,
        });
        t.issued += 1;
        let salt = mix64(policy.seed ^ i as u64);
        match checked_call(&mut rc, &line, &id, salt, id_mismatches) {
            Ok(_) => t.ok += 1,
            Err(ClientError::Server { .. }) => t.typed_err += 1,
            Err(_) => t.hard_fail += 1,
        }
    }
    t.retries = rc.retries();
    t.reconnects = rc.reconnects();
    t
}

/// Batched framing worker: `batch`-request groups, retried for up to
/// `attempts` rounds so every item still reaches a terminal outcome. An
/// `n`-item batch exposes `n + 1` response lines to the write-side fault
/// seams, so big batches are proportionally likelier to lose their span —
/// the group size *halves* every round, converging on single-item batches
/// whose odds match the single framing.
fn soak_batched(
    addr: &str,
    works: &[(usize, Work)],
    batch: usize,
    attempts: u32,
    policy: RetryPolicy,
    connect_timeout: Duration,
) -> Tally {
    let mut t = Tally {
        issued: works.len() as u64,
        ..Tally::default()
    };
    let Ok(mut rc) = RetryClient::connect(addr, policy, connect_timeout) else {
        t.hard_fail = works.len() as u64;
        return t;
    };
    let mut pending: Vec<Work> = works.iter().map(|&(_, w)| w).collect();
    let mut round = 0u32;
    while !pending.is_empty() {
        let last_round = round + 1 >= attempts;
        let size = (batch.max(1) >> round.min(16)).max(1);
        let mut next = Vec::new();
        for group in pending.chunks(size) {
            let salt = mix64(policy.seed ^ 0xBA7C ^ u64::from(round));
            match rc.batch(group, None, salt) {
                Ok(results) => {
                    for (item, result) in results.into_iter().enumerate() {
                        match result {
                            Ok(_) => t.ok += 1,
                            Err((
                                ErrorKind::Busy | ErrorKind::Deadline | ErrorKind::WorkerCrashed,
                                _,
                            )) if !last_round => next.push(group[item]),
                            Err(_) => t.typed_err += 1,
                        }
                    }
                }
                // The wrapper burned its transport retries on this span;
                // re-queue the items for the next (smaller-group) round.
                Err(_) if !last_round => next.extend_from_slice(group),
                Err(_) => t.hard_fail += group.len() as u64,
            }
        }
        pending = next;
        round += 1;
    }
    t.retries = rc.retries();
    t.reconnects = rc.reconnects();
    t
}

/// Fan the table out over `clients` mixed-framing workers against `addr`.
fn soak(addr: &str, works: &[Work], args: &Args, id_mismatches: &AtomicU64) -> Tally {
    let indexed: Vec<(usize, Work)> = works.iter().copied().enumerate().collect();
    let clients = args.clients.max(1).min(indexed.len().max(1));
    let per = indexed.len().div_ceil(clients);
    let mut total = Tally::default();
    let tallies: Vec<Tally> = std::thread::scope(|scope| {
        let handles: Vec<_> = indexed
            .chunks(per.max(1))
            .enumerate()
            .map(|(c, chunk)| {
                let policy = retry_policy(mix64(args.seed ^ 0xC11E ^ c as u64), args.attempts);
                let (timeout, batch, attempts) = (args.connect_timeout, args.batch, args.attempts);
                scope.spawn(move || {
                    if c % 2 == 0 {
                        soak_single(
                            addr,
                            chunk,
                            &format!("c{c}"),
                            policy,
                            timeout,
                            id_mismatches,
                        )
                    } else {
                        soak_batched(addr, chunk, batch, attempts, policy, timeout)
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("soak worker"))
            .collect()
    });
    for t in &tallies {
        total.absorb(t);
    }
    total
}

/// Lockstep transcript: the whole table, one request at a time, unique
/// ids, raw response lines in request order.
fn transcript(
    addr: &str,
    works: &[Work],
    policy: RetryPolicy,
    connect_timeout: Duration,
    id_mismatches: &AtomicU64,
) -> Result<String, String> {
    let mut rc = RetryClient::connect(addr, policy, connect_timeout)
        .map_err(|e| format!("transcript connect: {e}"))?;
    let mut out = String::new();
    for (i, &work) in works.iter().enumerate() {
        let id = format!("x-{i}");
        let line = encode_estimate(&EstimateRequest {
            id: Some(id.clone()),
            work,
            deadline_ms: None,
        });
        let raw = checked_call(
            &mut rc,
            &line,
            &id,
            mix64(policy.seed ^ i as u64),
            id_mismatches,
        )
        .map_err(|e| format!("transcript request {i}: {e}"))?;
        out.push_str(&raw);
        out.push('\n');
    }
    Ok(out)
}

struct Gate {
    name: &'static str,
    pass: bool,
    detail: String,
}

fn gate(name: &'static str, pass: bool, detail: String) -> Gate {
    eprintln!(
        "chaosgen: [{}] {name}: {detail}",
        if pass { "ok" } else { "FAIL" }
    );
    Gate { name, pass, detail }
}

fn fault_spec(seed: u64, rate: f64) -> String {
    // Millisecond delays keep slow-loris stalls visible but cheap.
    format!("seed={seed},rate={rate},delay-ms=2")
}

fn main() {
    let args = match parse_args(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(err) => {
            eprintln!("chaosgen: {err}");
            std::process::exit(2);
        }
    };
    let works = workload_works(args.small);
    let id_mismatches = AtomicU64::new(0);
    let mut gates: Vec<Gate> = Vec::new();
    eprintln!(
        "chaosgen: {} works, seed {}, rate {}, {} clients",
        works.len(),
        args.seed,
        args.rate,
        args.clients
    );

    // Phase 1: local soak under faults.
    let plan = Arc::new(FaultPlan::parse(&fault_spec(args.seed, args.rate)).expect("fault spec"));
    let soaked = spawn(ServerConfig {
        faults: Some(Arc::clone(&plan) as Arc<dyn FaultPoint>),
        ..ServerConfig::default()
    })
    .expect("spawn soak server");
    let soak_addr = soaked.local_addr().to_string();
    let t = soak(&soak_addr, &works, &args, &id_mismatches);
    let c = plan.counters();
    gates.push(gate(
        "soak.no_losses",
        t.outcomes() == t.issued,
        format!("{} outcomes for {} issued", t.outcomes(), t.issued),
    ));
    gates.push(gate(
        "soak.no_hard_failures",
        t.hard_fail == 0,
        format!(
            "{} hard failures ({} ok, {} typed errors, {} retries, {} reconnects)",
            t.hard_fail, t.ok, t.typed_err, t.retries, t.reconnects
        ),
    ));
    gates.push(gate(
        "soak.faults_fired",
        c.injected_total() > 0,
        format!("{} injected", c.injected_total()),
    ));
    gates.push(gate(
        "soak.conserved",
        c.conserved(),
        format!(
            "injected {} observed {}",
            c.injected_total(),
            c.observed_total()
        ),
    ));
    let snap = soaked.stats();
    gates.push(gate(
        "soak.stats_mirror",
        snap.faults_injected == c.injected_total() && snap.faults_observed == c.observed_total(),
        format!(
            "stats RPC reports {}/{}",
            snap.faults_injected, snap.faults_observed
        ),
    ));
    let soak_tally = t;

    // Phase 2: disarm and prove chaos left no residue.
    plan.disarm();
    let quiet = AtomicU64::new(0);
    let clean_policy = retry_policy(mix64(args.seed ^ 0x00C1_EA11), 2);
    let after_chaos = transcript(
        &soak_addr,
        &works,
        clean_policy,
        args.connect_timeout,
        &quiet,
    );
    let soaked_stats = soaked.shutdown();
    let fresh = spawn(ServerConfig::default()).expect("spawn clean server");
    let fresh_addr = fresh.local_addr().to_string();
    let unfaulted = transcript(
        &fresh_addr,
        &works,
        clean_policy,
        args.connect_timeout,
        &quiet,
    );
    let fresh_stats = fresh.shutdown();
    match (&after_chaos, &unfaulted) {
        (Ok(a), Ok(b)) => {
            gates.push(gate(
                "clean.byte_identical",
                a == b,
                format!("{} bytes vs {} bytes", a.len(), b.len()),
            ));
        }
        (a, b) => {
            gates.push(gate(
                "clean.byte_identical",
                false,
                format!(
                    "after-chaos: {}; unfaulted: {}",
                    a.as_ref().err().cloned().unwrap_or_else(|| "ok".into()),
                    b.as_ref().err().cloned().unwrap_or_else(|| "ok".into()),
                ),
            ));
        }
    }
    gates.push(gate(
        "clean.no_stale_responses",
        quiet.load(Ordering::Relaxed) == 0,
        format!(
            "{} id mismatches after disarm",
            quiet.load(Ordering::Relaxed)
        ),
    ));
    gates.push(gate(
        "clean.counter_invariant",
        soaked_stats.hits + soaked_stats.misses == soaked_stats.requests
            && fresh_stats.hits + fresh_stats.misses == fresh_stats.requests,
        format!(
            "soaked {}+{}=={}, fresh {}+{}=={}",
            soaked_stats.hits,
            soaked_stats.misses,
            soaked_stats.requests,
            fresh_stats.hits,
            fresh_stats.misses,
            fresh_stats.requests
        ),
    ));

    // Phase 3: same seed, twice, byte-identical schedule and transcript.
    // Single worker + lockstep client make the consultation order itself
    // deterministic, so the rendered fault log is comparable bytewise.
    let det_works: Vec<Work> = works.iter().copied().take(60).collect();
    let det_run = || -> (String, Result<String, String>) {
        let plan =
            Arc::new(FaultPlan::parse(&fault_spec(args.seed, args.rate.max(0.08))).expect("spec"));
        let h = spawn(ServerConfig {
            workers: 1,
            faults: Some(Arc::clone(&plan) as Arc<dyn FaultPoint>),
            ..ServerConfig::default()
        })
        .expect("spawn determinism server");
        let addr = h.local_addr().to_string();
        let mism = AtomicU64::new(0);
        let tr = transcript(
            &addr,
            &det_works,
            retry_policy(args.seed, args.attempts),
            args.connect_timeout,
            &mism,
        );
        h.shutdown();
        (plan.log_render(), tr)
    };
    let (log_a, tr_a) = det_run();
    let (log_b, tr_b) = det_run();
    gates.push(gate(
        "determinism.fault_log",
        !log_a.is_empty() && log_a == log_b,
        format!(
            "{} log bytes (run A) vs {} (run B)",
            log_a.len(),
            log_b.len()
        ),
    ));
    gates.push(gate(
        "determinism.transcript",
        matches!((&tr_a, &tr_b), (Ok(a), Ok(b)) if a == b),
        match (&tr_a, &tr_b) {
            (Ok(a), Ok(b)) => format!("{} bytes vs {} bytes", a.len(), b.len()),
            (a, b) => format!(
                "run A: {}; run B: {}",
                a.as_ref().err().cloned().unwrap_or_else(|| "ok".into()),
                b.as_ref().err().cloned().unwrap_or_else(|| "ok".into()),
            ),
        },
    ));

    // Phase 4: soak an external `served --fault-plan ...`, if given.
    let mut external = None;
    if let Some(addr) = &args.addr {
        let t = soak(addr, &works, &args, &id_mismatches);
        gates.push(gate(
            "external.no_losses",
            t.outcomes() == t.issued && t.hard_fail == 0,
            format!(
                "{} outcomes for {} issued, {} hard failures",
                t.outcomes(),
                t.issued,
                t.hard_fail
            ),
        ));
        let mut rc = RetryClient::connect(
            addr,
            retry_policy(mix64(args.seed ^ 0x57A7), args.attempts),
            args.connect_timeout,
        )
        .expect("external stats connect");
        let stats = rc.stats(0).expect("external stats");
        gates.push(gate(
            "external.conserved",
            stats.faults_injected > 0 && stats.faults_injected == stats.faults_observed,
            format!(
                "stats RPC: injected {} observed {}",
                stats.faults_injected, stats.faults_observed
            ),
        ));
        external = Some((t, stats));
        if args.shutdown {
            // Best-effort: the server may drop the ack under fault.
            let _ = rc.shutdown_server();
        }
    }

    let all_pass = gates.iter().all(|g| g.pass);
    let mut out = String::from("{\n  \"bench\": \"chaos\",\n");
    out.push_str(&format!(
        "  \"config\": {{\"seed\": {}, \"rate\": {}, \"clients\": {}, \"batch\": {}, \
         \"attempts\": {}, \"works\": {}}},\n",
        args.seed,
        args.rate,
        args.clients,
        args.batch,
        args.attempts,
        works.len()
    ));
    out.push_str(&format!(
        "  \"soak\": {{\"issued\": {}, \"ok\": {}, \"typed_errors\": {}, \"hard_failures\": {}, \
         \"retries\": {}, \"reconnects\": {}, \"id_mismatches_detected\": {}, \
         \"faults_injected\": {}, \"faults_observed\": {}}},\n",
        soak_tally.issued,
        soak_tally.ok,
        soak_tally.typed_err,
        soak_tally.hard_fail,
        soak_tally.retries,
        soak_tally.reconnects,
        id_mismatches.load(Ordering::Relaxed),
        c.injected_total(),
        c.observed_total()
    ));
    if let Some((t, stats)) = &external {
        out.push_str(&format!(
            "  \"external\": {{\"issued\": {}, \"ok\": {}, \"typed_errors\": {}, \
             \"hard_failures\": {}, \"faults_injected\": {}, \"faults_observed\": {}}},\n",
            t.issued, t.ok, t.typed_err, t.hard_fail, stats.faults_injected, stats.faults_observed
        ));
    }
    out.push_str("  \"gates\": [\n");
    for (i, g) in gates.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"pass\": {}, \"detail\": {:?}}}{}\n",
            g.name,
            g.pass,
            g.detail,
            if i + 1 < gates.len() { "," } else { "" }
        ));
    }
    out.push_str(&format!("  ],\n  \"pass\": {all_pass}\n}}\n"));
    if let Err(e) = std::fs::write(&args.out, &out) {
        eprintln!("chaosgen: cannot write {}: {e}", args.out);
        std::process::exit(1);
    }
    eprintln!(
        "chaosgen: {} ({} gates) -> {}",
        if all_pass { "PASS" } else { "FAIL" },
        gates.len(),
        args.out
    );
    std::process::exit(i32::from(!all_pass));
}
